package core

import (
	"errors"
	"fmt"
	"strconv"

	"autosec/internal/audit"
	"autosec/internal/can"
	"autosec/internal/ecu"
	"autosec/internal/ethernet"
	"autosec/internal/flexray"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/keyless"
	"autosec/internal/lin"
	"autosec/internal/netif"
	"autosec/internal/ota"
	"autosec/internal/policy"
	"autosec/internal/sensors"
	"autosec/internal/she"
	"autosec/internal/sim"
	"autosec/internal/workload"
	"autosec/internal/zonal"
)

// Domain names used by the standard vehicle build.
const (
	DomainPowertrain   = "powertrain"
	DomainChassis      = "chassis"
	DomainInfotainment = "infotainment"
)

// DomainSpec declares one additional IVN domain beyond the standard
// three CAN domains. Kind selects the transport medium; the domain binds
// to the central gateway through the netif fabric like any other.
type DomainSpec struct {
	Name string
	Kind netif.Kind
}

// Config parameterizes a standard vehicle build.
type Config struct {
	VIN  string
	Seed uint64
	// MACBits is the truncated-CMAC width for authenticated CAN frames
	// (0 disables authentication). Reconfigurable in-field through the
	// "crypto.mac-bits" policy directive.
	MACBits int
	// PolicyKey is the trusted policy-authority key; nil disables the
	// policy plane.
	PolicyKey []byte
	// ExtraDomains adds mixed-medium domains (Ethernet, LIN, FlexRay or
	// further CAN buses) to the build. They attach to the gateway after
	// the three standard domains, in declared order, so CAN-only builds
	// stay byte-identical to earlier versions.
	ExtraDomains []DomainSpec
	// Zonal, when set, replaces the central gateway with a zonal topology:
	// N zone controllers bridged by an Ethernet backbone, the standard
	// domains sharded across them. Vehicle.Gateway is nil in zonal mode;
	// use Vehicle.Zonal.
	Zonal *ZonalConfig
	// IDS, when set, reconfigures the detection plane: the engine taps
	// every ExtraDomains medium in addition to the powertrain, and
	// MediumAware selects the per-medium semantic detector suite. nil
	// keeps the historical default exactly — the baseline statistical
	// trio tapped into the powertrain only.
	IDS *IDSConfig
}

// IDSConfig parameterizes the vehicle's detection plane.
type IDSConfig struct {
	// MediumAware installs ids.MediumAwareSuite() (the baseline trio
	// plus the FlexRay, LIN, Ethernet and SOME/IP semantic families);
	// false keeps ids.BaselineSuite().
	MediumAware bool
}

// ZonalConfig parameterizes a zonal E/E build. The three standard CAN
// domains shard across the zones (powertrain into zone 0, chassis into
// the middle zone, infotainment into the last), ExtraDomains land in
// zone 0, and every zone additionally gets one private domain per
// LocalDomains entry, named "z<i>-<name>".
type ZonalConfig struct {
	// Zones is the number of zone controllers (at least 2).
	Zones int
	// LocalDomains replicates per zone: zone i gains a local domain
	// "z<i>-<Name>" of the given medium kind for each entry.
	LocalDomains []DomainSpec
	// PerZoneKernels runs each zone on its own event kernel, synchronized
	// conservatively at backbone crossings (sim.KernelGroup with the
	// Ethernet tunnel latency as lookahead). Vehicle.Group is non-nil,
	// Vehicle.Kernel is zone 0's member kernel, and each domain's events
	// live on its owning zone's kernel — schedule through
	// Vehicle.KernelFor. Execution is byte-deterministic at any
	// Vehicle.SetParallelism setting, but is a distinct timeline from the
	// shared-kernel zonal build (per-zone kernels draw per-member seeds).
	PerZoneKernels bool
}

// Vehicle composes the substrate packages into one car under the 4+1
// architecture. Every subsystem is reachable for scenarios and the
// experiment harness.
type Vehicle struct {
	VIN    string
	Kernel *sim.Kernel
	// Group is the per-zone kernel group of a parallel zonal build
	// (Zonal.PerZoneKernels); nil otherwise. Kernel is member 0.
	Group *sim.KernelGroup
	Arch  *Architecture

	Buses map[string]*can.Bus
	// Media holds the netif fabric view of every attached domain (the
	// three standard CAN domains plus any ExtraDomains), keyed by domain
	// name. The gateway and IDS bind through these.
	Media map[string]netif.Medium
	// Switches, LINClusters and FlexRayClusters expose the native handles
	// of non-CAN ExtraDomains so scenarios can attach hosts and nodes.
	Switches        map[string]*ethernet.Switch
	LINClusters     map[string]*lin.Cluster
	FlexRayClusters map[string]*flexray.Cluster
	// Gateway is the central gateway; nil when the vehicle is zonal.
	Gateway *gateway.Gateway
	// Zonal is the zone-controller fabric; nil on central builds.
	Zonal *zonal.Fabric
	// BackboneSwitch is the inter-zone Ethernet backbone (zonal builds).
	BackboneSwitch *ethernet.Switch
	IDS            *ids.Engine
	SHE            *she.Engine
	CPU            *ecu.CPU
	Keyless        *keyless.Car
	Policy         *policy.Engine
	OTA            *ota.Client
	Fusion         *sensors.Fusion
	// Audit is the tamper-evident security event log, sealed by the SHE.
	// Gateway denials/quarantines and IDS alerts are recorded
	// automatically; subsystems may Append their own events.
	Audit *audit.Log

	// MACBits is the live authenticated-CAN configuration.
	MACBits int

	// AuthFailures counts received authenticated frames whose MAC did not
	// verify.
	AuthFailures sim.Counter

	trafficStops []func()

	// auditStage holds per-member staged audit events of a parallel build:
	// zone kernels cannot Append to the shared (SHE-sealed) log
	// concurrently, so each member stages its events and the group barrier
	// merges them in (time, member) order — see mergeAuditStages.
	auditStage [][]stagedAudit
	stageIdx   []int

	// idsSuite is the detector construction set the build selected;
	// Reset rebuilds the detection plane from it.
	idsSuite ids.Suite
	// domainOrder records domain names in construction order so Reset
	// walks the media deterministically (never map order).
	domainOrder []string
	// base is the pooled-reuse baseline sealed at the end of NewVehicle;
	// see Reset in reset.go.
	base vehicleBaseline
}

// macKeySlot is the SHE slot holding the IVN authentication key.
const macKeySlot = she.Key1

// NewVehicle builds the standard three-domain vehicle: CAN buses for
// powertrain, chassis and infotainment joined by a central gateway with a
// deny-by-default rule set, an IDS tapped into the powertrain domain, a
// SHE-backed MCU, a PKES unit with distance bounding available, and the
// policy plane wired to reconfigure all of it.
func NewVehicle(cfg Config) (*Vehicle, error) {
	if cfg.VIN == "" {
		return nil, errors.New("core: vehicle needs a VIN")
	}
	var k *sim.Kernel
	var group *sim.KernelGroup
	if cfg.Zonal != nil && cfg.Zonal.PerZoneKernels {
		if cfg.Zonal.Zones < 2 {
			return nil, fmt.Errorf("core: zonal build needs >= 2 zones, got %d", cfg.Zonal.Zones)
		}
		group = sim.NewKernelGroup(cfg.Seed, ethernet.TunnelLookahead(backboneHopLatency, ethernet.DefaultLinkBps))
		// Materialize every member kernel up front: domain media bind to
		// their owning zone's kernel before the fabric exists.
		for i := 0; i < cfg.Zonal.Zones; i++ {
			group.Kernel(i)
		}
		k = group.Kernel(0)
	} else {
		k = sim.NewKernel(cfg.Seed)
	}
	v := &Vehicle{
		VIN:             cfg.VIN,
		Kernel:          k,
		Group:           group,
		Arch:            NewArchitecture(),
		Buses:           make(map[string]*can.Bus),
		Media:           make(map[string]netif.Medium),
		Switches:        make(map[string]*ethernet.Switch),
		LINClusters:     make(map[string]*lin.Cluster),
		FlexRayClusters: make(map[string]*flexray.Cluster),
		MACBits:         cfg.MACBits,
	}

	// Secure Networks: the IVN domains. Each standard bus lives on the
	// kernel of the zone it will shard into — the shared kernel except in
	// per-zone-kernel builds, where intra-zone bus events must never cross
	// the kernel boundary.
	for _, d := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		bk := k
		if group != nil {
			bk = group.Kernel(standardDomainZone(d, cfg.Zonal.Zones))
		}
		v.Buses[d] = can.NewBus(bk, d, 500_000)
		v.Media[d] = can.Netif(v.Buses[d])
		v.domainOrder = append(v.domainOrder, d)
	}
	// Mixed-medium extras build in declared order (kernel event
	// scheduling, e.g. FlexRay cycles, must be deterministic). They shard
	// into zone 0, whose kernel is v.Kernel in every build flavor.
	for _, spec := range cfg.ExtraDomains {
		if err := v.addExtraDomainOn(k, spec); err != nil {
			return nil, err
		}
	}

	// Secure Gateway. Domains attach in a fixed order (not map order) so
	// gateway fan-out, kernel dispatch and traces are seed-deterministic.
	// Standard CAN domains first — byte-compatible with CAN-only builds —
	// then extras in declared order. Zonal builds shard the same domains
	// across zone controllers instead.
	if cfg.Zonal != nil {
		if err := v.buildZonal(cfg); err != nil {
			return nil, err
		}
	} else {
		v.Gateway = gateway.New(k, "central")
		for _, name := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
			if err := v.Gateway.AttachDomain(name, v.Media[name]); err != nil {
				return nil, err
			}
		}
		for _, spec := range cfg.ExtraDomains {
			if err := v.Gateway.AttachDomain(spec.Name, v.Media[spec.Name]); err != nil {
				return nil, err
			}
		}
	}

	// Secure Networks compensating control: the detection plane. The
	// suite is remembered so pooled Resets rebuild the identical detector
	// set in the identical registry order.
	v.idsSuite = ids.BaselineSuite()
	if cfg.IDS != nil && cfg.IDS.MediumAware {
		v.idsSuite = ids.MediumAwareSuite()
	}
	v.IDS = ids.NewEngineFromSuite(v.idsSuite)
	v.IDS.Attach(v.Media[DomainPowertrain])
	if cfg.IDS != nil {
		// Widened taps: every mixed-media extra domain feeds the engine.
		// Extras shard into zone 0 — member 0's kernel — in every build
		// flavor, so the added taps never observe across kernels.
		for _, spec := range cfg.ExtraDomains {
			v.IDS.Attach(v.Media[spec.Name])
		}
	}

	// Secure Processing: SHE engine + MCU scheduler.
	var uid she.UID
	copy(uid[:], cfg.VIN)
	v.SHE = she.NewEngine(uid)
	v.CPU = ecu.NewCPU(k, cfg.VIN+"-mcu")

	// Access Security.
	var pkesKey [16]byte
	copy(pkesKey[:], cfg.VIN+"-pkes-key------")
	v.Keyless = keyless.NewCar(pkesKey)

	// Sensor fusion (feeds Secure Interfaces plausibility checks).
	v.Fusion = sensors.NewFusion()

	// Audit log, sealed under a dedicated SHE key slot.
	var auditKey [16]byte
	copy(auditKey[:], cfg.VIN+"-audit-seal-key-")
	if err := v.SHE.ProvisionKey(she.Key10, auditKey, she.Flags{KeyUsage: true, WriteProtection: true}); err != nil {
		return nil, err
	}
	v.Audit = audit.New(func(msg []byte) ([]byte, error) {
		return v.SHE.GenerateMAC(she.Key10, msg)
	})
	switch {
	case v.Group != nil:
		// Parallel zonal build: zone kernels cannot Append to the shared
		// SHE-sealed log concurrently, so each member stages its events and
		// the group barrier merges them in (time, member) order.
		v.auditStage = make([][]stagedAudit, v.Group.Members())
		v.stageIdx = make([]int, v.Group.Members())
		v.Zonal.Observe(func(at sim.Time, zone, from string, f *netif.Frame, verdict string) {
			if auditableVerdict(verdict) {
				z, _ := v.Zonal.ZoneByName(zone)
				m := z.Member()
				v.auditStage[m] = append(v.auditStage[m], stagedAudit{
					at: at, src: "gateway",
					msg: verdict + " id=" + auditID(f) + " from=" + from + " zone=" + zone,
				})
			}
		})
		v.Group.AtBarrier(func(limit sim.Time) { v.mergeAuditStages() })
	case v.Zonal != nil:
		v.Zonal.Observe(func(at sim.Time, zone, from string, f *netif.Frame, verdict string) {
			if auditableVerdict(verdict) {
				v.Audit.Append(at, "gateway", verdict+" id="+auditID(f)+" from="+from+" zone="+zone)
			}
		})
	default:
		v.Gateway.Observe(func(at sim.Time, from string, f *netif.Frame, verdict string) {
			// Denials and quarantine drops are security events; routine
			// allows would swamp the log.
			if auditableVerdict(verdict) {
				v.Audit.Append(at, "gateway", verdict+" id="+auditID(f)+" from="+from)
			}
		})
	}
	v.IDS.OnAlert(func(a ids.Alert) {
		// The IDS taps the powertrain domain, which shards into zone 0 —
		// member 0's kernel — so parallel builds stage its alerts there.
		if v.Group != nil {
			v.auditStage[0] = append(v.auditStage[0], stagedAudit{at: a.At, src: "ids", msg: a.String()})
			return
		}
		v.Audit.Append(a.At, "ids", a.String())
	})

	// Policy plane.
	if cfg.PolicyKey != nil {
		v.Policy = policy.NewEngine(cfg.PolicyKey)
		if err := v.registerAppliers(); err != nil {
			return nil, err
		}
	}

	// Record the build in the architecture inventory.
	gwName, gwComp := "central-gateway", any(v.Gateway)
	if v.Zonal != nil {
		gwName, gwComp = "zonal-fabric", any(v.Zonal)
	}
	installs := []struct {
		l    Layer
		name string
		comp any
	}{
		{SecureGateway, gwName, gwComp},
		{SecureNetworks, "ivn-can", v.Buses},
		{SecureNetworks, "ids", v.IDS},
		{SecureProcessing, "she", v.SHE},
		{SecureProcessing, "scheduler", v.CPU},
		{AccessSecurity, "pkes", v.Keyless},
		{SecureInterfaces, "sensor-fusion", v.Fusion},
	}
	for _, in := range installs {
		if err := v.Arch.Install(in.l, Implementation{Name: in.name, Version: 1, Component: in.comp}); err != nil {
			return nil, err
		}
	}

	// Seal the constructed state as the pooled-reuse baseline.
	v.markBaselines(cfg)
	return v, nil
}

// auditableVerdict filters gateway verdicts down to security events:
// denials, quarantine drops and rate limiting. Routine allows would swamp
// the log.
func auditableVerdict(verdict string) bool {
	return len(verdict) >= 4 && (verdict[:4] == "deny" || verdict == "quarantined" || verdict[:4] == "rate")
}

// auditID renders a frame identifier for an audit entry: three hex digits
// identify the frame without bloating log entries (full extended IDs
// truncate to their top bits).
func auditID(f *netif.Frame) string {
	idw := 3
	if f.Flags&netif.FlagExtended != 0 {
		idw = 8
	}
	return fmt.Sprintf("%0*X", idw, f.ID)[:3]
}

// buildZonal constructs the zonal topology: an Ethernet backbone switch,
// cfg.Zonal.Zones zone controllers ("z0".."z<n-1>"), the standard domains
// sharded across them, ExtraDomains in zone 0, and per-zone local domains
// from cfg.Zonal.LocalDomains. Everything attaches in a fixed order so
// the build is seed-deterministic.
func (v *Vehicle) buildZonal(cfg Config) error {
	n := cfg.Zonal.Zones
	if n < 2 {
		return fmt.Errorf("core: zonal build needs >= 2 zones, got %d", n)
	}
	if v.Group != nil {
		// Per-zone kernels: the backbone is the kernel boundary, modelled
		// with the same hop latency and link speed as the shared switch.
		v.Zonal = zonal.NewPartitioned(v.Group, backboneHopLatency, ethernet.DefaultLinkBps)
	} else {
		v.BackboneSwitch = ethernet.NewSwitch(v.Kernel, cfg.VIN+"-zonal-backbone", backboneHopLatency)
		v.Zonal = zonal.New(v.Kernel, ethernet.Netif(v.BackboneSwitch, 1))
	}
	zones := make([]*zonal.Zone, n)
	for i := range zones {
		z, err := v.Zonal.AddZone("z" + strconv.Itoa(i))
		if err != nil {
			return err
		}
		zones[i] = z
	}
	// Standard-domain sharding: powertrain fronts the first zone,
	// infotainment (the exposed domain) the last, chassis the middle — so
	// quarantining the infotainment zone never collaterally isolates the
	// safety-critical domains.
	for _, d := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		if err := zones[standardDomainZone(d, n)].AttachDomain(d, v.Media[d]); err != nil {
			return err
		}
	}
	for _, spec := range cfg.ExtraDomains {
		if err := zones[0].AttachDomain(spec.Name, v.Media[spec.Name]); err != nil {
			return err
		}
	}
	for i, z := range zones {
		for _, spec := range cfg.Zonal.LocalDomains {
			local := DomainSpec{Name: "z" + strconv.Itoa(i) + "-" + spec.Name, Kind: spec.Kind}
			if err := v.addExtraDomainOn(z.Kernel(), local); err != nil {
				return err
			}
			if err := z.AttachDomain(local.Name, v.Media[local.Name]); err != nil {
				return err
			}
		}
	}
	return nil
}

// addExtraDomainOn builds the native network for one ExtraDomains entry
// on the given kernel (the owning zone's kernel in per-zone-kernel
// builds) and registers its fabric view in Media.
func (v *Vehicle) addExtraDomainOn(k *sim.Kernel, spec DomainSpec) error {
	if spec.Name == "" {
		return errors.New("core: extra domain needs a name")
	}
	if _, dup := v.Media[spec.Name]; dup {
		return fmt.Errorf("core: duplicate domain %q", spec.Name)
	}
	switch spec.Kind {
	case netif.CAN:
		b := can.NewBus(k, spec.Name, 500_000)
		v.Buses[spec.Name] = b
		v.Media[spec.Name] = can.Netif(b)
	case netif.Ethernet:
		sw := ethernet.NewSwitch(k, spec.Name, 2*sim.Microsecond)
		v.Switches[spec.Name] = sw
		v.Media[spec.Name] = ethernet.Netif(sw, 1)
	case netif.LIN:
		c := lin.NewCluster(k, spec.Name, 19_200, lin.Enhanced)
		v.LINClusters[spec.Name] = c
		v.Media[spec.Name] = lin.Netif(c)
	case netif.FlexRay:
		c, err := flexray.NewCluster(k, spec.Name, flexray.DefaultConfig())
		if err != nil {
			return err
		}
		v.FlexRayClusters[spec.Name] = c
		v.Media[spec.Name] = flexray.Netif(c)
	default:
		return fmt.Errorf("core: unknown medium kind %d for domain %q", spec.Kind, spec.Name)
	}
	v.domainOrder = append(v.domainOrder, spec.Name)
	return nil
}

// registerAppliers wires the policy directive kinds into the subsystems.
func (v *Vehicle) registerAppliers() error {
	appliers := []policy.Applier{
		policy.ApplierFunc{
			K: "gateway.rule",
			V: func(d policy.Directive) error {
				_, err := parseGatewayRule(d)
				return err
			},
			Ap: func(d policy.Directive) error {
				r, err := parseGatewayRule(d)
				if err != nil {
					return err
				}
				if v.Zonal != nil {
					v.Zonal.AddRule(r)
				} else {
					v.Gateway.AddRule(r)
				}
				return nil
			},
		},
		policy.ApplierFunc{
			K: "gateway.quarantine",
			Ap: func(d policy.Directive) error {
				domain := d.Param("domain", "")
				on := d.Param("state", "on") == "on"
				if v.Zonal != nil {
					if on {
						return v.Zonal.QuarantineDomain(domain)
					}
					return v.Zonal.ReleaseDomain(domain)
				}
				if on {
					return v.Gateway.Quarantine(domain)
				}
				return v.Gateway.Release(domain)
			},
		},
		policy.ApplierFunc{
			K: "ids.detector",
			V: func(d policy.Directive) error {
				_, err := buildDetector(d)
				return err
			},
			Ap: func(d policy.Directive) error {
				det, err := buildDetector(d)
				if err != nil {
					return err
				}
				v.IDS.Remove(det.Name()) // replace-in-place semantics
				v.IDS.Add(det)
				return nil
			},
		},
		policy.ApplierFunc{
			K: "crypto.mac-bits",
			V: func(d policy.Directive) error {
				_, err := parseMACBits(d)
				return err
			},
			Ap: func(d policy.Directive) error {
				bits, err := parseMACBits(d)
				if err != nil {
					return err
				}
				v.MACBits = bits
				return nil
			},
		},
	}
	for _, a := range appliers {
		if err := v.Policy.Register(a); err != nil {
			return err
		}
	}
	return nil
}

func parseMACBits(d policy.Directive) (int, error) {
	bits, err := strconv.Atoi(d.Param("bits", ""))
	if err != nil {
		return 0, fmt.Errorf("core: mac-bits: %v", err)
	}
	if bits != 0 && (bits < 8 || bits > 64 || bits%8 != 0) {
		return 0, fmt.Errorf("core: mac-bits %d not in {0, 8..64 byte-aligned}", bits)
	}
	return bits, nil
}

func parseGatewayRule(d policy.Directive) (*gateway.Rule, error) {
	lo, err := strconv.ParseUint(d.Param("idlo", "0"), 0, 32)
	if err != nil {
		return nil, fmt.Errorf("core: gateway rule idlo: %v", err)
	}
	hi, err := strconv.ParseUint(d.Param("idhi", "0x1FFFFFFF"), 0, 32)
	if err != nil {
		return nil, fmt.Errorf("core: gateway rule idhi: %v", err)
	}
	action := gateway.Deny
	switch d.Param("action", "deny") {
	case "allow":
		action = gateway.Allow
	case "deny":
	default:
		return nil, fmt.Errorf("core: gateway rule action %q", d.Param("action", ""))
	}
	rate := 0.0
	if rs := d.Param("rate", ""); rs != "" {
		rate, err = strconv.ParseFloat(rs, 64)
		if err != nil {
			return nil, fmt.Errorf("core: gateway rule rate: %v", err)
		}
	}
	r := &gateway.Rule{
		Name:       d.Param("name", "policy-rule"),
		From:       d.Param("from", "*"),
		IDLo:       uint32(lo),
		IDHi:       uint32(hi),
		Action:     action,
		RatePerSec: rate,
	}
	if to := d.Param("to", ""); to != "" {
		r.To = []string{to}
	}
	return r, nil
}

func buildDetector(d policy.Directive) (ids.Detector, error) {
	switch name := d.Param("name", ""); name {
	case "frequency":
		return ids.NewFrequencyDetector(), nil
	case "interval":
		return ids.NewIntervalDetector(), nil
	case "entropy":
		return ids.NewEntropyDetector(), nil
	case "spec":
		return ids.NewSpecDetector(), nil
	// The per-medium semantic families route to their medium's registry
	// bucket automatically (ids.MediumDetector), so a policy push of a
	// FlexRay model never sees other media's traffic.
	case "fr-slot":
		return ids.NewFlexRaySlotDetector(), nil
	case "lin-schedule":
		return ids.NewLINScheduleDetector(), nil
	case "eth-addr":
		return ids.NewEthernetAddrDetector(), nil
	case "someip":
		return ids.NewSOMEIPDetector(), nil
	default:
		return nil, fmt.Errorf("core: unknown detector %q", name)
	}
}

// StartTraffic launches the standard workload matrices on the powertrain
// and infotainment domains.
func (v *Vehicle) StartTraffic() {
	_, stopPT := workload.StartSenders(v.KernelFor(DomainPowertrain), v.Buses[DomainPowertrain], workload.PowertrainMatrix(), 0.01)
	_, stopBody := workload.StartSenders(v.KernelFor(DomainInfotainment), v.Buses[DomainInfotainment], workload.BodyMatrix(), 0.01)
	v.trafficStops = append(v.trafficStops, stopPT, stopBody)
}

// StopTraffic halts the workload senders.
func (v *Vehicle) StopTraffic() {
	for _, fn := range v.trafficStops {
		fn()
	}
	v.trafficStops = nil
}

// TrainIDS trains the intrusion detectors on a clean reference trace.
func (v *Vehicle) TrainIDS(trace *netif.Trace) { v.IDS.Train(trace) }

// ArmAutoQuarantine wires IDS alerts on the given domain's traffic to an
// automatic gateway quarantine of a source domain — the containment
// reflex the paper assigns to the Secure Gateway layer. On a zonal build
// the reflex isolates the whole zone owning the source domain at its
// backbone uplink.
func (v *Vehicle) ArmAutoQuarantine(sourceDomain string) {
	v.IDS.OnAlert(func(a ids.Alert) {
		if v.Group != nil {
			// The alert fires on member 0's kernel (the IDS's home zone);
			// isolating another zone crosses the kernel boundary as an
			// asynchronous containment message.
			_ = v.Zonal.RequestZoneQuarantine(DomainPowertrain, sourceDomain)
			return
		}
		if v.Zonal != nil {
			_ = v.Zonal.QuarantineZoneOf(sourceDomain)
			return
		}
		_ = v.Gateway.Quarantine(sourceDomain)
	})
}

// ProvisionMACKey installs the IVN authentication key into the SHE.
func (v *Vehicle) ProvisionMACKey(key [16]byte) error {
	return v.SHE.ProvisionKey(macKeySlot, key, she.Flags{KeyUsage: true, BootProtection: true})
}

// AuthenticatedSend appends a truncated CMAC (MACBits wide) to the
// payload and sends the frame. Payload length plus MAC bytes must fit the
// 8-byte classic CAN frame.
func (v *Vehicle) AuthenticatedSend(c *can.Controller, id can.ID, payload []byte) error {
	macLen := v.MACBits / 8
	if len(payload)+macLen > 8 {
		return fmt.Errorf("core: payload %dB + MAC %dB exceeds frame", len(payload), macLen)
	}
	data := append([]byte(nil), payload...)
	if macLen > 0 {
		mac, err := v.SHE.GenerateMAC(macKeySlot, payload)
		if err != nil {
			return err
		}
		data = append(data, mac[:macLen]...)
	}
	return c.Send(can.Frame{ID: id, Data: data}, nil)
}

// VerifyAuthenticated checks a received frame's trailing MAC under the
// live MACBits configuration and returns the bare payload.
func (v *Vehicle) VerifyAuthenticated(f *can.Frame) ([]byte, error) {
	macLen := v.MACBits / 8
	if macLen == 0 {
		return f.Data, nil
	}
	if len(f.Data) < macLen {
		v.AuthFailures.Inc()
		return nil, errors.New("core: frame too short for MAC")
	}
	payload := f.Data[:len(f.Data)-macLen]
	mac := f.Data[len(f.Data)-macLen:]
	ok, err := v.SHE.VerifyMAC(macKeySlot, payload, mac, v.MACBits)
	if err != nil {
		return nil, err
	}
	if !ok {
		v.AuthFailures.Inc()
		return nil, errors.New("core: MAC verification failed")
	}
	return payload, nil
}
