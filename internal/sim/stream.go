package sim

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream (splitmix64 core). It is
// intentionally not crypto-grade: it exists so simulations are exactly
// reproducible from a scenario seed. Crypto randomness in the library
// (key generation, nonces) goes through crypto/rand or derived keys, never
// through Stream.
type Stream struct {
	state uint64
	// spare Gaussian value from the Box-Muller pair, if any.
	gauss    float64
	hasGauss bool
}

// NewStream derives an independent stream from (seed, name).
func NewStream(seed uint64, name string) *Stream {
	s := &Stream{}
	s.Reseed(seed, name)
	return s
}

// Reseed re-derives the stream from (seed, name) in place, exactly as
// NewStream would. Subsystems cache *Stream pointers, so pooled resets
// must rewind the existing stream rather than swap in a fresh one.
func (s *Stream) Reseed(seed uint64, name string) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s.state = seed ^ h.Sum64()
	s.hasGauss = false
	s.gauss = 0
	// Warm up so that similar seeds diverge immediately.
	s.Uint64()
	s.Uint64()
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection-free-enough reduction; the bias is
	// below 2^-32 for the bounds used in these models.
	return int((s.Uint64() >> 33) % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(s.Uint64()>>1) % n
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Norm returns a standard Gaussian variate (Box-Muller).
func (s *Stream) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u1 float64
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gauss = r * math.Sin(2*math.Pi*u2)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*u2)
}

// NormSigma returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Stream) NormSigma(mean, sigma float64) float64 {
	return mean + sigma*s.Norm()
}

// Exp returns an exponential variate with the given rate (events per unit).
// It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Duration returns a uniform Duration in [lo, hi].
func (s *Stream) Duration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(s.Int63n(int64(hi-lo)+1))
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (s *Stream) Jitter(d Duration, frac float64) Duration {
	f := 1 + frac*(2*s.Float64()-1)
	return Duration(float64(d) * f)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (s *Stream) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := s.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// Pick returns a uniformly chosen index weighted by w. The weights must be
// non-negative and not all zero; otherwise Pick panics.
func (s *Stream) Pick(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic("sim: negative weight")
		}
		total += x
	}
	if total == 0 {
		panic("sim: all weights zero")
	}
	r := s.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}
