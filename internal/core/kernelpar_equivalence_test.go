package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// kpRandomConfig draws a per-zone-kernel build from the zonal
// extensibility envelope: zone counts, per-zone local domains, extra
// domains in zone 0, MAC widths and the policy plane.
func kpRandomConfig(r *eqRng, trial int) Config {
	cfg := Config{
		VIN:     fmt.Sprintf("KP-%02d", trial),
		MACBits: []int{0, 24, 32}[r.intn(3)],
		Zonal:   &ZonalConfig{Zones: 2 + r.intn(4), PerZoneKernels: true},
	}
	if r.chance(40) {
		cfg.PolicyKey = []byte("kp-policy-authority-key")
	}
	if r.chance(50) {
		cfg.Zonal.LocalDomains = []DomainSpec{{Name: "body", Kind: netif.CAN}}
	}
	if r.chance(30) {
		cfg.ExtraDomains = []DomainSpec{{Name: "extra0", Kind: netif.CAN}}
	}
	return cfg
}

// kpScenario drives one parallel vehicle through a randomized scenario at
// the given worker count and returns its fingerprint. Every scheduling
// choice follows the parallel-build rules: domain traffic goes to
// KernelFor(domain), shared subsystems (SHE, audit) are only touched from
// member 0's kernel or between runs, and cross-zone containment rides
// RequestZoneQuarantine.
func kpScenario(t *testing.T, v *Vehicle, scenSeed uint64, workers int) string {
	t.Helper()
	r := &eqRng{state: scenSeed}

	tracers := make([]*obs.Tracer, v.Group.Members())
	for i := range tracers {
		tracers[i] = obs.NewTracer(1 << 12)
	}
	reg := obs.NewRegistry()
	v.InstrumentParallel(tracers, reg)

	v.Zonal.SetRules(eqRandomRules(r))

	// Per-domain periodic traffic on each domain's owning kernel, phases
	// drawn from that kernel's own seeded stream.
	for i, dom := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		if !r.chance(80) {
			continue
		}
		k := v.KernelFor(dom)
		st := k.Stream("kp-phase")
		c := can.NewController(fmt.Sprintf("kp-ecu%d", i))
		v.Buses[dom].Attach(c)
		id := can.ID(0x100 + r.intn(0x300))
		payload := byte(r.intn(256))
		period := sim.Duration(200+r.intn(800)) * sim.Microsecond
		k.Every(st.Duration(100*sim.Microsecond, sim.Millisecond), period, func() {
			_ = c.Send(can.Frame{ID: id, Data: []byte{payload, 0x01}}, nil)
		})
	}

	// Background workload matrices sometimes (powertrain on member 0,
	// infotainment on the last member).
	if r.chance(50) {
		v.StartTraffic()
	}

	// A flood on the infotainment zone sometimes: deny/rate verdicts from
	// a non-zero member exercise the audit staging merge.
	if r.chance(60) {
		k := v.KernelFor(DomainInfotainment)
		c := can.NewController("kp-mal")
		v.Buses[DomainInfotainment].Attach(c)
		k.Every(sim.Millisecond, 50*sim.Microsecond, func() {
			_ = c.Send(can.Frame{ID: 0x7FF, Data: []byte{0xFF}}, nil)
		})
	}

	// A cross-zone containment reflex from member 0 sometimes.
	if r.chance(50) {
		v.Kernel.At(2*sim.Millisecond, func() {
			_ = v.Zonal.RequestZoneQuarantine(DomainPowertrain, DomainInfotainment)
		})
	}

	// Authenticated CAN on the powertrain: the SHE is shared state, so
	// only member 0's kernel may drive it mid-run.
	if v.MACBits > 0 {
		if err := v.ProvisionMACKey([16]byte{9, 8, 7}); err != nil {
			t.Fatalf("provision MAC key: %v", err)
		}
		c := can.NewController("kp-auth")
		v.Buses[DomainPowertrain].Attach(c)
		v.Kernel.At(sim.Millisecond, func() {
			_ = v.AuthenticatedSend(c, 0x101, []byte{0xAA})
			_, _ = v.VerifyAuthenticated(&can.Frame{ID: 0x102, Data: []byte{0xBB, 0, 0, 0, 0, 0}})
		})
	}

	v.SetParallelism(workers)
	if err := v.RunUntil(5 * sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	v.StopTraffic()
	return kpFingerprint(v, tracers, reg)
}

// kpFingerprint serializes everything the equivalence clause names:
// per-member trace bytes in member order, metrics, the audit chain, and
// per-member clocks and step counts.
func kpFingerprint(v *Vehicle, tracers []*obs.Tracer, reg *obs.Registry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "group: members=%d steps=%d pending=%d\n", v.Group.Members(), v.Group.Steps(), v.Group.Pending())
	for i := 0; i < v.Group.Members(); i++ {
		k := v.Group.Kernel(i)
		fmt.Fprintf(&b, "member %d: now=%d steps=%d\n", i, k.Now(), k.Steps())
	}
	fmt.Fprintf(&b, "auth: macbits=%d failures=%d\n", v.MACBits, v.AuthFailures.Value)
	fmt.Fprintf(&b, "backbone: frames=%d deliveries=%d\n",
		v.Zonal.BackboneFramesTotal(), v.Zonal.BackboneDeliveriesTotal())

	for i, tr := range tracers {
		var trace bytes.Buffer
		if err := tr.WriteChromeTrace(&trace); err != nil {
			fmt.Fprintf(&b, "trace %d error: %v\n", i, err)
		}
		fmt.Fprintf(&b, "trace %d: %d bytes\n%s\n", i, trace.Len(), trace.String())
	}

	for _, m := range reg.Snapshot() {
		fmt.Fprintf(&b, "metric: %s %s = %s\n", m.Kind, m.Key, obs.FormatValue(m.Value))
	}

	for _, e := range v.Audit.Entries() {
		h := e.Hash()
		fmt.Fprintf(&b, "audit: %d %s %s %x\n", e.At, e.Source, e.Event, h[:8])
	}
	if err := v.Audit.VerifyChain(); err != nil {
		fmt.Fprintf(&b, "audit chain: %v\n", err)
	}
	return b.String()
}

// TestKernelParSerialParallelEquivalence is the tentpole acceptance
// property: across randomized per-zone-kernel builds and scenarios, a
// parallel run (several workers) must be byte-identical — per-member
// traces, metrics, audit hash chain — to the serial reference execution
// (workers=1) of the same build and scenario. Run it under -race to also
// certify the synchronization protocol.
func TestKernelParSerialParallelEquivalence(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	r := &eqRng{state: 0x9A9A}
	for trial := 0; trial < trials; trial++ {
		cfg := kpRandomConfig(r, trial)
		cfg.Seed = r.next()
		scenSeed := r.next()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			serialV, err := NewVehicle(cfg)
			if err != nil {
				t.Fatalf("build (%+v): %v", cfg, err)
			}
			want := kpScenario(t, serialV, scenSeed, 1)
			for _, workers := range []int{2, 8} {
				parV, err := NewVehicle(cfg)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				got := kpScenario(t, parV, scenSeed, workers)
				if got != want {
					t.Fatalf("workers=%d diverged from serial (cfg %+v):\n%s",
						workers, cfg, eqFirstDiff(want, got))
				}
			}
		})
	}
}

// TestKernelParResetEquivalence extends the pooled-vehicle
// reset-equivalence property to parallel builds: a dirtied and Reset
// per-zone-kernel vehicle must replay a scenario byte-identically to a
// fresh build — including the group clocks, undelivered inter-kernel
// messages (dropped by Reset) and the audit staging buffers.
func TestKernelParResetEquivalence(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	r := &eqRng{state: 0xC5C5}
	for trial := 0; trial < trials; trial++ {
		cfg := kpRandomConfig(r, trial)
		runSeed := r.next()
		scenSeed := r.next()
		dirtySeed := r.next()
		scenDirty := r.next()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			fcfg := cfg
			fcfg.Seed = runSeed
			fresh, err := NewVehicle(fcfg)
			if err != nil {
				t.Fatalf("fresh build: %v", err)
			}
			want := kpScenario(t, fresh, scenSeed, 4)

			pool := NewVehiclePool(cfg)
			dirty, err := pool.Acquire(dirtySeed)
			if err != nil {
				t.Fatalf("pool build: %v", err)
			}
			_ = kpScenario(t, dirty, scenDirty, 2)
			pool.Release(dirty)
			reused, err := pool.Acquire(runSeed)
			if err != nil {
				t.Fatalf("pool reuse: %v", err)
			}
			if reused != dirty {
				t.Fatal("pool did not reuse the released vehicle")
			}
			got := kpScenario(t, reused, scenSeed, 4)
			if got != want {
				t.Fatalf("reset parallel vehicle diverged from fresh build (cfg %+v):\n%s",
					cfg, eqFirstDiff(want, got))
			}
		})
	}
}
