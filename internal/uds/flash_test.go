package uds

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// flashRig prepares a rig with flashing enabled, in the programming
// session, unlocked at level 1.
func flashRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, WeakXOR{Constant: 0xF1A5F1A5})
	r.server.EnableFlashing()
	r.mustPositive(t, []byte{SvcSessionControl, SessionProgramming})
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatal(err)
	}
	return r
}

// flash drives Client.Flash synchronously.
func (r *rig) flash(t *testing.T, image []byte) error {
	t.Helper()
	var result error = errors.New("no completion")
	if err := r.client.Flash(image, func(err error) { result = err }); err != nil {
		return err
	}
	_ = r.k.Run()
	return result
}

func TestFlashHappyPath(t *testing.T) {
	r := flashRig(t)
	image := bytes.Repeat([]byte("firmware-v2 "), 300) // 3.6 KB, multiple blocks
	if err := r.flash(t, image); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.server.FlashBuffer(), image) {
		t.Fatalf("flash buffer %d bytes, want %d", len(r.server.FlashBuffer()), len(image))
	}
	if r.server.Flashes.Value != 1 {
		t.Fatalf("flashes=%d", r.server.Flashes.Value)
	}
}

func TestFlashRequiresProgrammingSession(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	r.server.EnableFlashing()
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatal(err)
	}
	err := r.flash(t, []byte("img"))
	if err == nil || !strings.Contains(err.Error(), "conditionsNotCorrect") {
		t.Fatalf("err=%v", err)
	}
}

func TestFlashRequiresSecurityAccess(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	r.server.EnableFlashing()
	r.mustPositive(t, []byte{SvcSessionControl, SessionProgramming})
	err := r.flash(t, []byte("img"))
	if err == nil || !strings.Contains(err.Error(), "securityAccessDenied") {
		t.Fatalf("err=%v", err)
	}
}

func TestFlashDisabledByDefault(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	r.mustPositive(t, []byte{SvcSessionControl, SessionProgramming})
	_ = r.unlock(t, 1, r.alg)
	err := r.flash(t, []byte("img"))
	if err == nil || !strings.Contains(err.Error(), "serviceNotSupported") {
		t.Fatalf("err=%v", err)
	}
}

func TestTransferDataWithoutDownload(t *testing.T) {
	r := flashRig(t)
	r.mustNegative(t, []byte{SvcTransferData, 1, 0xAA}, NRCRequestSequenceError)
	r.mustNegative(t, []byte{SvcRequestTransferExit}, NRCRequestSequenceError)
}

func TestTransferDataSequenceEnforced(t *testing.T) {
	r := flashRig(t)
	// Start a download of 10 bytes.
	r.mustPositive(t, []byte{SvcRequestDownload, 0, 0x40, 0, 0, 0, 10})
	// First block with the wrong sequence counter.
	r.mustNegative(t, []byte{SvcTransferData, 2, 1, 2, 3}, NRCRequestSequenceError)
	// The download aborted; a fresh block-1 is also refused now.
	r.mustNegative(t, []byte{SvcTransferData, 1, 1, 2, 3}, NRCRequestSequenceError)
}

func TestTransferOverrunRejected(t *testing.T) {
	r := flashRig(t)
	r.mustPositive(t, []byte{SvcRequestDownload, 0, 0x40, 0, 0, 0, 4})
	// 5 bytes into a 4-byte download.
	r.mustNegative(t, []byte{SvcTransferData, 1, 1, 2, 3, 4, 5}, NRCRequestOutOfRange)
}

func TestTransferExitIncomplete(t *testing.T) {
	r := flashRig(t)
	r.mustPositive(t, []byte{SvcRequestDownload, 0, 0x40, 0, 0, 0, 8})
	r.mustPositive(t, []byte{SvcTransferData, 1, 1, 2, 3, 4})
	r.mustNegative(t, []byte{SvcRequestTransferExit}, NRCRequestSequenceError)
}

func TestRequestDownloadValidation(t *testing.T) {
	r := flashRig(t)
	r.mustNegative(t, []byte{SvcRequestDownload, 0, 0x40, 0, 0, 0}, NRCIncorrectLength)
	r.mustNegative(t, []byte{SvcRequestDownload, 0, 0x40, 0, 0, 0, 0}, NRCRequestOutOfRange)
	r.mustNegative(t, []byte{SvcRequestDownload, 0, 0x40, 0xFF, 0xFF, 0xFF, 0xFF}, NRCRequestOutOfRange)
}

// The attack story: with the weak algorithm's constant recovered by
// sniffing (see uds_test.go), the attacker reflashes the ECU entirely —
// the end of the Miller/Valasek chain.
func TestFlashAfterSniffAttack(t *testing.T) {
	secret := WeakXOR{Constant: 0x0BAD0DAD}
	r := newRig(t, secret)
	r.server.EnableFlashing()
	r.mustPositive(t, []byte{SvcSessionControl, SessionProgramming})
	// The attacker already knows the constant (sniffed elsewhere).
	if err := r.unlock(t, 1, WeakXOR{Constant: 0x0BAD0DAD}); err != nil {
		t.Fatal(err)
	}
	malicious := []byte("malicious brake firmware build")
	if err := r.flash(t, malicious); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.server.FlashBuffer(), malicious) {
		t.Fatal("attacker image not staged")
	}
	// What stops this in a full vehicle is the *next* layer: SHE secure
	// boot rejects the unsigned image (core integration tests).
}
