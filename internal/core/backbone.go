package core

import (
	"autosec/internal/doip"
	"autosec/internal/ethernet"
	"autosec/internal/sim"
	"autosec/internal/uds"
)

// The next-generation backbone: an automotive Ethernet switch carrying
// the diagnostics VLAN (DoIP) separately from infotainment traffic — the
// "stricter separation" the paper attributes to automotive Ethernet.

// Backbone VLANs used by the standard build.
const (
	VLANDiagnostics uint16 = 100
	VLANIVI         uint16 = 200
)

// Backbone is the vehicle's Ethernet segment with its DoIP edge node.
type Backbone struct {
	Switch *ethernet.Switch
	// Entity is the DoIP edge exposing UDS ECUs to the diagnostics VLAN.
	Entity *doip.Entity
	// Server is the UDS server behind the DoIP entity's ECU address.
	Server *uds.Server
	// ECUAddress is the UDS server's DoIP logical address.
	ECUAddress uint16

	vehicle *Vehicle
}

// EnableBackbone adds an Ethernet switch with a DoIP entity to the
// vehicle. activationAuth, when non-nil, gates DoIP routing activation
// (nil = open, the legacy posture).
func (v *Vehicle) EnableBackbone(alg uds.SeedKeyAlgorithm, activationAuth func(source uint16, key []byte) bool) *Backbone {
	sw := ethernet.NewSwitch(v.Kernel, v.VIN+"-backbone", 5*sim.Microsecond)
	edgeHost := ethernet.NewHost("doip-edge", ethernet.LocalMAC(0x0D01))
	sw.Connect(edgeHost, VLANDiagnostics)

	entity := doip.NewEntity(edgeHost, v.VIN, 0x0010)
	entity.Auth = activationAuth

	b := &Backbone{
		Switch:     sw,
		Entity:     entity,
		ECUAddress: 0x0021,
		vehicle:    v,
	}

	// The UDS server rides the DoIP transport: requests arrive through
	// the entity's handler, responses return through the captured sender.
	var pending []byte
	srv := uds.NewRawServer(v.Kernel, func(resp []byte) { pending = resp }, uds.ServerConfig{
		Algorithm: alg,
		Rand:      v.Kernel.Stream("doip-uds." + v.VIN),
	})
	srv.SetData(uds.DIDVIN, []byte(v.VIN), 0, 0)
	srv.SetData(uds.DIDSWVersion, []byte{1, 0, 0}, 0, 0)
	entity.RegisterECU(b.ECUAddress, func(req []byte) []byte {
		pending = nil
		srv.Handle(v.Kernel.Now(), req)
		return pending
	})
	b.Server = srv

	_ = v.Arch.Install(SecureNetworks, Implementation{Name: "ethernet-backbone", Version: 1, Component: sw})
	_ = v.Arch.Install(SecureNetworks, Implementation{Name: "doip-edge", Version: 1, Component: entity})
	return b
}

// ConnectHost attaches a host to the backbone on a VLAN and returns its
// port for policing/trunk configuration.
func (b *Backbone) ConnectHost(h *ethernet.Host, vlan uint16) *ethernet.Port {
	return b.Switch.Connect(h, vlan)
}

// NewDiagTester attaches an external test tool to the diagnostics VLAN.
func (b *Backbone) NewDiagTester(name string, mac uint32, logical uint16) *doip.Tester {
	h := ethernet.NewHost(name, ethernet.LocalMAC(mac))
	b.Switch.Connect(h, VLANDiagnostics)
	return doip.NewTester(h, logical)
}

// NewOffVLANAttacker attaches a host to the IVI VLAN — the attacker who
// owns the infotainment segment but must not reach diagnostics.
func (b *Backbone) NewOffVLANAttacker(name string, mac uint32, logical uint16) *doip.Tester {
	h := ethernet.NewHost(name, ethernet.LocalMAC(mac))
	b.Switch.Connect(h, VLANIVI)
	return doip.NewTester(h, logical)
}
