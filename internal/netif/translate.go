package netif

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TunnelEtherType is the EtherType carried by frames that encapsulate
// another medium's frame over Ethernet — the simulation's stand-in for
// the DoIP/SecOC-style tunnelling a real central gateway performs when it
// bridges CAN domains across the Ethernet backbone. 0x88B5 is the IEEE
// 802 local-experimental EtherType.
const TunnelEtherType uint32 = 0x88B5

// Tunnel payload layout (big endian):
//
//	[0]    version (high nibble, currently 1) | inner medium (low nibble)
//	[1:3]  inner Flags
//	[3:7]  inner ID
//	[7:11] inner Aux
//	[11:]  inner payload
const (
	tunnelVersion    = 1
	tunnelHeaderSize = 11
)

// Translation errors.
var (
	// ErrUntranslatable reports a frame that cannot be carried on the
	// destination medium (payload too long, odd FlexRay length, ...).
	ErrUntranslatable = errors.New("netif: frame not translatable to destination medium")
	// ErrNotTunnel reports a decapsulation attempt on a frame that is not
	// a well-formed tunnel frame.
	ErrNotTunnel = errors.New("netif: not a tunnel frame")
)

// Per-medium payload capacities for direct (non-tunnel) translation.
func payloadCap(k Kind, flags uint16) int {
	switch k {
	case CAN:
		if flags&FlagFD != 0 {
			return 64
		}
		return 8
	case LIN:
		return 8
	case FlexRay:
		return 254
	case Ethernet:
		return 1500
	default:
		return 0
	}
}

// IsTunnel reports whether the frame is an Ethernet tunnel frame with a
// well-formed encapsulation header.
func IsTunnel(f *Frame) bool {
	return f.Medium == Ethernet && f.ID == TunnelEtherType &&
		len(f.Payload) >= tunnelHeaderSize &&
		f.Payload[0]>>4 == tunnelVersion && Kind(f.Payload[0]&0x0F) < numKinds
}

// Encapsulate wraps src into an Ethernet tunnel frame in dst, writing the
// tunnel payload into *scratch (grown once, then reused — the zero-alloc
// path the gateway's forward fabric relies on). dst's payload aliases
// *scratch, so the caller must hand dst to the medium (which clones on
// Send) before reusing the buffer.
func Encapsulate(dst *Frame, src *Frame, scratch *[]byte) {
	need := tunnelHeaderSize + len(src.Payload)
	buf := (*scratch)[:0]
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	buf[0] = tunnelVersion<<4 | byte(src.Medium)&0x0F
	binary.BigEndian.PutUint16(buf[1:3], src.Flags)
	binary.BigEndian.PutUint32(buf[3:7], src.ID)
	binary.BigEndian.PutUint32(buf[7:11], src.Aux)
	copy(buf[tunnelHeaderSize:], src.Payload)
	*scratch = buf

	*dst = Frame{
		Medium:  Ethernet,
		ID:      TunnelEtherType,
		Dst:     BroadcastAddr,
		Sender:  src.Sender,
		Payload: buf,
	}
}

// Decapsulate unwraps a tunnel frame into dst without copying: dst's
// payload is a view into src's. Returns ErrNotTunnel for anything that is
// not a well-formed tunnel frame.
func Decapsulate(dst *Frame, src *Frame) error {
	if !IsTunnel(src) {
		return fmt.Errorf("%w: medium=%s id=%#x len=%d", ErrNotTunnel, src.Medium, src.ID, len(src.Payload))
	}
	*dst = Frame{
		Medium:  Kind(src.Payload[0] & 0x0F),
		Flags:   binary.BigEndian.Uint16(src.Payload[1:3]),
		ID:      binary.BigEndian.Uint32(src.Payload[3:7]),
		Aux:     binary.BigEndian.Uint32(src.Payload[7:11]),
		Sender:  src.Sender,
		Payload: src.Payload[tunnelHeaderSize:],
	}
	dst.Priority = dst.ID
	return nil
}

// idMask is the identifier range a medium can natively carry.
func idMask(k Kind) uint32 {
	switch k {
	case CAN:
		return 0x1FFFFFFF
	case LIN:
		return 0x3F
	case FlexRay:
		return 0x7FF
	default:
		return 0xFFFFFFFF
	}
}

// Translate converts src for transmission on the `to` medium, writing the
// result into dst. Cross-medium semantics mirror what production gateways
// do at domain boundaries:
//
//   - X → Ethernet: the frame is encapsulated into a tunnel frame
//     (TunnelEtherType), preserving every field — the DoIP-style uplink.
//   - Ethernet tunnel → X: the frame is decapsulated; it must carry an
//     inner frame of the destination medium (zero-copy).
//   - direct X → Y: the identifier is masked into the destination's ID
//     space and the payload carried as-is; frames whose payload exceeds
//     the destination's capacity (or violate FlexRay's even-length rule,
//     which pads) return ErrUntranslatable.
//
// Same-medium translation copies the view (no payload copy). *scratch is
// the caller's reusable buffer for encapsulation/padding, so the steady
// state allocates nothing.
func Translate(dst *Frame, src *Frame, to Kind, scratch *[]byte) error {
	if src.Medium == to {
		*dst = *src
		return nil
	}
	if to == Ethernet {
		Encapsulate(dst, src, scratch)
		return nil
	}
	if IsTunnel(src) {
		if err := Decapsulate(dst, src); err != nil {
			return err
		}
		if dst.Medium != to {
			return fmt.Errorf("%w: tunnel carries %s, destination is %s", ErrUntranslatable, dst.Medium, to)
		}
		if len(dst.Payload) > payloadCap(to, dst.Flags) {
			return fmt.Errorf("%w: %d bytes exceed %s capacity", ErrUntranslatable, len(dst.Payload), to)
		}
		if to == FlexRay && len(dst.Payload)%2 != 0 {
			return fmt.Errorf("%w: odd payload on flexray", ErrUntranslatable)
		}
		return nil
	}
	// Direct translation: mask the ID, carry the payload.
	if len(src.Payload) > payloadCap(to, 0) {
		return fmt.Errorf("%w: %d bytes exceed %s capacity", ErrUntranslatable, len(src.Payload), to)
	}
	payload := src.Payload
	if to == FlexRay && len(payload)%2 != 0 {
		// FlexRay payloads are even-length; pad with one zero byte via the
		// caller's scratch buffer.
		buf := (*scratch)[:0]
		if cap(buf) < len(payload)+1 {
			buf = make([]byte, 0, len(payload)+1)
		}
		buf = append(buf, payload...)
		buf = append(buf, 0)
		*scratch = buf
		payload = buf
	}
	*dst = Frame{
		Medium:  to,
		ID:      src.ID & idMask(to),
		Sender:  src.Sender,
		Payload: payload,
	}
	dst.Priority = dst.ID
	return nil
}
