package v2x

import (
	"testing"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
)

func TestMisbehaviorQuietOnHonestTraffic(t *testing.T) {
	k := sim.NewKernel(5)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	a := pki.vehicle(t, f, "a", Position{0, 0}, 1, sim.Hour)
	a.SetVelocity(25, 0)
	rx := pki.vehicle(t, f, "rx", Position{100, 10}, 1, sim.Hour)
	rx.SetVelocity(25, 0)
	det := NewMisbehaviorDetector(300)
	det.AttachTo(rx)
	stop := a.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(20 * sim.Second)
	stop()
	if len(det.Reports) != 0 {
		t.Fatalf("false positives: %+v", det.Reports[0])
	}
}

// The insider threat: a vehicle with *valid* credentials lies about its
// position. Signatures verify; plausibility catches it.
func TestMisbehaviorCatchesCredentialedLiar(t *testing.T) {
	k := sim.NewKernel(5)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	rx := pki.vehicle(t, f, "rx", Position{50, 0}, 1, sim.Hour)
	det := NewMisbehaviorDetector(300)
	det.AttachTo(rx)

	// The liar broadcasts hand-crafted BSMs claiming a position 5km away
	// — a ghost-vehicle attack to fake congestion.
	liarPool, err := ieee1609.NewPseudonymPool(pki.root, 1, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	liar := f.AddVehicle("liar", Position{0, 0}, liarPool, pki.store())
	_ = liar
	k.Every(0, 100*sim.Millisecond, func() {
		cred := liarPool.Active(k.Now())
		fake := BSM{Pos: Position{5000, 0}, SpeedMS: 0}
		msg, err := cred.Sign(ieee1609.PSIDBasicSafety, fake.Encode(), k.Now(), false)
		if err != nil {
			t.Fatal(err)
		}
		// Broadcast through the field at the liar's *real* position.
		fBroadcast(f, liar, msg)
	})
	_ = k.RunUntil(2 * sim.Second)

	// The signatures all verified...
	if rx.VerifiedOK.Value == 0 {
		t.Fatal("no messages verified — test not exercising the insider path")
	}
	// ...but the content was flagged.
	counts := det.CountByKind()
	if counts[MisbehaviorRangeImplausible] == 0 {
		t.Fatalf("ghost position not flagged: %v", counts)
	}
	if len(det.OffendingCerts()) != 1 {
		t.Fatalf("offenders=%d", len(det.OffendingCerts()))
	}
}

// fBroadcast exposes Field.broadcast to the misbehaviour tests.
func fBroadcast(f *Field, src *Entity, msg *ieee1609.SignedMessage) {
	f.broadcast(src, msg)
}

func TestMisbehaviorKinematicsTeleport(t *testing.T) {
	det := NewMisbehaviorDetector(3000)
	var cert ieee1609.HashedID8
	cert[0] = 1
	det.Check(0, Position{0, 0}, cert, BSM{Pos: Position{100, 0}, SpeedMS: 30})
	// One second later the same cert claims a position 2km away.
	det.Check(sim.Second, Position{0, 0}, cert, BSM{Pos: Position{2100, 0}, SpeedMS: 30})
	if det.CountByKind()[MisbehaviorKinematics] != 1 {
		t.Fatalf("teleport not flagged: %+v", det.Reports)
	}
}

func TestMisbehaviorSpeedBound(t *testing.T) {
	det := NewMisbehaviorDetector(300)
	var cert ieee1609.HashedID8
	det.Check(0, Position{}, cert, BSM{Pos: Position{10, 0}, SpeedMS: 200})
	if det.CountByKind()[MisbehaviorSpeedBound] != 1 {
		t.Fatalf("supersonic car not flagged: %+v", det.Reports)
	}
}

func TestMisbehaviorFeedsRevocation(t *testing.T) {
	// End-to-end: detector findings -> CRL -> the liar's messages stop
	// verifying anywhere the CRL reaches.
	k := sim.NewKernel(5)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	rx := pki.vehicle(t, f, "rx", Position{50, 0}, 1, sim.Hour)
	det := NewMisbehaviorDetector(300)
	det.AttachTo(rx)

	liarPool, _ := ieee1609.NewPseudonymPool(pki.root, 1, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, sim.Hour)
	liar := f.AddVehicle("liar", Position{0, 0}, liarPool, pki.store())
	stopLie := k.Every(0, 100*sim.Millisecond, func() {
		cred := liarPool.Active(k.Now())
		msg, _ := cred.Sign(ieee1609.PSIDBasicSafety, BSM{Pos: Position{9000, 0}}.Encode(), k.Now(), false)
		fBroadcast(f, liar, msg)
	})
	_ = k.RunUntil(sim.Second)
	stopLie()

	offenders := det.OffendingCerts()
	if len(offenders) == 0 {
		t.Fatal("no offenders to revoke")
	}
	crl, err := pki.root.SignCRL(1, offenders)
	if err != nil {
		t.Fatal(err)
	}
	// Any store that installs the CRL now rejects the liar.
	store := pki.store()
	if err := store.SetCRL(crl, k.Now()); err != nil {
		t.Fatal(err)
	}
	msg, _ := liarPool.Active(k.Now()).Sign(ieee1609.PSIDBasicSafety, BSM{}.Encode(), k.Now(), false)
	if _, err := store.Verify(msg, k.Now(), ieee1609.VerifyOptions{}); err == nil {
		t.Fatal("revoked liar still verifies")
	}
}
