// attack.go models the mid-campaign attacker: what bundle a compromised
// update channel serves to a vehicle instead of the current campaign.
// Every attack here replays or forges *signed* artifacts — the attacker
// controls distribution, not the vehicles' verifiers — so the outcomes
// measure exactly what the metadata design does and does not stop.
package campaign

import (
	"fmt"

	"autosec/internal/ota"
	"autosec/internal/sim"
)

// AttackKind selects the mid-campaign attack.
type AttackKind int

const (
	// AttackNone: honest channel.
	AttackNone AttackKind = iota
	// AttackFreeze replays each vehicle's own current metadata — the
	// vehicle keeps answering "up to date" and silently misses the
	// campaign until the replayed metadata expires, which is when the
	// freeze becomes detectable (ErrExpiredMeta).
	AttackFreeze
	// AttackRollback replays the stale-but-signed baseline campaign to
	// every attacked vehicle. Vehicles that installed the baseline see
	// their own current metadata (a freeze); vehicles that missed it —
	// the late joiners — accept the stale firmware, which is the rollback
	// blast radius.
	AttackRollback
	// AttackImageKey is a single stolen key: the attacker signs malicious
	// image metadata with the real image-repo key but can only replay
	// legitimate director metadata, so the two repositories disagree.
	AttackImageKey
	// AttackTwoKey is the full compromise: both repository keys stolen,
	// forged metadata agrees on the malicious payload and installs.
	// Containment comes from the rollout shape (waves, abort, rotation),
	// not from verification.
	AttackTwoKey
)

// String names the attack for reports and tables.
func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackFreeze:
		return "freeze"
	case AttackRollback:
		return "rollback"
	case AttackImageKey:
		return "imagekey"
	case AttackTwoKey:
		return "twokey"
	default:
		return "unknown"
	}
}

// AttackPlan schedules an attack over the campaign's waves.
type AttackPlan struct {
	Kind AttackKind
	// FromWave is the first attacked wave index; attacked waves continue
	// to the end of the campaign (rotation neutralizes stolen keys but
	// the attacker keeps trying).
	FromWave int
}

// active reports whether wave wi is attacked.
func (p AttackPlan) active(wi int) bool {
	return p.Kind != AttackNone && wi >= p.FromWave
}

// forged holds the attacker's pre-built artifacts for one campaign: the
// per-model forged bundles constructed from whatever keys were stolen.
// Built once (bundles must be identical across vehicles and waves so the
// verification cache sees a fleet-shaped workload and attestation
// caching stays sound).
type forged struct {
	bundles []*ota.Bundle
}

// forge builds the attacker's per-model bundles against backend b at the
// moment of compromise (the current trust epoch's keys).
func forge(kind AttackKind, b *Backend, expires sim.Time) *forged {
	f := &forged{bundles: make([]*ota.Bundle, b.models)}
	switch kind {
	case AttackImageKey:
		imgKey := b.StealImageKey()
		for m := 0; m < b.models; m++ {
			evil := evilTarget(m)
			legit := b.Current(m)
			f.bundles[m] = &ota.Bundle{
				// Director metadata is replayed verbatim — its signature
				// is valid but it attests the real target, so the forged
				// image metadata can never agree with it.
				Director: legit.Director,
				Image:    ota.ForgeMetadata(imgKey, "image", "", versionEvil, []ota.Target{evil}, expires),
				Payloads: map[string][]byte{evil.Name: evilPayload(m)},
			}
		}
	case AttackTwoKey:
		dirKey, imgKey := b.StealKeys()
		for m := 0; m < b.models; m++ {
			evil := evilTarget(m)
			f.bundles[m] = &ota.Bundle{
				Director: ota.ForgeMetadata(dirKey, "director", Group(m), versionEvil, []ota.Target{evil}, expires),
				Image:    ota.ForgeMetadata(imgKey, "image", "", versionEvil, []ota.Target{evil}, expires),
				Payloads: map[string][]byte{evil.Name: evilPayload(m)},
			}
		}
	}
	return f
}

// evilPayload is the attacker's firmware image for one model.
func evilPayload(model int) []byte {
	return []byte(fmt.Sprintf("model-%d MALICIOUS implant :: ffffffffffffffff", model))
}

// evilTarget wraps the malicious payload as a validly-shaped target for
// the model's real ECU hardware at the forged version counter.
func evilTarget(model int) ota.Target {
	return ota.MakeTarget(fmt.Sprintf("model-%d/app-fw", model), versionEvil, hwid(model), evilPayload(model))
}
