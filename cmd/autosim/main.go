// Command autosim runs named end-to-end scenarios on the full vehicle
// model and prints an event narrative plus final statistics.
//
// With -seeds N a scenario replicates across N seeds on a -par-sized
// worker pool; each replicate runs on its own kernel and its narrative is
// captured and printed in seed order, so the output is identical at any
// parallelism.
//
// Observability: -trace FILE exports a Chrome trace_event JSON of the run
// (open in chrome://tracing or Perfetto), -timeline FILE a plain-text
// event timeline, and -metrics prints the obs registry snapshot as a
// table. -trace/-timeline require a single seed (one timeline per
// kernel); -metrics with -seeds N merges the per-seed snapshots into
// mean ± 95% CI columns through the same deterministic fold as the
// experiment tables.
//
// Usage:
//
// Parallel intra-vehicle simulation: -kernelpar N rebuilds the zonal
// scenario with one event kernel per zone (core's PerZoneKernels build)
// and runs the kernel group on N workers. The narrative is byte-identical
// for every N — CI diffs N=1 against N=8 — but it is a different timeline
// from the default shared-kernel build, so 0 (the default) keeps the
// legacy narrative. -trace/-timeline need the shared kernel; they reject
// -kernelpar.
//
// Fleet observability (fleet-compromise scenario): -fleetpar pins the
// fleet driver's worker count (the narrative and every deterministic
// artifact are byte-identical for any value — CI diffs 1 against 8),
// -prom FILE writes the index-order-merged fleet registry as a
// Prometheus text exposition, -fleetrate R samples vehicles into the
// flight recorder (incident vehicles are always kept), -fleettrace DIR
// exports the kept traces as Chrome trace JSON, and -progress streams
// fleet completion and vehicles/sec to stderr. -metrics prints the
// merged fleet registry instead of the old two-gauge summary.
//
// Usage:
//
//	autosim list
//	autosim run [-seed N] [-seeds N] [-par N] [-kernelpar N] [-trace F] [-timeline F] [-metrics]
//	            [-fleetpar N] [-prom F] [-fleetrate R] [-fleettrace DIR] [-progress] <scenario>
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/experiments"
	"autosec/internal/fleet"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/keyless"
	"autosec/internal/obs"
	"autosec/internal/policy"
	"autosec/internal/runner"
	"autosec/internal/she"
	"autosec/internal/sim"
	"autosec/internal/uds"
	"autosec/internal/workload"
)

// obsPair carries a scenario run's observability sinks; the zero value
// (both nil) is "observability off" and costs the scenario nothing.
type obsPair struct {
	tr  *obs.Tracer
	reg *obs.Registry
}

type scenario struct {
	desc string
	run  func(w io.Writer, seed uint64, ob obsPair)
}

// kernelPar is the -kernelpar flag: 0 keeps scenarios on their default
// shared-kernel builds; N >= 1 switches the zonal scenario to a
// per-zone-kernel vehicle with N group workers. Read-only after flag
// parsing, so replicated scenario closures may read it concurrently.
var kernelPar int

// Fleet observability flags, consumed by the fleet-compromise scenario.
// All read-only after flag parsing.
var (
	fleetPar      int     // -fleetpar: fleet driver worker count (0 = GOMAXPROCS)
	fleetRate     float64 // -fleetrate: flight-recorder sample rate
	fleetTraceDir string  // -fleettrace: Chrome trace export directory
	fleetProm     string  // -prom: Prometheus exposition output file
	fleetProgress bool    // -progress: stream drive progress to stderr
)

var scenarios = map[string]scenario{
	"baseline-drive": {
		desc: "clean 10s drive: traffic on all domains, IDS quiet, gateway deny-by-default",
		run:  runBaseline,
	},
	"headunit-compromise": {
		desc: "compromised infotainment ECU attacks the powertrain; IDS + quarantine reflex contain it",
		run:  runHeadunitCompromise,
	},
	"policy-upgrade": {
		desc: "in-field signed policy update: enable 32-bit CAN MACs, add a gateway rule and a detector",
		run:  runPolicyUpgrade,
	},
	"relay-theft": {
		desc: "PKES relay theft attempt against a car with and without distance bounding",
		run:  runRelayTheft,
	},
	"bus-off-attack": {
		desc: "targeted bit-error attack drives one victim ECU to bus-off while bystanders keep running",
		run:  runBusOffAttack,
	},
	"diagnostic-attack": {
		desc: "UDS SecurityAccess sniffing attack against the weak XOR scheme, then against SHE-CMAC",
		run:  runDiagnosticAttack,
	},
	"zonal-compromise": {
		desc: "4-zone E/E architecture: compromised infotainment zone is quarantined at its zone controller, other zones unaffected",
		run:  runZonalCompromise,
	},
	"fleet-compromise": {
		desc: "2000-vehicle pooled fleet: 20% carry a compromised head unit; per-vehicle quarantine reflexes contain the campaign",
		run:  runFleetCompromise,
	},
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		names := make([]string, 0, len(scenarios))
		for n := range scenarios {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-22s %s\n", n, scenarios[n].desc)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		seed := fs.Uint64("seed", 1, "base scenario seed")
		nseeds := fs.Int("seeds", 1, "number of replicate seeds (seed, seed+1, ...)")
		par := fs.Int("par", runtime.GOMAXPROCS(0), "replication worker pool size")
		traceFile := fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file (single seed only)")
		timelineFile := fs.String("timeline", "", "write a plain-text event timeline to this file (single seed only)")
		metrics := fs.Bool("metrics", false, "print the observability metrics snapshot after the run")
		kpar := fs.Int("kernelpar", 0, "zonal scenario: run one kernel per zone on N workers (0 = legacy shared kernel; any N >= 1 prints identical output)")
		fpar := fs.Int("fleetpar", 0, "fleet scenario: fleet driver worker count (0 = GOMAXPROCS; any value prints identical output)")
		frate := fs.Float64("fleetrate", 0, "fleet scenario: flight-recorder sample rate in [0,1] (incident vehicles always kept)")
		ftrace := fs.String("fleettrace", "", "fleet scenario: export kept flight-recorder traces as Chrome JSON under this directory")
		prom := fs.String("prom", "", "fleet scenario: write the merged fleet registry as a Prometheus text exposition to this file (single seed only)")
		prog := fs.Bool("progress", false, "fleet scenario: stream drive progress and vehicles/sec to stderr")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		if *par <= 0 {
			*par = runtime.GOMAXPROCS(0)
		}
		if *kpar < 0 {
			fmt.Fprintln(os.Stderr, "autosim: -kernelpar must be >= 0")
			os.Exit(2)
		}
		if *fpar < 0 || *frate < 0 {
			fmt.Fprintln(os.Stderr, "autosim: -fleetpar and -fleetrate must be >= 0")
			os.Exit(2)
		}
		if (*prom != "" || *ftrace != "") && *nseeds > 1 {
			fmt.Fprintln(os.Stderr, "autosim: -prom/-fleettrace need a single seed (one artifact per run); drop -seeds")
			os.Exit(2)
		}
		if *traceFile != "" && (*frate > 0 || *ftrace != "" || *prom != "") {
			fmt.Fprintln(os.Stderr, "autosim: -trace instruments vehicle 0 only; use -fleetrate/-fleettrace for fleet-wide flight recording")
			os.Exit(2)
		}
		if *ftrace != "" && *frate <= 0 {
			fmt.Fprintln(os.Stderr, "autosim: -fleettrace needs -fleetrate > 0 to enable the flight recorder")
			os.Exit(2)
		}
		fleetPar, fleetRate, fleetTraceDir, fleetProm, fleetProgress = *fpar, *frate, *ftrace, *prom, *prog
		if *kpar >= 1 && (*traceFile != "" || *timelineFile != "") {
			fmt.Fprintln(os.Stderr, "autosim: -trace/-timeline need the shared-kernel build; drop -kernelpar (per-member tracing lives in core.InstrumentParallel)")
			os.Exit(2)
		}
		kernelPar = *kpar
		sc, ok := scenarios[fs.Arg(0)]
		if !ok {
			fmt.Fprintf(os.Stderr, "autosim: unknown scenario %q (try 'autosim list')\n", fs.Arg(0))
			os.Exit(2)
		}
		if *nseeds <= 1 {
			runSingle(sc, *seed, *traceFile, *timelineFile, *metrics)
			return
		}
		if *traceFile != "" || *timelineFile != "" {
			fmt.Fprintln(os.Stderr, "autosim: -trace/-timeline need a single seed (one timeline per kernel); drop -seeds or use -seed")
			os.Exit(2)
		}
		replicate(fs.Arg(0), sc, *seed, *nseeds, *par, *metrics)
	default:
		usage()
	}
}

// runSingle executes one replicate with whatever observability the flags
// asked for.
func runSingle(sc scenario, seed uint64, traceFile, timelineFile string, metrics bool) {
	var ob obsPair
	if traceFile != "" || timelineFile != "" {
		ob.tr = obs.NewTracer(0)
	}
	if metrics {
		ob.reg = obs.NewRegistry()
	}
	sc.run(os.Stdout, seed, ob)
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			fatal(err)
		}
		if err := ob.tr.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events (%d dropped) -> %s\n", ob.tr.Len(), ob.tr.Dropped(), traceFile)
	}
	if timelineFile != "" {
		f, err := os.Create(timelineFile)
		if err != nil {
			fatal(err)
		}
		if err := ob.tr.WriteTimeline(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metrics {
		fmt.Println()
		fmt.Print(experiments.MetricsTable(ob.reg.Snapshot()))
	}
}

// replicate runs one scenario across consecutive seeds on the worker
// pool, capturing each replicate's narrative, and prints them in seed
// order — byte-identical output at any -par. With metrics on, each
// replicate fills its own registry and the per-seed snapshots fold into
// one mean ± CI table.
func replicate(name string, sc scenario, seed uint64, nseeds, par int, metrics bool) {
	type rep struct {
		narrative string
		metrics   *experiments.Table
	}
	seeds := runner.Seeds(seed, nseeds)
	results, err := runner.Map(context.Background(), seeds, par,
		func(_ context.Context, s uint64) (rep, error) {
			var buf bytes.Buffer
			var ob obsPair
			if metrics {
				ob.reg = obs.NewRegistry()
			}
			sc.run(&buf, s, ob)
			r := rep{narrative: buf.String()}
			if metrics {
				r.metrics = experiments.MetricsTable(ob.reg.Snapshot())
			}
			return r, nil
		})
	if err != nil {
		fatal(err)
	}
	perSeed := make([][]*experiments.Table, 0, len(results))
	for _, r := range results {
		fmt.Printf("=== %s seed=%d ===\n", name, r.Seed)
		if r.Err != nil {
			fatal(r.Err)
		}
		fmt.Print(r.Value.narrative)
		fmt.Println()
		if metrics {
			perSeed = append(perSeed, []*experiments.Table{r.Value.metrics})
		}
	}
	if metrics {
		agg, err := runner.Aggregate(perSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== metrics across %d seeds ===\n", nseeds)
		for _, t := range agg {
			fmt.Print(t.String())
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: autosim list | autosim run [-seed N] [-seeds N] [-par N] [-kernelpar N] [-trace F] [-timeline F] [-metrics] <scenario>")
	os.Exit(2)
}

func mustVehicle(seed uint64, policyKey []byte) *core.Vehicle {
	v, err := core.NewVehicle(core.Config{VIN: "AUTOSIM-0001", Seed: seed, PolicyKey: policyKey})
	if err != nil {
		fatal(err)
	}
	return v
}

func runBaseline(w io.Writer, seed uint64, ob obsPair) {
	v := mustVehicle(seed, nil)
	v.Instrument(ob.tr, ob.reg)
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, seed, 0.01).Netif())
	v.StartTraffic()
	_ = v.Kernel.RunUntil(10 * sim.Second)
	v.StopTraffic()

	fmt.Fprintln(w, "baseline drive complete (10s virtual)")
	names := make([]string, 0, len(v.Buses))
	for name := range v.Buses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bus := v.Buses[name]
		fmt.Fprintf(w, "  %-13s load=%5.1f%% frames=%d\n", name, 100*bus.Load(), bus.FramesOK.Value)
	}
	fmt.Fprintf(w, "  gateway: forwarded=%d blocked=%d\n", v.Gateway.Forwarded.Value, v.Gateway.Blocked.Value)
	fmt.Fprintf(w, "  IDS: %s\n", v.IDS.Summary())
}

func runHeadunitCompromise(w io.Writer, seed uint64, ob obsPair) {
	v := mustVehicle(seed, nil)
	v.Instrument(ob.tr, ob.reg)
	v.Gateway.DefaultAction = gateway.Allow // the weak pre-hardening baseline
	// In permissive mode the gateway forwards body-domain traffic into the
	// powertrain, so the clean baseline the IDS learns must include it.
	combined := append(workload.PowertrainMatrix(), workload.BodyMatrix()...)
	v.TrainIDS(workload.SyntheticTrace(combined, 10*sim.Second, seed, 0.01).Netif())
	v.ArmAutoQuarantine(core.DomainInfotainment)
	v.StartTraffic()

	fmt.Fprintln(w, "t=0s      drive starts; gateway in permissive (legacy) mode")
	attacker := can.NewController("compromised-headunit")
	v.Buses[core.DomainInfotainment].Attach(attacker)
	var quarantinedAt sim.Time = -1
	v.IDS.OnAlert(func(a ids.Alert) {
		if quarantinedAt < 0 {
			quarantinedAt = a.At
		}
	})
	v.Kernel.At(2*sim.Second, func() {
		fmt.Fprintln(w, "t=2s      head unit compromised: injecting torque frames at 1 kHz into the powertrain")
	})
	var stopAtk func()
	v.Kernel.At(2*sim.Second, func() {
		stopAtk = can.PeriodicSender(v.Kernel, attacker, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)
	})
	_ = v.Kernel.RunUntil(10 * sim.Second)
	if stopAtk != nil {
		stopAtk()
	}
	v.StopTraffic()

	if quarantinedAt >= 0 {
		fmt.Fprintf(w, "t=%-7v IDS alert -> gateway quarantined %s\n", quarantinedAt, core.DomainInfotainment)
	}
	fmt.Fprintf(w, "final: IDS %s; gateway quarantine=%v; frames dropped in quarantine=%d\n",
		v.IDS.Summary(), v.Gateway.Quarantined(core.DomainInfotainment), v.Gateway.QuarDrops.Value)
}

func runPolicyUpgrade(w io.Writer, seed uint64, ob obsPair) {
	auth, err := policy.NewAuthority()
	if err != nil {
		fatal(err)
	}
	v := mustVehicle(seed, auth.PublicKey())
	v.Instrument(ob.tr, ob.reg)
	fmt.Fprintf(w, "vehicle built; MACBits=%d, gateway rules=%d, detectors=%v\n",
		v.MACBits, len(v.Gateway.Rules()), v.IDS.Detectors())

	p := &policy.Policy{
		Name:    "hardening-2026-07",
		Version: 1,
		Directives: []policy.Directive{
			{Kind: "crypto.mac-bits", Params: map[string]string{"bits": "32"}},
			{Kind: "gateway.rule", Params: map[string]string{
				"name": "nav-to-pt", "from": core.DomainInfotainment,
				"idlo": "0x150", "idhi": "0x15F", "action": "allow", "to": core.DomainPowertrain, "rate": "50"}},
			{Kind: "ids.detector", Params: map[string]string{"name": "entropy"}},
		},
	}
	auth.Sign(p)
	if err := v.Policy.Install(p); err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "installed signed policy %s@v%d in-field\n", p.Name, p.Version)
	fmt.Fprintf(w, "now: MACBits=%d, gateway rules=%d, detectors=%v\n",
		v.MACBits, len(v.Gateway.Rules()), v.IDS.Detectors())
	fmt.Fprintf(w, "architecture upgrade log: %v\n", v.Arch.UpgradeLog)

	// A replayed (stale) policy is refused.
	if err := v.Policy.Install(p); err != nil {
		fmt.Fprintf(w, "replay of the same policy correctly refused: %v\n", err)
	}
}

func runRelayTheft(w io.Writer, seed uint64, ob obsPair) {
	_ = seed
	var key [16]byte
	copy(key[:], "autosim-pkes-key")
	fob := keyless.NewFob(key)
	fob.Pos = keyless.Position{X: 60} // fob on the hallway table
	relay := &keyless.Relay{
		PosA:    keyless.Position{X: 1},
		PosB:    keyless.Position{X: 59.5},
		Latency: 10 * sim.Microsecond,
	}

	plain := keyless.NewCar(key)
	plain.Instrument(ob.tr, ob.reg, nil)
	rtt, err := plain.TryRelayUnlock(relay, fob)
	fmt.Fprintf(w, "legacy PKES: relay attack rtt=%v -> unlocked=%v\n", rtt, err == nil)

	hardened := keyless.NewCar(key)
	hardened.DistanceBounding = true
	hardened.RTTBudget = 2*sim.Millisecond + 200*sim.Nanosecond
	hardened.Instrument(ob.tr, nil, nil) // one registry owner: the legacy car
	rtt, err = hardened.TryRelayUnlock(relay, fob)
	fmt.Fprintf(w, "distance-bounded PKES: relay attack rtt=%v -> unlocked=%v (%v)\n", rtt, err == nil, err)

	fob.Pos = keyless.Position{X: 1}
	rtt, err = hardened.TryUnlock(fob)
	fmt.Fprintf(w, "owner at the door: rtt=%v -> unlocked=%v\n", rtt, err == nil)
}

func runBusOffAttack(w io.Writer, seed uint64, ob obsPair) {
	v := mustVehicle(seed, nil)
	v.Instrument(ob.tr, ob.reg)
	bus := v.Buses[core.DomainPowertrain]
	victim := can.NewController("brake-ecu")
	bystander := can.NewController("engine-ecu")
	bus.Attach(victim)
	bus.Attach(bystander)

	fmt.Fprintln(w, "t=0s      powertrain running: brake-ecu (0x100) and engine-ecu (0x0C0) both periodic")
	stopV := can.PeriodicSender(v.Kernel, victim, can.Frame{ID: 0x100, Data: []byte{1}}, 10*sim.Millisecond, 0)
	stopB := can.PeriodicSender(v.Kernel, bystander, can.Frame{ID: 0x0C0, Data: []byte{2}}, 10*sim.Millisecond, 0)

	v.Kernel.At(sim.Second, func() {
		fmt.Fprintln(w, "t=1s      attacker begins forcing bit errors on every brake-ecu transmission")
		bus.TargetedError = func(_ *can.Frame, sender *can.Controller) bool {
			return sender.Name == "brake-ecu"
		}
	})
	var busOffAt sim.Time = -1
	v.Kernel.Every(0, 10*sim.Millisecond, func() {
		if busOffAt < 0 && victim.State() == can.BusOff {
			busOffAt = v.Kernel.Now()
		}
	})
	_ = v.Kernel.RunUntil(3 * sim.Second)
	stopV()
	stopB()

	if busOffAt >= 0 {
		fmt.Fprintf(w, "t=%-7v brake-ecu entered bus-off (TEC > 255) and disconnected itself\n", busOffAt)
	}
	tec, _ := victim.Counters()
	fmt.Fprintf(w, "final: victim state=%v TEC=%d dropped=%d; bystander state=%v sent=%d\n",
		victim.State(), tec, victim.FramesDropped.Value,
		bystander.State(), bystander.FramesSent.Value)
	fmt.Fprintln(w, "(the error-handling that gives CAN its safety is itself the DoS lever)")
}

func runDiagnosticAttack(w io.Writer, seed uint64, ob obsPair) {
	weak := uds.WeakXOR{Constant: 0x5EC0DE42}
	v := mustVehicle(seed, nil)
	v.Instrument(ob.tr, ob.reg)
	d := v.AttachDiagnostics(core.DomainInfotainment, weak)

	var seedBytes, keyBytes []byte
	v.Buses[core.DomainInfotainment].Sniff(func(_ sim.Time, f *can.Frame, _ *can.Controller, _ bool) {
		if len(f.Data) >= 7 && f.Data[1] == 0x67 && f.Data[2] == 0x01 {
			seedBytes = append([]byte(nil), f.Data[3:7]...)
		}
		if len(f.Data) >= 7 && f.Data[1] == 0x27 && f.Data[2] == 0x02 {
			keyBytes = append([]byte(nil), f.Data[3:7]...)
		}
	})
	if _, err := v.RunDiag(d.Tester, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		fatal(err)
	}
	if err := v.RunUnlock(d.Tester, 1, weak); err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "workshop unlock observed: seed=%x key=%x\n", seedBytes, keyBytes)
	var c uint32
	for i := 0; i < 4; i++ {
		c = c<<8 | uint32(seedBytes[i]^keyBytes[i])
	}
	derived := uds.WeakXOR{Constant: c - 1}
	fmt.Fprintf(w, "attacker derives constant %#08x offline\n", derived.Constant)

	victim := mustVehicle(seed+1, nil)
	_ = victim.AttachDiagnostics(core.DomainInfotainment, weak)
	intruder := victim.NewIntruderTester(core.DomainInfotainment)
	_, _ = victim.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionExtended})
	if err := victim.RunUnlock(intruder, 1, derived); err == nil {
		fmt.Fprintln(w, "second vehicle of the model line: UNLOCKED with the derived constant")
	} else {
		fmt.Fprintf(w, "second vehicle resisted: %v\n", err)
	}

	hardened := mustVehicle(seed+2, nil)
	var k16 [16]byte
	copy(k16[:], "per-vehicle-key!")
	_ = hardened.SHE.ProvisionKey(she.Key4, k16, she.Flags{KeyUsage: true})
	_ = hardened.AttachDiagnostics(core.DomainInfotainment, uds.SHECMAC{Engine: hardened.SHE, Slot: she.Key4})
	intruder2 := hardened.NewIntruderTester(core.DomainInfotainment)
	_, _ = hardened.RunDiag(intruder2, []byte{uds.SvcSessionControl, uds.SessionExtended})
	if err := hardened.RunUnlock(intruder2, 1, derived); err != nil {
		fmt.Fprintf(w, "SHE-CMAC vehicle resisted the same chain: %v\n", err)
	}
}

func runZonalCompromise(w io.Writer, seed uint64, ob obsPair) {
	v, err := core.NewVehicle(core.Config{
		VIN:   "AUTOSIM-Z4",
		Seed:  seed,
		Zonal: &core.ZonalConfig{Zones: 4, PerZoneKernels: kernelPar >= 1},
	})
	if err != nil {
		fatal(err)
	}
	v.Instrument(ob.tr, ob.reg) // -kernelpar rejects -trace, so tr is nil on parallel builds
	v.SetParallelism(kernelPar)
	v.Zonal.SetDefaultAction(gateway.Allow) // the weak pre-hardening baseline
	combined := append(workload.PowertrainMatrix(), workload.BodyMatrix()...)
	v.TrainIDS(workload.SyntheticTrace(combined, 10*sim.Second, seed, 0.01).Netif())
	v.ArmAutoQuarantine(core.DomainInfotainment)
	v.StartTraffic()

	if kernelPar >= 1 {
		// The worker count deliberately stays out of the narrative: CI
		// diffs -kernelpar 1 against -kernelpar 8 byte for byte.
		fmt.Fprintln(w, "engine: one event kernel per zone, conservative backbone-lookahead sync")
	}
	fmt.Fprintln(w, "zonal topology (Ethernet backbone, one zone controller each):")
	for _, z := range v.Zonal.Zones() {
		locals := strings.Join(z.Locals(), ", ")
		if locals == "" {
			locals = "(no local domains)"
		}
		fmt.Fprintf(w, "  %-4s -> %s\n", z.Name, locals)
	}

	fmt.Fprintln(w, "t=0s      drive starts; zone controllers in permissive (legacy) mode")
	attacker := can.NewController("compromised-headunit")
	v.Buses[core.DomainInfotainment].Attach(attacker)
	var quarantinedAt sim.Time = -1
	v.IDS.OnAlert(func(a ids.Alert) {
		if quarantinedAt < 0 {
			quarantinedAt = a.At
		}
	})
	// The attacker lives in the infotainment zone: on a -kernelpar build
	// its injection schedule must run on that zone's member kernel. The
	// narrative write is safe — this callback is the only in-run writer.
	atkK := v.KernelFor(core.DomainInfotainment)
	var stopAtk func()
	atkK.At(2*sim.Second, func() {
		fmt.Fprintln(w, "t=2s      head unit compromised: injecting torque frames at 1 kHz toward the powertrain zone")
		stopAtk = can.PeriodicSender(atkK, attacker, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)
	})
	_ = v.RunUntil(10 * sim.Second)
	if stopAtk != nil {
		stopAtk()
	}
	v.StopTraffic()

	infoZone, _ := v.Zonal.ZoneOf(core.DomainInfotainment)
	if quarantinedAt >= 0 {
		fmt.Fprintf(w, "t=%-7v IDS alert -> backbone port of zone %s quarantined; local traffic inside it still flows\n",
			quarantinedAt, infoZone.Name)
	}
	fmt.Fprintln(w, "final per-zone controller stats:")
	for _, z := range v.Zonal.Zones() {
		fmt.Fprintf(w, "  %-4s forwarded=%-6d blocked=%-4d dropped-in-quarantine=%-5d quarantined=%v\n",
			z.Name, z.GW.Forwarded.Value, z.GW.Blocked.Value, z.GW.QuarDrops.Value,
			v.Zonal.ZoneQuarantined(z.Name))
	}
	fmt.Fprintf(w, "backbone: frames=%d deliveries=%d\n",
		v.Zonal.BackboneFramesTotal(), v.Zonal.BackboneDeliveriesTotal())
	fmt.Fprintf(w, "IDS: %s\n", v.IDS.Summary())
}

// runFleetCompromise scales the head-unit compromise to a fleet: every
// fifth vehicle of a pooled 2000-vehicle population carries the attacker,
// each vehicle runs its own 7ms containment scenario on the sharded fleet
// driver, and the narrative reports the campaign's fleet-level shape —
// how many reflexes fired, what leaked through before they did, and the
// real wall-clock throughput of the pooled simulation.
//
// The drive runs on the observability plane: -metrics/-prom merge every
// vehicle's registry in index order (so the exposition is byte-identical
// at any -fleetpar), -fleetrate samples flight-recorder traces with
// incident vehicles always kept, and -progress streams wall-clock
// telemetry to stderr where it cannot perturb the deterministic
// narrative.
func runFleetCompromise(w io.Writer, seed uint64, ob obsPair) {
	const n = 2000
	cfg := core.Config{VIN: "AUTOSIM-FLEET", Seed: seed, Zonal: &core.ZonalConfig{Zones: 4}}
	type res struct {
		compromised            bool
		attackThrough, blocked int
		quarantined, isolated  int
	}
	opts := fleet.ObsOptions{
		Metrics:   ob.reg != nil || fleetProm != "",
		TraceRate: fleetRate,
	}
	if ob.tr != nil && (opts.Metrics || opts.TraceRate > 0) {
		// DriveObs instruments each vehicle before the scenario runs; the
		// legacy vehicle-0 -trace hook below would overwrite that wiring.
		fatal(fmt.Errorf("-trace is incompatible with fleet-wide observability; use -fleetrate/-fleettrace"))
	}
	if fleetProgress {
		opts.Observer = fleet.NewProgressWriter(os.Stderr, n)
	}
	fmt.Fprintf(w, "fleet: %d vehicles, 4-zone E/E topology, every 5th head unit compromised\n", n)
	start := time.Now()
	results, obsRes, err := fleet.DriveObs(context.Background(), fleet.Driver{Cfg: cfg, N: n, Workers: fleetPar}, opts,
		func(idx int, v *core.Vehicle) (res, error) {
			r := res{compromised: idx%5 == 0}
			k := v.Kernel
			// Vehicle 0 stands in for the fleet on -trace: Reset detaches
			// instrumentation, so pooled reuse by later indices stays silent.
			// The registry keeps fleet-level gauges only (set after the run).
			if idx == 0 && ob.tr != nil {
				v.Instrument(ob.tr, nil)
			}
			v.Zonal.SetRules([]*gateway.Rule{{
				Name: "legacy-open", From: core.DomainInfotainment, To: []string{core.DomainPowertrain},
				IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow,
			}})
			attackSent := 0
			if r.compromised {
				mal := can.NewController("headunit")
				v.Buses[core.DomainInfotainment].Attach(mal)
				st := k.Stream("fleet-phase")
				k.Every(st.Duration(sim.Millisecond, 3*sim.Millisecond), sim.Millisecond, func() {
					attackSent++
					_ = mal.Send(can.Frame{ID: 0x0C0, Data: []byte{0xFF, 0xFF}}, nil)
				})
			}
			mon := can.NewController("monitor")
			v.Buses[core.DomainPowertrain].Attach(mon)
			mon.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
				if f.ID != 0x0C0 {
					return
				}
				r.attackThrough++
				if r.attackThrough >= 3 && r.quarantined == 0 {
					_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
					r.quarantined = 1
					z, _ := v.Zonal.ZoneOf(core.DomainInfotainment)
					for _, name := range v.Zonal.Domains() {
						if zz, ok := v.Zonal.ZoneOf(name); ok && zz == z {
							r.isolated++
						}
					}
				}
			})
			if err := k.RunUntil(7 * sim.Millisecond); err != nil {
				return r, err
			}
			r.blocked = attackSent - r.attackThrough
			return r, nil
		})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	// Wall-clock throughput goes to stderr: the narrative on w must stay
	// byte-deterministic so replicated runs stay identical at any -par.
	fmt.Fprintf(os.Stderr, "autosim: simulated %d vehicles in %v (%.0f vehicles/sec)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())

	var compromised, quarantined, through, blocked, isolated int
	for _, r := range results {
		if !r.compromised {
			continue
		}
		compromised++
		quarantined += r.quarantined
		through += r.attackThrough
		blocked += r.blocked
		isolated += r.isolated
	}
	fmt.Fprintf(w, "campaign: %d compromised vehicles; %d quarantine reflexes fired\n", compromised, quarantined)
	fmt.Fprintf(w, "containment: %d attack frames reached powertrains fleet-wide, %d blocked after quarantine\n",
		through, blocked)
	if quarantined > 0 {
		fmt.Fprintf(w, "blast radius: %.1f domains isolated per quarantined vehicle\n",
			float64(isolated)/float64(quarantined))
	}
	if opts.TraceRate > 0 {
		// Deterministic selection: same set at any -fleetpar.
		fmt.Fprintf(w, "flight recorder: %d traces kept (%d incident vehicles)\n",
			len(obsRes.Traces), obsRes.Stats.TracesInteresting)
	}
	if opts.Metrics {
		reg := obsRes.Registry
		// Campaign-level gauges ride in the same registry as the merged
		// per-vehicle metrics; both are pure functions of (seed, n).
		reg.Gauge("fleet/quarantined_fraction").Set(float64(quarantined) / float64(n))
		reg.Gauge("fleet/attack_through_per_compromised").Set(float64(through) / float64(compromised))
		if ob.reg != nil {
			if err := ob.reg.Merge(reg); err != nil {
				fatal(err)
			}
		}
		if fleetProm != "" {
			if err := writeProm(fleetProm, reg); err != nil {
				fatal(err)
			}
		}
	}
	if fleetTraceDir != "" {
		paths, err := obsRes.WriteChromeTraces(fleetTraceDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "flight recorder: %d Chrome traces under %s\n", len(paths), fleetTraceDir)
	}
}

// writeProm writes reg as a Prometheus text exposition to path.
func writeProm(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "autosim: %v\n", err)
	os.Exit(1)
}
