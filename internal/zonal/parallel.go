// Partitioned zonal fabrics: one sim.Kernel per zone, synchronized by a
// conservative sim.KernelGroup, with the Ethernet backbone as the kernel
// boundary. Each zone's gateway, local media and workloads live entirely
// on that zone's kernel; the only cross-kernel interaction is a backbone
// crossing, which the partitioned backbone models as a timestamped
// inter-kernel message arriving ingress-serialization + switch-hop +
// egress-serialization after the send — the exact per-frame timing of
// the shared ethernet.Switch backbone, so a partitioned fabric delivers
// every frame at the same virtual instant a shared one would.
//
// Because no frame can cross faster than the minimum-size crossing,
// ethernet.TunnelLookahead(hop, linkBps) bounds every message distance
// and serves as the group's lookahead: zones dispatch whole windows of
// intra-zone events in parallel without ever seeing a cross-zone frame
// arrive in their past.
//
// The message path is allocation-free in steady state: frame payloads
// copy into pooled message nodes (netif.Frame.CopyInto reuses each
// node's buffer), delivery callbacks are prebound once per node, and the
// per-port node pools are mutex-guarded because a node is minted by the
// sending zone's goroutine and recycled by the receiving zone's.
package zonal

import (
	"errors"
	"sync"

	"autosec/internal/ethernet"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// NewPartitioned creates a fabric whose zones run on per-zone kernels of
// g: zone i's gateway binds to g.Kernel(i), and the backbone becomes the
// kernel boundary. hop and linkBps parameterize the modelled backbone
// switch (use 2*sim.Microsecond and ethernet.DefaultLinkBps to match the
// shared-backbone build). g's lookahead must not exceed the minimum
// backbone crossing time, or windows could outrun in-flight frames.
func NewPartitioned(g *sim.KernelGroup, hop sim.Duration, linkBps int64) *Fabric {
	if min := ethernet.TunnelLookahead(hop, linkBps); g.Lookahead() > min {
		panic("zonal: kernel-group lookahead exceeds the minimum backbone crossing time")
	}
	return &Fabric{
		group:      g,
		hop:        hop,
		linkBps:    linkBps,
		byName:     make(map[string]*Zone),
		domainZone: make(map[string]*Zone),
	}
}

// Partitioned reports whether the fabric runs one kernel per zone.
func (f *Fabric) Partitioned() bool { return f.group != nil }

// Group returns the kernel group of a partitioned fabric (nil otherwise).
func (f *Fabric) Group() *sim.KernelGroup { return f.group }

// Kernel returns the kernel the zone runs on: its member kernel in a
// partitioned fabric, the shared fabric kernel otherwise. Local media
// attached to the zone must be built on this kernel.
func (z *Zone) Kernel() *sim.Kernel { return z.k }

// Member returns the zone's kernel-group member index (0 in shared-kernel
// fabrics).
func (z *Zone) Member() int { return z.member }

// BackboneDeliveriesCount reports backbone-ingress frames this zone
// accepted and delivered locally. On partitioned fabrics, read only
// between runs.
func (z *Zone) BackboneDeliveriesCount() int64 { return z.bbDeliveries.Value }

// BackboneFramesTotal reports every frame the backbone carried: the
// shared-medium counter, or the sum of per-zone egress counters in a
// partitioned fabric. Partitioned counters are per-zone precisely so the
// hot path never shares a cache line across kernels; read totals only
// between runs.
func (f *Fabric) BackboneFramesTotal() int64 {
	if f.group == nil {
		return f.BackboneFrames.Value
	}
	var n int64
	for _, bn := range f.bb {
		n += bn.port.frames.Value
	}
	return n
}

// BackboneDeliveriesTotal reports backbone-ingress frames zones accepted
// and delivered locally, across both fabric flavors. Read only between
// runs on partitioned fabrics.
func (f *Fabric) BackboneDeliveriesTotal() int64 {
	if f.group == nil {
		return f.BackboneDeliveries.Value
	}
	var n int64
	for _, z := range f.zones {
		n += z.bbDeliveries.Value
	}
	return n
}

// RequestZoneQuarantine isolates the zone owning targetDomain, requested
// from the zone owning fromDomain — the cross-zone containment reflex
// (an IDS in one zone cutting another zone's uplink). On a shared-kernel
// fabric, or when both domains share a zone, it applies immediately; on
// a partitioned fabric the request crosses the kernel boundary as a
// timestamped control message and takes effect one backbone lookahead
// later, which is also what keeps it deterministic at any parallelism.
// Callable from an event on the requesting zone's kernel, or between
// runs.
func (f *Fabric) RequestZoneQuarantine(fromDomain, targetDomain string) error {
	tz, ok := f.domainZone[targetDomain]
	if !ok {
		return errors.New("zonal: unknown domain " + targetDomain)
	}
	if f.group == nil {
		return f.QuarantineZone(tz.Name)
	}
	sz, ok := f.domainZone[fromDomain]
	if !ok {
		return errors.New("zonal: unknown domain " + fromDomain)
	}
	if sz == tz {
		return f.QuarantineZone(tz.Name)
	}
	f.group.Send(sz.member, tz.member, sz.k.Now()+f.group.Lookahead(), tz.quarantineFn)
	return nil
}

// backboneNet is one zone's view of the partitioned backbone: a
// netif.Medium whose single port belongs to that zone's gateway. A send
// floods to every other zone's port (tunnel frames are broadcast, and
// gateway-port MACs are never unicast targets, matching the shared
// switch's behavior), each copy riding an inter-kernel message.
type backboneNet struct {
	fab    *Fabric
	member int
	port   *backbonePort
	taps   []netif.TapFunc
}

func (m *backboneNet) Kind() netif.Kind { return netif.Ethernet }
func (m *backboneNet) Name() string     { return "zonal-backbone" }

// Tap observes this zone's backbone egress (each frame fires exactly one
// zone's taps — its sender's — so fabric-wide tap counts see every frame
// once, like a tap on the shared switch).
func (m *backboneNet) Tap(fn netif.TapFunc) { m.taps = append(m.taps, fn) }

func (m *backboneNet) Open(name string) (netif.Port, error) {
	if m.port != nil {
		return nil, errors.New("zonal: partitioned backbone port already open")
	}
	m.port = &backbonePort{net: m, name: name}
	return m.port, nil
}

// backbonePort is the zone gateway's backbone attachment.
type backbonePort struct {
	net  *backboneNet
	name string
	recv netif.RecvFunc

	// frames counts frames this zone put on the backbone (egress).
	frames sim.Counter

	// Pooled in-flight message nodes for frames addressed *to* this
	// zone. Minted under mu by remote sending kernels, recycled under mu
	// by this zone's kernel after delivery.
	mu   sync.Mutex
	free []*bbMsg
}

func (p *backbonePort) Name() string                { return p.name }
func (p *backbonePort) Kind() netif.Kind            { return netif.Ethernet }
func (p *backbonePort) OnReceive(fn netif.RecvFunc) { p.recv = fn }

// Send floods the frame to every other zone. The arrival instant is
// identical for all destinations — send + ingress serialization + hop +
// egress serialization, the shared switch's exact store-and-forward
// timing — and is always at least the group lookahead away, because the
// lookahead is derived from the minimum-size crossing.
func (p *backbonePort) Send(f *netif.Frame) error {
	fab := p.net.fab
	src := p.net.member
	now := fab.zones[src].k.Now()
	p.frames.Inc()
	for _, tap := range p.net.taps {
		tap(now, f, false)
	}
	serial := ethernet.WireDuration(len(f.Payload), fab.linkBps)
	at := now + serial + fab.hop + serial
	for di := range fab.bb {
		if di == src {
			continue
		}
		dst := fab.bb[di].port
		m := dst.allocMsg()
		m.at = at
		f.CopyInto(&m.frame)
		fab.group.Send(src, di, at, m.fn)
	}
	return nil
}

// bbMsg is one pooled in-flight backbone frame. fn is prebound to
// deliver at mint time, so re-sends through the pool allocate nothing.
type bbMsg struct {
	port  *backbonePort
	at    sim.Time
	frame netif.Frame
	fn    func()
}

func (p *backbonePort) allocMsg() *bbMsg {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	m := &bbMsg{port: p}
	m.fn = m.deliver
	return m
}

// deliver runs on the receiving zone's kernel at the frame's arrival
// instant: hand the frame view to the gateway ingress, then recycle the
// node (keeping its payload buffer for reuse).
func (m *bbMsg) deliver() {
	p := m.port
	if p.recv != nil {
		p.recv(m.at, &m.frame)
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// InstrumentZones is Instrument for partitioned fabrics: zone i's
// gateway attaches to tracers[i] — per-zone tracers, since one shared
// ring cannot take concurrent appends from several kernels — and the
// registry gets per-zone metrics plus the fabric totals. Registry
// counters are only written by their owning zone's kernel and must only
// be read between runs. tracers may be nil or shorter than the zone
// list; missing entries mean metrics-only for that zone.
func (f *Fabric) InstrumentZones(tracers []*obs.Tracer, reg *obs.Registry) {
	for i, z := range f.zones {
		var tr *obs.Tracer
		if i < len(tracers) {
			tr = tracers[i]
		}
		z.GW.InstrumentAs(tr, reg, "zone-"+z.Name)
		if reg != nil {
			z := z
			reg.Probe("zone-"+z.Name+"/backbone_deliveries", func() float64 { return float64(z.bbDeliveries.Value) })
		}
	}
	if reg != nil {
		reg.Probe("zonal/backbone_frames", func() float64 { return float64(f.BackboneFramesTotal()) })
		reg.Probe("zonal/backbone_deliveries", func() float64 { return float64(f.BackboneDeliveriesTotal()) })
	}
}
