package ids

import (
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/sim"
	"autosec/internal/someip"
)

// This file holds the per-medium semantic detector families. Where the
// statistical detectors see only (key, time, payload) and catch what
// perturbs those statistics, these models encode each medium's native
// contract — who owns a TDMA slot, what the LIN schedule permits, which
// MACs exist, which services a client may use — and catch the attacks
// that leave the statistics untouched: a masquerading FlexRay sender in
// the victim's own slot, a LIN injection timed exactly between polls, a
// spoofed MAC sending well-formed traffic, a notification nobody
// subscribed to.
//
// All four implement MediumDetector, so the registry routes them only
// their own medium's records. Alert volume is episode-bounded: each
// distinct violation alerts once, then stays quiet until the state
// recovers, which keeps golden tables stable and alert floods out of
// the audit log.

// FlexRaySlotDetector learns the static-segment slot-to-owner binding
// and the dynamic-segment slot usage from clean traffic, then enforces
// TDMA position: a static frame must come from its slot's learned
// owner with a strictly advancing cycle counter, and a slot that was
// static in training must never appear in the dynamic segment.
type FlexRaySlotDetector struct {
	owner     map[uint32]string // static slot -> learned owner ("" = ambiguous)
	dynSeen   map[uint32]bool   // slots legitimately used in the dynamic segment
	lastCycle map[uint32]int64  // per static slot, last live cycle counter
	alerted   map[uint32]uint8  // per-slot episode bits (frAlert*)
}

const (
	frAlertOwner   uint8 = 1 << 0
	frAlertUnknown uint8 = 1 << 1
	frAlertSegment uint8 = 1 << 2
)

// NewFlexRaySlotDetector creates an untrained detector.
func NewFlexRaySlotDetector() *FlexRaySlotDetector {
	return &FlexRaySlotDetector{
		owner:     make(map[uint32]string),
		dynSeen:   make(map[uint32]bool),
		lastCycle: make(map[uint32]int64),
		alerted:   make(map[uint32]uint8),
	}
}

// Name implements Detector.
func (d *FlexRaySlotDetector) Name() string { return "fr-slot" }

// Medium implements MediumDetector.
func (d *FlexRaySlotDetector) Medium() netif.Kind { return netif.FlexRay }

// Train implements Detector: it learns slot ownership from the static
// segment and the set of dynamically used slots. A slot with multiple
// static senders in clean traffic is recorded as ambiguous and exempt
// from the ownership check.
func (d *FlexRaySlotDetector) Train(trace *netif.Trace) {
	clear(d.owner)
	clear(d.dynSeen)
	clear(d.lastCycle)
	clear(d.alerted)
	for i := range trace.Records {
		r := &trace.Records[i]
		if r.Frame.Medium != netif.FlexRay || r.Corrupted {
			continue
		}
		id := r.Frame.ID
		if r.Frame.Flags&netif.FlagDynamic != 0 {
			d.dynSeen[id] = true
			continue
		}
		if own, seen := d.owner[id]; seen && own != r.Frame.Sender {
			d.owner[id] = ""
		} else if !seen {
			d.owner[id] = r.Frame.Sender
		}
	}
}

// Observe implements Detector.
func (d *FlexRaySlotDetector) Observe(rec netif.Record) []Alert {
	if rec.Frame.Medium != netif.FlexRay || rec.Corrupted {
		return nil
	}
	id := rec.Frame.ID
	k := rec.Frame.Key()
	var alerts []Alert
	if rec.Frame.Flags&netif.FlagDynamic != 0 {
		// Dynamic traffic in unlearned slots is the fabric's normal
		// on-demand path; a learned *static* slot in the dynamic segment
		// is a TDMA position violation.
		if _, static := d.owner[id]; static {
			if d.alerted[id]&frAlertSegment == 0 {
				d.alerted[id] |= frAlertSegment
				alerts = append(alerts, alertFor(rec.At, d.Name(), k,
					fmt.Sprintf("static slot %d transmitted in dynamic segment by %q", id, rec.Frame.Sender)))
			}
		}
		return alerts
	}
	own, known := d.owner[id]
	switch {
	case !known:
		if d.alerted[id]&frAlertUnknown == 0 {
			d.alerted[id] |= frAlertUnknown
			alerts = append(alerts, alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("static frame in unassigned slot %d from %q", id, rec.Frame.Sender)))
		}
	case own != "" && rec.Frame.Sender != own:
		if d.alerted[id]&frAlertOwner == 0 {
			d.alerted[id] |= frAlertOwner
			alerts = append(alerts, alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("slot %d owned by %q, frame from %q", id, own, rec.Frame.Sender)))
		}
	default:
		// Conforming frame from the owner: close any ownership episode.
		d.alerted[id] &^= frAlertOwner
	}
	c := int64(rec.Frame.Aux)
	if last, seen := d.lastCycle[id]; seen && c < last {
		alerts = append(alerts, alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("cycle counter regressed: %d after %d in slot %d", c, last, id)))
	}
	d.lastCycle[id] = c
	return alerts
}

// LINScheduleDetector learns the master's schedule table from clean
// traffic — the set of scheduled identifiers and which identifier may
// follow which — and alerts on frames outside it: unscheduled IDs, and
// scheduled IDs appearing out of schedule position (the signature of a
// sporadic injection timed to dodge the interval detector).
type LINScheduleDetector struct {
	ids     map[uint32]bool
	succ    map[uint64]bool // prev<<32|cur pairs seen in training
	trained bool

	last    uint32
	hasLast bool
	alerted map[uint32]bool // unscheduled-ID episode dedup
}

// NewLINScheduleDetector creates an untrained detector.
func NewLINScheduleDetector() *LINScheduleDetector {
	return &LINScheduleDetector{
		ids:     make(map[uint32]bool),
		succ:    make(map[uint64]bool),
		alerted: make(map[uint32]bool),
	}
}

// Name implements Detector.
func (d *LINScheduleDetector) Name() string { return "lin-schedule" }

// Medium implements MediumDetector.
func (d *LINScheduleDetector) Medium() netif.Kind { return netif.LIN }

// Train implements Detector.
func (d *LINScheduleDetector) Train(trace *netif.Trace) {
	clear(d.ids)
	clear(d.succ)
	clear(d.alerted)
	d.last, d.hasLast, d.trained = 0, false, false
	var prev uint32
	hasPrev := false
	for i := range trace.Records {
		r := &trace.Records[i]
		if r.Frame.Medium != netif.LIN || r.Corrupted {
			continue
		}
		id := r.Frame.ID
		d.ids[id] = true
		if hasPrev {
			d.succ[uint64(prev)<<32|uint64(id)] = true
		}
		prev, hasPrev = id, true
		d.trained = true
	}
}

// Observe implements Detector. The schedule pointer only advances on
// conforming frames, so one injected frame raises one alert instead of
// also implicating the legitimate frame that follows it.
func (d *LINScheduleDetector) Observe(rec netif.Record) []Alert {
	if rec.Frame.Medium != netif.LIN || rec.Corrupted || !d.trained {
		return nil
	}
	id := rec.Frame.ID
	k := rec.Frame.Key()
	if !d.ids[id] {
		if d.alerted[id] {
			return nil
		}
		d.alerted[id] = true
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("unscheduled frame id %#x", id))}
	}
	if d.hasLast && !d.succ[uint64(d.last)<<32|uint64(id)] {
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("schedule deviation: id %#x after %#x", id, d.last))}
	}
	d.last, d.hasLast = id, true
	return nil
}

// ethBindKey binds a source MAC to an identifier (EtherType).
type ethBindKey struct {
	src netif.HWAddr
	id  uint32
}

// ethVLANKey binds an identifier to a VLAN.
type ethVLANKey struct {
	id   uint32
	vlan uint32
}

// EthernetAddrDetector learns the population of source MACs, each
// MAC's identifier bindings and each identifier's VLANs from clean
// traffic, then alerts on unknown source addresses (a new or spoofed
// station), MAC-to-identifier binding drift (a known station sending
// another station's traffic class) and VLAN anomalies.
type EthernetAddrDetector struct {
	srcs    map[netif.HWAddr]bool
	bind    map[ethBindKey]bool
	vlans   map[ethVLANKey]bool
	trained bool

	srcAlerted  map[netif.HWAddr]bool
	bindAlerted map[ethBindKey]bool
	vlanAlerted map[ethVLANKey]bool
}

// NewEthernetAddrDetector creates an untrained detector.
func NewEthernetAddrDetector() *EthernetAddrDetector {
	return &EthernetAddrDetector{
		srcs:        make(map[netif.HWAddr]bool),
		bind:        make(map[ethBindKey]bool),
		vlans:       make(map[ethVLANKey]bool),
		srcAlerted:  make(map[netif.HWAddr]bool),
		bindAlerted: make(map[ethBindKey]bool),
		vlanAlerted: make(map[ethVLANKey]bool),
	}
}

// Name implements Detector.
func (d *EthernetAddrDetector) Name() string { return "eth-addr" }

// Medium implements MediumDetector.
func (d *EthernetAddrDetector) Medium() netif.Kind { return netif.Ethernet }

// Train implements Detector.
func (d *EthernetAddrDetector) Train(trace *netif.Trace) {
	clear(d.srcs)
	clear(d.bind)
	clear(d.vlans)
	clear(d.srcAlerted)
	clear(d.bindAlerted)
	clear(d.vlanAlerted)
	d.trained = false
	for i := range trace.Records {
		r := &trace.Records[i]
		if r.Frame.Medium != netif.Ethernet || r.Corrupted {
			continue
		}
		d.srcs[r.Frame.Src] = true
		d.bind[ethBindKey{r.Frame.Src, r.Frame.ID}] = true
		d.vlans[ethVLANKey{r.Frame.ID, r.Frame.Aux}] = true
		d.trained = true
	}
}

func macString(a netif.HWAddr) string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Observe implements Detector.
func (d *EthernetAddrDetector) Observe(rec netif.Record) []Alert {
	if rec.Frame.Medium != netif.Ethernet || rec.Corrupted || !d.trained {
		return nil
	}
	k := rec.Frame.Key()
	src := rec.Frame.Src
	if !d.srcs[src] {
		// The station itself is the anomaly; its traffic bindings are
		// noise on top, so they are not separately alerted.
		if d.srcAlerted[src] {
			return nil
		}
		d.srcAlerted[src] = true
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("unknown source MAC %s", macString(src)))}
	}
	var alerts []Alert
	bk := ethBindKey{src, rec.Frame.ID}
	if !d.bind[bk] && !d.bindAlerted[bk] {
		d.bindAlerted[bk] = true
		alerts = append(alerts, alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("MAC binding drift: %s now sends id %#x", macString(src), rec.Frame.ID)))
	}
	vk := ethVLANKey{rec.Frame.ID, rec.Frame.Aux}
	if !d.vlans[vk] && !d.vlanAlerted[vk] {
		d.vlanAlerted[vk] = true
		alerts = append(alerts, alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("VLAN anomaly: id %#x on VLAN %d", rec.Frame.ID, rec.Frame.Aux)))
	}
	return alerts
}

// SOMEIPDetector watches SOME/IP service behaviour on the Ethernet
// wire through the zero-copy header peek: requests to services or
// methods outside the learned interface, notifications for eventgroups
// without an observed subscription, and subscription-rate floods. It
// learns the service interface and the baseline subscription set from
// clean traffic and keeps tracking subscribe/ack exchanges live, so a
// legitimately renewed subscription never alerts.
type SOMEIPDetector struct {
	// EtherType selects the frames to decode (default EtherTypeSOMEIP).
	EtherType uint32
	// SubWindow and MaxSubsPerWindow bound the subscription rate; more
	// than MaxSubsPerWindow subscribes inside one window alerts once.
	SubWindow        sim.Duration
	MaxSubsPerWindow int

	methods map[uint32]bool // svc<<16|method from trained requests
	subs    map[uint32]bool // svc<<16|eventgroup with an observed subscription
	trained bool

	winStart     sim.Time
	subCount     int
	floodAlerted bool

	methodAlerted map[uint32]bool
	notifyAlerted map[uint32]bool
}

// NewSOMEIPDetector creates an untrained detector with a 1s
// subscription window capped at 10 subscribes.
func NewSOMEIPDetector() *SOMEIPDetector {
	return &SOMEIPDetector{
		EtherType:        someip.EtherTypeSOMEIP,
		SubWindow:        sim.Second,
		MaxSubsPerWindow: 10,
		methods:          make(map[uint32]bool),
		subs:             make(map[uint32]bool),
		methodAlerted:    make(map[uint32]bool),
		notifyAlerted:    make(map[uint32]bool),
	}
}

// Name implements Detector.
func (d *SOMEIPDetector) Name() string { return "someip" }

// Medium implements MediumDetector.
func (d *SOMEIPDetector) Medium() netif.Kind { return netif.Ethernet }

func svcKey(h someip.Header) uint32 { return uint32(h.Service)<<16 | uint32(h.Method) }

// Train implements Detector.
func (d *SOMEIPDetector) Train(trace *netif.Trace) {
	clear(d.methods)
	clear(d.subs)
	clear(d.methodAlerted)
	clear(d.notifyAlerted)
	d.trained = false
	d.winStart, d.subCount, d.floodAlerted = 0, 0, false
	for i := range trace.Records {
		r := &trace.Records[i]
		if r.Frame.Medium != netif.Ethernet || r.Corrupted || r.Frame.ID != d.EtherType {
			continue
		}
		h, ok := someip.PeekHeader(r.Frame.Payload)
		if !ok {
			continue
		}
		d.trained = true
		switch h.Type {
		case someip.TypeRequest:
			d.methods[svcKey(h)] = true
		case someip.TypeSubscribe, someip.TypeSubscribeAck:
			d.subs[svcKey(h)] = true
		}
	}
}

// Observe implements Detector.
func (d *SOMEIPDetector) Observe(rec netif.Record) []Alert {
	if rec.Frame.Medium != netif.Ethernet || rec.Corrupted ||
		rec.Frame.ID != d.EtherType || !d.trained {
		return nil
	}
	k := rec.Frame.Key()
	h, ok := someip.PeekHeader(rec.Frame.Payload)
	if !ok {
		return []Alert{alertFor(rec.At, d.Name(), k, "malformed SOME/IP message")}
	}
	key := svcKey(h)
	switch h.Type {
	case someip.TypeRequest:
		if !d.methods[key] && !d.methodAlerted[key] {
			d.methodAlerted[key] = true
			return []Alert{alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("unknown service/method %#x/%#x requested", h.Service, h.Method))}
		}
	case someip.TypeSubscribe:
		if rec.At-d.winStart >= d.SubWindow {
			d.winStart, d.subCount, d.floodAlerted = rec.At, 0, false
		}
		d.subCount++
		d.subs[key] = true
		if d.subCount > d.MaxSubsPerWindow && !d.floodAlerted {
			d.floodAlerted = true
			return []Alert{alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("subscription flood: %d subscribes in %v", d.subCount, d.SubWindow))}
		}
	case someip.TypeSubscribeAck:
		d.subs[key] = true
	case someip.TypeNotification:
		if !d.subs[key] && !d.notifyAlerted[key] {
			d.notifyAlerted[key] = true
			return []Alert{alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("unsubscribed notification for service %#x eventgroup %#x", h.Service, h.Method))}
		}
	}
	return nil
}
