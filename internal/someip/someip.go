// Package someip implements a SOME/IP-flavoured service middleware over
// the automotive Ethernet substrate: service discovery (offer/find),
// request/response RPC with session matching, and eventgroup
// subscription with publish/notify — the service-oriented layer that
// next-generation vehicle architectures run on top of the paper's Secure
// Networks.
//
// The security posture mirrors the real protocol's: service discovery
// and notifications are unauthenticated by default, so a host on the
// right VLAN can subscribe (unless the server applies an ACL) and can
// spoof notifications outright. The tests demonstrate both, and show the
// repair the paper's architecture implies: SecOC-protect the payloads
// end-to-end rather than trusting the transport.
package someip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/ethernet"
	"autosec/internal/sim"
)

// EtherTypeSOMEIP carries SOME/IP messages in the model.
const EtherTypeSOMEIP = 0x9100

// MessageType per the SOME/IP spec (subset).
type MessageType byte

// Message types.
const (
	TypeRequest      MessageType = 0x00
	TypeNotification MessageType = 0x02
	TypeResponse     MessageType = 0x80
	TypeError        MessageType = 0x81
	// Discovery pseudo-types (SOME/IP-SD rides a reserved service; the
	// model gives it explicit types for clarity). Exported so wire
	// monitors — the IDS service-misuse detector, the obs tap — can
	// classify discovery traffic without round-tripping a Message.
	TypeOffer        MessageType = 0xC0
	TypeFind         MessageType = 0xC1
	TypeSubscribe    MessageType = 0xC2
	TypeSubscribeAck MessageType = 0xC3
	TypeSubscribeNak MessageType = 0xC4
)

// Return codes.
const (
	ReturnOK             = 0x00
	ReturnUnknownService = 0x02
	ReturnUnknownMethod  = 0x03
	ReturnNotReachable   = 0x05
)

// Message is one SOME/IP PDU.
type Message struct {
	ServiceID  uint16
	MethodID   uint16 // method for RPC, eventgroup for pub/sub
	ClientID   uint16
	SessionID  uint16
	Type       MessageType
	ReturnCode byte
	Payload    []byte
}

// Encode serializes a message for the wire. Exported because raw frame
// construction is exactly what attack tooling does; the protocol offers
// no integrity to stop it.
func (m *Message) Encode() []byte { return m.encode() }

// encode serializes a message (simplified header: 12 bytes + payload).
func (m *Message) encode() []byte {
	out := make([]byte, 12+len(m.Payload))
	binary.BigEndian.PutUint16(out[0:], m.ServiceID)
	binary.BigEndian.PutUint16(out[2:], m.MethodID)
	binary.BigEndian.PutUint32(out[4:], uint32(12+len(m.Payload)))
	binary.BigEndian.PutUint16(out[8:], m.ClientID)
	// byte 10: type, byte 11: return code; session folded into client
	// field's pair for compactness.
	out[10] = byte(m.Type)
	out[11] = m.ReturnCode
	copy(out[12:], m.Payload)
	// Session travels in the first two payload... no: extend header.
	return append(out, byte(m.SessionID>>8), byte(m.SessionID))
}

func decode(b []byte) (*Message, error) {
	if len(b) < 14 {
		return nil, errors.New("someip: short message")
	}
	n := int(binary.BigEndian.Uint32(b[4:]))
	if n < 12 || len(b) < n+2 {
		return nil, errors.New("someip: bad length")
	}
	m := &Message{
		ServiceID:  binary.BigEndian.Uint16(b[0:]),
		MethodID:   binary.BigEndian.Uint16(b[2:]),
		ClientID:   binary.BigEndian.Uint16(b[8:]),
		Type:       MessageType(b[10]),
		ReturnCode: b[11],
		Payload:    append([]byte(nil), b[12:n]...),
		SessionID:  uint16(b[n])<<8 | uint16(b[n+1]),
	}
	return m, nil
}

// MethodHandler serves one RPC method.
type MethodHandler func(payload []byte) (resp []byte, returnCode byte)

// Server offers one service instance.
type Server struct {
	host      *ethernet.Host
	kernel    *sim.Kernel
	ServiceID uint16

	methods map[uint16]MethodHandler
	// SubscriberACL, when non-nil, decides which MACs may subscribe.
	SubscriberACL func(src ethernet.MAC, eventgroup uint16) bool

	subscribers map[uint16]map[ethernet.MAC]bool

	OffersSent    sim.Counter
	RequestsOK    sim.Counter
	RequestsErr   sim.Counter
	SubsAccepted  sim.Counter
	SubsRejected  sim.Counter
	Notifications sim.Counter
}

// NewServer creates a service on a host. Call StartOffering to announce.
func NewServer(k *sim.Kernel, host *ethernet.Host, serviceID uint16) *Server {
	s := &Server{
		host:        host,
		kernel:      k,
		ServiceID:   serviceID,
		methods:     make(map[uint16]MethodHandler),
		subscribers: make(map[uint16]map[ethernet.MAC]bool),
	}
	host.OnReceive(func(at sim.Time, f *ethernet.Frame) {
		if f.EtherType != EtherTypeSOMEIP {
			return
		}
		m, err := decode(f.Payload)
		if err != nil || m.ServiceID != s.ServiceID {
			return
		}
		s.handle(f.Src, m)
	})
	return s
}

// Handle registers an RPC method.
func (s *Server) Handle(methodID uint16, fn MethodHandler) { s.methods[methodID] = fn }

// StartOffering broadcasts offers at the given period.
func (s *Server) StartOffering(period sim.Duration) (stop func()) {
	return s.kernel.Every(0, period, func() {
		s.OffersSent.Inc()
		s.sendTo(ethernet.Broadcast, &Message{ServiceID: s.ServiceID, Type: TypeOffer})
	})
}

func (s *Server) sendTo(dst ethernet.MAC, m *Message) {
	_ = s.host.Send(ethernet.Frame{Dst: dst, EtherType: EtherTypeSOMEIP, Payload: m.encode()})
}

func (s *Server) handle(src ethernet.MAC, m *Message) {
	switch m.Type {
	case TypeFind:
		s.sendTo(src, &Message{ServiceID: s.ServiceID, Type: TypeOffer})
	case TypeRequest:
		fn, ok := s.methods[m.MethodID]
		if !ok {
			s.RequestsErr.Inc()
			s.sendTo(src, &Message{ServiceID: s.ServiceID, MethodID: m.MethodID,
				ClientID: m.ClientID, SessionID: m.SessionID, Type: TypeError, ReturnCode: ReturnUnknownMethod})
			return
		}
		resp, rc := fn(m.Payload)
		s.RequestsOK.Inc()
		s.sendTo(src, &Message{ServiceID: s.ServiceID, MethodID: m.MethodID,
			ClientID: m.ClientID, SessionID: m.SessionID, Type: TypeResponse, ReturnCode: rc, Payload: resp})
	case TypeSubscribe:
		eg := m.MethodID
		if s.SubscriberACL != nil && !s.SubscriberACL(src, eg) {
			s.SubsRejected.Inc()
			s.sendTo(src, &Message{ServiceID: s.ServiceID, MethodID: eg, Type: TypeSubscribeNak})
			return
		}
		if s.subscribers[eg] == nil {
			s.subscribers[eg] = make(map[ethernet.MAC]bool)
		}
		s.subscribers[eg][src] = true
		s.SubsAccepted.Inc()
		s.sendTo(src, &Message{ServiceID: s.ServiceID, MethodID: eg, Type: TypeSubscribeAck})
	}
}

// Notify publishes an event to an eventgroup's subscribers.
func (s *Server) Notify(eventgroup uint16, payload []byte) {
	for mac := range s.subscribers[eventgroup] {
		s.Notifications.Inc()
		s.sendTo(mac, &Message{ServiceID: s.ServiceID, MethodID: eventgroup,
			Type: TypeNotification, Payload: payload})
	}
}

// Subscribers reports the subscriber count of an eventgroup.
func (s *Server) Subscribers(eventgroup uint16) int { return len(s.subscribers[eventgroup]) }

// Client consumes a service.
type Client struct {
	host     *ethernet.Host
	ClientID uint16

	serviceMAC map[uint16]ethernet.MAC
	session    uint16
	pending    map[uint16]func(*Message)
	onNotify   map[uint32][]func(payload []byte)
	onSubAck   []func(service, eventgroup uint16, ok bool)
	onOffer    []func(service uint16)
}

// NewClient creates a client on a host.
func NewClient(host *ethernet.Host, clientID uint16) *Client {
	c := &Client{
		host:       host,
		ClientID:   clientID,
		serviceMAC: make(map[uint16]ethernet.MAC),
		pending:    make(map[uint16]func(*Message)),
		onNotify:   make(map[uint32][]func([]byte)),
	}
	host.OnReceive(func(at sim.Time, f *ethernet.Frame) {
		if f.EtherType != EtherTypeSOMEIP {
			return
		}
		m, err := decode(f.Payload)
		if err != nil {
			return
		}
		switch m.Type {
		case TypeOffer:
			if _, known := c.serviceMAC[m.ServiceID]; !known {
				c.serviceMAC[m.ServiceID] = f.Src
				for _, fn := range c.onOffer {
					fn(m.ServiceID)
				}
			}
		case TypeResponse, TypeError:
			if m.ClientID != c.ClientID {
				return
			}
			if fn, ok := c.pending[m.SessionID]; ok {
				delete(c.pending, m.SessionID)
				fn(m)
			}
		case TypeNotification:
			key := uint32(m.ServiceID)<<16 | uint32(m.MethodID)
			for _, fn := range c.onNotify[key] {
				fn(m.Payload)
			}
		case TypeSubscribeAck, TypeSubscribeNak:
			for _, fn := range c.onSubAck {
				fn(m.ServiceID, m.MethodID, m.Type == TypeSubscribeAck)
			}
		}
	})
	return c
}

// OnOffer registers a discovery callback.
func (c *Client) OnOffer(fn func(service uint16)) { c.onOffer = append(c.onOffer, fn) }

// OnSubscriptionResult registers a subscribe ack/nak callback.
func (c *Client) OnSubscriptionResult(fn func(service, eventgroup uint16, ok bool)) {
	c.onSubAck = append(c.onSubAck, fn)
}

// OnNotification registers an event callback.
func (c *Client) OnNotification(service, eventgroup uint16, fn func(payload []byte)) {
	key := uint32(service)<<16 | uint32(eventgroup)
	c.onNotify[key] = append(c.onNotify[key], fn)
}

// Find broadcasts a service find.
func (c *Client) Find(service uint16) error {
	m := &Message{ServiceID: service, Type: TypeFind}
	return c.host.Send(ethernet.Frame{Dst: ethernet.Broadcast, EtherType: EtherTypeSOMEIP, Payload: m.encode()})
}

// Known reports whether the service has been discovered.
func (c *Client) Known(service uint16) bool {
	_, ok := c.serviceMAC[service]
	return ok
}

// ErrUnknownService is returned before the service was discovered.
var ErrUnknownService = errors.New("someip: service not discovered")

// Call performs an RPC; respond receives the response or error message.
func (c *Client) Call(service, method uint16, payload []byte, respond func(*Message)) error {
	mac, ok := c.serviceMAC[service]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrUnknownService, service)
	}
	c.session++
	c.pending[c.session] = respond
	m := &Message{ServiceID: service, MethodID: method, ClientID: c.ClientID,
		SessionID: c.session, Type: TypeRequest, Payload: payload}
	return c.host.Send(ethernet.Frame{Dst: mac, EtherType: EtherTypeSOMEIP, Payload: m.encode()})
}

// Subscribe requests membership of an eventgroup.
func (c *Client) Subscribe(service, eventgroup uint16) error {
	mac, ok := c.serviceMAC[service]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrUnknownService, service)
	}
	m := &Message{ServiceID: service, MethodID: eventgroup, ClientID: c.ClientID, Type: TypeSubscribe}
	return c.host.Send(ethernet.Frame{Dst: mac, EtherType: EtherTypeSOMEIP, Payload: m.encode()})
}
