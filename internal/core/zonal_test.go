package core

import (
	"testing"

	"autosec/internal/can"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/secoc"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

// zonalVehicle builds the canonical 4-zone test vehicle: the standard CAN
// domains shard to z0 (powertrain), z1 (chassis) and z3 (infotainment),
// and every zone carries one private domain of each medium kind
// ("z<i>-lcan", "z<i>-llin", "z<i>-lfr", "z<i>-leth").
func zonalVehicle(t *testing.T, seed uint64) *Vehicle {
	t.Helper()
	v, err := NewVehicle(Config{
		VIN:  "ZONAL-4",
		Seed: seed,
		Zonal: &ZonalConfig{
			Zones: 4,
			LocalDomains: []DomainSpec{
				{Name: "lcan", Kind: netif.CAN},
				{Name: "llin", Kind: netif.LIN},
				{Name: "lfr", Kind: netif.FlexRay},
				{Name: "leth", Kind: netif.Ethernet},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestZonalVehicleTopology(t *testing.T) {
	v := zonalVehicle(t, 1)
	if v.Gateway != nil {
		t.Fatal("zonal vehicle must not build a central gateway")
	}
	if v.Zonal == nil || v.BackboneSwitch == nil {
		t.Fatal("zonal fabric or backbone missing")
	}
	if n := len(v.Zonal.Zones()); n != 4 {
		t.Fatalf("zones = %d, want 4", n)
	}
	for domain, zone := range map[string]string{
		DomainPowertrain:   "z0",
		DomainChassis:      "z1", // (4-1)/2
		DomainInfotainment: "z3",
		"z2-lcan":          "z2",
	} {
		z, ok := v.Zonal.ZoneOf(domain)
		if !ok || z.Name != zone {
			t.Fatalf("domain %s in zone %v, want %s", domain, z, zone)
		}
	}
	// Every medium kind materialized per zone.
	if len(v.LINClusters) != 4 || len(v.FlexRayClusters) != 4 || len(v.Switches) != 4 {
		t.Fatalf("local domains missing: lin=%d fr=%d eth=%d",
			len(v.LINClusters), len(v.FlexRayClusters), len(v.Switches))
	}
	if _, err := NewVehicle(Config{VIN: "BAD", Seed: 1, Zonal: &ZonalConfig{Zones: 1}}); err == nil {
		t.Fatal("single-zone build must be rejected")
	}
}

// flowProbe counts deliveries of one cross-zone flow and tracks the last
// delivery time and worst observed latency.
type flowProbe struct {
	count    int
	last     sim.Time
	maxDelay sim.Duration
}

// TestZonalQuarantineContainment is the kill-chain scenario across zone
// boundaries: a compromised ECU in the infotainment zone (z3) floods a
// powertrain ID through the backbone; the IDS on the powertrain domain
// alerts and the auto-quarantine reflex isolates z3 at its backbone
// uplink. Cross-zone flows between the surviving zones — one per medium
// kind: CAN, LIN, FlexRay and Ethernet — must keep their end-to-end
// deadlines while everything out of z3 stops.
func TestZonalQuarantineContainment(t *testing.T) {
	v := zonalVehicle(t, 7)
	k := v.Kernel

	// Logical rules: the legacy-open hole the flood rides (infotainment
	// into powertrain, as in E16), plus one scoped cross-zone flow per
	// medium between healthy zones, plus a z3-sourced flow that must die
	// with the quarantine.
	v.Zonal.SetRules([]*gateway.Rule{
		{Name: "legacy-open", From: DomainInfotainment, To: []string{DomainPowertrain},
			Medium: netif.Only(netif.CAN), IDLo: 0x000, IDHi: 0x7FF, Action: gateway.Allow},
		{Name: "chassis-status", From: DomainChassis, To: []string{DomainPowertrain},
			Medium: netif.Only(netif.CAN), IDLo: 0x300, IDHi: 0x30F, Action: gateway.Allow},
		{Name: "z2-telemetry", From: "z2-lcan", To: []string{DomainPowertrain},
			Medium: netif.Only(netif.CAN), IDLo: 0x310, IDHi: 0x31F, Action: gateway.Allow},
		{Name: "lin-flow", From: "z1-llin", To: []string{"z0-llin"},
			Medium: netif.Only(netif.LIN), IDLo: 0x20, IDHi: 0x20, Action: gateway.Allow},
		{Name: "fr-flow", From: "z1-lfr", To: []string{"z0-lfr"},
			Medium: netif.Only(netif.FlexRay), IDLo: 5, IDHi: 5, Action: gateway.Allow},
		{Name: "eth-flow", From: "z1-leth", To: []string{"z0-leth"},
			Medium: netif.Only(netif.Ethernet), IDLo: 0x9000, IDHi: 0x9000, Action: gateway.Allow},
		{Name: "z3-feed", From: "z3-lcan", To: []string{DomainPowertrain},
			Medium: netif.Only(netif.CAN), IDLo: 0x320, IDHi: 0x32F, Action: gateway.Allow},
	})

	// FlexRay clusters need running communication cycles to carry dynamic
	// frames.
	for _, name := range []string{"z0-lfr", "z1-lfr", "z2-lfr", "z3-lfr"} {
		if err := v.FlexRayClusters[name].Start(); err != nil {
			t.Fatal(err)
		}
	}

	// IDS: trained on the powertrain matrix plus the status flows that
	// legitimately cross into the powertrain domain, then armed to
	// quarantine the infotainment zone's source domain.
	trainSpecs := append(workload.PowertrainMatrix(),
		workload.MessageSpec{ID: 0x300, Period: 20 * sim.Millisecond, Size: 4, Sender: "chassis-ecu"},
		workload.MessageSpec{ID: 0x310, Period: 20 * sim.Millisecond, Size: 4, Sender: "z2-ecu"},
		workload.MessageSpec{ID: 0x328, Period: 20 * sim.Millisecond, Size: 4, Sender: "z3-ecu"},
	)
	v.TrainIDS(workload.SyntheticTrace(trainSpecs, 10*sim.Second, 7, 0.01).Netif())
	v.ArmAutoQuarantine(DomainInfotainment)

	// Baseline powertrain traffic.
	_, stopPT := workload.StartSenders(k, v.Buses[DomainPowertrain], workload.PowertrainMatrix(), 0.01)
	defer stopPT()

	// Cross-zone flow receivers. CAN flows land on the powertrain bus;
	// LIN/FlexRay/Ethernet flows land on z0's private domains.
	probes := map[string]*flowProbe{
		"can-chassis": {}, "can-z2": {}, "can-z3": {}, "lin": {}, "fr": {}, "eth": {},
	}
	sendTimes := map[string]sim.Time{}
	record := func(name string, at sim.Time) {
		p := probes[name]
		p.count++
		p.last = at
		if d := at - sendTimes[name]; d > p.maxDelay {
			p.maxDelay = d
		}
	}
	ptRx := can.NewController("pt-monitor")
	v.Buses[DomainPowertrain].Attach(ptRx)
	ptRx.OnReceive(func(at sim.Time, f *can.Frame, _ *can.Controller) {
		switch f.ID {
		case 0x300:
			record("can-chassis", at)
		case 0x310:
			record("can-z2", at)
		case 0x328:
			record("can-z3", at)
		}
	})
	linRx, err := v.Media["z0-llin"].Open("lin-monitor")
	if err != nil {
		t.Fatal(err)
	}
	linRx.OnReceive(func(at sim.Time, f *netif.Frame) {
		if f.ID == 0x20 {
			record("lin", at)
		}
	})
	frRx, err := v.Media["z0-lfr"].Open("fr-monitor")
	if err != nil {
		t.Fatal(err)
	}
	frRx.OnReceive(func(at sim.Time, f *netif.Frame) {
		if f.ID == 5 && f.Flags&netif.FlagNull == 0 {
			record("fr", at)
		}
	})
	ethRx, err := v.Media["z0-leth"].Open("eth-monitor")
	if err != nil {
		t.Fatal(err)
	}
	ethRx.OnReceive(func(at sim.Time, f *netif.Frame) {
		if f.ID == 0x9000 {
			record("eth", at)
		}
	})

	// Cross-zone flow senders, one per medium, every 20ms.
	chassisTx := can.NewController("chassis-ecu")
	v.Buses[DomainChassis].Attach(chassisTx)
	z2Tx := can.NewController("z2-ecu")
	v.Buses["z2-lcan"].Attach(z2Tx)
	z3Tx := can.NewController("z3-ecu")
	v.Buses["z3-lcan"].Attach(z3Tx)
	linTx, err := v.Media["z1-llin"].Open("lin-ecu")
	if err != nil {
		t.Fatal(err)
	}
	frTx, err := v.Media["z1-lfr"].Open("fr-ecu")
	if err != nil {
		t.Fatal(err)
	}
	ethTx, err := v.Media["z1-leth"].Open("eth-ecu")
	if err != nil {
		t.Fatal(err)
	}
	k.Every(0, 20*sim.Millisecond, func() {
		now := k.Now()
		sendTimes["can-chassis"] = now
		_ = chassisTx.Send(can.Frame{ID: 0x300, Data: []byte{1, 2, 3, 4}}, nil)
		sendTimes["can-z2"] = now
		_ = z2Tx.Send(can.Frame{ID: 0x310, Data: []byte{5, 6, 7, 8}}, nil)
		sendTimes["can-z3"] = now
		_ = z3Tx.Send(can.Frame{ID: 0x328, Data: []byte{9, 10, 11, 12}}, nil)
		sendTimes["lin"] = now
		_ = linTx.Send(&netif.Frame{Medium: netif.LIN, ID: 0x20, Priority: 0x20, Payload: []byte{1, 2}})
		sendTimes["fr"] = now
		_ = frTx.Send(&netif.Frame{Medium: netif.FlexRay, ID: 5, Priority: 5, Payload: []byte{3, 4, 5, 6}})
		sendTimes["eth"] = now
		_ = ethTx.Send(&netif.Frame{Medium: netif.Ethernet, ID: 0x9000, Payload: []byte{7, 8, 9, 10, 11, 12, 13, 14}})
	})

	// The compromised infotainment ECU starts flooding a powertrain ID at
	// t=2s, 1 kHz — ten times the trained 0x0C0 rate.
	attacker := can.NewController("compromised-headunit")
	v.Buses[DomainInfotainment].Attach(attacker)
	k.Every(2*sim.Second, sim.Millisecond, func() {
		_ = attacker.Send(can.Frame{ID: 0x0C0, Data: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}}, nil)
	})

	// Snapshot per-flow counts at t=3s (quarantine must be in force well
	// before) to measure the post-containment window 3s..6s.
	atQuarantineCheck := map[string]int{}
	k.At(3*sim.Second, func() {
		if !v.Zonal.ZoneQuarantined("z3") {
			t.Error("z3 not quarantined 1s after flood onset")
		}
		for name, p := range probes {
			atQuarantineCheck[name] = p.count
		}
	})

	if err := k.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}

	// Containment: nothing sourced in z3 crossed after the snapshot.
	if post := probes["can-z3"].count - atQuarantineCheck["can-z3"]; post != 0 {
		t.Fatalf("%d z3-sourced frames crossed the backbone after quarantine", post)
	}
	// Liveness: every healthy cross-zone flow keeps running on all four
	// media. 3s window at 20ms period = 150 sends; demand at least 2/3.
	for _, name := range []string{"can-chassis", "can-z2", "lin", "fr", "eth"} {
		p := probes[name]
		post := p.count - atQuarantineCheck[name]
		if post < 100 {
			t.Errorf("flow %s: only %d post-quarantine deliveries (want >= 100)", name, post)
		}
		if p.last < 5900*sim.Millisecond {
			t.Errorf("flow %s: last delivery at %v, flow stalled", name, p.last)
		}
		// End-to-end deadline: one 20ms period. FlexRay waits for its next
		// communication cycle, still well under a period.
		if p.maxDelay > 20*sim.Millisecond {
			t.Errorf("flow %s: worst end-to-end latency %v exceeds the 20ms deadline", name, p.maxDelay)
		}
	}
	// The reflex left the other zones' uplinks alone.
	for _, z := range []string{"z0", "z1", "z2"} {
		if v.Zonal.ZoneQuarantined(z) {
			t.Errorf("zone %s collaterally quarantined", z)
		}
	}
}

// A SecOC-protected channel works unchanged across a zone boundary: the
// authenticator rides the tunnel and verifies at the far zone.
func TestZonalSecOCAcrossZones(t *testing.T) {
	v := zonalVehicle(t, 3)
	v.Zonal.SetRules([]*gateway.Rule{
		{Name: "secure-cmd", From: "z1-lcan", To: []string{"z0-lcan"},
			Medium: netif.Only(netif.CAN), IDLo: 0x3C0, IDHi: 0x3C0, Action: gateway.Allow},
	})

	var key [16]byte
	copy(key[:], "zonal-secoc-key!")
	cfg := secoc.Config{DataID: 0x3C0, FreshnessBits: 8, MACBits: 24}
	s, err := secoc.NewSender(cfg, secoc.KeyMAC(key))
	if err != nil {
		t.Fatal(err)
	}
	r, err := secoc.NewReceiver(cfg, secoc.KeyMAC(key))
	if err != nil {
		t.Fatal(err)
	}

	txPort, err := v.Media["z1-lcan"].Open("cmd-sender")
	if err != nil {
		t.Fatal(err)
	}
	rxPort, err := v.Media["z0-lcan"].Open("cmd-receiver")
	if err != nil {
		t.Fatal(err)
	}
	tx := secoc.NewPortSender(txPort, s)
	rx := secoc.NewPortReceiver(rxPort, r)

	var got [][]byte
	rx.OnReceive(func(at sim.Time, f *netif.Frame) {
		got = append(got, append([]byte(nil), f.Payload...))
	})
	// A forged frame with a bogus authenticator must be rejected, a
	// protected one delivered bare.
	forger, err := v.Media["z1-lcan"].Open("forger")
	if err != nil {
		t.Fatal(err)
	}
	v.Kernel.At(sim.Millisecond, func() {
		_ = tx.Send(&netif.Frame{Medium: netif.CAN, ID: 0x3C0, Priority: 0x3C0, Payload: []byte{0x42, 0x43}})
		_ = forger.Send(&netif.Frame{Medium: netif.CAN, ID: 0x3C0, Priority: 0x3C0, Payload: []byte{0x42, 0x43, 0, 0, 0, 0}})
	})
	if err := v.Kernel.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != 0x42 || got[0][1] != 0x43 {
		t.Fatalf("verified deliveries = %v, want exactly the protected payload", got)
	}
	if r := rx.Rejected.Value; r != 1 {
		t.Fatalf("rejected = %d, want 1 (the forgery)", r)
	}
}
