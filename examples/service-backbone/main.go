// Service backbone: the next-generation architecture the paper's Secure
// Networks layer anticipates — SOME/IP services on automotive Ethernet
// with VLAN separation — and the layered defenses it needs. A brake
// telemetry service publishes events; the dashboard subscribes; then an
// attacker who owns a node on the backbone tries, in order: subscribing
// without authorization (stopped by the ACL), spoofing notifications
// (lands against a naive consumer, stopped by SecOC end-to-end
// protection), and reaching the service from the infotainment VLAN
// (stopped by the switch).
//
//	go run ./examples/service-backbone
package main

import (
	"fmt"
	"log"

	"autosec/internal/ethernet"
	"autosec/internal/secoc"
	"autosec/internal/sim"
	"autosec/internal/someip"
)

const (
	svcBrake = 0x1001
	egStatus = 0x8001
	vlanCtrl = 10
	vlanIVI  = 20
)

func main() {
	k := sim.NewKernel(11)
	sw := ethernet.NewSwitch(k, "backbone", 5*sim.Microsecond)

	brakeHost := ethernet.NewHost("brake-controller", ethernet.LocalMAC(1))
	dashHost := ethernet.NewHost("dashboard", ethernet.LocalMAC(2))
	sw.Connect(brakeHost, vlanCtrl)
	sw.Connect(dashHost, vlanCtrl)

	server := someip.NewServer(k, brakeHost, svcBrake)
	server.SubscriberACL = func(src ethernet.MAC, _ uint16) bool {
		return src == ethernet.LocalMAC(2) // only the dashboard
	}
	stopOffer := server.StartOffering(200 * sim.Millisecond)
	defer stopOffer()

	// SecOC end-to-end channel for event payloads.
	var key [16]byte
	copy(key[:], "brake-e2e-key-01")
	cfg := secoc.Config{DataID: svcBrake, FreshnessBits: 16, MACBits: 32}
	sender, err := secoc.NewSender(cfg, secoc.KeyMAC(key))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := secoc.NewReceiver(cfg, secoc.KeyMAC(key))
	if err != nil {
		log.Fatal(err)
	}

	dash := someip.NewClient(dashHost, 0x0100)
	var naive, secure, forgedSeen int
	dash.OnNotification(svcBrake, egStatus, func(p []byte) {
		naive++
		if plain, err := receiver.Verify(p); err == nil {
			secure++
			_ = plain
		} else {
			forgedSeen++
		}
	})
	_ = dash.Find(svcBrake)
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	_ = dash.Subscribe(svcBrake, egStatus)
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	fmt.Printf("dashboard subscribed to brake status (subscribers=%d)\n\n", server.Subscribers(egStatus))

	// Legit telemetry at 10 Hz for one second.
	stopTelemetry := k.Every(k.Now(), 100*sim.Millisecond, func() {
		pdu, _ := sender.Protect([]byte{0x01, byte(k.Now() / (100 * sim.Millisecond))})
		server.Notify(egStatus, pdu)
	})
	_ = k.RunUntil(sim.Second)
	stopTelemetry()
	fmt.Printf("after 1s of telemetry: received=%d, SecOC-verified=%d\n\n", naive, secure)

	// Attack 1: rogue node on the control VLAN tries to subscribe.
	rogueHost := ethernet.NewHost("rogue-node", ethernet.LocalMAC(66))
	sw.Connect(rogueHost, vlanCtrl)
	rogue := someip.NewClient(rogueHost, 0x0666)
	_ = rogue.Find(svcBrake)
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	var rogueAck, rogueTried bool
	rogue.OnSubscriptionResult(func(_, _ uint16, ok bool) { rogueAck, rogueTried = ok, true })
	_ = rogue.Subscribe(svcBrake, egStatus)
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	fmt.Printf("attack 1 — unauthorized subscription: tried=%v accepted=%v (ACL)\n", rogueTried, rogueAck)

	// Attack 2: the rogue spoofs a brake event straight at the dashboard.
	spoofPayload := []byte{0xFF, 0xEE, 0, 0, 0, 0, 0}
	spoof := &someip.Message{ServiceID: svcBrake, MethodID: egStatus,
		Type: someip.TypeNotification, Payload: spoofPayload}
	_ = rogueHost.Send(ethernet.Frame{Dst: ethernet.LocalMAC(2), EtherType: someip.EtherTypeSOMEIP, Payload: spoof.Encode()})
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	fmt.Printf("attack 2 — spoofed notification: naive consumer saw it (total=%d), SecOC rejected it (forged=%d)\n",
		naive, forgedSeen)

	// Attack 3: the same spoof from the infotainment VLAN goes nowhere.
	iviHost := ethernet.NewHost("pwned-ivi", ethernet.LocalMAC(77))
	sw.Connect(iviHost, vlanIVI)
	before := naive
	_ = iviHost.Send(ethernet.Frame{Dst: ethernet.LocalMAC(2), EtherType: someip.EtherTypeSOMEIP, Payload: spoof.Encode()})
	_ = k.RunUntil(k.Now() + 10*sim.Millisecond)
	fmt.Printf("attack 3 — spoof from the IVI VLAN: frames delivered=%d (switch separation)\n\n", naive-before)

	fmt.Println("defense in depth on the backbone: VLANs bound reachability, the ACL")
	fmt.Println("bounds membership, and SecOC makes the data itself unforgeable —")
	fmt.Println("each layer catching what the previous one cannot.")
}
