// Package sidechannel models the paper's side-channel attack mode: an
// adversary with physical access to an ECU measures its power consumption
// while the SHE engine encrypts, and recovers the AES key with
// differential/correlation power analysis. The leakage model is the
// standard academic one (Kocher et al. [12 in the paper]): each first-round
// S-box output leaks its Hamming weight plus Gaussian noise.
//
// A first-order Boolean masking countermeasure is included; it defeats
// first-order CPA/DPA and forces the attacker to a second-order attack
// with a substantially higher trace requirement — the quantitative content
// of experiment E2, and the enabler of the paper's "extract one key, own
// the fleet" chain (E3).
package sidechannel

import (
	"math/bits"

	"autosec/internal/she"
	"autosec/internal/sim"
)

// sbox is the AES forward S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// HW is the Hamming weight of a byte.
func HW(b byte) int { return bits.OnesCount8(b) }

// Config parameterizes trace acquisition.
type Config struct {
	// NoiseSigma is the Gaussian noise standard deviation added to each
	// leakage point (Hamming weights span 0..8, so sigma 1-4 covers the
	// realistic SNR range).
	NoiseSigma float64
	// Masked enables the first-order Boolean masking countermeasure: the
	// device computes on sbox(x)^m and leaks the mask at a separate point.
	Masked bool
}

// TraceSet is an acquisition campaign: per-trace plaintexts and the
// measured leakage points. Unmasked traces have 16 points (one per state
// byte); masked traces have 32 (mask HW then masked-output HW per byte).
type TraceSet struct {
	Plaintexts [][16]byte
	Traces     [][]float64
	Masked     bool
}

// PointsPerByte reports the number of leakage points per state byte.
func (ts *TraceSet) PointsPerByte() int {
	if ts.Masked {
		return 2
	}
	return 1
}

// Acquire simulates n encryption measurements against the device key.
// The attacker keeps the plaintexts and traces; the key is used only to
// synthesize physics.
func Acquire(key [16]byte, n int, cfg Config, rng *sim.Stream) *TraceSet {
	ts := &TraceSet{Masked: cfg.Masked}
	for t := 0; t < n; t++ {
		var pt [16]byte
		rng.Bytes(pt[:])
		ts.Plaintexts = append(ts.Plaintexts, pt)
		var trace []float64
		for i := 0; i < 16; i++ {
			out := sbox[pt[i]^key[i]]
			if cfg.Masked {
				mask := byte(rng.Uint64())
				trace = append(trace,
					float64(HW(mask))+rng.NormSigma(0, cfg.NoiseSigma),
					float64(HW(out^mask))+rng.NormSigma(0, cfg.NoiseSigma))
			} else {
				trace = append(trace, float64(HW(out))+rng.NormSigma(0, cfg.NoiseSigma))
			}
		}
		ts.Traces = append(ts.Traces, trace)
	}
	return ts
}

// AcquireFromEngine captures traces from a live SHE engine through its
// Leak tap: the engine encrypts attacker-chosen plaintexts and the tap
// synthesizes the power measurement from the key material it can "see"
// flowing through the (simulated) silicon. The attacker-facing output is
// only (plaintext, trace).
func AcquireFromEngine(e *she.Engine, slot she.KeyID, n int, cfg Config, rng *sim.Stream) (*TraceSet, error) {
	ts := &TraceSet{Masked: cfg.Masked}
	var current []float64
	prevLeak := e.Leak
	defer func() { e.Leak = prevLeak }()
	e.Leak = func(op string, key, block []byte) {
		current = nil
		for i := 0; i < 16; i++ {
			out := sbox[block[i]^key[i]]
			if cfg.Masked {
				mask := byte(rng.Uint64())
				current = append(current,
					float64(HW(mask))+rng.NormSigma(0, cfg.NoiseSigma),
					float64(HW(out^mask))+rng.NormSigma(0, cfg.NoiseSigma))
			} else {
				current = append(current, float64(HW(out))+rng.NormSigma(0, cfg.NoiseSigma))
			}
		}
	}
	for t := 0; t < n; t++ {
		var pt [16]byte
		rng.Bytes(pt[:])
		if _, err := e.EncryptECB(slot, pt[:]); err != nil {
			return nil, err
		}
		ts.Plaintexts = append(ts.Plaintexts, pt)
		ts.Traces = append(ts.Traces, current)
	}
	return ts, nil
}
