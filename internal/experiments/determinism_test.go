package experiments

import "testing"

// The repository's reproducibility promise: the same seed regenerates
// byte-identical tables, for every experiment in the suite. The parallel
// half of the promise — the same holds when replicates are sharded across
// a worker pool — is asserted in internal/runner's determinism test.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice; skipped in -short mode")
	}
	runs := []struct {
		id  string
		run func(uint64) *Table
	}{
		{"E1", E1BusDoS},
		{"E2", E2SideChannel},
		{"E3", E3FleetCompromise},
		{"E4", E4Pseudonym},
		{"E5", E5Tradeoff},
		{"E6", E6Verification},
		{"E7", E7AuthenticatedCAN},
		{"E8", E8Gateway},
		{"E9", E9Relay},
		{"E10", E10OTA},
		{"E11", E11IDS},
		{"E12", E12Lifetime},
		{"E13", E13DiagnosticAccess},
		{"E14", E14BusOff},
		{"E15", E15VerifyScaling},
		{"E16", E16CrossMediumGateway},
		{"E17", E17Zonal},
		{"E18", E18Fleet},
		{"E19", E19KernelPar},
		{"E20", E20Observability},
		{"A1", A1MACTruncation},
		{"A2", A2BoundingThreshold},
	}
	for _, tc := range runs {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			a := tc.run(7).String()
			b := tc.run(7).String()
			if a != b {
				t.Fatalf("%s not deterministic:\n--- first\n%s\n--- second\n%s", tc.id, a, b)
			}
		})
	}
}

// And distinct seeds actually perturb the stochastic experiments (guards
// against a silently ignored seed parameter).
func TestSeedReachesTheWorkloads(t *testing.T) {
	a := E1BusDoS(1).String()
	b := E1BusDoS(2).String()
	if a == b {
		t.Fatal("E1 identical across seeds — seed not plumbed through")
	}
}
