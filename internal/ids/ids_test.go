package ids

import (
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// syntheticTrace builds a trace of periodic IDs over the duration. Each
// spec is (id, period, payload generator).
type txSpec struct {
	id      can.ID
	period  sim.Duration
	payload func(i int) []byte
}

func makeTrace(dur sim.Duration, specs []txSpec) *can.Trace {
	tr := &can.Trace{}
	for _, s := range specs {
		i := 0
		for at := sim.Time(0); at < dur; at += s.period {
			tr.Records = append(tr.Records, can.Record{
				At:    at,
				Frame: can.Frame{ID: s.id, Data: s.payload(i)},
			})
			i++
		}
	}
	// Sort by time (stable merge of the periodic streams).
	for i := 1; i < len(tr.Records); i++ {
		for j := i; j > 0 && tr.Records[j].At < tr.Records[j-1].At; j-- {
			tr.Records[j], tr.Records[j-1] = tr.Records[j-1], tr.Records[j]
		}
	}
	return tr
}

func counterPayload(i int) []byte { return []byte{byte(i), byte(i >> 8), 0x10, 0x20} }
func constPayload(i int) []byte   { return []byte{0x01, 0x02, 0x03, 0x04} }

func cleanSpecs() []txSpec {
	return []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x200, 20 * sim.Millisecond, constPayload},
		{0x300, 100 * sim.Millisecond, counterPayload},
	}
}

func replay(t *testing.T, d Detector, train, live *can.Trace) []Alert {
	t.Helper()
	d.Train(train)
	var alerts []Alert
	for _, r := range live.Records {
		alerts = append(alerts, d.Observe(r)...)
	}
	return alerts
}

func TestFrequencyDetectorCleanTrafficQuiet(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	live := makeTrace(5*sim.Second, cleanSpecs())
	alerts := replay(t, NewFrequencyDetector(), train, live)
	if len(alerts) != 0 {
		t.Fatalf("false positives on clean traffic: %v", alerts[0])
	}
}

func TestFrequencyDetectorFlood(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	// Live: same plus a flood of 0x100 at 1ms period (10x rate).
	specs := append(cleanSpecs(), txSpec{0x100, sim.Millisecond, constPayload})
	live := makeTrace(5*sim.Second, specs)
	alerts := replay(t, NewFrequencyDetector(), train, live)
	if len(alerts) == 0 {
		t.Fatal("flood not detected")
	}
	for _, a := range alerts {
		if a.ID != 0x100 {
			t.Fatalf("alert on wrong ID: %v", a)
		}
		if !strings.Contains(a.Reason, "rate high") {
			t.Fatalf("unexpected reason: %v", a)
		}
	}
}

func TestFrequencyDetectorSuspension(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	// Live: 0x200 disappears entirely.
	live := makeTrace(5*sim.Second, []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x300, 100 * sim.Millisecond, counterPayload},
	})
	alerts := replay(t, NewFrequencyDetector(), train, live)
	found := false
	for _, a := range alerts {
		if a.ID == 0x200 && strings.Contains(a.Reason, "rate low") {
			found = true
		}
	}
	if !found {
		t.Fatalf("suspension of 0x200 not detected (%d alerts)", len(alerts))
	}
}

func TestIntervalDetectorInjection(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	live := makeTrace(5*sim.Second, cleanSpecs())
	// Inject 20 frames of 0x100 offset 1ms after legitimate ones.
	for i := 0; i < 20; i++ {
		live.Records = append(live.Records, can.Record{
			At:    sim.Time(i)*100*sim.Millisecond + sim.Millisecond,
			Frame: can.Frame{ID: 0x100, Data: []byte{0xBA, 0xD0, 0, 0}},
		})
	}
	// Re-sort.
	for i := 1; i < len(live.Records); i++ {
		for j := i; j > 0 && live.Records[j].At < live.Records[j-1].At; j-- {
			live.Records[j], live.Records[j-1] = live.Records[j-1], live.Records[j]
		}
	}
	alerts := replay(t, NewIntervalDetector(), train, live)
	if len(alerts) < 15 {
		t.Fatalf("interval detector caught %d/20 injections", len(alerts))
	}
	clean := replay(t, NewIntervalDetector(), train, makeTrace(5*sim.Second, cleanSpecs()))
	if len(clean) != 0 {
		t.Fatalf("interval false positives: %d", len(clean))
	}
}

func TestIntervalDetectorIgnoresAperiodicIDs(t *testing.T) {
	// An ID with <3 training occurrences is not modelled.
	train := &can.Trace{Records: []can.Record{
		{At: 0, Frame: can.Frame{ID: 0x50}},
		{At: sim.Second, Frame: can.Frame{ID: 0x50}},
	}}
	d := NewIntervalDetector()
	d.Train(train)
	a := d.Observe(can.Record{At: 2 * sim.Second, Frame: can.Frame{ID: 0x50}})
	b := d.Observe(can.Record{At: 2*sim.Second + 1, Frame: can.Frame{ID: 0x50}})
	if len(a)+len(b) != 0 {
		t.Fatal("aperiodic ID raised interval alerts")
	}
}

func TestEntropyDetectorFuzzing(t *testing.T) {
	train := makeTrace(10*sim.Second, cleanSpecs())
	// Live: 0x200's constant payload replaced by random bytes.
	rnd := sim.NewStream(1, "fuzz")
	live := makeTrace(10*sim.Second, []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x200, 20 * sim.Millisecond, func(i int) []byte {
			b := make([]byte, 4)
			rnd.Bytes(b)
			return b
		}},
		{0x300, 100 * sim.Millisecond, counterPayload},
	})
	alerts := replay(t, NewEntropyDetector(), train, live)
	if len(alerts) == 0 {
		t.Fatal("fuzzing not detected")
	}
	for _, a := range alerts {
		if a.ID != 0x200 {
			t.Fatalf("entropy alert on wrong ID: %v", a)
		}
	}
	clean := replay(t, NewEntropyDetector(), train, makeTrace(10*sim.Second, cleanSpecs()))
	if len(clean) != 0 {
		t.Fatalf("entropy false positives: %d", len(clean))
	}
}

func TestSpecDetectorUnknownIDAndDLC(t *testing.T) {
	train := makeTrace(2*sim.Second, cleanSpecs())
	d := NewSpecDetector()
	d.Train(train)
	// Unknown ID.
	a := d.Observe(can.Record{At: 0, Frame: can.Frame{ID: 0x666, Data: []byte{1}}})
	if len(a) != 1 || !strings.Contains(a[0].Reason, "unknown") {
		t.Fatalf("unknown ID alerts: %v", a)
	}
	// Wrong DLC on a known ID.
	a = d.Observe(can.Record{At: 0, Frame: can.Frame{ID: 0x100, Data: []byte{1}}})
	if len(a) != 1 || !strings.Contains(a[0].Reason, "DLC") {
		t.Fatalf("DLC alerts: %v", a)
	}
	// Conforming frame is quiet.
	a = d.Observe(can.Record{At: 0, Frame: can.Frame{ID: 0x100, Data: counterPayload(0)}})
	if len(a) != 0 {
		t.Fatalf("conforming frame alerted: %v", a)
	}
}

func TestSpecDetectorSignalRanges(t *testing.T) {
	d := NewSpecDetector()
	d.DLC[0x10] = 2
	d.Ranges[0x10] = []SignalRange{{Byte: 0, Lo: 0x00, Hi: 0x64}} // 0..100
	if a := d.Observe(can.Record{Frame: can.Frame{ID: 0x10, Data: []byte{50, 0}}}); len(a) != 0 {
		t.Fatalf("in-range alerted: %v", a)
	}
	a := d.Observe(can.Record{Frame: can.Frame{ID: 0x10, Data: []byte{200, 0}}})
	if len(a) != 1 || !strings.Contains(a[0].Reason, "outside") {
		t.Fatalf("out-of-range: %v", a)
	}
}

func TestSpecDetectorExplicitConfigSkipsTraining(t *testing.T) {
	d := NewSpecDetector()
	d.DLC[0x10] = 2
	d.Train(makeTrace(sim.Second, cleanSpecs()))
	if len(d.DLC) != 1 {
		t.Fatal("explicit config overwritten by training")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{At: sim.Second, Detector: "spec", ID: 0x1AB, Reason: "x"}
	s := a.String()
	if !strings.Contains(s, "spec") || !strings.Contains(s, "0x1ab") {
		t.Fatalf("String()=%q", s)
	}
}
