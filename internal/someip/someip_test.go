package someip

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/ethernet"
	"autosec/internal/secoc"
	"autosec/internal/sim"
)

const (
	svcBrakeStatus  = 0x1001
	methodGetStatus = 0x0001
	egBrakeEvents   = 0x8001
)

type rig struct {
	k      *sim.Kernel
	sw     *ethernet.Switch
	server *Server
	client *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	srvHost := ethernet.NewHost("brake-controller", ethernet.LocalMAC(1))
	cliHost := ethernet.NewHost("dashboard", ethernet.LocalMAC(2))
	sw.Connect(srvHost, 10)
	sw.Connect(cliHost, 10)
	server := NewServer(k, srvHost, svcBrakeStatus)
	server.Handle(methodGetStatus, func(payload []byte) ([]byte, byte) {
		return []byte{0x00}, ReturnOK
	})
	return &rig{k: k, sw: sw, server: server, client: NewClient(cliHost, 0x0100)}
}

func (r *rig) discover(t *testing.T) {
	t.Helper()
	if err := r.client.Find(svcBrakeStatus); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if !r.client.Known(svcBrakeStatus) {
		t.Fatal("service not discovered")
	}
}

func TestDiscoveryByFind(t *testing.T) {
	r := newRig(t)
	r.discover(t)
}

func TestDiscoveryByPeriodicOffer(t *testing.T) {
	r := newRig(t)
	stop := r.server.StartOffering(100 * sim.Millisecond)
	found := false
	r.client.OnOffer(func(svc uint16) { found = svc == svcBrakeStatus })
	_ = r.k.RunUntil(250 * sim.Millisecond)
	stop()
	if !found || !r.client.Known(svcBrakeStatus) {
		t.Fatal("offer-based discovery failed")
	}
	if r.server.OffersSent.Value < 2 {
		t.Fatalf("offers=%d", r.server.OffersSent.Value)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	r := newRig(t)
	r.server.Handle(0x0002, func(payload []byte) ([]byte, byte) {
		out := append([]byte(nil), payload...)
		for i := range out {
			out[i] ^= 0xFF
		}
		return out, ReturnOK
	})
	r.discover(t)
	var resp *Message
	if err := r.client.Call(svcBrakeStatus, 0x0002, []byte{0x0F, 0xF0}, func(m *Message) { resp = m }); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if resp == nil || resp.Type != TypeResponse {
		t.Fatalf("resp=%+v", resp)
	}
	if !bytes.Equal(resp.Payload, []byte{0xF0, 0x0F}) {
		t.Fatalf("payload=%x", resp.Payload)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	r := newRig(t)
	r.discover(t)
	var resp *Message
	_ = r.client.Call(svcBrakeStatus, 0x9999, nil, func(m *Message) { resp = m })
	_ = r.k.Run()
	if resp == nil || resp.Type != TypeError || resp.ReturnCode != ReturnUnknownMethod {
		t.Fatalf("resp=%+v", resp)
	}
}

func TestCallBeforeDiscovery(t *testing.T) {
	r := newRig(t)
	if err := r.client.Call(svcBrakeStatus, 1, nil, nil); err == nil {
		t.Fatal("call before discovery succeeded")
	}
	if err := r.client.Subscribe(svcBrakeStatus, egBrakeEvents); err == nil {
		t.Fatal("subscribe before discovery succeeded")
	}
}

func TestSubscribeAndNotify(t *testing.T) {
	r := newRig(t)
	r.discover(t)
	var acked bool
	r.client.OnSubscriptionResult(func(_, _ uint16, ok bool) { acked = ok })
	var events [][]byte
	r.client.OnNotification(svcBrakeStatus, egBrakeEvents, func(p []byte) {
		events = append(events, p)
	})
	if err := r.client.Subscribe(svcBrakeStatus, egBrakeEvents); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if !acked || r.server.Subscribers(egBrakeEvents) != 1 {
		t.Fatalf("acked=%v subs=%d", acked, r.server.Subscribers(egBrakeEvents))
	}
	r.server.Notify(egBrakeEvents, []byte{0x01})
	r.server.Notify(egBrakeEvents, []byte{0x02})
	_ = r.k.Run()
	if len(events) != 2 || events[1][0] != 0x02 {
		t.Fatalf("events=%v", events)
	}
}

func TestSubscriberACL(t *testing.T) {
	r := newRig(t)
	allowed := ethernet.LocalMAC(2)
	r.server.SubscriberACL = func(src ethernet.MAC, eg uint16) bool { return src == allowed }
	r.discover(t)
	// The dashboard (MAC 2) is allowed.
	var ok bool
	r.client.OnSubscriptionResult(func(_, _ uint16, got bool) { ok = got })
	_ = r.client.Subscribe(svcBrakeStatus, egBrakeEvents)
	_ = r.k.Run()
	if !ok {
		t.Fatal("allowed subscriber rejected")
	}
	// An interloper on the same VLAN is NAKed.
	rogueHost := ethernet.NewHost("rogue", ethernet.LocalMAC(66))
	r.sw.Connect(rogueHost, 10)
	rogue := NewClient(rogueHost, 0x0666)
	_ = rogue.Find(svcBrakeStatus)
	_ = r.k.Run()
	var rogueOK, got bool
	rogue.OnSubscriptionResult(func(_, _ uint16, ok bool) { rogueOK, got = ok, true })
	_ = rogue.Subscribe(svcBrakeStatus, egBrakeEvents)
	_ = r.k.Run()
	if !got || rogueOK {
		t.Fatalf("rogue subscription: got=%v ok=%v", got, rogueOK)
	}
	if r.server.SubsRejected.Value != 1 {
		t.Fatalf("rejected=%d", r.server.SubsRejected.Value)
	}
}

// The protocol's honest weakness: notifications are unauthenticated, so
// a host on the VLAN can spoof them to any subscriber it can address —
// and the fix is SecOC end-to-end protection of the payload.
func TestNotificationSpoofingAndSecOCFix(t *testing.T) {
	r := newRig(t)
	r.discover(t)
	_ = r.client.Subscribe(svcBrakeStatus, egBrakeEvents)
	_ = r.k.Run()

	// Naive client: trusts any notification.
	var naiveEvents [][]byte
	r.client.OnNotification(svcBrakeStatus, egBrakeEvents, func(p []byte) {
		naiveEvents = append(naiveEvents, p)
	})

	// SecOC channel between the real producer and the consumer.
	var key [16]byte
	copy(key[:], "someip-e2e-key!!")
	cfg := secoc.Config{DataID: svcBrakeStatus, FreshnessBits: 16, MACBits: 32}
	sender, err := secoc.NewSender(cfg, secoc.KeyMAC(key))
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := secoc.NewReceiver(cfg, secoc.KeyMAC(key))
	if err != nil {
		t.Fatal(err)
	}
	var verifiedEvents [][]byte
	r.client.OnNotification(svcBrakeStatus, egBrakeEvents, func(p []byte) {
		if plain, err := receiver.Verify(p); err == nil {
			verifiedEvents = append(verifiedEvents, plain)
		}
	})

	// Legit notification (SecOC-wrapped).
	legit, _ := sender.Protect([]byte{0x01})
	r.server.Notify(egBrakeEvents, legit)
	_ = r.k.Run()

	// The attacker spoofs a notification directly to the subscriber's MAC.
	atkHost := ethernet.NewHost("attacker", ethernet.LocalMAC(66))
	r.sw.Connect(atkHost, 10)
	spoof := &Message{ServiceID: svcBrakeStatus, MethodID: egBrakeEvents,
		Type: TypeNotification, Payload: []byte{0xBA, 0xD0, 0, 0, 0, 0, 0}}
	_ = atkHost.Send(ethernet.Frame{Dst: ethernet.LocalMAC(2), EtherType: EtherTypeSOMEIP, Payload: spoof.encode()})
	_ = r.k.Run()

	// The naive view accepted both; the SecOC view only the legit one.
	if len(naiveEvents) != 2 {
		t.Fatalf("naive events=%d — spoofing did not land", len(naiveEvents))
	}
	if len(verifiedEvents) != 1 || verifiedEvents[0][0] != 0x01 {
		t.Fatalf("verified events=%v", verifiedEvents)
	}
}

func TestDecodeRobustness(t *testing.T) {
	f := func(b []byte) bool {
		m, err := decode(b)
		return (m == nil) == (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(svc, method, client, session uint16, payload []byte) bool {
		m := &Message{ServiceID: svc, MethodID: method, ClientID: client,
			SessionID: session, Type: TypeRequest, ReturnCode: 0, Payload: payload}
		got, err := decode(m.encode())
		if err != nil {
			return false
		}
		return got.ServiceID == svc && got.MethodID == method &&
			got.ClientID == client && got.SessionID == session &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
