package safety_test

import (
	"fmt"

	"autosec/internal/safety"
)

// ExampleDetermine classifies the paper's motivating hazard — a hacked
// braking function on a busy road with little the driver can do.
func ExampleDetermine() {
	level := safety.Determine(safety.S3, safety.E4, safety.C3)
	fmt.Println(level)
	// Output: ASIL D
}

// ExampleSystem_SinglePointsOfFailure analyses a braking function for the
// single points of failure the paper calls unacceptable.
func ExampleSystem_SinglePointsOfFailure() {
	s := safety.NewSystem()
	_ = s.AddFunction(safety.Function{
		Name: "braking",
		Clauses: [][]string{
			{"brake-ecu-primary", "brake-ecu-backup"}, // redundant pair
			{"hydraulics"}, // no backup
		},
	})
	fmt.Println(s.SinglePointsOfFailure())
	// Output: [hydraulics]
}
