// Package zonal builds zonal E/E topologies over the netif fabric:
// several gateway.Gateway instances act as zone controllers, each owning
// the routing state for its local CAN/LIN/FlexRay/Ethernet domains, and
// all of them bridge over one Ethernet backbone using the DoIP-style
// netif tunnel. This is the paper's Secure Gateway layer scaled past one
// central box — the zonal architecture modern vehicles use so the wire
// harness (and the routing table) shards by physical zone.
//
// Callers configure the fabric with *logical* rules written exactly like
// central-gateway rules (source domain, medium selector, identifier
// range, destination domains). The fabric compiles them into per-zone
// shards: the zone owning the source domain applies the rule (and its
// rate limit) on egress and forwards cross-zone traffic into the
// backbone tunnel; zones owning destination domains install matching
// ingress rules that decapsulate and deliver locally, and never forward
// backbone traffic back to the backbone, so flooding cannot loop.
//
// Sharding semantics, relative to one central gateway:
//
//   - First-match order is preserved: every zone's compiled rule set
//     lists shards in logical-rule order, and a rule whose destinations
//     are unreachable from a zone still occupies its slot (it matches and
//     forwards nowhere) rather than letting a later rule fire.
//   - Rate limits are enforced at the source zone only; each zone holds
//     its own token bucket, so a From: "*" rule's budget is per-zone
//     rather than global (the cost of sharding the limiter state).
//   - Ingress matching is by (medium, identifier): once a frame is on
//     the backbone its original source domain is not re-checked.
//
// The steady-state inter-zone forward path allocates nothing: egress
// encapsulation and ingress decapsulation reuse the per-domain scratch
// buffers every gateway already carries (see TestInterZoneSteadyStateAllocs).
package zonal

import (
	"errors"
	"fmt"

	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// BackboneDomain is the reserved domain name under which every zone
// controller attaches to the Ethernet backbone.
const BackboneDomain = "backbone"

// noneDomain is an unattachable destination used when a compiled rule
// must keep its first-match slot in a zone but has no reachable
// destination there: the rule matches (ending the search, as it would at
// a central gateway) and forwards nowhere.
const noneDomain = "\x00none"

// Errors.
var (
	ErrDupZone      = errors.New("zonal: zone already exists")
	ErrDupDomain    = errors.New("zonal: domain already owned by a zone")
	ErrUnknownZone  = errors.New("zonal: unknown zone")
	ErrUnknown      = errors.New("zonal: unknown domain")
	ErrReservedName = errors.New("zonal: reserved name")
)

// Zone is one zone controller: a gateway owning the backbone uplink plus
// its local domains.
type Zone struct {
	Name string
	// GW is the zone's gateway. Callers may tune Latency or observe
	// counters directly; rules are managed by the fabric.
	GW *gateway.Gateway

	fab    *Fabric
	locals []string // local domain names in attach order

	// k is the kernel the zone runs on: the shared fabric kernel, or the
	// zone's own group member in a partitioned fabric. member is its
	// kernel-group index (0 when shared).
	k      *sim.Kernel
	member int

	// bbDeliveries counts backbone-ingress frames this zone accepted and
	// delivered locally. Partitioned fabrics count per zone (each zone's
	// kernel owns its counter); shared fabrics use Fabric.BackboneDeliveries.
	bbDeliveries sim.Counter

	// quarantineFn is the prebound cross-kernel containment action
	// RequestZoneQuarantine sends between zones of a partitioned fabric.
	quarantineFn func()

	// baseLocals is the sealed local-domain count; see Fabric.MarkBaseline.
	baseLocals int
}

// ObserveFunc receives every per-zone gateway verdict, tagged with the
// zone that produced it. The *netif.Frame is only valid for the duration
// of the callback.
type ObserveFunc func(at sim.Time, zone, from string, f *netif.Frame, verdict string)

// Fabric is the zonal topology: the backbone medium, the zones bridged
// over it, the leaf-domain directory and the logical rule set the
// per-zone shards compile from.
type Fabric struct {
	kernel   *sim.Kernel
	backbone netif.Medium

	// Partitioned-fabric state (nil/zero on shared-kernel fabrics): the
	// conservative kernel group, the modelled backbone switch parameters,
	// and one backboneNet per zone (index = kernel-group member).
	group   *sim.KernelGroup
	hop     sim.Duration
	linkBps int64
	bb      []*backboneNet

	zones  []*Zone
	byName map[string]*Zone
	// domainZone maps each leaf domain to its owning zone; domainOrder
	// lists leaf domains in attach order (determinism: compilation and
	// reports iterate this, never the map).
	domainZone  map[string]*Zone
	domainOrder []string

	rules         []*gateway.Rule // logical rules, central-gateway style
	defaultAction gateway.Action

	observers []ObserveFunc

	// BackboneFrames counts every frame the backbone carries (tunnel
	// frames and native Ethernet alike) — the backbone-load metric.
	BackboneFrames sim.Counter
	// BackboneDeliveries counts backbone-ingress frames a zone accepted
	// and delivered locally. With broadcast flooding every inter-zone
	// frame reaches all other zones, so this scales as (zones-1) per
	// forwarded frame — the flooding cost E17 measures.
	BackboneDeliveries sim.Counter

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base fabBaseline

	// inNames interns the "<rule>@in" ingress-shard names across
	// recompiles. Pooled vehicles re-install the same rule names every
	// cycle, so after the first compile the concatenation allocates
	// nothing. Content-addressed; survives ResetToBaseline.
	inNames map[string]string
}

// inName returns the interned ingress-shard name for a logical rule name.
func (f *Fabric) inName(rule string) string {
	if s, ok := f.inNames[rule]; ok {
		return s
	}
	if f.inNames == nil {
		f.inNames = make(map[string]string)
	}
	s := rule + "@in"
	f.inNames[rule] = s
	return s
}

// New creates a fabric bridged over the given Ethernet backbone medium.
func New(k *sim.Kernel, backbone netif.Medium) *Fabric {
	f := &Fabric{
		kernel:     k,
		backbone:   backbone,
		byName:     make(map[string]*Zone),
		domainZone: make(map[string]*Zone),
	}
	backbone.Tap(func(at sim.Time, fr *netif.Frame, corrupted bool) {
		if !corrupted {
			f.BackboneFrames.Inc()
		}
	})
	return f
}

// AddZone creates a zone controller and attaches it to the backbone.
func (f *Fabric) AddZone(name string) (*Zone, error) {
	if name == BackboneDomain || name == "" {
		return nil, fmt.Errorf("%w: %q", ErrReservedName, name)
	}
	if _, dup := f.byName[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDupZone, name)
	}
	z := &Zone{Name: name, fab: f, k: f.kernel}
	uplink := f.backbone
	if f.group != nil {
		z.member = len(f.zones)
		z.k = f.group.Kernel(z.member)
		bn := &backboneNet{fab: f, member: z.member}
		f.bb = append(f.bb, bn)
		uplink = bn
		z.quarantineFn = func() { z.GW.Quarantine(BackboneDomain) }
	}
	z.GW = gateway.New(z.k, name)
	z.GW.DefaultAction = f.defaultAction
	if err := z.GW.AttachDomain(BackboneDomain, uplink); err != nil {
		return nil, err
	}
	// Every zone counts its own backbone ingress (only this zone's kernel
	// writes the counter, so partitioned fabrics never contend on a shared
	// word, and per-zone observability probes have a value to read).
	// Shared-kernel fabrics additionally keep the fabric total live, which
	// experiment code reads mid-run.
	shared := f.group == nil
	z.GW.Observe(func(at sim.Time, from string, fr *netif.Frame, verdict string) {
		if from == BackboneDomain && len(verdict) >= 5 && verdict[:5] == "allow" {
			z.bbDeliveries.Inc()
			if shared {
				f.BackboneDeliveries.Inc()
			}
		}
		for _, fn := range f.observers {
			fn(at, z.Name, from, fr, verdict)
		}
	})
	f.zones = append(f.zones, z)
	f.byName[name] = z
	f.recompile()
	return z, nil
}

// AttachDomain binds a local domain to the zone. Domain names are global
// across the fabric: logical rules reference them exactly as they would
// reference domains of a central gateway.
func (z *Zone) AttachDomain(name string, m netif.Medium) error {
	if name == BackboneDomain || name == noneDomain || name == "" {
		return fmt.Errorf("%w: %q", ErrReservedName, name)
	}
	if _, dup := z.fab.domainZone[name]; dup {
		return fmt.Errorf("%w: %s", ErrDupDomain, name)
	}
	if err := z.GW.AttachDomain(name, m); err != nil {
		return err
	}
	z.locals = append(z.locals, name)
	z.fab.domainZone[name] = z
	z.fab.domainOrder = append(z.fab.domainOrder, name)
	z.fab.recompile()
	return nil
}

// Locals returns the zone's local domain names in attach order.
func (z *Zone) Locals() []string { return append([]string(nil), z.locals...) }

// Zones returns the zones in creation order.
func (f *Fabric) Zones() []*Zone { return f.zones }

// ZoneByName looks a zone up.
func (f *Fabric) ZoneByName(name string) (*Zone, bool) {
	z, ok := f.byName[name]
	return z, ok
}

// ZoneOf returns the zone owning a leaf domain.
func (f *Fabric) ZoneOf(domain string) (*Zone, bool) {
	z, ok := f.domainZone[domain]
	return z, ok
}

// Domains returns every leaf domain in attach order.
func (f *Fabric) Domains() []string { return append([]string(nil), f.domainOrder...) }

// AddRule appends a logical rule and recompiles the per-zone shards.
func (f *Fabric) AddRule(r *gateway.Rule) {
	f.rules = append(f.rules, r)
	f.recompile()
}

// SetRules replaces the logical rule set — the in-field update primitive.
// Compiled limiter state resets: new policy, fresh buckets.
func (f *Fabric) SetRules(rs []*gateway.Rule) {
	f.rules = rs
	f.recompile()
}

// Rules returns the logical rule set.
func (f *Fabric) Rules() []*gateway.Rule { return f.rules }

// SetDefaultAction sets the verdict for frames no rule matches, on every
// zone. Deny is the secure default; Allow reproduces the permissive
// "no gateway" baseline across zone boundaries (unmatched frames flood to
// the backbone and every remote zone delivers them locally).
func (f *Fabric) SetDefaultAction(a gateway.Action) {
	f.defaultAction = a
	for _, z := range f.zones {
		z.GW.DefaultAction = a
	}
}

// QuarantineZone isolates a whole zone: its backbone uplink drops both
// ingress and egress, so nothing crosses the zone boundary while local
// traffic inside the zone keeps flowing — the zonal containment reflex.
func (f *Fabric) QuarantineZone(name string) error {
	z, ok := f.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownZone, name)
	}
	return z.GW.Quarantine(BackboneDomain)
}

// ReleaseZone lifts a zone quarantine.
func (f *Fabric) ReleaseZone(name string) error {
	z, ok := f.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownZone, name)
	}
	return z.GW.Release(BackboneDomain)
}

// ZoneQuarantined reports whether a zone is isolated from the backbone.
func (f *Fabric) ZoneQuarantined(name string) bool {
	z, ok := f.byName[name]
	return ok && z.GW.Quarantined(BackboneDomain)
}

// QuarantineZoneOf isolates the zone owning the given leaf domain.
func (f *Fabric) QuarantineZoneOf(domain string) error {
	z, ok := f.domainZone[domain]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, domain)
	}
	return f.QuarantineZone(z.Name)
}

// QuarantineDomain isolates one leaf domain at its owning zone (the
// finer-grained containment action: the rest of the zone keeps its
// backbone connectivity).
func (f *Fabric) QuarantineDomain(domain string) error {
	z, ok := f.domainZone[domain]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, domain)
	}
	return z.GW.Quarantine(domain)
}

// ReleaseDomain lifts a leaf-domain quarantine.
func (f *Fabric) ReleaseDomain(domain string) error {
	z, ok := f.domainZone[domain]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, domain)
	}
	return z.GW.Release(domain)
}

// Observe registers a fabric-wide verdict observer (feeds audit logs and
// the E17 measurements). Fires for every zone gateway, tagged with the
// zone name.
func (f *Fabric) Observe(fn ObserveFunc) { f.observers = append(f.observers, fn) }

// Instrument attaches every zone gateway and the fabric counters to the
// observability layer. Zone metrics register as "zone-<name>/..." so
// several gateways share one registry without key collisions; fabric
// totals register under "zonal/". A partitioned fabric rejects a shared
// tracer: its zones run on concurrent kernels and one trace ring cannot
// take interleaved appends — use InstrumentZones with per-zone tracers.
func (f *Fabric) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if f.group != nil && tr != nil {
		panic("zonal: shared tracer on a partitioned fabric; use InstrumentZones")
	}
	for _, z := range f.zones {
		z.GW.InstrumentAs(tr, reg, "zone-"+z.Name)
		if reg != nil {
			z := z
			reg.Probe("zone-"+z.Name+"/backbone_deliveries", func() float64 { return float64(z.bbDeliveries.Value) })
		}
	}
	if reg != nil {
		reg.Probe("zonal/backbone_frames", func() float64 { return float64(f.BackboneFramesTotal()) })
		reg.Probe("zonal/backbone_deliveries", func() float64 { return float64(f.BackboneDeliveriesTotal()) })
	}
}

// recompile rebuilds every zone's compiled rule shard from the logical
// rule set. Called on any topology or rule-set change; simulation-time
// hot paths never reach here.
func (f *Fabric) recompile() {
	for _, z := range f.zones {
		z.GW.SetRules(f.compileFor(z))
	}
}

// compileFor shards the logical rule set for one zone. See the package
// comment for the sharding semantics.
func (f *Fabric) compileFor(z *Zone) []*gateway.Rule {
	var out []*gateway.Rule
	for _, r := range f.rules {
		// Source-side shard: applies where the source domain lives. A
		// wildcard source expands per local domain so it can never match
		// backbone-ingress traffic with egress (loop-forming) destinations.
		var froms []string
		switch {
		case r.From == "*":
			froms = z.locals
		case f.domainZone[r.From] == z:
			froms = []string{r.From}
		}
		for _, from := range froms {
			cr := &gateway.Rule{
				Name:        r.Name,
				From:        from,
				Medium:      r.Medium,
				IDLo:        r.IDLo,
				IDHi:        r.IDHi,
				Action:      r.Action,
				RatePerSec:  r.RatePerSec,
				BurstFrames: r.BurstFrames,
			}
			if r.Action == gateway.Allow {
				cr.To = f.egressDests(z, r.To)
			}
			out = append(out, cr)
		}
		// Ingress shard: applies where destination domains may live, for
		// traffic arriving over the backbone. The zone owning a specific
		// source never installs one (its own egress handled the frame), and
		// ingress shards never list the backbone as a destination, so
		// backbone traffic cannot be re-flooded.
		srcZone := f.domainZone[r.From]
		if r.From == "*" || (srcZone != nil && srcZone != z) {
			ir := &gateway.Rule{
				Name:   f.inName(r.Name),
				From:   BackboneDomain,
				Medium: r.Medium,
				IDLo:   r.IDLo,
				IDHi:   r.IDHi,
				Action: r.Action,
			}
			if r.Action == gateway.Allow {
				ir.To = f.ingressDests(z, r.To)
			}
			out = append(out, ir)
		}
	}
	return out
}

// egressDests compiles a logical destination list for a source-side shard
// in zone z: local destinations stay, any reachable remote destination
// becomes one backbone hop, and "all other domains" (empty To) maps to
// nil — the zone gateway then fans out to all its attachments, which is
// exactly the locals plus the backbone.
func (f *Fabric) egressDests(z *Zone, to []string) []string {
	if len(to) == 0 {
		return nil
	}
	var out []string
	remote := false
	for _, d := range to {
		owner, known := f.domainZone[d]
		if !known {
			continue // central gateways ignore unknown destinations too
		}
		if owner == z {
			out = append(out, d)
		} else {
			remote = true
		}
	}
	if remote {
		out = append(out, BackboneDomain)
	}
	if len(out) == 0 {
		out = []string{noneDomain}
	}
	return out
}

// ingressDests compiles the local destination list for a backbone-ingress
// shard in zone z. Empty logical To ("all other domains") maps to nil:
// the fan-out excludes the backbone automatically because it is the
// frame's source.
func (f *Fabric) ingressDests(z *Zone, to []string) []string {
	if len(to) == 0 {
		return nil
	}
	var out []string
	for _, d := range to {
		if f.domainZone[d] == z {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []string{noneDomain}
	}
	return out
}
