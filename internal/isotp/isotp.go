// Package isotp implements the ISO 15765-2 transport protocol — the
// segmentation layer that carries diagnostics (UDS), and in practice OTA
// payload legs, over classic CAN's 8-byte frames. It supports single
// frames, first/consecutive frames with flow control (block size and
// separation time), and reassembly with the protocol's error handling.
//
// Diagnostics over ISO-TP is one of the attack surfaces behind the
// paper's remote-exploitation references [15, 16]: the Miller/Valasek
// chain drove UDS over exactly this transport. The uds package builds the
// session/security layer on top.
package isotp

import (
	"errors"
	"fmt"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// PCI frame types (high nibble of byte 0).
const (
	pciSingle      = 0x0
	pciFirst       = 0x1
	pciConsecutive = 0x2
	pciFlowControl = 0x3
)

// Flow-control status values.
const (
	fcContinue = 0x0
	fcWait     = 0x1
	fcOverflow = 0x2
)

// MaxMessage is the largest payload ISO 15765-2 (2004) can carry: the
// 12-bit length field of a first frame.
const MaxMessage = 4095

// Errors.
var (
	ErrTooLong    = errors.New("isotp: message exceeds 4095 bytes")
	ErrBusy       = errors.New("isotp: transfer already in progress")
	ErrOverflow   = errors.New("isotp: receiver signalled overflow")
	ErrSequence   = errors.New("isotp: consecutive-frame sequence error")
	ErrUnexpected = errors.New("isotp: unexpected protocol frame")
)

// Config tunes an endpoint.
type Config struct {
	// TxID and RxID are the CAN identifiers for sending and receiving
	// (a normal-addressing ISO-TP channel is an ID pair).
	TxID, RxID can.ID
	// BlockSize is the number of consecutive frames per flow-control
	// round-trip; 0 means "send everything".
	BlockSize int
	// SeparationTime is the minimum gap the sender must leave between
	// consecutive frames.
	SeparationTime sim.Duration
	// MaxBuffer bounds reassembly memory; longer messages trigger an
	// overflow flow-control response. 0 means MaxMessage.
	MaxBuffer int
}

// Endpoint is one side of an ISO-TP channel bound to a CAN controller.
type Endpoint struct {
	kernel *sim.Kernel
	ctrl   *can.Controller
	cfg    Config

	// Receive side.
	rxBuf    []byte
	rxTotal  int
	rxSeq    byte
	rxBlock  int
	rxActive bool
	onMsg    []func(at sim.Time, payload []byte)

	// Transmit side.
	txActive bool
	txData   []byte
	txOffset int
	txSeq    byte
	txDone   func(err error)
	txWindow int

	// Stats.
	MessagesSent sim.Counter
	MessagesRecv sim.Counter
	Overflows    sim.Counter
	SeqErrors    sim.Counter
}

// New binds an endpoint to a controller already attached to a bus.
func New(k *sim.Kernel, ctrl *can.Controller, cfg Config) *Endpoint {
	if cfg.MaxBuffer <= 0 || cfg.MaxBuffer > MaxMessage {
		cfg.MaxBuffer = MaxMessage
	}
	e := &Endpoint{kernel: k, ctrl: ctrl, cfg: cfg}
	ctrl.OnReceive(func(at sim.Time, f *can.Frame, _ *can.Controller) {
		if f.ID == cfg.RxID {
			e.handle(at, f.Data)
		}
	})
	return e
}

// OnMessage registers a handler for reassembled messages.
func (e *Endpoint) OnMessage(fn func(at sim.Time, payload []byte)) {
	e.onMsg = append(e.onMsg, fn)
}

// Send transmits a payload; done (optional) fires when the transfer
// completes or fails.
func (e *Endpoint) Send(payload []byte, done func(err error)) error {
	if len(payload) > MaxMessage {
		return fmt.Errorf("%w: %d", ErrTooLong, len(payload))
	}
	if e.txActive {
		return ErrBusy
	}
	if len(payload) <= 7 {
		// Single frame: PCI nibble 0 + length.
		data := append([]byte{byte(pciSingle<<4 | len(payload))}, payload...)
		return e.ctrl.Send(can.Frame{ID: e.cfg.TxID, Data: data}, func(at sim.Time) {
			e.MessagesSent.Inc()
			if done != nil {
				done(nil)
			}
		})
	}
	// First frame: 12-bit length + first 6 bytes, then wait for FC.
	e.txActive = true
	e.txData = payload
	e.txOffset = 6
	e.txSeq = 1
	e.txDone = done
	ff := []byte{byte(pciFirst<<4 | len(payload)>>8), byte(len(payload))}
	ff = append(ff, payload[:6]...)
	return e.ctrl.Send(can.Frame{ID: e.cfg.TxID, Data: ff}, nil)
}

// finishTx clears transmit state and reports the outcome.
func (e *Endpoint) finishTx(err error) {
	done := e.txDone
	e.txActive = false
	e.txData = nil
	e.txDone = nil
	if err == nil {
		e.MessagesSent.Inc()
	}
	if done != nil {
		done(err)
	}
}

// handle processes one received protocol frame.
func (e *Endpoint) handle(at sim.Time, data []byte) {
	if len(data) == 0 {
		return
	}
	switch data[0] >> 4 {
	case pciSingle:
		n := int(data[0] & 0x0F)
		if n == 0 || n > 7 || len(data) < 1+n {
			return // malformed single frame: ignored per spec
		}
		e.MessagesRecv.Inc()
		e.deliver(at, append([]byte(nil), data[1:1+n]...))
	case pciFirst:
		if len(data) < 8 {
			return
		}
		total := int(data[0]&0x0F)<<8 | int(data[1])
		if total > e.cfg.MaxBuffer {
			e.Overflows.Inc()
			e.sendFC(fcOverflow)
			return
		}
		e.rxActive = true
		e.rxTotal = total
		e.rxBuf = append(e.rxBuf[:0], data[2:8]...)
		e.rxSeq = 1
		e.rxBlock = 0
		e.sendFC(fcContinue)
	case pciConsecutive:
		if !e.rxActive {
			return // stray CF: ignored
		}
		seq := data[0] & 0x0F
		if seq != e.rxSeq&0x0F {
			e.SeqErrors.Inc()
			e.rxActive = false
			return
		}
		e.rxSeq++
		need := e.rxTotal - len(e.rxBuf)
		chunk := data[1:]
		if len(chunk) > need {
			chunk = chunk[:need]
		}
		e.rxBuf = append(e.rxBuf, chunk...)
		if len(e.rxBuf) >= e.rxTotal {
			e.rxActive = false
			e.MessagesRecv.Inc()
			e.deliver(at, append([]byte(nil), e.rxBuf...))
			return
		}
		if e.cfg.BlockSize > 0 {
			e.rxBlock++
			if e.rxBlock >= e.cfg.BlockSize {
				e.rxBlock = 0
				e.sendFC(fcContinue)
			}
		}
	case pciFlowControl:
		if !e.txActive || len(data) < 3 {
			return
		}
		switch data[0] & 0x0F {
		case fcOverflow:
			e.finishTx(ErrOverflow)
		case fcWait:
			// Wait for the next FC; nothing to do.
		case fcContinue:
			bs := int(data[1])
			e.txWindow = bs // 0 = unlimited
			st := decodeSeparationTime(data[2])
			e.pumpConsecutive(st)
		}
	}
}

// sendFC emits a flow-control frame reflecting this endpoint's receive
// parameters.
func (e *Endpoint) sendFC(status byte) {
	st := encodeSeparationTime(e.cfg.SeparationTime)
	data := []byte{byte(pciFlowControl<<4) | status, byte(e.cfg.BlockSize), st}
	_ = e.ctrl.Send(can.Frame{ID: e.cfg.TxID, Data: data}, nil)
}

// pumpConsecutive sends up to the granted window of consecutive frames,
// pacing by the receiver's separation time.
func (e *Endpoint) pumpConsecutive(st sim.Duration) {
	if !e.txActive {
		return
	}
	sent := 0
	var step func()
	step = func() {
		if !e.txActive {
			return
		}
		rem := len(e.txData) - e.txOffset
		if rem <= 0 {
			e.finishTx(nil)
			return
		}
		n := rem
		if n > 7 {
			n = 7
		}
		data := append([]byte{byte(pciConsecutive<<4) | e.txSeq&0x0F}, e.txData[e.txOffset:e.txOffset+n]...)
		e.txSeq++
		e.txOffset += n
		sent++
		last := e.txOffset >= len(e.txData)
		windowDone := e.txWindow > 0 && sent >= e.txWindow
		err := e.ctrl.Send(can.Frame{ID: e.cfg.TxID, Data: data}, func(sim.Time) {
			if last {
				e.finishTx(nil)
				return
			}
			if windowDone {
				return // wait for the receiver's next flow control
			}
			if st > 0 {
				e.kernel.After(st, step)
			} else {
				step()
			}
		})
		if err != nil {
			e.finishTx(err)
		}
	}
	step()
}

func (e *Endpoint) deliver(at sim.Time, payload []byte) {
	for _, fn := range e.onMsg {
		fn(at, payload)
	}
}

// encodeSeparationTime maps a duration to the STmin byte (0-127 ms, or
// F1-F9 for 100-900us).
func encodeSeparationTime(d sim.Duration) byte {
	if d <= 0 {
		return 0
	}
	if d < sim.Millisecond {
		us := int(d / (100 * sim.Microsecond))
		if us < 1 {
			us = 1
		}
		if us > 9 {
			us = 9
		}
		return byte(0xF0 + us)
	}
	ms := int(d / sim.Millisecond)
	if ms > 127 {
		ms = 127
	}
	return byte(ms)
}

// decodeSeparationTime inverts encodeSeparationTime.
func decodeSeparationTime(b byte) sim.Duration {
	switch {
	case b <= 0x7F:
		return sim.Duration(b) * sim.Millisecond
	case b >= 0xF1 && b <= 0xF9:
		return sim.Duration(b-0xF0) * 100 * sim.Microsecond
	default:
		return 127 * sim.Millisecond // reserved values: be conservative
	}
}
