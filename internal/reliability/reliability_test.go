package reliability

import (
	"errors"
	"math"
	"strings"
	"testing"

	"autosec/internal/sim"
)

func TestWeibullMath(t *testing.T) {
	c := &Component{Name: "pump", ShapeK: 2, ScaleHours: 1000}
	if c.FailureProbability() != 0 || c.HazardRate() != 0 {
		t.Fatal("new component not pristine")
	}
	c.ageHours = 1000
	// CDF at the characteristic life is 1 - 1/e ≈ 0.632.
	if p := c.FailureProbability(); math.Abs(p-0.632) > 0.001 {
		t.Fatalf("p=%v", p)
	}
	// Wear-out shape: hazard rises with age.
	c.ageHours = 100
	h1 := c.HazardRate()
	c.ageHours = 900
	h2 := c.HazardRate()
	if h2 <= h1 {
		t.Fatalf("hazard not rising: %v -> %v", h1, h2)
	}
}

func TestValidate(t *testing.T) {
	bad := &Component{Name: "x", ShapeK: 0, ScaleHours: 100}
	if bad.Validate() == nil {
		t.Fatal("zero shape accepted")
	}
	k := sim.NewKernel(1)
	m := NewMonitor(k, 1)
	if err := m.Add(bad); err == nil {
		t.Fatal("Add accepted invalid component")
	}
	good := &Component{Name: "x", ShapeK: 2, ScaleHours: 100}
	if err := m.Add(good); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(&Component{Name: "x", ShapeK: 2, ScaleHours: 100}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err=%v", err)
	}
}

func TestEarlyWarningPrecedesMostFailures(t *testing.T) {
	k := sim.NewKernel(42)
	m := NewMonitor(k, 2) // 2 operating hours per virtual minute
	for i := 0; i < 40; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := m.Add(&Component{Name: name, ShapeK: 3, ScaleHours: 800}); err != nil {
			t.Fatal(err)
		}
	}
	stop := m.Start()
	// Age until most of the population has failed.
	_ = k.RunUntil(12 * sim.Hour) // 720 ticks -> 1440 operating hours
	stop()

	if len(m.Failures) < 20 {
		t.Fatalf("only %d failures after 1.8 characteristic lives", len(m.Failures))
	}
	warned, total := m.WarnedBeforeFailure()
	// Wear-out (k=3) failures overwhelmingly come after the 10% CDF point,
	// so the early-warning rate should be near 1.
	if float64(warned)/float64(total) < 0.9 {
		t.Fatalf("early warning before only %d/%d failures", warned, total)
	}
}

func TestMemorylessComponentsFailWithoutWarning(t *testing.T) {
	// With ShapeK=1 (random failures, no wear-out signature) a sizable
	// share of failures arrive before the warning threshold — the honest
	// limit of wear-based prognostics.
	k := sim.NewKernel(7)
	m := NewMonitor(k, 2)
	for i := 0; i < 40; i++ {
		name := "r" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		_ = m.Add(&Component{Name: name, ShapeK: 1, ScaleHours: 800})
	}
	stop := m.Start()
	_ = k.RunUntil(12 * sim.Hour)
	stop()
	warned, total := m.WarnedBeforeFailure()
	if total == 0 {
		t.Fatal("no failures")
	}
	if warned == total {
		t.Fatalf("memoryless failures all predicted (%d/%d) — too good to be true", warned, total)
	}
}

func TestReplaceResetsComponent(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMonitor(k, 10)
	c := &Component{Name: "battery", ShapeK: 2, ScaleHours: 100}
	_ = m.Add(c)
	stop := m.Start()
	_ = k.RunUntil(90 * sim.Minute)
	stop()
	if !m.Replace("battery") {
		t.Fatal("replace failed")
	}
	if c.AgeHours() != 0 || c.Failed() {
		t.Fatal("replacement not reset")
	}
	if m.Replace("nonexistent") {
		t.Fatal("replaced a ghost")
	}
}

func TestHealthReportOrderingAndEvents(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMonitor(k, 1)
	old := &Component{Name: "old-pump", ShapeK: 2, ScaleHours: 100}
	old.ageHours = 90
	fresh := &Component{Name: "fresh-pump", ShapeK: 2, ScaleHours: 100}
	_ = m.Add(fresh)
	_ = m.Add(old)
	report := m.HealthReport()
	if len(report) != 2 || !strings.HasPrefix(report[0], "old-pump") {
		t.Fatalf("report=%v", report)
	}
	var events []string
	m.OnEvent(func(kind, name string) { events = append(events, kind+":"+name) })
	stop := m.Start()
	_ = k.RunUntil(sim.Hour)
	stop()
	if len(events) == 0 {
		t.Fatal("no events from an aged component")
	}
}
