package fleet

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"autosec/internal/core"
	"autosec/internal/obs"
)

func TestStageWaves(t *testing.T) {
	got := StageWaves(1000, 10, 4)
	want := []Wave{{0, 10}, {10, 50}, {50, 210}, {210, 850}, {850, 1000}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StageWaves(1000,10,4) = %v", got)
	}
	// The plan always partitions [0,n) exactly.
	for _, n := range []int{1, 7, 10, 97, 5000} {
		waves := StageWaves(n, 10, 4)
		lo := 0
		for _, w := range waves {
			if w.Lo != lo || w.Hi <= w.Lo {
				t.Fatalf("n=%d: bad partition %v", n, waves)
			}
			lo = w.Hi
		}
		if lo != n {
			t.Fatalf("n=%d: waves end at %d", n, lo)
		}
	}
	if StageWaves(0, 10, 4) != nil {
		t.Fatal("empty population should have no waves")
	}
}

func TestDriveWaveRangeValidation(t *testing.T) {
	d := Driver{Cfg: core.Config{VIN: "WAVE-V", Seed: 3}, N: 10, Workers: 2}
	for _, w := range []Wave{{-1, 5}, {5, 11}, {5, 5}, {7, 3}} {
		if _, err := DriveWave(context.Background(), d, w, func(idx int, v *core.Vehicle) (int, error) {
			return idx, nil
		}); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("wave %v: err=%v", w, err)
		}
	}
}

// TestDriveWaveEquivalence: driving the population as a staged wave
// sequence must visit byte-identical vehicles as one full drive — wave
// boundaries change when a vehicle runs, never what it does — and the
// result must be worker-count invariant. CI runs this under -race.
func TestDriveWaveEquivalence(t *testing.T) {
	const n = 96
	d := Driver{Cfg: core.Config{VIN: "WAVE-E", Seed: 17}, N: n, Workers: 1}
	full, err := Drive(context.Background(), d, driveScenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		dw := d
		dw.Workers = workers
		var waved []string
		for _, w := range StageWaves(n, 5, 3) {
			part, err := DriveWave(context.Background(), dw, w, driveScenario)
			if err != nil {
				t.Fatalf("workers=%d wave %v: %v", workers, w, err)
			}
			waved = append(waved, part...)
		}
		if !reflect.DeepEqual(full, waved) {
			t.Fatalf("workers=%d: waved drive diverged from full drive", workers)
		}
	}
}

// TestDriveWaveObsRegistryParInvariance: scenario-level instruments
// registered through the fn reg parameter fold deterministically at the
// wave barrier — the merged snapshot is byte-identical at any worker
// count.
func TestDriveWaveObsRegistryParInvariance(t *testing.T) {
	const n = 60
	d := Driver{Cfg: core.Config{VIN: "WAVE-O", Seed: 23}, N: n}
	w := Wave{Lo: 12, Hi: 48}
	run := func(workers int) string {
		dw := d
		dw.Workers = workers
		_, res, err := DriveWaveObs(context.Background(), dw, ObsOptions{Metrics: true}, w,
			func(idx int, v *core.Vehicle, reg *obs.Registry) (struct{}, error) {
				if reg == nil {
					t.Fatal("fn must receive the live registry when Metrics is on")
				}
				reg.Counter("wave/visited").Inc()
				if idx%5 == 0 {
					reg.Counter("wave/fifth").Inc()
				}
				reg.Gauge("wave/idx_sum").Add(float64(idx))
				return struct{}{}, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sb strings.Builder
		for _, m := range res.Registry.Snapshot() {
			fmt.Fprintf(&sb, "%s=%s\n", m.Key, obs.FormatValue(m.Value))
		}
		return sb.String()
	}
	s1 := run(1)
	if !strings.Contains(s1, "wave/visited=36") {
		t.Fatalf("wave visited count wrong:\n%s", s1)
	}
	if s8 := run(8); s8 != s1 {
		t.Fatalf("wave registry snapshot differs by worker count:\n--- par=1\n%s--- par=8\n%s", s1, s8)
	}
}
