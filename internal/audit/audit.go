// Package audit provides a tamper-evident security event log: each entry
// is hash-chained to its predecessor (SHA-256), and the chain head can be
// periodically sealed with a CMAC under a SHE key, so an attacker who
// gains code execution after the fact cannot rewrite the history of how
// they got in. Forensic readiness is part of the paper's in-field story:
// a fleet operator deciding whether to issue an emergency OTA or revoke
// certificates needs trustworthy on-vehicle evidence.
package audit

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Entry is one security event.
type Entry struct {
	At     sim.Time
	Source string // subsystem, e.g. "gateway", "ids", "uds"
	Event  string // free-form description

	// prev is the hash of the preceding entry (zero for the first).
	prev [32]byte
	// hash covers (prev ‖ at ‖ source ‖ event).
	hash [32]byte
}

// Hash returns the entry's chain hash.
func (e *Entry) Hash() [32]byte { return e.hash }

func computeHash(prev [32]byte, at sim.Time, source, event string) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(at))
	h.Write(t[:])
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write([]byte(event))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Log is the hash-chained event log.
type Log struct {
	entries []Entry
	// MaxEntries bounds memory; the oldest sealed entries are dropped
	// once a seal covers them. 0 means unbounded.
	MaxEntries int

	// seal support
	sealMAC func(msg []byte) ([]byte, error)
	seals   []Seal

	// Observability counters (nil when off): appends, seals taken, and
	// chain/seal verification failures — audit-log health at a glance.
	cAppends   *obs.Counter
	cSeals     *obs.Counter
	cChainFail *obs.Counter

	// Reattach cache (survives ResetToBaseline); see ReattachMetrics.
	obsCacheReg *obs.Registry
	obsCache    [3]*obs.Counter

	// Pooled-reuse baseline; see MarkBaseline/ResetToBaseline.
	baseSealed     bool
	baseMaxEntries int
}

// Instrument registers the log's health counters (audit/appends,
// audit/seals, audit/chain_failures) with the registry. A nil registry
// yields nil counters, which are no-ops.
func (l *Log) Instrument(reg *obs.Registry) {
	l.cAppends = reg.Counter("audit/appends")
	l.cSeals = reg.Counter("audit/seals")
	l.cChainFail = reg.Counter("audit/chain_failures")
	if reg != nil {
		l.obsCacheReg = reg
		l.obsCache = [3]*obs.Counter{l.cAppends, l.cSeals, l.cChainFail}
	}
}

// ReattachMetrics re-arms the health counters after a ResetToBaseline
// detached them, provided reg is the registry this log last
// Instrument-ed into. Returns false when the full Instrument path is
// required.
func (l *Log) ReattachMetrics(reg *obs.Registry) bool {
	if reg == nil || l.obsCacheReg != reg {
		return false
	}
	l.cAppends, l.cSeals, l.cChainFail = l.obsCache[0], l.obsCache[1], l.obsCache[2]
	return true
}

// MarkBaseline records the log's post-construction configuration as the
// reset target for pooled reuse.
func (l *Log) MarkBaseline() {
	l.baseSealed = true
	l.baseMaxEntries = l.MaxEntries
}

// ResetToBaseline empties the log for pooled reuse: entries and seals
// clear (backing arrays retained, contents zeroed so no evidence leaks
// across runs), MaxEntries restores, observability detaches. The seal
// MAC closure is construction wiring and survives.
func (l *Log) ResetToBaseline() {
	if !l.baseSealed {
		panic("audit: ResetToBaseline before MarkBaseline")
	}
	for i := range l.entries {
		l.entries[i] = Entry{}
	}
	l.entries = l.entries[:0]
	for i := range l.seals {
		l.seals[i] = Seal{}
	}
	l.seals = l.seals[:0]
	l.MaxEntries = l.baseMaxEntries
	l.cAppends = nil
	l.cSeals = nil
	l.cChainFail = nil
}

// Seal is a MAC over the chain head at a point in time, anchoring every
// entry before it.
type Seal struct {
	At    sim.Time
	Index int // entries covered: [0, Index)
	Head  [32]byte
	MAC   []byte
}

// New creates an empty log. sealMAC may be nil (chain-only integrity).
func New(sealMAC func(msg []byte) ([]byte, error)) *Log {
	return &Log{sealMAC: sealMAC}
}

// Append records an event.
func (l *Log) Append(at sim.Time, source, event string) {
	var prev [32]byte
	if n := len(l.entries); n > 0 {
		prev = l.entries[n-1].hash
	}
	e := Entry{At: at, Source: source, Event: event, prev: prev}
	e.hash = computeHash(prev, at, source, event)
	l.entries = append(l.entries, e)
	l.cAppends.Inc()
}

// Len reports the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// Entries returns the log contents (callers must not mutate).
func (l *Log) Entries() []Entry { return l.entries }

// Verification errors.
var (
	ErrChainBroken = errors.New("audit: hash chain broken")
	ErrSealBroken  = errors.New("audit: seal verification failed")
	ErrNoSealer    = errors.New("audit: no seal MAC configured")
)

// VerifyChain recomputes the whole chain and reports the first
// inconsistency — any in-place edit, deletion or reorder breaks it.
func (l *Log) VerifyChain() error {
	var prev [32]byte
	for i := range l.entries {
		e := &l.entries[i]
		if e.prev != prev {
			l.cChainFail.Inc()
			return fmt.Errorf("%w: entry %d prev-hash mismatch", ErrChainBroken, i)
		}
		if computeHash(prev, e.At, e.Source, e.Event) != e.hash {
			l.cChainFail.Inc()
			return fmt.Errorf("%w: entry %d content mismatch", ErrChainBroken, i)
		}
		prev = e.hash
	}
	return nil
}

// SealNow MACs the current chain head, anchoring all entries so far.
func (l *Log) SealNow(at sim.Time) error {
	if l.sealMAC == nil {
		return ErrNoSealer
	}
	var head [32]byte
	if n := len(l.entries); n > 0 {
		head = l.entries[n-1].hash
	}
	mac, err := l.sealMAC(head[:])
	if err != nil {
		return err
	}
	l.seals = append(l.seals, Seal{At: at, Index: len(l.entries), Head: head, MAC: mac})
	l.cSeals.Inc()
	return nil
}

// Seals returns the recorded seals.
func (l *Log) Seals() []Seal { return l.seals }

// VerifySeals checks every seal against the chain and the MAC key. A
// truncation attack (dropping recent entries *and* their seal) is caught
// when the newest surviving seal no longer matches the chain position it
// claims.
func (l *Log) VerifySeals() error {
	if l.sealMAC == nil {
		return ErrNoSealer
	}
	for i, s := range l.seals {
		if s.Index > len(l.entries) {
			l.cChainFail.Inc()
			return fmt.Errorf("%w: seal %d covers %d entries, log has %d", ErrSealBroken, i, s.Index, len(l.entries))
		}
		var head [32]byte
		if s.Index > 0 {
			head = l.entries[s.Index-1].hash
		}
		if head != s.Head {
			l.cChainFail.Inc()
			return fmt.Errorf("%w: seal %d head mismatch", ErrSealBroken, i)
		}
		mac, err := l.sealMAC(head[:])
		if err != nil {
			return err
		}
		if subtle.ConstantTimeCompare(mac, s.MAC) != 1 {
			l.cChainFail.Inc()
			return fmt.Errorf("%w: seal %d MAC mismatch", ErrSealBroken, i)
		}
	}
	return nil
}

// TamperWith is the adversary's primitive for tests: edit entry i's event
// text in place (what malware cleaning its tracks would attempt).
func (l *Log) TamperWith(i int, newEvent string) {
	if i >= 0 && i < len(l.entries) {
		l.entries[i].Event = newEvent
	}
}

// Truncate drops entries from index i on (the log-wipe attack).
func (l *Log) Truncate(i int) {
	if i >= 0 && i <= len(l.entries) {
		l.entries = l.entries[:i]
	}
}
