// Package secoc implements AUTOSAR SecOC-style secure onboard
// communication: each protected PDU carries a truncated freshness value
// and a truncated CMAC computed over (data ID ‖ payload ‖ full freshness
// value). The receiver reconstructs the full freshness counter from its
// last accepted value plus the truncated bits, verifies the MAC, and
// enforces monotonicity — giving CAN-sized frames replay protection and
// authentication within a handful of bytes.
//
// This is the production-practice refinement of core.AuthenticatedSend:
// the experiments' ablation A1 sweeps the truncation widths to show the
// bandwidth/security trade the paper's real-time discussion implies.
package secoc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"autosec/internal/obs"
	"autosec/internal/she"
	"autosec/internal/sim"
)

// MACFunc computes a full-width MAC over a message. Adapters exist for
// raw keys and SHE slots.
type MACFunc func(msg []byte) ([]byte, error)

// KeyMAC builds a MACFunc from a raw 128-bit key.
func KeyMAC(key [16]byte) MACFunc {
	return func(msg []byte) ([]byte, error) { return she.CMAC(key[:], msg) }
}

// SHEMAC builds a MACFunc from a SHE engine slot, so key material stays
// inside the (simulated) hardware.
func SHEMAC(e *she.Engine, slot she.KeyID) MACFunc {
	return func(msg []byte) ([]byte, error) { return e.GenerateMAC(slot, msg) }
}

// Config fixes a channel's wire format. Both sides must agree.
type Config struct {
	// DataID distinguishes channels under a shared key (prevents
	// cross-channel splicing).
	DataID uint16
	// FreshnessBits is the truncated counter width on the wire (1..32).
	FreshnessBits int
	// MACBits is the truncated MAC width on the wire (8..128, byte
	// aligned for simplicity).
	MACBits int
	// AcceptWindow bounds how far ahead of the last accepted counter a
	// received freshness value may be (tolerates loss); default 256.
	AcceptWindow uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FreshnessBits < 1 || c.FreshnessBits > 32 {
		return errors.New("secoc: freshness bits must be 1..32")
	}
	if c.MACBits < 8 || c.MACBits > 128 || c.MACBits%8 != 0 {
		return errors.New("secoc: MAC bits must be 8..128, byte aligned")
	}
	return nil
}

// Overhead reports the wire bytes added to each payload.
func (c Config) Overhead() int {
	return (c.FreshnessBits+7)/8 + c.MACBits/8
}

// ForgeProbability is the chance a random MAC guess passes — the security
// level purchased by MACBits.
func (c Config) ForgeProbability() float64 {
	return math.Pow(2, -float64(c.MACBits))
}

// Errors.
var (
	ErrTooShort = errors.New("secoc: PDU shorter than trailer")
	ErrAuth     = errors.New("secoc: authentication failed")
	ErrReplay   = errors.New("secoc: freshness not acceptable (replay or stale)")
)

// Sender produces secured PDUs.
type Sender struct {
	cfg Config
	mac MACFunc
	fv  uint64

	Sent int64
}

// NewSender creates a sender starting at freshness 0.
func NewSender(cfg Config, mac MACFunc) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sender{cfg: cfg, mac: mac}, nil
}

// authInput builds the MAC input: dataID ‖ payload ‖ full FV.
func authInput(dataID uint16, payload []byte, fv uint64) []byte {
	buf := make([]byte, 0, 2+len(payload)+8)
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], dataID)
	buf = append(buf, tmp[:2]...)
	buf = append(buf, payload...)
	binary.BigEndian.PutUint64(tmp[:], fv)
	return append(buf, tmp[:]...)
}

// Protect wraps a payload into a secured PDU: payload ‖ truncFV ‖ truncMAC.
func (s *Sender) Protect(payload []byte) ([]byte, error) {
	s.fv++
	mac, err := s.mac(authInput(s.cfg.DataID, payload, s.fv))
	if err != nil {
		return nil, err
	}
	s.Sent++
	fvBytes := (s.cfg.FreshnessBits + 7) / 8
	macBytes := s.cfg.MACBits / 8
	out := make([]byte, 0, len(payload)+fvBytes+macBytes)
	out = append(out, payload...)
	mask := uint64(1)<<uint(s.cfg.FreshnessBits) - 1
	tfv := s.fv & mask
	for i := fvBytes - 1; i >= 0; i-- {
		out = append(out, byte(tfv>>uint(8*i)))
	}
	return append(out, mac[:macBytes]...), nil
}

// Freshness reports the sender's current counter (for tests).
func (s *Sender) Freshness() uint64 { return s.fv }

// Receiver verifies secured PDUs.
type Receiver struct {
	cfg  Config
	mac  MACFunc
	last uint64

	Accepted int64
	Rejected int64

	// Observability (nil when off); see Instrument in obs.go.
	obsTr    *obs.Tracer
	obsSub   obs.Label
	obsOK    obs.Label
	obsFail  obs.Label
	obsName  obs.Label
	obsClock func() sim.Time
}

// NewReceiver creates a receiver expecting counters above 0.
func NewReceiver(cfg Config, mac MACFunc) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AcceptWindow == 0 {
		cfg.AcceptWindow = 256
	}
	return &Receiver{cfg: cfg, mac: mac}, nil
}

// Verify authenticates a secured PDU and returns the bare payload. On
// success the receiver's freshness state advances; failures leave it
// untouched.
func (r *Receiver) Verify(pdu []byte) ([]byte, error) {
	fvBytes := (r.cfg.FreshnessBits + 7) / 8
	macBytes := r.cfg.MACBits / 8
	trailer := fvBytes + macBytes
	if len(pdu) < trailer {
		r.Rejected++
		r.emitVerify(false)
		return nil, ErrTooShort
	}
	payload := pdu[:len(pdu)-trailer]
	fvField := pdu[len(pdu)-trailer : len(pdu)-macBytes]
	gotMAC := pdu[len(pdu)-macBytes:]

	var tfv uint64
	for _, b := range fvField {
		tfv = tfv<<8 | uint64(b)
	}
	mask := uint64(1)<<uint(r.cfg.FreshnessBits) - 1
	tfv &= mask

	// Reconstruct the full counter: the smallest value above last whose
	// low bits match the received truncation.
	candidate := (r.last & ^mask) | tfv
	if candidate <= r.last {
		candidate += mask + 1
	}
	if candidate-r.last > r.cfg.AcceptWindow {
		r.Rejected++
		r.emitVerify(false)
		return nil, fmt.Errorf("%w: jump %d exceeds window %d", ErrReplay, candidate-r.last, r.cfg.AcceptWindow)
	}
	want, err := r.mac(authInput(r.cfg.DataID, payload, candidate))
	if err != nil {
		r.Rejected++
		r.emitVerify(false)
		return nil, err
	}
	if !constEq(want[:macBytes], gotMAC) {
		r.Rejected++
		r.emitVerify(false)
		return nil, ErrAuth
	}
	r.last = candidate
	r.Accepted++
	r.emitVerify(true)
	return payload, nil
}

// Last reports the last accepted freshness counter.
func (r *Receiver) Last() uint64 { return r.last }

func constEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
