package experiments

import "testing"

func TestE14BusOffShape(t *testing.T) {
	tb := E14BusOff(1)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Below the +8/-1 breakeven (1/9) the victim survives; above it dies.
	if cell(t, tb, 0, 1) != "error-active" || cell(t, tb, 1, 1) != "error-active" {
		t.Fatalf("low hit rates killed the victim\n%s", tb)
	}
	for i := 2; i < 5; i++ {
		if cell(t, tb, i, 1) != "bus-off" {
			t.Fatalf("hit rate row %d did not reach bus-off\n%s", i, tb)
		}
	}
	// Bystander unaffected: ~1000 frames in every row.
	for i := range tb.Rows {
		if cellF(t, tb, i, 4) < 950 {
			t.Fatalf("bystander harmed in row %d\n%s", i, tb)
		}
	}
	// Time to bus-off shrinks with hit probability.
	if cell(t, tb, 4, 2) >= cell(t, tb, 2, 2) && cell(t, tb, 2, 2) != "survives" {
		// string compare is crude; just require row 4 is milliseconds.
		t.Logf("times: %s vs %s", cell(t, tb, 2, 2), cell(t, tb, 4, 2))
	}
}
