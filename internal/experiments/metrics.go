package experiments

import (
	"autosec/internal/obs"
)

// MetricsTable renders an obs registry snapshot through the experiments
// table machinery, so `-metrics` output gets the same alignment,
// rendering and — crucially — the same multi-seed replication merge as
// the experiment tables: runner.Aggregate folds per-seed MetricsTables
// into mean ± 95% CI / sd / min..max columns exactly like any other
// table, because every value cell is formatted to parse back as a
// float64.
//
// The adapter lives here rather than in obs because obs sits below the
// CAN layer in the import DAG (experiments → can → obs).
func MetricsTable(snap []obs.Metric) *Table {
	t := &Table{
		ID:      "METRICS",
		Title:   "observability snapshot",
		Columns: []string{"metric", "kind", "value"},
	}
	for _, m := range snap {
		t.AddRow(m.Key, m.Kind, obs.FormatValue(m.Value))
	}
	return t
}
