// Package experiments implements the paper-reproduction harness: one
// function per experiment E1–E12 from DESIGN.md, each returning a Table
// whose rows quantify one qualitative claim of the paper. cmd/benchreport
// prints every table; the root bench_test.go wraps each function in a
// testing.B benchmark so `go test -bench` regenerates the full evaluation.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: an id, the paper claim it
// quantifies, and a rectangular result grid.
type Table struct {
	ID    string
	Title string
	// Claim cites the qualitative statement from the paper (with its
	// section) that the numbers substantiate.
	Claim   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "  claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// All runs every experiment at the given seed and returns the tables in
// order. This is the one-call full reproduction.
func All(seed uint64) []*Table {
	return []*Table{
		E1BusDoS(seed),
		E2SideChannel(seed),
		E3FleetCompromise(seed),
		E4Pseudonym(seed),
		E5Tradeoff(seed),
		E6Verification(seed),
		E7AuthenticatedCAN(seed),
		E8Gateway(seed),
		E9Relay(seed),
		E10OTA(seed),
		E11IDS(seed),
		E12Lifetime(seed),
		E13DiagnosticAccess(seed),
		E14BusOff(seed),
		E15VerifyScaling(seed),
		A1MACTruncation(seed),
		A2BoundingThreshold(seed),
	}
}
