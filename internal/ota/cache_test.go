package ota

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

// campaignFixture wires a director+image pair and a group-addressed
// bundle the way the campaign backend does: one director statement per
// model line, shared by every vehicle of the model.
type campaignFixture struct {
	director *Repository
	image    *Repository
	bundle   *Bundle
	payload  []byte
	target   Target
}

func newCampaignFixture(t *testing.T, expires sim.Time) *campaignFixture {
	t.Helper()
	d, err := NewRepository("director")
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewRepository("image")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("brake firmware v2 image bytes ........")
	target := MakeTarget("brake-fw", 2, "brake-mcu-r2", payload)
	return &campaignFixture{
		director: d,
		image:    im,
		payload:  payload,
		target:   target,
		bundle: &Bundle{
			Director: d.Sign("model-S", []Target{target}, expires),
			Image:    im.Sign("", []Target{target}, expires),
			Payloads: map[string][]byte{"brake-fw": payload},
		},
	}
}

func (f *campaignFixture) newVehicle(t *testing.T, vin string, installed uint64) *Client {
	t.Helper()
	c := NewClient(vin, f.director.PublicKey(), f.image.PublicKey())
	c.Group = "model-S"
	c.AddECU("brake-mcu-r2", installed)
	return c
}

func TestApplyCachedMemoizesAcrossFleet(t *testing.T) {
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	const fleet = 50
	for i := 0; i < fleet; i++ {
		c := f.newVehicle(t, "VIN", 1)
		if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
			t.Fatalf("vehicle %d: %v", i, err)
		}
		ecu, _ := c.ECU("brake-mcu-r2")
		if ecu.InstalledVersion != 2 {
			t.Fatalf("vehicle %d at version %d", i, ecu.InstalledVersion)
		}
	}
	st := vc.Stats()
	// 50 vehicles x 2 repos of lookups, but only one cold verification
	// per repository and one attestation build for the whole fleet.
	if st.SigLookups != 2*fleet || st.SigVerifies != 2 {
		t.Fatalf("sig stats: %+v", st)
	}
	if st.AttestLookups != fleet || st.AttestBuilds != 1 {
		t.Fatalf("attest stats: %+v", st)
	}
}

func TestApplyCachedNoUpdate(t *testing.T) {
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	c := f.newVehicle(t, "VIN-1", 1)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
		t.Fatal(err)
	}
	// The steady-state campaign check-in: same bundle again is "you are
	// current", not a rollback rejection.
	if err := c.ApplyCached(f.bundle, 2*sim.Minute, vc); !errors.Is(err, ErrNoUpdate) {
		t.Fatalf("re-poll: %v", err)
	}
	if c.Installed.Value != 1 || c.Rejected.Value != 0 || c.UpToDate.Value != 1 {
		t.Fatalf("counters installed=%d rejected=%d uptodate=%d",
			c.Installed.Value, c.Rejected.Value, c.UpToDate.Value)
	}
}

func TestApplyCachedFreezeTurnsIntoExpiry(t *testing.T) {
	// A freeze attacker replays the vehicle's own current metadata: the
	// reply is ErrNoUpdate (silent) until the metadata expires, at which
	// point the same replay surfaces as ErrExpiredMeta — the detection
	// signal.
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	c := f.newVehicle(t, "VIN-1", 1)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyCached(f.bundle, 2*sim.Minute, vc); !errors.Is(err, ErrNoUpdate) {
		t.Fatalf("inside freshness window: %v", err)
	}
	if err := c.ApplyCached(f.bundle, sim.Hour, vc); !errors.Is(err, ErrExpiredMeta) {
		t.Fatalf("at expiry: %v", err)
	}
}

func TestApplyCachedVersionSkew(t *testing.T) {
	// A vehicle joining mid-campaign already at the target version on one
	// ECU and behind on another converges instead of erroring.
	f := newCampaignFixture(t, sim.Hour)
	adasPayload := []byte("adas model weights v2")
	adas := MakeTarget("adas-fw", 2, "adas-soc-r1", adasPayload)
	b := &Bundle{
		Director: f.director.Sign("model-S", []Target{f.target, adas}, sim.Hour),
		Image:    f.image.Sign("", []Target{f.target, adas}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": f.payload, "adas-fw": adasPayload},
	}
	vc := NewVerifyCache()
	c := f.newVehicle(t, "VIN-skew", 2) // brake ECU already at the campaign target
	c.AddECU("adas-soc-r1", 1)
	if err := c.ApplyCached(b, sim.Minute, vc); err != nil {
		t.Fatalf("skewed vehicle should converge: %v", err)
	}
	adasECU, _ := c.ECU("adas-soc-r1")
	if adasECU.InstalledVersion != 2 {
		t.Fatalf("adas not converged: %d", adasECU.InstalledVersion)
	}
	// Strictly older targets are still a rollback even in campaign mode.
	c2 := f.newVehicle(t, "VIN-ahead", 3)
	c2.AddECU("adas-soc-r1", 1)
	if err := c2.ApplyCached(b, sim.Minute, vc); !errors.Is(err, ErrRollback) {
		t.Fatalf("downgrade of an ahead vehicle: %v", err)
	}
}

func TestApplyCachedGroupScoping(t *testing.T) {
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	// Wrong group: the bundle is addressed to model-S.
	c := NewClient("VIN-x", f.director.PublicKey(), f.image.PublicKey())
	c.Group = "model-3"
	c.AddECU("brake-mcu-r2", 1)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrWrongVehicle) {
		t.Fatalf("cross-group bundle: %v", err)
	}
	// No group set: group-addressed metadata is also rejected.
	c2 := NewClient("VIN-y", f.director.PublicKey(), f.image.PublicKey())
	c2.AddECU("brake-mcu-r2", 1)
	if err := c2.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrWrongVehicle) {
		t.Fatalf("groupless client: %v", err)
	}
	// Directly-addressed metadata still works alongside group addressing.
	direct := &Bundle{
		Director: f.director.Sign("VIN-z", []Target{f.target}, sim.Hour),
		Image:    f.image.Sign("", []Target{f.target}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": f.payload},
	}
	c3 := f.newVehicle(t, "VIN-z", 1)
	if err := c3.ApplyCached(direct, sim.Minute, vc); err != nil {
		t.Fatalf("directly addressed: %v", err)
	}
}

func TestApplyCachedKeyRotationInvalidatesEpoch(t *testing.T) {
	// A cache entry proven under one trust epoch must never satisfy a
	// lookup after rotation: the SigKey embeds the key fingerprint.
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	c := f.newVehicle(t, "VIN-1", 1)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
		t.Fatal(err)
	}
	preRotation := vc.Stats().SigVerifies

	newDirector, err := NewRepository("director")
	if err != nil {
		t.Fatal(err)
	}
	newImage, err := NewRepository("image")
	if err != nil {
		t.Fatal(err)
	}
	c.SetKeys(newDirector.PublicKey(), newImage.PublicKey())

	// The old-epoch bundle re-verifies cold under the new keys and fails.
	if err := c.ApplyCached(f.bundle, 2*sim.Minute, vc); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("stale-epoch bundle after rotation: %v", err)
	}
	if vc.Stats().SigVerifies == preRotation {
		t.Fatal("rotation reused a stale-epoch cache entry")
	}

	// New-epoch metadata (counters restarted at 1) verifies and installs.
	p3 := []byte("brake firmware v3")
	t3 := MakeTarget("brake-fw", 3, "brake-mcu-r2", p3)
	nb := &Bundle{
		Director: newDirector.Sign("model-S", []Target{t3}, sim.Hour),
		Image:    newImage.Sign("", []Target{t3}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": p3},
	}
	if err := c.ApplyCached(nb, 3*sim.Minute, vc); err != nil {
		t.Fatalf("new-epoch bundle: %v", err)
	}
	ecu, _ := c.ECU("brake-mcu-r2")
	if ecu.InstalledVersion != 3 {
		t.Fatalf("post-rotation install: version %d", ecu.InstalledVersion)
	}
}

func TestApplyCachedBadBundleStaysBad(t *testing.T) {
	// Attestation failures are cached too: the whole fleet rejects a
	// tampered bundle after one cold cross-check.
	f := newCampaignFixture(t, sim.Hour)
	f.bundle.Payloads["brake-fw"] = []byte("tampered")
	vc := NewVerifyCache()
	for i := 0; i < 10; i++ {
		c := f.newVehicle(t, "VIN", 1)
		if err := c.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrHashMismatch) {
			t.Fatalf("vehicle %d: %v", i, err)
		}
	}
	if st := vc.Stats(); st.AttestBuilds != 1 {
		t.Fatalf("attest built %d times", st.AttestBuilds)
	}
}

func TestApplyCachedNilCacheFallsBack(t *testing.T) {
	f := newCampaignFixture(t, sim.Hour)
	c := f.newVehicle(t, "VIN-1", 1)
	// Group addressing is an ApplyCached semantic; plain Apply rejects it,
	// which is exactly the nil-cache fallback contract.
	if err := c.ApplyCached(f.bundle, sim.Minute, nil); !errors.Is(err, ErrWrongVehicle) {
		t.Fatalf("nil cache should behave like Apply: %v", err)
	}
}

// TestApplyCachedMemoizedAllocFree pins the 0-alloc contract of the
// memoized verify path: a warmed client re-polling current metadata
// (the steady state of every vehicle in every later campaign wave)
// allocates nothing.
func TestApplyCachedMemoizedAllocFree(t *testing.T) {
	f := newCampaignFixture(t, sim.Hour)
	vc := NewVerifyCache()
	c := f.newVehicle(t, "VIN-1", 1)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrNoUpdate) {
		t.Fatal("fixture not in steady state")
	}
	n := testing.AllocsPerRun(200, func() {
		if err := c.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrNoUpdate) {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("memoized verify path allocates %.1f times per call", n)
	}
}

func BenchmarkCampaignVerifyThroughputCold(b *testing.B) {
	f, vc := benchFixture(b)
	c := f.newVehicleB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh cache every poll: every signature is verified cold.
		cold := NewVerifyCache()
		if err := c.ApplyCached(f.bundle, sim.Minute, cold); err != nil && !errors.Is(err, ErrNoUpdate) {
			b.Fatal(err)
		}
	}
	_ = vc
}

func BenchmarkCampaignVerifyThroughputMemoized(b *testing.B) {
	f, vc := benchFixture(b)
	c := f.newVehicleB(b)
	if err := c.ApplyCached(f.bundle, sim.Minute, vc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ApplyCached(f.bundle, sim.Minute, vc); !errors.Is(err, ErrNoUpdate) {
			b.Fatal(err)
		}
	}
}

func benchFixture(b *testing.B) (*campaignFixture, *VerifyCache) {
	b.Helper()
	d, err := NewRepository("director")
	if err != nil {
		b.Fatal(err)
	}
	im, err := NewRepository("image")
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("brake firmware v2 image bytes ........")
	target := MakeTarget("brake-fw", 2, "brake-mcu-r2", payload)
	f := &campaignFixture{
		director: d, image: im, payload: payload, target: target,
		bundle: &Bundle{
			Director: d.Sign("model-S", []Target{target}, sim.Hour),
			Image:    im.Sign("", []Target{target}, sim.Hour),
			Payloads: map[string][]byte{"brake-fw": payload},
		},
	}
	return f, NewVerifyCache()
}

func (f *campaignFixture) newVehicleB(b *testing.B) *Client {
	b.Helper()
	c := NewClient("VIN-bench", f.director.PublicKey(), f.image.PublicKey())
	c.Group = "model-S"
	c.AddECU("brake-mcu-r2", 1)
	return c
}
