package ota

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"autosec/internal/sim"
)

// TestExpiryBoundary is the regression test for the freshness off-by-one:
// "expires at T" must mean invalid at T. The old comparison (now >
// Expires) accepted metadata at exactly its expiry instant, handing a
// freeze attacker one extra replay window at the boundary.
func TestExpiryBoundary(t *testing.T) {
	f := newFixture(t)
	exp := sim.Hour
	err := f.client.Apply(f.bundle(exp), exp) // now == Expires
	if !errors.Is(err, ErrExpiredMeta) {
		t.Fatalf("metadata at its expiry instant must be rejected, got %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("expired %v", exp)) {
		t.Fatalf("expiry error should name the expiry time: %q", err)
	}
	// One tick before the boundary is still fresh.
	f2 := newFixture(t)
	if err := f2.client.Apply(f2.bundle(exp), exp-1); err != nil {
		t.Fatalf("metadata one tick before expiry must verify: %v", err)
	}
}

// TestCanonicalFieldBoundaryRegression pins the field-boundary ambiguity
// the length-prefixed encoding fixes: under the old NUL-terminated
// scheme, a VehicleID embedding a NUL byte could absorb the bytes of the
// first target's name, letting two semantically different metadata
// values share canonical bytes (and therefore one signature).
func TestCanonicalFieldBoundaryRegression(t *testing.T) {
	a := &Metadata{
		Repo: "director", Version: 7, Expires: sim.Hour,
		VehicleID: "VIN-1",
		Targets:   []Target{{Name: "brake-fw", Version: 2, HWID: "hw"}},
	}
	b := &Metadata{
		Repo: "director", Version: 7, Expires: sim.Hour,
		VehicleID: "VIN-1\x00brake-fw",
		Targets:   []Target{{Name: "", Version: 2, HWID: "hw"}},
	}
	if bytes.Equal(a.canonical(), b.canonical()) {
		t.Fatal("metadata values shifting bytes across a field boundary share canonical bytes")
	}
}

// TestCanonicalTargetOrderInvariant: the encoding must be a function of
// the metadata *value*, so target slice order cannot matter.
func TestCanonicalTargetOrderInvariant(t *testing.T) {
	t1 := Target{Name: "a-fw", Version: 1, HWID: "hw-a", Length: 3}
	t2 := Target{Name: "b-fw", Version: 2, HWID: "hw-b", Length: 5}
	t3 := Target{Name: "c-fw", Version: 3, HWID: "hw-c", Length: 7}
	a := &Metadata{Repo: "image", Version: 1, Targets: []Target{t1, t2, t3}}
	b := &Metadata{Repo: "image", Version: 1, Targets: []Target{t3, t1, t2}}
	if !bytes.Equal(a.canonical(), b.canonical()) {
		t.Fatal("canonical bytes depend on target slice order")
	}
}

// TestCanonicalCollisionResistance is the property test: across a large
// deterministic sample of metadata values — with hostile strings full of
// NULs and length-prefix-looking bytes — distinct values must never
// share canonical bytes.
func TestCanonicalCollisionResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("ab\x00\x01\x02\xff-")
	randStr := func(max int) string {
		n := rng.Intn(max + 1)
		s := make([]byte, n)
		for i := range s {
			s[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(s)
	}
	key := func(m *Metadata) string {
		// Semantic identity: targets in name order, all fields delimited
		// unambiguously via %q.
		names := make([]string, len(m.Targets))
		for i := range m.Targets {
			names[i] = m.Targets[i].Name
		}
		parts := []string{fmt.Sprintf("%q|%d|%d|%q", m.Repo, m.Version, m.Expires, m.VehicleID)}
		for _, i := range sortedOrder(names) {
			tg := m.Targets[i]
			parts = append(parts, fmt.Sprintf("%q|%d|%q|%d|%x", tg.Name, tg.Version, tg.HWID, tg.Length, tg.Hash))
		}
		return strings.Join(parts, "||")
	}
	seen := make(map[string]string) // canonical bytes -> semantic key
	for i := 0; i < 5000; i++ {
		m := &Metadata{
			Repo:      randStr(4),
			Version:   uint64(rng.Intn(4)),
			Expires:   sim.Time(rng.Intn(3)),
			VehicleID: randStr(6),
		}
		names := make(map[string]bool)
		for k := rng.Intn(3); k > 0; k-- {
			name := randStr(5)
			if names[name] {
				continue // duplicate target names are not a valid value
			}
			names[name] = true
			tg := Target{Name: name, Version: uint64(rng.Intn(3)), HWID: randStr(3), Length: rng.Intn(4)}
			tg.Hash[0] = byte(rng.Intn(2))
			m.Targets = append(m.Targets, tg)
		}
		canon := string(m.canonical())
		sem := key(m)
		if prev, ok := seen[canon]; ok && prev != sem {
			t.Fatalf("canonical collision:\n  %s\n  %s", prev, sem)
		}
		seen[canon] = sem
	}
}

func sortedOrder(names []string) []int {
	order := make([]int, 0, len(names))
	for i := range names {
		j := len(order)
		order = append(order, i)
		for j > 0 && names[order[j]] < names[order[j-1]] {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	return order
}

// TestCanonicalIntoAllocFree: with a warmed scratch the verify hot path
// renders canonical bytes with zero allocations.
func TestCanonicalIntoAllocFree(t *testing.T) {
	m := &Metadata{
		Repo: "director", Version: 3, Expires: sim.Hour, VehicleID: "model-S",
		Targets: []Target{
			{Name: "brake-fw", Version: 2, HWID: "brake-mcu-r2", Length: 38},
			{Name: "adas-fw", Version: 2, HWID: "adas-soc-r1", Length: 40},
		},
	}
	var s canonicalScratch
	m.canonicalInto(&s) // warm the scratch
	if n := testing.AllocsPerRun(200, func() { m.canonicalInto(&s) }); n != 0 {
		t.Fatalf("canonicalInto allocates %.1f times per call with warm scratch", n)
	}
}
