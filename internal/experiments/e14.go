package experiments

import (
	"fmt"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// E14BusOff quantifies the targeted bus-off attack (the modern, selective
// form of the paper's §4.1 availability model): an adversary forcing bit
// errors on a fraction of one victim's transmissions, sweeping the hit
// probability. The CAN fault-confinement counters (+8 per error, −1 per
// success) create a sharp threshold: below it the victim recovers faster
// than it is damaged and survives indefinitely; above it the victim is
// driven off the bus in a bounded number of transmissions.
func E14BusOff(seed uint64) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Targeted bus-off attack: hit probability vs victim survival (§4.1)",
		Claim:   "the error handling that gives CAN its robustness is itself a denial-of-service lever against a single ECU",
		Columns: []string{"hit probability", "victim state @5s", "time to bus-off", "victim frames lost", "bystander frames ok"},
	}
	for _, hitProb := range []float64{0, 0.05, 0.2, 0.5, 1.0} {
		k := sim.NewKernel(seed)
		bus := can.NewBus(k, "pt", 500_000)
		victim := can.NewController("victim")
		bystander := can.NewController("bystander")
		rx := can.NewController("rx")
		bus.Attach(victim)
		bus.Attach(bystander)
		bus.Attach(rx)

		var victimOK, bystanderOK int
		rx.OnReceive(func(_ sim.Time, f *can.Frame, sender *can.Controller) {
			switch sender.Name {
			case "victim":
				victimOK++
			case "bystander":
				bystanderOK++
			}
		})
		hits := k.Stream("e14.hits")
		bus.TargetedError = func(_ *can.Frame, sender *can.Controller) bool {
			return sender.Name == "victim" && hits.Bool(hitProb)
		}

		var busOffAt sim.Time = -1
		k.Every(0, sim.Millisecond, func() {
			if busOffAt < 0 && victim.State() == can.BusOff {
				busOffAt = k.Now()
			}
		})
		stopV := can.PeriodicSender(k, victim, can.Frame{ID: 0x100, Data: []byte{1}}, 5*sim.Millisecond, 0)
		stopB := can.PeriodicSender(k, bystander, can.Frame{ID: 0x200, Data: []byte{2}}, 5*sim.Millisecond, 0)
		_ = k.RunUntil(5 * sim.Second)
		stopV()
		stopB()

		sent := 1000 // 5s at 5ms period
		toBusOff := "survives"
		if busOffAt >= 0 {
			toBusOff = busOffAt.String()
		}
		t.AddRow(fmt.Sprintf("%.2f", hitProb), victim.State().String(), toBusOff,
			sent-victimOK, bystanderOK)
	}
	return t
}
