package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file pins the concrete 4-ary heap + free-list event queue to the
// container/heap implementation it replaced: under randomized
// schedule/cancel/run interleavings — including cancels through stale
// handles whose nodes have been recycled — dispatch order must be
// identical to the boxing reference, and the live-event count must match.

// refEvent mirrors the pre-optimization *Event queue entry.
type refEvent struct {
	when      Time
	seq       uint64
	id        int
	cancelled bool
	popped    bool
}

// refQueue is the original heap.Interface implementation, boxing and all.
type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// refKernel is the ordering oracle: same (when, seq) total order, same
// lazy-cancel semantics, no recycling.
type refKernel struct {
	q   refQueue
	now Time
	seq uint64
}

func (r *refKernel) at(t Time, id int) *refEvent {
	e := &refEvent{when: t, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.q, e)
	return e
}

// runUntil pops events with deadline ≤ t, appending dispatched ids.
func (r *refKernel) runUntil(t Time, out *[]int) {
	for len(r.q) > 0 {
		top := r.q[0]
		if top.cancelled {
			heap.Pop(&r.q)
			top.popped = true
			continue
		}
		if top.when > t {
			break
		}
		heap.Pop(&r.q)
		top.popped = true
		r.now = top.when
		*out = append(*out, top.id)
	}
	if t > r.now {
		r.now = t
	}
}

func (r *refKernel) pending() int {
	n := 0
	for _, e := range r.q {
		if !e.cancelled {
			n++
		}
	}
	return n
}

func TestKernelDispatchOrderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		k := NewKernel(uint64(trial))
		ref := &refKernel{}
		var got, want []int
		type pair struct {
			ev Event
			re *refEvent
		}
		var handles []pair
		nextID := 0

		for round := 0; round < 30; round++ {
			// Schedule a batch with clustered deadlines so ties are common
			// and nodes recycled from earlier rounds get reused.
			for i, n := 0, rng.Intn(8); i < n; i++ {
				d := Duration(rng.Intn(40) * 10) // multiples of 10ns force ties
				id := nextID
				nextID++
				ev := k.At(k.Now()+d, func() { got = append(got, id) })
				handles = append(handles, pair{ev: ev, re: ref.at(ref.now+d, id)})
			}
			// Cancel a random sample of handles — live, already-dispatched,
			// or stale (recycled node): the kernel must treat the last two
			// as no-ops exactly like the oracle does.
			for i, n := 0, rng.Intn(4); i < n && len(handles) > 0; i++ {
				p := handles[rng.Intn(len(handles))]
				k.Cancel(p.ev)
				if !p.re.popped {
					p.re.cancelled = true
				}
			}
			if k.Pending() != ref.pending() {
				t.Fatalf("trial %d round %d: Pending()=%d, reference %d",
					trial, round, k.Pending(), ref.pending())
			}
			// Advance both through the same partial horizon.
			horizon := k.Now() + Duration(rng.Intn(150))
			if err := k.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			ref.runUntil(horizon, &want)
			if k.Now() != ref.now {
				t.Fatalf("trial %d round %d: clock %v, reference %v",
					trial, round, k.Now(), ref.now)
			}
		}
		// Drain both queues completely.
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		ref.runUntil(Never-1, &want)

		if len(got) != len(want) {
			t.Fatalf("trial %d: dispatched %d events, reference %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dispatch order diverged at %d: got id %d, reference id %d",
					trial, i, got[i], want[i])
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("trial %d: Pending()=%d after drain", trial, k.Pending())
		}
	}
}

// TestKernelSteadyStateAllocs pins the tentpole invariant: once the heap
// and free list are warm, a schedule→dispatch→recycle cycle performs zero
// allocations — including cycles that cancel and reclaim events.
func TestKernelSteadyStateAllocs(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	// Warm-up: grow the queue backing array and the free list past any
	// depth the measured loops reach.
	for i := 0; i < 64; i++ {
		k.After(Duration(i), fn)
	}
	_ = k.Run()

	if allocs := testing.AllocsPerRun(1000, func() {
		k.After(Microsecond, fn)
		_ = k.Run()
	}); allocs != 0 {
		t.Fatalf("steady-state allocs/event = %v, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		e := k.After(Microsecond, fn)
		k.After(2*Microsecond, fn)
		k.Cancel(e)
		_ = k.Run()
	}); allocs != 0 {
		t.Fatalf("steady-state allocs with cancel+recycle = %v, want 0", allocs)
	}
}
