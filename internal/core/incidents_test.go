package core

import (
	"testing"

	"autosec/internal/sim"
)

// TestSecurityIncidents pins the incident-counting rule the fleet flight
// recorder keys on: IDS alerts and gateway quarantine drops count;
// routine denials, rate limiting and non-security audit traffic do not.
func TestSecurityIncidents(t *testing.T) {
	v, err := NewVehicle(Config{VIN: "INC-1", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.SecurityIncidents(); got != 0 {
		t.Fatalf("fresh vehicle incidents = %d, want 0", got)
	}

	// The counter classifies audit entries by source and event prefix, so
	// drive it through the audit log exactly as the subsystems do.
	v.Audit.Append(1*sim.Millisecond, "ids", "frequency: flood on 0x123")
	v.Audit.Append(2*sim.Millisecond, "gateway", "quarantined id=0x155 from=infotainment")
	v.Audit.Append(3*sim.Millisecond, "gateway", "deny id=0x700 from=diag")
	v.Audit.Append(4*sim.Millisecond, "gateway", "rate id=0x100 from=body")
	v.Audit.Append(5*sim.Millisecond, "ota", "rollback rejected")
	v.Audit.Append(6*sim.Millisecond, "ids", "interval: gap anomaly on 0x2A0")

	if got := v.SecurityIncidents(); got != 3 {
		t.Fatalf("incidents = %d, want 3 (2 ids + 1 quarantine)", got)
	}

	// Reset drops the audit log with the rest of the run state.
	v.Reset(9)
	if got := v.SecurityIncidents(); got != 0 {
		t.Fatalf("post-Reset incidents = %d, want 0", got)
	}
}
