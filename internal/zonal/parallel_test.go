package zonal

import (
	"fmt"
	"strings"
	"testing"

	"autosec/internal/ethernet"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// recPort is a local-domain endpoint that logs every delivery with the
// owning zone's virtual time — the observable the shared-vs-partitioned
// and serial-vs-parallel equality tests fingerprint.
type recPort struct {
	name string
	now  func() sim.Time
	log  *[]string
	recv netif.RecvFunc
}

func (p *recPort) Name() string                { return p.name }
func (p *recPort) Kind() netif.Kind            { return netif.CAN }
func (p *recPort) OnReceive(fn netif.RecvFunc) { p.recv = fn }
func (p *recPort) Send(f *netif.Frame) error {
	*p.log = append(*p.log, fmt.Sprintf("%s id=%#x pay=%x @%d", p.name, f.ID, f.Payload, p.now()))
	return nil
}

type recMedium struct {
	now  func() sim.Time
	log  *[]string
	port *recPort
}

func (m *recMedium) Kind() netif.Kind  { return netif.CAN }
func (m *recMedium) Name() string      { return "rec-can" }
func (m *recMedium) Tap(netif.TapFunc) {}
func (m *recMedium) Open(name string) (netif.Port, error) {
	m.port = &recPort{name: name, now: m.now, log: m.log}
	return m.port, nil
}

// zoneRig is one comparable zonal build: n zones, one recording CAN
// domain per zone, allow-everything routing. Shared and partitioned
// flavors use the identical topology and the identical modelled backbone
// (2us store-and-forward switch on 100 Mbit/s links).
type zoneRig struct {
	fab  *Fabric
	g    *sim.KernelGroup // nil on the shared flavor
	k    *sim.Kernel      // shared kernel (nil on the partitioned flavor)
	ins  []*recPort       // per-zone local-domain endpoints
	logs []*[]string      // per-zone delivery logs, zone order
}

const rigHop = 2 * sim.Microsecond

func newZoneRig(t testing.TB, zones int, partitioned bool, seed uint64) *zoneRig {
	t.Helper()
	r := &zoneRig{}
	if partitioned {
		r.g = sim.NewKernelGroup(seed, ethernet.TunnelLookahead(rigHop, ethernet.DefaultLinkBps))
		r.fab = NewPartitioned(r.g, rigHop, ethernet.DefaultLinkBps)
	} else {
		r.k = sim.NewKernel(seed)
		sw := ethernet.NewSwitch(r.k, "bb", rigHop)
		r.fab = New(r.k, ethernet.Netif(sw, 1))
	}
	for i := 0; i < zones; i++ {
		z, err := r.fab.AddZone(fmt.Sprintf("z%d", i))
		if err != nil {
			t.Fatal(err)
		}
		log := &[]string{}
		zk := z.Kernel()
		m := &recMedium{now: zk.Now, log: log}
		if err := z.AttachDomain(fmt.Sprintf("d%d", i), m); err != nil {
			t.Fatal(err)
		}
		r.ins = append(r.ins, m.port)
		r.logs = append(r.logs, log)
	}
	r.fab.SetRules([]*gateway.Rule{
		{Name: "open", From: "*", IDLo: 0, IDHi: 0xFFFF, Action: gateway.Allow},
	})
	return r
}

// inject schedules local-bus traffic arriving at zone i's gateway at t.
func (r *zoneRig) inject(i int, t sim.Time, id uint32, pay byte) {
	z := r.fab.Zones()[i]
	in := r.ins[i]
	f := netif.Frame{Medium: netif.CAN, ID: id, Priority: id, Payload: []byte{pay, byte(i)}}
	z.Kernel().At(t, func() { in.recv(z.Kernel().Now(), &f) })
}

func (r *zoneRig) run(t testing.TB) {
	t.Helper()
	var err error
	if r.g != nil {
		err = r.g.Run()
	} else {
		err = r.k.Run()
	}
	if err != nil {
		t.Fatal(err)
	}
}

// fingerprint concatenates per-zone delivery logs in zone order — each
// log is written only by its own zone's kernel, so the concatenation is
// well-defined at any parallelism.
func (r *zoneRig) fingerprint() string {
	var b strings.Builder
	for i, lg := range r.logs {
		fmt.Fprintf(&b, "== zone %d (%d deliveries)\n", i, len(*lg))
		for _, line := range *lg {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "backbone frames=%d deliveries=%d\n",
		r.fab.BackboneFramesTotal(), r.fab.BackboneDeliveriesTotal())
	return b.String()
}

// collisionFreeWorkload injects one frame per (zone, repetition) at
// globally unique instants, so every backbone arrival is unique in time
// and the shared and partitioned delivery orders are comparable without
// relying on tie-breaking (which legitimately differs between one kernel
// and several).
func collisionFreeWorkload(r *zoneRig, zones, reps int) {
	for i := 0; i < zones; i++ {
		for j := 0; j < reps; j++ {
			at := sim.Time(1_000_000 + i*137_000 + j*997_000)
			r.inject(i, at, uint32(0x100+i), byte(j))
		}
	}
}

// TestPartitionedMatchesSharedBackboneTiming pins the partitioned
// backbone's frame timing to the shared ethernet.Switch model: the same
// topology, rules and collision-free workload must deliver every frame to
// every zone at the same virtual instant, with the same backbone frame
// and delivery counts.
func TestPartitionedMatchesSharedBackboneTiming(t *testing.T) {
	const zones, reps = 4, 6
	shared := newZoneRig(t, zones, false, 7)
	part := newZoneRig(t, zones, true, 7)
	collisionFreeWorkload(shared, zones, reps)
	collisionFreeWorkload(part, zones, reps)
	shared.run(t)
	part.run(t)
	if s, p := shared.fingerprint(), part.fingerprint(); s != p {
		t.Fatalf("partitioned backbone diverged from shared switch:\n--- shared\n%s\n--- partitioned\n%s", s, p)
	}
	if !part.fab.Partitioned() || part.fab.Group() == nil {
		t.Fatal("partitioned rig does not report Partitioned")
	}
	if shared.fab.Partitioned() {
		t.Fatal("shared rig reports Partitioned")
	}
}

// TestPartitionedSerialParallelEquivalence pins byte-identical execution
// of a partitioned fabric at any worker count, including a cross-kernel
// quarantine reflex fired mid-run.
func TestPartitionedSerialParallelEquivalence(t *testing.T) {
	const zones, reps = 5, 8
	build := func(workers int) string {
		r := newZoneRig(t, zones, true, 99)
		for i := 0; i < zones; i++ {
			for j := 0; j < reps; j++ {
				// Deliberate time collisions across zones: determinism must
				// not depend on unique arrival instants.
				r.inject(i, sim.Time(1_000_000+j*500_000), uint32(0x200+i), byte(j))
			}
		}
		// Zone 1's kernel requests isolation of zone 3 mid-workload — the
		// asynchronous containment message must land identically.
		r.fab.Zones()[1].Kernel().At(2_200_000, func() {
			if err := r.fab.RequestZoneQuarantine("d1", "d3"); err != nil {
				t.Error(err)
			}
		})
		r.g.SetWorkers(workers)
		r.run(t)
		if !r.fab.ZoneQuarantined("z3") {
			t.Fatal("zone 3 not quarantined after cross-kernel request")
		}
		return r.fingerprint()
	}
	serial := build(1)
	for _, w := range []int{2, 4, 8} {
		if p := build(w); p != serial {
			t.Fatalf("workers=%d diverged from serial:\n--- serial\n%s\n--- parallel\n%s", w, serial, p)
		}
	}
}

// TestRequestZoneQuarantineCrossKernel pins the semantics of the
// asynchronous containment request: it takes effect exactly one backbone
// lookahead after the requesting zone's now — frames crossing before that
// instant still deliver, frames after it are dropped at the target's
// uplink.
func TestRequestZoneQuarantineCrossKernel(t *testing.T) {
	r := newZoneRig(t, 3, true, 5)
	// Two frames from zone 0 to everyone: one whose backbone arrival
	// precedes the quarantine instant, one injected after it.
	r.inject(0, 1_000_000, 0x111, 1)
	r.inject(0, 3_000_000, 0x222, 2)
	r.fab.Zones()[1].Kernel().At(2_000_000, func() {
		if err := r.fab.RequestZoneQuarantine("d1", "d2"); err != nil {
			t.Error(err)
		}
	})
	r.run(t)
	z2 := *r.logs[2]
	if len(z2) != 1 || !strings.Contains(z2[0], "id=0x111") {
		t.Fatalf("zone 2 deliveries = %q, want exactly the pre-quarantine frame", z2)
	}
	// Zone 1 is not quarantined and must have seen both frames.
	if len(*r.logs[1]) != 2 {
		t.Fatalf("zone 1 deliveries = %q, want both frames", *r.logs[1])
	}
	// Unknown domains are reported, not panicked.
	if err := r.fab.RequestZoneQuarantine("d0", "nope"); err == nil {
		t.Fatal("quarantine of unknown target domain did not error")
	}
	if err := r.fab.RequestZoneQuarantine("nope", "d0"); err == nil {
		t.Fatal("quarantine from unknown source domain did not error")
	}
}

// TestPartitionedResetEquivalence pins the pooled-vehicle lifecycle on a
// partitioned fabric: group reset + fabric reset must replay a workload
// byte-identically to the first run, with all backbone counters rewound.
func TestPartitionedResetEquivalence(t *testing.T) {
	r := newZoneRig(t, 4, true, 11)
	r.fab.MarkBaseline()
	workload := func() {
		collisionFreeWorkload(r, 4, 5)
		r.fab.Zones()[0].Kernel().At(2_500_000, func() {
			r.fab.RequestZoneQuarantine("d0", "d3")
		})
	}
	workload()
	r.run(t)
	first := r.fingerprint()

	r.g.Reset(11)
	r.fab.ResetToBaseline()
	for _, lg := range r.logs {
		*lg = (*lg)[:0]
	}
	if n := r.fab.BackboneFramesTotal(); n != 0 {
		t.Fatalf("backbone frame total after reset = %d, want 0", n)
	}
	if n := r.fab.BackboneDeliveriesTotal(); n != 0 {
		t.Fatalf("backbone delivery total after reset = %d, want 0", n)
	}
	if r.fab.ZoneQuarantined("z3") {
		t.Fatal("quarantine survived reset")
	}
	workload()
	r.run(t)
	if second := r.fingerprint(); second != first {
		t.Fatalf("post-reset replay diverged:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestNewPartitionedRejectsExcessiveLookahead pins the constructor guard:
// a group promising more lookahead than the minimum backbone crossing
// would let zones outrun in-flight frames.
func TestNewPartitionedRejectsExcessiveLookahead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartitioned accepted a lookahead past the minimum crossing time")
		}
	}()
	g := sim.NewKernelGroup(1, ethernet.TunnelLookahead(rigHop, ethernet.DefaultLinkBps)+1)
	NewPartitioned(g, rigHop, ethernet.DefaultLinkBps)
}

// partAllocRig builds a two-zone partitioned fabric over stub local media
// with recurring cross-zone traffic on both zones' kernels.
func partAllocRig(t testing.TB) (*sim.KernelGroup, *Fabric) {
	t.Helper()
	g := sim.NewKernelGroup(3, ethernet.TunnelLookahead(rigHop, ethernet.DefaultLinkBps))
	f := NewPartitioned(g, rigHop, ethernet.DefaultLinkBps)
	var ins []*stubPort
	for i := 0; i < 2; i++ {
		z, err := f.AddZone(fmt.Sprintf("z%d", i))
		if err != nil {
			t.Fatal(err)
		}
		m := &stubMedium{kind: netif.CAN}
		if err := z.AttachDomain(fmt.Sprintf("d%d", i), m); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, m.ports[0])
	}
	f.SetRules([]*gateway.Rule{
		{Name: "open", From: "*", IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
	})
	for i := 0; i < 2; i++ {
		z := f.Zones()[i]
		in := ins[i]
		fr := netif.Frame{Medium: netif.CAN, ID: uint32(0x100 + i), Priority: uint32(0x100 + i), Payload: make([]byte, 8)}
		z.Kernel().Every(sim.Millisecond, sim.Millisecond, func() { in.recv(z.Kernel().Now(), &fr) })
	}
	return g, f
}

// TestPartitionedInterZoneSteadyStateAllocs pins the whole partitioned
// inter-zone chain — source-zone rule match, tunnel encapsulation,
// pooled inter-kernel message, destination decapsulation and delivery —
// at zero steady-state allocations per simulated window. CI gates on
// this test.
func TestPartitionedInterZoneSteadyStateAllocs(t *testing.T) {
	g, f := partAllocRig(t)
	now := sim.Time(0)
	advance := func() {
		now += 10 * sim.Millisecond
		if err := g.RunUntil(now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		advance()
	}
	before := f.BackboneFramesTotal()
	if n := testing.AllocsPerRun(200, advance); n != 0 {
		t.Fatalf("partitioned inter-zone steady state allocates %.1f/window, want 0", n)
	}
	if f.BackboneFramesTotal() <= before {
		t.Fatal("no frames crossed the backbone during the measurement")
	}
}

// BenchmarkZonalPartitioned measures the partitioned inter-zone chain,
// pooled mailbox included, per simulated 10ms window. CI runs it with
// the same 0-allocs/op gate as BenchmarkZonalInterZone.
func BenchmarkZonalPartitioned(b *testing.B) {
	g, _ := partAllocRig(b)
	now := sim.Time(0)
	step := func() {
		now += 10 * sim.Millisecond
		if err := g.RunUntil(now); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestInstrumentZonesPerZoneProbes pins the partitioned flavor of the
// per-zone delivery probes: each zone's zone-<name>/backbone_deliveries
// reads its own kernel-local counter, and the sum matches the fabric
// total.
func TestInstrumentZonesPerZoneProbes(t *testing.T) {
	const zones = 3
	r := newZoneRig(t, zones, true, 7)
	reg := obs.NewRegistry()
	r.fab.InstrumentZones(nil, reg)
	collisionFreeWorkload(r, zones, 2)
	r.run(t)

	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Key] = m.Value
	}
	var sum float64
	for i := 0; i < zones; i++ {
		key := fmt.Sprintf("zone-z%d/backbone_deliveries", i)
		v, ok := snap[key]
		if !ok {
			t.Fatalf("probe %q not registered", key)
		}
		// Every frame floods to all other zones, so each zone accepts
		// deliveries from the (zones-1) other zones' injections.
		if v == 0 {
			t.Fatalf("probe %q = 0, want ingress deliveries", key)
		}
		sum += v
	}
	if total := snap["zonal/backbone_deliveries"]; total != sum {
		t.Fatalf("fabric total %v != per-zone sum %v", total, sum)
	}
}
