package lin

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

func TestIntruderInjectsOnUnownedID(t *testing.T) {
	k, c, _, sub := newCluster(t)
	// Nobody owns 0x22; the intruder answers the master's poll and every
	// subscriber trusts it — LIN has nothing to object with.
	if err := c.Intrude(0x22, func(sim.Time) []byte { return []byte{0xBA, 0xD0} }); err != nil {
		t.Fatal(err)
	}
	var got []Frame
	sub.Subscribe(0x22, func(_ sim.Time, f Frame) { got = append(got, f) })
	c.SetSchedule([]ScheduleEntry{{ID: 0x22, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(50 * sim.Millisecond)
	c.Stop()
	if len(got) == 0 || got[0].Data[0] != 0xBA {
		t.Fatalf("injected frames: %v", got)
	}
}

func TestIntruderCollidesWithOwner(t *testing.T) {
	k, c, pub, sub := newCluster(t)
	_ = pub.Publish(0x10, func(sim.Time) []byte { return []byte{0x01} })
	_ = c.Intrude(0x10, func(sim.Time) []byte { return []byte{0xFF} })
	delivered := 0
	sub.Subscribe(0x10, func(sim.Time, Frame) { delivered++ })
	c.SetSchedule([]ScheduleEntry{{ID: 0x10, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(100 * sim.Millisecond)
	c.Stop()
	if delivered != 0 {
		t.Fatalf("%d frames survived the collision", delivered)
	}
	if c.ResponseCollisions.Value < 9 {
		t.Fatalf("collisions=%d", c.ResponseCollisions.Value)
	}
}

func TestIntruderTakesOverSilentOwner(t *testing.T) {
	// The owner exists but returns nil (sensor fault); the intruder's
	// response fills the vacuum — the masquerade variant.
	k, c, pub, sub := newCluster(t)
	_ = pub.Publish(0x11, func(sim.Time) []byte { return nil })
	_ = c.Intrude(0x11, func(sim.Time) []byte { return []byte{0x66} })
	var got []Frame
	sub.Subscribe(0x11, func(_ sim.Time, f Frame) { got = append(got, f) })
	c.SetSchedule([]ScheduleEntry{{ID: 0x11, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(30 * sim.Millisecond)
	c.Stop()
	if len(got) == 0 || got[0].Data[0] != 0x66 {
		t.Fatalf("masquerade frames: %v", got)
	}
}

func TestIntrudeValidatesID(t *testing.T) {
	_, c, _, _ := newCluster(t)
	if err := c.Intrude(0x40, nil); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err=%v", err)
	}
}
