// Package uds implements a Unified Diagnostic Services (ISO 14229)
// server and client over the isotp transport: diagnostic sessions,
// SecurityAccess seed/key unlocking with attempt lockout, data
// identifiers, ECU reset and routine control.
//
// Diagnostics is the attack surface behind the paper's remote
// exploitation references [15, 16]: reflashing and privileged routines
// are gated only by the SecurityAccess handshake, so its seed/key
// algorithm strength and lockout policy decide whether "diagnostic
// tester" equals "attacker toolkit". The package ships a deliberately
// weak legacy algorithm (XOR with a fixed constant, as found in many
// fielded ECUs) and a SHE-backed CMAC algorithm, so scenarios can measure
// the difference.
package uds

import (
	"bytes"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/isotp"
	"autosec/internal/she"
	"autosec/internal/sim"
)

// Service identifiers.
const (
	SvcSessionControl  = 0x10
	SvcECUReset        = 0x11
	SvcReadDataByID    = 0x22
	SvcSecurityAccess  = 0x27
	SvcWriteDataByID   = 0x2E
	SvcRoutineControl  = 0x31
	SvcTesterPresent   = 0x3E
	negativeResponse   = 0x7F
	positiveResponseOr = 0x40
)

// Session types.
const (
	SessionDefault     = 0x01
	SessionProgramming = 0x02
	SessionExtended    = 0x03
)

// Negative response codes.
const (
	NRCServiceNotSupported     = 0x11
	NRCSubFunctionNotSupported = 0x12
	NRCIncorrectLength         = 0x13
	NRCConditionsNotCorrect    = 0x22
	NRCRequestSequenceError    = 0x24
	NRCRequestOutOfRange       = 0x31
	NRCSecurityAccessDenied    = 0x33
	NRCInvalidKey              = 0x35
	NRCExceedAttempts          = 0x36
	NRCTimeDelayNotExpired     = 0x37
)

// NRCName names a negative response code for diagnostics output.
func NRCName(nrc byte) string {
	switch nrc {
	case NRCServiceNotSupported:
		return "serviceNotSupported"
	case NRCSubFunctionNotSupported:
		return "subFunctionNotSupported"
	case NRCIncorrectLength:
		return "incorrectMessageLengthOrInvalidFormat"
	case NRCConditionsNotCorrect:
		return "conditionsNotCorrect"
	case NRCRequestSequenceError:
		return "requestSequenceError"
	case NRCRequestOutOfRange:
		return "requestOutOfRange"
	case NRCSecurityAccessDenied:
		return "securityAccessDenied"
	case NRCInvalidKey:
		return "invalidKey"
	case NRCExceedAttempts:
		return "exceededNumberOfAttempts"
	case NRCTimeDelayNotExpired:
		return "requiredTimeDelayNotExpired"
	default:
		return fmt.Sprintf("nrc(%#x)", nrc)
	}
}

// SeedKeyAlgorithm computes the expected key for a seed at a security
// level. The server generates seeds; the tester (or attacker) must
// produce the matching key.
type SeedKeyAlgorithm interface {
	// Key derives the unlock key for (level, seed).
	Key(level byte, seed []byte) []byte
	// Name identifies the algorithm in logs.
	Name() string
}

// WeakXOR is the legacy algorithm found in many production ECUs: the key
// is the seed XORed with a per-level constant. One sniffed exchange
// reveals the constant forever — the property the diagnostic-attack
// scenario demonstrates.
type WeakXOR struct {
	Constant uint32
}

// Name implements SeedKeyAlgorithm.
func (w WeakXOR) Name() string { return "weak-xor" }

// Key implements SeedKeyAlgorithm.
func (w WeakXOR) Key(level byte, seed []byte) []byte {
	out := make([]byte, len(seed))
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], w.Constant+uint32(level))
	for i := range seed {
		out[i] = seed[i] ^ c[i%4]
	}
	return out
}

// SHECMAC derives the key as a truncated CMAC of the seed under a key
// held in a SHE slot — sniffing exchanges reveals nothing about other
// seeds.
type SHECMAC struct {
	Engine *she.Engine
	Slot   she.KeyID
}

// Name implements SeedKeyAlgorithm.
func (s SHECMAC) Name() string { return "she-cmac" }

// Key implements SeedKeyAlgorithm.
func (s SHECMAC) Key(level byte, seed []byte) []byte {
	mac, err := s.Engine.GenerateMAC(s.Slot, append([]byte{level}, seed...))
	if err != nil {
		return nil // locked/invalid slot: no key derivable
	}
	return mac[:4]
}

// DID is a data identifier.
type DID uint16

// Well-known data identifiers used by the scenarios.
const (
	DIDVIN           DID = 0xF190
	DIDSWVersion     DID = 0xF195
	DIDCalibration   DID = 0xC100 // write requires security level 1
	DIDImmobilizerPN DID = 0xC200 // read requires security level 1
)

// ServerConfig parameterizes an ECU's diagnostic server.
type ServerConfig struct {
	Algorithm SeedKeyAlgorithm
	// MaxAttempts before lockout (default 3).
	MaxAttempts int
	// LockoutDelay before another attempt may start (default 10s).
	LockoutDelay sim.Duration
	// Rand supplies seed bytes.
	Rand *sim.Stream
}

// Server is the ECU-side UDS endpoint. It is transport-agnostic: the
// send function carries responses back over whatever carried the request
// (ISO-TP over CAN via NewServer, DoIP over Ethernet via NewRawServer).
type Server struct {
	send func(resp []byte)
	cfg  ServerConfig
	k    *sim.Kernel

	session       byte
	unlockedLevel byte // 0 = locked
	pendingSeed   []byte
	pendingLevel  byte
	attempts      int
	lockedUntil   sim.Time

	// readable/writable DID stores with their security requirements.
	data       map[DID][]byte
	readLevel  map[DID]byte
	writeLevel map[DID]byte

	// Routines: id -> handler; security level 1 required for all.
	routines map[uint16]func(args []byte) []byte

	// Flashing state (see flash.go).
	flashEnabled bool
	dl           *download
	flashImage   []byte

	Resets  sim.Counter
	Unlocks sim.Counter
	BadKeys sim.Counter
	Flashes sim.Counter
}

// NewServer attaches a UDS server to an ISO-TP endpoint.
func NewServer(k *sim.Kernel, ep *isotp.Endpoint, cfg ServerConfig) *Server {
	s := NewRawServer(k, func(resp []byte) { _ = ep.Send(resp, nil) }, cfg)
	ep.OnMessage(func(at sim.Time, req []byte) { s.Handle(at, req) })
	return s
}

// NewRawServer creates a server over an arbitrary transport: the caller
// feeds requests to Handle and the send function carries responses back.
func NewRawServer(k *sim.Kernel, send func(resp []byte), cfg ServerConfig) *Server {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.LockoutDelay <= 0 {
		cfg.LockoutDelay = 10 * sim.Second
	}
	return &Server{
		send:       send,
		cfg:        cfg,
		k:          k,
		session:    SessionDefault,
		data:       make(map[DID][]byte),
		readLevel:  make(map[DID]byte),
		writeLevel: make(map[DID]byte),
		routines:   make(map[uint16]func([]byte) []byte),
	}
}

// SetData defines a DID with its read/write security levels (0 = open).
func (s *Server) SetData(id DID, value []byte, readLevel, writeLevel byte) {
	s.data[id] = append([]byte(nil), value...)
	s.readLevel[id] = readLevel
	s.writeLevel[id] = writeLevel
}

// Data reads back a DID's stored value (test/scenario access).
func (s *Server) Data(id DID) []byte { return s.data[id] }

// AddRoutine registers a security-gated routine.
func (s *Server) AddRoutine(id uint16, fn func(args []byte) []byte) {
	s.routines[id] = fn
}

// Session reports the active diagnostic session.
func (s *Server) Session() byte { return s.session }

// UnlockedLevel reports the active security level (0 = locked).
func (s *Server) UnlockedLevel() byte { return s.unlockedLevel }

func (s *Server) reply(payload []byte) {
	s.send(payload)
}

func (s *Server) negative(svc, nrc byte) {
	s.reply([]byte{negativeResponse, svc, nrc})
}

// Handle processes one request arriving at virtual time at.
func (s *Server) Handle(at sim.Time, req []byte) {
	if len(req) == 0 {
		return
	}
	svc := req[0]
	switch svc {
	case SvcSessionControl:
		s.sessionControl(req)
	case SvcECUReset:
		s.ecuReset(req)
	case SvcTesterPresent:
		if len(req) != 2 {
			s.negative(svc, NRCIncorrectLength)
			return
		}
		s.reply([]byte{svc + positiveResponseOr, req[1]})
	case SvcReadDataByID:
		s.readData(req)
	case SvcWriteDataByID:
		s.writeData(req)
	case SvcSecurityAccess:
		s.securityAccess(at, req)
	case SvcRoutineControl:
		s.routineControl(req)
	case SvcRequestDownload:
		s.requestDownload(req)
	case SvcTransferData:
		s.transferData(req)
	case SvcRequestTransferExit:
		s.requestTransferExit(req)
	default:
		s.negative(svc, NRCServiceNotSupported)
	}
}

func (s *Server) sessionControl(req []byte) {
	if len(req) != 2 {
		s.negative(SvcSessionControl, NRCIncorrectLength)
		return
	}
	switch req[1] {
	case SessionDefault, SessionProgramming, SessionExtended:
		s.session = req[1]
		if req[1] == SessionDefault {
			s.unlockedLevel = 0 // leaving a privileged session relocks
		}
		s.reply([]byte{SvcSessionControl + positiveResponseOr, req[1], 0, 0x32, 0x01, 0xF4})
	default:
		s.negative(SvcSessionControl, NRCSubFunctionNotSupported)
	}
}

func (s *Server) ecuReset(req []byte) {
	if len(req) != 2 {
		s.negative(SvcECUReset, NRCIncorrectLength)
		return
	}
	if s.session == SessionDefault {
		s.negative(SvcECUReset, NRCConditionsNotCorrect)
		return
	}
	s.Resets.Inc()
	s.session = SessionDefault
	s.unlockedLevel = 0
	s.reply([]byte{SvcECUReset + positiveResponseOr, req[1]})
}

func (s *Server) readData(req []byte) {
	if len(req) != 3 {
		s.negative(SvcReadDataByID, NRCIncorrectLength)
		return
	}
	id := DID(binary.BigEndian.Uint16(req[1:3]))
	val, ok := s.data[id]
	if !ok {
		s.negative(SvcReadDataByID, NRCRequestOutOfRange)
		return
	}
	if lvl := s.readLevel[id]; lvl != 0 && s.unlockedLevel < lvl {
		s.negative(SvcReadDataByID, NRCSecurityAccessDenied)
		return
	}
	out := append([]byte{SvcReadDataByID + positiveResponseOr, req[1], req[2]}, val...)
	s.reply(out)
}

func (s *Server) writeData(req []byte) {
	if len(req) < 4 {
		s.negative(SvcWriteDataByID, NRCIncorrectLength)
		return
	}
	id := DID(binary.BigEndian.Uint16(req[1:3]))
	if _, ok := s.data[id]; !ok {
		s.negative(SvcWriteDataByID, NRCRequestOutOfRange)
		return
	}
	if lvl := s.writeLevel[id]; lvl == 0 || s.unlockedLevel < lvl {
		// Writes always require an explicit grant; a DID with writeLevel 0
		// is read-only.
		s.negative(SvcWriteDataByID, NRCSecurityAccessDenied)
		return
	}
	s.data[id] = append([]byte(nil), req[3:]...)
	s.reply([]byte{SvcWriteDataByID + positiveResponseOr, req[1], req[2]})
}

func (s *Server) securityAccess(at sim.Time, req []byte) {
	if len(req) < 2 {
		s.negative(SvcSecurityAccess, NRCIncorrectLength)
		return
	}
	sub := req[1]
	if s.session == SessionDefault {
		s.negative(SvcSecurityAccess, NRCConditionsNotCorrect)
		return
	}
	if at < s.lockedUntil {
		s.negative(SvcSecurityAccess, NRCTimeDelayNotExpired)
		return
	}
	if sub%2 == 1 { // requestSeed for level (sub+1)/2
		seed := make([]byte, 4)
		s.cfg.Rand.Bytes(seed)
		s.pendingSeed = seed
		s.pendingLevel = (sub + 1) / 2
		out := append([]byte{SvcSecurityAccess + positiveResponseOr, sub}, seed...)
		s.reply(out)
		return
	}
	// sendKey for level sub/2.
	if s.pendingSeed == nil || s.pendingLevel != sub/2 {
		s.negative(SvcSecurityAccess, NRCRequestSequenceError)
		return
	}
	want := s.cfg.Algorithm.Key(s.pendingLevel, s.pendingSeed)
	got := req[2:]
	s.pendingSeed = nil
	if want == nil || len(got) != len(want) || subtle.ConstantTimeCompare(want, got) != 1 {
		s.BadKeys.Inc()
		s.attempts++
		if s.attempts >= s.cfg.MaxAttempts {
			s.lockedUntil = at + s.cfg.LockoutDelay
			s.attempts = 0
			s.negative(SvcSecurityAccess, NRCExceedAttempts)
			return
		}
		s.negative(SvcSecurityAccess, NRCInvalidKey)
		return
	}
	s.attempts = 0
	s.unlockedLevel = sub / 2
	s.Unlocks.Inc()
	s.reply([]byte{SvcSecurityAccess + positiveResponseOr, sub})
}

func (s *Server) routineControl(req []byte) {
	if len(req) < 4 {
		s.negative(SvcRoutineControl, NRCIncorrectLength)
		return
	}
	if req[1] != 0x01 { // startRoutine only
		s.negative(SvcRoutineControl, NRCSubFunctionNotSupported)
		return
	}
	id := binary.BigEndian.Uint16(req[2:4])
	fn, ok := s.routines[id]
	if !ok {
		s.negative(SvcRoutineControl, NRCRequestOutOfRange)
		return
	}
	if s.unlockedLevel == 0 {
		s.negative(SvcRoutineControl, NRCSecurityAccessDenied)
		return
	}
	result := fn(req[4:])
	out := append([]byte{SvcRoutineControl + positiveResponseOr, 0x01, req[2], req[3]}, result...)
	s.reply(out)
}

// Client is the tester-side helper: it sends a request and hands the
// next response to a callback (one outstanding request at a time, as UDS
// physical addressing works).
type Client struct {
	ep      *isotp.Endpoint
	pending func(resp []byte)
}

// NewClient attaches a client to an ISO-TP endpoint.
func NewClient(ep *isotp.Endpoint) *Client {
	c := &Client{ep: ep}
	ep.OnMessage(func(_ sim.Time, resp []byte) {
		if c.pending != nil {
			fn := c.pending
			c.pending = nil
			fn(resp)
		}
	})
	return c
}

// ErrBusy is returned when a request is already outstanding.
var ErrBusy = errors.New("uds: request already outstanding")

// Request sends a raw request; respond fires with the raw response.
func (c *Client) Request(req []byte, respond func(resp []byte)) error {
	if c.pending != nil {
		return ErrBusy
	}
	c.pending = respond
	return c.ep.Send(req, nil)
}

// ParseResponse splits a response into (positive, service/NRC, payload).
func ParseResponse(svc byte, resp []byte) (payload []byte, err error) {
	if len(resp) == 0 {
		return nil, errors.New("uds: empty response")
	}
	if resp[0] == negativeResponse {
		if len(resp) >= 3 {
			return nil, fmt.Errorf("uds: negative response to %#x: %s", resp[1], NRCName(resp[2]))
		}
		return nil, errors.New("uds: malformed negative response")
	}
	if resp[0] != svc+positiveResponseOr {
		return nil, fmt.Errorf("uds: response service %#x does not match request %#x", resp[0], svc)
	}
	return resp[1:], nil
}

// Unlock performs the two-step SecurityAccess handshake for a level using
// the given algorithm, then calls done(err).
func (c *Client) Unlock(level byte, alg SeedKeyAlgorithm, done func(err error)) error {
	reqSeedSub := byte(level*2 - 1)
	return c.Request([]byte{SvcSecurityAccess, reqSeedSub}, func(resp []byte) {
		payload, err := ParseResponse(SvcSecurityAccess, resp)
		if err != nil {
			done(err)
			return
		}
		if len(payload) < 1 || payload[0] != reqSeedSub {
			done(errors.New("uds: seed response malformed"))
			return
		}
		seed := payload[1:]
		if len(seed) == 0 || bytes.Equal(seed, make([]byte, len(seed))) {
			// An all-zero seed means "already unlocked" per ISO 14229.
			done(nil)
			return
		}
		key := alg.Key(level, seed)
		req := append([]byte{SvcSecurityAccess, reqSeedSub + 1}, key...)
		err = c.Request(req, func(resp []byte) {
			_, err := ParseResponse(SvcSecurityAccess, resp)
			done(err)
		})
		if err != nil {
			done(err)
		}
	})
}
