// Shard encoding: the allocation-lean capture path behind the fleet
// driver's metrics plane. Building a fresh Registry and Instrument-ing a
// vehicle into it costs a few microseconds and ~100 allocations — fine
// per simulation, fatal per vehicle at 1e5 vehicles. Instead the driver
// keeps ONE scratch registry per worker, Rewinds it between vehicles,
// and flattens each vehicle's readings into a Shard: two flat arrays
// whose slots are assigned by a ShardLayout built once per worker. The
// barrier then folds shards into the fleet registry in vehicle-index
// order via MergeInto, which performs arithmetic identical — operation
// for operation, in the same order — to Registry.Merge over materialized
// per-vehicle registries, so the two paths produce byte-identical
// snapshots (pinned by TestDriveObsMergedEqualsUnsharded).
package obs

import (
	"fmt"
	"sort"
)

// Rewind zeroes every instrument in place and drops materialized
// readings, while keeping the instrument objects, their keys, their
// bucket layouts — and the probe registrations. Probes survive because
// their closures bind to subsystem objects, not to a simulation run: a
// pooled vehicle re-run under a new seed is read correctly by the
// closures registered on its first Instrument. Callers that instrument a
// *different* object graph into a rewound registry must re-Instrument
// (overwriting the probe entries); callers that shrink the key set must
// build a fresh registry instead. This is the pooled-vehicle Reset
// discipline applied to the registry: construction wiring survives, run
// state does not.
func (r *Registry) Rewind() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.count, h.sum, h.max = 0, 0, 0
	}
	for k := range r.frozen {
		delete(r.frozen, k)
	}
}

// ShardLayout assigns every instrument of one registry a fixed slot in
// the Shard arrays, in sorted-key order per instrument class. A layout
// is bound to the registry it was built from: it caches instrument
// pointers so Export runs without map lookups for everything but probes
// (whose closures are re-registered per run). Rebuild the layout (or
// check Matches) after anything other than Rewind/Instrument cycles
// touched the registry's key set.
type ShardLayout struct {
	counterKeys []string
	gaugeKeys   []string
	probeKeys   []string
	histKeys    []string

	counterPtrs []*Counter
	gaugePtrs   []*Gauge
	probeFns    []func() float64
	histPtrs    []*Histogram
	bounds      [][]float64

	intLen   int // counters, then per-histogram counts+count
	floatLen int // gauges, then probes, then per-histogram sum+max
}

// Shard is one vehicle's flattened readings under some ShardLayout: a
// value capture like Materialize, at two allocations.
type Shard struct {
	ints   []uint64
	floats []float64
}

// NewShardLayout builds the slot assignment for r's current key set.
func NewShardLayout(r *Registry) *ShardLayout {
	l := &ShardLayout{}
	for k := range r.counters {
		l.counterKeys = append(l.counterKeys, k)
	}
	for k := range r.gauges {
		l.gaugeKeys = append(l.gaugeKeys, k)
	}
	for k := range r.probes {
		l.probeKeys = append(l.probeKeys, k)
	}
	for k := range r.histograms {
		l.histKeys = append(l.histKeys, k)
	}
	sort.Strings(l.counterKeys)
	sort.Strings(l.gaugeKeys)
	sort.Strings(l.probeKeys)
	sort.Strings(l.histKeys)
	for _, k := range l.counterKeys {
		l.counterPtrs = append(l.counterPtrs, r.counters[k])
	}
	for _, k := range l.gaugeKeys {
		l.gaugePtrs = append(l.gaugePtrs, r.gauges[k])
	}
	for _, k := range l.probeKeys {
		l.probeFns = append(l.probeFns, r.probes[k])
	}
	l.intLen = len(l.counterKeys)
	l.floatLen = len(l.gaugeKeys) + len(l.probeKeys)
	for _, k := range l.histKeys {
		h := r.histograms[k]
		l.histPtrs = append(l.histPtrs, h)
		l.bounds = append(l.bounds, h.bounds)
		l.intLen += len(h.counts) + 1
		l.floatLen += 2
	}
	return l
}

// Matches reports whether r's key-set shape still fits this layout. It
// is a structural check (per-class counts), sufficient for the fleet
// driver's homogeneous populations where Instrument registers the same
// keys for every vehicle of one Config; heterogeneous registries must
// rebuild the layout instead.
func (l *ShardLayout) Matches(r *Registry) bool {
	return len(r.counters) == len(l.counterKeys) &&
		len(r.gauges) == len(l.gaugeKeys) &&
		len(r.probes) == len(l.probeKeys) &&
		len(r.histograms) == len(l.histKeys)
}

// Export flattens r's current readings into a fresh Shard, evaluating
// every probe now (the Materialize moment). Call it before the probed
// subsystems are reset or reused. Probes are read through the closures
// cached at layout-build time; re-Instrumenting the same object graph
// into r replaces the map entries with closures over the same objects,
// so the cached ones keep reading correct values.
func (l *ShardLayout) Export(r *Registry) Shard {
	s := Shard{
		ints:   make([]uint64, l.intLen),
		floats: make([]float64, l.floatLen),
	}
	l.exportInto(&s)
	return s
}

func (l *ShardLayout) exportInto(s *Shard) {
	ii, fi := 0, 0
	for _, c := range l.counterPtrs {
		s.ints[ii] = uint64(c.v)
		ii++
	}
	for _, g := range l.gaugePtrs {
		s.floats[fi] = g.v
		fi++
	}
	for _, fn := range l.probeFns {
		s.floats[fi] = fn()
		fi++
	}
	for _, h := range l.histPtrs {
		copy(s.ints[ii:ii+len(h.counts)], h.counts)
		ii += len(h.counts)
		s.ints[ii] = h.count
		ii++
		s.floats[fi] = h.sum
		s.floats[fi+1] = h.max
		fi += 2
	}
}

// ShardArena carves per-vehicle Shards for one layout out of two backing
// arrays sized up front, so a fleet worker's shard capture does zero
// per-vehicle allocations. Every slot of a carved shard is written by
// Export, so the arena never needs re-zeroing between vehicles.
type ShardArena struct {
	layout *ShardLayout
	ints   []uint64
	floats []float64
}

// NewArena preallocates backing for n shards of this layout.
func (l *ShardLayout) NewArena(n int) *ShardArena {
	return &ShardArena{
		layout: l,
		ints:   make([]uint64, n*l.intLen),
		floats: make([]float64, n*l.floatLen),
	}
}

// Export carves the next shard off the arena and fills it from r. When
// the arena is exhausted it falls back to a heap-allocated shard, so
// sizing is a performance concern, never a correctness one.
func (a *ShardArena) Export(r *Registry) Shard {
	l := a.layout
	if len(a.ints) < l.intLen || len(a.floats) < l.floatLen {
		return l.Export(r)
	}
	s := Shard{
		ints:   a.ints[:l.intLen:l.intLen],
		floats: a.floats[:l.floatLen:l.floatLen],
	}
	a.ints = a.ints[l.intLen:]
	a.floats = a.floats[l.floatLen:]
	l.exportInto(&s)
	return s
}

// EqualShape reports whether o assigns the exact same slots as l: same
// keys per class (sorted, so set equality implies order equality) and
// same histogram bounds. Two workers instrumenting identically-shaped
// vehicles build distinct layout objects with equal shape; their shards
// may be accumulated under either layout.
func (l *ShardLayout) EqualShape(o *ShardLayout) bool {
	if l == o {
		return true
	}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(l.counterKeys, o.counterKeys) || !eq(l.gaugeKeys, o.gaugeKeys) ||
		!eq(l.probeKeys, o.probeKeys) || !eq(l.histKeys, o.histKeys) {
		return false
	}
	for i := range l.bounds {
		if len(l.bounds[i]) != len(o.bounds[i]) {
			return false
		}
		for j := range l.bounds[i] {
			if l.bounds[i][j] != o.bounds[i][j] {
				return false
			}
		}
	}
	return true
}

// Accumulate folds s into acc element-wise, initializing acc to the
// layout's zero shard on first use. Folding shards s0..sn into a zero
// acc and merging acc once is bit-identical to merging s0..sn into a
// fresh registry one by one: integer adds are associative, the float
// accumulators start at +0.0 (and IEEE-754 x+0.0 preserves every value
// a fold from +0.0 can produce), and the histogram count/max guards
// mirror MergeInto's exactly. This turns the per-vehicle barrier cost
// from a map-walk (MergeInto) into flat array arithmetic; the fleet
// driver flushes one MergeInto per run of equal-shape shards.
func (l *ShardLayout) Accumulate(acc *Shard, s Shard) error {
	if len(s.ints) != l.intLen || len(s.floats) != l.floatLen {
		return fmt.Errorf("obs: shard/layout mismatch: %d/%d values, layout wants %d/%d",
			len(s.ints), len(s.floats), l.intLen, l.floatLen)
	}
	if acc.ints == nil && acc.floats == nil {
		acc.ints = make([]uint64, l.intLen)
		acc.floats = make([]float64, l.floatLen)
	} else if len(acc.ints) != l.intLen || len(acc.floats) != l.floatLen {
		return fmt.Errorf("obs: accumulator/layout mismatch: %d/%d values, layout wants %d/%d",
			len(acc.ints), len(acc.floats), l.intLen, l.floatLen)
	}
	ii := len(l.counterKeys)
	for i := 0; i < ii; i++ {
		acc.ints[i] += s.ints[i]
	}
	fi := len(l.gaugeKeys) + len(l.probeKeys)
	for i := 0; i < fi; i++ {
		acc.floats[i] += s.floats[i]
	}
	for hi := range l.histKeys {
		n := len(l.bounds[hi]) + 1
		if cnt := s.ints[ii+n]; cnt > 0 {
			for j := 0; j < n; j++ {
				acc.ints[ii+j] += s.ints[ii+j]
			}
			if max := s.floats[fi+1]; acc.ints[ii+n] == 0 || max > acc.floats[fi+1] {
				acc.floats[fi+1] = max
			}
			acc.ints[ii+n] += cnt
			acc.floats[fi] += s.floats[fi]
		}
		ii += n + 1
		fi += 2
	}
	return nil
}

// MergeInto folds s into dst exactly as Registry.Merge would fold the
// registry s was exported from: counters and bucket counts add as
// integers, gauge levels, sums and probe readings add as float64 (in
// this layout's fixed key order — fold shards in one fixed order when
// byte-identical output matters), max merges as max-of-max with
// first-sample initialization. Missing dst keys are created on first
// merge; after that the path allocates nothing
// (TestFleetMergeSteadyStateAllocs).
func (l *ShardLayout) MergeInto(dst *Registry, s Shard) error {
	if dst == nil {
		return nil
	}
	if len(s.ints) != l.intLen || len(s.floats) != l.floatLen {
		return fmt.Errorf("obs: shard/layout mismatch: %d/%d values, layout wants %d/%d",
			len(s.ints), len(s.floats), l.intLen, l.floatLen)
	}
	ii, fi := 0, 0
	for _, k := range l.counterKeys {
		dst.Counter(k).v += int64(s.ints[ii])
		ii++
	}
	for _, k := range l.gaugeKeys {
		dst.Gauge(k).v += s.floats[fi]
		fi++
	}
	if len(l.probeKeys) > 0 && dst.frozen == nil {
		dst.frozen = make(map[string]float64, len(l.probeKeys))
	}
	for _, k := range l.probeKeys {
		dst.frozen[k] += s.floats[fi]
		fi++
	}
	for hi, k := range l.histKeys {
		h, ok := dst.histograms[k]
		if !ok {
			// Clone the layout's exact bounds (same rule as
			// Registry.Merge: the constructor's nil-means-default would
			// mismatch explicitly empty bounds).
			h = &Histogram{
				bounds: append([]float64(nil), l.bounds[hi]...),
				counts: make([]uint64, len(l.bounds[hi])+1),
			}
			dst.histograms[k] = h
		}
		n := len(h.counts)
		if n != len(l.bounds[hi])+1 {
			return fmt.Errorf("obs: shard merge: histogram %q has %d buckets, layout wants %d", k, n, len(l.bounds[hi])+1)
		}
		if cnt := s.ints[ii+n]; cnt > 0 {
			for j := 0; j < n; j++ {
				h.counts[j] += s.ints[ii+j]
			}
			if max := s.floats[fi+1]; h.count == 0 || max > h.max {
				h.max = max
			}
			h.count += cnt
			h.sum += s.floats[fi]
		}
		ii += n + 1
		fi += 2
	}
	return nil
}
