package uds

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/isotp"
	"autosec/internal/she"
	"autosec/internal/sim"
)

// rig wires a tester client and an ECU server over ISO-TP on one bus.
type rig struct {
	k      *sim.Kernel
	bus    *can.Bus
	client *Client
	server *Server
	alg    SeedKeyAlgorithm
}

func newRig(t *testing.T, alg SeedKeyAlgorithm) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "diag", 500_000)
	tc := can.NewController("tester")
	ec := can.NewController("ecu")
	bus.Attach(tc)
	bus.Attach(ec)
	testerEP := isotp.New(k, tc, isotp.Config{TxID: 0x7E0, RxID: 0x7E8})
	ecuEP := isotp.New(k, ec, isotp.Config{TxID: 0x7E8, RxID: 0x7E0})
	srv := NewServer(k, ecuEP, ServerConfig{
		Algorithm: alg,
		Rand:      k.Stream("uds.seed"),
	})
	srv.SetData(DIDVIN, []byte("WAUTOSEC000000042"), 0, 0)
	srv.SetData(DIDSWVersion, []byte{2, 1, 0}, 0, 0)
	srv.SetData(DIDCalibration, []byte{0x10, 0x20}, 0, 1)
	srv.SetData(DIDImmobilizerPN, []byte{0xAA, 0xBB}, 1, 0)
	return &rig{k: k, bus: bus, client: NewClient(testerEP), server: srv, alg: alg}
}

// do sends a request and returns the response synchronously (running the
// kernel to quiescence).
func (r *rig) do(t *testing.T, req []byte) []byte {
	t.Helper()
	var resp []byte
	if err := r.client.Request(req, func(b []byte) { resp = b }); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if resp == nil {
		t.Fatalf("no response to % x", req)
	}
	return resp
}

func (r *rig) mustPositive(t *testing.T, req []byte) []byte {
	t.Helper()
	resp := r.do(t, req)
	payload, err := ParseResponse(req[0], resp)
	if err != nil {
		t.Fatalf("request % x: %v", req, err)
	}
	return payload
}

func (r *rig) mustNegative(t *testing.T, req []byte, nrc byte) {
	t.Helper()
	resp := r.do(t, req)
	_, err := ParseResponse(req[0], resp)
	if err == nil {
		t.Fatalf("request % x unexpectedly succeeded", req)
	}
	if !strings.Contains(err.Error(), NRCName(nrc)) {
		t.Fatalf("request % x: err=%v, want %s", req, err, NRCName(nrc))
	}
}

func (r *rig) unlock(t *testing.T, level byte, alg SeedKeyAlgorithm) error {
	t.Helper()
	var result error = errors.New("no reply")
	if err := r.client.Unlock(level, alg, func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	return result
}

func TestReadVINWithoutSecurity(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	payload := r.mustPositive(t, []byte{SvcReadDataByID, 0xF1, 0x90})
	if !bytes.Equal(payload[2:], []byte("WAUTOSEC000000042")) {
		t.Fatalf("VIN=%q", payload[2:])
	}
}

func TestProtectedReadRequiresUnlock(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	r.mustNegative(t, []byte{SvcReadDataByID, 0xC2, 0x00}, NRCSecurityAccessDenied)
}

func TestSecurityAccessHappyPath(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	// SecurityAccess needs a non-default session.
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatal(err)
	}
	if r.server.UnlockedLevel() != 1 {
		t.Fatalf("level=%d", r.server.UnlockedLevel())
	}
	// The protected DID now reads.
	payload := r.mustPositive(t, []byte{SvcReadDataByID, 0xC2, 0x00})
	if !bytes.Equal(payload[2:], []byte{0xAA, 0xBB}) {
		t.Fatalf("payload=%x", payload)
	}
	// And the calibration DID now writes.
	r.mustPositive(t, []byte{SvcWriteDataByID, 0xC1, 0x00, 0x99, 0x88})
	if !bytes.Equal(r.server.Data(DIDCalibration), []byte{0x99, 0x88}) {
		t.Fatal("write did not stick")
	}
}

func TestSecurityAccessRequiresSession(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	r.mustNegative(t, []byte{SvcSecurityAccess, 0x01}, NRCConditionsNotCorrect)
}

func TestWrongKeyAndLockout(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	wrong := WeakXOR{Constant: 0xDEADBEEF}
	// Two bad attempts: invalidKey.
	if err := r.unlock(t, 1, wrong); err == nil || !strings.Contains(err.Error(), "invalidKey") {
		t.Fatalf("first bad attempt: %v", err)
	}
	if err := r.unlock(t, 1, wrong); err == nil || !strings.Contains(err.Error(), "invalidKey") {
		t.Fatalf("second bad attempt: %v", err)
	}
	// Third: lockout.
	if err := r.unlock(t, 1, wrong); err == nil || !strings.Contains(err.Error(), "exceededNumberOfAttempts") {
		t.Fatalf("third bad attempt: %v", err)
	}
	// During the lockout even the correct key is refused at seed request.
	if err := r.unlock(t, 1, r.alg); err == nil || !strings.Contains(err.Error(), "requiredTimeDelayNotExpired") {
		t.Fatalf("locked-out attempt: %v", err)
	}
	// After the delay the legitimate tester gets back in.
	_ = r.k.RunUntil(r.k.Now() + 11*sim.Second)
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatalf("post-lockout unlock: %v", err)
	}
	if r.server.BadKeys.Value != 3 || r.server.Unlocks.Value != 1 {
		t.Fatalf("badkeys=%d unlocks=%d", r.server.BadKeys.Value, r.server.Unlocks.Value)
	}
}

func TestSendKeyWithoutSeedIsSequenceError(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	r.mustNegative(t, []byte{SvcSecurityAccess, 0x02, 1, 2, 3, 4}, NRCRequestSequenceError)
}

func TestDefaultSessionRelocks(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatal(err)
	}
	r.mustPositive(t, []byte{SvcSessionControl, SessionDefault})
	if r.server.UnlockedLevel() != 0 {
		t.Fatal("returning to default session did not relock")
	}
}

func TestRoutineControlGated(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	ran := false
	r.server.AddRoutine(0xFF01, func(args []byte) []byte {
		ran = true
		return []byte{0x01}
	})
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	// Locked: denied.
	r.mustNegative(t, []byte{SvcRoutineControl, 0x01, 0xFF, 0x01}, NRCSecurityAccessDenied)
	if ran {
		t.Fatal("routine ran while locked")
	}
	if err := r.unlock(t, 1, r.alg); err != nil {
		t.Fatal(err)
	}
	payload := r.mustPositive(t, []byte{SvcRoutineControl, 0x01, 0xFF, 0x01})
	if !ran || payload[3] != 0x01 {
		t.Fatalf("routine result: ran=%v payload=%x", ran, payload)
	}
	// Unknown routine.
	r.mustNegative(t, []byte{SvcRoutineControl, 0x01, 0xAB, 0xCD}, NRCRequestOutOfRange)
}

func TestECUResetRelocks(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xCAFEBABE})
	// Reset in default session: conditions not correct.
	r.mustNegative(t, []byte{SvcECUReset, 0x01}, NRCConditionsNotCorrect)
	r.mustPositive(t, []byte{SvcSessionControl, SessionProgramming})
	_ = r.unlock(t, 1, r.alg)
	r.mustPositive(t, []byte{SvcECUReset, 0x01})
	if r.server.Session() != SessionDefault || r.server.UnlockedLevel() != 0 {
		t.Fatal("reset did not restore locked default state")
	}
	if r.server.Resets.Value != 1 {
		t.Fatalf("resets=%d", r.server.Resets.Value)
	}
}

func TestTesterPresentAndUnknownService(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	payload := r.mustPositive(t, []byte{SvcTesterPresent, 0x00})
	if payload[0] != 0x00 {
		t.Fatalf("payload=%x", payload)
	}
	r.mustNegative(t, []byte{0x99}, NRCServiceNotSupported)
	r.mustNegative(t, []byte{SvcReadDataByID, 0x01}, NRCIncorrectLength)
	r.mustNegative(t, []byte{SvcReadDataByID, 0xAA, 0xAA}, NRCRequestOutOfRange)
	r.mustNegative(t, []byte{SvcWriteDataByID, 0xF1, 0x90, 0x00}, NRCSecurityAccessDenied) // read-only DID
	r.mustNegative(t, []byte{SvcSessionControl, 0x7F}, NRCSubFunctionNotSupported)
}

// The attack the weak algorithm invites: sniff one seed/key exchange off
// the bus, recover the XOR constant, unlock any other vehicle of the
// model line.
func TestWeakSeedKeySniffAttack(t *testing.T) {
	secret := WeakXOR{Constant: 0x5EC0DE00}
	r := newRig(t, secret)

	// The attacker taps the diagnostic bus.
	var sniffedSeed, sniffedKey []byte
	r.bus.Sniff(func(_ sim.Time, f *can.Frame, _ *can.Controller, _ bool) {
		// Single-frame UDS: [PCI len][SID][sub][data...]
		if len(f.Data) >= 3 && f.Data[1] == SvcSecurityAccess+positiveResponseOr && f.Data[2] == 0x01 {
			sniffedSeed = append([]byte(nil), f.Data[3:3+4]...)
		}
		if len(f.Data) >= 3 && f.Data[1] == SvcSecurityAccess && f.Data[2] == 0x02 {
			sniffedKey = append([]byte(nil), f.Data[3:3+4]...)
		}
	})

	// A legitimate workshop tester unlocks once.
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := r.unlock(t, 1, secret); err != nil {
		t.Fatal(err)
	}
	if sniffedSeed == nil || sniffedKey == nil {
		t.Fatal("sniffer missed the exchange")
	}

	// Offline: key = seed XOR const, so const = seed XOR key.
	recovered := WeakXOR{}
	var c [4]byte
	for i := range c {
		c[i] = sniffedSeed[i] ^ sniffedKey[i]
	}
	recovered.Constant = uint32(c[0])<<24 | uint32(c[1])<<16 | uint32(c[2])<<8 | uint32(c[3])
	recovered.Constant -= 1 // remove the level-1 offset

	// The attacker now unlocks a *different* vehicle of the same model.
	victim := newRig(t, secret)
	victim.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := victim.unlock(t, 1, recovered); err != nil {
		t.Fatalf("recovered constant failed to unlock: %v", err)
	}
}

// The SHE-backed algorithm resists the same attack: the sniffed pair
// reveals nothing about the next seed's key.
func TestSHECMACResistsSniffAttack(t *testing.T) {
	var uid she.UID
	eng := she.NewEngine(uid)
	var k16 [16]byte
	copy(k16[:], "diag-unlock-key!")
	if err := eng.ProvisionKey(she.Key3, k16, she.Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	alg := SHECMAC{Engine: eng, Slot: she.Key3}
	r := newRig(t, alg)
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	if err := r.unlock(t, 1, alg); err != nil {
		t.Fatal(err)
	}

	// An attacker who saw that exchange tries a replayed key on a fresh
	// seed: statistically guaranteed to fail.
	r.mustPositive(t, []byte{SvcSessionControl, SessionDefault}) // relock
	r.mustPositive(t, []byte{SvcSessionControl, SessionExtended})
	type replay struct{ key []byte }
	fixed := replay{key: []byte{1, 2, 3, 4}}
	var result error = errors.New("no reply")
	err := r.client.Request([]byte{SvcSecurityAccess, 0x01}, func(resp []byte) {
		_, err := ParseResponse(SvcSecurityAccess, resp)
		if err != nil {
			result = err
			return
		}
		_ = r.client.Request(append([]byte{SvcSecurityAccess, 0x02}, fixed.key...), func(resp []byte) {
			_, result = ParseResponse(SvcSecurityAccess, resp)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if result == nil || !strings.Contains(result.Error(), "invalidKey") {
		t.Fatalf("replayed key against SHE-CMAC: %v", result)
	}
}

func TestClientBusy(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 1})
	if err := r.client.Request([]byte{SvcTesterPresent, 0}, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Request([]byte{SvcTesterPresent, 0}, func([]byte) {}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err=%v", err)
	}
}

func TestParseResponse(t *testing.T) {
	if _, err := ParseResponse(0x22, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ParseResponse(0x22, []byte{0x7F}); err == nil {
		t.Fatal("malformed negative accepted")
	}
	if _, err := ParseResponse(0x22, []byte{0x50, 0x01}); err == nil {
		t.Fatal("mismatched service accepted")
	}
	p, err := ParseResponse(0x22, []byte{0x62, 0xF1, 0x90, 0x41})
	if err != nil || len(p) != 3 {
		t.Fatalf("positive parse: %v %x", err, p)
	}
}

func TestNRCNames(t *testing.T) {
	if NRCName(NRCInvalidKey) != "invalidKey" {
		t.Fatal("name wrong")
	}
	if !strings.Contains(NRCName(0xEE), "0xee") {
		t.Fatalf("unknown NRC name: %s", NRCName(0xEE))
	}
}
