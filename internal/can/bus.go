package can

import (
	"errors"
	"fmt"
	"math"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Bus is a simulated CAN bus. Controllers attach to it; at every bus-idle
// instant the pending frame with the lowest arbitration value wins and is
// transmitted to every other attached controller after the bit-accurate
// frame time. A Gaussian-free, Bernoulli-per-frame bit error model can be
// enabled to drive the error-counter state machine.
//
// The data path is amortized: completion and arbitration callbacks are
// allocated once per bus (not per frame), transmit requests live by value
// in per-controller ring buffers, and the Bernoulli per-frame success
// probability is memoized by frame bit-length, so a saturated bus costs no
// steady-state allocations beyond the payload clone made by Send.
type Bus struct {
	Name string

	kernel      *sim.Kernel
	bitrate     int64 // nominal bits per second
	dataBitrate int64 // FD data-phase bits per second (BRS frames)

	controllers []*Controller
	busy        bool
	busyUntil   sim.Time
	kickPending bool

	// Reusable callbacks, bound once in NewBus so the hot path schedules
	// no new closures.
	kickFn     func() // runs b.kick
	deferredFn func() // clears kickPending, then kicks
	completeFn func() // finishes the in-flight transmission

	// In-flight transmission state, valid while busy. One slot suffices:
	// CAN is a single shared medium, so at most one frame is on the wire.
	txSender *Controller
	txDur    sim.Duration
	txBits   int
	// txScratch holds a by-value snapshot of the completing request while
	// observers and receivers run, so ring-buffer growth during delivery
	// (a handler calling Send) can never invalidate the frame mid-dispatch.
	// Observers must clone the frame if they retain it past the callback.
	txScratch txRequest

	// BitErrorRate is the probability that any single transmitted bit is
	// corrupted. Applied per frame as 1-(1-BER)^bits.
	BitErrorRate float64
	// TargetedError, when non-nil, lets an adversary destroy selected
	// frames by forcing bit errors during their transmission — the
	// primitive behind the Cho & Shin bus-off attack, where a malicious
	// node transmits dominant bits over a victim's recessive ones. Return
	// true to corrupt the frame. The transmitter's TEC rises by 8 per hit,
	// so sustained targeting drives the victim to bus-off.
	TargetedError func(f *Frame, sender *Controller) bool
	errStream     *sim.Stream

	// pOK memo: pokTab[n] = (1-BER)^n for the BER it was built against.
	// Rebuilt lazily if BitErrorRate is reassigned mid-simulation.
	pokBER float64
	pokTab []float64

	// Stats.
	FramesOK      sim.Counter
	FramesErrored sim.Counter
	BitsOnWire    int64
	busyTime      sim.Duration
	startedAt     sim.Time

	sniffers []SnifferFunc

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base busBaseline

	// Observability (nil when off): labels are interned once in
	// Instrument, so the per-frame emit in complete is allocation-free.
	obsTr      *obs.Tracer
	obsSub     obs.Label // "can"
	obsTx      obs.Label // "tx"
	obsTxErr   obs.Label // "tx-error"
	obsBus     obs.Label // the bus name
	obsFrameUS *obs.Histogram

	// Reattach cache: the last registry this bus instrumented into and
	// the histogram it created there. Survives ResetToBaseline (which
	// detaches obsFrameUS) so ReattachMetrics can re-arm the hot path
	// without re-interning keys or re-registering probes.
	obsCacheReg  *obs.Registry
	obsCacheHist *obs.Histogram
}

// SnifferFunc observes every frame that completes on the bus (whether or
// not it was corrupted). Sniffers model diagnostic taps: they see traffic
// but cannot alter it. The *Frame is a snapshot that is only valid for the
// duration of the callback; clone it to retain it.
type SnifferFunc func(at sim.Time, f *Frame, sender *Controller, corrupted bool)

// NewBus creates a bus on the kernel at the given nominal bitrate. The FD
// data-phase bitrate defaults to 4x nominal; override with SetDataBitrate.
func NewBus(k *sim.Kernel, name string, bitrate int64) *Bus {
	if bitrate <= 0 {
		panic("can: bitrate must be positive")
	}
	b := &Bus{
		Name:        name,
		kernel:      k,
		bitrate:     bitrate,
		dataBitrate: 4 * bitrate,
		errStream:   k.Stream("can.bus." + name + ".errors"),
		startedAt:   k.Now(),
	}
	b.kickFn = b.kick
	b.deferredFn = func() {
		b.kickPending = false
		b.kick()
	}
	b.completeFn = b.onWireDone
	return b
}

// SetDataBitrate sets the CAN FD data-phase bitrate used by BRS frames.
func (b *Bus) SetDataBitrate(rate int64) {
	if rate <= 0 {
		panic("can: data bitrate must be positive")
	}
	b.dataBitrate = rate
}

// Bitrate reports the nominal bitrate.
func (b *Bus) Bitrate() int64 { return b.bitrate }

// Attach connects a controller to the bus.
func (b *Bus) Attach(c *Controller) {
	c.bus = b
	b.controllers = append(b.controllers, c)
}

// Sniff registers a passive observer of all completed frames.
func (b *Bus) Sniff(fn SnifferFunc) { b.sniffers = append(b.sniffers, fn) }

// Load reports the fraction of elapsed virtual time the bus was busy.
func (b *Bus) Load() float64 {
	elapsed := b.kernel.Now() - b.startedAt
	if elapsed <= 0 {
		return 0
	}
	return float64(b.busyTime) / float64(elapsed)
}

// frameTime returns the on-wire duration of a frame at the configured
// bitrates.
func (b *Bus) frameTime(f *Frame) (sim.Duration, int, error) {
	arbBits, dataBits, err := BitLength(f)
	if err != nil {
		return 0, 0, err
	}
	ns := float64(arbBits)/float64(b.bitrate)*1e9 +
		float64(dataBits)/float64(b.dataBitrate)*1e9
	return sim.Duration(math.Ceil(ns)), arbBits + dataBits, nil
}

// pOK returns (1-BitErrorRate)^bits from the memo table, extending (or,
// after a BER change, rebuilding) it on demand. Entries are computed with
// the same math.Pow expression the un-memoized model used, so replacing
// the per-frame Pow changes no stream draw.
func (b *Bus) pOK(bits int) float64 {
	if b.pokBER != b.BitErrorRate {
		b.pokBER = b.BitErrorRate
		b.pokTab = b.pokTab[:0]
	}
	for len(b.pokTab) <= bits {
		b.pokTab = append(b.pokTab, math.Pow(1-b.pokBER, float64(len(b.pokTab))))
	}
	return b.pokTab[bits]
}

// scheduleKick defers an arbitration round to the end of the current
// virtual instant, so that every frame enqueued at the same time competes —
// just as all nodes start their SOF together on a real wire.
func (b *Bus) scheduleKick() {
	if b.kickPending || b.busy {
		return
	}
	b.kickPending = true
	b.kernel.After(0, b.deferredFn)
}

// kick starts an arbitration round if the bus is idle. Called whenever a
// controller enqueues a frame and whenever a transmission completes.
func (b *Bus) kick() {
	if b.busy {
		return
	}
	winner := b.arbitrate()
	if winner == nil {
		return
	}
	b.transmit(winner)
}

// arbitrate selects the controller whose head-of-queue frame has the
// lowest arbitration value. Bus-off controllers do not participate.
// Ties (two nodes sending the identical arbitration field) go to the
// earliest-attached controller; on a real bus this would be a bit error,
// but models that care use distinct IDs per node.
func (b *Bus) arbitrate() *Controller {
	var winner *Controller
	var best uint64 = math.MaxUint64
	for _, c := range b.controllers {
		if c.State() == BusOff || c.txLen == 0 {
			continue
		}
		v := c.txFront().frame.ArbitrationValue()
		if v < best {
			best = v
			winner = c
		}
	}
	return winner
}

// transmit puts the winner's head frame on the wire. The completion is the
// bus's one reusable event; per-transmit state rides in bus fields.
func (b *Bus) transmit(c *Controller) {
	dur, bits, err := b.frameTime(&c.txFront().frame)
	if err != nil {
		// Invalid frame slipped past Send validation; drop it.
		c.txPopFront()
		b.kernel.After(0, b.kickFn)
		return
	}
	b.busy = true
	b.busyUntil = b.kernel.Now() + dur
	b.txSender = c
	b.txDur = dur
	b.txBits = bits
	b.kernel.After(dur, b.completeFn)
}

// onWireDone fires when the in-flight frame's last bit leaves the wire.
func (b *Bus) onWireDone() {
	c := b.txSender
	dur, bits := b.txDur, b.txBits
	b.txSender = nil
	b.busy = false
	b.busyTime += dur
	b.BitsOnWire += int64(bits)
	b.complete(c, bits)
	b.kick()
}

// complete finishes a transmission: applies the bit error model, updates
// error counters, delivers or retransmits.
func (b *Bus) complete(c *Controller, bits int) {
	// Snapshot the request: observers and receivers get a pointer into the
	// bus-owned scratch slot, which stays valid even if a callback Sends
	// (growing the ring) or the controller goes bus-off (flushing it).
	tx := &b.txScratch
	*tx = *c.txFront()
	corrupted := false
	if b.BitErrorRate > 0 {
		corrupted = !b.errStream.Bool(b.pOK(bits))
	}
	if !corrupted && b.TargetedError != nil && b.TargetedError(&tx.frame, c) {
		corrupted = true
	}
	now := b.kernel.Now()
	for _, fn := range b.sniffers {
		fn(now, &tx.frame, c, corrupted)
	}
	if b.obsTr != nil {
		name := b.obsTx
		if corrupted {
			name = b.obsTxErr
		}
		b.obsTr.Span(now-b.txDur, b.txDur, b.obsSub, name, b.obsBus, int64(tx.frame.ID), int64(bits))
	}
	b.obsFrameUS.Observe(float64(b.txDur) / 1e3)
	if corrupted {
		b.FramesErrored.Inc()
		tx.done = nil
		// ISO 11898-1 rule 3/1: transmitter TEC += 8; receivers REC += 1.
		c.bumpTEC(8)
		for _, rc := range b.controllers {
			if rc != c {
				rc.bumpREC(1)
			}
		}
		if c.State() == BusOff {
			// Frame is lost; queue is flushed by the bus-off transition.
			return
		}
		// Automatic retransmission: frame stays at the head of the queue.
		return
	}
	b.FramesOK.Inc()
	c.txPopFront()
	c.decayTEC()
	c.FramesSent.Inc()
	if tx.done != nil {
		tx.done(now)
	}
	for _, rc := range b.controllers {
		if rc == c {
			continue
		}
		rc.deliver(now, &tx.frame, c)
	}
	tx.done = nil // do not retain the callback past this completion
	// Every receiver has run; the payload buffer (cloned at Send) can go
	// back to the sender's freelist. Re-entrant Sends during delivery are
	// safe: the freelist only gains this buffer here, after they ran.
	c.recycleData(tx.frame.Data)
	tx.frame.Data = nil
}

// ErrBusOff is returned by Controller.Send while the controller is bus-off.
var ErrBusOff = errors.New("can: controller is bus-off")

// ErrQueueFull is returned by Controller.Send when the TX queue limit is
// reached.
var ErrQueueFull = errors.New("can: transmit queue full")

// ControllerState is the fault-confinement state of ISO 11898-1.
type ControllerState int

const (
	// ErrorActive nodes participate fully and send active error flags.
	ErrorActive ControllerState = iota
	// ErrorPassive nodes may transmit but send passive error flags.
	ErrorPassive
	// BusOff nodes are disconnected until reset.
	BusOff
)

func (s ControllerState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("ControllerState(%d)", int(s))
	}
}

type txRequest struct {
	frame Frame
	done  func(at sim.Time)
}

// ReceiveFunc handles a frame delivered to a controller. The *Frame is a
// snapshot that is only valid for the duration of the callback; clone it
// to retain it.
type ReceiveFunc func(at sim.Time, f *Frame, sender *Controller)

// AcceptanceFilter decides whether a received frame is passed up to the
// handlers. A nil filter accepts everything.
type AcceptanceFilter func(f *Frame) bool

// MaskFilter returns an acceptance filter matching (id & mask) == (match & mask),
// the classic CAN controller filter model.
func MaskFilter(match, mask ID) AcceptanceFilter {
	return func(f *Frame) bool { return f.ID&mask == match&mask }
}

// Controller is a CAN node: a transmit queue plus receive handlers and the
// fault-confinement counters.
type Controller struct {
	Name string

	bus *Bus
	// Transmit queue: a ring buffer of requests held by value, so Send
	// performs no per-request allocation and popping the head retains no
	// backing-array tail the way txQueue = txQueue[1:] did.
	txBuf  []txRequest
	txHead int
	txLen  int
	// MaxQueue bounds the TX queue; 0 means unlimited.
	MaxQueue int

	filter   AcceptanceFilter
	handlers []ReceiveFunc

	// dataFree recycles transmit payload buffers: Send clones the caller's
	// payload into a recycled buffer, and the bus returns it after the
	// frame has been delivered to every receiver (see Bus.complete). In
	// steady state a periodic sender allocates nothing. Scratch only —
	// never holds live payloads, so pooled resets leave it alone.
	dataFree [][]byte

	tec, rec int
	state    ControllerState

	// base is the post-construction snapshot recorded by markBaseline for
	// pooled reuse; see Bus.ResetToBaseline.
	base ctrlBaseline

	// Stats.
	FramesSent     sim.Counter
	FramesReceived sim.Counter
	FramesDropped  sim.Counter
	BusOffEvents   sim.Counter
}

// NewController creates a detached controller; attach it with Bus.Attach.
func NewController(name string) *Controller {
	return &Controller{Name: name}
}

// SetFilter installs the acceptance filter.
func (c *Controller) SetFilter(f AcceptanceFilter) { c.filter = f }

// OnReceive registers a handler invoked for every accepted frame.
func (c *Controller) OnReceive(fn ReceiveFunc) { c.handlers = append(c.handlers, fn) }

// State reports the fault-confinement state.
func (c *Controller) State() ControllerState { return c.state }

// Counters reports (TEC, REC).
func (c *Controller) Counters() (tec, rec int) { return c.tec, c.rec }

// QueueLen reports the number of frames waiting to transmit.
func (c *Controller) QueueLen() int { return c.txLen }

// txFront returns the head transmit request in place. Only valid while
// txLen > 0, and only until the next push/pop.
func (c *Controller) txFront() *txRequest { return &c.txBuf[c.txHead] }

// txPush appends a request, growing the ring when full.
func (c *Controller) txPush(tx txRequest) {
	if c.txLen == len(c.txBuf) {
		grown := make([]txRequest, max(8, 2*len(c.txBuf)))
		for i := 0; i < c.txLen; i++ {
			grown[i] = c.txBuf[(c.txHead+i)%len(c.txBuf)]
		}
		c.txBuf = grown
		c.txHead = 0
	}
	c.txBuf[(c.txHead+c.txLen)%len(c.txBuf)] = tx
	c.txLen++
}

// txPopFront removes the head request, clearing the slot so the ring
// retains neither payload nor callback.
func (c *Controller) txPopFront() {
	c.txBuf[c.txHead] = txRequest{}
	c.txHead = (c.txHead + 1) % len(c.txBuf)
	c.txLen--
}

// cloneData copies a payload into a recycled transmit buffer, falling
// back to a fresh allocation when the freelist is empty or too small.
func (c *Controller) cloneData(d []byte) []byte {
	if d == nil {
		return nil
	}
	if n := len(c.dataFree); n > 0 {
		buf := c.dataFree[n-1]
		c.dataFree[n-1] = nil
		c.dataFree = c.dataFree[:n-1]
		if cap(buf) >= len(d) {
			buf = buf[:len(d)]
			copy(buf, d)
			return buf
		}
	}
	return append([]byte(nil), d...)
}

// recycleData returns a delivered payload buffer to the freelist. Only
// the bus calls this, and only after every receiver callback has run —
// the payload contract is that frames are valid for the duration of the
// delivery callback, never beyond.
func (c *Controller) recycleData(d []byte) {
	if d == nil || len(c.dataFree) >= 16 {
		return
	}
	c.dataFree = append(c.dataFree, d[:0])
}

// txFlush drops every queued request (the bus-off transition).
func (c *Controller) txFlush() {
	for c.txLen > 0 {
		c.txPopFront()
	}
	c.txHead = 0
}

// Send validates and enqueues a frame for transmission. The optional done
// callback fires when the frame has been successfully put on the wire.
func (c *Controller) Send(f Frame, done func(at sim.Time)) error {
	if c.bus == nil {
		return errors.New("can: controller not attached to a bus")
	}
	if c.state == BusOff {
		return ErrBusOff
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if c.MaxQueue > 0 && c.txLen >= c.MaxQueue {
		c.FramesDropped.Inc()
		return ErrQueueFull
	}
	cp := f
	cp.Data = c.cloneData(f.Data)
	c.txPush(txRequest{frame: cp, done: done})
	c.bus.scheduleKick()
	return nil
}

// Reset returns a bus-off controller to error-active with cleared
// counters, modelling the application-commanded recovery sequence.
func (c *Controller) Reset() {
	c.tec, c.rec = 0, 0
	c.state = ErrorActive
	if c.bus != nil {
		c.bus.scheduleKick()
	}
}

func (c *Controller) deliver(at sim.Time, f *Frame, sender *Controller) {
	if c.filter != nil && !c.filter(f) {
		return
	}
	c.FramesReceived.Inc()
	c.decayREC()
	for _, h := range c.handlers {
		h(at, f, sender)
	}
}

func (c *Controller) bumpTEC(n int) {
	c.tec += n
	c.updateState()
}

func (c *Controller) bumpREC(n int) {
	c.rec += n
	if c.rec > 255 {
		c.rec = 255
	}
	c.updateState()
}

func (c *Controller) decayTEC() {
	if c.tec > 0 {
		c.tec--
	}
	c.updateState()
}

func (c *Controller) decayREC() {
	if c.rec > 0 {
		c.rec--
	}
	c.updateState()
}

func (c *Controller) updateState() {
	switch {
	case c.tec > 255:
		if c.state != BusOff {
			c.state = BusOff
			c.BusOffEvents.Inc()
			// Pending frames are lost on bus-off.
			c.FramesDropped.Add(int64(c.txLen))
			c.txFlush()
		}
	case c.tec > 127 || c.rec > 127:
		if c.state == ErrorActive {
			c.state = ErrorPassive
		}
	default:
		if c.state == ErrorPassive {
			c.state = ErrorActive
		}
	}
}
