package someip

import (
	"encoding/binary"

	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// This file is the wire-monitoring side of the package: a zero-copy
// header peek and a passive fabric tap. The service middleware itself
// trusts the transport (that is the point the tests make); the monitor
// is the compensating control — it decodes service/method/eventgroup
// metadata out of frames in flight so the IDS and the observability
// plane can reason at the service level instead of seeing one opaque
// EtherType.

// Header is the fixed SOME/IP header view of one PDU, decoded without
// copying or allocating. Method carries the method ID for RPC and the
// eventgroup for pub/sub and discovery messages.
type Header struct {
	Service    uint16
	Method     uint16
	Client     uint16
	Session    uint16
	Type       MessageType
	ReturnCode byte
	PayloadLen int
}

// PeekHeader decodes the header of a wire-encoded SOME/IP message
// in place. It performs the same validation as the full decoder but
// never touches the payload bytes, so it is allocation-free and safe
// on zero-copy netif payload views. Returns ok=false on a malformed
// or truncated message.
func PeekHeader(b []byte) (Header, bool) {
	if len(b) < 14 {
		return Header{}, false
	}
	n := int(binary.BigEndian.Uint32(b[4:]))
	if n < 12 || len(b) < n+2 {
		return Header{}, false
	}
	return Header{
		Service:    binary.BigEndian.Uint16(b[0:]),
		Method:     binary.BigEndian.Uint16(b[2:]),
		Client:     binary.BigEndian.Uint16(b[8:]),
		Session:    uint16(b[n])<<8 | uint16(b[n+1]),
		Type:       MessageType(b[10]),
		ReturnCode: b[11],
		PayloadLen: n - 12,
	}, true
}

// MonitorFunc consumes one decoded SOME/IP message seen on the wire.
// The *netif.Frame follows the fabric's zero-copy contract: it is only
// valid for the duration of the call.
type MonitorFunc func(at sim.Time, f *netif.Frame, h Header)

// Monitor is a passive SOME/IP wire tap on a fabric medium (normally
// the Ethernet switch's netif view, whose taps see every frame entering
// the fabric — including the unicast subscribe/ack/notify exchanges).
// It classifies each decodable message, counts it, and forwards the
// decoded header to registered callbacks.
type Monitor struct {
	Requests      sim.Counter
	Responses     sim.Counter
	Notifications sim.Counter
	Subscribes    sim.Counter
	Discovery     sim.Counter // offers, finds, subscribe acks/naks
	Malformed     sim.Counter

	fns []MonitorFunc

	obsTr                             *obs.Tracer
	obsSub, obsName                   obs.Label
	obsReq, obsResp, obsNotify, obsSD obs.Label
}

// NewMonitor taps the medium and returns the monitor. Frames whose ID
// is not EtherTypeSOMEIP pass through uncounted; frames that carry the
// EtherType but fail header validation count as Malformed.
func NewMonitor(m netif.Medium) *Monitor {
	mon := &Monitor{}
	m.Tap(func(at sim.Time, f *netif.Frame, corrupted bool) {
		if corrupted || f.ID != EtherTypeSOMEIP {
			return
		}
		h, ok := PeekHeader(f.Payload)
		if !ok {
			mon.Malformed.Inc()
			return
		}
		switch h.Type {
		case TypeRequest:
			mon.Requests.Inc()
		case TypeResponse, TypeError:
			mon.Responses.Inc()
		case TypeNotification:
			mon.Notifications.Inc()
		case TypeSubscribe:
			mon.Subscribes.Inc()
		default:
			mon.Discovery.Inc()
		}
		if mon.obsTr != nil {
			mon.obsTr.Instant(at, mon.obsSub, mon.eventLabel(h.Type), mon.obsName,
				int64(uint32(h.Service)<<16|uint32(h.Method)), int64(h.PayloadLen))
		}
		for _, fn := range mon.fns {
			fn(at, f, h)
		}
	})
	return mon
}

// OnMessage registers a decoded-message callback.
func (mon *Monitor) OnMessage(fn MonitorFunc) { mon.fns = append(mon.fns, fn) }

func (mon *Monitor) eventLabel(t MessageType) obs.Label {
	switch t {
	case TypeRequest:
		return mon.obsReq
	case TypeResponse, TypeError:
		return mon.obsResp
	case TypeNotification:
		return mon.obsNotify
	default:
		return mon.obsSD
	}
}

// Instrument attaches the monitor to the observability layer. Labels
// are interned once here so per-message emission stays allocation-free.
//
// Trace events (subsystem "someip"): one instant per decoded message,
// named by class (request/response/notify/sd), with Arg1 packing
// (service<<16|method-or-eventgroup) and Arg2 the payload length.
//
// Metrics (keyed "someip/<name>/..."): per-class message counters plus
// malformed frames, probing the monitor's counters.
func (mon *Monitor) Instrument(name string, tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		mon.obsTr = tr
		mon.obsSub = tr.Label("someip")
		mon.obsName = tr.Label(name)
		mon.obsReq = tr.Label("request")
		mon.obsResp = tr.Label("response")
		mon.obsNotify = tr.Label("notify")
		mon.obsSD = tr.Label("sd")
	}
	if reg != nil {
		prefix := "someip/" + name + "/"
		reg.Probe(prefix+"requests", func() float64 { return float64(mon.Requests.Value) })
		reg.Probe(prefix+"responses", func() float64 { return float64(mon.Responses.Value) })
		reg.Probe(prefix+"notifications", func() float64 { return float64(mon.Notifications.Value) })
		reg.Probe(prefix+"subscribes", func() float64 { return float64(mon.Subscribes.Value) })
		reg.Probe(prefix+"discovery", func() float64 { return float64(mon.Discovery.Value) })
		reg.Probe(prefix+"malformed", func() float64 { return float64(mon.Malformed.Value) })
	}
}
