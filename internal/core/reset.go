// Pooled vehicle lifecycle. Constructing a Vehicle is expensive (media,
// zone controllers, gateway wiring, SHE provisioning, audit chain); a
// fleet-scale run amortizes that cost by resetting a vehicle back to its
// post-NewVehicle state and re-seeding it, instead of rebuilding it per
// simulated vehicle. This is the kernel's event-node free-list discipline
// lifted one level up: construction wiring survives, run state does not.
package core

// vehicleBaseline captures the Config-derived live state sealed at the
// end of NewVehicle. Subsystem-internal baselines live on the subsystems
// themselves (see their MarkBaseline methods).
type vehicleBaseline struct {
	sealed  bool
	macBits int
	arch    archBaseline
}

// archBaseline snapshots the architecture inventory so scenario-time
// Install/Deprecate calls can be undone without violating the version
// monotonicity Install enforces.
type archBaseline struct {
	layers [numLayers]map[string]Implementation
	logLen int
}

// markBaselines seals every subsystem's post-construction state as the
// Reset target. Called exactly once, at the end of NewVehicle.
func (v *Vehicle) markBaselines(cfg Config) {
	for _, name := range v.domainOrder {
		switch {
		case v.Buses[name] != nil:
			v.Buses[name].MarkBaseline()
		case v.Switches[name] != nil:
			v.Switches[name].MarkBaseline()
		case v.LINClusters[name] != nil:
			v.LINClusters[name].MarkBaseline()
		case v.FlexRayClusters[name] != nil:
			v.FlexRayClusters[name].MarkBaseline()
		}
	}
	if v.BackboneSwitch != nil {
		v.BackboneSwitch.MarkBaseline()
	}
	if v.Zonal != nil {
		v.Zonal.MarkBaseline()
	} else {
		v.Gateway.MarkBaseline()
	}
	v.IDS.MarkBaseline()
	v.SHE.MarkBaseline()
	v.Audit.MarkBaseline()
	if v.Policy != nil {
		v.Policy.MarkBaseline()
	}
	v.base = vehicleBaseline{
		sealed:  true,
		macBits: cfg.MACBits,
		arch:    snapshotArch(v.Arch),
	}
}

func snapshotArch(a *Architecture) archBaseline {
	var b archBaseline
	for l := range a.layers {
		b.layers[l] = make(map[string]Implementation, len(a.layers[l]))
		for name, impl := range a.layers[l] {
			b.layers[l][name] = *impl
		}
	}
	b.logLen = len(a.UpgradeLog)
	return b
}

// restoreArch rewinds the inventory to the baseline snapshot. Direct map
// surgery (not Install) because Install's version monotonicity correctly
// refuses to re-install the same versions.
func restoreArch(a *Architecture, b archBaseline) {
	// Every inventory mutation (Install, Deprecate) appends to UpgradeLog,
	// so an unchanged log length means an untouched inventory — the pooled
	// steady state for scenarios that never exercise the upgrade paths.
	if len(a.UpgradeLog) == b.logLen {
		return
	}
	for l := range a.layers {
		for name := range a.layers[l] {
			delete(a.layers[l], name)
		}
		for name, impl := range b.layers[l] {
			cp := impl
			a.layers[l][name] = &cp
		}
	}
	for i := b.logLen; i < len(a.UpgradeLog); i++ {
		a.UpgradeLog[i] = ""
	}
	a.UpgradeLog = a.UpgradeLog[:b.logLen]
}

// Reset rewinds the vehicle to its post-NewVehicle state under a new
// seed, without reallocating any construction wiring. After Reset the
// vehicle behaves byte-identically (traces, metrics, audit verdicts) to
// a fresh NewVehicle built with the same Config but Seed=seed — the
// property the reset-equivalence harness in pool_equivalence_test.go
// enforces. Observability instrumentation (Instrument) is scenario
// state and detaches; re-instrument after Reset if needed.
func (v *Vehicle) Reset(seed uint64) {
	if !v.base.sealed {
		panic("core: Reset before NewVehicle sealed the baseline")
	}
	// Kernel first: drops every scheduled event (traffic matrices, FlexRay
	// cycles, pending transmissions) and reseeds all named streams in
	// place, so subsystem resets below see an empty timeline at t=now.
	// Parallel builds reset the whole group (every member kernel plus
	// undelivered inter-kernel messages) and drop staged audit events.
	if v.Group != nil {
		v.Group.Reset(seed)
		for m := range v.auditStage {
			v.auditStage[m] = v.auditStage[m][:0]
			v.stageIdx[m] = 0
		}
	} else {
		v.Kernel.Reset(seed)
	}

	// Media, in construction order.
	for _, name := range v.domainOrder {
		switch {
		case v.Buses[name] != nil:
			v.Buses[name].ResetToBaseline()
		case v.Switches[name] != nil:
			v.Switches[name].ResetToBaseline()
		case v.LINClusters[name] != nil:
			v.LINClusters[name].ResetToBaseline()
		case v.FlexRayClusters[name] != nil:
			v.FlexRayClusters[name].ResetToBaseline()
		}
	}
	if v.BackboneSwitch != nil {
		v.BackboneSwitch.ResetToBaseline()
	}

	// Gateway layer (zonal fabric resets its per-zone gateways itself).
	if v.Zonal != nil {
		v.Zonal.ResetToBaseline()
	} else {
		v.Gateway.ResetToBaseline()
	}

	// IDS gets a factory-fresh build of the configured suite, mirroring
	// NewVehicle — training state lives inside detectors, so fresh
	// detectors mean an untrained engine, same as a fresh build, and the
	// suite guarantees the same registry routing order.
	v.IDS.ResetToBaseline(v.idsSuite.Build()...)

	v.SHE.ResetToBaseline()
	v.CPU.ResetState()
	v.Keyless.ResetState()
	v.Fusion.ResetState()
	v.Audit.ResetToBaseline()
	if v.Policy != nil {
		v.Policy.ResetToBaseline()
	}
	restoreArch(v.Arch, v.base.arch)

	v.MACBits = v.base.macBits
	v.AuthFailures.Value = 0
	v.trafficStops = nil
	v.OTA = nil
}

// VehiclePool recycles vehicles of one Config across runs. The VIN is
// fixed per pool; per-vehicle identity comes from the seed passed to
// Acquire. Not safe for concurrent use — fleet drivers keep one pool per
// worker shard.
type VehiclePool struct {
	cfg  Config
	free []*Vehicle

	// Hits counts acquisitions served by reset instead of construction.
	Hits int
	// Misses counts acquisitions that had to build a new vehicle.
	Misses int
}

// NewVehiclePool creates an empty pool building vehicles from cfg.
func NewVehiclePool(cfg Config) *VehiclePool {
	return &VehiclePool{cfg: cfg}
}

// Acquire returns a vehicle reset (or freshly built) under the seed.
func (p *VehiclePool) Acquire(seed uint64) (*Vehicle, error) {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		v.Reset(seed)
		p.Hits++
		return v, nil
	}
	cfg := p.cfg
	cfg.Seed = seed
	p.Misses++
	return NewVehicle(cfg)
}

// Release returns a vehicle to the free list for reuse.
func (p *VehiclePool) Release(v *Vehicle) {
	if v != nil {
		p.free = append(p.free, v)
	}
}
