package can

import (
	"testing"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

func BenchmarkMarshal(b *testing.B) {
	f := Frame{ID: 0x2A5, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(&f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	f := Frame{ID: 0x2A5, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	wire, err := Marshal(&f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRC15(b *testing.B) {
	bits := make([]bool, 100)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	for i := 0; i < b.N; i++ {
		_ = CRC15(bits)
	}
}

// BenchmarkBusSaturated measures the per-frame cost of the bus data path
// under back-to-back load: a sender whose completion callback immediately
// refills the queue keeps the wire busy at 100%, with the Bernoulli bit
// error model enabled so the error path is exercised too. One iteration is
// 100ms of virtual bus time (~700 8-byte frames at 500 kbit/s).
// Allocations are reported: after warm-up the kernel and bus must not
// allocate per frame beyond the payload clone made by Send.
func BenchmarkBusSaturated(b *testing.B) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "bench", 500_000)
	bus.BitErrorRate = 1e-6
	tx := NewController("tx")
	rx := NewController("rx")
	bus.Attach(tx)
	bus.Attach(rx)
	f := Frame{ID: 0x100, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	var refill func(at sim.Time)
	refill = func(at sim.Time) { _ = tx.Send(f, refill) }
	refill(0)
	_ = k.RunUntil(100 * sim.Millisecond) // warm up queues and free lists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.RunUntil(k.Now() + 100*sim.Millisecond)
	}
	b.StopTimer()
	if bus.FramesOK.Value == 0 {
		b.Fatal("no frames completed")
	}
}

// BenchmarkBusSaturatedObs is BenchmarkBusSaturated with full
// observability enabled: kernel dispatch tracing, per-frame bus spans and
// the frame-time histogram. Comparing the pair measures the enabled-path
// overhead (the acceptance bar is < 10%); the disabled path is the plain
// BenchmarkBusSaturated, which must show identical allocs with obs off
// since the hook is a single nil check.
func BenchmarkBusSaturatedObs(b *testing.B) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "bench", 500_000)
	bus.BitErrorRate = 1e-6
	tr := obs.NewTracer(1 << 12)
	reg := obs.NewRegistry()
	k.SetTraceSink(tr)
	bus.Instrument(tr, reg)
	tx := NewController("tx")
	rx := NewController("rx")
	bus.Attach(tx)
	bus.Attach(rx)
	f := Frame{ID: 0x100, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	var refill func(at sim.Time)
	refill = func(at sim.Time) { _ = tx.Send(f, refill) }
	refill(0)
	_ = k.RunUntil(100 * sim.Millisecond) // warm up queues, free lists and the ring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.RunUntil(k.Now() + 100*sim.Millisecond)
	}
	b.StopTimer()
	if bus.FramesOK.Value == 0 {
		b.Fatal("no frames completed")
	}
	if tr.Total() == 0 {
		b.Fatal("tracer saw no events")
	}
}

// BenchmarkBusSimulation measures simulated-frame throughput of the
// event-driven bus model: one virtual second of a loaded 500kbit/s bus
// per iteration (~3700 frames).
func BenchmarkBusSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(uint64(i))
		bus := NewBus(k, "bench", 500_000)
		tx := NewController("tx")
		rx := NewController("rx")
		bus.Attach(tx)
		bus.Attach(rx)
		stop := PeriodicSender(k, tx, Frame{ID: 0x100, Data: make([]byte, 8)}, 270*sim.Microsecond, 0)
		_ = k.RunUntil(sim.Second)
		stop()
		if bus.FramesOK.Value < 3000 {
			b.Fatalf("frames=%d", bus.FramesOK.Value)
		}
	}
}
