// Command otactl drives an OTA campaign against a simulated fleet and
// reports the outcome per vehicle, including what a stolen-key attacker
// achieves under each key-provisioning policy.
//
// Usage:
//
//	otactl campaign [-fleet N] [-models M]                      legitimate update across the fleet
//	otactl attack [-fleet N] [-models M] [-policy shared|per-model|per-device]
//	                                                            extract one key, try the whole fleet
package main

import (
	"flag"
	"fmt"
	"os"

	"autosec/internal/fleet"
	"autosec/internal/ota"
	"autosec/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "campaign":
		cmdCampaign(os.Args[2:])
	case "attack":
		cmdAttack(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  otactl campaign [-fleet N] [-models M]                        run a legitimate signed update
  otactl attack [-fleet N] [-models M] [-policy P]              assess stolen-key fleet compromise
                 P in {shared, per-model, per-device}
`)
	os.Exit(2)
}

func cmdCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	n := fs.Int("fleet", 20, "fleet size")
	models := fs.Int("models", 4, "model lines")
	_ = fs.Parse(args)

	director, err := ota.NewRepository("director")
	if err != nil {
		fatal(err)
	}
	image, err := ota.NewRepository("image")
	if err != nil {
		fatal(err)
	}

	payload := []byte("brake firmware v2: patched CVE-2026-0042")
	target := ota.MakeTarget("brake-fw", 2, "brake-mcu", payload)
	imgMeta := image.Sign("", []ota.Target{target}, sim.Hour)

	installed, rejected := 0, 0
	for i := 0; i < *n; i++ {
		vin := fmt.Sprintf("VIN-%06d", i+1)
		client := ota.NewClient(vin, director.PublicKey(), image.PublicKey())
		client.AddECU("brake-mcu", 1)
		bundle := &ota.Bundle{
			Director: director.Sign(vin, []ota.Target{target}, sim.Hour),
			Image:    imgMeta,
			Payloads: map[string][]byte{"brake-fw": payload},
		}
		if err := client.Apply(bundle, sim.Minute); err != nil {
			fmt.Printf("%s: REJECTED: %v\n", vin, err)
			rejected++
			continue
		}
		ecu, _ := client.ECU("brake-mcu")
		fmt.Printf("%s: installed %s v%d\n", vin, ecu.InstalledName, ecu.InstalledVersion)
		installed++
	}
	fmt.Printf("-- campaign over %d vehicles (%d models): %d installed, %d rejected\n",
		*n, *models, installed, rejected)
}

func cmdAttack(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	n := fs.Int("fleet", 1000, "fleet size")
	models := fs.Int("models", 10, "model lines")
	polName := fs.String("policy", "shared", "key provisioning: shared|per-model|per-device")
	_ = fs.Parse(args)

	var pol fleet.Policy
	switch *polName {
	case "shared":
		pol = fleet.SharedKey
	case "per-model":
		pol = fleet.PerModel
	case "per-device":
		pol = fleet.PerDevice
	default:
		usage()
	}

	var master [16]byte
	copy(master[:], "otactl-prod-master")
	f := fleet.New(*n, *models, pol, master)
	fmt.Printf("provisioned fleet of %d vehicles across %d models under %s keys\n", *n, *models, pol)
	fmt.Printf("attacker physically extracts the master key of %s (side-channel, see E2)\n", f.Vehicles[0].VIN)
	res := f.AssessCompromise(0)
	fmt.Printf("malicious SHE key loads accepted by %d/%d vehicles (%.1f%% of the fleet)\n",
		res.Compromised, res.FleetSize, 100*res.Fraction())
	switch pol {
	case fleet.SharedKey:
		fmt.Println("=> the paper's warning realized: one ECU compromise owns the whole class")
	case fleet.PerModel:
		fmt.Println("=> blast radius contained to the victim's model line")
	case fleet.PerDevice:
		fmt.Println("=> blast radius contained to the attacked vehicle only")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "otactl: %v\n", err)
	os.Exit(1)
}
