package isotp

import (
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// BenchmarkTransfer4095 measures a full maximum-length ISO-TP transfer
// over the simulated bus, including every flow-control round-trip.
func BenchmarkTransfer4095(b *testing.B) {
	payload := make([]byte, MaxMessage)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(uint64(i))
		bus := can.NewBus(k, "diag", 500_000)
		tc := can.NewController("t")
		ec := can.NewController("e")
		bus.Attach(tc)
		bus.Attach(ec)
		tester := New(k, tc, Config{TxID: 0x7E0, RxID: 0x7E8})
		ecuEP := New(k, ec, Config{TxID: 0x7E8, RxID: 0x7E0, BlockSize: 8})
		got := 0
		ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = len(p) })
		if err := tester.Send(payload, nil); err != nil {
			b.Fatal(err)
		}
		_ = k.Run()
		if got != MaxMessage {
			b.Fatalf("got %d bytes", got)
		}
	}
	b.SetBytes(MaxMessage)
}
