package ethernet

import "autosec/internal/sim"

// DefaultLinkBps is the port speed every switch port comes up with
// (100 Mbit/s automotive Ethernet).
const DefaultLinkBps int64 = 100_000_000

// WireDuration reports the serialization delay of an Ethernet frame
// carrying payloadLen bytes at linkBps — minimum-frame padding, VLAN
// tag, FCS, preamble and inter-frame gap included, matching
// Frame.WireBytes and the per-port timing the switch model uses (same
// float arithmetic, so derived timestamps agree bit for bit).
func WireDuration(payloadLen int, linkBps int64) sim.Duration {
	n := payloadLen
	if n < 46 {
		n = 46
	}
	bytes := 14 + 4 + n + 4 + 8 + 12
	return sim.Duration(float64(bytes*8) / float64(linkBps) * 1e9)
}

// TunnelLookahead reports the minimum residence time of any frame
// crossing a store-and-forward switch: ingress serialization of the
// smallest legal frame, the switch's fixed processing latency, and
// egress serialization. Nothing — tunnelled CAN/LIN/FlexRay frames or
// native Ethernet — crosses a backbone hop faster, which makes this the
// conservative-PDES lookahead for simulations partitioned at the
// backbone (sim.KernelGroup): a zone may dispatch lookahead beyond the
// global horizon before any cross-zone frame can possibly arrive.
//
// At the defaults (100 Mbit/s links, 2us switch latency) the minimum
// frame is 88 wire bytes (46B padded payload + 42B of header, VLAN tag,
// FCS, preamble and IFG), so the lookahead is 2x7040ns + 2000ns =
// 16080ns.
func TunnelLookahead(switchLatency sim.Duration, linkBps int64) sim.Duration {
	return 2*WireDuration(0, linkBps) + switchLatency
}
