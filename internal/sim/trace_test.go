package sim

import "testing"

type recordingSink struct {
	at      []Time
	pending []int
}

func (r *recordingSink) KernelDispatch(at Time, pending int) {
	r.at = append(r.at, at)
	r.pending = append(r.pending, pending)
}

func TestKernelTraceSinkSeesEveryDispatch(t *testing.T) {
	k := NewKernel(1)
	sink := &recordingSink{}
	k.SetTraceSink(sink)

	var order []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	cancelled := k.At(15, func() { t.Error("cancelled event ran") })
	k.Cancel(cancelled)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	if len(sink.at) != 3 {
		t.Fatalf("sink saw %d dispatches, want 3 (cancelled event must not appear)", len(sink.at))
	}
	for i, want := range []Time{10, 20, 30} {
		if sink.at[i] != want {
			t.Fatalf("dispatch %d at %v, want %v", i, sink.at[i], want)
		}
	}
	// Pending counts down as the queue drains: 2, 1, 0.
	for i, want := range []int{2, 1, 0} {
		if sink.pending[i] != want {
			t.Fatalf("dispatch %d pending=%d, want %d", i, sink.pending[i], want)
		}
	}
}

func TestDefaultTraceSinkAttachesToNewKernels(t *testing.T) {
	sink := &recordingSink{}
	SetDefaultTraceSink(sink)
	defer SetDefaultTraceSink(nil)

	k := NewKernel(7)
	k.At(5, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.at) != 1 || sink.at[0] != 5 {
		t.Fatalf("default sink saw %v, want one dispatch at 5", sink.at)
	}

	SetDefaultTraceSink(nil)
	k2 := NewKernel(7)
	k2.At(5, func() {})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.at) != 1 {
		t.Fatal("kernel created after SetDefaultTraceSink(nil) must not trace")
	}
}
