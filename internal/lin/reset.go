package lin

// Pooled-vehicle lifecycle support. MarkBaseline snapshots the cluster's
// post-construction wiring — slaves with their publishers/subscriptions,
// intruders, schedule, observers, the error model — and ResetToBaseline
// rewinds to it so a pooled cluster behaves exactly like a fresh one:
// scenario slaves, intrusions and schedule entries are dropped, the
// master stops, counters zero. The error stream is kernel-owned and is
// reseeded by Kernel.Reset.

// slaveBaseline is the sealed post-construction state of one Slave.
type slaveBaseline struct {
	pubs map[FrameID]PublishFunc
	subs map[FrameID]int // per-ID subscription counts
}

// linBaseline is the sealed post-construction state of a Cluster.
type linBaseline struct {
	sealed    bool
	slaves    []slaveBaseline
	intruders map[FrameID]PublishFunc
	schedule  []ScheduleEntry
	observers int
	corrupt   float64
}

// MarkBaseline records the cluster's current wiring as the reset target.
func (c *Cluster) MarkBaseline() {
	b := linBaseline{
		sealed:    true,
		slaves:    make([]slaveBaseline, len(c.slaves)),
		intruders: make(map[FrameID]PublishFunc, len(c.intruders)),
		schedule:  c.schedule,
		observers: len(c.observers),
		corrupt:   c.CorruptResponse,
	}
	for id, fn := range c.intruders {
		b.intruders[id] = fn
	}
	for i, s := range c.slaves {
		sb := slaveBaseline{
			pubs: make(map[FrameID]PublishFunc, len(s.publishers)),
			subs: make(map[FrameID]int, len(s.subs)),
		}
		for id, fn := range s.publishers {
			sb.pubs[id] = fn
		}
		for id, fns := range s.subs {
			sb.subs[id] = len(fns)
		}
		b.slaves[i] = sb
	}
	c.base = b
}

// ResetToBaseline rewinds the cluster to its MarkBaseline snapshot. The
// kernel must have been Reset first (pending schedule slots are gone
// with the queue).
func (c *Cluster) ResetToBaseline() {
	if !c.base.sealed {
		panic("lin: ResetToBaseline before MarkBaseline")
	}
	for i := len(c.base.slaves); i < len(c.slaves); i++ {
		c.slaves[i] = nil
	}
	c.slaves = c.slaves[:len(c.base.slaves)]
	for i, s := range c.slaves {
		sb := &c.base.slaves[i]
		for id := range s.publishers {
			if _, keep := sb.pubs[id]; !keep {
				delete(s.publishers, id)
			}
		}
		for id, fn := range sb.pubs {
			s.publishers[id] = fn
		}
		for id, fns := range s.subs {
			keep, ok := sb.subs[id]
			if !ok {
				delete(s.subs, id)
				continue
			}
			for j := keep; j < len(fns); j++ {
				fns[j] = nil
			}
			s.subs[id] = fns[:keep]
		}
	}
	for id := range c.intruders {
		delete(c.intruders, id)
	}
	for id, fn := range c.base.intruders {
		c.intruders[id] = fn
	}
	c.schedule = c.base.schedule
	c.running = false
	c.stopped = false
	c.ResponseCollisions.Value = 0
	c.FramesOK.Value = 0
	c.NoResponse.Value = 0
	c.ChecksumErrors.Value = 0
	c.CorruptResponse = c.base.corrupt
	for i := c.base.observers; i < len(c.observers); i++ {
		c.observers[i] = nil
	}
	c.observers = c.observers[:c.base.observers]
}
