package ids

import (
	"fmt"
	"sort"
	"strings"

	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Engine runs a set of detectors over live traffic and aggregates alerts.
// Detectors can be added and removed at runtime — the in-field upgrade
// path the extensibility experiments exercise. Routing is medium-keyed:
// detectors live in a Registry, and each record reaches the global
// (medium-agnostic) detectors plus the ones registered for the record's
// netif.Kind, in a deterministic merge order (see Registry).
type Engine struct {
	reg    Registry
	Alerts []Alert

	onAlert []func(Alert)

	observed int64 // records fed to Observe

	// Observability (nil when off). Detector-name labels intern on first
	// alert; lastAlert feeds the alert-gap histogram.
	obsTr     *obs.Tracer
	obsSub    obs.Label // "ids"
	obsGapUS  *obs.Histogram
	lastAlert sim.Time
	hasAlert  bool

	// Reattach cache (survives ResetToBaseline); see ReattachMetrics.
	obsCacheReg  *obs.Registry
	obsCacheHist *obs.Histogram

	// Pooled-reuse baseline; see MarkBaseline/ResetToBaseline.
	baseSealed  bool
	baseOnAlert int
}

// MarkBaseline seals the engine's construction-time alert wiring so
// ResetToBaseline can drop scenario subscribers (auto-quarantine hooks
// and the like) while keeping the ones registered during construction.
func (e *Engine) MarkBaseline() {
	e.baseSealed = true
	e.baseOnAlert = len(e.onAlert)
}

// ResetToBaseline rewinds the engine for pooled reuse: the detector set
// is replaced with the fresh detectors the caller supplies (detectors
// are stateful, so the constructor re-creates the construction-time
// set), alerts and counters clear, scenario alert subscribers drop, and
// observability detaches. Taps registered via Attach live on the media
// and survive by construction.
func (e *Engine) ResetToBaseline(ds ...Detector) {
	if !e.baseSealed {
		panic("ids: ResetToBaseline before MarkBaseline")
	}
	e.reg.Clear()
	for _, d := range ds {
		e.reg.Register(d)
	}
	e.Alerts = e.Alerts[:0]
	for i := e.baseOnAlert; i < len(e.onAlert); i++ {
		e.onAlert[i] = nil
	}
	e.onAlert = e.onAlert[:e.baseOnAlert]
	e.observed = 0
	e.obsTr = nil
	e.obsSub = 0
	e.obsGapUS = nil
	e.lastAlert = 0
	e.hasAlert = false
}

// NewEngine creates an engine with the given initial detectors.
// MediumDetectors route to their medium's registry bucket, everything
// else to the global set (see Registry.Register).
func NewEngine(ds ...Detector) *Engine {
	e := &Engine{}
	for _, d := range ds {
		e.reg.Register(d)
	}
	return e
}

// NewEngineFromSuite builds an engine from a detector suite.
func NewEngineFromSuite(s Suite) *Engine { return NewEngine(s.Build()...) }

// Add installs a detector at runtime, routing MediumDetectors to their
// medium's bucket — the in-field upgrade path: a policy push of a
// FlexRay model lands in the FlexRay bucket without the pusher knowing
// the registry layout.
func (e *Engine) Add(d Detector) { e.reg.Register(d) }

// AddFor installs a detector scoped to one medium regardless of its
// type.
func (e *Engine) AddFor(k netif.Kind, d Detector) { e.reg.RegisterFor(k, d) }

// Remove uninstalls a detector by name; it reports whether one was found.
func (e *Engine) Remove(name string) bool { return e.reg.Remove(name) }

// Detectors lists the installed detector names in routing order.
func (e *Engine) Detectors() []string { return e.reg.Names() }

// Train trains every installed detector on the clean reference trace.
func (e *Engine) Train(trace *netif.Trace) { e.reg.Train(trace) }

// OnAlert registers an alert subscriber (e.g. the gateway's quarantine
// trigger).
func (e *Engine) OnAlert(fn func(Alert)) { e.onAlert = append(e.onAlert, fn) }

// Observe routes one record through the registry: the global detectors
// first, then the record's medium bucket, each in install order — the
// deterministic alert merge order the golden tables pin. The hot path
// allocates nothing when no detector alerts.
func (e *Engine) Observe(rec netif.Record) []Alert {
	e.observed++
	var out []Alert
	for _, d := range e.reg.global {
		out = append(out, d.Observe(rec)...)
	}
	if int(rec.Frame.Medium) < len(e.reg.byKind) {
		for _, d := range e.reg.byKind[rec.Frame.Medium] {
			out = append(out, d.Observe(rec)...)
		}
	}
	e.Alerts = append(e.Alerts, out...)
	for _, a := range out {
		if e.obsTr != nil {
			e.obsTr.Instant(a.At, e.obsSub, e.obsTr.Label(a.Detector), e.obsTr.Label(a.Reason), int64(a.ID), 0)
		}
		if e.obsGapUS != nil {
			if e.hasAlert {
				e.obsGapUS.Observe(float64(a.At-e.lastAlert) / 1e3)
			}
			e.hasAlert = true
			e.lastAlert = a.At
		}
		for _, fn := range e.onAlert {
			fn(a)
		}
	}
	return out
}

// Observed reports how many records the engine has been fed.
func (e *Engine) Observed() int64 { return e.observed }

// Instrument attaches the engine to the observability layer (either
// argument may be nil).
//
// Trace events (subsystem "ids"): one instant per alert, named with the
// detector, with Str = the alert reason and Arg1 = the offending frame
// ID.
//
// Metrics: ids/alerts_total and ids/observed probe the engine's state;
// ids/alert_gap_us is a histogram of the time between consecutive alerts
// in microseconds (a burst-vs-trickle signature).
func (e *Engine) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		e.obsTr = tr
		e.obsSub = tr.Label("ids")
	}
	if reg != nil {
		reg.Probe("ids/alerts_total", func() float64 { return float64(len(e.Alerts)) })
		reg.Probe("ids/observed", func() float64 { return float64(e.observed) })
		e.obsGapUS = reg.Histogram("ids/alert_gap_us", nil)
		e.obsCacheReg, e.obsCacheHist = reg, e.obsGapUS
	}
}

// ReattachMetrics re-arms the alert-gap histogram after a
// ResetToBaseline detached it, provided reg is the registry this engine
// last Instrument-ed into (whose probe entries must still be present —
// a rewound registry keeps them). Returns false when the full
// Instrument path is required.
func (e *Engine) ReattachMetrics(reg *obs.Registry) bool {
	if reg == nil || e.obsCacheReg != reg {
		return false
	}
	e.obsGapUS = e.obsCacheHist
	return true
}

// Attach taps the engine into live traffic on a medium. Records are
// cloned off the tap's frame view, so detectors may retain payloads.
func (e *Engine) Attach(m netif.Medium) {
	m.Tap(func(at sim.Time, f *netif.Frame, corrupted bool) {
		e.Observe(netif.Record{At: at, Frame: f.Clone(), Corrupted: corrupted})
	})
}

// Metrics is a detection confusion summary for one evaluation run.
type Metrics struct {
	TruePositives  int // attack windows with ≥1 alert
	FalseNegatives int // attack windows without alerts
	FalsePositives int // alerts outside any attack window
	CleanWindows   int // evaluated clean windows
}

// DetectionRate is TP / (TP + FN).
func (m Metrics) DetectionRate() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// FalsePositiveRate is FP alerts per clean window.
func (m Metrics) FalsePositiveRate() float64 {
	if m.CleanWindows == 0 {
		return 0
	}
	return float64(m.FalsePositives) / float64(m.CleanWindows)
}

func (m Metrics) String() string {
	return fmt.Sprintf("TPR=%.3f (TP=%d FN=%d) FP/window=%.4f (FP=%d over %d windows)",
		m.DetectionRate(), m.TruePositives, m.FalseNegatives,
		m.FalsePositiveRate(), m.FalsePositives, m.CleanWindows)
}

// Window is a labelled time span for evaluation.
type Window struct {
	Lo, Hi sim.Time
	Attack bool
}

// Evaluate replays a trace through freshly trained detectors and scores
// alerts against labelled windows. Alerts raised within (or up to grace
// after) an attack window count as true positives for that window.
func Evaluate(detectors []Detector, train, live *netif.Trace, windows []Window, grace sim.Duration) Metrics {
	eng := NewEngine(detectors...)
	eng.Train(train)
	for i := range live.Records {
		eng.Observe(live.Records[i])
	}
	sort.Slice(eng.Alerts, func(i, j int) bool { return eng.Alerts[i].At < eng.Alerts[j].At })

	var m Metrics
	matched := make([]bool, len(eng.Alerts))
	for _, w := range windows {
		if !w.Attack {
			m.CleanWindows++
			continue
		}
		hit := false
		for i, a := range eng.Alerts {
			if a.At >= w.Lo && a.At <= w.Hi+grace {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			m.TruePositives++
		} else {
			m.FalseNegatives++
		}
	}
	for i, a := range eng.Alerts {
		if !matched[i] {
			_ = a
			m.FalsePositives++
		}
	}
	return m
}

// Summary renders the engine's alerts grouped by detector.
func (e *Engine) Summary() string {
	byDet := make(map[string]int)
	for _, a := range e.Alerts {
		byDet[a.Detector]++
	}
	names := make([]string, 0, len(byDet))
	for n := range byDet {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%d alerts", len(e.Alerts))
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, byDet[n])
	}
	return b.String()
}
