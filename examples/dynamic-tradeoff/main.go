// Dynamic trade-off: the §5 scenario — "a car driving on a desolate,
// straight highway requires less data analytics ... than when driving in
// a busy city; this enables the car to adjust its communication bandwidth
// to the cloud in real time". A commute cycle (residential → highway →
// downtown) is driven under three controllers and the resulting
// security/smartness/communication operating points are compared.
//
//	go run ./examples/dynamic-tradeoff
package main

import (
	"fmt"

	"autosec/internal/sim"
	"autosec/internal/tradeoff"
	"autosec/internal/workload"
)

func main() {
	cycle := workload.CommuteCycle()
	fmt.Println("commute cycle phases:")
	for _, p := range cycle.Phases {
		fmt.Printf("  %-12s until %-4v density=%.2f threat=%.2f speed=%.0f m/s\n",
			p.Name, p.Until, p.PedestrianDensity, p.ThreatLevel, p.SpeedMS)
	}

	// Show the adaptive controller's decisions per phase.
	fmt.Println("\nadaptive operating points per phase:")
	a := tradeoff.Adaptive{}
	for _, p := range cycle.Phases {
		m := a.Decide(p)
		fmt.Printf("  %-12s analytics=%4.1fHz (need %4.1f)  MAC=%2d bits  cloud=%3.0f kbps  cpu=%.2f\n",
			p.Name, m.AnalyticsHz, tradeoff.RequiredAnalyticsHz(p), m.MACBits, m.CloudKbps, m.CPULoad(1))
	}

	// Evaluate two static baselines against the adaptive controller over
	// two full cycles, at a 0.6-core budget with software crypto.
	const budget = 0.6
	dur := 2 * cycle.Length()
	fmt.Printf("\nevaluation over %v at CPU budget %.1f:\n", dur, budget)
	controllers := []struct {
		name string
		c    tradeoff.Controller
	}{
		{"static-city-sized", tradeoff.Static{M: tradeoff.Mode{Name: "city", AnalyticsHz: 50, MACBits: 64, CloudKbps: 64}}},
		{"static-highway-sized", tradeoff.Static{M: tradeoff.Mode{Name: "hwy", AnalyticsHz: 10, MACBits: 0, CloudKbps: 256}}},
		{"adaptive", tradeoff.Adaptive{}},
	}
	for _, c := range controllers {
		r := tradeoff.Evaluate(c.name, cycle, dur, sim.Second, c.c, budget, 1)
		fmt.Printf("  %s\n", r)
	}

	fmt.Println("\nwith a SHE crypto accelerator (10x) the city-sized static mode fits the budget:")
	r := tradeoff.Evaluate("static-city+SHE", cycle, dur, sim.Second,
		tradeoff.Static{M: tradeoff.Mode{Name: "city", AnalyticsHz: 50, MACBits: 64, CloudKbps: 64}}, budget, 10)
	fmt.Printf("  %s\n", r)
	fmt.Println("\n(static modes either overload, starve perception, or drive exposed;\n" +
		" the extensible mode interface is what makes the adaptive policy possible)")
}
