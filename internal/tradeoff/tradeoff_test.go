package tradeoff

import (
	"testing"

	"autosec/internal/sim"
	"autosec/internal/workload"
)

func TestModeCPULoad(t *testing.T) {
	m := Mode{AnalyticsHz: 50, MACBits: 64}
	sw := m.CPULoad(1)
	hw := m.CPULoad(10)
	if sw <= hw {
		t.Fatal("acceleration did not reduce load")
	}
	// 50*0.01 + 64*0.002 = 0.628.
	if sw < 0.62 || sw > 0.64 {
		t.Fatalf("sw load=%v", sw)
	}
	// accelFactor below 1 clamps.
	if m.CPULoad(0) != sw {
		t.Fatal("clamp failed")
	}
}

func TestAdaptiveDecisionsTrackPhase(t *testing.T) {
	a := Adaptive{}
	city := a.Decide(workload.CityCycle().At(0))
	hwy := a.Decide(workload.HighwayCycle().At(0))
	if city.AnalyticsHz <= hwy.AnalyticsHz {
		t.Fatal("city analytics not higher")
	}
	if city.MACBits <= hwy.MACBits {
		t.Fatalf("city MAC %d vs highway %d", city.MACBits, hwy.MACBits)
	}
	if city.CloudKbps >= hwy.CloudKbps {
		t.Fatal("city did not shed bandwidth")
	}
}

func TestEvaluateAdaptiveBeatsStaticOnCommute(t *testing.T) {
	cycle := workload.CommuteCycle()
	dur := 24 * sim.Minute
	budget := 0.6

	// Static mode sized for the city is overloaded or wasteful; sized for
	// the highway it is exposed and blind downtown. Use the city-sized one.
	staticCity := Evaluate("static-city", cycle, dur, sim.Second,
		Static{M: Mode{Name: "city", AnalyticsHz: 50, MACBits: 64, CloudKbps: 64}}, budget, 1)
	staticHwy := Evaluate("static-hwy", cycle, dur, sim.Second,
		Static{M: Mode{Name: "hwy", AnalyticsHz: 10, MACBits: 0, CloudKbps: 256}}, budget, 1)
	adaptive := Evaluate("adaptive", cycle, dur, sim.Second, Adaptive{}, budget, 1)

	// The city-sized static mode busts the software-crypto CPU budget.
	if staticCity.OverloadFrac == 0 {
		t.Fatalf("static-city never overloads: %s", staticCity)
	}
	// The highway-sized static mode leaves downtown unprotected and
	// under-analyzed.
	if staticHwy.ExposedFrac == 0 || staticHwy.CoverageShortfall == 0 {
		t.Fatalf("static-hwy shows no exposure/shortfall: %s", staticHwy)
	}
	// The adaptive controller avoids all three pathologies.
	if adaptive.OverloadFrac > 0 {
		t.Fatalf("adaptive overloads: %s", adaptive)
	}
	if adaptive.ExposedFrac > 0 {
		t.Fatalf("adaptive exposed: %s", adaptive)
	}
	if adaptive.CoverageShortfall > 1 {
		t.Fatalf("adaptive shortfall: %s", adaptive)
	}
	if adaptive.ModeSwitches == 0 {
		t.Fatal("adaptive never switched modes")
	}
}

func TestEvaluateAccelerationRelievesOverload(t *testing.T) {
	cycle := workload.CityCycle()
	m := Static{M: Mode{Name: "city", AnalyticsHz: 50, MACBits: 64, CloudKbps: 64}}
	sw := Evaluate("sw", cycle, 10*sim.Minute, sim.Second, m, 0.6, 1)
	hw := Evaluate("hw", cycle, 10*sim.Minute, sim.Second, m, 0.6, 10)
	if sw.OverloadFrac <= hw.OverloadFrac {
		t.Fatalf("acceleration did not reduce overload: sw=%.3f hw=%.3f", sw.OverloadFrac, hw.OverloadFrac)
	}
	if hw.OverloadFrac != 0 {
		t.Fatalf("accelerated mode still overloads: %.3f", hw.OverloadFrac)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	r := Evaluate("none", workload.Cycle{}, 0, sim.Second, Static{}, 1, 1)
	if r.OverloadFrac != 0 || r.MeanCloudKbps != 0 {
		t.Fatalf("degenerate report: %s", r)
	}
	// Zero tick falls back to one second.
	r = Evaluate("tick", workload.CityCycle(), 5*sim.Second, 0, Static{M: Mode{AnalyticsHz: 1}}, 1, 1)
	if r.Controller != "tick" {
		t.Fatal("name lost")
	}
}

func TestRequiredAnalyticsHz(t *testing.T) {
	lo := RequiredAnalyticsHz(workload.Phase{PedestrianDensity: 0})
	hi := RequiredAnalyticsHz(workload.Phase{PedestrianDensity: 1})
	if lo != 5 || hi != 50 {
		t.Fatalf("required range %v..%v", lo, hi)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Controller: "x"}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
