package can

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
		err  error
	}{
		{"ok standard", Frame{ID: 0x7FF, Data: []byte{1}}, nil},
		{"ok extended", Frame{ID: MaxExtendedID, Extended: true}, nil},
		{"standard id too big", Frame{ID: 0x800}, ErrIDRange},
		{"extended id too big", Frame{ID: MaxExtendedID + 1, Extended: true}, ErrIDRange},
		{"classic too long", Frame{ID: 1, Data: make([]byte, 9)}, ErrDataLength},
		{"fd remote", Frame{ID: 1, FD: true, Remote: true}, ErrRemoteFD},
		{"fd too long", Frame{ID: 1, FD: true, Data: make([]byte, 65)}, ErrDataLength},
		{"fd bad dlc size", Frame{ID: 1, FD: true, Data: make([]byte, 13)}, ErrFDLengthSet},
		{"fd ok 48", Frame{ID: 1, FD: true, Data: make([]byte, 48)}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.f.Validate()
			if c.err == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if c.err != nil && !errors.Is(err, c.err) {
				t.Fatalf("err=%v, want %v", err, c.err)
			}
		})
	}
}

func TestFDDLCCoding(t *testing.T) {
	for code, size := range fdSizes {
		if got := FDSizeForDLC(byte(code)); got != size {
			t.Errorf("FDSizeForDLC(%d)=%d, want %d", code, got, size)
		}
	}
	f := Frame{ID: 1, FD: true, Data: make([]byte, 32)}
	if f.DLC() != 13 {
		t.Errorf("DLC for 32-byte FD payload = %d, want 13", f.DLC())
	}
}

func TestPadToFD(t *testing.T) {
	out, err := PadToFD(make([]byte, 13), 0xCC)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("padded to %d, want 16", len(out))
	}
	if out[15] != 0xCC {
		t.Fatalf("pad byte %#x", out[15])
	}
	if _, err := PadToFD(make([]byte, 65), 0); err == nil {
		t.Fatal("PadToFD accepted 65 bytes")
	}
}

func TestArbitrationOrdering(t *testing.T) {
	low := Frame{ID: 0x100}
	high := Frame{ID: 0x200}
	if low.ArbitrationValue() >= high.ArbitrationValue() {
		t.Fatal("lower ID must have lower arbitration value")
	}
	// Standard 0x100 beats extended 0x100<<18 | x (same base): IDE bit.
	std := Frame{ID: 0x100}
	ext := Frame{ID: 0x100 << 18, Extended: true}
	if std.ArbitrationValue() >= ext.ArbitrationValue() {
		t.Fatal("standard frame must beat extended frame with same base ID")
	}
	// Extended with smaller base ID beats standard with larger base ID.
	ext2 := Frame{ID: 0x0FF << 18, Extended: true}
	if ext2.ArbitrationValue() >= std.ArbitrationValue() {
		t.Fatal("extended frame with smaller base must win")
	}
}

// Property: arbitration order among standard frames is exactly ID order.
func TestArbitrationMatchesIDOrderProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := Frame{ID: ID(a) & MaxStandardID}
		fb := Frame{ID: ID(b) & MaxStandardID}
		if fa.ID == fb.ID {
			return fa.ArbitrationValue() == fb.ArbitrationValue()
		}
		return (fa.ID < fb.ID) == (fa.ArbitrationValue() < fb.ArbitrationValue())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCloneIsDeep(t *testing.T) {
	f := Frame{ID: 1, Data: []byte{1, 2, 3}}
	c := f.Clone()
	c.Data[0] = 99
	if f.Data[0] != 1 {
		t.Fatal("Clone shares the data slice")
	}
}

func TestFrameEqual(t *testing.T) {
	a := Frame{ID: 1, Data: []byte{1, 2}}
	b := Frame{ID: 1, Data: []byte{1, 2}}
	if !a.Equal(&b) {
		t.Fatal("equal frames reported unequal")
	}
	b.Data[1] = 3
	if a.Equal(&b) {
		t.Fatal("different payloads reported equal")
	}
	c := Frame{ID: 1, Data: []byte{1, 2}, FD: true}
	if a.Equal(&c) {
		t.Fatal("FD flag ignored by Equal")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: 0x123, Data: []byte{0xAB}}
	s := f.String()
	if !strings.HasPrefix(s, "123 ") {
		t.Errorf("String()=%q", s)
	}
	r := Frame{ID: 0x1, Remote: true}
	if !strings.Contains(r.String(), "RTR") {
		t.Errorf("remote frame String()=%q", r.String())
	}
	fd := Frame{ID: 0x1, FD: true, BRS: true, Data: []byte{1, 2, 3, 4}}
	if !strings.Contains(fd.String(), "FD/BRS") {
		t.Errorf("FD frame String()=%q", fd.String())
	}
}
