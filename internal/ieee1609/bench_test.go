package ieee1609

import (
	"testing"

	"autosec/internal/sim"
)

func benchPKI(b *testing.B) (*Credential, *Store) {
	b.Helper()
	root, err := NewRootAuthority("root", []PSID{PSIDBasicSafety}, 0, sim.Hour)
	if err != nil {
		b.Fatal(err)
	}
	cred, err := root.Issue("obu", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err != nil {
		b.Fatal(err)
	}
	return cred, NewStore(root.Cert)
}

func BenchmarkSignBSM(b *testing.B) {
	cred, _ := benchPKI(b)
	payload := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cred.Sign(PSIDBasicSafety, payload, sim.Time(i), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBSM(b *testing.B) {
	cred, store := benchPKI(b)
	msg, err := cred.Sign(PSIDBasicSafety, make([]byte, 32), 0, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Verify(msg, sim.Millisecond, VerifyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	cred, store := benchPKI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.VerifyChain(cred.Cert, sim.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
