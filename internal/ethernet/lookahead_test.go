package ethernet

import (
	"testing"

	"autosec/internal/sim"
)

// TestWireDurationMatchesPortSerialization pins WireDuration to the
// exact arithmetic the switch ports use, across payload sizes — the
// partitioned zonal backbone derives its per-frame timestamps from it
// and must agree with the shared-switch model bit for bit.
func TestWireDurationMatchesPortSerialization(t *testing.T) {
	for _, n := range []int{0, 1, 45, 46, 47, 100, 1500} {
		f := Frame{Payload: make([]byte, n)}
		want := sim.Duration(float64(f.WireBytes()*8) / float64(DefaultLinkBps) * 1e9)
		if got := WireDuration(n, DefaultLinkBps); got != want {
			t.Fatalf("WireDuration(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestTunnelLookaheadDefaults pins the derivation in the doc comment:
// two minimum-frame serializations plus the hop latency.
func TestTunnelLookaheadDefaults(t *testing.T) {
	if got := TunnelLookahead(2*sim.Microsecond, DefaultLinkBps); got != 16080 {
		t.Fatalf("TunnelLookahead = %d ns, want 16080", int64(got))
	}
	if min := WireDuration(0, DefaultLinkBps); min != 7040 {
		t.Fatalf("minimum-frame serialization = %d ns, want 7040", int64(min))
	}
}
