package sidechannel

import (
	"math"
)

// This file implements the attacks: classic DPA (difference of means),
// first-order CPA (Pearson correlation against the Hamming-weight
// hypothesis), and second-order CPA (centered-product combination of the
// mask and masked-output points) for masked devices.

// pearson computes the correlation coefficient between x and y.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// CPAByte runs first-order CPA on one key byte: for every guess it
// correlates the HW(sbox(pt^guess)) hypothesis with the byte's leakage
// point and returns the best guess with its absolute correlation.
func CPAByte(ts *TraceSet, pos int) (guess byte, corr float64) {
	ppb := ts.PointsPerByte()
	point := pos * ppb
	if ts.Masked {
		point = pos*ppb + 1 // the masked-output point
	}
	leak := make([]float64, len(ts.Traces))
	for i, tr := range ts.Traces {
		leak[i] = tr[point]
	}
	hyp := make([]float64, len(ts.Traces))
	best := -1.0
	for g := 0; g < 256; g++ {
		for i, pt := range ts.Plaintexts {
			hyp[i] = float64(HW(sbox[pt[pos]^byte(g)]))
		}
		c := math.Abs(pearson(hyp, leak))
		if c > best {
			best = c
			guess = byte(g)
		}
	}
	return guess, best
}

// CPA recovers the full 16-byte key with first-order CPA.
func CPA(ts *TraceSet) [16]byte {
	var key [16]byte
	for i := 0; i < 16; i++ {
		key[i], _ = CPAByte(ts, i)
	}
	return key
}

// DPAByte runs classic single-bit DPA on one key byte: traces are
// partitioned by the predicted LSB of the S-box output and the guess with
// the largest difference of means wins.
func DPAByte(ts *TraceSet, pos int) (guess byte, dom float64) {
	ppb := ts.PointsPerByte()
	point := pos * ppb
	if ts.Masked {
		point = pos*ppb + 1
	}
	best := -1.0
	for g := 0; g < 256; g++ {
		var sum0, sum1 float64
		var n0, n1 int
		for i, pt := range ts.Plaintexts {
			if sbox[pt[pos]^byte(g)]&1 == 1 {
				sum1 += ts.Traces[i][point]
				n1++
			} else {
				sum0 += ts.Traces[i][point]
				n0++
			}
		}
		if n0 == 0 || n1 == 0 {
			continue
		}
		d := math.Abs(sum1/float64(n1) - sum0/float64(n0))
		if d > best {
			best = d
			guess = byte(g)
		}
	}
	return guess, best
}

// DPA recovers the full key with single-bit DPA.
func DPA(ts *TraceSet) [16]byte {
	var key [16]byte
	for i := 0; i < 16; i++ {
		key[i], _ = DPAByte(ts, i)
	}
	return key
}

// SecondOrderCPAByte attacks a masked trace set by combining each byte's
// mask point and masked-output point with the centered product and
// correlating against the HW hypothesis. This is the textbook
// second-order attack that first-order masking does not stop.
func SecondOrderCPAByte(ts *TraceSet, pos int) (guess byte, corr float64) {
	if !ts.Masked {
		return CPAByte(ts, pos)
	}
	p0, p1 := pos*2, pos*2+1
	n := len(ts.Traces)
	// Center each point.
	var m0, m1 float64
	for _, tr := range ts.Traces {
		m0 += tr[p0]
		m1 += tr[p1]
	}
	m0 /= float64(n)
	m1 /= float64(n)
	comb := make([]float64, n)
	for i, tr := range ts.Traces {
		comb[i] = (tr[p0] - m0) * (tr[p1] - m1)
	}
	hyp := make([]float64, n)
	best := -1.0
	for g := 0; g < 256; g++ {
		for i, pt := range ts.Plaintexts {
			hyp[i] = float64(HW(sbox[pt[pos]^byte(g)]))
		}
		c := math.Abs(pearson(hyp, comb))
		if c > best {
			best = c
			guess = byte(g)
		}
	}
	return guess, best
}

// SecondOrderCPA recovers the full key from a masked trace set.
func SecondOrderCPA(ts *TraceSet) [16]byte {
	var key [16]byte
	for i := 0; i < 16; i++ {
		key[i], _ = SecondOrderCPAByte(ts, i)
	}
	return key
}

// SuccessRate reports the fraction of recovered key bytes that match.
func SuccessRate(got, want [16]byte) float64 {
	hits := 0
	for i := range got {
		if got[i] == want[i] {
			hits++
		}
	}
	return float64(hits) / 16
}

// TracesToRecover runs attack at increasing trace counts (doubling from
// start) until the full key is recovered or limit is exceeded; it returns
// the first successful count, or 0 if the limit was hit. It is the E2
// "traces needed" metric.
func TracesToRecover(key [16]byte, cfg Config, attack func(*TraceSet) [16]byte, start, limit int, acquire func(n int) *TraceSet) int {
	for n := start; n <= limit; n *= 2 {
		ts := acquire(n)
		if SuccessRate(attack(ts), key) == 1 {
			return n
		}
	}
	return 0
}
