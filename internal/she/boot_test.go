package she

import (
	"errors"
	"testing"
)

func bootableEngine(t *testing.T) (*Engine, []byte) {
	t.Helper()
	e := NewEngine(testUID(0x33))
	_ = e.ProvisionKey(BootMACKey, key16(0xB0), Flags{})
	image := []byte("firmware v1.0: brake controller application image")
	if err := e.DefineBootMAC(image); err != nil {
		t.Fatal(err)
	}
	return e, image
}

func TestSecureBootSuccess(t *testing.T) {
	e, image := bootableEngine(t)
	ok, err := e.SecureBoot(image)
	if err != nil || !ok {
		t.Fatalf("boot: ok=%v err=%v", ok, err)
	}
	verified, ran := e.BootVerified()
	if !verified || !ran {
		t.Fatal("boot state not recorded")
	}
}

func TestSecureBootDetectsTamperedImage(t *testing.T) {
	e, image := bootableEngine(t)
	tampered := append([]byte(nil), image...)
	tampered[10] ^= 0xFF
	ok, err := e.SecureBoot(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered image verified")
	}
}

func TestBootProtectionDisablesKeysAfterFailedBoot(t *testing.T) {
	e, image := bootableEngine(t)
	_ = e.ProvisionKey(Key1, key16(0x01), Flags{KeyUsage: true, BootProtection: true})
	_ = e.ProvisionKey(Key2, key16(0x02), Flags{KeyUsage: true})

	tampered := append([]byte(nil), image...)
	tampered[0] ^= 1
	if ok, _ := e.SecureBoot(tampered); ok {
		t.Fatal("precondition: tampered boot verified")
	}
	if _, err := e.GenerateMAC(Key1, []byte("x")); !errors.Is(err, ErrBootProtected) {
		t.Fatalf("boot-protected key usable after failed boot: %v", err)
	}
	if _, err := e.GenerateMAC(Key2, []byte("x")); err != nil {
		t.Fatalf("unprotected key blocked: %v", err)
	}

	// A reset followed by a good boot restores access.
	e.ResetSession()
	if ok, _ := e.SecureBoot(image); !ok {
		t.Fatal("good boot failed after reset")
	}
	if _, err := e.GenerateMAC(Key1, []byte("x")); err != nil {
		t.Fatalf("key blocked after good boot: %v", err)
	}
}

func TestBootProtectedKeyUsableBeforeAnyBoot(t *testing.T) {
	// Until a secure boot runs, boot-protected keys work (the spec gates
	// them on boot *failure*, not boot completion).
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key1, key16(0x01), Flags{KeyUsage: true, BootProtection: true})
	if _, err := e.GenerateMAC(Key1, []byte("x")); err != nil {
		t.Fatalf("err=%v", err)
	}
}

func TestDefineBootMACRequiresKey(t *testing.T) {
	e := NewEngine(testUID(1))
	if err := e.DefineBootMAC([]byte("img")); !errors.Is(err, ErrBootMACUnset) {
		t.Fatalf("err=%v", err)
	}
}

func TestDefineBootMACAfterBootRejected(t *testing.T) {
	e, image := bootableEngine(t)
	if _, err := e.SecureBoot(image); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineBootMAC([]byte("new image")); !errors.Is(err, ErrSequence) {
		t.Fatalf("BOOT_DEFINE after boot: %v", err)
	}
	// After a reset the definition window reopens.
	e.ResetSession()
	if err := e.DefineBootMAC([]byte("new image")); err != nil {
		t.Fatalf("BOOT_DEFINE after reset: %v", err)
	}
}

func TestSecureBootWithoutProvisioning(t *testing.T) {
	e := NewEngine(testUID(1))
	if _, err := e.SecureBoot([]byte("img")); !errors.Is(err, ErrBootMACUnset) {
		t.Fatalf("err=%v", err)
	}
}
