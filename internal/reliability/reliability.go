// Package reliability models the device-reliability pillar of the
// paper's §3 robustness taxonomy: "sensors and analytics software for
// providing early warning against component wear-outs, mechanisms to
// ensure slow and gradual degradation". Components age along a Weibull
// hazard curve; a health monitor tracks degradation indicators and raises
// maintenance warnings before the failure probability crosses the service
// threshold — converting random hardware failures into scheduled
// maintenance, which is what keeps them out of the safety case.
package reliability

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autosec/internal/sim"
)

// Component is one wear-prone part with Weibull lifetime parameters.
type Component struct {
	Name string
	// ShapeK is the Weibull shape parameter: >1 means wear-out behaviour
	// (hazard rises with age), 1 is memoryless, <1 infant mortality.
	ShapeK float64
	// ScaleHours is the characteristic life in operating hours.
	ScaleHours float64

	ageHours float64
	failed   bool
}

// Validate checks the parameters.
func (c *Component) Validate() error {
	if c.ShapeK <= 0 || c.ScaleHours <= 0 {
		return fmt.Errorf("reliability: %s needs positive Weibull parameters", c.Name)
	}
	return nil
}

// AgeHours reports accumulated operating time.
func (c *Component) AgeHours() float64 { return c.ageHours }

// Failed reports whether the component has failed.
func (c *Component) Failed() bool { return c.failed }

// FailureProbability is the Weibull CDF at the component's age: the
// probability it has failed by now.
func (c *Component) FailureProbability() float64 {
	if c.ageHours <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(c.ageHours/c.ScaleHours, c.ShapeK))
}

// HazardRate is the instantaneous failure rate (failures per hour) at the
// current age.
func (c *Component) HazardRate() float64 {
	if c.ageHours <= 0 {
		return 0
	}
	return c.ShapeK / c.ScaleHours * math.Pow(c.ageHours/c.ScaleHours, c.ShapeK-1)
}

// Monitor ages a set of components on the virtual clock, samples failures
// stochastically from the hazard curve, and raises early warnings when
// failure probability crosses the warning threshold — before the
// component actually dies.
type Monitor struct {
	kernel *sim.Kernel
	rng    *sim.Stream

	// WarnAt is the failure-probability threshold for maintenance
	// warnings (default 0.10).
	WarnAt float64
	// TickHours is the aging step per virtual tick.
	TickHours float64

	components []*Component
	warned     map[string]bool

	Warnings []string
	Failures []string
	onEvent  []func(kind, component string)
}

// NewMonitor creates a monitor aging components every virtual minute by
// tickHours of operation (drive-time compression).
func NewMonitor(k *sim.Kernel, tickHours float64) *Monitor {
	return &Monitor{
		kernel:    k,
		rng:       k.Stream("reliability"),
		WarnAt:    0.10,
		TickHours: tickHours,
		warned:    make(map[string]bool),
	}
}

// ErrDuplicate rejects re-adding a component name.
var ErrDuplicate = errors.New("reliability: duplicate component")

// Add registers a component.
func (m *Monitor) Add(c *Component) error {
	if err := c.Validate(); err != nil {
		return err
	}
	for _, existing := range m.components {
		if existing.Name == c.Name {
			return fmt.Errorf("%w: %s", ErrDuplicate, c.Name)
		}
	}
	m.components = append(m.components, c)
	return nil
}

// OnEvent registers a callback for "warning" and "failure" events.
func (m *Monitor) OnEvent(fn func(kind, component string)) {
	m.onEvent = append(m.onEvent, fn)
}

// Start ages the fleet every virtual minute; returns a stop function.
func (m *Monitor) Start() (stop func()) {
	return m.kernel.Every(m.kernel.Now(), sim.Minute, m.tick)
}

func (m *Monitor) tick() {
	for _, c := range m.components {
		if c.failed {
			continue
		}
		// Conditional failure probability over this tick given survival.
		before := c.FailureProbability()
		c.ageHours += m.TickHours
		after := c.FailureProbability()
		var pTick float64
		if before < 1 {
			pTick = (after - before) / (1 - before)
		}
		if m.rng.Bool(pTick) {
			c.failed = true
			m.Failures = append(m.Failures, c.Name)
			m.emit("failure", c.Name)
			continue
		}
		if !m.warned[c.Name] && after >= m.WarnAt {
			m.warned[c.Name] = true
			m.Warnings = append(m.Warnings, c.Name)
			m.emit("warning", c.Name)
		}
	}
}

func (m *Monitor) emit(kind, name string) {
	for _, fn := range m.onEvent {
		fn(kind, name)
	}
}

// Replace resets a component after maintenance (new part, age zero).
func (m *Monitor) Replace(name string) bool {
	for _, c := range m.components {
		if c.Name == name {
			c.ageHours = 0
			c.failed = false
			delete(m.warned, name)
			return true
		}
	}
	return false
}

// HealthReport lists components by failure probability, worst first.
func (m *Monitor) HealthReport() []string {
	sorted := append([]*Component(nil), m.components...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].FailureProbability() > sorted[j].FailureProbability()
	})
	out := make([]string, 0, len(sorted))
	for _, c := range sorted {
		state := "ok"
		if c.failed {
			state = "FAILED"
		} else if m.warned[c.Name] {
			state = "service due"
		}
		out = append(out, fmt.Sprintf("%s: p(fail)=%.3f age=%.0fh %s", c.Name, c.FailureProbability(), c.ageHours, state))
	}
	return out
}

// WarnedBeforeFailure reports, for components that have failed, how many
// had received an early warning first — the monitor's value metric.
func (m *Monitor) WarnedBeforeFailure() (warned, total int) {
	warnedSet := make(map[string]bool, len(m.Warnings))
	for _, w := range m.Warnings {
		warnedSet[w] = true
	}
	for _, f := range m.Failures {
		total++
		if warnedSet[f] {
			warned++
		}
	}
	return warned, total
}
