package flexray

// Pooled-vehicle lifecycle support. MarkBaseline snapshots the cluster's
// post-construction wiring — static slot ownership, intruders, receivers —
// and ResetToBaseline rewinds to it: scenario assignments and intrusions
// drop, the dynamic queue drains, the cycle counter rewinds and the
// cluster stops (Start is explicit, exactly as after NewCluster).

// frBaseline is the sealed post-construction state of a Cluster.
type frBaseline struct {
	sealed    bool
	static    map[SlotID]*slotAssignment
	intruders map[SlotID]int // per-slot intruder counts
	receivers int
}

// MarkBaseline records the cluster's current wiring as the reset target.
func (c *Cluster) MarkBaseline() {
	b := frBaseline{
		sealed:    true,
		static:    make(map[SlotID]*slotAssignment, len(c.static)),
		intruders: make(map[SlotID]int, len(c.intruders)),
		receivers: len(c.receivers),
	}
	for slot, a := range c.static {
		b.static[slot] = a
	}
	for slot, as := range c.intruders {
		b.intruders[slot] = len(as)
	}
	c.base = b
}

// ResetToBaseline rewinds the cluster to its MarkBaseline snapshot. The
// kernel must have been Reset first (pending cycle events are gone with
// the queue).
func (c *Cluster) ResetToBaseline() {
	if !c.base.sealed {
		panic("flexray: ResetToBaseline before MarkBaseline")
	}
	for slot := range c.static {
		if _, keep := c.base.static[slot]; !keep {
			delete(c.static, slot)
		}
	}
	for slot, a := range c.base.static {
		c.static[slot] = a
	}
	for slot, as := range c.intruders {
		keep, ok := c.base.intruders[slot]
		if !ok {
			delete(c.intruders, slot)
			continue
		}
		for i := keep; i < len(as); i++ {
			as[i] = nil
		}
		c.intruders[slot] = as[:keep]
	}
	c.dynamic = nil
	for i := c.base.receivers; i < len(c.receivers); i++ {
		c.receivers[i] = nil
	}
	c.receivers = c.receivers[:c.base.receivers]
	c.cycle = 0
	c.running = false
	c.stopped = false
	c.FramesOK.Value = 0
	c.NullFrames.Value = 0
	c.Collisions.Value = 0
	c.DynSent.Value = 0
	c.DynStarved.Value = 0
}
