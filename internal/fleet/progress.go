package fleet

import (
	"fmt"
	"io"
	"sync"
)

// ProgressWriter is the stock DriveObserver for CLIs: it prints a line
// to w every 10% of fleet completion and a final summary with wall-clock
// throughput and pool behaviour. Write it to stderr — the output is
// wall-clock telemetry and must never land in a deterministic artifact
// stream. Safe for concurrent callbacks.
type ProgressWriter struct {
	mu      sync.Mutex
	w       io.Writer
	total   int
	done    int
	lastPct int
}

// NewProgressWriter creates a ProgressWriter for a fleet of total
// vehicles writing to w.
func NewProgressWriter(w io.Writer, total int) *ProgressWriter {
	return &ProgressWriter{w: w, total: total, lastPct: -1}
}

// VehicleDone implements DriveObserver.
func (p *ProgressWriter) VehicleDone(worker, done, shardTotal int) {
	p.mu.Lock()
	p.done++
	if p.total > 0 {
		if pct := p.done * 100 / p.total; pct/10 > p.lastPct/10 || p.lastPct < 0 {
			p.lastPct = pct
			fmt.Fprintf(p.w, "fleet: %d/%d vehicles (%d%%)\n", p.done, p.total, pct)
		}
	}
	p.mu.Unlock()
}

// DriveDone implements DriveObserver.
func (p *ProgressWriter) DriveDone(s DriveStats) {
	p.mu.Lock()
	fmt.Fprintf(p.w, "fleet: %d vehicles, %d workers, %.0f vehicles/sec (wall %v), pool %d hits / %d misses",
		s.Vehicles, s.Workers, s.VehiclesPerSec, s.Wall.Round(1e6), s.PoolHits, s.PoolMisses)
	if s.TracesKept > 0 {
		fmt.Fprintf(p.w, ", %d traces kept (%d incident)", s.TracesKept, s.TracesInteresting)
	}
	fmt.Fprintln(p.w)
	p.mu.Unlock()
}
