// Package experiments implements the paper-reproduction harness: one
// function per experiment E1–E12 from DESIGN.md, each returning a Table
// whose rows quantify one qualitative claim of the paper. cmd/benchreport
// prints every table; the root bench_test.go wraps each function in a
// testing.B benchmark so `go test -bench` regenerates the full evaluation.
package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is one experiment's result: an id, the paper claim it
// quantifies, and a rectangular result grid.
type Table struct {
	ID    string
	Title string
	// Claim cites the qualitative statement from the paper (with its
	// section) that the numbers substantiate.
	Claim   string
	Columns []string
	Rows    [][]string
}

// CI is a sample mean with a symmetric 95% confidence half-width, the
// cell type emitted by the multi-seed replication merge (internal/runner).
// It renders as "12.3 ± 0.4".
type CI struct {
	Mean float64
	Half float64 // half-width of the 95% confidence interval
}

func (c CI) String() string {
	return fmtMeasure(c.Mean) + " ± " + fmtMeasure(c.Half)
}

// MinMax is an observed per-seed range, rendered as "11.9..12.8".
type MinMax struct {
	Min float64
	Max float64
}

func (m MinMax) String() string {
	return fmtMeasure(m.Min) + ".." + fmtMeasure(m.Max)
}

// fmtMeasure renders an aggregated measurement with adaptive precision:
// four significant digits, fixed-point where that stays readable, no
// trailing zeros. Unlike the raw-cell %.3f it must cope with cells whose
// native scale ranges from miss-rate fractions to frame counts in the
// tens of thousands.
func fmtMeasure(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 0) || math.IsNaN(v):
		return strconv.FormatFloat(v, 'g', -1, 64)
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
	digits := int(math.Floor(math.Log10(math.Abs(v)))) + 1
	dec := 4 - digits
	if dec < 0 {
		dec = 0
	}
	s := strconv.FormatFloat(v, 'f', dec, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// AddRow appends a row, formatting each cell with %v. float64 cells keep
// the historical fixed %.3f rendering (single-seed tables and goldens
// depend on it); CI and MinMax cells use the adaptive measurement format.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		case CI:
			row[i] = v.String()
		case MinMax:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "  claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// All runs every experiment at the given seed and returns the tables in
// order. This is the one-call full reproduction.
func All(seed uint64) []*Table {
	return []*Table{
		E1BusDoS(seed),
		E2SideChannel(seed),
		E3FleetCompromise(seed),
		E4Pseudonym(seed),
		E5Tradeoff(seed),
		E6Verification(seed),
		E7AuthenticatedCAN(seed),
		E8Gateway(seed),
		E9Relay(seed),
		E10OTA(seed),
		E11IDS(seed),
		E12Lifetime(seed),
		E13DiagnosticAccess(seed),
		E14BusOff(seed),
		E15VerifyScaling(seed),
		E16CrossMediumGateway(seed),
		E17Zonal(seed),
		E18Fleet(seed),
		E19KernelPar(seed),
		E20Observability(seed),
		E21MediumIDS(seed),
		E22Campaign(seed),
		A1MACTruncation(seed),
		A2BoundingThreshold(seed),
	}
}
