package gateway

import (
	"testing"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// stubMedium is a minimal netif.Medium whose ports accept frames without
// doing anything. It isolates the gateway's own forward path — rule match,
// verdict, cross-medium translation — from any real medium's transmit
// cost, which is what the steady-state allocation pin must measure.
type stubMedium struct {
	kind  netif.Kind
	ports []*stubPort
}

func (m *stubMedium) Kind() netif.Kind { return m.kind }
func (m *stubMedium) Name() string     { return "stub-" + m.kind.String() }

func (m *stubMedium) Open(name string) (netif.Port, error) {
	p := &stubPort{name: name, kind: m.kind}
	m.ports = append(m.ports, p)
	return p, nil
}

func (m *stubMedium) Tap(netif.TapFunc) {}

type stubPort struct {
	name string
	kind netif.Kind
	recv netif.RecvFunc
	sent int
}

func (p *stubPort) Name() string     { return p.name }
func (p *stubPort) Kind() netif.Kind { return p.kind }

func (p *stubPort) Send(f *netif.Frame) error {
	p.sent++
	return nil
}

func (p *stubPort) OnReceive(fn netif.RecvFunc) { p.recv = fn }

// fabricRig joins a CAN domain and an Ethernet domain over stub media and
// returns the gateway plus each domain's gateway-side port (whose recv
// callback injects ingress frames).
func fabricRig(t testing.TB, allowAll bool) (g *Gateway, canGW, ethGW *stubPort) {
	t.Helper()
	k := sim.NewKernel(1)
	g = New(k, "central")
	canM := &stubMedium{kind: netif.CAN}
	ethM := &stubMedium{kind: netif.Ethernet}
	if err := g.AttachDomain("powertrain", canM); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachDomain("telematics", ethM); err != nil {
		t.Fatal(err)
	}
	if allowAll {
		g.AddRule(&Rule{Name: "open", From: "*", IDLo: 0, IDHi: 0x7FF, Action: Allow})
	}
	return g, canM.ports[0], ethM.ports[0]
}

// TestGatewayFabricSteadyStateAllocs pins the forward path at zero
// steady-state allocations per frame, in both directions across the
// medium boundary: CAN ingress encapsulated onto Ethernet, and a tunnel
// frame from the Ethernet backbone decapsulated back onto CAN. Scratch
// buffers may grow during warm-up; after that every translation reuses
// them.
func TestGatewayFabricSteadyStateAllocs(t *testing.T) {
	_, canGW, ethGW := fabricRig(t, true)

	canFrame := netif.Frame{Medium: netif.CAN, ID: 0x100, Priority: 0x100, Payload: make([]byte, 8)}

	inner := netif.Frame{Medium: netif.CAN, ID: 0x155, Priority: 0x155, Payload: make([]byte, 4)}
	var tunnel netif.Frame
	var encBuf []byte
	netif.Encapsulate(&tunnel, &inner, &encBuf)

	// Warm-up: grow the per-domain scratch state.
	for i := 0; i < 16; i++ {
		canGW.recv(0, &canFrame)
		ethGW.recv(0, &tunnel)
	}

	if n := testing.AllocsPerRun(1000, func() { canGW.recv(0, &canFrame) }); n != 0 {
		t.Fatalf("CAN->Ethernet forward allocates %.1f/frame, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { ethGW.recv(0, &tunnel) }); n != 0 {
		t.Fatalf("Ethernet tunnel->CAN forward allocates %.1f/frame, want 0", n)
	}
	if canGW.sent == 0 || ethGW.sent == 0 {
		t.Fatalf("frames were not forwarded: can=%d eth=%d", canGW.sent, ethGW.sent)
	}
}

// BenchmarkGatewayCrossMedium compares the same-medium forward path with
// the cross-medium (tunnel-translating) one over stub media, so ns/op and
// allocs/op are the gateway fabric's own cost. CI runs this pair with an
// allocs-regression check: both sides must report 0 allocs/op.
func BenchmarkGatewayCrossMedium(b *testing.B) {
	b.Run("same-medium", func(b *testing.B) {
		k := sim.NewKernel(1)
		g := New(k, "central")
		a := &stubMedium{kind: netif.CAN}
		c := &stubMedium{kind: netif.CAN}
		_ = g.AttachDomain("powertrain", a)
		_ = g.AttachDomain("chassis", c)
		g.AddRule(&Rule{Name: "open", From: "*", IDLo: 0, IDHi: 0x7FF, Action: Allow})
		f := netif.Frame{Medium: netif.CAN, ID: 0x100, Priority: 0x100, Payload: make([]byte, 8)}
		in := a.ports[0]
		in.recv(0, &f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in.recv(0, &f)
		}
	})
	b.Run("cross-medium", func(b *testing.B) {
		_, canGW, _ := fabricRig(b, true)
		f := netif.Frame{Medium: netif.CAN, ID: 0x100, Priority: 0x100, Payload: make([]byte, 8)}
		canGW.recv(0, &f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			canGW.recv(0, &f)
		}
	})
}
