package sensors

import (
	"math"
	"testing"

	"autosec/internal/sim"
)

func linearTruth(speed float64) TruthFunc {
	return func(at sim.Time) VehicleState {
		return VehicleState{
			Pos:          Position{X: speed * at.Seconds()},
			SpeedMS:      speed,
			ObstacleDist: math.Inf(1),
		}
	}
}

func TestGPSNoiseAroundTruth(t *testing.T) {
	rng := sim.NewStream(1, "gps")
	g := NewGPS(2, 0.5, rng)
	truth := linearTruth(30)
	var errSum float64
	n := 1000
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		pos, speed := g.Read(at, truth(at))
		errSum += pos.Dist(truth(at).Pos)
		if math.Abs(speed-30) > 3 {
			t.Fatalf("speed reading %v", speed)
		}
	}
	mean := errSum / float64(n)
	// Mean 2-D error for sigma=2 per axis is sigma*sqrt(pi/2) ≈ 2.5.
	if mean < 1.5 || mean > 3.5 {
		t.Fatalf("mean GPS error %.2f m", mean)
	}
}

func TestGPSSpoofOverride(t *testing.T) {
	rng := sim.NewStream(1, "gps")
	g := NewGPS(1, 0.1, rng)
	g.Spoof = func(at sim.Time) (Position, float64, bool) {
		return Position{9999, 9999}, 1, true
	}
	pos, speed := g.Read(0, linearTruth(30)(0))
	if pos.X != 9999 || speed != 1 {
		t.Fatalf("spoof not applied: %+v %v", pos, speed)
	}
}

func TestFusionQuietOnCleanSensors(t *testing.T) {
	rng := sim.NewStream(2, "clean")
	g := NewGPS(2, 0.3, rng)
	w := NewWheelSpeed(0.2, rng)
	l := NewLidar(0.5, rng)
	f := NewFusion()
	f.RegisterTPMS(0xA1)
	truth := linearTruth(30)
	for i := 0; i < 600; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		st := truth(at)
		f.IngestWheel(at, w.Read(at, st))
		pos, sp := g.Read(at, st)
		f.IngestGPS(at, pos, sp)
		f.IngestLidar(at, l.Read(at, st))
		f.IngestTPMS(at, TPMSReading{SensorID: 0xA1, KPa: 240})
	}
	if len(f.Anomalies) != 0 {
		t.Fatalf("false positives on clean drive: %v", f.Anomalies[0])
	}
}

func TestFusionDetectsGPSSpeedSpoof(t *testing.T) {
	rng := sim.NewStream(3, "spoof")
	g := NewGPS(2, 0.3, rng)
	w := NewWheelSpeed(0.2, rng)
	f := NewFusion()
	truth := linearTruth(30)
	// Spoofer reports the car nearly stationary (a common hijack pattern:
	// freeze position so the nav system believes it never moved).
	g.Spoof = func(at sim.Time) (Position, float64, bool) {
		return Position{0, 0}, 0.5, at > 10*sim.Second
	}
	for i := 0; i < 300; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		st := truth(at)
		f.IngestWheel(at, w.Read(at, st))
		pos, sp := g.Read(at, st)
		f.IngestGPS(at, pos, sp)
	}
	counts := f.CountByKind()
	if counts[AnomalyGPSSpeedMismatch] == 0 {
		t.Fatalf("speed spoof undetected: %v", counts)
	}
}

func TestFusionDetectsGPSJump(t *testing.T) {
	f := NewFusion()
	f.IngestWheel(0, 30)
	f.IngestGPS(0, Position{0, 0}, 30)
	f.IngestWheel(sim.Second, 30)
	// One second later, the fix is 5km away: implied 5000 m/s.
	f.IngestGPS(sim.Second, Position{5000, 0}, 30)
	if f.CountByKind()[AnomalyGPSJump] != 1 {
		t.Fatalf("jump undetected: %v", f.Anomalies)
	}
}

func TestFusionDetectsTPMSInjection(t *testing.T) {
	f := NewFusion()
	f.RegisterTPMS(0xA1)
	// Unknown sensor ID (the Rouf et al. injection).
	f.IngestTPMS(0, TPMSReading{SensorID: 0xBAD, KPa: 240})
	// Paired sensor with absurd pressure.
	f.IngestTPMS(0, TPMSReading{SensorID: 0xA1, KPa: 900})
	counts := f.CountByKind()
	if counts[AnomalyTPMSUnknownID] != 1 || counts[AnomalyTPMSRange] != 1 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestFusionDetectsLidarGhost(t *testing.T) {
	f := NewFusion()
	// Steady 100m obstacle...
	f.IngestLidar(0, 100)
	f.IngestLidar(100*sim.Millisecond, 98)
	// ...then a phantom at 5m: closing speed 930 m/s.
	f.IngestLidar(200*sim.Millisecond, 5)
	if f.CountByKind()[AnomalyLidarGhost] != 1 {
		t.Fatalf("ghost undetected: %v", f.Anomalies)
	}
}

func TestFusionLidarObstacleFromInfinity(t *testing.T) {
	f := NewFusion()
	f.IngestLidar(0, math.Inf(1))
	// An object appearing at 3m out of clear air within 100ms is a ghost.
	f.IngestLidar(100*sim.Millisecond, 3)
	if f.CountByKind()[AnomalyLidarGhost] != 1 {
		t.Fatalf("materialising ghost undetected: %v", f.Anomalies)
	}
	// A distant object coming over the sensing horizon is normal.
	f2 := NewFusion()
	f2.IngestLidar(0, math.Inf(1))
	f2.IngestLidar(100*sim.Millisecond, 150)
	if len(f2.Anomalies) != 0 {
		t.Fatalf("horizon entry flagged: %v", f2.Anomalies)
	}
}

func TestLidarReadsTruthAndSpoof(t *testing.T) {
	rng := sim.NewStream(4, "lidar")
	l := NewLidar(0.5, rng)
	st := VehicleState{ObstacleDist: 42}
	d := l.Read(0, st)
	if math.Abs(d-42) > 3 {
		t.Fatalf("lidar read %v", d)
	}
	l.Spoof = func(sim.Time) (float64, bool) { return 2, true }
	if l.Read(0, st) != 2 {
		t.Fatal("lidar spoof not applied")
	}
	// Infinite distance passes through unperturbed.
	l.Spoof = nil
	if !math.IsInf(l.Read(0, VehicleState{ObstacleDist: math.Inf(1)}), 1) {
		t.Fatal("infinite distance got noise")
	}
}

func TestWheelSpeed(t *testing.T) {
	rng := sim.NewStream(5, "wheel")
	w := NewWheelSpeed(0.1, rng)
	s := w.Read(0, VehicleState{SpeedMS: 20})
	if math.Abs(s-20) > 1 {
		t.Fatalf("wheel speed %v", s)
	}
}
