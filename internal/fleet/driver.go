package fleet

import (
	"context"
	"sync"
	"sync/atomic"

	"autosec/internal/core"
)

// Driver shards a vehicle population across workers, each worker running
// its shard on a private core.VehiclePool so construction cost amortizes
// over the shard. Results merge in vehicle-index order, so the output is
// byte-identical at any worker count — the fleet-scale analogue of the
// runner's par-invariance, backed by the pooled Reset's equivalence
// guarantee (a reset vehicle behaves exactly like a fresh one).
type Driver struct {
	// Cfg is the per-vehicle build configuration. The VIN is shared by
	// every pool vehicle; per-vehicle identity comes from the seed, which
	// Drive derives per index from Cfg.Seed (see VehicleSeed).
	Cfg core.Config
	// N is the fleet population size.
	N int
	// Workers bounds the shard parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// VehicleSeed derives vehicle idx's kernel seed from the fleet base seed:
// a splitmix64-style finalizer over (base, idx), so neighbouring indices
// get decorrelated streams and the mapping is independent of sharding.
func VehicleSeed(base uint64, idx int) uint64 {
	z := base + 0x9E3779B97F4A7C15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// driveAbort is the shared failure state of one Drive call. The hot-path
// check is a single atomic load (aborted); the mutex only serializes the
// cold fail path that records which error wins. At 1e5+ vehicles the
// previous design — a mutex acquisition per vehicle just to ask "has
// anyone failed?" — was the one cross-worker synchronization point on an
// otherwise share-nothing loop.
type driveAbort struct {
	aborted  atomic.Bool
	mu       sync.Mutex
	firstErr error
	errIdx   int
}

// fail records err for vehicle idx, keeping the lowest-indexed error (a
// shard seeing the abort flag may stop before reaching its own failure,
// so under multiple workers the index is best-effort).
func (a *driveAbort) fail(idx int, err error) {
	a.mu.Lock()
	if a.firstErr == nil || idx < a.errIdx {
		a.firstErr, a.errIdx = err, idx
	}
	a.mu.Unlock()
	a.aborted.Store(true)
}

// err returns the winning error after the drive barrier.
func (a *driveAbort) err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstErr
}

// Drive runs fn once per vehicle index over d's population and returns
// the per-vehicle results in index order. Each worker owns a contiguous
// index shard and a private pool: the first acquisition constructs a
// vehicle, every later one resets it, so steady-state sharding does no
// construction work. fn must treat the vehicle as scenario scratch — any
// rules, observers or traffic it adds are rewound by the next Reset.
//
// An error aborts the drive; the lowest-indexed error observed wins the
// report. ctx cancellation surfaces as that context's error.
//
// Drive is the bare loop; DriveObs is the same loop with the fleet
// observability plane (merged metrics, sampled traces, progress
// telemetry) attached.
func Drive[T any](ctx context.Context, d Driver, fn func(idx int, v *core.Vehicle) (T, error)) ([]T, error) {
	results, _, err := DriveObs(ctx, d, ObsOptions{}, fn)
	return results, err
}
