// Command benchreport regenerates the full experiment suite E1–E12 from
// DESIGN.md and prints each result table, paper claim included.
//
// Usage:
//
//	benchreport [-seed N] [-only E3,E8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autosec/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "scenario seed (same seed, same tables)")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E8); empty runs all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id  string
		run func(uint64) *experiments.Table
	}{
		{"E1", experiments.E1BusDoS},
		{"E2", experiments.E2SideChannel},
		{"E3", experiments.E3FleetCompromise},
		{"E4", experiments.E4Pseudonym},
		{"E5", experiments.E5Tradeoff},
		{"E6", experiments.E6Verification},
		{"E7", experiments.E7AuthenticatedCAN},
		{"E8", experiments.E8Gateway},
		{"E9", experiments.E9Relay},
		{"E10", experiments.E10OTA},
		{"E11", experiments.E11IDS},
		{"E12", experiments.E12Lifetime},
		{"E13", experiments.E13DiagnosticAccess},
		{"E14", experiments.E14BusOff},
		{"E15", experiments.E15VerifyScaling},
		{"A1", experiments.A1MACTruncation},
		{"A2", experiments.A2BoundingThreshold},
	}

	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		table := r.run(*seed)
		fmt.Println(table.String())
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiments matched -only=%q\n", *only)
		os.Exit(1)
	}
}
