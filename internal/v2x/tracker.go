package v2x

import (
	"sort"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
)

// Tracker is the passive adversary of the paper's privacy scenario: it
// records every broadcast it can hear and tries to reconstruct vehicle
// trajectories. Messages signed by the same pseudonym certificate are
// trivially linkable; across a pseudonym change the tracker links
// observations by spatio-temporal continuity (two sightings close in
// space and time are assumed to be the same vehicle).
type Tracker struct {
	// Antennas are the tracker's receiver positions.
	Antennas []Position
	// RangeM is each antenna's reception range.
	RangeM float64

	// LinkWindow and LinkRadius parameterize cross-pseudonym linking: a
	// new pseudonym first heard within LinkRadius metres and LinkWindow of
	// the last sighting of a dormant one is chained to it.
	LinkWindow sim.Duration
	LinkRadius float64

	obs []observation
}

type observation struct {
	at   sim.Time
	pos  Position
	cert ieee1609.HashedID8
}

// Attach wires the tracker's antennas into the field.
func (t *Tracker) Attach(f *Field) {
	f.Listen(func(at sim.Time, from Position, msg *ieee1609.SignedMessage) {
		for _, a := range t.Antennas {
			if a.Dist(from) <= t.RangeM {
				bsm, err := DecodeBSM(msg.Payload)
				pos := from
				if err == nil {
					pos = bsm.Pos // the payload itself leaks position
				}
				var id ieee1609.HashedID8
				if msg.Cert != nil {
					id = msg.Cert.ID()
				} else {
					id = msg.Digest
				}
				t.obs = append(t.obs, observation{at: at, pos: pos, cert: id})
				return
			}
		}
	})
}

// Observations reports how many broadcasts the tracker captured.
func (t *Tracker) Observations() int { return len(t.obs) }

// Track is one reconstructed trajectory.
type Track struct {
	Pseudonyms []ieee1609.HashedID8
	First      sim.Time
	Last       sim.Time
	Points     int
}

// Duration reports the track's covered time span.
func (tr Track) Duration() sim.Duration { return tr.Last - tr.First }

// Reconstruct chains observations into tracks. Observations with the same
// certificate join the same track; a track whose pseudonym went quiet is
// extended by a *new* pseudonym's first observation when it appears within
// LinkWindow and LinkRadius of the track's last point.
func (t *Tracker) Reconstruct() []Track {
	sort.SliceStable(t.obs, func(i, j int) bool { return t.obs[i].at < t.obs[j].at })

	type liveTrack struct {
		track   Track
		lastPos Position
		lastAt  sim.Time
	}
	byCert := make(map[ieee1609.HashedID8]*liveTrack)
	var all []*liveTrack

	for _, o := range t.obs {
		if lt, ok := byCert[o.cert]; ok {
			lt.track.Points++
			lt.track.Last = o.at
			lt.lastPos = o.pos
			lt.lastAt = o.at
			continue
		}
		// New pseudonym: try to chain to a dormant track.
		var best *liveTrack
		bestDist := t.LinkRadius
		for _, lt := range all {
			if o.at-lt.lastAt > t.LinkWindow || o.at <= lt.lastAt {
				continue
			}
			if d := lt.lastPos.Dist(o.pos); d <= bestDist {
				best = lt
				bestDist = d
			}
		}
		if best != nil {
			best.track.Pseudonyms = append(best.track.Pseudonyms, o.cert)
			best.track.Points++
			best.track.Last = o.at
			best.lastPos = o.pos
			best.lastAt = o.at
			byCert[o.cert] = best
			continue
		}
		lt := &liveTrack{
			track:   Track{Pseudonyms: []ieee1609.HashedID8{o.cert}, First: o.at, Last: o.at, Points: 1},
			lastPos: o.pos,
			lastAt:  o.at,
		}
		byCert[o.cert] = lt
		all = append(all, lt)
	}

	out := make([]Track, 0, len(all))
	for _, lt := range all {
		out = append(out, lt.track)
	}
	return out
}

// LongestTrack returns the longest reconstructed track duration, or 0.
func (t *Tracker) LongestTrack() sim.Duration {
	var best sim.Duration
	for _, tr := range t.Reconstruct() {
		if d := tr.Duration(); d > best {
			best = d
		}
	}
	return best
}

// TrackingSuccess reports, for a vehicle observed over total duration
// observed, the fraction of that time covered by the tracker's single
// longest track — the E4 privacy metric. 1.0 means the vehicle was
// followed end to end despite pseudonym rotation.
func (t *Tracker) TrackingSuccess(observed sim.Duration) float64 {
	if observed <= 0 {
		return 0
	}
	frac := float64(t.LongestTrack()) / float64(observed)
	if frac > 1 {
		frac = 1
	}
	return frac
}
