package lin

import (
	"errors"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestPIDKnownValues(t *testing.T) {
	// Known LIN PID values (ID -> PID) from the LIN 2.1 specification
	// parity definition.
	cases := map[FrameID]byte{
		0x00: 0x80,
		0x01: 0xC1,
		0x02: 0x42,
		0x03: 0x03,
		0x3C: 0x3C, // master request diagnostic frame
		0x3D: 0x7D, // slave response diagnostic frame
	}
	for id, want := range cases {
		got, err := PID(id)
		if err != nil {
			t.Fatalf("PID(%#x): %v", id, err)
		}
		if got != want {
			t.Errorf("PID(%#x)=%#x, want %#x", id, got, want)
		}
	}
}

func TestPIDRange(t *testing.T) {
	if _, err := PID(0x40); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err=%v", err)
	}
}

// Property: CheckPID inverts PID for all valid IDs, and detects any
// single-bit corruption of the PID byte.
func TestPIDRoundTripAndParityProperty(t *testing.T) {
	for id := FrameID(0); id <= MaxFrameID; id++ {
		pid, err := PID(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckPID(pid)
		if err != nil || got != id {
			t.Fatalf("CheckPID(PID(%#x)) = %#x, %v", id, got, err)
		}
		for bit := uint(0); bit < 8; bit++ {
			bad := pid ^ 1<<bit
			if _, err := CheckPID(bad); err == nil {
				// Single bit flips in the ID bits change the ID, so the
				// parity must no longer match.
				t.Fatalf("ID %#x: flip of PID bit %d undetected", id, bit)
			}
		}
	}
}

func TestChecksumClassicVsEnhanced(t *testing.T) {
	pid, _ := PID(0x10)
	data := []byte{0x01, 0x02}
	classic := Checksum(Classic, pid, data)
	enhanced := Checksum(Enhanced, pid, data)
	if classic == enhanced {
		t.Fatal("classic and enhanced checksums should differ when PID != 0")
	}
	// Classic checksum of {0x01,0x02} = ^(3) = 0xFC.
	if classic != 0xFC {
		t.Fatalf("classic=%#x, want 0xFC", classic)
	}
}

func TestChecksumCarryWrap(t *testing.T) {
	// 0xFF + 0xFF = 0x1FE -> carry add -> 0xFF; inverted -> 0x00.
	got := Checksum(Classic, 0, []byte{0xFF, 0xFF})
	if got != 0x00 {
		t.Fatalf("carry checksum=%#x, want 0x00", got)
	}
}

// Property: any single bit flip in the data is detected by the checksum.
func TestChecksumDetectsBitFlipsProperty(t *testing.T) {
	f := func(data []byte, idx, bit uint8) bool {
		if len(data) == 0 || len(data) > 8 {
			return true
		}
		pid, _ := PID(0x20)
		cs := Checksum(Enhanced, pid, data)
		mut := append([]byte(nil), data...)
		mut[int(idx)%len(mut)] ^= 1 << (bit % 8)
		return !VerifyChecksum(Enhanced, pid, mut, cs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func newCluster(t *testing.T) (*sim.Kernel, *Cluster, *Slave, *Slave) {
	t.Helper()
	k := sim.NewKernel(1)
	c := NewCluster(k, "body", 19200, Enhanced)
	pub := NewSlave("window-switch")
	sub := NewSlave("window-motor")
	c.AddSlave(pub)
	c.AddSlave(sub)
	return k, c, pub, sub
}

func TestClusterPollDelivery(t *testing.T) {
	k, c, pub, sub := newCluster(t)
	if err := pub.Publish(0x10, func(sim.Time) []byte { return []byte{0x42} }); err != nil {
		t.Fatal(err)
	}
	var got []Frame
	sub.Subscribe(0x10, func(_ sim.Time, f Frame) { got = append(got, f) })
	c.SetSchedule([]ScheduleEntry{{ID: 0x10, Delay: 10 * sim.Millisecond}})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(95 * sim.Millisecond)
	c.Stop()
	if len(got) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(got))
	}
	for _, f := range got {
		if f.ID != 0x10 || len(f.Data) != 1 || f.Data[0] != 0x42 {
			t.Fatalf("bad frame %+v", f)
		}
	}
	if c.FramesOK.Value != 10 {
		t.Fatalf("FramesOK=%d", c.FramesOK.Value)
	}
}

func TestClusterNoPublisher(t *testing.T) {
	k, c, _, _ := newCluster(t)
	c.SetSchedule([]ScheduleEntry{{ID: 0x2A, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(25 * sim.Millisecond)
	c.Stop()
	if c.NoResponse.Value != 3 {
		t.Fatalf("NoResponse=%d, want 3", c.NoResponse.Value)
	}
}

func TestClusterNilResponse(t *testing.T) {
	k, c, pub, _ := newCluster(t)
	_ = pub.Publish(0x11, func(sim.Time) []byte { return nil })
	c.SetSchedule([]ScheduleEntry{{ID: 0x11, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(5 * sim.Millisecond)
	c.Stop()
	if c.NoResponse.Value == 0 {
		t.Fatal("nil response not counted")
	}
}

func TestClusterCorruptionCaughtByChecksum(t *testing.T) {
	k, c, pub, sub := newCluster(t)
	c.CorruptResponse = 1 // corrupt every response
	_ = pub.Publish(0x10, func(sim.Time) []byte { return []byte{1, 2, 3, 4} })
	delivered := 0
	sub.Subscribe(0x10, func(sim.Time, Frame) { delivered++ })
	c.SetSchedule([]ScheduleEntry{{ID: 0x10, Delay: 10 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(sim.Second)
	c.Stop()
	if delivered != 0 {
		t.Fatalf("%d corrupted frames delivered", delivered)
	}
	if c.ChecksumErrors.Value < 90 {
		t.Fatalf("ChecksumErrors=%d", c.ChecksumErrors.Value)
	}
}

func TestClusterObserver(t *testing.T) {
	k, c, pub, _ := newCluster(t)
	_ = pub.Publish(0x05, func(sim.Time) []byte { return []byte{9} })
	seen := 0
	c.Observe(func(sim.Time, Frame) { seen++ })
	c.SetSchedule([]ScheduleEntry{{ID: 0x05, Delay: 20 * sim.Millisecond}})
	_ = c.Start()
	_ = k.RunUntil(100 * sim.Millisecond)
	c.Stop()
	if seen < 4 {
		t.Fatalf("observer saw %d frames", seen)
	}
}

func TestDuplicatePublisherRejected(t *testing.T) {
	_, _, pub, _ := newCluster(t)
	_ = pub.Publish(0x10, func(sim.Time) []byte { return []byte{1} })
	if err := pub.Publish(0x10, func(sim.Time) []byte { return []byte{2} }); !errors.Is(err, ErrDupPublisher) {
		t.Fatalf("err=%v", err)
	}
}

func TestStartErrors(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCluster(k, "x", 19200, Classic)
	if err := c.Start(); err == nil {
		t.Fatal("Start with empty schedule succeeded")
	}
	c.SetSchedule([]ScheduleEntry{{ID: 1, Delay: sim.Millisecond}})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
}

func TestFrameTimeScalesWithLength(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCluster(k, "x", 19200, Classic)
	if c.FrameTime(8) <= c.FrameTime(1) {
		t.Fatal("8-byte frame not longer than 1-byte frame")
	}
	// 1-byte frame: 34+20=54 bits * 1.1 at 19200 -> ~3.1ms.
	ft := c.FrameTime(1)
	if ft < 2*sim.Millisecond || ft > 4*sim.Millisecond {
		t.Fatalf("FrameTime(1)=%v", ft)
	}
}
