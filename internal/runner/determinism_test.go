package runner

import (
	"context"
	"runtime"
	"testing"

	"autosec/internal/experiments"
)

// The tentpole guarantee: sharding the real experiment suite across a
// parallel pool changes nothing. Every per-seed table is bit-for-bit the
// table a serial run of that seed produces, and the aggregated tables are
// byte-identical between -par 1 and -par N.
func TestParallelReplicationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite replication in -short mode")
	}
	// Two seeds keep this affordable under -race: E15 alone is ~6s of
	// virtual verification workload per suite run.
	seeds := Seeds(1, 2)
	par := runtime.GOMAXPROCS(0)

	serialPerSeed, err := Replicate(context.Background(), experiments.All, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	parPerSeed, err := Replicate(context.Background(), experiments.All, seeds, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if len(serialPerSeed[i]) != len(parPerSeed[i]) {
			t.Fatalf("seed %d: %d tables serial vs %d parallel", seeds[i], len(serialPerSeed[i]), len(parPerSeed[i]))
		}
		for j := range serialPerSeed[i] {
			a, b := serialPerSeed[i][j].String(), parPerSeed[i][j].String()
			if a != b {
				t.Fatalf("seed %d experiment %s: serial and parallel replicates differ:\n--- serial\n%s\n--- parallel\n%s",
					seeds[i], serialPerSeed[i][j].ID, a, b)
			}
		}
	}

	serialAgg, err := Aggregate(serialPerSeed)
	if err != nil {
		t.Fatal(err)
	}
	parAgg, err := Aggregate(parPerSeed)
	if err != nil {
		t.Fatal(err)
	}
	for j := range serialAgg {
		a, b := serialAgg[j].String(), parAgg[j].String()
		if a != b {
			t.Fatalf("aggregated %s differs between par=1 and par=%d:\n--- par=1\n%s\n--- par=%d\n%s",
				serialAgg[j].ID, par, a, par, b)
		}
	}
}
