// Package obs is the sim-time observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms and probes keyed by
// "subsystem/name") plus an event tracer backed by a preallocated ring
// buffer that records typed spans and instants with sim.Time timestamps.
//
// The paper's 4+1 assurance architecture only works if each layer can
// account for what it saw and decided; obs is that evidence trail for the
// simulation: kernel dispatches, CAN transmissions, gateway verdicts, IDS
// alerts, SecOC verifications, OTA phases and keyless exchanges all land
// in one timeline, exportable as Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto) and as a plain-text timeline, while the
// registry snapshot renders through experiments.Table.
//
// Design constraints, in order:
//
//   - Disabled must be free. Instrumented packages hold a nil *Tracer (or
//     nil *Counter / *Histogram) and the emit methods are nil-receiver
//     no-ops, so the disabled hot path costs one predictable branch and
//     zero allocations — TestKernelSteadyStateAllocs still pins 0
//     allocs/event with obs off.
//   - Enabled must not allocate per event after warm-up. Events are
//     fixed-size values written into a preallocated power-of-two ring;
//     all strings are interned once into Labels (uint32 handles), so the
//     steady state touches no allocator (TestTracerSteadyStateAllocs).
//   - Deterministic. Emission order follows simulation order, label ids
//     follow interning order, and the exporters iterate the ring in
//     order, so the same seed produces byte-identical exports.
//
// The tracer and registry are NOT goroutine-safe: one instance belongs to
// one simulation (one kernel), matching the replication model where every
// seed runs on its own kernel.
package obs

import (
	"autosec/internal/sim"
)

// Label is an interned string handle. Label 0 is the empty string and
// doubles as "no label".
type Label uint32

// Kind discriminates event shapes.
type Kind uint8

const (
	// Instant is a point event (Chrome ph "i").
	Instant Kind = iota
	// Span is a duration event (Chrome ph "X"): At is the start, Dur the
	// length.
	Span
)

// Event is one fixed-size trace record. Sub names the emitting subsystem
// ("kernel", "can", "gateway", ...), Name the event type or verdict, Str
// carries an optional interned string payload (sender, bus, reason), and
// Arg1/Arg2 carry numeric payload (frame id, bit count, pending events).
type Event struct {
	At   sim.Time
	Dur  sim.Duration
	Sub  Label
	Name Label
	Str  Label
	Arg1 int64
	Arg2 int64
	Kind Kind
}

// Tracer records events into a preallocated ring buffer. Once the ring is
// full the oldest events are overwritten (Dropped reports how many); the
// retained window is always the most recent events in order.
//
// The zero Tracer is not usable; construct with NewTracer. A nil *Tracer
// is valid everywhere and drops everything — that is the disabled state.
type Tracer struct {
	ring []Event
	mask uint64
	n    uint64 // total events emitted

	labels []string
	ids    map[string]Label

	// Pre-interned labels for the kernel dispatch hook, so the hottest
	// emit path performs no map lookups at all.
	lblKernel   Label
	lblDispatch Label
}

// DefaultCapacity is the ring size used when NewTracer is given n <= 0.
const DefaultCapacity = 1 << 14

// NewTracer creates a tracer whose ring retains the last n events
// (rounded up to a power of two; n <= 0 means DefaultCapacity).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	capacity := 1
	for capacity < n {
		capacity <<= 1
	}
	t := &Tracer{
		ring:   make([]Event, capacity),
		mask:   uint64(capacity - 1),
		labels: make([]string, 1, 64), // labels[0] = ""
		ids:    map[string]Label{"": 0},
	}
	t.lblKernel = t.Label("kernel")
	t.lblDispatch = t.Label("dispatch")
	return t
}

// Label interns s and returns its handle. Interning a new string
// allocates; re-interning is a map lookup. Hot paths should intern their
// labels once at instrumentation time and pass the handles to Instant and
// Span.
func (t *Tracer) Label(s string) Label {
	if t == nil {
		return 0
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := Label(len(t.labels))
	t.labels = append(t.labels, s)
	t.ids[s] = id
	return id
}

// LabelString resolves a handle back to its string.
func (t *Tracer) LabelString(l Label) string {
	if t == nil || int(l) >= len(t.labels) {
		return ""
	}
	return t.labels[l]
}

// Instant records a point event. No-op on a nil tracer.
func (t *Tracer) Instant(at sim.Time, sub, name, str Label, arg1, arg2 int64) {
	if t == nil {
		return
	}
	t.ring[t.n&t.mask] = Event{At: at, Kind: Instant, Sub: sub, Name: name, Str: str, Arg1: arg1, Arg2: arg2}
	t.n++
}

// Span records a duration event starting at start. No-op on a nil tracer.
func (t *Tracer) Span(start sim.Time, dur sim.Duration, sub, name, str Label, arg1, arg2 int64) {
	if t == nil {
		return
	}
	t.ring[t.n&t.mask] = Event{At: start, Dur: dur, Kind: Span, Sub: sub, Name: name, Str: str, Arg1: arg1, Arg2: arg2}
	t.n++
}

// KernelDispatch implements sim.TraceSink: one instant per dispatched
// kernel event, with the post-dispatch pending count as Arg1.
func (t *Tracer) KernelDispatch(at sim.Time, pending int) {
	if t == nil {
		return
	}
	t.ring[t.n&t.mask] = Event{At: at, Kind: Instant, Sub: t.lblKernel, Name: t.lblDispatch, Arg1: int64(pending)}
	t.n++
}

// Total reports how many events were ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Len reports how many events the ring currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.ring)) {
		return int(t.n)
	}
	return len(t.ring)
}

// Dropped reports how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.ring)) {
		return 0
	}
	return t.n - uint64(len(t.ring))
}

// Events returns the retained events in emission order. It allocates a
// fresh slice; call it from export paths, not hot paths.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	if t.n <= uint64(len(t.ring)) {
		out := make([]Event, t.n)
		copy(out, t.ring[:t.n])
		return out
	}
	head := t.n & t.mask
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[head:]...)
	return append(out, t.ring[:head]...)
}

// Reset discards all recorded events but keeps the interned labels, so a
// warmed-up tracer can be reused without re-warming the label table.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.n = 0
}

// ResetAll discards the recorded events AND the interned label table,
// restoring the tracer to its post-NewTracer state (only "", "kernel"
// and "dispatch" remain interned). Use it when recycling one tracer
// across independent captures whose exported bytes must not depend on
// each other: label ids leak into the Chrome trace output (they are the
// tid values), so a plain Reset would make a capture's bytes depend on
// every capture that warmed the table before it. The ring and the label
// backing arrays are retained, so steady-state recycling re-interns into
// existing capacity.
func (t *Tracer) ResetAll() {
	if t == nil {
		return
	}
	t.n = 0
	const retained = 3 // "", "kernel", "dispatch"
	if len(t.labels) <= retained {
		return
	}
	for _, s := range t.labels[retained:] {
		delete(t.ids, s)
	}
	for i := retained; i < len(t.labels); i++ {
		t.labels[i] = ""
	}
	t.labels = t.labels[:retained]
}
