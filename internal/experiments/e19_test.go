package experiments

import "testing"

// TestE19ParallelMatchesSerial pins the acceptance criterion directly on
// the experiment artifact: the E19 table rendered from a multi-worker run
// is byte-identical to the serial reference run (the one the golden file
// captures). Run under -race to also certify the synchronization.
func TestE19ParallelMatchesSerial(t *testing.T) {
	zones := []int{2, 4, 8, 16}
	if testing.Short() {
		zones = []int{2, 4}
	}
	want := E19KernelParWith(1, zones, 1).String()
	for _, workers := range []int{2, 8} {
		got := E19KernelParWith(1, zones, workers).String()
		if got != want {
			t.Fatalf("workers=%d table diverged from serial:\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
