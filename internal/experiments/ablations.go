package experiments

import (
	"fmt"

	"autosec/internal/keyless"
	"autosec/internal/secoc"
	"autosec/internal/sim"
)

// A1MACTruncation is the ablation DESIGN.md attaches to E7: how wide
// should the truncated MAC on authenticated CAN be? Every byte of MAC
// steals a byte of payload from the 8-byte frame, so the sweep exposes
// the paper's optimization-versus-security trade at the wire level.
func A1MACTruncation(seed uint64) *Table {
	_ = seed
	t := &Table{
		ID:      "A1",
		Title:   "SecOC MAC truncation: payload cost vs forgery resistance (ablation of E7)",
		Claim:   "security mechanisms compete with payload and real-time budgets on byte-constrained IVNs (§6)",
		Columns: []string{"MAC bits", "trailer bytes", "payload left of 8", "forge probability", "expected forgeries to win", "verified ok"},
	}
	var key [16]byte
	copy(key[:], "a1-ablation-key!")
	for _, macBits := range []int{8, 16, 24, 32, 48, 64} {
		cfg := secoc.Config{DataID: 0x0A1, FreshnessBits: 8, MACBits: macBits}
		s, err := secoc.NewSender(cfg, secoc.KeyMAC(key))
		if err != nil {
			panic(err)
		}
		r, err := secoc.NewReceiver(cfg, secoc.KeyMAC(key))
		if err != nil {
			panic(err)
		}
		// Functional check: the channel actually round-trips at this width
		// with whatever payload still fits.
		payloadLeft := 8 - cfg.Overhead()
		ok := "n/a"
		if payloadLeft > 0 {
			pdu, err := s.Protect(make([]byte, payloadLeft))
			if err == nil {
				if _, err = r.Verify(pdu); err == nil {
					ok = "yes"
				} else {
					ok = "no"
				}
			}
		} else {
			ok = "does not fit"
		}
		t.AddRow(macBits, cfg.Overhead(), payloadLeft,
			fmt.Sprintf("2^-%d", macBits),
			fmt.Sprintf("%.3g", 1/cfg.ForgeProbability()),
			ok)
	}
	return t
}

// A2BoundingThreshold is the ablation DESIGN.md attaches to E9: sweep the
// distance-bounding RTT budget against (a) a legitimate fob with jittery
// processing time and (b) relay rigs of decreasing latency, measuring the
// false-reject/attack-accept trade the defender must tune.
func A2BoundingThreshold(seed uint64) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Distance-bounding RTT budget: owner false rejects vs relay accepts (ablation of E9)",
		Claim:   "countermeasures must balance usability against the strongest realistic relay (§4.3)",
		Columns: []string{"RTT budget over nominal", "owner accept rate", "10us-relay accept", "1us-relay accept", "0-latency relay accept"},
	}
	var key [16]byte
	copy(key[:], "a2-ablation-key!")
	rng := sim.NewStream(seed, "a2.jitter")

	const trials = 200
	nominal := 2 * sim.Millisecond // fob processing at its datasheet value
	for _, slack := range []sim.Duration{100 * sim.Nanosecond, 1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond, sim.Millisecond} {
		budget := nominal + slack

		// (a) Owner at 1m, fob processing jittered ±0.2% (clock tolerance).
		ownerOK := 0
		for i := 0; i < trials; i++ {
			car := keyless.NewCar(key)
			car.DistanceBounding = true
			car.RTTBudget = budget
			fob := keyless.NewFob(key)
			fob.Pos = keyless.Position{X: 1}
			fob.ProcessingTime = rng.Jitter(nominal, 0.002)
			if _, err := car.TryUnlock(fob); err == nil {
				ownerOK++
			}
		}

		// (b) Relay rigs at 60m with decreasing latency.
		relayAccept := func(latency sim.Duration) string {
			car := keyless.NewCar(key)
			car.DistanceBounding = true
			car.RTTBudget = budget
			fob := keyless.NewFob(key)
			fob.Pos = keyless.Position{X: 60}
			fob.ProcessingTime = nominal
			relay := &keyless.Relay{
				PosA: keyless.Position{X: 1}, PosB: keyless.Position{X: 59.5},
				Latency: latency,
			}
			if _, err := car.TryRelayUnlock(relay, fob); err == nil {
				return "UNLOCKS"
			}
			return "blocked"
		}

		t.AddRow(slack.String(), float64(ownerOK)/trials,
			relayAccept(10*sim.Microsecond),
			relayAccept(sim.Microsecond),
			relayAccept(0))
	}
	return t
}
