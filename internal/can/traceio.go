package can

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"autosec/internal/sim"
)

// Text trace interchange format, one frame per line:
//
//	<seconds> <sender> <hex-id> <hex-payload|-> [flags]
//
// e.g. "0.010000 engine 0C0 DEADBEEF" or "1.200000 atk 1FFFFFFF - EXT".
// Flags: EXT (extended id), RTR, FD, BRS, ERR (corrupted). This is the
// format cmd/canalyze reads and the Recorder-backed tools write.

// WriteTrace emits the trace in the text format.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		payload := "-"
		if len(r.Frame.Data) > 0 {
			payload = strings.ToUpper(hex.EncodeToString(r.Frame.Data))
		}
		var flags []string
		if r.Frame.Extended {
			flags = append(flags, "EXT")
		}
		if r.Frame.Remote {
			flags = append(flags, "RTR")
		}
		if r.Frame.FD {
			flags = append(flags, "FD")
		}
		if r.Frame.BRS {
			flags = append(flags, "BRS")
		}
		if r.Corrupted {
			flags = append(flags, "ERR")
		}
		sender := r.Sender
		if sender == "" {
			sender = "?"
		}
		if _, err := fmt.Fprintf(bw, "%.9f %s %X %s %s\n",
			r.At.Seconds(), sender, uint32(r.Frame.ID), payload, strings.Join(flags, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTrace reads the text format back into a Trace. Blank lines and
// lines starting with '#' are skipped.
func ParseTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("can: trace line %d: want ≥4 fields, got %d", lineNo, len(fields))
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("can: trace line %d: time: %v", lineNo, err)
		}
		id64, err := strconv.ParseUint(fields[2], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("can: trace line %d: id: %v", lineNo, err)
		}
		rec := Record{
			At:     sim.Time(secs * float64(sim.Second)),
			Sender: fields[1],
			Frame:  Frame{ID: ID(id64)},
		}
		if fields[3] != "-" {
			data, err := hex.DecodeString(fields[3])
			if err != nil {
				return nil, fmt.Errorf("can: trace line %d: payload: %v", lineNo, err)
			}
			rec.Frame.Data = data
		}
		if len(fields) >= 5 {
			for _, fl := range strings.Split(fields[4], ",") {
				switch fl {
				case "EXT":
					rec.Frame.Extended = true
				case "RTR":
					rec.Frame.Remote = true
				case "FD":
					rec.Frame.FD = true
				case "BRS":
					rec.Frame.BRS = true
				case "ERR":
					rec.Corrupted = true
				case "":
				default:
					return nil, fmt.Errorf("can: trace line %d: unknown flag %q", lineNo, fl)
				}
			}
		}
		if err := rec.Frame.Validate(); err != nil {
			return nil, fmt.Errorf("can: trace line %d: %v", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	return t, sc.Err()
}
