package verif

import "testing"

func BenchmarkGreedyPairwise(b *testing.B) {
	fs := []Feature{
		{Name: "a", Options: 4}, {Name: "b", Options: 3},
		{Name: "c", Options: 4}, {Name: "d", Options: 3},
		{Name: "e", Options: 4}, {Name: "f", Options: 2},
		{Name: "g", Options: 3}, {Name: "h", Options: 3},
	}
	s := &Space{Features: fs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.GreedyPairwise(uint64(i))
		if !s.CoversAllPairs(rows) {
			b.Fatal("incomplete coverage")
		}
	}
}
