// compare.go implements benchreport -compare: the perf regression gate
// against a committed BENCH_PRn.json baseline. Three families of checks:
//
//  1. Experiment tables: every experiment pinned in the baseline is
//     re-run and its rendered-table SHA-256 must match byte for byte —
//     reproducibility is the repo contract, so a hash drift is always a
//     failure, never a tolerance. Wall-clock is additionally gated for
//     macro experiments (baseline >= 1s, where 15% is signal rather than
//     scheduler noise): slower than 1.15x baseline fails.
//  2. Fleet microbenchmark probes: the fleet drive with observability
//     off, with the metrics plane on, and the registry merge point are
//     re-measured in-process via testing.Benchmark. Probes named in the
//     baseline's "microbenchmarks" block are held to the same 15% ns
//     tolerance, and any allocs/op increase is a hard failure.
//  3. Standing gates independent of the baseline: the metrics-plane
//     overhead ratio (obs/off) must stay under 1.10, and the merge probe
//     must stay at 0 allocs/op.
//
// Committed baselines are generated at seed 1; run -compare without
// -seed (or with -seed 1) or the hash checks are skipped with a warning.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/experiments"
	"autosec/internal/fleet"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/ota"
	"autosec/internal/sim"
)

// idRunner pairs an experiment id with its table generator; main builds
// the list (with any sweep overrides from flags) and compare re-runs the
// subset the baseline pins.
type idRunner struct {
	id  string
	run func(uint64) *experiments.Table
}

// comparedExperiment is one pinned experiment in a baseline file.
type comparedExperiment struct {
	NS   int64  `json:"ns"`
	Hash string `json:"table_sha256"`
}

// comparedMicro is one pinned microbenchmark in a baseline file. Only
// probes compare knows how to regenerate (the Benchmark* names below)
// participate; others are reported as skipped.
type comparedMicro struct {
	NSPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// comparisonBaseline is the subset of a BENCH_PRn.json compare reads.
// The experiments block appears in two historical shapes — the
// hand-annotated map of BENCH_PR7.json and the -json array of
// BENCH_PR2.json — so it is decoded leniently from raw messages.
type comparisonBaseline struct {
	PR              int                           `json:"pr"`
	RawExperiments  json.RawMessage               `json:"experiments"`
	Microbenchmarks map[string]comparedMicro      `json:"microbenchmarks"`
	experiments     map[string]comparedExperiment `json:"-"`
}

// loadBaseline parses path and normalizes the experiments block.
func loadBaseline(path string) (*comparisonBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b comparisonBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	b.experiments = map[string]comparedExperiment{}
	if len(b.RawExperiments) == 0 {
		return &b, nil
	}
	if err := json.Unmarshal(b.RawExperiments, &b.experiments); err == nil {
		return &b, nil
	}
	var list []struct {
		ID   string `json:"id"`
		NS   int64  `json:"ns"`
		Hash string `json:"table_sha256"`
	}
	if err := json.Unmarshal(b.RawExperiments, &list); err != nil {
		return nil, fmt.Errorf("%s: experiments block is neither a map nor a list: %w", path, err)
	}
	for _, e := range list {
		b.experiments[e.ID] = comparedExperiment{NS: e.NS, Hash: e.Hash}
	}
	return &b, nil
}

// nsTolerance is the macro wall-clock regression budget: slower than
// 1.15x the pinned nanoseconds fails the gate.
const nsTolerance = 1.15

// macroNS is the baseline duration below which ns comparison is
// informational only — sub-second experiments move more than 15% from
// scheduler noise alone on shared CI runners.
const macroNS = int64(time.Second)

// obsOverheadBudget is the acceptance gate from the observability plane:
// the fleet drive with merged metrics must stay under 10% over the
// disabled path.
const obsOverheadBudget = 1.10

// campaignMemoSpeedup is the acceptance floor from the campaign engine:
// the memoized per-vehicle verify (warm VerifyCache, signatures and
// attestation already proven for this campaign) must be at least this
// many times faster than the cold path that runs ed25519 per poll.
const campaignMemoSpeedup = 10.0

// runCompare executes the gate and returns the process exit code.
func runCompare(path string, seed uint64, runners []idRunner) int {
	base, err := loadBaseline(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: -compare: %v\n", err)
		return 1
	}
	fmt.Printf("compare vs %s (PR %d baseline)\n\n", path, base.PR)
	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("  FAIL  "+format+"\n", args...)
	}
	ok := func(format string, args ...any) {
		fmt.Printf("  ok    "+format+"\n", args...)
	}
	skip := func(format string, args ...any) {
		fmt.Printf("  skip  "+format+"\n", args...)
	}

	byID := map[string]func(uint64) *experiments.Table{}
	for _, r := range runners {
		byID[r.id] = r.run
	}
	ids := make([]string, 0, len(base.experiments))
	for id := range base.experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pin := base.experiments[id]
		run, found := byID[id]
		if !found {
			skip("%s: no such experiment in this build", id)
			continue
		}
		start := time.Now()
		rendered := run(seed).String()
		elapsed := time.Since(start)
		hash := fmt.Sprintf("%x", sha256.Sum256([]byte(rendered)))
		switch {
		case pin.Hash == "":
			skip("%s: baseline pins no table hash", id)
		case seed != 1:
			skip("%s: hash check needs -seed 1 (baselines are generated at seed 1)", id)
		case hash != pin.Hash:
			fail("%s: table hash %s != pinned %s (output drifted)", id, hash[:12], pin.Hash[:12])
		default:
			ok("%s: table hash matches (%s)", id, hash[:12])
		}
		switch {
		case pin.NS <= 0:
			// nothing pinned
		case pin.NS < macroNS:
			ok("%s: %v vs pinned %v (sub-second: informational)", id,
				elapsed.Round(time.Millisecond), time.Duration(pin.NS).Round(time.Millisecond))
		case float64(elapsed.Nanoseconds()) > nsTolerance*float64(pin.NS):
			fail("%s: %v vs pinned %v (> %.0f%% slower)", id,
				elapsed.Round(time.Millisecond), time.Duration(pin.NS).Round(time.Millisecond),
				100*(nsTolerance-1))
		default:
			ok("%s: %v vs pinned %v (within %.0f%%)", id,
				elapsed.Round(time.Millisecond), time.Duration(pin.NS).Round(time.Millisecond),
				100*(nsTolerance-1))
		}
	}

	fmt.Println()
	off := benchBest(3, probeFleetDrive)
	obsOn := benchBest(3, probeFleetDriveObs)
	merge := benchBest(2, probeFleetMerge)
	idsBase := benchBest(2, probeIDSObserveBaseline)
	idsMedium := benchBest(2, probeIDSObserveMediumAware)
	verifyCold := benchBest(2, probeCampaignVerifyCold)
	verifyMemo := benchBest(3, probeCampaignVerifyMemoized)
	probes := []struct {
		name string
		res  testing.BenchmarkResult
	}{
		{"BenchmarkFleetVehiclesPerSec", off},
		{"BenchmarkFleetVehiclesPerSecObs", obsOn},
		{"BenchmarkFleetRegistryMerge", merge},
		{"BenchmarkIDSObserveBaseline", idsBase},
		{"BenchmarkIDSObserveMediumAware", idsMedium},
		{"BenchmarkCampaignVerifyThroughputCold", verifyCold},
		{"BenchmarkCampaignVerifyThroughputMemoized", verifyMemo},
	}
	for _, p := range probes {
		pin, pinned := base.Microbenchmarks[p.name]
		ns, allocs := float64(p.res.NsPerOp()), float64(p.res.AllocsPerOp())
		if !pinned {
			ok("%s: %.0f ns/op, %.0f allocs/op (no baseline pin)", p.name, ns, allocs)
			continue
		}
		if pin.NSPerOp > 0 && ns > nsTolerance*pin.NSPerOp {
			fail("%s: %.0f ns/op vs pinned %.0f (> %.0f%% slower)", p.name, ns, pin.NSPerOp, 100*(nsTolerance-1))
		} else {
			ok("%s: %.0f ns/op vs pinned %.0f", p.name, ns, pin.NSPerOp)
		}
		if allocs > pin.AllocsPerOp {
			fail("%s: %.0f allocs/op vs pinned %.0f (allocation regression is a hard failure)",
				p.name, allocs, pin.AllocsPerOp)
		}
	}

	ratio := float64(obsOn.NsPerOp()) / float64(off.NsPerOp())
	if ratio > obsOverheadBudget {
		fail("metrics-plane overhead: obs/off = %.3fx (budget %.2fx)", ratio, obsOverheadBudget)
	} else {
		ok("metrics-plane overhead: obs/off = %.3fx (budget %.2fx)", ratio, obsOverheadBudget)
	}
	if a := merge.AllocsPerOp(); a != 0 {
		fail("registry merge point: %d allocs/op (must be 0 in steady state)", a)
	} else {
		ok("registry merge point: 0 allocs/op")
	}
	for _, p := range []struct {
		name string
		res  testing.BenchmarkResult
	}{{"baseline", idsBase}, {"medium-aware", idsMedium}} {
		if a := p.res.AllocsPerOp(); a != 0 {
			fail("ids observe hot path (%s): %d allocs/op (must be 0 in steady state)", p.name, a)
		} else {
			ok("ids observe hot path (%s): 0 allocs/op", p.name)
		}
	}
	if a := verifyMemo.AllocsPerOp(); a != 0 {
		fail("campaign memoized verify: %d allocs/op (must be 0 on the hot path)", a)
	} else {
		ok("campaign memoized verify: 0 allocs/op")
	}
	speedup := float64(verifyCold.NsPerOp()) / float64(verifyMemo.NsPerOp())
	if speedup < campaignMemoSpeedup {
		fail("campaign verify memoization: %.1fx over cold (floor %.0fx)", speedup, campaignMemoSpeedup)
	} else {
		ok("campaign verify memoization: %.1fx over cold (floor %.0fx)", speedup, campaignMemoSpeedup)
	}

	fmt.Println()
	if failures > 0 {
		fmt.Printf("FAIL: %d regression(s) vs %s\n", failures, path)
		return 1
	}
	fmt.Printf("PASS: no regressions vs %s\n", path)
	return 0
}

// benchBest runs f through testing.Benchmark rounds times and keeps the
// fastest result — single-shot wall-clock on a shared runner is too
// noisy to gate on directly.
func benchBest(rounds int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < rounds; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// compareCfg mirrors the fleet benchmark topology: two zones plus a
// local body CAN domain.
func compareCfg() core.Config {
	return core.Config{VIN: "COMPARE-FLEET", Seed: 1, Zonal: &core.ZonalConfig{
		Zones:        2,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
}

// compareVehicle is one probe vehicle's scenario, shaped like the
// internal/fleet benchmark scenario the overhead gate is defined on:
// periodic infotainment traffic crossing the zonal backbone into the
// powertrain, quarantine reflex on a subset of vehicles, 4ms virtual so
// testing.B can scale the fleet size. Matching that per-vehicle weight
// matters — a lighter scenario inflates the fixed observability cost
// into a larger ratio than the one the acceptance gate pins.
func compareVehicle(idx int, v *core.Vehicle) (int, error) {
	k := v.Kernel
	v.Zonal.SetRules([]*gateway.Rule{{
		Name: "probe", From: core.DomainInfotainment, To: []string{core.DomainPowertrain},
		IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow,
	}})
	tx := can.NewController("probe-ecu")
	v.Buses[core.DomainInfotainment].Attach(tx)
	st := k.Stream("compare-probe")
	k.Every(st.Duration(100*sim.Microsecond, sim.Millisecond), 500*sim.Microsecond, func() {
		_ = tx.Send(can.Frame{ID: can.ID(0x100 + idx%8), Data: []byte{byte(idx)}}, nil)
	})
	if idx%7 == 3 {
		k.At(2*sim.Millisecond, func() {
			_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
		})
	}
	return 0, k.RunUntil(4 * sim.Millisecond)
}

// probeFleetDrive measures the fleet drive with observability off; b.N
// is the fleet size, so ns/op is per-vehicle cost.
func probeFleetDrive(b *testing.B) {
	b.ReportAllocs()
	if _, err := fleet.Drive(context.Background(), fleet.Driver{Cfg: compareCfg(), N: b.N}, compareVehicle); err != nil {
		b.Fatal(err)
	}
}

// probeFleetDriveObs is probeFleetDrive with the metrics plane on — the
// numerator of the overhead gate.
func probeFleetDriveObs(b *testing.B) {
	b.ReportAllocs()
	_, res, err := fleet.DriveObs(context.Background(), fleet.Driver{Cfg: compareCfg(), N: b.N},
		fleet.ObsOptions{Metrics: true}, compareVehicle)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Registry.Snapshot()) == 0 {
		b.Fatal("metrics plane produced an empty fleet registry")
	}
}

// idsProbeRecord builds one fabric record for the observe-path probes.
func idsProbeRecord(at sim.Time, medium netif.Kind, id uint32, sender string, n int) netif.Record {
	return netif.Record{At: at, Frame: netif.Frame{
		Medium: medium, ID: id, Sender: sender,
		Src: netif.HWAddr{0x02, 0, 0, 0, 0, 0x51}, Aux: 1, Payload: make([]byte, n),
	}}
}

// idsProbeEngine returns a suite engine trained on a small mixed-media
// trace, plus conforming steady-state records — the same shape as the
// internal/ids observe benchmarks the alloc gate mirrors.
func idsProbeEngine(s ids.Suite) (*ids.Engine, []netif.Record) {
	e := ids.NewEngineFromSuite(s)
	var train []netif.Record
	for i := 0; i < 8; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		train = append(train, idsProbeRecord(at, netif.FlexRay, 9, "steer-ecu", 8))
	}
	for round := 0; round < 4; round++ {
		for i, id := range []uint32{0x10, 0x11, 0x21, 0x30} {
			at := sim.Time(round*40+i*10) * sim.Millisecond
			train = append(train, idsProbeRecord(at, netif.LIN, id, "slave", 2))
		}
	}
	for i := 0; i < 8; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		train = append(train, idsProbeRecord(at, netif.Ethernet, 0x88B6, "", 8))
	}
	e.Train(&netif.Trace{Records: train})
	recs := []netif.Record{
		idsProbeRecord(0, netif.FlexRay, 9, "steer-ecu", 8),
		idsProbeRecord(0, netif.LIN, 0x10, "slave", 2),
		idsProbeRecord(0, netif.LIN, 0x11, "slave", 2),
		idsProbeRecord(0, netif.LIN, 0x21, "slave", 2),
		idsProbeRecord(0, netif.LIN, 0x30, "slave", 2),
		idsProbeRecord(0, netif.Ethernet, 0x88B6, "", 8),
	}
	for i := range recs {
		e.Observe(recs[i]) // settle window/interval state
	}
	return e, recs
}

// probeIDSObserve measures the trained observe hot path; the standing
// gate requires 0 allocs/op for both suites.
func probeIDSObserve(b *testing.B, s ids.Suite) {
	e, recs := idsProbeEngine(s)
	var at sim.Time = 10 * sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		r.At = at
		e.Observe(r)
		at += 5 * sim.Millisecond
	}
}

func probeIDSObserveBaseline(b *testing.B)    { probeIDSObserve(b, ids.BaselineSuite()) }
func probeIDSObserveMediumAware(b *testing.B) { probeIDSObserve(b, ids.MediumAwareSuite()) }

// campaignProbeFixture builds the same group-addressed bundle the
// internal/ota campaign benchmarks use: a director+image pair signing a
// single brake-firmware target for one model line. The vehicle is left
// one ApplyCached short of steady state so the cold probe installs and
// the memoized probe re-polls.
func campaignProbeFixture(b *testing.B) (*ota.Bundle, *ota.Client, *ota.VerifyCache) {
	b.Helper()
	d, err := ota.NewRepository("director")
	if err != nil {
		b.Fatal(err)
	}
	im, err := ota.NewRepository("image")
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("brake firmware v2 image bytes ........")
	target := ota.MakeTarget("brake-fw", 2, "brake-mcu-r2", payload)
	bundle := &ota.Bundle{
		Director: d.Sign("model-S", []ota.Target{target}, sim.Hour),
		Image:    im.Sign("", []ota.Target{target}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": payload},
	}
	c := ota.NewClient("VIN-probe", d.PublicKey(), im.PublicKey())
	c.Group = "model-S"
	c.AddECU("brake-mcu-r2", 1)
	return bundle, c, ota.NewVerifyCache()
}

// probeCampaignVerifyCold measures the per-poll cost with a fresh cache
// every iteration — every signature runs through ed25519 and the
// attestation is rebuilt, the pre-memoization fleet cost.
func probeCampaignVerifyCold(b *testing.B) {
	bundle, c, _ := campaignProbeFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := ota.NewVerifyCache()
		if err := c.ApplyCached(bundle, sim.Minute, cold); err != nil && !errors.Is(err, ota.ErrNoUpdate) {
			b.Fatal(err)
		}
	}
}

// probeCampaignVerifyMemoized measures the steady-state campaign
// check-in: warm cache, every proof memoized. The standing gates pin
// this at 0 allocs/op and >= campaignMemoSpeedup over the cold probe.
func probeCampaignVerifyMemoized(b *testing.B) {
	bundle, c, vc := campaignProbeFixture(b)
	if err := c.ApplyCached(bundle, sim.Minute, vc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ApplyCached(bundle, sim.Minute, vc); !errors.Is(err, ota.ErrNoUpdate) {
			b.Fatal(err)
		}
	}
}

// probeFleetMerge isolates the merge point: folding one materialized
// per-vehicle registry into a warm fleet registry, the exact per-vehicle
// operation at the drive barrier. Steady state must be allocation-free.
func probeFleetMerge(b *testing.B) {
	pool := core.NewVehiclePool(compareCfg())
	v, err := pool.Acquire(fleet.VehicleSeed(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	shard := obs.NewRegistry()
	v.Instrument(nil, shard)
	if _, err := compareVehicle(0, v); err != nil {
		b.Fatal(err)
	}
	shard.Materialize()
	pool.Release(v)
	fleetReg := obs.NewRegistry()
	if err := fleetReg.Merge(shard); err != nil { // warm-up creates the keys
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleetReg.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}
