package audit

import (
	"errors"
	"testing"
	"testing/quick"

	"autosec/internal/she"
	"autosec/internal/sim"
)

func sheSealer(t *testing.T) func([]byte) ([]byte, error) {
	t.Helper()
	var uid she.UID
	e := she.NewEngine(uid)
	var key [16]byte
	copy(key[:], "audit-seal-key-1")
	if err := e.ProvisionKey(she.Key7, key, she.Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	return func(msg []byte) ([]byte, error) { return e.GenerateMAC(she.Key7, msg) }
}

func populated(t *testing.T) *Log {
	t.Helper()
	l := New(sheSealer(t))
	events := []struct {
		src, ev string
	}{
		{"gateway", "deny:default id=0x7DF from=infotainment"},
		{"ids", "frequency rate high id=0x0C0"},
		{"gateway", "quarantine infotainment"},
		{"uds", "security access unlocked level=1"},
		{"ota", "campaign brake-fw v2 installed"},
	}
	for i, e := range events {
		l.Append(sim.Time(i)*sim.Second, e.src, e.ev)
	}
	return l
}

func TestChainVerifiesWhenIntact(t *testing.T) {
	l := populated(t)
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("len=%d", l.Len())
	}
}

func TestChainDetectsEdit(t *testing.T) {
	l := populated(t)
	l.TamperWith(2, "nothing happened here")
	if err := l.VerifyChain(); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainDetectsDeletionInMiddle(t *testing.T) {
	l := populated(t)
	// Remove entry 1 by splicing — the classic "clean the IDS alert".
	l.entries = append(l.entries[:1], l.entries[2:]...)
	if err := l.VerifyChain(); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainAloneMissesTruncation(t *testing.T) {
	// Dropping the newest entries leaves a valid (shorter) chain: this is
	// exactly the gap seals close.
	l := populated(t)
	l.Truncate(3)
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("truncated chain should still verify: %v", err)
	}
}

func TestSealsCatchTruncation(t *testing.T) {
	l := populated(t)
	if err := l.SealNow(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifySeals(); err != nil {
		t.Fatal(err)
	}
	l.Truncate(3)
	if err := l.VerifySeals(); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("truncation not caught: %v", err)
	}
}

func TestSealsCatchEditBehindSeal(t *testing.T) {
	l := populated(t)
	_ = l.SealNow(10 * sim.Second)
	l.TamperWith(0, "benign")
	// The chain breaks first; but even a consistently rewritten chain
	// (attacker recomputes hashes) fails the seal because the head moved.
	for i := range l.entries {
		var prev [32]byte
		if i > 0 {
			prev = l.entries[i-1].hash
		}
		l.entries[i].prev = prev
		l.entries[i].hash = computeHash(prev, l.entries[i].At, l.entries[i].Source, l.entries[i].Event)
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("recomputed chain should self-verify: %v", err)
	}
	if err := l.VerifySeals(); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("rewritten history passed the seal: %v", err)
	}
}

func TestMultipleSeals(t *testing.T) {
	l := populated(t)
	_ = l.SealNow(10 * sim.Second)
	l.Append(11*sim.Second, "ids", "another alert")
	_ = l.SealNow(12 * sim.Second)
	if len(l.Seals()) != 2 {
		t.Fatalf("seals=%d", len(l.Seals()))
	}
	if err := l.VerifySeals(); err != nil {
		t.Fatal(err)
	}
}

func TestNoSealerErrors(t *testing.T) {
	l := New(nil)
	l.Append(0, "x", "y")
	if err := l.SealNow(0); !errors.Is(err, ErrNoSealer) {
		t.Fatalf("err=%v", err)
	}
	if err := l.VerifySeals(); !errors.Is(err, ErrNoSealer) {
		t.Fatalf("err=%v", err)
	}
	// Chain verification still works without a sealer.
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyLog(t *testing.T) {
	l := New(sheSealer(t))
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if err := l.SealNow(0); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifySeals(); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-entry edit anywhere breaks chain verification.
func TestAnyEditBreaksChainProperty(t *testing.T) {
	l := populated(t)
	f := func(idx uint8, text string) bool {
		if text == "" {
			return true
		}
		i := int(idx) % l.Len()
		if l.entries[i].Event == text {
			return true
		}
		saved := l.entries[i].Event
		l.TamperWith(i, text)
		broken := l.VerifyChain() != nil
		l.TamperWith(i, saved)
		return broken && l.VerifyChain() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
