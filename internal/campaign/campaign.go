// Package campaign is the fleet-scale OTA campaign engine: it rolls a
// firmware generation out across a pooled vehicle fleet in staged waves
// (canary → rings → full fleet), models version skew (vehicles that
// missed the previous campaign join mid-flight at older firmware),
// injects mid-campaign attacks on the distribution channel (metadata
// freeze and rollback replay, single- and two-key signing compromise)
// and exercises the recovery actions — abort thresholds and trust-epoch
// key rotation via fleet.RotateKeys.
//
// The paper's extensibility argument makes secure update the mechanism
// that keeps a deployed fleet securable; this package asks the
// fleet-shaped follow-up questions. What verification stops (everything
// short of a two-key compromise), the rollout shape must contain
// (waves bound the blast radius, the abort threshold stops the bleed,
// rotation revokes the stolen keys). The campaign backend serves
// millions of verifications of the same few signed artifacts, so the
// engine verifies through an ota.VerifyCache — one cold signature check
// and one attestation per published artifact, memoized for the rest of
// the fleet.
//
// Everything the engine reports is deterministic in (Config.Seed,
// Config.Fleet, wave plan): vehicles are driven via fleet.DriveWaveObs,
// so per-vehicle results and merged metrics fold in vehicle-index order
// whatever the worker count, and every behavioural predicate (late
// joiners, check-in jitter) keys on the vehicle index or its derived
// seed, never on scheduling.
package campaign

import (
	"context"
	"fmt"
	"strings"

	"autosec/internal/core"
	"autosec/internal/fleet"
	"autosec/internal/obs"
	"autosec/internal/ota"
	"autosec/internal/she"
	"autosec/internal/sim"
)

// Campaign timing, in each vehicle's own virtual clock (pool-reset
// kernels start at 0 every wave). Stale generations expire inside the
// wave window so a second check-in detects freeze/rollback replay; the
// current campaign outlives the wave.
const (
	// checkinEarliest..checkinLatest bounds the jittered first check-in.
	checkinEarliest = sim.Minute
	checkinLatest   = 5 * sim.Minute
	// recheckDelay separates the second check-in from the first.
	recheckDelay = 40 * sim.Minute
	// StaleExpiry is the freshness window of superseded generations.
	StaleExpiry = 30 * sim.Minute
	// CampaignExpiry is the freshness window of the current campaign.
	CampaignExpiry = 2 * sim.Hour
	// waveHorizon bounds each vehicle's kernel run.
	waveHorizon = 50 * sim.Minute
)

// Strategy is the rollout shape: wave sizing plus the abort rule.
type Strategy struct {
	Name string
	// Canary is the first wave's size; Growth the ring growth factor
	// (see fleet.StageWaves).
	Canary int
	Growth int
	// AbortThreshold aborts the campaign when a wave's compromised
	// fraction (malicious or stale installs over wave size) exceeds it;
	// 0 disables the abort rule.
	AbortThreshold float64
}

// Config parameterizes one campaign run.
type Config struct {
	Fleet    int
	Models   int
	Workers  int
	Seed     uint64
	Strategy Strategy
	Attack   AttackPlan
	// RotateAtWave rotates the trust epoch immediately before the given
	// wave index (-1: never). Rotation re-provisions every vehicle's SHE
	// master via fleet.RotateKeys — hijacked vehicles fail out — then
	// replaces both repository keys and republishes the campaign.
	RotateAtWave int
	// RotateOnBlast additionally triggers the rotation as a *response*:
	// after the first wave whose compromised fraction exceeds the abort
	// threshold, the campaign rotates instead of aborting.
	RotateOnBlast bool
}

// Outcome is a vehicle's terminal campaign state.
type Outcome int

const (
	// OutcomePending: not yet driven (campaign aborted before its wave).
	OutcomePending Outcome = iota
	// OutcomeUpdated: installed the current campaign firmware.
	OutcomeUpdated
	// OutcomeStaleInstall: accepted stale-but-signed superseded firmware
	// (the rollback blast on vehicles that missed the baseline).
	OutcomeStaleInstall
	// OutcomeEvilInstall: installed attacker firmware (two-key forge).
	OutcomeEvilInstall
	// OutcomeFrozen: answered "up to date" all wave, then saw its
	// metadata expire — a detected freeze, firmware never updated.
	OutcomeFrozen
	// OutcomeBlocked: rejected an attack bundle outright and could not
	// recover within the wave.
	OutcomeBlocked
	// OutcomeFailed: fell out of the trust domain at rotation (hijacked
	// SHE master) — needs out-of-band recovery.
	OutcomeFailed
)

// String names the outcome for tables and reports.
func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeUpdated:
		return "updated"
	case OutcomeStaleInstall:
		return "stale-install"
	case OutcomeEvilInstall:
		return "evil-install"
	case OutcomeFrozen:
		return "frozen"
	case OutcomeBlocked:
		return "blocked"
	case OutcomeFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// VehicleState is a vehicle's persistent campaign-side state across
// waves: the verifier (with its anti-rollback counters), skew class and
// terminal outcome. The fleet driver's core.Vehicle is per-wave scratch;
// this is what survives.
type VehicleState struct {
	Idx    int
	Model  int
	VIN    string
	Client *ota.Client
	// LateJoiner marks a vehicle that missed the baseline campaign and
	// joins this one at factory firmware — the version-skew population.
	LateJoiner bool
	Outcome    Outcome
}

// WaveReport tallies one driven wave.
type WaveReport struct {
	Wave     fleet.Wave
	Attacked bool
	// Rotated marks the trust-epoch rotation that happened immediately
	// before this wave.
	Rotated bool
	// Tallies over the wave's vehicles.
	Updated, StaleInstalls, EvilInstalls, Frozen, Blocked int
	// AttackRejected counts first check-ins that rejected an attack
	// bundle outright (the verifier-level detection signal).
	AttackRejected int
	// BlastFraction is (EvilInstalls+StaleInstalls)/size — the number the
	// abort threshold watches.
	BlastFraction float64
}

// Result is one campaign run's deterministic summary.
type Result struct {
	Waves []WaveReport
	// Aborted/AbortWave record the abort rule firing; waves after
	// AbortWave were never driven.
	Aborted   bool
	AbortWave int
	// Rotations counts trust-epoch rotations; RotateFailed lists, in
	// fleet slice order, the VINs that failed re-provisioning (hijacked).
	Rotations    int
	RotateFailed []string
	// Outcomes tallies terminal vehicle outcomes over the whole fleet.
	Outcomes map[Outcome]int
	// Cache is the verification-cache traffic: Lookups at fleet scale,
	// Verifies/Builds at published-artifact scale.
	Cache ota.CacheStats
	// Registry is the campaign-merged metrics registry (wave registries
	// folded in wave order, each wave folded in vehicle-index order).
	Registry *obs.Registry
}

// Engine runs one campaign over one fleet.
type Engine struct {
	cfg     Config
	backend *Backend
	fleet   *fleet.Fleet
	states  []*VehicleState
	cache   *ota.VerifyCache
	forged  *forged
	waves   []fleet.Wave
}

// New provisions the fleet (per-device SHE keys), builds the backend's
// published generations, wires a verifier per vehicle and installs the
// firmware history: factory firmware everywhere, baseline on everyone
// except the late joiners (every 7th vehicle starting at index 3 — an
// index predicate, so the skew population is identical at any worker
// count and any seed).
func New(cfg Config) (*Engine, error) {
	if cfg.Fleet <= 0 {
		return nil, fmt.Errorf("campaign: fleet size must be positive, got %d", cfg.Fleet)
	}
	if cfg.Models < 1 {
		cfg.Models = 1
	}
	backend, err := NewBackend(cfg.Models, StaleExpiry, CampaignExpiry)
	if err != nil {
		return nil, err
	}
	var master [16]byte
	copy(master[:], fmt.Sprintf("campaign-%08x", uint32(cfg.Seed)))
	e := &Engine{
		cfg:     cfg,
		backend: backend,
		fleet:   fleet.New(cfg.Fleet, cfg.Models, fleet.PerDevice, master),
		cache:   ota.NewVerifyCache(),
		waves:   fleet.StageWaves(cfg.Fleet, cfg.Strategy.Canary, cfg.Strategy.Growth),
	}
	dirKey, imgKey := backend.Keys()
	e.states = make([]*VehicleState, cfg.Fleet)
	for i := 0; i < cfg.Fleet; i++ {
		fv := e.fleet.Vehicles[i]
		c := ota.NewClient(fv.VIN, dirKey, imgKey)
		c.Group = Group(fv.Model)
		c.AddECU(hwid(fv.Model), 0)
		st := &VehicleState{
			Idx: i, Model: fv.Model, VIN: fv.VIN, Client: c,
			LateJoiner: i%7 == 3,
		}
		// Firmware history: everyone took the factory generation; the
		// baseline campaign reached everyone except the late joiners.
		if err := c.ApplyCached(backend.Bundle(GenFactory, fv.Model), 1, e.cache); err != nil {
			return nil, fmt.Errorf("campaign: provisioning vehicle %d: %w", i, err)
		}
		if !st.LateJoiner {
			if err := c.ApplyCached(backend.Bundle(GenBaseline, fv.Model), 2, e.cache); err != nil {
				return nil, fmt.Errorf("campaign: baseline on vehicle %d: %w", i, err)
			}
		}
		e.states[i] = st
	}
	if cfg.Attack.Kind != AttackNone {
		e.forged = forge(cfg.Attack.Kind, backend, CampaignExpiry)
	}
	return e, nil
}

// Waves returns the campaign's wave plan.
func (e *Engine) Waves() []fleet.Wave { return e.waves }

// States exposes the per-vehicle campaign states (index order).
func (e *Engine) States() []*VehicleState { return e.states }

// Cache exposes the campaign's verification cache (for stats assertions).
func (e *Engine) Cache() *ota.VerifyCache { return e.cache }

// served returns the two bundles the update channel delivers to one
// vehicle during wave wi: the first check-in's bundle and the re-check's.
func (e *Engine) served(wi int, st *VehicleState) (first, second *ota.Bundle) {
	legit := e.backend.Current(st.Model)
	if !e.cfg.Attack.active(wi) {
		return legit, legit
	}
	switch e.cfg.Attack.Kind {
	case AttackFreeze:
		// Replay the vehicle's own current metadata, both check-ins: the
		// second lands after StaleExpiry and surfaces the freeze.
		cur := e.backend.Bundle(GenBaseline, st.Model)
		if st.LateJoiner {
			cur = e.backend.Bundle(GenFactory, st.Model)
		}
		return cur, cur
	case AttackRollback:
		// Replay the superseded baseline to the whole wave.
		stale := e.backend.Bundle(GenBaseline, st.Model)
		return stale, stale
	case AttackImageKey, AttackTwoKey:
		// The forged bundle first; by the re-check the vehicle has fallen
		// back to an honest channel (the detection path for imagekey, and
		// for twokey the fallback only matters once rotation has revoked
		// the stolen keys).
		return e.forged.bundles[st.Model], legit
	default:
		return legit, legit
	}
}

// vehicleResult is one vehicle's wave outcome, computed inside the
// drive and classified deterministically from the two check-in errors.
type vehicleResult struct {
	outcome Outcome
	// evil marks an attacker-firmware install (SHE hijack follows).
	evil bool
	// firstRejected marks a first check-in that rejected its bundle.
	firstRejected bool
}

// classify maps the two check-in results onto a terminal outcome.
// installedCurrent reports whether the client now holds the current
// campaign generation's counters.
func classify(first, second error, evilInstalled bool) vehicleResult {
	switch {
	case evilInstalled:
		return vehicleResult{outcome: OutcomeEvilInstall, evil: true}
	case first == nil:
		// The first check-in installed. Whatever the re-check said —
		// up to date, or "your metadata expired" because the channel kept
		// replaying a stale bundle — the install is the outcome; whether
		// it was the *current* firmware is the caller's reclassification
		// (stale installs look exactly like this).
		return vehicleResult{outcome: OutcomeUpdated}
	case first == ota.ErrNoUpdate && isExpired(second):
		return vehicleResult{outcome: OutcomeFrozen}
	case isRejected(first) && second == nil:
		// Attack bundle rejected, honest re-check installed: recovered.
		return vehicleResult{outcome: OutcomeUpdated}
	case isRejected(first) && second != nil:
		return vehicleResult{outcome: OutcomeBlocked}
	default:
		return vehicleResult{outcome: OutcomeBlocked}
	}
}

func isExpired(err error) bool {
	return err != nil && strings.Contains(err.Error(), "expired")
}

func isRejected(err error) bool {
	return err != nil && err != ota.ErrNoUpdate
}

// Run drives the campaign to completion (or abort) and returns the
// deterministic result.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	res := &Result{
		AbortWave: -1,
		Outcomes:  make(map[Outcome]int),
		Registry:  obs.NewRegistry(),
	}
	rotated := false
	justRotated := false
	for wi, w := range e.waves {
		if e.cfg.RotateAtWave == wi && !rotated {
			if err := e.rotate(res); err != nil {
				return nil, err
			}
			rotated, justRotated = true, true
		}
		report, err := e.runWave(ctx, wi, w, res.Registry)
		if err != nil {
			return nil, err
		}
		report.Rotated = justRotated
		justRotated = false
		res.Waves = append(res.Waves, *report)
		// Containment rules, in response order: rotate if configured,
		// else abort.
		if e.cfg.Strategy.AbortThreshold > 0 && report.BlastFraction > e.cfg.Strategy.AbortThreshold {
			if e.cfg.RotateOnBlast && !rotated {
				if err := e.rotate(res); err != nil {
					return nil, err
				}
				rotated, justRotated = true, true
				continue
			}
			res.Aborted = true
			res.AbortWave = wi
			break
		}
	}
	for _, st := range e.states {
		res.Outcomes[st.Outcome]++
	}
	res.Cache = e.cache.Stats()
	return res, nil
}

// runWave drives one wave's vehicles through their check-ins via the
// pooled fleet driver and folds the wave's metrics into campaignReg.
func (e *Engine) runWave(ctx context.Context, wi int, w fleet.Wave, campaignReg *obs.Registry) (*WaveReport, error) {
	d := fleet.Driver{
		Cfg:     core.Config{VIN: "CAMPAIGN", Seed: e.cfg.Seed},
		N:       e.cfg.Fleet,
		Workers: e.cfg.Workers,
	}
	results, obsRes, err := fleet.DriveWaveObs(ctx, d, fleet.ObsOptions{Metrics: true}, w,
		func(idx int, v *core.Vehicle, reg *obs.Registry) (vehicleResult, error) {
			st := e.states[idx]
			// Register the full instrument set up front so every vehicle
			// shard has the same shape and the barrier fold stays on the
			// accumulate fast path.
			checkins := reg.Counter("campaign/checkins")
			updated := reg.Counter("campaign/updated")
			uptodate := reg.Counter("campaign/uptodate")
			stale := reg.Counter("campaign/stale_install")
			evil := reg.Counter("campaign/evil_install")
			frozen := reg.Counter("campaign/frozen_detected")
			blocked := reg.Counter("campaign/blocked")

			first, second := e.served(wi, st)
			k := v.Kernel
			stream := k.Stream("campaign")
			t1 := checkinEarliest + stream.Duration(0, checkinLatest-checkinEarliest)
			t2 := t1 + recheckDelay
			var err1, err2 error
			k.At(t1, func() {
				checkins.Inc()
				err1 = st.Client.ApplyCached(first, k.Now(), e.cache)
			})
			k.At(t2, func() {
				checkins.Inc()
				err2 = st.Client.ApplyCached(second, k.Now(), e.cache)
			})
			if err := k.RunUntil(waveHorizon); err != nil {
				return vehicleResult{}, err
			}
			evilInstalled := e.cfg.Attack.Kind == AttackTwoKey && e.cfg.Attack.active(wi) &&
				err1 == nil && e.backend.Epoch == 0
			r := classify(err1, err2, evilInstalled)
			r.firstRejected = isRejected(err1)
			switch r.outcome {
			case OutcomeUpdated:
				updated.Inc()
			case OutcomeStaleInstall:
				stale.Inc()
			case OutcomeEvilInstall:
				evil.Inc()
			case OutcomeFrozen:
				frozen.Inc()
			case OutcomeBlocked:
				blocked.Inc()
			}
			if err1 == ota.ErrNoUpdate || err2 == ota.ErrNoUpdate {
				uptodate.Inc()
			}
			return r, nil
		})
	if err != nil {
		return nil, fmt.Errorf("campaign: wave %d %v: %w", wi, w, err)
	}
	if err := campaignReg.Merge(obsRes.Registry); err != nil {
		return nil, fmt.Errorf("campaign: merging wave %d metrics: %w", wi, err)
	}

	report := &WaveReport{Wave: w, Attacked: e.cfg.Attack.active(wi)}
	for i, r := range results {
		idx := w.Lo + i
		st := e.states[idx]
		// Rollback replay that *installed* means the vehicle accepted
		// superseded firmware: reclassify the skew population's success.
		if r.outcome == OutcomeUpdated && e.cfg.Attack.active(wi) &&
			e.cfg.Attack.Kind == AttackRollback &&
			st.Client.Installed.Value > installsBefore(st) {
			r.outcome = OutcomeStaleInstall
		}
		st.Outcome = r.outcome
		if r.firstRejected && report.Attacked {
			report.AttackRejected++
		}
		switch r.outcome {
		case OutcomeUpdated:
			report.Updated++
		case OutcomeStaleInstall:
			report.StaleInstalls++
		case OutcomeEvilInstall:
			report.EvilInstalls++
			e.hijack(idx)
		case OutcomeFrozen:
			report.Frozen++
		case OutcomeBlocked:
			report.Blocked++
		}
	}
	report.BlastFraction = float64(report.EvilInstalls+report.StaleInstalls) / float64(w.Size())
	return report, nil
}

// installsBefore returns how many installs the vehicle had before its
// wave: factory plus, unless it is a late joiner, the baseline.
func installsBefore(st *VehicleState) int64 {
	if st.LateJoiner {
		return 1
	}
	return 2
}

// hijack models the attacker consolidating an evil install: with their
// firmware running, they rotate the vehicle's SHE master to a key the
// OEM does not know, so the vehicle later fails fleet.RotateKeys.
func (e *Engine) hijack(idx int) {
	fv := e.fleet.Vehicles[idx]
	var evil [16]byte
	copy(evil[:], "attacker-owned!!")
	_, _, counter := fv.Engine.KeyState(she.MasterECUKey)
	req, err := she.BuildUpdate(fv.Engine.UID(), she.MasterECUKey, she.MasterECUKey,
		fv.MasterKey(), evil, counter+1, she.Flags{})
	if err == nil {
		_, _ = fv.Engine.LoadKey(req)
	}
}

// rotate is the recovery action: re-provision every vehicle's SHE master
// from a new production master (hijacked vehicles fail out, in fleet
// slice order), rotate the repository keys, republish the campaign under
// the new epoch and move every still-trusted verifier onto the new keys.
// Completed waves are not re-driven and their cached verifications are
// never repeated — the new epoch's artifacts simply verify cold once.
func (e *Engine) rotate(res *Result) error {
	var newMaster [16]byte
	copy(newMaster[:], fmt.Sprintf("rotated!-%06x", uint32(res.Rotations+1)))
	_, failed := e.fleet.RotateKeys(newMaster)
	res.Rotations++
	res.RotateFailed = append(res.RotateFailed, failed...)
	failedSet := make(map[string]bool, len(failed))
	for _, vin := range failed {
		failedSet[vin] = true
	}
	if err := e.backend.RotateTrust(CampaignExpiry); err != nil {
		return err
	}
	dirKey, imgKey := e.backend.Keys()
	for _, st := range e.states {
		if failedSet[st.VIN] {
			st.Outcome = OutcomeFailed
			continue
		}
		st.Client.SetKeys(dirKey, imgKey)
	}
	return nil
}

// Render writes the campaign result as a deterministic text report.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "waves=%d aborted=%v abort_wave=%d rotations=%d rotate_failed=%d\n",
		len(r.Waves), r.Aborted, r.AbortWave, r.Rotations, len(r.RotateFailed))
	for i, w := range r.Waves {
		fmt.Fprintf(&sb, "wave %d %v attacked=%v rotated=%v updated=%d stale=%d evil=%d frozen=%d blocked=%d rejected=%d blast=%.3f\n",
			i, w.Wave, w.Attacked, w.Rotated, w.Updated, w.StaleInstalls, w.EvilInstalls, w.Frozen, w.Blocked, w.AttackRejected, w.BlastFraction)
	}
	for o := OutcomePending; o <= OutcomeFailed; o++ {
		if n := r.Outcomes[o]; n > 0 {
			fmt.Fprintf(&sb, "outcome %s=%d\n", o, n)
		}
	}
	fmt.Fprintf(&sb, "cache sig_lookups=%d sig_verifies=%d attest_lookups=%d attest_builds=%d\n",
		r.Cache.SigLookups, r.Cache.SigVerifies, r.Cache.AttestLookups, r.Cache.AttestBuilds)
	return sb.String()
}
