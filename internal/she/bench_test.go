package she

import (
	"fmt"
	"testing"
)

func BenchmarkCMAC(b *testing.B) {
	key := make([]byte, 16)
	for _, size := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			msg := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := CMAC(key, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKDF(b *testing.B) {
	var key [16]byte
	for i := 0; i < b.N; i++ {
		_ = KDF(key, KeyUpdateEncC)
	}
}

func BenchmarkLoadKey(b *testing.B) {
	var uid UID
	uid[0] = 1
	e := NewEngine(uid)
	master := [16]byte{0xA1}
	e.ProvisionMasterKey(master)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := BuildUpdate(uid, Key1, MasterECUKey, master, [16]byte{byte(i)}, uint32(i+1), Flags{KeyUsage: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.LoadKey(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecureBoot(b *testing.B) {
	var uid UID
	e := NewEngine(uid)
	_ = e.ProvisionKey(BootMACKey, [16]byte{0xB0}, Flags{})
	image := make([]byte, 64*1024)
	if err := e.DefineBootMAC(image); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(image)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ResetSession()
		ok, err := e.SecureBoot(image)
		if err != nil || !ok {
			b.Fatalf("boot: %v %v", ok, err)
		}
	}
}
