package secoc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"autosec/internal/she"
)

var testKey = [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

func channel(t *testing.T, cfg Config) (*Sender, *Receiver) {
	t.Helper()
	mac := KeyMAC(testKey)
	s, err := NewSender(cfg, mac)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(cfg, mac)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func defaultCfg() Config {
	return Config{DataID: 0x0123, FreshnessBits: 8, MACBits: 32}
}

func TestProtectVerifyRoundTrip(t *testing.T) {
	s, r := channel(t, defaultCfg())
	for i := 0; i < 100; i++ {
		payload := []byte{byte(i), 0x42}
		pdu, err := s.Protect(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Verify(pdu)
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	if r.Accepted != 100 || r.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d", r.Accepted, r.Rejected)
	}
}

func TestOverheadAndWireSize(t *testing.T) {
	cfg := defaultCfg()
	if cfg.Overhead() != 1+4 {
		t.Fatalf("overhead=%d", cfg.Overhead())
	}
	s, _ := channel(t, cfg)
	pdu, _ := s.Protect([]byte{1, 2, 3})
	if len(pdu) != 3+5 {
		t.Fatalf("pdu len=%d", len(pdu))
	}
}

func TestReplayRejected(t *testing.T) {
	s, r := channel(t, defaultCfg())
	pdu, _ := s.Protect([]byte{0xAA})
	if _, err := r.Verify(pdu); err != nil {
		t.Fatal(err)
	}
	// Immediate replay: freshness reconstruction lands 256 ahead, outside
	// or at the window edge — and even if within, the MAC fails because
	// the counter differs.
	if _, err := r.Verify(pdu); err == nil {
		t.Fatal("replay accepted")
	}
	// Replay after more traffic also fails.
	for i := 0; i < 10; i++ {
		p, _ := s.Protect([]byte{byte(i)})
		if _, err := r.Verify(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Verify(pdu); err == nil {
		t.Fatal("late replay accepted")
	}
}

func TestLossToleranceWithinWindow(t *testing.T) {
	s, r := channel(t, defaultCfg())
	// 50 PDUs are sent but only every 5th arrives.
	for i := 0; i < 50; i++ {
		pdu, _ := s.Protect([]byte{byte(i)})
		if i%5 != 0 {
			continue
		}
		if _, err := r.Verify(pdu); err != nil {
			t.Fatalf("pdu %d after loss: %v", i, err)
		}
	}
	if r.Accepted != 10 {
		t.Fatalf("accepted=%d", r.Accepted)
	}
}

func TestJumpBeyondWindowRejected(t *testing.T) {
	cfg := defaultCfg()
	cfg.AcceptWindow = 16
	s, r := channel(t, cfg)
	// Lose more than the window's worth of traffic.
	var last []byte
	for i := 0; i < 40; i++ {
		last, _ = s.Protect([]byte{1})
	}
	if _, err := r.Verify(last); !errors.Is(err, ErrReplay) {
		t.Fatalf("err=%v", err)
	}
}

func TestForgedMACRejected(t *testing.T) {
	s, r := channel(t, defaultCfg())
	pdu, _ := s.Protect([]byte{0x01, 0x02})
	for i := range pdu {
		mut := append([]byte(nil), pdu...)
		mut[i] ^= 0x01
		if _, err := r.Verify(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// The original still verifies (state was not advanced by failures).
	if _, err := r.Verify(pdu); err != nil {
		t.Fatalf("original after flip attempts: %v", err)
	}
}

func TestCrossChannelSplicingRejected(t *testing.T) {
	cfgA := Config{DataID: 0x0001, FreshnessBits: 8, MACBits: 32}
	cfgB := Config{DataID: 0x0002, FreshnessBits: 8, MACBits: 32}
	sA, _ := channel(t, cfgA)
	_, rB := channel(t, cfgB)
	pdu, _ := sA.Protect([]byte{0x55})
	if _, err := rB.Verify(pdu); !errors.Is(err, ErrAuth) {
		t.Fatalf("cross-channel PDU accepted: %v", err)
	}
}

func TestFreshnessTruncationRollover(t *testing.T) {
	// 4-bit truncated counter rolls over every 16 messages; the receiver
	// must keep reconstructing across many rollovers.
	cfg := Config{DataID: 1, FreshnessBits: 4, MACBits: 32, AcceptWindow: 8}
	s, r := channel(t, cfg)
	for i := 0; i < 200; i++ {
		pdu, _ := s.Protect([]byte{byte(i)})
		if _, err := r.Verify(pdu); err != nil {
			t.Fatalf("rollover at %d: %v", i, err)
		}
	}
	if r.Last() != 200 {
		t.Fatalf("receiver counter=%d", r.Last())
	}
}

func TestShortPDU(t *testing.T) {
	_, r := channel(t, defaultCfg())
	if _, err := r.Verify([]byte{1, 2}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err=%v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{FreshnessBits: 0, MACBits: 32},
		{FreshnessBits: 33, MACBits: 32},
		{FreshnessBits: 8, MACBits: 4},
		{FreshnessBits: 8, MACBits: 12},
		{FreshnessBits: 8, MACBits: 136},
	}
	for _, cfg := range bad {
		if _, err := NewSender(cfg, KeyMAC(testKey)); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := NewReceiver(cfg, KeyMAC(testKey)); err == nil {
			t.Errorf("config %+v accepted by receiver", cfg)
		}
	}
}

func TestForgeProbability(t *testing.T) {
	if p := (Config{MACBits: 8}).ForgeProbability(); p != 1.0/256 {
		t.Fatalf("p=%v", p)
	}
	if p24 := (Config{MACBits: 24}).ForgeProbability(); p24 >= (Config{MACBits: 8}).ForgeProbability() {
		t.Fatalf("24-bit MAC not stronger: %v", p24)
	}
}

func TestSHEMACAdapter(t *testing.T) {
	var uid she.UID
	eng := she.NewEngine(uid)
	if err := eng.ProvisionKey(she.Key2, testKey, she.Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	s, err := NewSender(cfg, SHEMAC(eng, she.Key2))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver using the raw key interoperates: SHE holds the same key.
	r, err := NewReceiver(cfg, KeyMAC(testKey))
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := s.Protect([]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(pdu); err != nil {
		t.Fatal(err)
	}
}

// Property: any payload round-trips under any byte-aligned config.
func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, fvBits, macBytes uint8) bool {
		cfg := Config{
			DataID:        7,
			FreshnessBits: int(fvBits%32) + 1,
			MACBits:       (int(macBytes%16) + 1) * 8,
		}
		mac := KeyMAC(testKey)
		s, err := NewSender(cfg, mac)
		if err != nil {
			return false
		}
		r, err := NewReceiver(cfg, mac)
		if err != nil {
			return false
		}
		pdu, err := s.Protect(payload)
		if err != nil {
			return false
		}
		got, err := r.Verify(pdu)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
