package she

import (
	"errors"
	"testing"
	"testing/quick"
)

func provisionedEngine(t *testing.T) (*Engine, [BlockSize]byte) {
	t.Helper()
	e := NewEngine(testUID(0x11))
	master := key16(0xA1)
	e.ProvisionMasterKey(master)
	return e, master
}

func TestLoadKeyRoundTrip(t *testing.T) {
	e, master := provisionedEngine(t)
	newKey := key16(0x42)
	req, err := BuildUpdate(e.UID(), Key1, MasterECUKey, master, newKey, 1, Flags{KeyUsage: true})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := e.LoadKey(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConfirmation(conf, e.UID(), Key1, MasterECUKey, newKey, 1); err != nil {
		t.Fatalf("confirmation: %v", err)
	}
	// Installed key works and carries its flags.
	valid, flags, counter := e.KeyState(Key1)
	if !valid || !flags.KeyUsage || counter != 1 {
		t.Fatalf("slot state: %v %+v %d", valid, flags, counter)
	}
	mac, err := e.GenerateMAC(Key1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := CMAC(newKey[:], []byte("hello"))
	if string(mac) != string(want) {
		t.Fatal("installed key does not match")
	}
}

func TestLoadKeyCounterReplayRejected(t *testing.T) {
	e, master := provisionedEngine(t)
	req1, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, master, key16(1), 5, Flags{KeyUsage: true})
	if _, err := e.LoadKey(req1); err != nil {
		t.Fatal(err)
	}
	// Replaying the same request fails (counter 5 <= 5).
	if _, err := e.LoadKey(req1); !errors.Is(err, ErrCounterReplay) {
		t.Fatalf("replay: err=%v", err)
	}
	// An older counter fails too.
	req2, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, master, key16(2), 3, Flags{KeyUsage: true})
	if _, err := e.LoadKey(req2); !errors.Is(err, ErrCounterReplay) {
		t.Fatalf("old counter: err=%v", err)
	}
	// A newer counter succeeds.
	req3, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, master, key16(3), 6, Flags{KeyUsage: true})
	if _, err := e.LoadKey(req3); err != nil {
		t.Fatalf("newer counter: %v", err)
	}
}

func TestLoadKeyWrongAuthKeyRejected(t *testing.T) {
	e, _ := provisionedEngine(t)
	wrong := key16(0xEE)
	req, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, wrong, key16(1), 1, Flags{})
	if _, err := e.LoadKey(req); !errors.Is(err, ErrUpdateAuth) {
		t.Fatalf("err=%v", err)
	}
}

func TestLoadKeyTamperDetected(t *testing.T) {
	e, master := provisionedEngine(t)
	req, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, master, key16(7), 1, Flags{})
	req.M2[5] ^= 0x01
	if _, err := e.LoadKey(req); !errors.Is(err, ErrUpdateAuth) {
		t.Fatalf("tampered M2 accepted: %v", err)
	}
}

// Property: flipping any single bit of M1|M2|M3 makes LoadKey fail.
func TestLoadKeyAnyBitFlipRejectedProperty(t *testing.T) {
	e, master := provisionedEngine(t)
	f := func(region, idx, bit uint8) bool {
		req, err := BuildUpdate(e.UID(), Key2, MasterECUKey, master, key16(9), 2, Flags{})
		if err != nil {
			return false
		}
		switch region % 3 {
		case 0:
			req.M1[int(idx)%len(req.M1)] ^= 1 << (bit % 8)
		case 1:
			req.M2[int(idx)%len(req.M2)] ^= 1 << (bit % 8)
		default:
			req.M3[int(idx)%len(req.M3)] ^= 1 << (bit % 8)
		}
		_, err = e.LoadKey(req)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadKeyUIDMismatch(t *testing.T) {
	e, master := provisionedEngine(t)
	req, _ := BuildUpdate(testUID(0x99), Key1, MasterECUKey, master, key16(1), 1, Flags{})
	if _, err := e.LoadKey(req); !errors.Is(err, ErrUIDMismatch) {
		t.Fatalf("err=%v", err)
	}
}

func TestLoadKeyWildcard(t *testing.T) {
	e, master := provisionedEngine(t)
	// Wildcard update of an empty slot is allowed.
	req, _ := BuildUpdate(WildcardUID, Key4, MasterECUKey, master, key16(4), 1, Flags{Wildcard: true, KeyUsage: true})
	if _, err := e.LoadKey(req); err != nil {
		t.Fatalf("wildcard install: %v", err)
	}
	// Wildcard re-update allowed while the slot keeps Wildcard set.
	req2, _ := BuildUpdate(WildcardUID, Key4, MasterECUKey, master, key16(5), 2, Flags{Wildcard: false, KeyUsage: true})
	if _, err := e.LoadKey(req2); err != nil {
		t.Fatalf("wildcard re-install: %v", err)
	}
	// Now Wildcard is cleared: further wildcard updates are rejected.
	req3, _ := BuildUpdate(WildcardUID, Key4, MasterECUKey, master, key16(6), 3, Flags{})
	if _, err := e.LoadKey(req3); !errors.Is(err, ErrUIDMismatch) {
		t.Fatalf("wildcard after clear: %v", err)
	}
}

func TestLoadKeyWriteProtection(t *testing.T) {
	e, master := provisionedEngine(t)
	req, _ := BuildUpdate(e.UID(), Key5, MasterECUKey, master, key16(5), 1, Flags{WriteProtection: true})
	if _, err := e.LoadKey(req); err != nil {
		t.Fatal(err)
	}
	req2, _ := BuildUpdate(e.UID(), Key5, MasterECUKey, master, key16(6), 2, Flags{})
	if _, err := e.LoadKey(req2); !errors.Is(err, ErrKeyWriteProtected) {
		t.Fatalf("write-protected slot updated: %v", err)
	}
}

func TestLoadKeySelfAuthorizedRotation(t *testing.T) {
	// A slot key can authorize its own replacement (authID == target).
	e, master := provisionedEngine(t)
	old := key16(0x10)
	req, _ := BuildUpdate(e.UID(), Key6, MasterECUKey, master, old, 1, Flags{KeyUsage: true})
	if _, err := e.LoadKey(req); err != nil {
		t.Fatal(err)
	}
	next := key16(0x20)
	req2, err := BuildUpdate(e.UID(), Key6, Key6, old, next, 2, Flags{KeyUsage: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.LoadKey(req2); err != nil {
		t.Fatalf("self-rotation: %v", err)
	}
	mac, _ := e.GenerateMAC(Key6, []byte("m"))
	want, _ := CMAC(next[:], []byte("m"))
	if string(mac) != string(want) {
		t.Fatal("rotated key not in effect")
	}
}

func TestBuildUpdateValidation(t *testing.T) {
	if _, err := BuildUpdate(testUID(1), Key1, MasterECUKey, key16(1), key16(2), CounterMax+1, Flags{}); err == nil {
		t.Fatal("oversized counter accepted")
	}
	if _, err := BuildUpdate(testUID(1), RAMKey, MasterECUKey, key16(1), key16(2), 1, Flags{}); !errors.Is(err, ErrKeyInvalid) {
		t.Fatalf("RAM key update via M1-M3 accepted: %v", err)
	}
	if _, err := BuildUpdate(testUID(1), SecretKey, MasterECUKey, key16(1), key16(2), 1, Flags{}); !errors.Is(err, ErrKeyInvalid) {
		t.Fatal("SECRET_KEY update accepted")
	}
}

func TestCounterFlagsPackRoundTripProperty(t *testing.T) {
	f := func(counter uint32, flags byte) bool {
		counter &= CounterMax
		flags &= 0x1F
		var b [16]byte
		packCounterFlags(b[:], counter, flags)
		c2, f2, ok := unpackCounterFlags(b[:])
		return ok && c2 == counter && f2 == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackRejectsNonZeroPadding(t *testing.T) {
	var b [16]byte
	packCounterFlags(b[:], 1, 0)
	b[12] = 1
	if _, _, ok := unpackCounterFlags(b[:]); ok {
		t.Fatal("non-zero padding accepted")
	}
}

func TestVerifyConfirmationDetectsMismatch(t *testing.T) {
	e, master := provisionedEngine(t)
	newKey := key16(0x42)
	req, _ := BuildUpdate(e.UID(), Key1, MasterECUKey, master, newKey, 1, Flags{})
	conf, err := e.LoadKey(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConfirmation(conf, e.UID(), Key1, MasterECUKey, key16(0x43), 1); err == nil {
		t.Fatal("wrong key accepted by confirmation check")
	}
	if err := VerifyConfirmation(conf, e.UID(), Key1, MasterECUKey, newKey, 2); err == nil {
		t.Fatal("wrong counter accepted by confirmation check")
	}
	if err := VerifyConfirmation(conf, testUID(0x22), Key1, MasterECUKey, newKey, 1); err == nil {
		t.Fatal("wrong UID accepted by confirmation check")
	}
	bad := *conf
	bad.M5[3] ^= 1
	if err := VerifyConfirmation(&bad, e.UID(), Key1, MasterECUKey, newKey, 1); err == nil {
		t.Fatal("tampered M5 accepted")
	}
}
