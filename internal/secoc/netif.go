package secoc

import (
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// This file bridges SecOC onto the netif transport fabric: a PortSender
// protects every frame it transmits and a PortReceiver delivers only
// frames whose authenticator verifies. Because SecOC operates on the PDU
// bytes, the same sender/receiver pair works unchanged over CAN, LIN,
// FlexRay or Ethernet ports — the secured trailer just has to fit the
// medium's payload capacity.

// PortSender wraps a netif.Port so every frame sent through it carries a
// SecOC authenticator (truncated freshness value and MAC appended to the
// payload).
type PortSender struct {
	port    netif.Port
	s       *Sender
	scratch netif.Frame
}

// NewPortSender returns a sending wrapper around port using s to protect
// payloads.
func NewPortSender(port netif.Port, s *Sender) *PortSender {
	return &PortSender{port: port, s: s}
}

// Name returns the underlying port name.
func (ps *PortSender) Name() string { return ps.port.Name() }

// Send protects f's payload and transmits the secured frame. The original
// frame is not modified.
func (ps *PortSender) Send(f *netif.Frame) error {
	pdu, err := ps.s.Protect(f.Payload)
	if err != nil {
		return err
	}
	ps.scratch = *f
	ps.scratch.Payload = pdu
	return ps.port.Send(&ps.scratch)
}

// PortReceiver verifies secured frames arriving on a netif.Port and
// delivers only those that authenticate, with the bare payload restored.
type PortReceiver struct {
	port netif.Port
	r    *Receiver

	// Rejected counts frames dropped because verification failed.
	Rejected sim.Counter
}

// NewPortReceiver returns a verifying wrapper around port using r.
func NewPortReceiver(port netif.Port, r *Receiver) *PortReceiver {
	return &PortReceiver{port: port, r: r}
}

// OnReceive registers fn for verified frames only. The delivered frame's
// payload is the bare payload (authenticator stripped); frames that fail
// verification are counted in Rejected and never reach fn.
func (pr *PortReceiver) OnReceive(fn netif.RecvFunc) {
	pr.port.OnReceive(func(at sim.Time, f *netif.Frame) {
		payload, err := pr.r.Verify(f.Payload)
		if err != nil {
			pr.Rejected.Inc()
			return
		}
		bare := *f
		bare.Payload = payload
		fn(at, &bare)
	})
}
