// Package flexray simulates a FlexRay cluster at the communication-cycle
// level: a TDMA static segment with per-slot ownership, a minislot-based
// dynamic segment, the 11-bit header CRC and the 24-bit frame CRC.
//
// FlexRay is the deterministic, safety-oriented IVN of the paper's Secure
// Networks layer. Like CAN and LIN it carries no authentication: slot
// ownership is enforced only by configuration, so a compromised node that
// transmits in a foreign slot collides with (and can suppress) the
// legitimate sender — a behaviour the attack experiments rely on.
package flexray

import (
	"errors"
	"fmt"

	"autosec/internal/sim"
)

// SlotID identifies a static or dynamic slot (1-based, per the standard).
type SlotID int

// Errors.
var (
	ErrSlotRange    = errors.New("flexray: slot out of range")
	ErrSlotOwned    = errors.New("flexray: slot already assigned")
	ErrPayloadRange = errors.New("flexray: payload must be 0..254 bytes, even length")
	ErrNotStarted   = errors.New("flexray: cluster not started")
)

// Config fixes the cluster's timing parameters. All durations derive from
// the macrotick.
type Config struct {
	// Macrotick is the cluster-wide time base (typically 1us).
	Macrotick sim.Duration
	// StaticSlots is the number of static slots per cycle.
	StaticSlots int
	// StaticSlotMacroticks is the length of one static slot.
	StaticSlotMacroticks int
	// Minislots is the number of dynamic-segment minislots per cycle.
	Minislots int
	// MinislotMacroticks is the length of one minislot.
	MinislotMacroticks int
	// NITMacroticks is the network idle time closing each cycle.
	NITMacroticks int
}

// DefaultConfig mirrors a common 5ms-cycle configuration.
func DefaultConfig() Config {
	return Config{
		Macrotick:            sim.Microsecond,
		StaticSlots:          60,
		StaticSlotMacroticks: 50,
		Minislots:            200,
		MinislotMacroticks:   5,
		NITMacroticks:        1000,
	}
}

// CycleLength returns the duration of one communication cycle.
func (c Config) CycleLength() sim.Duration {
	mt := c.StaticSlots*c.StaticSlotMacroticks + c.Minislots*c.MinislotMacroticks + c.NITMacroticks
	return sim.Duration(mt) * c.Macrotick
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Macrotick <= 0 || c.StaticSlots <= 0 || c.StaticSlotMacroticks <= 0 ||
		c.Minislots < 0 || c.MinislotMacroticks <= 0 || c.NITMacroticks < 0 {
		return errors.New("flexray: non-positive timing parameter")
	}
	return nil
}

// Frame is a FlexRay frame as delivered to receivers.
type Frame struct {
	Slot    SlotID
	Cycle   int
	Payload []byte
	Sender  string
	// NullFrame marks a static slot whose owner had nothing to send.
	NullFrame bool
	// Dynamic marks a minislot-arbitrated dynamic-segment frame; static
	// TDMA frames leave it clear so receivers can tell schedule-owned
	// traffic from on-demand transmission.
	Dynamic bool
}

// HeaderCRC computes the 11-bit header CRC (poly 0xB85, x^11+x^9+x^8+x^7+x^2+1)
// over the (sync, startup, frameID, length) header bits.
func HeaderCRC(slot SlotID, payloadWords int) uint16 {
	// Pack: 1 sync bit (0), 1 startup bit (0), 11-bit frame ID, 7-bit length.
	var bits []bool
	push := func(v uint64, n int) {
		for i := n - 1; i >= 0; i-- {
			bits = append(bits, v>>uint(i)&1 == 1)
		}
	}
	push(0, 2)
	push(uint64(slot), 11)
	push(uint64(payloadWords), 7)
	const poly = 0xB85
	crc := uint16(0x1A) // init value per spec
	for _, b := range bits {
		in := uint16(0)
		if b {
			in = 1
		}
		fb := in ^ (crc >> 10 & 1)
		crc = (crc << 1) & 0x7FF
		if fb == 1 {
			crc ^= poly
		}
	}
	return crc
}

// FrameCRC24 computes the 24-bit frame CRC (poly 0x5D6DCB) over the payload.
func FrameCRC24(payload []byte) uint32 {
	const poly = 0x5D6DCB
	crc := uint32(0xFEDCBA) // init value (channel A)
	for _, b := range payload {
		for i := 7; i >= 0; i-- {
			in := uint32(b>>uint(i)) & 1
			fb := in ^ (crc >> 23 & 1)
			crc = (crc << 1) & 0xFFFFFF
			if fb == 1 {
				crc ^= poly
			}
		}
	}
	return crc
}

// PublishFunc supplies the payload for a node's slot in a given cycle.
// Returning nil sends a null frame.
type PublishFunc func(cycle int) []byte

// ReceiveFunc consumes frames seen on the bus.
type ReceiveFunc func(at sim.Time, f Frame)

// slotAssignment binds a slot to its owning node.
type slotAssignment struct {
	owner   string
	publish PublishFunc
}

// Cluster is a FlexRay network on one channel.
type Cluster struct {
	Name   string
	cfg    Config
	kernel *sim.Kernel

	static    map[SlotID]*slotAssignment
	intruders map[SlotID][]*slotAssignment // rogue transmitters per slot
	dynamic   []dynRequest
	receivers []ReceiveFunc

	cycle   int
	running bool
	stopped bool

	// Stats.
	FramesOK   sim.Counter
	NullFrames sim.Counter
	Collisions sim.Counter
	DynSent    sim.Counter
	DynStarved sim.Counter

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base frBaseline
}

type dynRequest struct {
	slot    SlotID // priority: lower dynamic slot = earlier minislot claim
	sender  string
	payload []byte
}

// NewCluster creates a cluster with the given configuration.
func NewCluster(k *sim.Kernel, name string, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{
		Name:      name,
		cfg:       cfg,
		kernel:    k,
		static:    make(map[SlotID]*slotAssignment),
		intruders: make(map[SlotID][]*slotAssignment),
	}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Cycle reports the current communication cycle counter.
func (c *Cluster) Cycle() int { return c.cycle }

// AssignStatic gives a node exclusive ownership of a static slot.
func (c *Cluster) AssignStatic(slot SlotID, owner string, fn PublishFunc) error {
	if slot < 1 || int(slot) > c.cfg.StaticSlots {
		return fmt.Errorf("%w: %d", ErrSlotRange, slot)
	}
	if _, taken := c.static[slot]; taken {
		return fmt.Errorf("%w: %d", ErrSlotOwned, slot)
	}
	c.static[slot] = &slotAssignment{owner: owner, publish: fn}
	return nil
}

// Intrude registers a rogue transmitter in a slot it does not own —
// the attack primitive. Transmissions from an intruder collide with the
// legitimate owner's frame and destroy both.
func (c *Cluster) Intrude(slot SlotID, sender string, fn PublishFunc) error {
	if slot < 1 || int(slot) > c.cfg.StaticSlots {
		return fmt.Errorf("%w: %d", ErrSlotRange, slot)
	}
	c.intruders[slot] = append(c.intruders[slot], &slotAssignment{owner: sender, publish: fn})
	return nil
}

// OnReceive registers a frame observer.
func (c *Cluster) OnReceive(fn ReceiveFunc) { c.receivers = append(c.receivers, fn) }

// SendDynamic queues a payload for the dynamic segment of the next cycle.
// Lower slot numbers claim earlier minislots (higher priority). Payload
// must be an even number of bytes, at most 254.
func (c *Cluster) SendDynamic(slot SlotID, sender string, payload []byte) error {
	if len(payload) > 254 || len(payload)%2 != 0 {
		return fmt.Errorf("%w: %d", ErrPayloadRange, len(payload))
	}
	c.dynamic = append(c.dynamic, dynRequest{slot: slot, sender: sender, payload: append([]byte(nil), payload...)})
	return nil
}

// Start begins executing communication cycles.
func (c *Cluster) Start() error {
	if c.running {
		return errors.New("flexray: already running")
	}
	c.running = true
	c.stopped = false
	c.runCycle()
	return nil
}

// Stop halts after the current cycle.
func (c *Cluster) Stop() { c.stopped = true; c.running = false }

func (c *Cluster) runCycle() {
	if c.stopped {
		return
	}
	base := c.kernel.Now()
	slotLen := sim.Duration(c.cfg.StaticSlotMacroticks) * c.cfg.Macrotick

	// Static segment.
	for s := 1; s <= c.cfg.StaticSlots; s++ {
		slot := SlotID(s)
		at := base + sim.Duration(s-1)*slotLen
		c.kernel.At(at, func() { c.fireStatic(slot) })
	}

	// Dynamic segment: requests sorted by slot priority claim minislots
	// greedily; a frame occupies ceil(bytes/2)+4 minislots in this model.
	dynBase := base + sim.Duration(c.cfg.StaticSlots)*slotLen
	miniLen := sim.Duration(c.cfg.MinislotMacroticks) * c.cfg.Macrotick
	reqs := c.takeDynamicSorted()
	mini := 0
	for _, r := range reqs {
		need := (len(r.payload)+1)/2 + 4
		if mini+need > c.cfg.Minislots {
			c.DynStarved.Inc()
			continue
		}
		r := r
		at := dynBase + sim.Duration(mini)*miniLen
		c.kernel.At(at, func() {
			c.DynSent.Inc()
			c.deliver(Frame{Slot: r.slot, Cycle: c.cycle, Payload: r.payload, Sender: r.sender, Dynamic: true})
		})
		mini += need
	}

	// Next cycle after NIT.
	c.kernel.At(base+c.cfg.CycleLength(), func() {
		c.cycle++
		c.runCycle()
	})
}

// takeDynamicSorted drains the dynamic queue in priority order (stable).
func (c *Cluster) takeDynamicSorted() []dynRequest {
	reqs := c.dynamic
	c.dynamic = nil
	// Insertion sort: queues are short and stability matters.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].slot < reqs[j-1].slot; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	return reqs
}

func (c *Cluster) fireStatic(slot SlotID) {
	owner := c.static[slot]
	intruders := c.intruders[slot]
	txCount := len(intruders)
	var payload []byte
	var sender string
	if owner != nil {
		payload = owner.publish(c.cycle)
		sender = owner.owner
		if payload != nil {
			txCount++
		}
	}
	if txCount > 1 {
		// Two transmitters in one slot: collision destroys the slot.
		c.Collisions.Inc()
		return
	}
	if txCount == 1 && len(intruders) == 1 {
		payload = intruders[0].publish(c.cycle)
		sender = intruders[0].owner
	}
	if payload == nil {
		if owner != nil {
			c.NullFrames.Inc()
			c.deliver(Frame{Slot: slot, Cycle: c.cycle, Sender: sender, NullFrame: true})
		}
		return
	}
	if len(payload) > 254 || len(payload)%2 != 0 {
		return // invalid payload is dropped by the encoder
	}
	c.FramesOK.Inc()
	c.deliver(Frame{Slot: slot, Cycle: c.cycle, Payload: payload, Sender: sender})
}

func (c *Cluster) deliver(f Frame) {
	now := c.kernel.Now()
	for _, fn := range c.receivers {
		fn(now, f)
	}
}
