// Package keyless models the paper's "+1" layer — physical access
// security: an RFID immobilizer and a passive keyless entry and start
// (PKES) system, the relay attack of Francillon et al. [8 in the paper]
// that defeats naive PKES, and the round-trip-time distance-bounding
// countermeasure.
//
// Radio timing uses free-space propagation (≈3.34 ns/m); a relay attack
// cannot beat physics, so every relayed exchange arrives late by the
// relay's processing latency plus the extra path length — which is
// exactly what distance bounding measures.
package keyless

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"autosec/internal/obs"
	"autosec/internal/she"
	"autosec/internal/sim"
)

// PropagationPerM is the free-space signal propagation delay.
const PropagationPerM = 3.336 // ns per metre

// Position is a point on the plane in metres.
type Position struct{ X, Y float64 }

// Dist is the Euclidean distance in metres.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Fob is the key-side device: a shared-key transponder.
type Fob struct {
	Pos Position
	// ProcessingTime is the fob's crypto turnaround time.
	ProcessingTime sim.Duration
	key            [16]byte
	// Disabled models a fob in a shielding pouch ("Faraday cage" user
	// countermeasure): it hears nothing.
	Disabled bool
}

// NewFob creates a fob with the shared key and a 2ms turnaround.
func NewFob(key [16]byte) *Fob {
	return &Fob{ProcessingTime: 2 * sim.Millisecond, key: key}
}

// respond computes the fob's response to a challenge.
func (f *Fob) respond(challenge [8]byte) ([]byte, error) {
	if f.Disabled {
		return nil, ErrNoResponse
	}
	mac, err := she.CMAC(f.key[:], challenge[:])
	if err != nil {
		return nil, err
	}
	return mac[:8], nil // 64-bit truncated response
}

// Car is the vehicle-side PKES unit.
type Car struct {
	Pos Position
	key [16]byte
	// LFRangeM is the low-frequency wake-up range: a real fob must be this
	// close to even hear the challenge (~2m in production systems).
	LFRangeM float64
	// UHFRangeM is the fob-to-car response range (~50m).
	UHFRangeM float64

	// DistanceBounding enables the RTT countermeasure.
	DistanceBounding bool
	// RTTBudget is the maximum accepted round-trip time. A sound setting
	// is fob processing + 2×LF-range flight + guard band.
	RTTBudget sim.Duration

	challengeCounter uint64

	Unlocks       sim.Counter
	Rejections    sim.Counter
	BoundingTrips sim.Counter
	ReplayRejects sim.Counter
	seenResponses map[[8]byte]bool

	// Observability (nil when off); see Instrument in obs.go.
	obsTr     *obs.Tracer
	obsSub    obs.Label
	obsUnlock obs.Label
	obsReject obs.Label
	obsClock  func() sim.Time
}

// NewCar creates a car with production-like ranges.
func NewCar(key [16]byte) *Car {
	return &Car{
		key:           key,
		LFRangeM:      2,
		UHFRangeM:     50,
		RTTBudget:     0,
		seenResponses: make(map[[8]byte]bool),
	}
}

// ResetState rewinds the car to its post-NewCar state for pooled reuse:
// production-default ranges, fresh challenge counter, cleared replay
// cache and counters, observability detached. The shared key survives
// (it is construction wiring, derived from the VIN).
func (c *Car) ResetState() {
	c.Pos = Position{}
	c.LFRangeM = 2
	c.UHFRangeM = 50
	c.DistanceBounding = false
	c.RTTBudget = 0
	c.challengeCounter = 0
	c.Unlocks.Value = 0
	c.Rejections.Value = 0
	c.BoundingTrips.Value = 0
	c.ReplayRejects.Value = 0
	for k := range c.seenResponses {
		delete(c.seenResponses, k)
	}
	c.obsTr = nil
	c.obsSub, c.obsUnlock, c.obsReject = 0, 0, 0
	c.obsClock = nil
}

// Unlock outcomes.
var (
	ErrOutOfRange  = errors.New("keyless: fob out of LF range")
	ErrNoResponse  = errors.New("keyless: no fob response")
	ErrBadResponse = errors.New("keyless: response verification failed")
	ErrRTTExceeded = errors.New("keyless: round-trip time exceeds distance bound")
	ErrReplay      = errors.New("keyless: response replayed")
)

// challenge mints a fresh, never-repeating challenge.
func (c *Car) challenge() [8]byte {
	var ch [8]byte
	c.challengeCounter++
	binary.BigEndian.PutUint64(ch[:], c.challengeCounter)
	return ch
}

// verify checks a fob response and enforces single-use.
func (c *Car) verify(challenge [8]byte, resp []byte) error {
	want, err := she.CMAC(c.key[:], challenge[:])
	if err != nil {
		return err
	}
	if len(resp) < 8 || subtle.ConstantTimeCompare(want[:8], resp[:8]) != 1 {
		return ErrBadResponse
	}
	var r8 [8]byte
	copy(r8[:], resp)
	if c.seenResponses[r8] {
		c.ReplayRejects.Inc()
		return ErrReplay
	}
	c.seenResponses[r8] = true
	return nil
}

// TryUnlock runs the PKES exchange with a fob over the direct radio path
// and reports whether the car unlocks. The returned RTT is what the
// distance-bounding check measured.
func (c *Car) TryUnlock(f *Fob) (rtt sim.Duration, err error) {
	d := c.Pos.Dist(f.Pos)
	if d > c.LFRangeM {
		c.Rejections.Inc()
		c.emitVerdict(false, "range", 0)
		return 0, fmt.Errorf("%w: %.1fm > %.1fm", ErrOutOfRange, d, c.LFRangeM)
	}
	ch := c.challenge()
	resp, err := f.respond(ch)
	if err != nil {
		c.Rejections.Inc()
		c.emitVerdict(false, "no-response", 0)
		return 0, err
	}
	rtt = sim.Duration(2*d*PropagationPerM) + f.ProcessingTime
	return c.finish(rtt, ch, resp)
}

// Relay is the two-antenna relay rig of the Francillon attack: antenna A
// sits near the car, antenna B near the victim's fob (e.g. by the front
// door while the car is in the driveway); the link between them adds
// processing latency.
type Relay struct {
	PosA Position // near the car
	PosB Position // near the fob
	// Latency is the relay electronics' added delay per direction.
	Latency sim.Duration
}

// TryRelayUnlock runs the PKES exchange through the relay. The fob only
// needs to be within LF range of antenna B; the car hears the response as
// if the fob were present. Physics still applies: the measured RTT covers
// the full car→A→B→fob→B→A→car path plus two relay latencies.
func (c *Car) TryRelayUnlock(r *Relay, f *Fob) (rtt sim.Duration, err error) {
	dCarA := c.Pos.Dist(r.PosA)
	dBFob := r.PosB.Dist(f.Pos)
	if dCarA > c.LFRangeM {
		c.Rejections.Inc()
		c.emitVerdict(false, "range", 0)
		return 0, fmt.Errorf("%w: relay antenna %.1fm from car", ErrOutOfRange, dCarA)
	}
	if dBFob > c.LFRangeM {
		c.Rejections.Inc()
		c.emitVerdict(false, "range", 0)
		return 0, fmt.Errorf("%w: fob %.1fm from relay antenna", ErrOutOfRange, dBFob)
	}
	ch := c.challenge()
	resp, err := f.respond(ch)
	if err != nil {
		c.Rejections.Inc()
		c.emitVerdict(false, "no-response", 0)
		return 0, err
	}
	dAB := r.PosA.Dist(r.PosB)
	oneWay := sim.Duration((dCarA+dAB+dBFob)*PropagationPerM) + r.Latency
	rtt = 2*oneWay + f.ProcessingTime
	return c.finish(rtt, ch, resp)
}

// finish applies distance bounding and crypto verification.
func (c *Car) finish(rtt sim.Duration, ch [8]byte, resp []byte) (sim.Duration, error) {
	if c.DistanceBounding {
		c.BoundingTrips.Inc()
		budget := c.RTTBudget
		if budget == 0 {
			// Default: fob processing + flight over 2×LF range + 25% guard.
			budget = sim.Duration(float64(2*sim.Millisecond)+2*c.LFRangeM*PropagationPerM) * 5 / 4
		}
		if rtt > budget {
			c.Rejections.Inc()
			c.emitVerdict(false, "rtt", rtt)
			return rtt, fmt.Errorf("%w: %v > %v", ErrRTTExceeded, rtt, budget)
		}
	}
	if err := c.verify(ch, resp); err != nil {
		c.Rejections.Inc()
		reason := "crypto"
		if errors.Is(err, ErrReplay) {
			reason = "replay"
		}
		c.emitVerdict(false, reason, rtt)
		return rtt, err
	}
	c.Unlocks.Inc()
	c.emitVerdict(true, "", rtt)
	return rtt, nil
}

// Immobilizer is the engine-start transponder check: same challenge-
// response, but over the near-field coil (centimetres), so relaying is
// impractical and the threat model is key cracking instead. KeyBits
// models weak legacy transponders (the 40-bit DST of Bono et al. [5]).
type Immobilizer struct {
	key     [16]byte
	KeyBits int

	Starts  sim.Counter
	Rejects sim.Counter
}

// NewImmobilizer creates an immobilizer; keyBits ≤ 128 masks the shared
// key down to legacy sizes.
func NewImmobilizer(key [16]byte, keyBits int) *Immobilizer {
	im := &Immobilizer{KeyBits: keyBits}
	im.key = maskKey(key, keyBits)
	return im
}

func maskKey(key [16]byte, bits int) [16]byte {
	if bits >= 128 {
		return key
	}
	var out [16]byte
	full := bits / 8
	copy(out[:full], key[:full])
	if rem := bits % 8; rem > 0 && full < 16 {
		out[full] = key[full] & (0xFF << (8 - rem))
	}
	return out
}

// StartEngine verifies a transponder holding tkey.
func (im *Immobilizer) StartEngine(tkey [16]byte) bool {
	masked := maskKey(tkey, im.KeyBits)
	ch := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	want, _ := she.CMAC(im.key[:], ch[:])
	got, _ := she.CMAC(masked[:], ch[:])
	ok := subtle.ConstantTimeCompare(want, got) == 1
	if ok {
		im.Starts.Inc()
	} else {
		im.Rejects.Inc()
	}
	return ok
}

// CrackCost returns the expected brute-force work factor (number of CMAC
// trials) against the immobilizer's key space — 2^(KeyBits-1) on average.
// With 40-bit legacy transponders this is ~5.5e11, hours on commodity
// hardware; with 128-bit keys it is cryptographically infeasible. This is
// the quantitative form of reference [5]'s result.
func (im *Immobilizer) CrackCost() float64 {
	return math.Pow(2, float64(im.KeyBits-1))
}
