package someip

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes. The
// invariants: decode never panics, a decode error never returns a
// message, a successful decode survives an encode/decode round trip
// bit-for-bit, and PeekHeader agrees with the full decoder on both
// validity and every header field — the IDS service-misuse detector
// trusts the peek, so a disagreement would let crafted frames slip
// past monitoring that the endpoints accept.
func FuzzDecode(f *testing.F) {
	seed := func(m Message) []byte { return m.encode() }
	f.Add(seed(Message{ServiceID: 0x1234, MethodID: 0x01, ClientID: 0x42, SessionID: 7,
		Type: TypeRequest, Payload: []byte{0xDE, 0xAD}}))
	f.Add(seed(Message{ServiceID: 0x1234, MethodID: 0x10, Type: TypeNotification,
		Payload: []byte{1, 2, 3, 4}}))
	f.Add(seed(Message{ServiceID: 0x1234, Type: TypeOffer}))
	f.Add(seed(Message{ServiceID: 0x1234, MethodID: 0x10, ClientID: 0x42, Type: TypeSubscribe}))
	f.Add(seed(Message{ServiceID: 0xFFFF, MethodID: 0xFFFF, ClientID: 0xFFFF, SessionID: 0xFFFF,
		Type: TypeError, ReturnCode: ReturnUnknownMethod}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 12, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 14))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decode(data)
		h, ok := PeekHeader(data)
		if err != nil {
			if m != nil {
				t.Fatalf("decode returned message with error: %v", err)
			}
			if ok {
				t.Fatalf("PeekHeader accepted %x but decode rejected it", data)
			}
			return
		}
		if !ok {
			t.Fatalf("decode accepted %x but PeekHeader rejected it", data)
		}
		if h.Service != m.ServiceID || h.Method != m.MethodID || h.Client != m.ClientID ||
			h.Session != m.SessionID || h.Type != m.Type || h.ReturnCode != m.ReturnCode ||
			h.PayloadLen != len(m.Payload) {
			t.Fatalf("PeekHeader disagrees with decode: %+v vs %+v", h, m)
		}
		wire := m.encode()
		m2, err := decode(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if m2.ServiceID != m.ServiceID || m2.MethodID != m.MethodID ||
			m2.ClientID != m.ClientID || m2.SessionID != m.SessionID ||
			m2.Type != m.Type || m2.ReturnCode != m.ReturnCode ||
			!bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip diverged:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}
