// Command benchreport regenerates the full experiment suite E1–E15 (plus
// ablations A1–A2) from DESIGN.md and prints each result table, paper
// claim included.
//
// With -seeds N it becomes a replication study: the suite runs once per
// seed (seed, seed+1, …) sharded across a -par-sized worker pool, and the
// printed tables carry mean ± 95% CI, standard deviation and per-seed
// range columns for every cell that varies across seeds. The merge is
// deterministic: any -par value produces byte-identical output.
//
// Usage:
//
//	benchreport [-seed N] [-seeds N] [-par N] [-only E3,E8]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"autosec/internal/experiments"
	"autosec/internal/runner"
)

func main() {
	seed := flag.Uint64("seed", 1, "base scenario seed (same seed, same tables)")
	nseeds := flag.Int("seeds", 1, "number of replicate seeds (seed, seed+1, ...); >1 prints aggregated tables")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "replication worker pool size")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E8); empty runs all")
	flag.Parse()
	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id  string
		run func(uint64) *experiments.Table
	}{
		{"E1", experiments.E1BusDoS},
		{"E2", experiments.E2SideChannel},
		{"E3", experiments.E3FleetCompromise},
		{"E4", experiments.E4Pseudonym},
		{"E5", experiments.E5Tradeoff},
		{"E6", experiments.E6Verification},
		{"E7", experiments.E7AuthenticatedCAN},
		{"E8", experiments.E8Gateway},
		{"E9", experiments.E9Relay},
		{"E10", experiments.E10OTA},
		{"E11", experiments.E11IDS},
		{"E12", experiments.E12Lifetime},
		{"E13", experiments.E13DiagnosticAccess},
		{"E14", experiments.E14BusOff},
		{"E15", experiments.E15VerifyScaling},
		{"A1", experiments.A1MACTruncation},
		{"A2", experiments.A2BoundingThreshold},
	}

	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiments matched -only=%q\n", *only)
		os.Exit(1)
	}

	if *nseeds <= 1 {
		for _, r := range selected {
			start := time.Now()
			table := r.run(*seed)
			fmt.Println(table.String())
			fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
		return
	}

	// Replication mode: run the selected suite once per seed on the pool,
	// then print the deterministic merge.
	suite := func(s uint64) []*experiments.Table {
		tables := make([]*experiments.Table, len(selected))
		for i, r := range selected {
			tables[i] = r.run(s)
		}
		return tables
	}
	seeds := runner.Seeds(*seed, *nseeds)
	start := time.Now()
	tables, err := runner.ReplicateAggregate(context.Background(), suite, seeds, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("  (%d experiments x %d seeds on %d workers in %v)\n",
		len(selected), *nseeds, *par, elapsed)
}
