package workload

import (
	"math"
	"testing"

	"autosec/internal/sensors"
	"autosec/internal/sim"
)

func TestTruthFromCyclePositionContinuous(t *testing.T) {
	truth := TruthFromCycle(CommuteCycle())
	var prev sensors.VehicleState
	for at := sim.Time(0); at < 14*sim.Minute; at += sim.Second {
		st := truth(at)
		if at > 0 {
			dx := st.Pos.X - prev.Pos.X
			// Position advances by at most the fastest phase speed + slack
			// per second, and never goes backwards.
			if dx < 0 || dx > 34 {
				t.Fatalf("discontinuity at %v: dx=%.2f", at, dx)
			}
		}
		prev = st
	}
}

func TestTruthFromCycleSpeedsMatchPhases(t *testing.T) {
	c := CommuteCycle()
	truth := TruthFromCycle(c)
	if got := truth(sim.Minute).SpeedMS; got != 12 {
		t.Fatalf("residential speed=%v", got)
	}
	if got := truth(5 * sim.Minute).SpeedMS; got != 33 {
		t.Fatalf("highway speed=%v", got)
	}
	if got := truth(11 * sim.Minute).SpeedMS; got != 8 {
		t.Fatalf("downtown speed=%v", got)
	}
}

func TestTruthFromCycleObstacles(t *testing.T) {
	truth := TruthFromCycle(CommuteCycle())
	// Highway phase: clear road.
	if !math.IsInf(truth(5*sim.Minute).ObstacleDist, 1) {
		t.Fatal("highway has an obstacle")
	}
	// Downtown: lead vehicle at ~2s headway (16m at 8 m/s).
	if d := truth(11 * sim.Minute).ObstacleDist; d != 16 {
		t.Fatalf("downtown obstacle=%v", d)
	}
}

func TestTruthFromCycleWrapsLaps(t *testing.T) {
	c := CommuteCycle()
	truth := TruthFromCycle(c)
	endOfLap := truth(c.Length() - sim.Second).Pos.X
	startOfNext := truth(c.Length() + sim.Second).Pos.X
	if startOfNext <= endOfLap {
		t.Fatalf("position did not carry across laps: %.1f then %.1f", endOfLap, startOfNext)
	}
}

func TestTruthFromCycleEmpty(t *testing.T) {
	truth := TruthFromCycle(Cycle{})
	st := truth(sim.Minute)
	if st.SpeedMS != 0 || !math.IsInf(st.ObstacleDist, 1) {
		t.Fatalf("empty cycle state: %+v", st)
	}
}

// Integration: drive the commute cycle through the real sensors and the
// fusion module — a clean drive raises no anomalies even across phase
// transitions.
func TestCycleDriveCleanThroughFusion(t *testing.T) {
	truth := TruthFromCycle(CommuteCycle())
	rng := sim.NewStream(3, "drive")
	gps := sensors.NewGPS(2, 0.3, rng)
	wheel := sensors.NewWheelSpeed(0.2, rng)
	lidar := sensors.NewLidar(0.5, rng)
	fusion := sensors.NewFusion()
	for at := sim.Time(0); at < 12*sim.Minute; at += 100 * sim.Millisecond {
		st := truth(at)
		fusion.IngestWheel(at, wheel.Read(at, st))
		pos, sp := gps.Read(at, st)
		fusion.IngestGPS(at, sensors.Position(pos), sp)
		fusion.IngestLidar(at, lidar.Read(at, st))
	}
	// Phase transitions change speed instantaneously in the model; allow
	// the handful of speed-mismatch flags that causes, but nothing else.
	for _, a := range fusion.Anomalies {
		if a.Kind != sensors.AnomalyGPSSpeedMismatch {
			t.Fatalf("unexpected anomaly on clean drive: %+v", a)
		}
	}
	if len(fusion.Anomalies) > 10 {
		t.Fatalf("too many transition artifacts: %d", len(fusion.Anomalies))
	}
}
