package ethernet

import (
	"testing"

	"autosec/internal/sim"
)

func newNet(t *testing.T) (*sim.Kernel, *Switch) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewSwitch(k, "sw0", 5*sim.Microsecond)
}

func TestMACString(t *testing.T) {
	m := LocalMAC(0x0A0B0C0D)
	if got := m.String(); got != "02:00:0a:0b:0c:0d" {
		t.Fatalf("String()=%q", got)
	}
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not recognized")
	}
	if m.IsBroadcast() {
		t.Fatal("unicast recognized as broadcast")
	}
}

func TestWireBytesPadding(t *testing.T) {
	small := Frame{Payload: []byte{1}}
	if small.WireBytes() != 14+4+46+4+8+12 {
		t.Fatalf("padded wire bytes=%d", small.WireBytes())
	}
	big := Frame{Payload: make([]byte, 1500)}
	if big.WireBytes() != 14+4+1500+4+8+12 {
		t.Fatalf("full wire bytes=%d", big.WireBytes())
	}
}

func TestValidate(t *testing.T) {
	bad := Frame{Payload: make([]byte, 1501)}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversize payload accepted")
	}
	badVLAN := Frame{VLAN: 4095}
	if err := badVLAN.Validate(); err == nil {
		t.Fatal("VLAN 4095 accepted")
	}
}

func TestFloodThenLearnedUnicast(t *testing.T) {
	k, sw := newNet(t)
	a := NewHost("a", LocalMAC(1))
	b := NewHost("b", LocalMAC(2))
	c := NewHost("c", LocalMAC(3))
	sw.Connect(a, 10)
	sw.Connect(b, 10)
	sw.Connect(c, 10)

	var bGot, cGot int
	b.OnReceive(func(sim.Time, *Frame) { bGot++ })
	c.OnReceive(func(sim.Time, *Frame) { cGot++ })

	// First frame to b's (unlearned) MAC floods to both.
	_ = a.Send(Frame{Dst: LocalMAC(2), Payload: []byte("hello")})
	_ = k.Run()
	if bGot != 1 || cGot != 1 {
		t.Fatalf("after flood: b=%d c=%d", bGot, cGot)
	}
	// b replies; switch learns both. Next a->b frame is unicast.
	_ = b.Send(Frame{Dst: LocalMAC(1), Payload: []byte("re")})
	_ = k.Run()
	_ = a.Send(Frame{Dst: LocalMAC(2), Payload: []byte("again")})
	_ = k.Run()
	if bGot != 2 {
		t.Fatalf("b did not get unicast: %d", bGot)
	}
	if cGot != 1 {
		t.Fatalf("c saw a learned unicast: %d", cGot)
	}
	// Only the first frame flooded; b's reply and a's second frame were
	// forwarded via the learned table.
	if sw.FramesFlooded.Value != 1 || sw.FramesForwarded.Value != 2 {
		t.Fatalf("flooded=%d forwarded=%d", sw.FramesFlooded.Value, sw.FramesForwarded.Value)
	}
}

func TestVLANSeparation(t *testing.T) {
	k, sw := newNet(t)
	ivi := NewHost("infotainment", LocalMAC(1))
	pt := NewHost("powertrain", LocalMAC(2))
	sw.Connect(ivi, 10)
	sw.Connect(pt, 20)

	got := 0
	pt.OnReceive(func(sim.Time, *Frame) { got++ })
	// Broadcast from VLAN 10 must not reach VLAN 20.
	_ = ivi.Send(Frame{Dst: Broadcast, Payload: []byte("spam")})
	// Tagged frame claiming VLAN 20 from a VLAN-10 access port is dropped
	// at ingress.
	_ = ivi.Send(Frame{Dst: Broadcast, VLAN: 20, Payload: []byte("hop")})
	_ = k.Run()
	if got != 0 {
		t.Fatalf("powertrain received %d frames across VLANs", got)
	}
	if sw.VLANViolations.Value != 1 {
		t.Fatalf("VLANViolations=%d, want 1", sw.VLANViolations.Value)
	}
}

func TestTrunkPortCarriesMultipleVLANs(t *testing.T) {
	k, sw := newNet(t)
	gw := NewHost("gateway", LocalMAC(9))
	a := NewHost("a", LocalMAC(1))
	p := sw.Connect(gw, 1)
	p.Allowed = map[uint16]bool{10: true, 20: true}
	sw.Connect(a, 10)

	got := 0
	gw.OnReceive(func(_ sim.Time, f *Frame) {
		if f.VLAN == 10 {
			got++
		}
	})
	_ = a.Send(Frame{Dst: Broadcast, Payload: []byte("x")})
	_ = k.Run()
	if got != 1 {
		t.Fatalf("trunk port got %d frames", got)
	}
}

func TestPolicerDropsExcess(t *testing.T) {
	k, sw := newNet(t)
	src := NewHost("src", LocalMAC(1))
	dst := NewHost("dst", LocalMAC(2))
	p := sw.Connect(src, 10)
	p.Police = &Policer{RateBps: 10_000, BurstBytes: 200}
	sw.Connect(dst, 10)

	got := 0
	dst.OnReceive(func(sim.Time, *Frame) { got++ })
	// Burst of 10 minimum-size frames (88 wire bytes each) at t=0: bucket
	// holds 200 bytes -> 2 frames pass.
	for i := 0; i < 10; i++ {
		_ = src.Send(Frame{Dst: Broadcast, Payload: []byte{byte(i)}})
	}
	_ = k.Run()
	if got != 2 {
		t.Fatalf("policer passed %d frames, want 2", got)
	}
	if sw.Policed.Value != 8 {
		t.Fatalf("policed=%d", sw.Policed.Value)
	}
	// After a second of refill, more frames pass.
	k2 := k
	_ = k2.RunUntil(k.Now() + sim.Second)
	_ = src.Send(Frame{Dst: Broadcast, Payload: []byte{0xFF}})
	_ = k.Run()
	if got != 3 {
		t.Fatalf("after refill got=%d", got)
	}
}

func TestLatencyModel(t *testing.T) {
	k, sw := newNet(t)
	a := NewHost("a", LocalMAC(1))
	b := NewHost("b", LocalMAC(2))
	sw.Connect(a, 10)
	sw.Connect(b, 10)
	var at sim.Time
	b.OnReceive(func(now sim.Time, _ *Frame) { at = now })
	f := Frame{Dst: Broadcast, Payload: make([]byte, 100)}
	wire := f.WireBytes()
	_ = a.Send(f)
	_ = k.Run()
	// 2 serializations at 100Mbps + 5us switch latency.
	want := 2*sim.Duration(float64(wire*8)/100e6*1e9) + 5*sim.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSpoofKeepsForgedSource(t *testing.T) {
	k, sw := newNet(t)
	atk := NewHost("attacker", LocalMAC(66))
	vic := NewHost("victim", LocalMAC(2))
	sw.Connect(atk, 10)
	sw.Connect(vic, 10)
	var srcSeen MAC
	vic.OnReceive(func(_ sim.Time, f *Frame) { srcSeen = f.Src })
	_ = atk.Spoof(Frame{Src: LocalMAC(1), Dst: Broadcast, Payload: []byte("forged")})
	_ = k.Run()
	if srcSeen != LocalMAC(1) {
		t.Fatalf("spoofed source not preserved: %v", srcSeen)
	}
	// Regular Send overwrites the source.
	_ = atk.Send(Frame{Src: LocalMAC(1), Dst: Broadcast, Payload: []byte("normal")})
	_ = k.Run()
	if srcSeen != LocalMAC(66) {
		t.Fatalf("Send did not force the real source: %v", srcSeen)
	}
}

func TestObserver(t *testing.T) {
	k, sw := newNet(t)
	a := NewHost("a", LocalMAC(1))
	b := NewHost("b", LocalMAC(2))
	sw.Connect(a, 10)
	sw.Connect(b, 10)
	seen := 0
	sw.Observe(func(sim.Time, *Frame, *Port) { seen++ })
	_ = a.Send(Frame{Dst: Broadcast})
	_ = b.Send(Frame{Dst: Broadcast})
	_ = k.Run()
	if seen != 2 {
		t.Fatalf("observer saw %d frames", seen)
	}
}

func TestDetachedHostSend(t *testing.T) {
	h := NewHost("x", LocalMAC(1))
	if err := h.Send(Frame{Dst: Broadcast}); err == nil {
		t.Fatal("detached Send succeeded")
	}
}

func TestPolicerUnconfiguredAdmitsAll(t *testing.T) {
	p := &Policer{}
	for i := 0; i < 100; i++ {
		if !p.Allow(sim.Time(i), 1500) {
			t.Fatal("unconfigured policer dropped a frame")
		}
	}
}
