package core

import (
	"autosec/internal/can"
	"autosec/internal/isotp"
	"autosec/internal/uds"
)

// Diagnostics is a vehicle's UDS endpoint: the ECU-side server plus a
// tester-side client already wired onto the same domain, as a workshop
// (or an attacker with OBD access) would see it.
type Diagnostics struct {
	Server *uds.Server
	// Tester is a ready-made client on the same bus (the OBD port).
	Tester *uds.Client

	serverCtrl *can.Controller
	testerCtrl *can.Controller
}

// Standard OBD diagnostic identifiers.
const (
	DiagRequestID  can.ID = 0x7E0
	DiagResponseID can.ID = 0x7E8
)

// AttachDiagnostics wires a UDS server (and an OBD tester client) onto
// the named domain. The algorithm decides SecurityAccess strength — the
// E13 experiment compares uds.WeakXOR against uds.SHECMAC backed by this
// vehicle's SHE.
func (v *Vehicle) AttachDiagnostics(domain string, alg uds.SeedKeyAlgorithm) *Diagnostics {
	bus := v.Buses[domain]
	serverCtrl := can.NewController("diag-ecu")
	testerCtrl := can.NewController("obd-tester")
	bus.Attach(serverCtrl)
	bus.Attach(testerCtrl)

	serverEP := isotp.New(v.Kernel, serverCtrl, isotp.Config{TxID: DiagResponseID, RxID: DiagRequestID})
	testerEP := isotp.New(v.Kernel, testerCtrl, isotp.Config{TxID: DiagRequestID, RxID: DiagResponseID})

	srv := uds.NewServer(v.Kernel, serverEP, uds.ServerConfig{
		Algorithm: alg,
		Rand:      v.Kernel.Stream("uds." + v.VIN),
	})
	srv.SetData(uds.DIDVIN, []byte(v.VIN), 0, 0)
	srv.SetData(uds.DIDSWVersion, []byte{1, 0, 0}, 0, 0)
	srv.SetData(uds.DIDCalibration, []byte{0x10, 0x20, 0x30, 0x40}, 0, 1)

	d := &Diagnostics{
		Server:     srv,
		Tester:     uds.NewClient(testerEP),
		serverCtrl: serverCtrl,
		testerCtrl: testerCtrl,
	}
	_ = v.Arch.Install(SecureProcessing, Implementation{Name: "uds-" + alg.Name(), Version: 1, Component: srv})
	return d
}

// NewIntruderTester attaches another tester client to the same domain —
// the attacker's interface once they own any node on the diagnostic bus.
func (v *Vehicle) NewIntruderTester(domain string) *uds.Client {
	ctrl := can.NewController("intruder")
	v.Buses[domain].Attach(ctrl)
	ep := isotp.New(v.Kernel, ctrl, isotp.Config{TxID: DiagRequestID, RxID: DiagResponseID})
	return uds.NewClient(ep)
}

// RunDiag drives a request synchronously for scenario code: it sends,
// runs the kernel until quiescent, and returns the response.
func (v *Vehicle) RunDiag(c *uds.Client, req []byte) ([]byte, error) {
	var resp []byte
	if err := c.Request(req, func(b []byte) { resp = b }); err != nil {
		return nil, err
	}
	_ = v.Kernel.Run()
	return resp, nil
}

// RunUnlock drives the two-step SecurityAccess handshake synchronously.
func (v *Vehicle) RunUnlock(c *uds.Client, level byte, alg uds.SeedKeyAlgorithm) error {
	var result error
	if err := c.Unlock(level, alg, func(err error) { result = err }); err != nil {
		return err
	}
	_ = v.Kernel.Run()
	return result
}
