package experiments

import (
	"context"
	"fmt"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/fleet"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// E18 sweeps fleet size × zone count over the pooled fleet driver: every
// cell simulates each vehicle of an n-vehicle fleet end to end (20% of
// them carrying a compromised infotainment ECU), then folds the
// per-vehicle metrics through the replicate-aggregation machinery with
// one "replicate" per vehicle, merged in vehicle-index order. What the
// sweep measures is the fleet-scale shape of the §7 containment story:
// how much attack traffic reaches powertrains fleet-wide, what the
// backbone carries per vehicle as zone count grows, and how big the
// quarantine blast radius is when the reflex fires.
//
// Wall-clock throughput (vehicles/sec) is deliberately absent from the
// table — it is machine-dependent and lives in BenchmarkFleetVehiclesPerSec
// and benchreport -fleet instead.
func E18Fleet(seed uint64) *Table {
	return E18FleetWith(seed, []int{1_000, 10_000, 100_000}, []int{1, 2, 4})
}

// e18Compromised marks every fifth vehicle as carrying the compromised
// head unit: 20% of the fleet, spread uniformly over the index space.
func e18Compromised(idx int) bool { return idx%5 == 0 }

// E18FleetWith runs the sweep over custom fleet sizes and zone counts
// (zones == 1 builds the central-gateway topology). benchreport's -fleet
// flag feeds custom sweeps through here; the golden table uses the
// defaults {1e3, 1e4, 1e5} × {1, 2, 4}.
func E18FleetWith(seed uint64, fleetSizes, zoneCounts []int) *Table {
	t := &Table{
		ID:    "E18",
		Title: "Fleet-scale sweep: pooled vehicles × zonal containment (§7)",
		Claim: "a pooled fleet driver scales per-vehicle containment measurements to 1e5 vehicles; finer zoning shrinks the quarantine blast radius at the cost of backbone load",
		Columns: []string{"fleet", "topology", "domains",
			"attack through/veh", "legit through/veh", "blocked/veh",
			"backbone frames/veh", "quarantined fraction", "blast radius"},
	}
	for _, zones := range zoneCounts {
		cfg := core.Config{VIN: "E18-FLEET", Seed: seed}
		topology := "central gateway"
		domains := 3 // powertrain, chassis, infotainment
		blast := 1   // central quarantine isolates just the offending domain
		if zones > 1 {
			// One private body domain per zone, so zone quarantine has
			// collateral: the infotainment zone's local domain goes down
			// with it.
			cfg.Zonal = &core.ZonalConfig{
				Zones:        zones,
				LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
			}
			topology = fmt.Sprintf("%d zones", zones)
			domains = 3 + zones
			blast = 2 // infotainment + its zone's body domain
		}
		for _, n := range fleetSizes {
			d := fleet.Driver{Cfg: cfg, N: n}
			perVehicle, err := fleet.Drive(context.Background(), d, func(idx int, v *core.Vehicle) (*Table, error) {
				return e18Vehicle(v, e18Compromised(idx)), nil
			})
			if err != nil {
				panic(fmt.Sprintf("E18: fleet drive (n=%d, zones=%d): %v", n, zones, err))
			}
			folds := make([][]*Table, len(perVehicle))
			for i, vt := range perVehicle {
				folds[i] = []*Table{vt}
			}
			agg, err := Aggregate(folds)
			if err != nil {
				panic(fmt.Sprintf("E18: aggregate (n=%d, zones=%d): %v", n, zones, err))
			}
			cell := func(name string) string {
				for c, col := range agg[0].Columns {
					if col == name {
						return agg[0].Rows[0][c]
					}
				}
				panic("E18: missing per-vehicle metric column " + name)
			}
			t.AddRow(n, topology, domains,
				cell("attack through"), cell("legit through"), cell("blocked"),
				cell("backbone frames"), cell("quarantined"),
				fmt.Sprintf("%d/%d domains", blast, domains))
		}
	}
	return t
}

// e18Vehicle runs one vehicle's 7ms scenario and returns its single-row
// metrics table (shape shared by every vehicle so the aggregation fold
// can merge them).
//
// The policy is a carried-over legacy-open rule set: everything from
// infotainment crosses to powertrain, so a compromised head unit's
// engine-torque flood (ID 0x0C0, from t=2ms) reaches the powertrain
// until a monitor at the attachment point — the stand-in for the IDS
// reflex — sees the third attack frame and quarantines the source:
// centrally the infotainment domain alone, zonally its whole zone at the
// backbone uplink. Legit cross-domain flows (nav pings, chassis
// heartbeats) run throughout and measure the collateral. "Blocked" is
// end-to-end — attack frames sent minus attack frames that reached the
// powertrain — because zonal quarantine drops egress at the backbone
// uplink without a per-frame gateway verdict.
func e18Vehicle(v *core.Vehicle, compromised bool) *Table {
	k := v.Kernel
	rules := []*gateway.Rule{
		{Name: "legacy-open", From: core.DomainInfotainment, To: []string{core.DomainPowertrain},
			IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow},
		{Name: "chassis-status", From: core.DomainChassis, To: []string{core.DomainPowertrain},
			IDLo: 0x400, IDHi: 0x40F, Action: gateway.Allow},
	}
	if v.Zonal != nil {
		v.Zonal.SetRules(rules)
	} else {
		v.Gateway.SetRules(rules)
	}
	// The quarantine reflex is modeled by the attachment-point monitor
	// below, so the stock detector trio only adds per-frame cost here;
	// removing it is scenario state that the pool's next Reset restores.
	for _, name := range []string{"frequency", "interval", "spec"} {
		v.IDS.Remove(name)
	}

	isolated := 0
	quarantine := func() {
		if isolated > 0 {
			return
		}
		if v.Zonal != nil {
			_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
			z, _ := v.Zonal.ZoneOf(core.DomainInfotainment)
			for _, name := range v.Zonal.Domains() {
				if zz, ok := v.Zonal.ZoneOf(name); ok && zz == z {
					isolated++
				}
			}
		} else {
			_ = v.Gateway.Quarantine(core.DomainInfotainment)
			isolated = 1
		}
	}

	// Per-vehicle phase jitter from the kernel's seeded stream: ECUs in a
	// real fleet don't boot in lockstep, and the jitter is what makes the
	// per-vehicle seed (and the pool's reseeding on Reset) observable in
	// the fleet aggregate.
	rng := k.Stream("e18-phase")
	phase := func(lo, hi sim.Duration) sim.Duration { return rng.Duration(lo, hi) }

	// Legit flows: a nav ping crossing infotainment→powertrain and a
	// chassis heartbeat (cross-zone on zonal builds with enough zones).
	nav := can.NewController("nav")
	v.Buses[core.DomainInfotainment].Attach(nav)
	k.Every(phase(500*sim.Microsecond, 1500*sim.Microsecond), 4*sim.Millisecond, func() {
		_ = nav.Send(can.Frame{ID: 0x155, Data: []byte{0x4E, 0x41, 0x56, 0x31}}, nil)
	})
	status := can.NewController("chassis-ecu")
	v.Buses[core.DomainChassis].Attach(status)
	k.Every(phase(1500*sim.Microsecond, 2500*sim.Microsecond), 4*sim.Millisecond, func() {
		_ = status.Send(can.Frame{ID: 0x405, Data: []byte{0x05, 0x01}}, nil)
	})

	// Compromised head unit: engine-torque flood through legacy-open.
	attackSent := 0
	if compromised {
		mal := can.NewController("headunit")
		v.Buses[core.DomainInfotainment].Attach(mal)
		k.Every(phase(sim.Millisecond, 3*sim.Millisecond), sim.Millisecond, func() {
			attackSent++
			_ = mal.Send(can.Frame{ID: 0x0C0, Data: []byte{0xFF, 0xFF, 0, 0, 0, 0, 0, 0}}, nil)
		})
	}

	// Powertrain attachment-point monitor: counts what crossed and fires
	// the quarantine reflex on the third attack frame.
	attackThrough, legitThrough := 0, 0
	mon := can.NewController("monitor")
	v.Buses[core.DomainPowertrain].Attach(mon)
	mon.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		switch f.ID {
		case 0x0C0:
			attackThrough++
			if attackThrough >= 3 {
				quarantine()
			}
		case 0x155, 0x405:
			legitThrough++
		}
	})

	k.RunUntil(7 * sim.Millisecond)

	backbone := int64(0)
	if v.Zonal != nil {
		backbone = v.Zonal.BackboneFrames.Value
	}
	quarantined := 0
	if isolated > 0 {
		quarantined = 1
	}
	vt := &Table{
		ID:      "E18V",
		Columns: []string{"attack through", "legit through", "blocked", "backbone frames", "quarantined", "domains isolated"},
	}
	vt.AddRow(attackThrough, legitThrough, attackSent-attackThrough, backbone, quarantined, isolated)
	return vt
}
