// Package can simulates Controller Area Network buses (CAN 2.0A/B and
// CAN FD) at the frame level with bit-accurate timing: identifier-based
// bitwise arbitration, bit stuffing, CRC-15, error counters with the
// error-active/error-passive/bus-off state machine, and bus load
// accounting.
//
// The simulation is built on the sim kernel: a Bus schedules frame
// transmissions on the virtual clock; at every bus-idle instant the
// lowest-identifier pending frame wins arbitration, exactly as the CSMA/CR
// protocol resolves it on a real wire.
package can

import (
	"errors"
	"fmt"
)

// ID is a CAN identifier. Standard (11-bit) identifiers occupy the low 11
// bits; extended (29-bit) identifiers the low 29 bits.
type ID uint32

const (
	// MaxStandardID is the largest valid 11-bit identifier.
	MaxStandardID ID = 0x7FF
	// MaxExtendedID is the largest valid 29-bit identifier.
	MaxExtendedID ID = 0x1FFFFFFF
)

// Frame is a single CAN data or remote frame.
type Frame struct {
	ID       ID
	Extended bool   // 29-bit identifier
	Remote   bool   // remote transmission request (classic CAN only)
	FD       bool   // CAN FD frame (up to 64 data bytes, no RTR)
	BRS      bool   // FD bit-rate switch: data phase at the fast bitrate
	Data     []byte // 0..8 bytes classic, 0..64 bytes (valid DLC sizes) FD
}

// Validation errors.
var (
	ErrIDRange     = errors.New("can: identifier out of range")
	ErrDataLength  = errors.New("can: invalid data length")
	ErrRemoteFD    = errors.New("can: remote frames do not exist in CAN FD")
	ErrFDLengthSet = errors.New("can: data length not encodable as an FD DLC")
)

// fdSizes are the payload sizes representable by a CAN FD DLC.
var fdSizes = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}

// Validate checks identifier range, payload length and flag consistency.
func (f *Frame) Validate() error {
	max := MaxStandardID
	if f.Extended {
		max = MaxExtendedID
	}
	if f.ID > max {
		return fmt.Errorf("%w: %#x (extended=%v)", ErrIDRange, f.ID, f.Extended)
	}
	if f.FD {
		if f.Remote {
			return ErrRemoteFD
		}
		if len(f.Data) > 64 {
			return fmt.Errorf("%w: %d > 64", ErrDataLength, len(f.Data))
		}
		if _, ok := fdDLC(len(f.Data)); !ok {
			return fmt.Errorf("%w: %d", ErrFDLengthSet, len(f.Data))
		}
		return nil
	}
	if len(f.Data) > 8 {
		return fmt.Errorf("%w: %d > 8", ErrDataLength, len(f.Data))
	}
	return nil
}

// fdDLC returns the DLC code for an FD payload size, and whether the size
// is exactly representable.
func fdDLC(n int) (byte, bool) {
	for code, size := range fdSizes {
		if size == n {
			return byte(code), true
		}
	}
	return 0, false
}

// FDSizeForDLC returns the payload size encoded by an FD DLC code (0-15).
func FDSizeForDLC(dlc byte) int {
	if int(dlc) >= len(fdSizes) {
		return 64
	}
	return fdSizes[dlc]
}

// PadToFD grows data with the pad byte to the next valid FD payload size.
// Payloads longer than 64 bytes are rejected.
func PadToFD(data []byte, pad byte) ([]byte, error) {
	if len(data) > 64 {
		return nil, fmt.Errorf("%w: %d > 64", ErrDataLength, len(data))
	}
	for _, size := range fdSizes {
		if size >= len(data) {
			out := make([]byte, size)
			copy(out, data)
			for i := len(data); i < size; i++ {
				out[i] = pad
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %d", ErrFDLengthSet, len(data))
}

// DLC returns the data length code carried in the control field.
func (f *Frame) DLC() byte {
	if f.FD {
		c, _ := fdDLC(len(f.Data))
		return c
	}
	return byte(len(f.Data))
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() Frame {
	c := *f
	c.Data = append([]byte(nil), f.Data...)
	return c
}

// Equal reports whether two frames carry the same identifier, flags and
// payload.
func (f *Frame) Equal(g *Frame) bool {
	if f.ID != g.ID || f.Extended != g.Extended || f.Remote != g.Remote ||
		f.FD != g.FD || f.BRS != g.BRS || len(f.Data) != len(g.Data) {
		return false
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			return false
		}
	}
	return true
}

// ArbitrationValue returns the value compared during arbitration. Lower
// values win. Standard frames beat extended frames with the same leading
// 11 bits because the SRR/IDE bits are recessive in the extended format;
// we model that by left-aligning the 11-bit ID and breaking ties with the
// IDE bit.
func (f *Frame) ArbitrationValue() uint64 {
	if f.Extended {
		return uint64(f.ID)<<1 | 1
	}
	// Left-align an 11-bit ID against 29-bit IDs.
	return uint64(f.ID)<<19 | 0
}

// String renders the frame in candump-like notation.
func (f *Frame) String() string {
	kind := ""
	switch {
	case f.FD && f.BRS:
		kind = " FD/BRS"
	case f.FD:
		kind = " FD"
	case f.Remote:
		kind = " RTR"
	}
	idw := 3
	if f.Extended {
		idw = 8
	}
	return fmt.Sprintf("%0*X%s [%d] % X", idw, uint32(f.ID), kind, len(f.Data), f.Data)
}
