package workload

import (
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
)

func TestMatricesWellFormed(t *testing.T) {
	for _, specs := range [][]MessageSpec{PowertrainMatrix(), BodyMatrix()} {
		seen := make(map[can.ID]bool)
		for _, s := range specs {
			if s.Period <= 0 || s.Size < 1 || s.Size > 8 || s.Sender == "" {
				t.Fatalf("bad spec %+v", s)
			}
			if seen[s.ID] {
				t.Fatalf("duplicate ID %#x", s.ID)
			}
			seen[s.ID] = true
			if f := (can.Frame{ID: s.ID, Data: make([]byte, s.Size)}); f.Validate() != nil {
				t.Fatalf("invalid frame for %+v", s)
			}
		}
	}
}

func TestSyntheticTraceShape(t *testing.T) {
	specs := PowertrainMatrix()
	tr := SyntheticTrace(specs, 10*sim.Second, 1, 0.01)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	// Time ordered.
	for i := 1; i < tr.Len(); i++ {
		if tr.Records[i].At < tr.Records[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	// The 10ms message appears ~1000 times; the 1s message ~10.
	fast := len(tr.ByID(0x0C0))
	slow := len(tr.ByID(0x4A0))
	if fast < 950 || fast > 1050 {
		t.Fatalf("fast count=%d", fast)
	}
	if slow < 8 || slow > 12 {
		t.Fatalf("slow count=%d", slow)
	}
	// Every matrix ID is present.
	if got := len(tr.IDs()); got != len(specs) {
		t.Fatalf("distinct IDs=%d, want %d", got, len(specs))
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	a := SyntheticTrace(PowertrainMatrix(), 2*sim.Second, 7, 0.05)
	b := SyntheticTrace(PowertrainMatrix(), 2*sim.Second, 7, 0.05)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i].At != b.Records[i].At || a.Records[i].Frame.ID != b.Records[i].Frame.ID {
			t.Fatalf("records differ at %d", i)
		}
	}
}

func TestStartSendersOnBus(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "pt", 500_000)
	trace := can.Recorder(bus)
	ctrls, stop := StartSenders(k, bus, PowertrainMatrix(), 0.01)
	_ = k.RunUntil(5 * sim.Second)
	stop()
	if len(ctrls) == 0 {
		t.Fatal("no controllers created")
	}
	if trace.Len() < 1000 {
		t.Fatalf("only %d frames in 5s", trace.Len())
	}
	// Bus load for this matrix at 500kbit/s is tens of percent at most.
	if l := bus.Load(); l < 0.02 || l > 0.6 {
		t.Fatalf("bus load %.3f", l)
	}
	// One controller per distinct sender.
	senders := make(map[string]bool)
	for _, s := range PowertrainMatrix() {
		senders[s.Sender] = true
	}
	if len(ctrls) != len(senders) {
		t.Fatalf("controllers=%d senders=%d", len(ctrls), len(senders))
	}
}

func TestCycleAtAndWrap(t *testing.T) {
	c := CommuteCycle()
	if got := c.At(sim.Minute).Name; got != "residential" {
		t.Fatalf("at 1m: %s", got)
	}
	if got := c.At(5 * sim.Minute).Name; got != "highway" {
		t.Fatalf("at 5m: %s", got)
	}
	if got := c.At(11 * sim.Minute).Name; got != "downtown" {
		t.Fatalf("at 11m: %s", got)
	}
	// Wraps after 12 minutes.
	if got := c.At(13 * sim.Minute).Name; got != "residential" {
		t.Fatalf("wrapped at 13m: %s", got)
	}
	if c.Length() != 12*sim.Minute {
		t.Fatalf("length=%v", c.Length())
	}
}

func TestCycleEmpty(t *testing.T) {
	var c Cycle
	if c.Length() != 0 {
		t.Fatal("empty length")
	}
	if p := c.At(sim.Second); p.Name != "" {
		t.Fatal("empty cycle phase")
	}
}

func TestCityVsHighwayShape(t *testing.T) {
	city := CityCycle().At(0)
	hwy := HighwayCycle().At(0)
	if city.PedestrianDensity <= hwy.PedestrianDensity {
		t.Fatal("city not denser than highway")
	}
	if city.SpeedMS >= hwy.SpeedMS {
		t.Fatal("city not slower than highway")
	}
}
