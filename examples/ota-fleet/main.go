// OTA fleet compromise: the paper's §4.2 chained attack, end to end.
// An attacker with physical access to one vehicle extracts its SHE master
// key through the power side channel (real CPA against the simulated
// leakage), then tries to weaponize the key (a) for malicious SHE key
// loads across the fleet under each provisioning policy and (b) against
// the Uptane-style OTA pipeline, where a single stolen key is not enough.
//
//	go run ./examples/ota-fleet
package main

import (
	"fmt"
	"log"

	"autosec/internal/fleet"
	"autosec/internal/ota"
	"autosec/internal/she"
	"autosec/internal/sidechannel"
	"autosec/internal/sim"
)

func main() {
	var master [16]byte
	copy(master[:], "prod-master-2026")

	fmt.Println("== step 1: physical access + side channel ==")
	f := fleet.New(500, 5, fleet.SharedKey, master)
	victim := f.Vehicles[0]
	// The attacker measures 2000 encryptions on the bench.
	rng := sim.NewStream(99, "bench")
	// Make the victim's master key usable for encryption probing in a
	// spare slot (a real attacker triggers any key-use they can provoke;
	// SHE's CMAC path leaks identically in this model).
	if err := victim.Engine.ProvisionKey(she.Key9, victim.MasterKey(), she.Flags{}); err != nil {
		log.Fatal(err)
	}
	ts, err := sidechannel.AcquireFromEngine(victim.Engine, she.Key9, 2000,
		sidechannel.Config{NoiseSigma: 1.5}, rng)
	if err != nil {
		log.Fatal(err)
	}
	recovered := sidechannel.CPA(ts)
	rate := sidechannel.SuccessRate(recovered, victim.MasterKey())
	fmt.Printf("CPA over %d traces recovered %.0f%% of the key bytes\n", 2000, 100*rate)
	if rate < 1 {
		fmt.Println("(partial recovery — a real attacker acquires more traces; see E2)")
	}

	fmt.Println("\n== step 2: one key against the fleet, per provisioning policy ==")
	for _, pol := range []fleet.Policy{fleet.SharedKey, fleet.PerModel, fleet.PerDevice} {
		fl := fleet.New(500, 5, pol, master)
		res := fl.AssessCompromise(0)
		fmt.Printf("%-11s -> %3d/%d vehicles accept a malicious key load (%.1f%%)\n",
			pol, res.Compromised, res.FleetSize, 100*res.Fraction())
	}

	fmt.Println("\n== step 3: the stolen key against Uptane-style OTA ==")
	director, err := ota.NewRepository("director")
	if err != nil {
		log.Fatal(err)
	}
	image, err := ota.NewRepository("image")
	if err != nil {
		log.Fatal(err)
	}
	client := ota.NewClient("VIN-000042", director.PublicKey(), image.PublicKey())
	client.AddECU("brake-mcu", 1)

	evil := []byte("malicious brake firmware")
	evilTarget := ota.MakeTarget("brake-fw", 2, "brake-mcu", evil)
	// Suppose the attacker even stole the *director's* signing key.
	forged := &ota.Bundle{
		Director: ota.ForgeMetadata(director.StealKey(), "director", "VIN-000042", 9, []ota.Target{evilTarget}, sim.Hour),
		Image:    image.Sign("", nil, sim.Hour), // the image repo never attested it
		Payloads: map[string][]byte{"brake-fw": evil},
	}
	if err := client.Apply(forged, sim.Minute); err != nil {
		fmt.Printf("forged campaign with ONE stolen repo key: rejected (%v)\n", err)
	} else {
		fmt.Println("forged campaign installed — this should not happen")
	}

	good := []byte("brake firmware v2, signed by both repositories")
	target := ota.MakeTarget("brake-fw", 2, "brake-mcu", good)
	legit := &ota.Bundle{
		Director: director.Sign("VIN-000042", []ota.Target{target}, sim.Hour),
		Image:    image.Sign("", []ota.Target{target}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": good},
	}
	if err := client.Apply(legit, sim.Minute); err != nil {
		log.Fatalf("legitimate campaign rejected: %v", err)
	}
	ecu, _ := client.ECU("brake-mcu")
	fmt.Printf("legitimate campaign: installed %s v%d\n", ecu.InstalledName, ecu.InstalledVersion)
	fmt.Println("\n(the architecture lesson: unique-per-device keys bound step 2, and the\n" +
		" two-repository OTA design bounds step 3 — defense in depth per layer)")
}
