package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/flexray"
	"autosec/internal/gateway"
	"autosec/internal/lin"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// eqRng is a self-contained splitmix64 for the property generator, so the
// test's random choices never touch the vehicles' own seeded streams.
type eqRng struct{ state uint64 }

func (r *eqRng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *eqRng) intn(n int) int      { return int(r.next() % uint64(n)) }
func (r *eqRng) chance(pct int) bool { return r.intn(100) < pct }

// eqRandomConfig draws a build configuration from the full extensibility
// envelope: central or zonal topology, mixed-media extra domains, MAC
// truncation widths and an optional policy plane.
func eqRandomConfig(r *eqRng, trial int) Config {
	cfg := Config{
		VIN:     fmt.Sprintf("EQ-%02d", trial),
		MACBits: []int{0, 0, 24, 32}[r.intn(4)],
	}
	if r.chance(40) {
		cfg.PolicyKey = []byte("eq-policy-authority-key")
	}
	kinds := []netif.Kind{netif.CAN, netif.LIN, netif.FlexRay, netif.Ethernet}
	for i, n := 0, r.intn(3); i < n; i++ {
		cfg.ExtraDomains = append(cfg.ExtraDomains, DomainSpec{
			Name: fmt.Sprintf("extra%d", i),
			Kind: kinds[r.intn(len(kinds))],
		})
	}
	if r.chance(50) {
		z := &ZonalConfig{Zones: 2 + r.intn(3)}
		if r.chance(50) {
			z.LocalDomains = []DomainSpec{{Name: "body", Kind: netif.CAN}}
		}
		cfg.Zonal = z
	}
	// Detection-plane envelope: nil keeps the historical default; an
	// explicit config widens the taps to every extra domain, and the
	// medium-aware draw swaps in the semantic suite, whose registry
	// routing order Reset must rebuild exactly.
	switch r.intn(3) {
	case 1:
		cfg.IDS = &IDSConfig{}
	case 2:
		cfg.IDS = &IDSConfig{MediumAware: true}
	}
	return cfg
}

// eqScenario dirties one vehicle with a randomized scenario derived
// entirely from scenSeed, then returns the fingerprint. Every choice the
// scenario makes comes either from its private rng (so the same scenSeed
// replays the same script on any vehicle) or from the vehicle's own
// kernel streams (so the vehicle seed is load-bearing too).
func eqScenario(t *testing.T, v *Vehicle, scenSeed uint64) string {
	t.Helper()
	r := &eqRng{state: scenSeed}
	k := v.Kernel

	tr := obs.NewTracer(1 << 12)
	reg := obs.NewRegistry()
	v.Instrument(tr, reg)

	// Policy-layer churn: a randomized cross-domain rule set.
	rules := eqRandomRules(r)
	if v.Zonal != nil {
		v.Zonal.SetRules(rules)
	} else {
		v.Gateway.SetRules(rules)
	}

	// Architecture churn: install a scenario-local implementation and
	// sometimes deprecate it again — both append to the upgrade log, so
	// this drives Reset's restoreArch down the slow (full-rewind) path.
	if r.chance(60) {
		layer := Layer(r.intn(5))
		if err := v.Arch.Install(layer, Implementation{Name: "eq-impl", Version: 1}); err != nil {
			t.Fatalf("arch install: %v", err)
		}
		if r.chance(50) {
			if err := v.Arch.Deprecate(layer, "eq-impl"); err != nil {
				t.Fatalf("arch deprecate: %v", err)
			}
		}
	}

	// Traffic on the standard domains, phases drawn from the vehicle's
	// seeded kernel stream.
	st := k.Stream("eq-phase")
	for i, dom := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		if !r.chance(70) {
			continue
		}
		c := can.NewController(fmt.Sprintf("eq-ecu%d", i))
		v.Buses[dom].Attach(c)
		id := can.ID(0x100 + r.intn(0x300))
		payload := byte(r.intn(256))
		period := sim.Duration(200+r.intn(800)) * sim.Microsecond
		k.Every(st.Duration(100*sim.Microsecond, sim.Millisecond), period, func() {
			_ = c.Send(can.Frame{ID: id, Data: []byte{payload, 0x01}}, nil)
		})
	}

	// Mixed-media traffic on the extra domains. On builds with an
	// explicit IDS config the widened taps observe these records, and on
	// medium-aware builds the semantic detectors alert on the scripted
	// violations — alerts land in the audit chain the fingerprint hashes,
	// so any detector state surviving Reset shows up as a divergence.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("extra%d", i)
		switch {
		case v.LINClusters[name] != nil:
			cl := v.LINClusters[name]
			slave := lin.NewSlave("eq-lin-slave")
			if err := slave.Publish(0x10, func(at sim.Time) []byte { return []byte{0x10, 0xEF} }); err != nil {
				t.Fatalf("lin publish: %v", err)
			}
			cl.AddSlave(slave)
			cl.SetSchedule([]lin.ScheduleEntry{{ID: 0x10, Delay: sim.Millisecond}})
			if err := cl.Start(); err != nil {
				t.Fatalf("lin start: %v", err)
			}
			if r.chance(50) {
				at := 2*sim.Millisecond + sim.Duration(r.intn(500))*sim.Microsecond
				k.At(at, func() {
					_ = cl.SendSporadic("eq-rogue", 0x2A, []byte{0xBA, 0xD0})
				})
			}
		case v.FlexRayClusters[name] != nil:
			fr := v.FlexRayClusters[name]
			slot := flexray.SlotID(3 + r.intn(4))
			if err := fr.AssignStatic(slot, "eq-fr-ecu", func(cycle int) []byte {
				return []byte{byte(cycle), 0x00}
			}); err != nil {
				t.Fatalf("flexray assign: %v", err)
			}
			if err := fr.Start(); err != nil {
				t.Fatalf("flexray start: %v", err)
			}
			if r.chance(50) {
				rogue := flexray.SlotID(20 + r.intn(8))
				k.At(sim.Millisecond, func() {
					_ = fr.Intrude(rogue, "eq-fr-rogue", func(cycle int) []byte { return []byte{0xEE, 0x0E} })
				})
			}
		case v.Switches[name] != nil:
			sw := v.Switches[name]
			h := ethernet.NewHost(fmt.Sprintf("eq-eth-host%d", i), ethernet.LocalMAC(0xE0+uint32(i)))
			sw.Connect(h, 1)
			payload := []byte{byte(r.intn(256)), 0x01}
			k.Every(sim.Duration(100+r.intn(400))*sim.Microsecond, sim.Millisecond, func() {
				_ = h.Send(ethernet.Frame{Dst: ethernet.Broadcast, EtherType: 0x88B6, Payload: payload})
			})
		case v.Buses[name] != nil:
			c := can.NewController(fmt.Sprintf("eq-extra-can%d", i))
			v.Buses[name].Attach(c)
			id := can.ID(0x400 + r.intn(0x100))
			period := sim.Duration(300+r.intn(700)) * sim.Microsecond
			k.Every(500*sim.Microsecond, period, func() {
				_ = c.Send(can.Frame{ID: id, Data: []byte{0xEC}}, nil)
			})
		}
	}

	// Background workload matrices sometimes.
	if r.chance(40) {
		v.StartTraffic()
	}

	// A mid-run quarantine reflex sometimes.
	if r.chance(50) {
		k.At(2*sim.Millisecond, func() {
			if v.Zonal != nil {
				_ = v.Zonal.QuarantineZoneOf(DomainInfotainment)
			} else {
				_ = v.Gateway.Quarantine(DomainInfotainment)
			}
		})
	}

	// Authenticated CAN when the build has a MAC width: provision the SHE
	// key, send a valid frame and verify a garbage one (bumping the
	// auth-failure counter Reset must rewind).
	if v.MACBits > 0 {
		if err := v.ProvisionMACKey([16]byte{1, 2, 3, 4, 5}); err != nil {
			t.Fatalf("provision MAC key: %v", err)
		}
		c := can.NewController("eq-auth")
		v.Buses[DomainPowertrain].Attach(c)
		k.At(sim.Millisecond, func() {
			_ = v.AuthenticatedSend(c, 0x101, []byte{0xAA})
			_, _ = v.VerifyAuthenticated(&can.Frame{ID: 0x102, Data: []byte{0xBB, 0, 0, 0, 0, 0}})
		})
	}

	if err := k.RunUntil(5 * sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	v.StopTraffic()
	return eqFingerprint(v, tr, reg)
}

func eqRandomRules(r *eqRng) []*gateway.Rule {
	doms := []string{DomainPowertrain, DomainChassis, DomainInfotainment}
	var rules []*gateway.Rule
	for i, n := 0, 1+r.intn(3); i < n; i++ {
		from := doms[r.intn(len(doms))]
		to := doms[r.intn(len(doms))]
		rule := &gateway.Rule{
			Name:   fmt.Sprintf("eq-rule%d", i),
			From:   from,
			IDLo:   0,
			IDHi:   uint32(0x200 + r.intn(0x200)),
			Action: gateway.Allow,
		}
		if to != from {
			rule.To = []string{to}
		}
		if r.chance(30) {
			rule.Action = gateway.Deny
		}
		rules = append(rules, rule)
	}
	return rules
}

// eqFingerprint serializes everything the issue's equivalence clause
// names: trace bytes, metrics, audit verdicts — plus the kernel clock and
// the live auth state.
func eqFingerprint(v *Vehicle, tr *obs.Tracer, reg *obs.Registry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: now=%d steps=%d\n", v.Kernel.Now(), v.Kernel.Steps())
	fmt.Fprintf(&b, "auth: macbits=%d failures=%d\n", v.MACBits, v.AuthFailures.Value)
	fmt.Fprintf(&b, "ids: detectors=%v observed=%d\n", v.IDS.Detectors(), v.IDS.Observed())
	for _, a := range v.IDS.Alerts {
		fmt.Fprintf(&b, "ids alert: %s\n", a.String())
	}

	var trace bytes.Buffer
	if err := tr.WriteChromeTrace(&trace); err != nil {
		fmt.Fprintf(&b, "trace error: %v\n", err)
	}
	fmt.Fprintf(&b, "trace: %d bytes\n%s\n", trace.Len(), trace.String())

	for _, m := range reg.Snapshot() {
		fmt.Fprintf(&b, "metric: %s %s = %s\n", m.Kind, m.Key, obs.FormatValue(m.Value))
	}

	for _, e := range v.Audit.Entries() {
		h := e.Hash()
		fmt.Fprintf(&b, "audit: %d %s %s %x\n", e.At, e.Source, e.Event, h[:8])
	}
	if err := v.Audit.VerifyChain(); err != nil {
		fmt.Fprintf(&b, "audit chain: %v\n", err)
	}
	fmt.Fprintf(&b, "arch log: %v\n", v.Arch.UpgradeLog)
	return b.String()
}

// TestResetEquivalence is the reset-equivalence harness: across
// randomized configs (central and zonal, mixed media, MAC widths, policy
// plane on and off) a pooled vehicle that was dirtied by one scenario and
// then Reset must replay a second scenario byte-identically to a fresh
// NewVehicle build — traces, metrics and audit verdicts included.
func TestResetEquivalence(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	r := &eqRng{state: 0xE0E0}
	for trial := 0; trial < trials; trial++ {
		cfg := eqRandomConfig(r, trial)
		runSeed := r.next()
		scenSeed := r.next()
		dirtySeed := r.next()
		scenDirty := r.next()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			fcfg := cfg
			fcfg.Seed = runSeed
			fresh, err := NewVehicle(fcfg)
			if err != nil {
				t.Fatalf("fresh build (%+v): %v", fcfg, err)
			}
			want := eqScenario(t, fresh, scenSeed)

			pool := NewVehiclePool(cfg)
			dirty, err := pool.Acquire(dirtySeed)
			if err != nil {
				t.Fatalf("pool build: %v", err)
			}
			_ = eqScenario(t, dirty, scenDirty)
			pool.Release(dirty)
			reused, err := pool.Acquire(runSeed)
			if err != nil {
				t.Fatalf("pool reuse: %v", err)
			}
			if reused != dirty {
				t.Fatal("pool did not reuse the released vehicle")
			}
			if pool.Hits != 1 || pool.Misses != 1 {
				t.Fatalf("pool counters: hits=%d misses=%d, want 1/1", pool.Hits, pool.Misses)
			}
			got := eqScenario(t, reused, scenSeed)

			if got != want {
				t.Fatalf("reset vehicle diverged from fresh build (cfg %+v):\n%s",
					cfg, eqFirstDiff(want, got))
			}
		})
	}
}

// eqFirstDiff renders the first diverging line of two fingerprints, with
// a little context — a full fingerprint dump is unreadable.
func eqFirstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("line %d:\n  fresh: %s\n  reset: %s\n  context: %s",
				i+1, w[i], g[i], strings.Join(w[lo:i], " | "))
		}
	}
	return fmt.Sprintf("lengths differ: fresh %d lines, reset %d lines", len(w), len(g))
}
