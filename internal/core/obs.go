package core

import (
	"autosec/internal/obs"
)

// Instrument wires the whole vehicle into the observability layer in one
// call: kernel dispatch tracing, per-domain bus spans and metrics,
// gateway verdicts, IDS alerts, audit-log health, OTA outcomes (when a
// client is attached) and the PKES unit. Either argument may be nil —
// tracing and metrics enable independently — and a vehicle that is never
// instrumented pays only nil checks on its hot paths.
//
// Buses instrument in fixed domain order so label interning (and
// therefore trace bytes) is deterministic.
func (v *Vehicle) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		v.Kernel.SetTraceSink(tr)
	}
	if reg != nil {
		reg.Probe("kernel/steps", func() float64 { return float64(v.Kernel.Steps()) })
		reg.Probe("kernel/pending", func() float64 { return float64(v.Kernel.Pending()) })
	}
	for _, name := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		v.Buses[name].Instrument(tr, reg)
	}
	if v.Zonal != nil {
		v.Zonal.Instrument(tr, reg)
	} else {
		v.Gateway.Instrument(tr, reg)
	}
	v.IDS.Instrument(tr, reg)
	v.Audit.Instrument(reg)
	if v.OTA != nil {
		v.OTA.Instrument(tr, reg)
	}
	v.Keyless.Instrument(tr, reg, v.Kernel.Now)
	if reg != nil {
		reg.Probe("core/auth_failures", func() float64 { return float64(v.AuthFailures.Value) })
	}
}
