package core

import (
	"bytes"
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/isotp"
	"autosec/internal/ota"
	"autosec/internal/she"
	"autosec/internal/sim"
	"autosec/internal/uds"
)

// TestOTAOverCANWithSecureBoot is the full update chain promised in
// DESIGN.md: a firmware image split into chunks, carried across the
// vehicle's infotainment CAN domain by ISO-TP (as a telematics unit would
// relay it to a target ECU), reassembled and verified by the Uptane-style
// client, then anchored by SHE secure boot — with a tampered variant
// rejected at both defense layers.
func TestOTAOverCANWithSecureBoot(t *testing.T) {
	v := newVehicle(t, Config{})

	// The OEM side.
	director, err := ota.NewRepository("director")
	if err != nil {
		t.Fatal(err)
	}
	image, err := ota.NewRepository("image")
	if err != nil {
		t.Fatal(err)
	}
	firmware := bytes.Repeat([]byte("brake-fw-v2 "), 200) // 2.4 KB image
	target := ota.MakeTarget("brake-fw", 2, "brake-mcu", firmware)

	// Vehicle-side OTA client.
	client := ota.NewClient(v.VIN, director.PublicKey(), image.PublicKey())
	client.AddECU("brake-mcu", 1)

	// Transport leg: telematics -> target ECU over ISO-TP on a CAN domain.
	telematics := isotp.New(v.Kernel, attach(v, DomainInfotainment, "telematics"),
		isotp.Config{TxID: 0x6A0, RxID: 0x6A8})
	targetECU := isotp.New(v.Kernel, attach(v, DomainInfotainment, "target-ecu"),
		isotp.Config{TxID: 0x6A8, RxID: 0x6A0, BlockSize: 8})

	manifest, chunks, err := ota.Split("brake-fw", firmware, 1024)
	if err != nil {
		t.Fatal(err)
	}
	assembler := ota.NewAssembler(manifest)
	targetECU.OnMessage(func(_ sim.Time, payload []byte) {
		// Wire format for the test: [idx] ++ chunk bytes.
		if len(payload) < 1 {
			return
		}
		assembler.Add(ota.Chunk{Name: "brake-fw", Index: int(payload[0]), Data: payload[1:]})
	})
	// Send each chunk sequentially (ISO-TP allows one transfer at a time).
	var sendFrom func(i int) func(error)
	sendFrom = func(i int) func(error) {
		return func(err error) {
			if err != nil {
				t.Errorf("chunk %d: %v", i, err)
				return
			}
			if i+1 < len(chunks) {
				next := append([]byte{byte(chunks[i+1].Index)}, chunks[i+1].Data...)
				_ = telematics.Send(next, sendFrom(i+1))
			}
		}
	}
	first := append([]byte{byte(chunks[0].Index)}, chunks[0].Data...)
	if err := telematics.Send(first, sendFrom(0)); err != nil {
		t.Fatal(err)
	}
	_ = v.Kernel.Run()

	if !assembler.Complete() {
		t.Fatalf("assembly incomplete: missing %v", assembler.Missing())
	}
	received, err := assembler.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	// Uptane verification of the reassembled payload.
	bundle := &ota.Bundle{
		Director: director.Sign(v.VIN, []ota.Target{target}, v.Kernel.Now()+sim.Hour),
		Image:    image.Sign("", []ota.Target{target}, v.Kernel.Now()+sim.Hour),
		Payloads: map[string][]byte{"brake-fw": received},
	}
	if err := client.Apply(bundle, v.Kernel.Now()); err != nil {
		t.Fatalf("apply: %v", err)
	}

	// Secure-boot anchoring: the SHE learns the new image's MAC and boots.
	if err := v.SHE.ProvisionKey(she.BootMACKey, [16]byte{0xB0}, she.Flags{}); err != nil {
		t.Fatal(err)
	}
	if err := v.SHE.DefineBootMAC(received); err != nil {
		t.Fatal(err)
	}
	ok, err := v.SHE.SecureBoot(received)
	if err != nil || !ok {
		t.Fatalf("secure boot: ok=%v err=%v", ok, err)
	}

	// A post-install flash tamper is caught at the next boot.
	tampered := append([]byte(nil), received...)
	tampered[100] ^= 0xFF
	v.SHE.ResetSession()
	ok, err = v.SHE.SecureBoot(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered image passed secure boot")
	}
}

// attach adds a named controller to a vehicle domain.
func attach(v *Vehicle, domain, name string) *can.Controller {
	c := can.NewController(name)
	v.Buses[domain].Attach(c)
	return c
}

// TestDiagnosticsIntegration drives the vehicle-level UDS surface: the
// legitimate tester unlocks with the right algorithm, an intruder with a
// wrong key hits the lockout, and the weak algorithm's sniffing attack
// works end-to-end on the composed vehicle.
func TestDiagnosticsIntegration(t *testing.T) {
	weak := uds.WeakXOR{Constant: 0x1337BEEF}
	v := newVehicle(t, Config{})
	d := v.AttachDiagnostics(DomainInfotainment, weak)

	// VIN reads without security.
	resp, err := v.RunDiag(d.Tester, []byte{uds.SvcReadDataByID, 0xF1, 0x90})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := uds.ParseResponse(uds.SvcReadDataByID, resp)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[2:]) != v.VIN {
		t.Fatalf("VIN=%q", payload[2:])
	}

	// Extended session + unlock with the correct algorithm.
	if _, err := v.RunDiag(d.Tester, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		t.Fatal(err)
	}
	if err := v.RunUnlock(d.Tester, 1, weak); err != nil {
		t.Fatal(err)
	}
	if d.Server.UnlockedLevel() != 1 {
		t.Fatal("not unlocked")
	}

	// An intruder on the same bus with the wrong constant locks out.
	v2 := newVehicle(t, Config{VIN: "TEST-VIN-002"})
	d2 := v2.AttachDiagnostics(DomainInfotainment, weak)
	_ = d2
	intruder := v2.NewIntruderTester(DomainInfotainment)
	if _, err := v2.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		t.Fatal(err)
	}
	bad := uds.WeakXOR{Constant: 0xFFFFFFFF}
	for i := 0; i < 2; i++ {
		if err := v2.RunUnlock(intruder, 1, bad); err == nil {
			t.Fatal("wrong key unlocked")
		}
	}
	err = v2.RunUnlock(intruder, 1, bad)
	if err == nil || !strings.Contains(err.Error(), "exceededNumberOfAttempts") {
		t.Fatalf("lockout not reached: %v", err)
	}
}

// TestDiagnosticsSHEAlgorithm wires the SHE-backed seed/key algorithm
// through the vehicle's own SHE engine.
func TestDiagnosticsSHEAlgorithm(t *testing.T) {
	v := newVehicle(t, Config{})
	var k16 [16]byte
	copy(k16[:], "vehicle-diag-key")
	if err := v.SHE.ProvisionKey(she.Key4, k16, she.Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	alg := uds.SHECMAC{Engine: v.SHE, Slot: she.Key4}
	d := v.AttachDiagnostics(DomainInfotainment, alg)
	if _, err := v.RunDiag(d.Tester, []byte{uds.SvcSessionControl, uds.SessionProgramming}); err != nil {
		t.Fatal(err)
	}
	if err := v.RunUnlock(d.Tester, 1, alg); err != nil {
		t.Fatal(err)
	}
	if d.Server.UnlockedLevel() != 1 {
		t.Fatal("SHE-backed unlock failed")
	}
	// The architecture inventory recorded the capability.
	if _, err := v.Arch.Get(SecureProcessing, "uds-she-cmac"); err != nil {
		t.Fatalf("inventory: %v", err)
	}
}
