package zonal

import (
	"fmt"
	"testing"

	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/gateway"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// rig2 builds the canonical two-zone fabric: zone a owns the powertrain
// CAN bus, zone b owns the body CAN bus, bridged by an Ethernet backbone.
func rig2(t testing.TB) (k *sim.Kernel, f *Fabric, pt, body *can.Bus) {
	t.Helper()
	k = sim.NewKernel(1)
	sw := ethernet.NewSwitch(k, "bb", 2*sim.Microsecond)
	f = New(k, ethernet.Netif(sw, 1))
	za, err := f.AddZone("a")
	if err != nil {
		t.Fatal(err)
	}
	zb, err := f.AddZone("b")
	if err != nil {
		t.Fatal(err)
	}
	pt = can.NewBus(k, "powertrain", 500_000)
	body = can.NewBus(k, "body", 500_000)
	if err := za.AttachDomain("powertrain", can.Netif(pt)); err != nil {
		t.Fatal(err)
	}
	if err := zb.AttachDomain("body", can.Netif(body)); err != nil {
		t.Fatal(err)
	}
	return k, f, pt, body
}

func ruleSig(rs []*gateway.Rule) []string {
	var out []string
	for _, r := range rs {
		out = append(out, fmt.Sprintf("%s from=%s to=%v act=%v rate=%g", r.Name, r.From, r.To, r.Action, r.RatePerSec))
	}
	return out
}

func TestCompileSpecificSourceRule(t *testing.T) {
	_, f, _, _ := rig2(t)
	f.SetRules([]*gateway.Rule{{
		Name: "body-to-pt", From: "body", To: []string{"powertrain"},
		IDLo: 0x100, IDHi: 0x1FF, Action: gateway.Allow, RatePerSec: 50,
	}})

	za, _ := f.ZoneByName("a")
	zb, _ := f.ZoneByName("b")

	// Source zone b: egress shard pointing at the backbone, rate limit kept.
	got := ruleSig(zb.GW.Rules())
	want := []string{"body-to-pt from=body to=[backbone] act=allow rate=50"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("zone b rules = %v, want %v", got, want)
	}
	// Destination zone a: ingress shard, local delivery only, no rate limit.
	got = ruleSig(za.GW.Rules())
	want = []string{"body-to-pt@in from=backbone to=[powertrain] act=allow rate=0"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("zone a rules = %v, want %v", got, want)
	}
}

func TestCompileWildcardAndDeny(t *testing.T) {
	_, f, _, _ := rig2(t)
	f.SetRules([]*gateway.Rule{
		{Name: "diag-deny", From: "*", IDLo: 0x700, IDHi: 0x7FF, Action: gateway.Deny},
		{Name: "open", From: "*", IDLo: 0, IDHi: 0x6FF, Action: gateway.Allow},
	})
	za, _ := f.ZoneByName("a")
	got := ruleSig(za.GW.Rules())
	// Wildcards expand per local source plus one backbone-ingress shard,
	// preserving logical order (deny before allow).
	want := []string{
		"diag-deny from=powertrain to=[] act=deny rate=0",
		"diag-deny@in from=backbone to=[] act=deny rate=0",
		"open from=powertrain to=[] act=allow rate=0",
		"open@in from=backbone to=[] act=allow rate=0",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("zone a rules = %v, want %v", got, want)
	}
}

func TestCompileUnreachableDestKeepsSlot(t *testing.T) {
	_, f, _, _ := rig2(t)
	f.SetRules([]*gateway.Rule{
		// Matches 0x100..0x1FF but only delivers to body; zone a's ingress
		// shard must still claim the first-match slot so the broader rule
		// below cannot deliver these IDs to powertrain.
		{Name: "narrow", From: "body", To: []string{"ghost"}, IDLo: 0x100, IDHi: 0x1FF, Action: gateway.Allow},
		{Name: "wide", From: "body", To: []string{"powertrain"}, IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
	})
	za, _ := f.ZoneByName("a")
	rs := za.GW.Rules()
	if len(rs) != 2 {
		t.Fatalf("zone a has %d rules, want 2: %v", len(rs), ruleSig(rs))
	}
	if rs[0].Name != "narrow@in" || len(rs[0].To) != 1 || rs[0].To[0] != noneDomain {
		t.Fatalf("first shard = %v, want narrow@in with sentinel dest", ruleSig(rs[:1]))
	}
	zb, _ := f.ZoneByName("b")
	// Source side: "ghost" is unknown everywhere, so the narrow egress
	// shard keeps its slot with the sentinel too.
	rsb := zb.GW.Rules()
	if rsb[0].Name != "narrow" || len(rsb[0].To) != 1 || rsb[0].To[0] != noneDomain {
		t.Fatalf("zone b first shard = %v, want narrow with sentinel dest", ruleSig(rsb[:1]))
	}
}

func TestCrossZoneForwardOverBackbone(t *testing.T) {
	k, f, pt, body := rig2(t)
	f.SetRules([]*gateway.Rule{{
		Name: "body-to-pt", From: "body", To: []string{"powertrain"},
		IDLo: 0x100, IDHi: 0x1FF, Action: gateway.Allow,
	}})

	rx := can.NewController("ecu-pt")
	pt.Attach(rx)
	var got []can.Frame
	rx.OnReceive(func(at sim.Time, fr *can.Frame, _ *can.Controller) {
		got = append(got, can.Frame{ID: fr.ID, Data: append([]byte(nil), fr.Data...)})
	})

	tx := can.NewController("ecu-body")
	body.Attach(tx)
	k.At(sim.Millisecond, func() {
		_ = tx.Send(can.Frame{ID: 0x155, Data: []byte{1, 2, 3, 4}}, nil)
		_ = tx.Send(can.Frame{ID: 0x300, Data: []byte{9}}, nil) // outside the rule: dropped
	})
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}

	if len(got) != 1 || got[0].ID != 0x155 {
		t.Fatalf("powertrain received %v, want exactly ID 0x155", got)
	}
	if string(got[0].Data) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("payload %v corrupted in transit", got[0].Data)
	}
	if f.BackboneFrames.Value == 0 {
		t.Fatal("cross-zone frame never touched the backbone")
	}
	if f.BackboneDeliveries.Value != 1 {
		t.Fatalf("backbone deliveries = %d, want 1", f.BackboneDeliveries.Value)
	}
}

func TestZoneQuarantineIsolatesButLocalRoutingSurvives(t *testing.T) {
	k := sim.NewKernel(1)
	sw := ethernet.NewSwitch(k, "bb", 2*sim.Microsecond)
	f := New(k, ethernet.Netif(sw, 1))
	za, _ := f.AddZone("a")
	zb, _ := f.AddZone("b")
	pt := can.NewBus(k, "powertrain", 500_000)
	b1 := can.NewBus(k, "body1", 500_000)
	b2 := can.NewBus(k, "body2", 500_000)
	_ = za.AttachDomain("powertrain", can.Netif(pt))
	_ = zb.AttachDomain("body1", can.Netif(b1))
	_ = zb.AttachDomain("body2", can.Netif(b2))
	f.SetRules([]*gateway.Rule{
		{Name: "open", From: "*", IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
	})

	ptRx, b2Rx := 0, 0
	rx1 := can.NewController("pt-ecu")
	pt.Attach(rx1)
	rx1.OnReceive(func(sim.Time, *can.Frame, *can.Controller) { ptRx++ })
	rx2 := can.NewController("b2-ecu")
	b2.Attach(rx2)
	rx2.OnReceive(func(sim.Time, *can.Frame, *can.Controller) { b2Rx++ })

	tx := can.NewController("b1-ecu")
	b1.Attach(tx)

	if err := f.QuarantineZone("b"); err != nil {
		t.Fatal(err)
	}
	if !f.ZoneQuarantined("b") || f.ZoneQuarantined("a") {
		t.Fatal("quarantine state wrong")
	}
	k.At(sim.Millisecond, func() { _ = tx.Send(can.Frame{ID: 0x123, Data: []byte{1}}, nil) })
	_ = k.RunUntil(100 * sim.Millisecond)

	if ptRx != 0 {
		t.Fatalf("quarantined zone leaked %d frames across the backbone", ptRx)
	}
	if b2Rx != 1 {
		t.Fatalf("intra-zone routing broke under zone quarantine: got %d, want 1", b2Rx)
	}

	// Release restores cross-zone forwarding.
	if err := f.ReleaseZone("b"); err != nil {
		t.Fatal(err)
	}
	k.At(200*sim.Millisecond, func() { _ = tx.Send(can.Frame{ID: 0x124, Data: []byte{2}}, nil) })
	_ = k.RunUntil(sim.Second)
	if ptRx != 1 {
		t.Fatalf("release did not restore forwarding: ptRx=%d", ptRx)
	}
}

func TestDefaultAllowCrossesZones(t *testing.T) {
	k, f, pt, body := rig2(t)
	f.SetDefaultAction(gateway.Allow)

	n := 0
	rx := can.NewController("pt-ecu")
	pt.Attach(rx)
	rx.OnReceive(func(sim.Time, *can.Frame, *can.Controller) { n++ })
	tx := can.NewController("body-ecu")
	body.Attach(tx)
	k.At(sim.Millisecond, func() { _ = tx.Send(can.Frame{ID: 0x42, Data: []byte{1}}, nil) })
	_ = k.RunUntil(100 * sim.Millisecond)
	if n != 1 {
		t.Fatalf("default-allow delivered %d frames cross-zone, want 1", n)
	}
}

func TestRateLimitAppliedAtSourceZone(t *testing.T) {
	k, f, pt, body := rig2(t)
	f.SetRules([]*gateway.Rule{{
		Name: "limited", From: "body", To: []string{"powertrain"},
		IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow, RatePerSec: 10, BurstFrames: 10,
	}})
	n := 0
	rx := can.NewController("pt-ecu")
	pt.Attach(rx)
	rx.OnReceive(func(sim.Time, *can.Frame, *can.Controller) { n++ })
	tx := can.NewController("body-ecu")
	body.Attach(tx)
	// 100 frames in one second against a 10/s limit with burst 10.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		k.At(at, func() { _ = tx.Send(can.Frame{ID: 0x100, Data: []byte{1}}, nil) })
	}
	_ = k.RunUntil(2 * sim.Second)
	zb, _ := f.ZoneByName("b")
	if zb.GW.RateLimited.Value == 0 {
		t.Fatal("source zone never rate-limited")
	}
	if n > 25 {
		t.Fatalf("%d frames crossed a 10/s limit in ~1s", n)
	}
}

// Two identical runs must produce identical delivery traces: the zonal
// layer introduces no map-order or other nondeterminism.
func TestZonalDeterministic(t *testing.T) {
	run := func() []string {
		k, f, pt, body := rig2(t)
		f.SetRules([]*gateway.Rule{
			{Name: "open", From: "*", IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
		})
		var log []string
		rx := can.NewController("pt-ecu")
		pt.Attach(rx)
		rx.OnReceive(func(at sim.Time, fr *can.Frame, _ *can.Controller) {
			log = append(log, fmt.Sprintf("%d:%03X", at, fr.ID))
		})
		tx := can.NewController("body-ecu")
		body.Attach(tx)
		s := k.Stream("test.zonal")
		for i := 0; i < 50; i++ {
			id := can.ID(0x100 + s.Intn(0x80))
			at := sim.Time(i)*sim.Millisecond + s.Duration(0, sim.Millisecond)
			k.At(at, func() { _ = tx.Send(can.Frame{ID: id, Data: []byte{byte(i)}}, nil) })
		}
		_ = k.RunUntil(sim.Second)
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("delivery traces differ:\n%v\n%v", a, b)
	}
}

func TestTopologyErrors(t *testing.T) {
	k := sim.NewKernel(1)
	sw := ethernet.NewSwitch(k, "bb", 0)
	f := New(k, ethernet.Netif(sw, 1))
	if _, err := f.AddZone(BackboneDomain); err == nil {
		t.Fatal("zone named backbone must be rejected")
	}
	z, err := f.AddZone("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddZone("a"); err == nil {
		t.Fatal("duplicate zone must be rejected")
	}
	if err := z.AttachDomain(BackboneDomain, can.Netif(can.NewBus(k, "x", 500_000))); err == nil {
		t.Fatal("domain named backbone must be rejected")
	}
	_ = z.AttachDomain("pt", can.Netif(can.NewBus(k, "pt", 500_000)))
	z2, _ := f.AddZone("b")
	if err := z2.AttachDomain("pt", can.Netif(can.NewBus(k, "pt2", 500_000))); err == nil {
		t.Fatal("domain owned by another zone must be rejected")
	}
	if err := f.QuarantineZone("ghost"); err == nil {
		t.Fatal("unknown zone quarantine must error")
	}
	if err := f.QuarantineDomain("ghost"); err == nil {
		t.Fatal("unknown domain quarantine must error")
	}
	if zz, ok := f.ZoneOf("pt"); !ok || zz != z {
		t.Fatal("ZoneOf lost the directory entry")
	}
}

// TestPerZoneDeliveryProbes pins the per-zone observability surface: each
// zone exposes zone-<name>/backbone_deliveries counting only its own
// accepted backbone ingress, and the fabric totals stay consistent with
// the per-zone split on a shared-kernel fabric.
func TestPerZoneDeliveryProbes(t *testing.T) {
	k, f, pt, body := rig2(t)
	f.SetRules([]*gateway.Rule{{
		Name: "body-to-pt", From: "body", To: []string{"powertrain"},
		IDLo: 0x100, IDHi: 0x1FF, Action: gateway.Allow,
	}})
	_ = pt

	reg := obs.NewRegistry()
	f.Instrument(nil, reg)

	tx := can.NewController("ecu-body")
	body.Attach(tx)
	k.At(sim.Millisecond, func() {
		_ = tx.Send(can.Frame{ID: 0x155, Data: []byte{1}}, nil)
		_ = tx.Send(can.Frame{ID: 0x156, Data: []byte{2}}, nil)
	})
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}

	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Key] = m.Value
	}
	if got := snap["zone-a/backbone_deliveries"]; got != 2 {
		t.Fatalf("zone-a deliveries = %v, want 2", got)
	}
	if got := snap["zone-b/backbone_deliveries"]; got != 0 {
		t.Fatalf("zone-b deliveries = %v, want 0 (egress is not ingress)", got)
	}
	if got := snap["zonal/backbone_deliveries"]; got != 2 {
		t.Fatalf("fabric delivery total = %v, want 2", got)
	}
	za, _ := f.ZoneByName("a")
	if za.BackboneDeliveriesCount() != 2 {
		t.Fatalf("zone accessor = %d, want 2", za.BackboneDeliveriesCount())
	}
	if f.BackboneDeliveries.Value != 2 {
		t.Fatalf("shared fabric counter = %d, want 2", f.BackboneDeliveries.Value)
	}
}
