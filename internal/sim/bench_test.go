package sim

import "testing"

// BenchmarkKernelDispatch measures raw event throughput: schedule-and-run
// cycles through the binary heap.
func BenchmarkKernelDispatch(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Microsecond, tick)
		}
	}
	k.After(0, tick)
	b.ResetTimer()
	_ = k.Run()
}

// BenchmarkKernelFanOut measures dispatch with a populated heap: 1000
// events pending at all times.
func BenchmarkKernelFanOut(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < 1000; i++ {
		i := i
		var reschedule func()
		reschedule = func() { k.After(Duration(1000+i), reschedule) }
		k.After(Duration(i), reschedule)
	}
	b.ResetTimer()
	target := k.Now()
	for i := 0; i < b.N; i++ {
		target += Microsecond
		_ = k.RunUntil(target)
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkStreamNorm(b *testing.B) {
	s := NewStream(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}
