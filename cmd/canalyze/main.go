// Command canalyze replays a CAN trace through the intrusion-detection
// engine and reports alerts. It can also synthesize traces (clean or with
// an injected attack) in the same text format, so a full train/analyze
// loop works without any other tooling:
//
//	canalyze gen -dur 20 > clean.trace
//	canalyze gen -dur 30 -attack flood > live.trace
//	canalyze detect -train clean.trace live.trace
//
// Trace format: one frame per line, "<seconds> <sender> <hex-id>
// <hex-payload|-> [flags]"; '#' starts a comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"autosec/internal/can"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "detect":
		cmdDetect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  canalyze gen [-dur SECONDS] [-seed N] [-attack none|flood|fuzz|suspend|unknown]   write a trace to stdout
  canalyze detect -train FILE [-detectors all|frequency,spec,...] FILE              replay FILE through the IDS
`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dur := fs.Float64("dur", 20, "trace duration in seconds")
	seed := fs.Uint64("seed", 1, "generator seed")
	attack := fs.String("attack", "none", "attack to inject over the middle third: none|flood|fuzz|suspend|unknown")
	_ = fs.Parse(args)

	d := sim.Duration(*dur * float64(sim.Second))
	tr := workload.SyntheticTrace(workload.PowertrainMatrix(), d, *seed, 0.01)
	lo, hi := d/3, 2*d/3
	rnd := sim.NewStream(*seed, "canalyze.attack")
	switch *attack {
	case "none":
	case "flood":
		for at := lo; at < hi; at += sim.Millisecond {
			tr.Records = append(tr.Records, can.Record{At: at, Sender: "attacker",
				Frame: can.Frame{ID: 0x0C0, Data: make([]byte, 8)}})
		}
	case "fuzz":
		for i, r := range tr.Records {
			if r.Frame.ID == 0x1A0 && r.At >= lo && r.At < hi {
				b := make([]byte, len(r.Frame.Data))
				rnd.Bytes(b)
				tr.Records[i].Frame.Data = b
				tr.Records[i].Sender = "attacker"
			}
		}
	case "suspend":
		kept := tr.Records[:0]
		for _, r := range tr.Records {
			if r.Frame.ID == 0x120 && r.At >= lo && r.At < hi {
				continue
			}
			kept = append(kept, r)
		}
		tr.Records = kept
	case "unknown":
		for at := lo; at < hi; at += 50 * sim.Millisecond {
			tr.Records = append(tr.Records, can.Record{At: at, Sender: "attacker",
				Frame: can.Frame{ID: 0x7DF, Data: []byte{0x02, 0x10, 0x01}}})
		}
	default:
		fmt.Fprintf(os.Stderr, "canalyze: unknown attack %q\n", *attack)
		os.Exit(2)
	}
	sort.SliceStable(tr.Records, func(i, j int) bool { return tr.Records[i].At < tr.Records[j].At })
	if err := can.WriteTrace(os.Stdout, tr); err != nil {
		fatal(err)
	}
}

func cmdDetect(args []string) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	trainPath := fs.String("train", "", "clean training trace (required)")
	dets := fs.String("detectors", "all", "comma list: frequency,interval,entropy,spec or 'all'")
	_ = fs.Parse(args)
	if *trainPath == "" || fs.NArg() != 1 {
		usage()
	}

	train := loadTrace(*trainPath)
	live := loadTrace(fs.Arg(0))

	var detectors []ids.Detector
	switch *dets {
	case "all":
		detectors = []ids.Detector{
			ids.NewFrequencyDetector(), ids.NewIntervalDetector(),
			ids.NewEntropyDetector(), ids.NewSpecDetector(),
		}
	default:
		for _, name := range splitComma(*dets) {
			switch name {
			case "frequency":
				detectors = append(detectors, ids.NewFrequencyDetector())
			case "interval":
				detectors = append(detectors, ids.NewIntervalDetector())
			case "entropy":
				detectors = append(detectors, ids.NewEntropyDetector())
			case "spec":
				detectors = append(detectors, ids.NewSpecDetector())
			default:
				fmt.Fprintf(os.Stderr, "canalyze: unknown detector %q\n", name)
				os.Exit(2)
			}
		}
	}

	eng := ids.NewEngine(detectors...)
	eng.Train(train)
	for _, r := range live.Records {
		for _, a := range eng.Observe(r) {
			fmt.Println(a.String())
		}
	}
	fmt.Printf("-- %s over %d frames (%v of traffic)\n",
		eng.Summary(), live.Len(), lastTime(live))
}

func loadTrace(path string) *can.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := can.ParseTrace(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func lastTime(tr *can.Trace) sim.Time {
	if tr.Len() == 0 {
		return 0
	}
	return tr.Records[tr.Len()-1].At
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "canalyze: %v\n", err)
	os.Exit(1)
}
