// Package autosec is a reproduction, as a working Go library, of the
// automotive security architecture surveyed in "INVITED: Extensibility in
// Automotive Security: Current Practice and Challenges" (Ray, Chen,
// Bhadra, Al Faruque — DAC 2017).
//
// The implementation lives under internal/: simulated in-vehicle networks
// (CAN/LIN/FlexRay/automotive Ethernet), the SHE secure-hardware model,
// an IEEE 1609.2-style V2X stack, the central security gateway, intrusion
// detection, Uptane-style OTA, side-channel attacks, keyless entry, the
// ISO 26262 safety model, and the 4+1-layer extensible architecture that
// composes them (internal/core). The per-claim experiment harness is in
// internal/experiments; bench_test.go in this directory regenerates every
// experiment table, and cmd/benchreport prints them all. internal/runner
// replicates any experiment suite across seeds on a parallel worker pool
// and merges the per-seed tables into mean ± 95% CI aggregates
// (cmd/benchreport -seeds N -par N), deterministically at any
// parallelism.
package autosec
