// V2X intersection: the paper's §4.2 security and privacy scenario pair,
// live. Four vehicles and an RSU exchange signed basic safety messages at
// an intersection; a rogue node without valid credentials tries to inject
// a fake emergency-brake warning (the security scenario), and a passive
// tracker with roadside antennas tries to follow one vehicle through its
// pseudonym rotations (the privacy scenario).
//
//	go run ./examples/v2x-intersection
package main

import (
	"fmt"
	"log"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
	"autosec/internal/v2x"
)

func main() {
	k := sim.NewKernel(7)

	// PKI: one root, pseudonym pools per vehicle, a fixed RSU credential.
	psids := []ieee1609.PSID{ieee1609.PSIDBasicSafety, ieee1609.PSIDInfrastructry}
	root, err := ieee1609.NewRootAuthority("regional-scms", psids, 0, 1000*sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	field := v2x.NewField(k,
		v2x.Radio{RangeM: 300, LossProb: 0.05, PropDelayPerM: 4},
		v2x.DefaultVerifyModel())

	mkVehicle := func(name string, pos v2x.Position, vx, vy float64, rotation sim.Duration) *v2x.Entity {
		pool, err := ieee1609.NewPseudonymPool(root, 20,
			[]ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, 1000*sim.Hour, rotation)
		if err != nil {
			log.Fatal(err)
		}
		e := field.AddVehicle(name, pos, pool, ieee1609.NewStore(root.Cert))
		e.SetVelocity(vx, vy)
		return e
	}

	veh := []*v2x.Entity{
		mkVehicle("northbound", v2x.Position{X: 0, Y: -400}, 0, 15, 5*sim.Second),
		mkVehicle("southbound", v2x.Position{X: 10, Y: 400}, 0, -15, 5*sim.Second),
		mkVehicle("eastbound", v2x.Position{X: -400, Y: 5}, 15, 0, 5*sim.Second),
		mkVehicle("westbound", v2x.Position{X: 400, Y: -5}, -15, 0, 5*sim.Second),
	}
	rsuCred, err := root.Issue("rsu-intersection-12", []ieee1609.PSID{ieee1609.PSIDInfrastructry}, 0, 1000*sim.Hour, false)
	if err != nil {
		log.Fatal(err)
	}
	rsu := field.AddRSU("rsu-12", v2x.Position{}, rsuCred, ieee1609.NewStore(root.Cert))

	// The security scenario: a rogue node with self-made credentials.
	rogueRoot, err := ieee1609.NewRootAuthority("rogue", psids, 0, 1000*sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	roguePool, err := ieee1609.NewPseudonymPool(rogueRoot, 1,
		[]ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, 1000*sim.Hour, sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	rogue := field.AddVehicle("rogue", v2x.Position{X: 50, Y: 50}, roguePool, ieee1609.NewStore(rogueRoot.Cert))

	// The privacy scenario: a tracker with two antennas near the junction.
	tracker := &v2x.Tracker{
		Antennas:   []v2x.Position{{X: -100, Y: 0}, {X: 100, Y: 0}},
		RangeM:     300,
		LinkWindow: sim.Second,
		LinkRadius: 50,
	}
	tracker.Attach(field)

	// Everyone beacons at 10 Hz.
	for _, e := range veh {
		e.StartBeacon(100 * sim.Millisecond)
	}
	rsu.StartBeacon(200 * sim.Millisecond)
	rogue.StartBeacon(100 * sim.Millisecond)

	if err := k.RunUntil(30 * sim.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- security scenario: can the rogue be trusted? ---")
	var legitimateAccepted, rogueInjected int64
	for _, e := range veh {
		legitimateAccepted += e.VerifiedOK.Value
		rogueInjected += e.VerifyFailed.Value
	}
	fmt.Printf("verified BSMs across the four vehicles: %d\n", legitimateAccepted)
	fmt.Printf("rejected messages (rogue's untrusted chain): %d\n", rogueInjected)
	fmt.Printf("rogue broadcasts sent: %d — none achieved trust\n", rogue.Sent.Value)

	fmt.Println("\n--- privacy scenario: can the tracker follow northbound? ---")
	fmt.Printf("tracker observations: %d\n", tracker.Observations())
	tracks := tracker.Reconstruct()
	longest := v2x.Track{}
	for _, t := range tracks {
		if t.Duration() > longest.Duration() {
			longest = t
		}
	}
	fmt.Printf("reconstructed tracks: %d; longest spans %v across %d pseudonyms\n",
		len(tracks), longest.Duration(), len(longest.Pseudonyms))
	fmt.Printf("tracking success over the 30s window: %.0f%%\n",
		100*tracker.TrackingSuccess(30*sim.Second))
	fmt.Println("(the paper's conundrum: the same certificates that defeat the rogue\n" +
		" give the tracker a handle; see experiment E4 for the full sweep)")
}
