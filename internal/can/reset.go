package can

// Pooled-vehicle lifecycle support: MarkBaseline snapshots the bus's
// post-construction wiring (attached controllers, sniffers, error model)
// and ResetToBaseline rewinds every piece of run state back to that
// snapshot without reallocating, so a bus inside a pooled core.Vehicle is
// indistinguishable from a freshly built one. This is the PR-2 event-node
// discipline applied one layer up: construction wiring is permanent,
// everything a scenario touches is truncated or zeroed.

// busBaseline is the sealed post-construction state of a Bus.
type busBaseline struct {
	sealed      bool
	controllers int
	sniffers    int
	ber         float64
	targeted    func(f *Frame, sender *Controller) bool
	dataBitrate int64
}

// ctrlBaseline is the sealed post-construction state of a Controller.
type ctrlBaseline struct {
	sealed   bool
	handlers int
	filter   AcceptanceFilter
	maxQueue int
}

// MarkBaseline records the bus's current wiring as the reset target.
// Call once, at the end of construction; ResetToBaseline rewinds to this
// exact point. Controllers attached afterwards are dropped on reset.
func (b *Bus) MarkBaseline() {
	b.base = busBaseline{
		sealed:      true,
		controllers: len(b.controllers),
		sniffers:    len(b.sniffers),
		ber:         b.BitErrorRate,
		targeted:    b.TargetedError,
		dataBitrate: b.dataBitrate,
	}
	for _, c := range b.controllers {
		c.markBaseline()
	}
}

// ResetToBaseline rewinds the bus to its MarkBaseline snapshot: scenario
// controllers and sniffers are detached, kept controllers flushed, the
// error model and all counters restored, and observability detached.
// The kernel must have been Reset first (startedAt re-anchors to Now).
func (b *Bus) ResetToBaseline() {
	if !b.base.sealed {
		panic("can: ResetToBaseline before MarkBaseline")
	}
	for i := b.base.controllers; i < len(b.controllers); i++ {
		b.controllers[i].bus = nil
		b.controllers[i] = nil
	}
	b.controllers = b.controllers[:b.base.controllers]
	for _, c := range b.controllers {
		c.resetToBaseline()
	}
	for i := b.base.sniffers; i < len(b.sniffers); i++ {
		b.sniffers[i] = nil
	}
	b.sniffers = b.sniffers[:b.base.sniffers]

	b.busy = false
	b.busyUntil = 0
	b.kickPending = false
	b.txSender = nil
	b.txDur = 0
	b.txBits = 0
	b.txScratch = txRequest{}
	b.BitErrorRate = b.base.ber
	b.TargetedError = b.base.targeted
	b.dataBitrate = b.base.dataBitrate
	b.pokBER = 0
	b.pokTab = b.pokTab[:0]
	b.FramesOK.Value = 0
	b.FramesErrored.Value = 0
	b.BitsOnWire = 0
	b.busyTime = 0
	b.startedAt = b.kernel.Now()

	b.obsTr = nil
	b.obsSub, b.obsTx, b.obsTxErr, b.obsBus = 0, 0, 0, 0
	b.obsFrameUS = nil
}

// markBaseline seals the controller's construction-time wiring.
func (c *Controller) markBaseline() {
	c.base = ctrlBaseline{
		sealed:   true,
		handlers: len(c.handlers),
		filter:   c.filter,
		maxQueue: c.MaxQueue,
	}
}

// resetToBaseline rewinds the controller: TX ring flushed, scenario
// handlers dropped, fault-confinement state back to error-active.
func (c *Controller) resetToBaseline() {
	c.txFlush()
	for i := c.base.handlers; i < len(c.handlers); i++ {
		c.handlers[i] = nil
	}
	c.handlers = c.handlers[:c.base.handlers]
	c.filter = c.base.filter
	c.MaxQueue = c.base.maxQueue
	c.tec, c.rec = 0, 0
	c.state = ErrorActive
	c.FramesSent.Value = 0
	c.FramesReceived.Value = 0
	c.FramesDropped.Value = 0
	c.BusOffEvents.Value = 0
}
