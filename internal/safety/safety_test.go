package safety

import (
	"errors"
	"testing"
)

func TestDetermineCornerCases(t *testing.T) {
	cases := []struct {
		s    Severity
		e    Exposure
		c    Controllability
		want ASIL
	}{
		{S3, E4, C3, D},  // worst case
		{S3, E4, C2, C},  // sum 9
		{S3, E4, C1, B},  // sum 8
		{S3, E3, C1, A},  // sum 7
		{S1, E1, C1, QM}, // sum 3
		{S2, E2, C2, QM}, // sum 6
		{S2, E2, C3, A},  // sum 7
		{S0, E4, C3, QM}, // S0 forces QM
		{S3, E0, C3, QM}, // E0 forces QM
		{S3, E4, C0, QM}, // C0 forces QM
		{S3, E2, C3, B},  // sum 8
		{S2, E4, C3, C},  // sum 9
	}
	for _, tc := range cases {
		if got := Determine(tc.s, tc.e, tc.c); got != tc.want {
			t.Errorf("Determine(S%d,E%d,C%d)=%v, want %v", tc.s, tc.e, tc.c, got, tc.want)
		}
	}
}

// Exhaustive property: ASIL is monotone in each of S, E, C (raising any
// class never lowers the level), per the structure of the ISO table.
func TestDetermineMonotone(t *testing.T) {
	for s := S1; s <= S3; s++ {
		for e := E1; e <= E4; e++ {
			for c := C1; c <= C3; c++ {
				base := Determine(s, e, c)
				if s < S3 && Determine(s+1, e, c) < base {
					t.Fatalf("raising S lowered ASIL at S%d E%d C%d", s, e, c)
				}
				if e < E4 && Determine(s, e+1, c) < base {
					t.Fatalf("raising E lowered ASIL at S%d E%d C%d", s, e, c)
				}
				if c < C3 && Determine(s, e, c+1) < base {
					t.Fatalf("raising C lowered ASIL at S%d E%d C%d", s, e, c)
				}
			}
		}
	}
}

func TestASILString(t *testing.T) {
	if QM.String() != "QM" || D.String() != "ASIL D" {
		t.Fatal("ASIL names wrong")
	}
}

func TestRegister(t *testing.T) {
	var r Register
	r.Add(Hazard{Name: "unintended-braking", Severity: S3, Exposure: E4, Controllability: C3})
	r.Add(Hazard{Name: "radio-mute", Severity: S0, Exposure: E4, Controllability: C3})
	r.Add(Hazard{Name: "lane-drift", Severity: S2, Exposure: E3, Controllability: C2})
	if r.Highest() != D {
		t.Fatalf("highest=%v", r.Highest())
	}
	by := r.ByASIL()
	if len(by[D]) != 1 || by[D][0] != "unintended-braking" {
		t.Fatalf("D hazards: %v", by[D])
	}
	if len(by[QM]) != 1 {
		t.Fatalf("QM hazards: %v", by[QM])
	}
	// S2+E3+C2 = 7 -> A.
	if len(by[A]) != 1 || by[A][0] != "lane-drift" {
		t.Fatalf("A hazards: %v", by[A])
	}
}

func brakeSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	err := s.AddFunction(Function{
		Name: "braking",
		Clauses: [][]string{
			{"brake-ecu-primary", "brake-ecu-backup"},
			{"hydraulics"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddFunction(Function{
		Name:    "abs",
		Clauses: [][]string{{"brake-ecu-primary"}, {"wheel-sensors"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSinglePointsOfFailure(t *testing.T) {
	s := brakeSystem(t)
	spf := s.SinglePointsOfFailure()
	want := []string{"brake-ecu-primary", "hydraulics", "wheel-sensors"}
	if len(spf) != len(want) {
		t.Fatalf("SPF=%v", spf)
	}
	for i := range want {
		if spf[i] != want[i] {
			t.Fatalf("SPF=%v, want %v", spf, want)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	s := brakeSystem(t)
	if !s.Available("braking") || !s.Available("abs") {
		t.Fatal("healthy system unavailable")
	}
	// Losing one redundant ECU keeps braking but kills ABS.
	s.Fail("brake-ecu-primary")
	if !s.Available("braking") {
		t.Fatal("redundancy did not cover ECU loss")
	}
	if s.Available("abs") {
		t.Fatal("abs survived its SPF")
	}
	// Losing both ECUs kills braking.
	s.Fail("brake-ecu-backup")
	if s.Available("braking") {
		t.Fatal("braking survived double fault")
	}
	failed := s.FailedFunctions()
	if len(failed) != 2 {
		t.Fatalf("failed=%v", failed)
	}
	s.Repair("brake-ecu-primary")
	if !s.Available("braking") || !s.Available("abs") {
		t.Fatal("repair did not restore")
	}
}

func TestFaultCampaign(t *testing.T) {
	s := brakeSystem(t)
	camp := s.FaultCampaign()
	if broken := camp["hydraulics"]; len(broken) != 1 || broken[0] != "braking" {
		t.Fatalf("hydraulics breaks %v", broken)
	}
	if broken := camp["brake-ecu-primary"]; len(broken) != 1 || broken[0] != "abs" {
		t.Fatalf("primary breaks %v", broken)
	}
	if _, ok := camp["brake-ecu-backup"]; ok {
		t.Fatal("redundant component listed in campaign")
	}
	// Campaign does not disturb live fault state.
	s.Fail("hydraulics")
	_ = s.FaultCampaign()
	if s.Available("braking") {
		t.Fatal("campaign cleared injected fault")
	}
}

func TestAddFunctionValidation(t *testing.T) {
	s := NewSystem()
	err := s.AddFunction(Function{Name: "bad", Clauses: [][]string{{}}})
	if !errors.Is(err, ErrEmptyClause) {
		t.Fatalf("err=%v", err)
	}
}

func TestUnknownFunctionUnavailable(t *testing.T) {
	s := NewSystem()
	if s.Available("ghost") {
		t.Fatal("unknown function reported available")
	}
}

func TestComponents(t *testing.T) {
	s := brakeSystem(t)
	cs := s.Components()
	if len(cs) != 4 {
		t.Fatalf("components=%v", cs)
	}
}
