package isotp

import (
	"bytes"
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// FuzzReassembly plays an adversarial peer: arbitrary protocol frames —
// mangled PCI nibbles, bogus lengths, out-of-order consecutive frames,
// stray flow control — are pushed at a receiving endpoint. The receiver
// must never panic, never deliver a message longer than its reassembly
// buffer allows, and keep its counters coherent.
//
// The fuzz input is chunked into CAN payloads: byte 0 of each chunk is a
// length nibble (1-8), the following bytes the frame data.
func FuzzReassembly(f *testing.F) {
	// A well-formed single frame, a first frame announcing 20 bytes, and
	// consecutive frames in and out of sequence.
	f.Add([]byte("\x06\x05hello"))
	f.Add([]byte("\x08\x10\x14AAAAAA" + "\x08\x21BBBBBBB" + "\x08\x22CCCCCCC"))
	f.Add([]byte("\x08\x10\x14AAAAAA" + "\x08\x23BBBBBBB")) // sequence error
	f.Add([]byte("\x04\x30\x00\x00"))                       // stray flow control
	f.Add([]byte("\x08\x1F\xFFAAAAAA"))                     // FF longer than MaxBuffer
	f.Add([]byte("\x01\x00"))                               // SF with zero length
	f.Fuzz(func(t *testing.T, data []byte) {
		k := sim.NewKernel(1)
		bus := can.NewBus(k, "diag", 500_000)
		ec := can.NewController("ecu")
		atk := can.NewController("attacker")
		bus.Attach(ec)
		bus.Attach(atk)
		ep := New(k, ec, Config{TxID: 0x7E8, RxID: 0x7E0, MaxBuffer: 256, BlockSize: 4})

		var delivered [][]byte
		ep.OnMessage(func(_ sim.Time, p []byte) {
			delivered = append(delivered, p)
		})

		// Space the attack frames out in virtual time so the endpoint's
		// flow-control responses interleave, as they would on a real bus.
		at := sim.Millisecond
		for len(data) > 0 {
			n := int(data[0]%8) + 1
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			if n == 0 {
				break
			}
			chunk := append([]byte(nil), data[:n]...)
			data = data[n:]
			k.At(at, func() {
				_ = atk.Send(can.Frame{ID: 0x7E0, Data: chunk}, nil)
			})
			at += sim.Millisecond
		}
		_ = k.RunUntil(at + sim.Second)

		for _, p := range delivered {
			if len(p) > 256 {
				t.Fatalf("delivered %d bytes, reassembly buffer is 256", len(p))
			}
		}
		if int(ep.MessagesRecv.Value) != len(delivered) {
			t.Fatalf("MessagesRecv=%d but %d messages delivered", ep.MessagesRecv.Value, len(delivered))
		}
	})
}

// FuzzRoundTrip drives the transmit path: any payload within protocol
// bounds must arrive intact through segmentation, flow control and
// reassembly, under fuzzer-chosen block size and separation time.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("ab"), uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0x55}, 100), uint8(4), uint8(1))
	f.Add(bytes.Repeat([]byte{0xA7}, 500), uint8(1), uint8(200))
	f.Fuzz(func(t *testing.T, payload []byte, blockSize, stRaw uint8) {
		if len(payload) == 0 || len(payload) > MaxMessage {
			return
		}
		k := sim.NewKernel(1)
		bus := can.NewBus(k, "diag", 500_000)
		tc := can.NewController("tester")
		ec := can.NewController("ecu")
		bus.Attach(tc)
		bus.Attach(ec)
		tester := New(k, tc, Config{TxID: 0x7E0, RxID: 0x7E8})
		ecu := New(k, ec, Config{
			TxID:           0x7E8,
			RxID:           0x7E0,
			BlockSize:      int(blockSize % 16),
			SeparationTime: decodeSeparationTime(stRaw),
		})

		var got []byte
		ecu.OnMessage(func(_ sim.Time, p []byte) { got = p })
		var doneErr error
		done := false
		if err := tester.Send(payload, func(err error) { done, doneErr = true, err }); err != nil {
			t.Fatal(err)
		}
		_ = k.Run()
		if !done {
			t.Fatalf("transfer of %d bytes never completed", len(payload))
		}
		if doneErr != nil {
			t.Fatalf("transfer failed: %v", doneErr)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload corrupted in transit: sent %d bytes, got %d", len(payload), len(got))
		}
	})
}
