package secoc

import (
	"bytes"
	"testing"

	"autosec/internal/ethernet"
	"autosec/internal/lin"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// SecOC over the fabric: the same Sender/Receiver pair authenticates
// frames on any netif medium. The test runs one channel over Ethernet
// (room for the trailer) and one over LIN (trailer must fit 8 bytes),
// with a forgery dropped on each.
func TestPortSenderReceiverAcrossMedia(t *testing.T) {
	var key [16]byte
	copy(key[:], "netif-secoc-key!")
	cfg := Config{DataID: 0x0123, FreshnessBits: 8, MACBits: 24}
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}

	run := func(t *testing.T, k *sim.Kernel, m netif.Medium, template netif.Frame) {
		t.Helper()
		s, err := NewSender(cfg, KeyMAC(key))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReceiver(cfg, KeyMAC(key))
		if err != nil {
			t.Fatal(err)
		}
		txPort, err := m.Open("secoc-tx")
		if err != nil {
			t.Fatal(err)
		}
		rxPort, err := m.Open("secoc-rx")
		if err != nil {
			t.Fatal(err)
		}
		tx := NewPortSender(txPort, s)
		rx := NewPortReceiver(rxPort, r)

		var got [][]byte
		rx.OnReceive(func(_ sim.Time, f *netif.Frame) {
			got = append(got, append([]byte(nil), f.Payload...))
		})

		f := template
		f.Payload = payload
		if err := tx.Send(&f); err != nil {
			t.Fatal(err)
		}
		// A forgery with the right shape but no valid MAC.
		forged := template
		forged.Payload = make([]byte, len(payload)+cfg.Overhead())
		if err := txPort.Send(&forged); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}

		if len(got) != 1 || !bytes.Equal(got[0], payload) {
			t.Fatalf("verified deliveries = %v, want exactly the bare payload % X", got, payload)
		}
		if rx.Rejected.Value != 1 || r.Rejected != 1 {
			t.Fatalf("forgery not rejected: port=%d receiver=%d", rx.Rejected.Value, r.Rejected)
		}
		if r.Accepted != 1 {
			t.Fatalf("accepted = %d, want 1", r.Accepted)
		}
	}

	t.Run("ethernet", func(t *testing.T) {
		k := sim.NewKernel(1)
		sw := ethernet.NewSwitch(k, "backbone", sim.Microsecond)
		run(t, k, ethernet.Netif(sw, 1), netif.Frame{Medium: netif.Ethernet, ID: 0x88B6})
	})
	t.Run("lin", func(t *testing.T) {
		k := sim.NewKernel(1)
		c := lin.NewCluster(k, "body", 19_200, lin.Enhanced)
		run(t, k, lin.Netif(c), netif.Frame{Medium: netif.LIN, ID: 0x21, Priority: 0x21})
	})
}
