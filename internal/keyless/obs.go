package keyless

import (
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Instrument attaches the car's PKES unit to the observability layer. The
// keyless exchange has no kernel of its own, so the caller supplies a
// clock (Kernel.Now, or nil for t=0 timestamps). Either of tr/reg may be
// nil.
//
// Trace events (subsystem "keyless"): one instant per unlock attempt,
// named "unlock" or "reject", with Str = the rejection reason (range,
// no-response, rtt, crypto, replay) and Arg1 = the measured RTT in
// nanoseconds (0 when the exchange died before an RTT existed).
//
// Metrics: keyless/unlocks, keyless/rejections, keyless/replay_rejects
// and keyless/bounding_trips probe the car's counters.
func (c *Car) Instrument(tr *obs.Tracer, reg *obs.Registry, clock func() sim.Time) {
	if tr != nil {
		c.obsTr = tr
		c.obsSub = tr.Label("keyless")
		c.obsUnlock = tr.Label("unlock")
		c.obsReject = tr.Label("reject")
		c.obsClock = clock
	}
	if reg != nil {
		reg.Probe("keyless/unlocks", func() float64 { return float64(c.Unlocks.Value) })
		reg.Probe("keyless/rejections", func() float64 { return float64(c.Rejections.Value) })
		reg.Probe("keyless/replay_rejects", func() float64 { return float64(c.ReplayRejects.Value) })
		reg.Probe("keyless/bounding_trips", func() float64 { return float64(c.BoundingTrips.Value) })
	}
}

// emitVerdict records one unlock attempt's outcome.
func (c *Car) emitVerdict(ok bool, reason string, rtt sim.Duration) {
	if c.obsTr == nil {
		return
	}
	var at sim.Time
	if c.obsClock != nil {
		at = c.obsClock()
	}
	name := c.obsReject
	if ok {
		name = c.obsUnlock
	}
	c.obsTr.Instant(at, c.obsSub, name, c.obsTr.Label(reason), int64(rtt), 0)
}
