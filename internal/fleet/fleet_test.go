package fleet

import (
	"testing"

	"autosec/internal/she"
)

var master = [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6}

func TestSharedKeyFullFleetCompromise(t *testing.T) {
	f := New(100, 4, SharedKey, master)
	res := f.AssessCompromise(0)
	if res.Compromised != 100 {
		t.Fatalf("shared-key compromise=%d, want 100", res.Compromised)
	}
	if res.Fraction() != 1 {
		t.Fatalf("fraction=%v", res.Fraction())
	}
}

func TestPerModelCompromiseLimitedToModel(t *testing.T) {
	f := New(100, 4, PerModel, master)
	res := f.AssessCompromise(0) // victim drives model 0
	// 100 vehicles over 4 models -> 25 per model.
	if res.Compromised != 25 {
		t.Fatalf("per-model compromise=%d, want 25", res.Compromised)
	}
	// Every compromised vehicle shares the victim's model.
	stolen := f.Vehicles[0].MasterKey()
	for _, v := range f.Vehicles {
		if v.MasterKey() == stolen && v.Model != res.AttackedModel {
			t.Fatal("key shared across models")
		}
	}
}

func TestPerDeviceCompromiseOnlyVictim(t *testing.T) {
	f := New(100, 4, PerDevice, master)
	res := f.AssessCompromise(7)
	if res.Compromised != 1 {
		t.Fatalf("per-device compromise=%d, want 1", res.Compromised)
	}
	if res.AttackedVIN != "VIN-000008" {
		t.Fatalf("victim VIN %s", res.AttackedVIN)
	}
}

func TestPerDeviceKeysDistinct(t *testing.T) {
	f := New(50, 1, PerDevice, master)
	seen := make(map[[16]byte]bool)
	for _, v := range f.Vehicles {
		k := v.MasterKey()
		if seen[k] {
			t.Fatal("duplicate per-device key")
		}
		seen[k] = true
	}
}

func TestCompromisedVehicleAcceptsEvilKey(t *testing.T) {
	// Double-check the compromise is real: after the campaign the evil key
	// actually works in the victim's Key1 slot.
	f := New(3, 1, SharedKey, master)
	res := f.AssessCompromise(1)
	if res.Compromised != 3 {
		t.Fatalf("compromise=%d", res.Compromised)
	}
	valid, flags, _ := f.Vehicles[2].Engine.KeyState(she.Key1)
	if !valid || !flags.KeyUsage {
		t.Fatal("evil key not installed on a fleet peer")
	}
}

func TestPolicyString(t *testing.T) {
	if SharedKey.String() != "shared-key" || PerModel.String() != "per-model" || PerDevice.String() != "per-device" {
		t.Fatal("policy names wrong")
	}
}

func TestModelsFloor(t *testing.T) {
	f := New(10, 0, PerModel, master)
	for _, v := range f.Vehicles {
		if v.Model != 0 {
			t.Fatal("model index with zero models requested")
		}
	}
}

func TestFractionEmptyFleet(t *testing.T) {
	r := CompromiseResult{}
	if r.Fraction() != 0 {
		t.Fatal("empty fleet fraction not 0")
	}
}
