package ethernet

import (
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// This file adapts the switched Ethernet network to the netif transport
// fabric. The EtherType is the routable identifier (SOME/IP, DoIP and the
// gateway's CAN tunnel are all EtherType-multiplexed), the VLAN rides in
// Aux, and MAC addresses map onto the fabric's hardware addresses.

// FrameToNetif fills out with the fabric view of f. The payload aliases
// f.Payload (zero-copy). sender names the transmitting host when known.
func FrameToNetif(f *Frame, sender string, out *netif.Frame) {
	*out = netif.Frame{
		Medium:  netif.Ethernet,
		ID:      uint32(f.EtherType),
		Aux:     uint32(f.VLAN),
		Src:     netif.HWAddr(f.Src),
		Dst:     netif.HWAddr(f.Dst),
		Sender:  sender,
		Payload: f.Payload,
	}
}

// FrameFromNetif converts a fabric frame back to a native Ethernet frame.
// The payload is aliased, not copied. A zero Dst means broadcast.
func FrameFromNetif(nf *netif.Frame) (Frame, error) {
	if nf.Medium != netif.Ethernet {
		return Frame{}, fmt.Errorf("ethernet: cannot convert %s frame", nf.Medium)
	}
	if nf.ID > 0xFFFF {
		return Frame{}, fmt.Errorf("ethernet: EtherType %#x out of range", nf.ID)
	}
	f := Frame{
		Src:       MAC(nf.Src),
		Dst:       MAC(nf.Dst),
		VLAN:      uint16(nf.Aux),
		EtherType: uint16(nf.ID),
		Payload:   nf.Payload,
	}
	if nf.Dst.IsZero() {
		f.Dst = Broadcast
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// netifMedium adapts one VLAN broadcast domain of a Switch to netif.Medium.
type netifMedium struct {
	sw         *Switch
	pvid       uint16
	tapScratch netif.Frame
}

// Netif returns the fabric view of the switch: ports are hosts connected
// in the given VLAN, taps are switch observers (monitor-port style).
func Netif(sw *Switch, pvid uint16) netif.Medium {
	return &netifMedium{sw: sw, pvid: pvid}
}

func (m *netifMedium) Kind() netif.Kind { return netif.Ethernet }
func (m *netifMedium) Name() string     { return m.sw.Name }

func (m *netifMedium) Open(name string) (netif.Port, error) {
	// Locally-administered MACs in a block unlikely to collide with the
	// LocalMAC(n) addresses scenario code hands out by small integer.
	h := NewHost(name, LocalMAC(0xA0000|uint32(len(m.sw.ports))))
	m.sw.Connect(h, m.pvid)
	return &netifPort{host: h}, nil
}

func (m *netifMedium) Tap(fn netif.TapFunc) {
	m.sw.Observe(func(at sim.Time, f *Frame, in *Port) {
		name := ""
		if in != nil && in.host != nil {
			name = in.host.Name
		}
		FrameToNetif(f, name, &m.tapScratch)
		fn(at, &m.tapScratch, false)
	})
}

// netifPort adapts a Host to netif.Port.
type netifPort struct {
	host        *Host
	recvScratch netif.Frame
}

func (p *netifPort) Name() string     { return p.host.Name }
func (p *netifPort) Kind() netif.Kind { return netif.Ethernet }

func (p *netifPort) Send(f *netif.Frame) error {
	ef, err := FrameFromNetif(f)
	if err != nil {
		return err
	}
	// The switch pipeline retains the frame (store-and-forward closures),
	// so the port owns the payload it hands over — the per-Send clone every
	// medium makes.
	ef.Payload = append([]byte(nil), ef.Payload...)
	return p.host.Send(ef)
}

func (p *netifPort) OnReceive(fn netif.RecvFunc) {
	p.host.OnReceive(func(at sim.Time, f *Frame) {
		FrameToNetif(f, "", &p.recvScratch)
		fn(at, &p.recvScratch)
	})
}
