package ieee1609

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"autosec/internal/sim"
)

// SignedMessage is the 1609.2 SignedData analogue: a payload bound to an
// application class, a generation time, and the signer's certificate.
type SignedMessage struct {
	PSID    PSID
	GenTime sim.Time
	Payload []byte
	// Cert travels with the message (the "certificate" signer-identifier
	// option); digest-only referencing is modelled by Store.AddCert plus
	// CertDigestOnly.
	Cert *Certificate
	// CertDigestOnly, when set, means the receiver must already know the
	// certificate (bandwidth optimisation used every N messages in real
	// deployments).
	CertDigestOnly bool
	Digest         HashedID8

	SigR, SigS *big.Int
}

// Message verification errors.
var (
	ErrStale       = errors.New("ieee1609: message generation time outside freshness window")
	ErrNoCert      = errors.New("ieee1609: signer certificate unavailable")
	ErrFuture      = errors.New("ieee1609: message from the future")
	ErrMsgTampered = errors.New("ieee1609: message signature invalid")
)

func (m *SignedMessage) signedBytes() []byte {
	var b []byte
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(m.PSID))
	b = append(b, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(m.GenTime))
	b = append(b, tmp[:]...)
	b = append(b, m.Payload...)
	return b
}

// Sign produces a signed message under the credential at virtual time now.
func (cr *Credential) Sign(psid PSID, payload []byte, now sim.Time, digestOnly bool) (*SignedMessage, error) {
	if !cr.Cert.Permits(psid) {
		return nil, fmt.Errorf("%w: signing %#x", ErrPSIDDenied, psid)
	}
	m := &SignedMessage{
		PSID:           psid,
		GenTime:        now,
		Payload:        append([]byte(nil), payload...),
		CertDigestOnly: digestOnly,
		Digest:         cr.Cert.ID(),
	}
	if !digestOnly {
		m.Cert = cr.Cert
	}
	digest := sha256.Sum256(m.signedBytes())
	r, s, err := ecdsa.Sign(rand.Reader, cr.priv, digest[:])
	if err != nil {
		return nil, err
	}
	m.SigR, m.SigS = r, s
	return m, nil
}

// WireBytes approximates the over-the-air size of the message: payload +
// header + signature (64) + certificate (~120) or digest (8).
func (m *SignedMessage) WireBytes() int {
	n := len(m.Payload) + 4 + 8 + 64
	if m.CertDigestOnly {
		return n + 8
	}
	return n + 120
}

// VerifyOptions tunes message verification.
type VerifyOptions struct {
	// Freshness is the maximum accepted message age; 0 disables the check.
	Freshness sim.Duration
	// FutureSlack tolerates clock skew for messages timestamped ahead of
	// the receiver (default 0: any future timestamp is rejected).
	FutureSlack sim.Duration
}

// Verify validates a signed message at virtual time now against the store:
// certificate chain, PSID permission, freshness, revocation, signature.
// On success it returns the signer's certificate.
func (s *Store) Verify(m *SignedMessage, now sim.Time, opts VerifyOptions) (*Certificate, error) {
	cert := m.Cert
	if cert == nil {
		var ok bool
		cert, ok = s.known[m.Digest]
		if !ok {
			return nil, fmt.Errorf("%w: digest %s", ErrNoCert, m.Digest)
		}
	}
	if m.GenTime > now+opts.FutureSlack {
		return nil, ErrFuture
	}
	if opts.Freshness > 0 && now-m.GenTime > opts.Freshness {
		return nil, fmt.Errorf("%w: age %v", ErrStale, now-m.GenTime)
	}
	if !cert.Permits(m.PSID) {
		return nil, fmt.Errorf("%w: %#x", ErrPSIDDenied, m.PSID)
	}
	if err := s.VerifyChain(cert, now); err != nil {
		return nil, err
	}
	digest := sha256.Sum256(m.signedBytes())
	if m.SigR == nil || m.SigS == nil || !ecdsa.Verify(cert.PublicKey, digest[:], m.SigR, m.SigS) {
		return nil, ErrMsgTampered
	}
	// Cache the cert for future digest-only messages from this signer.
	s.AddCert(cert)
	return cert, nil
}

// CRL is a signed certificate revocation list.
type CRL struct {
	Sequence uint64
	Revoked  []HashedID8
	Signer   *Certificate

	SigR, SigS *big.Int
}

func (c *CRL) tbs() []byte {
	var b []byte
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], c.Sequence)
	b = append(b, tmp[:]...)
	for _, id := range c.Revoked {
		b = append(b, id[:]...)
	}
	return b
}

// Contains reports whether the id is revoked.
func (c *CRL) Contains(id HashedID8) bool {
	for _, r := range c.Revoked {
		if r == id {
			return true
		}
	}
	return false
}

func (c *CRL) verify() error {
	digest := sha256.Sum256(c.tbs())
	if c.SigR == nil || c.SigS == nil || !ecdsa.Verify(c.Signer.PublicKey, digest[:], c.SigR, c.SigS) {
		return ErrBadSignature
	}
	return nil
}

// SignCRL issues a revocation list under the authority. The authority's
// certificate must carry PSIDCRL for stores to accept it.
func (a *Authority) SignCRL(sequence uint64, revoked []HashedID8) (*CRL, error) {
	crl := &CRL{Sequence: sequence, Revoked: append([]HashedID8(nil), revoked...), Signer: a.Cert}
	digest := sha256.Sum256(crl.tbs())
	r, s, err := ecdsa.Sign(rand.Reader, a.priv, digest[:])
	if err != nil {
		return nil, err
	}
	crl.SigR, crl.SigS = r, s
	return crl, nil
}

// PseudonymPool is a vehicle's batch of short-lived anonymous credentials,
// rotated to frustrate location tracking (the paper's privacy scenario).
type PseudonymPool struct {
	creds  []*Credential
	next   int
	active *Credential
	// Period is how long one pseudonym is used before rotation.
	Period sim.Duration
	// lastRotate is the virtual time of the last rotation.
	lastRotate sim.Time
}

// NewPseudonymPool issues n pseudonym credentials from the authority, each
// valid over the whole window (real systems stagger validity; rotation
// policy is what the experiment sweeps).
func NewPseudonymPool(a *Authority, n int, psids []PSID, notBefore, notAfter sim.Time, period sim.Duration) (*PseudonymPool, error) {
	if n <= 0 {
		return nil, errors.New("ieee1609: pool size must be positive")
	}
	p := &PseudonymPool{Period: period}
	for i := 0; i < n; i++ {
		cr, err := a.Issue("", psids, notBefore, notAfter, true)
		if err != nil {
			return nil, err
		}
		p.creds = append(p.creds, cr)
	}
	p.active = p.creds[0]
	p.next = 1
	return p, nil
}

// Active returns the credential to sign with at virtual time now, rotating
// when the period has elapsed. Rotation wraps around the pool (certificate
// reuse after exhaustion — a real-world compromise the tracker exploits).
func (p *PseudonymPool) Active(now sim.Time) *Credential {
	if p.Period > 0 && now-p.lastRotate >= p.Period {
		p.active = p.creds[p.next%len(p.creds)]
		p.next++
		p.lastRotate = now
	}
	return p.active
}

// Size reports the number of pseudonyms in the pool.
func (p *PseudonymPool) Size() int { return len(p.creds) }

// Rotations reports how many rotations have occurred.
func (p *PseudonymPool) Rotations() int { return p.next - 1 }
