package netif

import (
	"sort"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Record is one observed frame with its completion time, as captured by a
// medium tap. Unlike the live Frame view, a Record owns its payload.
type Record struct {
	At        sim.Time
	Frame     Frame
	Corrupted bool
}

// Trace is an in-order log of traffic on one or more media — the
// interchange format between the medium simulations, the intrusion
// detection package and the offline tools. It generalizes the historical
// can.Trace to mixed-medium captures.
type Trace struct {
	Records []Record
}

// Recorder attaches a trace-recording tap to the medium and returns the
// trace it fills.
func Recorder(m Medium) *Trace {
	t := &Trace{}
	m.Tap(func(at sim.Time, f *Frame, corrupted bool) {
		t.Records = append(t.Records, Record{At: at, Frame: f.Clone(), Corrupted: corrupted})
	})
	return t
}

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Keys returns the distinct (medium, ID) keys seen, sorted ascending.
// On a CAN-only trace the order is exactly ascending CAN-ID order.
func (t *Trace) Keys() []Key {
	set := make(map[Key]bool)
	for i := range t.Records {
		set[t.Records[i].Frame.Key()] = true
	}
	keys := make([]Key, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ByKey returns the records carrying the given (medium, ID) key, in time
// order.
func (t *Trace) ByKey(k Key) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.Frame.Key() == k {
			out = append(out, r)
		}
	}
	return out
}

// Between returns records with lo <= At < hi.
func (t *Trace) Between(lo, hi sim.Time) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.At >= lo && r.At < hi {
			out = append(out, r)
		}
	}
	return out
}

// Intervals returns the successive inter-arrival times of the given key —
// the primary feature used by frequency-based intrusion detection.
func (t *Trace) Intervals(k Key) []sim.Duration {
	recs := t.ByKey(k)
	if len(recs) < 2 {
		return nil
	}
	out := make([]sim.Duration, 0, len(recs)-1)
	for i := 1; i < len(recs); i++ {
		out = append(out, recs[i].At-recs[i-1].At)
	}
	return out
}

// EmitObs replays the trace into an obs tracer, one instant per record:
// subsystem = the record's medium ("can", "lin", "flexray", "ethernet"),
// name "frame" (or "frame-error" for corrupted records), Str = sender,
// Arg1 = frame ID, Arg2 = payload length. A converted CAN trace emits
// byte-identically to the historical can.Trace.EmitObs. No-op on a nil
// tracer.
func (t *Trace) EmitObs(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	frame := tr.Label("frame")
	frameErr := tr.Label("frame-error")
	for i := range t.Records {
		r := &t.Records[i]
		name := frame
		if r.Corrupted {
			name = frameErr
		}
		tr.Instant(r.At, tr.Label(r.Frame.Medium.String()), name,
			tr.Label(r.Frame.Sender), int64(r.Frame.ID), int64(len(r.Frame.Payload)))
	}
}
