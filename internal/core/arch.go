// Package core implements the paper's primary contribution as a runnable
// artifact: the 4+1-layer security assurance architecture of Section 7
// (secure interfaces, secure gateway, secure networks, secure processing,
// plus physical access security), composed over the substrate packages,
// with the in-field extensibility machinery of Sections 5-6 — versioned
// layer implementations, a signed policy plane that reconfigures layers
// at runtime, and an upgrade path that keeps a vehicle's security current
// over a multi-decade field life (experiment E12).
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Layer names one of the 4+1 architecture layers.
type Layer int

// The 4+1 layers of the security assurance architecture.
const (
	// SecureInterfaces covers communication with the external world: V2X,
	// telematics (IEEE 1609.2-style signing, TLS-class link protection).
	SecureInterfaces Layer = iota
	// SecureGateway is the firewall between external interfaces and the
	// safety-critical IVNs.
	SecureGateway
	// SecureNetworks covers the IVNs themselves (CAN/LIN/FlexRay/Ethernet
	// plus compensating controls such as the IDS).
	SecureNetworks
	// SecureProcessing covers the MCU/MPU units: SHE, secure boot,
	// isolation.
	SecureProcessing
	// AccessSecurity is the "+1": immobilizer and smart car access.
	AccessSecurity
	numLayers
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case SecureInterfaces:
		return "secure-interfaces"
	case SecureGateway:
		return "secure-gateway"
	case SecureNetworks:
		return "secure-networks"
	case SecureProcessing:
		return "secure-processing"
	case AccessSecurity:
		return "access-security"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Implementation is one versioned realization of a layer capability.
type Implementation struct {
	Name    string
	Version int
	// Component is the live subsystem object (gateway, IDS engine, cert
	// store, ...); layers are heterogeneous so this is deliberately any.
	Component any
	// Deprecated marks implementations that must be replaced (e.g. a
	// cryptographic suite past its assurance horizon — the paper's "5 to
	// 7 years" point).
	Deprecated bool
}

// Architecture is the extensible registry of layer implementations.
type Architecture struct {
	layers [numLayers]map[string]*Implementation

	// UpgradeLog records every in-field change, newest last.
	UpgradeLog []string
}

// NewArchitecture creates an empty architecture.
func NewArchitecture() *Architecture {
	a := &Architecture{}
	for i := range a.layers {
		a.layers[i] = make(map[string]*Implementation)
	}
	return a
}

// Errors.
var (
	ErrBadLayer     = errors.New("core: layer out of range")
	ErrNotInstalled = errors.New("core: capability not installed")
	ErrStaleVersion = errors.New("core: version not newer than installed")
)

// Install registers or upgrades a capability implementation in a layer.
// Upgrades must strictly increase the version — the same monotonicity the
// OTA and policy planes enforce.
func (a *Architecture) Install(l Layer, impl Implementation) error {
	if l < 0 || l >= numLayers {
		return ErrBadLayer
	}
	if cur, ok := a.layers[l][impl.Name]; ok && impl.Version <= cur.Version {
		return fmt.Errorf("%w: %s/%s v%d <= v%d", ErrStaleVersion, l, impl.Name, impl.Version, cur.Version)
	}
	cp := impl
	a.layers[l][impl.Name] = &cp
	a.UpgradeLog = append(a.UpgradeLog, fmt.Sprintf("%s/%s@v%d", l, impl.Name, impl.Version))
	return nil
}

// Get fetches an installed implementation.
func (a *Architecture) Get(l Layer, name string) (*Implementation, error) {
	if l < 0 || l >= numLayers {
		return nil, ErrBadLayer
	}
	impl, ok := a.layers[l][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotInstalled, l, name)
	}
	return impl, nil
}

// Deprecate marks an implementation as past its assurance horizon.
func (a *Architecture) Deprecate(l Layer, name string) error {
	impl, err := a.Get(l, name)
	if err != nil {
		return err
	}
	impl.Deprecated = true
	a.UpgradeLog = append(a.UpgradeLog, fmt.Sprintf("%s/%s deprecated", l, name))
	return nil
}

// Deprecated lists the capabilities awaiting replacement, as "layer/name".
func (a *Architecture) DeprecatedList() []string {
	var out []string
	for l := Layer(0); l < numLayers; l++ {
		for name, impl := range a.layers[l] {
			if impl.Deprecated {
				out = append(out, fmt.Sprintf("%s/%s", l, name))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Inventory renders the installed capabilities per layer.
func (a *Architecture) Inventory() map[string][]string {
	out := make(map[string][]string)
	for l := Layer(0); l < numLayers; l++ {
		var names []string
		for name, impl := range a.layers[l] {
			names = append(names, fmt.Sprintf("%s@v%d", name, impl.Version))
		}
		sort.Strings(names)
		out[l.String()] = names
	}
	return out
}

// SecurityCurrent reports whether no installed capability is deprecated —
// the E12 survival criterion for a vehicle at a point in its field life.
func (a *Architecture) SecurityCurrent() bool {
	return len(a.DeprecatedList()) == 0
}
