// Package v2x simulates the vehicle-to-everything field the paper's
// Secure Interfaces layer lives in: vehicles and road-side units on a 2-D
// plane, periodic signed Basic Safety Message broadcasts over a
// range-limited lossy radio, receive-side verification pipelines with a
// bounded CPU budget, and a passive tracking adversary used by the
// authentication-versus-anonymity experiment (E4).
package v2x

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
)

// Position is a point on the plane, in metres.
type Position struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// BSM is the decoded Basic Safety Message payload.
type BSM struct {
	Pos     Position
	SpeedMS float64 // metres per second
	Heading float64 // radians
}

// Encode serializes the BSM payload.
func (b BSM) Encode() []byte {
	out := make([]byte, 32)
	binary.BigEndian.PutUint64(out[0:], math.Float64bits(b.Pos.X))
	binary.BigEndian.PutUint64(out[8:], math.Float64bits(b.Pos.Y))
	binary.BigEndian.PutUint64(out[16:], math.Float64bits(b.SpeedMS))
	binary.BigEndian.PutUint64(out[24:], math.Float64bits(b.Heading))
	return out
}

// DecodeBSM parses a BSM payload.
func DecodeBSM(p []byte) (BSM, error) {
	if len(p) != 32 {
		return BSM{}, fmt.Errorf("v2x: BSM payload length %d", len(p))
	}
	return BSM{
		Pos: Position{
			X: math.Float64frombits(binary.BigEndian.Uint64(p[0:])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(p[8:])),
		},
		SpeedMS: math.Float64frombits(binary.BigEndian.Uint64(p[16:])),
		Heading: math.Float64frombits(binary.BigEndian.Uint64(p[24:])),
	}, nil
}

// Radio sets the field's propagation parameters.
type Radio struct {
	// RangeM is the reception range in metres.
	RangeM float64
	// LossProb is the per-link probability a broadcast is not received.
	LossProb float64
	// PropDelayPerM is the per-metre propagation delay (≈3.34 ns/m).
	PropDelayPerM sim.Duration
}

// DefaultRadio models DSRC-ish coverage.
func DefaultRadio() Radio {
	return Radio{RangeM: 300, LossProb: 0.05, PropDelayPerM: 4}
}

// VerifyModel sets the receive-side crypto cost model.
type VerifyModel struct {
	// VerifyTime is the simulated time one signature verification takes.
	// Software P-256 on an automotive MCU is on the order of 2-10 ms;
	// hardware acceleration 0.2-1 ms.
	VerifyTime sim.Duration
	// QueueLimit bounds the pending-verification queue; messages arriving
	// beyond it are dropped (the OBU is saturated).
	QueueLimit int
	// Freshness is the accepted message age.
	Freshness sim.Duration
	// Prioritized enables verify-on-demand scheduling: pending messages
	// are verified nearest-sender-first, and under overload the farthest
	// pending message is shed instead of the newest. Safety-relevant
	// (near) traffic then survives saturation (E15's defense row).
	Prioritized bool
	// NearThresholdM classifies senders as "near" for the loss metrics
	// (default 50m).
	NearThresholdM float64
}

// DefaultVerifyModel models software crypto on an OBU.
func DefaultVerifyModel() VerifyModel {
	return VerifyModel{VerifyTime: 2 * sim.Millisecond, QueueLimit: 64, Freshness: sim.Second}
}

// Entity is a vehicle or RSU participating in the field.
type Entity struct {
	Name  string
	IsRSU bool
	pos   Position
	vel   Position // velocity vector, m/s

	field *Field
	store *ieee1609.Store
	// pool is the pseudonym pool (vehicles); fixed is a static credential
	// (RSUs, which are public infrastructure and need no anonymity).
	pool  *ieee1609.PseudonymPool
	fixed *ieee1609.Credential

	verifyBusyUntil sim.Time
	queueLen        int

	// Priority-mode verification queue (see VerifyModel.Prioritized).
	pq        []pendingMsg
	verifying bool

	// Stats.
	Sent          sim.Counter
	Received      sim.Counter
	VerifiedOK    sim.Counter
	VerifyFailed  sim.Counter
	DroppedQueue  sim.Counter
	NearDropped   sim.Counter
	FarDropped    sim.Counter
	VerifyLatency sim.Summary
	NearLatency   sim.Summary

	onBSM []func(at sim.Time, from *ieee1609.Certificate, b BSM)
}

// Pos reports the entity's current position.
func (e *Entity) Pos() Position { return e.pos }

// SetVelocity sets the linear motion vector in m/s.
func (e *Entity) SetVelocity(vx, vy float64) { e.vel = Position{vx, vy} }

// OnBSM registers a handler for verified BSMs.
func (e *Entity) OnBSM(fn func(at sim.Time, from *ieee1609.Certificate, b BSM)) {
	e.onBSM = append(e.onBSM, fn)
}

// Field is the V2X simulation arena.
type Field struct {
	kernel   *sim.Kernel
	radio    Radio
	verify   VerifyModel
	entities []*Entity
	lossRand *sim.Stream

	// Listeners are passive receivers (the tracking adversary's antennas);
	// they see ciphertext-level traffic without verification cost.
	listeners []func(at sim.Time, from Position, msg *ieee1609.SignedMessage)

	// MoveTick is the position-integration step (default 100ms).
	MoveTick sim.Duration

	Broadcasts sim.Counter
	Deliveries sim.Counter
	RadioLost  sim.Counter
}

// NewField creates a field on the kernel.
func NewField(k *sim.Kernel, radio Radio, verify VerifyModel) *Field {
	f := &Field{
		kernel:   k,
		radio:    radio,
		verify:   verify,
		lossRand: k.Stream("v2x.radio"),
		MoveTick: 100 * sim.Millisecond,
	}
	k.Every(0, f.MoveTick, f.step)
	return f
}

func (f *Field) step() {
	dt := f.MoveTick.Seconds()
	for _, e := range f.entities {
		e.pos.X += e.vel.X * dt
		e.pos.Y += e.vel.Y * dt
	}
}

// AddVehicle adds a vehicle with a pseudonym pool and a certificate store.
func (f *Field) AddVehicle(name string, pos Position, pool *ieee1609.PseudonymPool, store *ieee1609.Store) *Entity {
	e := &Entity{Name: name, pos: pos, field: f, pool: pool, store: store}
	f.entities = append(f.entities, e)
	return e
}

// AddRSU adds a road-side unit with a fixed credential.
func (f *Field) AddRSU(name string, pos Position, cred *ieee1609.Credential, store *ieee1609.Store) *Entity {
	e := &Entity{Name: name, IsRSU: true, pos: pos, field: f, fixed: cred, store: store}
	f.entities = append(f.entities, e)
	return e
}

// Listen registers a passive radio listener at no verification cost.
func (f *Field) Listen(fn func(at sim.Time, from Position, msg *ieee1609.SignedMessage)) {
	f.listeners = append(f.listeners, fn)
}

// ErrNoCredential is returned when an entity without credentials broadcasts.
var ErrNoCredential = errors.New("v2x: entity has no signing credential")

// BroadcastBSM signs and broadcasts the entity's current kinematic state.
func (e *Entity) BroadcastBSM() error {
	now := e.field.kernel.Now()
	var cred *ieee1609.Credential
	switch {
	case e.pool != nil:
		cred = e.pool.Active(now)
	case e.fixed != nil:
		cred = e.fixed
	default:
		return ErrNoCredential
	}
	speed := math.Hypot(e.vel.X, e.vel.Y)
	bsm := BSM{Pos: e.pos, SpeedMS: speed, Heading: math.Atan2(e.vel.Y, e.vel.X)}
	psid := ieee1609.PSIDBasicSafety
	if e.IsRSU {
		psid = ieee1609.PSIDInfrastructry
	}
	msg, err := cred.Sign(psid, bsm.Encode(), now, false)
	if err != nil {
		return err
	}
	e.Sent.Inc()
	e.field.broadcast(e, msg)
	return nil
}

// StartBeacon broadcasts at the given period (BSMs are 10 Hz in practice).
func (e *Entity) StartBeacon(period sim.Duration) (stop func()) {
	js := e.field.kernel.Stream("v2x.beacon." + e.Name)
	return e.field.kernel.Every(js.Duration(0, period), period, func() {
		_ = e.BroadcastBSM()
	})
}

func (f *Field) broadcast(src *Entity, msg *ieee1609.SignedMessage) {
	f.Broadcasts.Inc()
	now := f.kernel.Now()
	srcPos := src.pos
	for _, fn := range f.listeners {
		fn(now, srcPos, msg)
	}
	for _, rx := range f.entities {
		if rx == src {
			continue
		}
		d := srcPos.Dist(rx.pos)
		if d > f.radio.RangeM {
			continue
		}
		if f.lossRand.Bool(f.radio.LossProb) {
			f.RadioLost.Inc()
			continue
		}
		f.Deliveries.Inc()
		rx := rx
		delay := sim.Duration(d) * f.radio.PropDelayPerM
		f.kernel.After(delay, func() { rx.receive(msg, d) })
	}
}

// pendingMsg is one queued verification job in priority mode.
type pendingMsg struct {
	msg   *ieee1609.SignedMessage
	enq   sim.Time
	distM float64
}

// receive runs the verification pipeline: queue, simulated crypto time,
// then actual 1609.2 verification and BSM dispatch. distM is the sender
// distance at transmission time (priority scheduling and loss metrics).
func (e *Entity) receive(msg *ieee1609.SignedMessage, distM float64) {
	e.Received.Inc()
	now := e.field.kernel.Now()
	vm := e.field.verify
	if vm.Prioritized {
		e.receivePrioritized(msg, distM, now, vm)
		return
	}
	if vm.QueueLimit > 0 && e.queueLen >= vm.QueueLimit {
		e.DroppedQueue.Inc()
		e.countDrop(distM, vm)
		return
	}
	e.queueLen++
	start := now
	if e.verifyBusyUntil < now {
		e.verifyBusyUntil = now
	}
	e.verifyBusyUntil += vm.VerifyTime
	done := e.verifyBusyUntil
	e.field.kernel.At(done, func() {
		e.queueLen--
		e.finishVerify(msg, start, distM, vm)
	})
}

// receivePrioritized implements verify-on-demand: the pending queue stays
// sorted nearest-first, overload sheds the farthest entry, and the verify
// engine always works on the head.
func (e *Entity) receivePrioritized(msg *ieee1609.SignedMessage, distM float64, now sim.Time, vm VerifyModel) {
	p := pendingMsg{msg: msg, enq: now, distM: distM}
	// Insert sorted by distance (nearest first; FIFO among equals).
	idx := len(e.pq)
	for i, q := range e.pq {
		if distM < q.distM {
			idx = i
			break
		}
	}
	e.pq = append(e.pq, pendingMsg{})
	copy(e.pq[idx+1:], e.pq[idx:])
	e.pq[idx] = p
	if vm.QueueLimit > 0 && len(e.pq) > vm.QueueLimit {
		// Shed the farthest pending message (the tail).
		victim := e.pq[len(e.pq)-1]
		e.pq = e.pq[:len(e.pq)-1]
		e.DroppedQueue.Inc()
		e.countDrop(victim.distM, vm)
	}
	e.pumpVerify(vm)
}

// pumpVerify starts the verify engine on the queue head if idle.
func (e *Entity) pumpVerify(vm VerifyModel) {
	if e.verifying || len(e.pq) == 0 {
		return
	}
	e.verifying = true
	head := e.pq[0]
	e.pq = e.pq[1:]
	e.field.kernel.After(vm.VerifyTime, func() {
		e.verifying = false
		e.finishVerify(head.msg, head.enq, head.distM, vm)
		e.pumpVerify(vm)
	})
}

func (e *Entity) countDrop(distM float64, vm VerifyModel) {
	near := vm.NearThresholdM
	if near == 0 {
		near = 50
	}
	if distM <= near {
		e.NearDropped.Inc()
	} else {
		e.FarDropped.Inc()
	}
}

// finishVerify performs the actual 1609.2 verification and dispatch after
// the simulated crypto time elapsed.
func (e *Entity) finishVerify(msg *ieee1609.SignedMessage, start sim.Time, distM float64, vm VerifyModel) {
	lat := (e.field.kernel.Now() - start).Millis()
	e.VerifyLatency.Observe(lat)
	near := vm.NearThresholdM
	if near == 0 {
		near = 50
	}
	if distM <= near {
		e.NearLatency.Observe(lat)
	}
	if e.store == nil {
		return
	}
	cert, err := e.store.Verify(msg, e.field.kernel.Now(), ieee1609.VerifyOptions{
		Freshness:   vm.Freshness,
		FutureSlack: 10 * sim.Millisecond,
	})
	if err != nil {
		e.VerifyFailed.Inc()
		return
	}
	e.VerifiedOK.Inc()
	if bsm, err := DecodeBSM(msg.Payload); err == nil {
		for _, fn := range e.onBSM {
			fn(e.field.kernel.Now(), cert, bsm)
		}
	}
}
