package experiments

import (
	"sort"

	"autosec/internal/can"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

// E11IDS quantifies §7's Secure Networks position: CAN "lacks security
// mechanisms", so an IDS is the compensating control. Each classic attack
// class is injected into realistic traffic and scored per detector family
// and for the combined engine.
func E11IDS(seed uint64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "IVN intrusion detection across attack classes (§7)",
		Claim:   "most commonly used IVN protocols lack security mechanisms; detection must compensate",
		Columns: []string{"attack", "detectors", "detection rate", "false positives/window"},
	}
	const trainDur = 20 * sim.Second
	const liveDur = 30 * sim.Second
	attackLo, attackHi := 10*sim.Second, 15*sim.Second

	train := workload.SyntheticTrace(workload.PowertrainMatrix(), trainDur, seed, 0.01)

	windows := []ids.Window{
		{Lo: 0, Hi: attackLo, Attack: false},
		{Lo: attackLo, Hi: attackHi, Attack: true},
		{Lo: attackHi, Hi: liveDur, Attack: false},
	}

	// Attack injectors mutate a fresh clean live trace.
	rnd := sim.NewStream(seed, "e11")
	type attackCase struct {
		name   string
		mutate func(tr *can.Trace)
	}
	cases := []attackCase{
		{"flood (1kHz on 0x0C0)", func(tr *can.Trace) {
			for at := attackLo; at < attackHi; at += sim.Millisecond {
				tr.Records = append(tr.Records, can.Record{At: at,
					Frame: can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, Sender: "attacker"})
			}
		}},
		{"targeted injection (racing 0x100)", func(tr *can.Trace) {
			var adds []can.Record
			for _, r := range tr.Records {
				if r.Frame.ID == 0x100 && r.At >= attackLo && r.At < attackHi {
					adds = append(adds, can.Record{At: r.At + 500*sim.Microsecond,
						Frame: can.Frame{ID: 0x100, Data: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}}, Sender: "attacker"})
				}
			}
			tr.Records = append(tr.Records, adds...)
		}},
		{"suspension (0x120 silenced)", func(tr *can.Trace) {
			kept := tr.Records[:0]
			for _, r := range tr.Records {
				if r.Frame.ID == 0x120 && r.At >= attackLo && r.At < attackHi {
					continue
				}
				kept = append(kept, r)
			}
			tr.Records = kept
		}},
		{"fuzzing (random payloads on 0x1A0)", func(tr *can.Trace) {
			for i, r := range tr.Records {
				if r.Frame.ID == 0x1A0 && r.At >= attackLo && r.At < attackHi {
					b := make([]byte, len(r.Frame.Data))
					rnd.Bytes(b)
					tr.Records[i].Frame.Data = b
				}
			}
		}},
		{"unknown diagnostic ID (0x7DF)", func(tr *can.Trace) {
			for at := attackLo; at < attackHi; at += 50 * sim.Millisecond {
				tr.Records = append(tr.Records, can.Record{At: at,
					Frame: can.Frame{ID: 0x7DF, Data: []byte{0x02, 0x10, 0x01}}, Sender: "attacker"})
			}
		}},
		{"none (clean baseline)", func(*can.Trace) {}},
	}

	detectorSets := []struct {
		name  string
		build func() []ids.Detector
	}{
		{"frequency", func() []ids.Detector { return []ids.Detector{ids.NewFrequencyDetector()} }},
		{"interval", func() []ids.Detector { return []ids.Detector{ids.NewIntervalDetector()} }},
		{"entropy", func() []ids.Detector { return []ids.Detector{ids.NewEntropyDetector()} }},
		{"spec", func() []ids.Detector { return []ids.Detector{ids.NewSpecDetector()} }},
		{"all four", func() []ids.Detector {
			return []ids.Detector{ids.NewFrequencyDetector(), ids.NewIntervalDetector(), ids.NewEntropyDetector(), ids.NewSpecDetector()}
		}},
	}

	for _, ac := range cases {
		live := workload.SyntheticTrace(workload.PowertrainMatrix(), liveDur, seed+1, 0.01)
		ac.mutate(live)
		sort.SliceStable(live.Records, func(i, j int) bool { return live.Records[i].At < live.Records[j].At })
		w := windows
		if ac.name == "none (clean baseline)" {
			w = []ids.Window{{Lo: 0, Hi: liveDur, Attack: false}}
		}
		for _, ds := range detectorSets {
			// Per-detector rows only for the combined row's components when
			// they add signal; always include the "all four" engine.
			m := ids.Evaluate(ds.build(), train.Netif(), live.Netif(), w, 200*sim.Millisecond)
			t.AddRow(ac.name, ds.name, m.DetectionRate(), m.FalsePositiveRate())
		}
	}
	return t
}
