package core

import (
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

// The forensic chain: an attack is attempted, the gateway and IDS record
// it in the SHE-sealed audit log, and post-incident tampering is caught.
func TestAuditLogRecordsAttackAndResistsTampering(t *testing.T) {
	v := newVehicle(t, Config{})
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, 1, 0.01).Netif())

	// An attacker in the infotainment domain probes the gateway.
	attacker := can.NewController("probe")
	v.Buses[DomainInfotainment].Attach(attacker)
	for i := 0; i < 5; i++ {
		_ = attacker.Send(can.Frame{ID: can.ID(0x700 + i)}, nil)
	}
	_ = v.Kernel.Run()

	if v.Audit.Len() < 5 {
		t.Fatalf("audit entries=%d, want ≥5 gateway denials", v.Audit.Len())
	}
	found := false
	for _, e := range v.Audit.Entries() {
		if e.Source == "gateway" && strings.Contains(e.Event, "deny") {
			found = true
		}
	}
	if !found {
		t.Fatal("no gateway denial recorded")
	}

	// Seal the log (a periodic maintenance action).
	if err := v.Audit.SealNow(v.Kernel.Now()); err != nil {
		t.Fatal(err)
	}
	if err := v.Audit.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if err := v.Audit.VerifySeals(); err != nil {
		t.Fatal(err)
	}

	// The attacker later gains code execution and wipes their traces.
	v.Audit.Truncate(0)
	if err := v.Audit.VerifySeals(); err == nil {
		t.Fatal("log wipe not detected by seals")
	}
}

func TestAuditLogRecordsIDSAlerts(t *testing.T) {
	v := newVehicle(t, Config{})
	v.Gateway.DefaultAction = 1 // permissive so the flood reaches the IDS
	combined := append(workload.PowertrainMatrix(), workload.BodyMatrix()...)
	v.TrainIDS(workload.SyntheticTrace(combined, 10*sim.Second, 1, 0.01).Netif())
	v.StartTraffic()
	attacker := can.NewController("flooder")
	v.Buses[DomainPowertrain].Attach(attacker)
	stop := can.PeriodicSender(v.Kernel, attacker, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)
	_ = v.Kernel.RunUntil(2 * sim.Second)
	stop()
	v.StopTraffic()

	idsEvents := 0
	for _, e := range v.Audit.Entries() {
		if e.Source == "ids" {
			idsEvents++
		}
	}
	if idsEvents == 0 {
		t.Fatal("IDS alerts not mirrored into the audit log")
	}
	if err := v.Audit.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}
