package can

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCRC15KnownBehaviour(t *testing.T) {
	// CRC of the empty sequence is 0.
	if got := CRC15(nil); got != 0 {
		t.Fatalf("CRC15(nil)=%#x", got)
	}
	// A single dominant (0) bit leaves the register at 0.
	if got := CRC15([]bool{false}); got != 0 {
		t.Fatalf("CRC15([0])=%#x", got)
	}
	// A single recessive (1) bit loads the polynomial.
	if got := CRC15([]bool{true}); got != crc15Poly {
		t.Fatalf("CRC15([1])=%#x, want %#x", got, crc15Poly)
	}
}

func TestCRC15DetectsSingleBitFlips(t *testing.T) {
	bits := make([]bool, 83)
	s := newTestBits(bits)
	base := CRC15(s)
	for i := range s {
		s[i] = !s[i]
		if CRC15(s) == base {
			t.Fatalf("single-bit flip at %d not detected", i)
		}
		s[i] = !s[i]
	}
}

func newTestBits(bits []bool) []bool {
	v := uint64(0x9e3779b97f4a7c15)
	for i := range bits {
		v = v*6364136223846793005 + 1442695040888963407
		bits[i] = v>>63 == 1
	}
	return bits
}

func TestStuffInsertsAfterFiveEqualBits(t *testing.T) {
	in := []bool{true, true, true, true, true, true}
	out := Stuff(in)
	want := []bool{true, true, true, true, true, false, true}
	if len(out) != len(want) {
		t.Fatalf("len=%d, want %d (%v)", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d]=%v, want %v", i, out[i], want[i])
		}
	}
}

func TestStuffUnstuffRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := make([]bool, 0, len(data)*8)
		for _, b := range data {
			bits = appendBits(bits, uint64(b), 8)
		}
		back, err := Unstuff(Stuff(bits))
		if err != nil {
			return false
		}
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnstuffRejectsSixEqualBits(t *testing.T) {
	in := []bool{true, true, true, true, true, true}
	if _, err := Unstuff(in); !errors.Is(err, ErrStuffViolation) {
		t.Fatalf("err=%v, want ErrStuffViolation", err)
	}
}

func TestStuffedOutputNeverHasSixEqualBits(t *testing.T) {
	f := func(data []byte) bool {
		bits := make([]bool, 0, len(data)*8)
		for _, b := range data {
			bits = appendBits(bits, uint64(b), 8)
		}
		out := Stuff(bits)
		run := 0
		var last bool
		for i, b := range out {
			if i > 0 && b == last {
				run++
			} else {
				run = 1
			}
			if run > 5 {
				return false
			}
			last = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshalStandard(t *testing.T) {
	f := Frame{ID: 0x123, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}
	wire, err := Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&f) {
		t.Fatalf("round trip: got %v, want %v", got, &f)
	}
}

func TestMarshalUnmarshalExtended(t *testing.T) {
	f := Frame{ID: 0x1ABCDE01, Extended: true, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	wire, err := Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&f) {
		t.Fatalf("round trip: got %v, want %v", got, &f)
	}
}

func TestMarshalUnmarshalRemote(t *testing.T) {
	f := Frame{ID: 0x7FF, Remote: true}
	wire, err := Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Remote || got.ID != 0x7FF {
		t.Fatalf("round trip: got %v", got)
	}
}

// Property: marshal/unmarshal round-trips arbitrary valid frames.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(rawID uint32, ext bool, data []byte) bool {
		fr := Frame{Extended: ext}
		if ext {
			fr.ID = ID(rawID) & MaxExtendedID
		} else {
			fr.ID = ID(rawID) & MaxStandardID
		}
		if len(data) > 8 {
			data = data[:8]
		}
		fr.Data = data
		wire, err := Marshal(&fr)
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		return got.Equal(&fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single corrupted wire bit in the stuffed region is
// detected (stuff violation, CRC error, or form error) — never silently
// decoded as a different frame.
func TestSingleBitCorruptionDetected(t *testing.T) {
	orig := Frame{ID: 0x2A5, Data: []byte{0x11, 0x22, 0x33}}
	wire, err := Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = !wire[i]
		got, err := Unmarshal(wire)
		if err == nil && got.Equal(&orig) {
			t.Fatalf("flip at %d decoded as the original frame", i)
		}
		// Note: a flip may legitimately decode into a *detectably*
		// different frame only if CRC still matched — that must not happen
		// for a single flip given CRC-15's Hamming distance.
		if err == nil {
			t.Fatalf("flip at %d silently accepted as %v", i, got)
		}
		wire[i] = !wire[i]
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(make([]bool, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err=%v, want ErrTruncated", err)
	}
}

func TestWireLengthBounds(t *testing.T) {
	// A standard frame with 0 data bytes: 44 fixed bits + stuffing + 3 IFS.
	f := Frame{ID: 0x000}
	n, err := WireLength(&f)
	if err != nil {
		t.Fatal(err)
	}
	if n < 47 || n > 60 {
		t.Fatalf("empty frame wire length %d out of plausible range", n)
	}
	// 8 data bytes: 108 fixed bits + stuffing + IFS, max ~135.
	f = Frame{ID: 0x555, Data: make([]byte, 8)}
	n, err = WireLength(&f)
	if err != nil {
		t.Fatal(err)
	}
	if n < 111 || n > 140 {
		t.Fatalf("full frame wire length %d out of plausible range", n)
	}
}

func TestBitLengthFD(t *testing.T) {
	f := Frame{ID: 0x100, FD: true, BRS: true, Data: make([]byte, 64)}
	arb, data, err := BitLength(&f)
	if err != nil {
		t.Fatal(err)
	}
	if arb <= 0 || data <= 0 {
		t.Fatalf("FD BRS frame: arb=%d data=%d", arb, data)
	}
	if data < 64*8 {
		t.Fatalf("data phase %d bits < payload bits", data)
	}
	// Without BRS everything is in the nominal phase.
	f.BRS = false
	arb2, data2, err := BitLength(&f)
	if err != nil {
		t.Fatal(err)
	}
	if data2 != 0 || arb2 < arb+data {
		t.Fatalf("non-BRS: arb=%d data=%d", arb2, data2)
	}
}

func TestHeaderBitsRejectsFD(t *testing.T) {
	f := Frame{ID: 1, FD: true}
	if _, err := Marshal(&f); err == nil {
		t.Fatal("Marshal accepted an FD frame")
	}
}

// Property: the streaming allocation-free bit counter used by the bus
// timing hot path agrees exactly with the reference Marshal-based
// WireLength for arbitrary valid classic frames (including remote frames),
// and allocates nothing.
func TestClassicWireBitsMatchesMarshal(t *testing.T) {
	check := func(fr Frame) {
		t.Helper()
		want, err := WireLength(&fr)
		if err != nil {
			t.Fatalf("WireLength(%v): %v", &fr, err)
		}
		got, err := classicWireBits(&fr)
		if err != nil {
			t.Fatalf("classicWireBits(%v): %v", &fr, err)
		}
		if got != want {
			t.Fatalf("classicWireBits(%v)=%d, WireLength=%d", &fr, got, want)
		}
	}
	f := func(rawID uint32, ext, remote bool, data []byte) bool {
		fr := Frame{Extended: ext, Remote: remote}
		if ext {
			fr.ID = ID(rawID) & MaxExtendedID
		} else {
			fr.ID = ID(rawID) & MaxStandardID
		}
		if len(data) > 8 {
			data = data[:8]
		}
		if !remote {
			fr.Data = data
		}
		check(fr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Worst-case stuffing: long runs of identical bits.
	check(Frame{ID: 0, Data: []byte{0, 0, 0, 0, 0, 0, 0, 0}})
	check(Frame{ID: 0x7FF, Data: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}})
	check(Frame{ID: 0x1FFFFFFF, Extended: true, Data: []byte{0xAA, 0x55}})

	fr := Frame{ID: 0x2A5, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := classicWireBits(&fr); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("classicWireBits allocates %v per call, want 0", allocs)
	}
	if _, err := classicWireBits(&Frame{ID: 1, FD: true}); err == nil {
		t.Fatal("classicWireBits accepted an FD frame")
	}
}
