// Package netif is the medium-agnostic transport fabric under the
// security layers. The paper's Section-7 Secure Gateway mediates between
// *heterogeneous* in-vehicle networks — CAN, LIN, FlexRay and automotive
// Ethernet — yet each of those media speaks its own frame format. netif
// defines the one frame view, port and medium abstraction the gateway,
// the intrusion-detection engine, SecOC receivers and the observability
// emitters consume, so a security control written once applies to every
// wire the vehicle carries. SOME/IP and DoIP traffic ride the Ethernet
// adapter unchanged.
//
// Design rules:
//
//   - Frame is a zero-copy *view*: Payload aliases the medium-native
//     frame's buffer and is only valid for the duration of the callback
//     that delivered it. Clone to retain.
//   - Identifiers are 29-bit-widened into a uint32 so the widest native
//     identifier space (extended CAN) fits without loss; narrower media
//     (6-bit LIN IDs, 11-bit FlexRay slots) embed in the low bits, and
//     Ethernet uses the EtherType as its routable identifier.
//   - Adapters live in the medium packages (can, lin, flexray,
//     ethernet), which import netif — never the other way round — so the
//     fabric stays dependency-free above the sim kernel.
package netif

import (
	"fmt"

	"autosec/internal/sim"
)

// Kind enumerates the in-vehicle network media.
type Kind uint8

const (
	// CAN is the Controller Area Network (2.0A/B and FD).
	CAN Kind = iota
	// LIN is the Local Interconnect Network.
	LIN
	// FlexRay is the TDMA static/dynamic-segment cluster bus.
	FlexRay
	// Ethernet is switched automotive Ethernet (802.1Q).
	Ethernet

	numKinds
)

// NumKinds is the number of media kinds, for dense per-kind tables
// (detector registries, routing arrays) indexed by Kind.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case CAN:
		return "can"
	case LIN:
		return "lin"
	case FlexRay:
		return "flexray"
	case Ethernet:
		return "ethernet"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Selector is a bitmask of media a rule applies to. The zero value
// matches every medium, so medium-oblivious configurations (the
// pre-fabric CAN-only rule sets) keep their exact semantics.
type Selector uint8

// Only returns a selector matching exactly the given medium.
func Only(k Kind) Selector { return Selector(1) << k }

// Matches reports whether the selector admits the medium.
func (s Selector) Matches(k Kind) bool {
	return s == 0 || s&(Selector(1)<<k) != 0
}

// Frame flag bits. The low byte carries CAN flags, the second byte the
// other media's.
const (
	// FlagExtended marks a 29-bit CAN identifier.
	FlagExtended uint16 = 1 << 0
	// FlagRemote marks a classic CAN remote transmission request.
	FlagRemote uint16 = 1 << 1
	// FlagFD marks a CAN FD frame.
	FlagFD uint16 = 1 << 2
	// FlagBRS marks an FD frame using the fast data-phase bitrate.
	FlagBRS uint16 = 1 << 3
	// FlagNull marks a FlexRay null frame (owner had nothing to send).
	FlagNull uint16 = 1 << 8
	// FlagDynamic marks a FlexRay dynamic-segment frame. Static TDMA
	// frames leave it clear, so medium-aware detectors can tell a
	// schedule-owned slot from minislot arbitration.
	FlagDynamic uint16 = 1 << 9
)

// HWAddr is a 48-bit hardware address (Ethernet MAC); zero for media
// without link-layer addressing.
type HWAddr [6]byte

// BroadcastAddr is the all-ones Ethernet broadcast address.
var BroadcastAddr = HWAddr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// IsZero reports whether the address is unset.
func (a HWAddr) IsZero() bool { return a == HWAddr{} }

// Frame is the medium-agnostic view of one frame. It carries the routable
// identifier every medium exposes, plus enough medium-specific side state
// (Flags, Aux, hardware addresses) that the adapters round-trip their
// native frames losslessly.
//
// Payload is a zero-copy view into the delivering medium's buffer: it is
// only valid for the duration of the callback, and receivers that retain
// it must Clone.
type Frame struct {
	// Medium tags which network the frame travelled (or will travel) on.
	Medium Kind
	// ID is the 29-bit-widened identifier: the CAN ID, the LIN frame ID,
	// the FlexRay slot, or the Ethernet EtherType. Rules and detectors
	// match on (Medium, ID).
	ID uint32
	// Flags carries medium-specific frame bits (Flag* constants).
	Flags uint16
	// Aux carries medium-specific side state: the FlexRay cycle counter
	// or the Ethernet VLAN; zero elsewhere.
	Aux uint32
	// Priority orders frames when the medium arbitrates: lower wins.
	// CAN/LIN use the identifier, FlexRay the slot; Ethernet has no
	// per-frame arbitration and reports zero.
	Priority uint32
	// Src and Dst are link-layer addresses on addressed media (Ethernet);
	// zero elsewhere. A zero Dst on send means broadcast.
	Src, Dst HWAddr
	// Sender names the transmitting node when the medium knows it (CAN
	// controller name, FlexRay sender, Ethernet ingress host).
	Sender string
	// Payload is the frame's data bytes — a view, not a copy.
	Payload []byte
}

// Key packs (medium, ID) into one ordered map key. CAN frames sort and
// compare exactly by their identifier (medium 0 occupies the high bits),
// so detector state keyed by Key reproduces the historical per-can.ID
// maps bit for bit on CAN-only traffic.
type Key uint64

// Key returns the frame's (medium, ID) key.
func (f *Frame) Key() Key { return Key(uint64(f.Medium)<<32 | uint64(f.ID)) }

// Kind extracts the medium from a key.
func (k Key) Kind() Kind { return Kind(k >> 32) }

// ID extracts the 32-bit identifier from a key.
func (k Key) ID() uint32 { return uint32(k) }

// MakeKey packs a (medium, ID) pair.
func MakeKey(m Kind, id uint32) Key { return Key(uint64(m)<<32 | uint64(id)) }

// Clone returns a deep copy of the frame, safe to retain.
func (f *Frame) Clone() Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return c
}

// CopyInto deep-copies the frame into dst, reusing dst's payload buffer
// when it has capacity — the allocation-free variant of Clone for
// steady-state paths.
func (f *Frame) CopyInto(dst *Frame) {
	buf := dst.Payload[:0]
	*dst = *f
	dst.Payload = append(buf, f.Payload...)
}

// Equal reports whether two frames carry identical state.
func (f *Frame) Equal(g *Frame) bool {
	if f.Medium != g.Medium || f.ID != g.ID || f.Flags != g.Flags ||
		f.Aux != g.Aux || f.Priority != g.Priority ||
		f.Src != g.Src || f.Dst != g.Dst || f.Sender != g.Sender ||
		len(f.Payload) != len(g.Payload) {
		return false
	}
	for i := range f.Payload {
		if f.Payload[i] != g.Payload[i] {
			return false
		}
	}
	return true
}

// String renders the frame medium-first in candump-like notation.
func (f *Frame) String() string {
	return fmt.Sprintf("%s:%03X [%d] % X", f.Medium, f.ID, len(f.Payload), f.Payload)
}

// RecvFunc handles a frame delivered to a port. The *Frame (and its
// payload) is only valid for the duration of the call.
type RecvFunc func(at sim.Time, f *Frame)

// TapFunc observes every frame that completes on a medium, including
// corrupted ones — the netif analogue of a CAN sniffer. The *Frame is
// only valid for the duration of the call.
type TapFunc func(at sim.Time, f *Frame, corrupted bool)

// Port is one attachment point on a medium: a gateway domain, an IDS tap
// host, a SecOC endpoint. Send transmits into the medium (the medium
// clones the payload, so the caller may reuse its buffer immediately);
// OnReceive registers the deliver hook.
type Port interface {
	// Name is the port's node name on the medium.
	Name() string
	// Kind reports the medium the port is attached to.
	Kind() Kind
	// Send transmits a frame into the medium.
	Send(f *Frame) error
	// OnReceive registers a delivery handler for frames arriving at the
	// port.
	OnReceive(fn RecvFunc)
}

// Medium is one in-vehicle network viewed through the fabric: something
// ports attach to and taps observe. The adapters in can, lin, flexray and
// ethernet implement it over their native bus/cluster/switch types.
type Medium interface {
	// Kind reports the medium's kind.
	Kind() Kind
	// Name is the network's name (bus, cluster or switch name).
	Name() string
	// Open attaches a new named port (node) to the medium.
	Open(name string) (Port, error)
	// Tap registers a passive observer of all completed frames.
	Tap(fn TapFunc)
}
