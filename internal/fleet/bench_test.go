package fleet

import (
	"context"
	"testing"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// BenchmarkFleetVehiclesPerSec is the fleet-throughput headline pinned
// in CI's bench-smoke job: b.N pooled vehicles driven end to end through
// the sharded driver (zonal topology, cross-domain traffic, quarantine
// reflex), reported as vehicles/sec. Track this when touching the reset
// path — fleet wall-clock is per-vehicle cost times population.
func BenchmarkFleetVehiclesPerSec(b *testing.B) {
	cfg := core.Config{VIN: "BENCH-FLEET", Seed: 1, Zonal: &core.ZonalConfig{
		Zones:        2,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Drive(context.Background(), Driver{Cfg: cfg, N: b.N}, driveScenario); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "vehicles/sec")
}

// BenchmarkFleetVehiclesPerSecObs is BenchmarkFleetVehiclesPerSec with
// the metrics plane enabled: per-vehicle registries, probe
// materialization and the index-order fleet merge. The acceptance gate
// (checked by cmd/benchreport -compare) is <10% overhead against the
// disabled benchmark above, which itself must not move — disabled means
// nil instruments and one branch per hot-path site.
func BenchmarkFleetVehiclesPerSecObs(b *testing.B) {
	cfg := core.Config{VIN: "BENCH-FLEET", Seed: 1, Zonal: &core.ZonalConfig{
		Zones:        2,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	_, res, err := DriveObs(context.Background(), Driver{Cfg: cfg, N: b.N},
		ObsOptions{Metrics: true}, driveScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if len(res.Registry.Snapshot()) == 0 {
		b.Fatal("metrics plane produced an empty fleet registry")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "vehicles/sec")
}

// BenchmarkFleetRegistryMerge isolates the merge point itself: folding
// one materialized per-vehicle registry into a warm fleet registry.
// This is the per-vehicle cost added at the drive barrier; steady state
// must be allocation-free (TestFleetMergeSteadyStateAllocs pins it).
func BenchmarkFleetRegistryMerge(b *testing.B) {
	cfg := core.Config{VIN: "BENCH-MERGE", Seed: 1, Zonal: &core.ZonalConfig{
		Zones:        2,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
	pool := core.NewVehiclePool(cfg)
	v, err := pool.Acquire(VehicleSeed(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	shard := obs.NewRegistry()
	v.Instrument(nil, shard)
	if _, err := driveScenario(0, v); err != nil {
		b.Fatal(err)
	}
	shard.Materialize()
	pool.Release(v)
	fleet := obs.NewRegistry()
	if err := fleet.Merge(shard); err != nil { // warm-up creates the keys
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSteadyState is the alloc half of the benchmark pair: the
// simulation-step loop of a pooled vehicle at steady state. CI greps the
// output for nonzero allocs/op — the same zero-alloc discipline pinned on
// the kernel, gateway and zonal hot paths.
func BenchmarkFleetSteadyState(b *testing.B) {
	pool := core.NewVehiclePool(core.Config{VIN: "BENCH-ALLOC", Seed: 9})
	v, err := pool.Acquire(1)
	if err != nil {
		b.Fatal(err)
	}
	v.Gateway.SetRules([]*gateway.Rule{{
		Name: "st", From: core.DomainChassis, To: []string{core.DomainInfotainment},
		IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow,
	}})
	c := can.NewController("tick")
	v.Buses[core.DomainChassis].Attach(c)
	data := []byte{0x01, 0x02}
	k := v.Kernel
	k.Every(0, sim.Millisecond, func() {
		_ = c.Send(can.Frame{ID: 0x123, Data: data}, nil)
	})
	until := sim.Time(20 * sim.Millisecond)
	if err := k.RunUntil(until); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until += sim.Time(2 * sim.Millisecond)
		_ = k.RunUntil(until)
	}
	b.StopTimer()
	pool.Release(v)
}
