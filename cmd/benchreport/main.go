// Command benchreport regenerates the full experiment suite E1–E15 (plus
// ablations A1–A2) from DESIGN.md and prints each result table, paper
// claim included.
//
// With -seeds N it becomes a replication study: the suite runs once per
// seed (seed, seed+1, …) sharded across a -par-sized worker pool, and the
// printed tables carry mean ± 95% CI, standard deviation and per-seed
// range columns for every cell that varies across seeds. The merge is
// deterministic: any -par value produces byte-identical output.
//
// With -json FILE (single-seed mode) it additionally emits a
// machine-readable report: wall-clock nanoseconds and a SHA-256 hash of
// the rendered table for every experiment, so perf PRs can pin both the
// speed and the byte-identity of the suite (see BENCH_PR2.json at the
// repo root for the committed trajectory).
//
// -cpuprofile / -memprofile write pprof profiles of the run, so future
// perf work can grab flame graphs without editing code:
//
//	go run ./cmd/benchreport -only E1 -cpuprofile cpu.pprof
//	go tool pprof -top cpu.pprof
//
// Usage:
//
//	benchreport [-seed N] [-seeds N] [-par N] [-only E3,E8] [-json FILE]
//	            [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"autosec/internal/experiments"
	"autosec/internal/runner"
)

// jsonReport is the schema written by -json.
type jsonReport struct {
	Seed        uint64           `json:"seed"`
	GoVersion   string           `json:"go_version"`
	Experiments []jsonExperiment `json:"experiments"`
	TotalNS     int64            `json:"total_ns"`
}

// jsonExperiment pins one experiment's regeneration cost and output hash.
type jsonExperiment struct {
	ID   string `json:"id"`
	NS   int64  `json:"ns"`
	Hash string `json:"table_sha256"`
}

func main() {
	seed := flag.Uint64("seed", 1, "base scenario seed (same seed, same tables)")
	nseeds := flag.Int("seeds", 1, "number of replicate seeds (seed, seed+1, ...); >1 prints aggregated tables")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "replication worker pool size")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E8); empty runs all")
	jsonOut := flag.String("json", "", "write per-experiment ns + table hashes as JSON to this file ('-' for stdout); single-seed mode only")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()
	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}
	if *jsonOut != "" && *nseeds > 1 {
		fmt.Fprintln(os.Stderr, "benchreport: -json requires single-seed mode (drop -seeds)")
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize live-heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id  string
		run func(uint64) *experiments.Table
	}{
		{"E1", experiments.E1BusDoS},
		{"E2", experiments.E2SideChannel},
		{"E3", experiments.E3FleetCompromise},
		{"E4", experiments.E4Pseudonym},
		{"E5", experiments.E5Tradeoff},
		{"E6", experiments.E6Verification},
		{"E7", experiments.E7AuthenticatedCAN},
		{"E8", experiments.E8Gateway},
		{"E9", experiments.E9Relay},
		{"E10", experiments.E10OTA},
		{"E11", experiments.E11IDS},
		{"E12", experiments.E12Lifetime},
		{"E13", experiments.E13DiagnosticAccess},
		{"E14", experiments.E14BusOff},
		{"E15", experiments.E15VerifyScaling},
		{"A1", experiments.A1MACTruncation},
		{"A2", experiments.A2BoundingThreshold},
	}

	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiments matched -only=%q\n", *only)
		os.Exit(1)
	}

	if *nseeds <= 1 {
		report := jsonReport{Seed: *seed, GoVersion: runtime.Version()}
		quiet := *jsonOut == "-" // keep stdout parseable
		for _, r := range selected {
			start := time.Now()
			table := r.run(*seed)
			elapsed := time.Since(start)
			rendered := table.String()
			report.TotalNS += elapsed.Nanoseconds()
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID:   r.id,
				NS:   elapsed.Nanoseconds(),
				Hash: fmt.Sprintf("%x", sha256.Sum256([]byte(rendered))),
			})
			if !quiet {
				fmt.Println(rendered)
				fmt.Printf("  (regenerated in %v)\n\n", elapsed.Round(time.Millisecond))
			}
		}
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, &report); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	// Replication mode: run the selected suite once per seed on the pool,
	// then print the deterministic merge.
	suite := func(s uint64) []*experiments.Table {
		tables := make([]*experiments.Table, len(selected))
		for i, r := range selected {
			tables[i] = r.run(s)
		}
		return tables
	}
	seeds := runner.Seeds(*seed, *nseeds)
	start := time.Now()
	tables, err := runner.ReplicateAggregate(context.Background(), suite, seeds, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("  (%d experiments x %d seeds on %d workers in %v)\n",
		len(selected), *nseeds, *par, elapsed)
}

// writeJSON marshals the report with stable indentation to path or stdout.
func writeJSON(path string, report *jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
