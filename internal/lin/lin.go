// Package lin simulates a Local Interconnect Network cluster: a single
// master that polls slaves according to a schedule table, protected-ID
// parity, and the classic/enhanced checksum of LIN 2.x.
//
// LIN is the cheapest of the in-vehicle networks the paper's Secure
// Networks layer covers, and — like CAN — it has no built-in security
// mechanism: any node that can drive the wire can publish any frame. The
// simulation exposes that property to attack scenarios.
package lin

import (
	"errors"
	"fmt"

	"autosec/internal/sim"
)

// FrameID is a LIN frame identifier, 0..59 for application frames
// (60/61 are diagnostic, 62/63 reserved).
type FrameID byte

// MaxFrameID is the largest valid LIN identifier.
const MaxFrameID FrameID = 0x3F

// Errors.
var (
	ErrIDRange      = errors.New("lin: frame ID out of range")
	ErrDataLength   = errors.New("lin: payload must be 1..8 bytes")
	ErrParity       = errors.New("lin: PID parity error")
	ErrChecksum     = errors.New("lin: checksum mismatch")
	ErrNoPublisher  = errors.New("lin: no slave publishes this frame")
	ErrDupPublisher = errors.New("lin: frame already has a publisher")
)

// PID computes the protected identifier: the 6-bit ID plus the two parity
// bits defined by LIN 2.x (P0 = ID0⊕ID1⊕ID2⊕ID4, P1 = ¬(ID1⊕ID3⊕ID4⊕ID5)).
func PID(id FrameID) (byte, error) {
	if id > MaxFrameID {
		return 0, fmt.Errorf("%w: %#x", ErrIDRange, id)
	}
	b := byte(id)
	bit := func(n uint) byte { return (b >> n) & 1 }
	p0 := bit(0) ^ bit(1) ^ bit(2) ^ bit(4)
	p1 := 1 ^ (bit(1) ^ bit(3) ^ bit(4) ^ bit(5))
	return b | p0<<6 | p1<<7, nil
}

// CheckPID validates the parity bits and extracts the frame ID.
func CheckPID(pid byte) (FrameID, error) {
	id := FrameID(pid & 0x3F)
	want, _ := PID(id)
	if want != pid {
		return 0, fmt.Errorf("%w: %#x", ErrParity, pid)
	}
	return id, nil
}

// ChecksumModel selects between LIN 1.x classic (data only) and LIN 2.x
// enhanced (PID + data) checksums.
type ChecksumModel int

const (
	// Classic covers the data bytes only.
	Classic ChecksumModel = iota
	// Enhanced covers the protected ID and the data bytes.
	Enhanced
)

// Checksum computes the inverted modulo-256-with-carry sum used by LIN.
func Checksum(model ChecksumModel, pid byte, data []byte) byte {
	var sum uint16
	if model == Enhanced {
		sum = uint16(pid)
	}
	for _, b := range data {
		sum += uint16(b)
		if sum >= 256 {
			sum -= 255
		}
	}
	return ^byte(sum)
}

// VerifyChecksum reports whether cs is the correct checksum for the frame.
func VerifyChecksum(model ChecksumModel, pid byte, data []byte, cs byte) bool {
	return Checksum(model, pid, data) == cs
}

// Frame is a completed LIN transfer: header ID plus the published response.
// Sender names the node that published the response: the owning slave for
// scheduled frames, "intruder" for rogue responses, or the caller-supplied
// name for sporadic master transmissions.
type Frame struct {
	ID     FrameID
	Data   []byte
	Sender string
}

// PublishFunc produces the response payload when the master polls the
// frame the slave publishes. Returning nil means "no response" (a
// slave-not-responding error on the wire).
type PublishFunc func(at sim.Time) []byte

// SubscribeFunc consumes a completed frame at a subscriber node.
type SubscribeFunc func(at sim.Time, f Frame)

// Slave is a LIN slave node with at most one published frame per ID and
// any number of subscriptions.
type Slave struct {
	Name       string
	publishers map[FrameID]PublishFunc
	subs       map[FrameID][]SubscribeFunc
}

// NewSlave creates a slave node.
func NewSlave(name string) *Slave {
	return &Slave{
		Name:       name,
		publishers: make(map[FrameID]PublishFunc),
		subs:       make(map[FrameID][]SubscribeFunc),
	}
}

// Publish registers the slave as the publisher of the frame ID.
func (s *Slave) Publish(id FrameID, fn PublishFunc) error {
	if id > MaxFrameID {
		return fmt.Errorf("%w: %#x", ErrIDRange, id)
	}
	if _, dup := s.publishers[id]; dup {
		return fmt.Errorf("%w: %#x on %s", ErrDupPublisher, id, s.Name)
	}
	s.publishers[id] = fn
	return nil
}

// Subscribe registers interest in a frame ID.
func (s *Slave) Subscribe(id FrameID, fn SubscribeFunc) {
	s.subs[id] = append(s.subs[id], fn)
}

// ScheduleEntry is one slot in the master's schedule table.
type ScheduleEntry struct {
	ID FrameID
	// Delay is the slot duration before the next entry runs. It must be at
	// least the frame's wire time; the master does not check this (a
	// mis-sized schedule is a real integration bug worth simulating).
	Delay sim.Duration
}

// Cluster is a LIN bus: one master, its schedule table, and the slaves.
type Cluster struct {
	Name      string
	kernel    *sim.Kernel
	bitrate   int64
	model     ChecksumModel
	slaves    []*Slave
	intruders map[FrameID]PublishFunc
	schedule  []ScheduleEntry
	running   bool
	stopped   bool

	// ResponseCollisions counts slots where a rogue publisher answered on
	// top of the legitimate one, destroying both responses.
	ResponseCollisions sim.Counter

	// Stats.
	FramesOK        sim.Counter
	NoResponse      sim.Counter
	ChecksumErrors  sim.Counter
	CorruptResponse float64 // probability a response is corrupted in flight
	errStream       *sim.Stream

	observers []SubscribeFunc

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base linBaseline
}

// NewCluster creates a LIN cluster at the given bitrate (typically 19200).
func NewCluster(k *sim.Kernel, name string, bitrate int64, model ChecksumModel) *Cluster {
	if bitrate <= 0 {
		panic("lin: bitrate must be positive")
	}
	return &Cluster{
		Name:      name,
		kernel:    k,
		bitrate:   bitrate,
		model:     model,
		intruders: make(map[FrameID]PublishFunc),
		errStream: k.Stream("lin." + name + ".errors"),
	}
}

// Intrude registers a rogue publisher for a frame ID — the attack
// primitive: LIN has no arbitration in the response slot, so a node that
// answers a header it does not own either injects data (unowned ID) or
// collides with the legitimate response (owned ID), destroying it.
func (c *Cluster) Intrude(id FrameID, fn PublishFunc) error {
	if id > MaxFrameID {
		return fmt.Errorf("%w: %#x", ErrIDRange, id)
	}
	c.intruders[id] = fn
	return nil
}

// AddSlave attaches a slave to the cluster.
func (c *Cluster) AddSlave(s *Slave) { c.slaves = append(c.slaves, s) }

// SetSchedule installs the master's schedule table.
func (c *Cluster) SetSchedule(entries []ScheduleEntry) { c.schedule = entries }

// Observe registers a bus-level observer seeing every completed frame
// (the LIN analogue of a CAN sniffer).
func (c *Cluster) Observe(fn SubscribeFunc) { c.observers = append(c.observers, fn) }

// FrameTime returns the on-wire duration of a header plus an n-byte
// response: break+sync+PID (34 bits) and (n+1) bytes at 10 bits each,
// plus a 10% response-space allowance.
func (c *Cluster) FrameTime(n int) sim.Duration {
	bits := 34 + (n+1)*10
	ns := float64(bits) / float64(c.bitrate) * 1e9 * 1.1
	return sim.Duration(ns)
}

// Start begins executing the schedule table from the current virtual time.
func (c *Cluster) Start() error {
	if len(c.schedule) == 0 {
		return errors.New("lin: empty schedule table")
	}
	if c.running {
		return errors.New("lin: already running")
	}
	c.running = true
	c.stopped = false
	c.runEntry(0)
	return nil
}

// Stop halts the schedule after the current slot.
func (c *Cluster) Stop() { c.stopped = true; c.running = false }

func (c *Cluster) runEntry(i int) {
	if c.stopped {
		return
	}
	e := c.schedule[i%len(c.schedule)]
	c.poll(e.ID)
	c.kernel.After(e.Delay, func() { c.runEntry(i + 1) })
}

// poll sends the header for id and completes the transfer with the
// publisher's response, if any.
func (c *Cluster) poll(id FrameID) {
	pid, err := PID(id)
	if err != nil {
		return
	}
	var pub PublishFunc
	var sender string
	for _, s := range c.slaves {
		if fn, ok := s.publishers[id]; ok {
			pub = fn
			sender = s.Name
			break
		}
	}
	if intruder, ok := c.intruders[id]; ok {
		if pub != nil {
			// Both the owner and the intruder drive the response slot: the
			// waveforms collide and every subscriber sees garbage that the
			// checksum rejects.
			if owned := pub(c.kernel.Now()); owned != nil && intruder(c.kernel.Now()) != nil {
				c.ResponseCollisions.Inc()
				c.ChecksumErrors.Inc()
				return
			}
		}
		// Unowned (or silent owner): the intruder's response stands.
		pub = intruder
		sender = "intruder"
	}
	if pub == nil {
		c.NoResponse.Inc()
		return
	}
	data := pub(c.kernel.Now())
	if data == nil {
		c.NoResponse.Inc()
		return
	}
	if len(data) == 0 || len(data) > 8 {
		c.NoResponse.Inc()
		return
	}
	c.transmit(id, pid, sender, data)
}

// transmit completes a header+response transfer: checksum computation,
// the in-flight corruption model, and delayed delivery to subscribers and
// observers. Shared by the schedule-table poll path and SendSporadic so
// both draw from the error stream in the same order.
func (c *Cluster) transmit(id FrameID, pid byte, sender string, data []byte) {
	cs := Checksum(c.model, pid, data)
	wire := append([]byte(nil), data...)
	if c.CorruptResponse > 0 && c.errStream.Bool(c.CorruptResponse) {
		idx := c.errStream.Intn(len(wire))
		wire[idx] ^= 1 << uint(c.errStream.Intn(8))
	}
	at := c.kernel.Now() + c.FrameTime(len(wire))
	c.kernel.At(at, func() {
		if !VerifyChecksum(c.model, pid, wire, cs) {
			c.ChecksumErrors.Inc()
			return
		}
		c.FramesOK.Inc()
		f := Frame{ID: id, Data: wire, Sender: sender}
		for _, s := range c.slaves {
			for _, fn := range s.subs[id] {
				fn(c.kernel.Now(), f)
			}
		}
		for _, fn := range c.observers {
			fn(c.kernel.Now(), f)
		}
	})
}

// SendSporadic transmits an unscheduled master-initiated frame: the master
// sends the header for id and supplies the response itself, the LIN 2.x
// sporadic-frame pattern. It is the transmit primitive the netif adapter
// uses to inject gateway-forwarded traffic into the cluster.
func (c *Cluster) SendSporadic(sender string, id FrameID, data []byte) error {
	pid, err := PID(id)
	if err != nil {
		return err
	}
	if len(data) == 0 || len(data) > 8 {
		return fmt.Errorf("%w: %d", ErrDataLength, len(data))
	}
	c.transmit(id, pid, sender, data)
	return nil
}
