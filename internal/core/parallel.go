// Parallel intra-vehicle simulation. A vehicle built with
// ZonalConfig.PerZoneKernels runs each zone on its own sim.Kernel under a
// conservative sim.KernelGroup: intra-zone traffic (CAN arbitration,
// workload matrices, IDS inference, local gateway verdicts) dispatches
// concurrently, and only backbone crossings synchronize, with the
// Ethernet tunnel latency as lookahead. Execution is byte-deterministic
// at any SetParallelism setting — the equivalence property
// TestKernelParSerialParallelEquivalence enforces.
//
// Rules for scenario code driving a parallel vehicle:
//
//   - Schedule domain work on KernelFor(domain), never on Vehicle.Kernel
//     unless the domain shards into zone 0.
//   - Drive time with Vehicle.Run/RunUntil (the group), not the member
//     kernels' own Run methods.
//   - Shared subsystems that are not kernel-local — the SHE, the audit
//     log, Fusion, Keyless — may only be touched from member 0's kernel
//     or between runs; gateway/IDS events reach the audit log through
//     the per-member staging buffers automatically.
//   - Read cross-zone aggregates (zonal totals, group Steps) between
//     runs only.
package core

import (
	"autosec/internal/sim"
)

// backboneHopLatency is the fixed store-and-forward processing latency of
// the zonal backbone switch. Shared-kernel builds give it to the modelled
// ethernet.Switch; per-zone-kernel builds give it to the partitioned
// backbone, whose minimum crossing time (ethernet.TunnelLookahead) then
// bounds the kernel group's lookahead.
const backboneHopLatency = 2 * sim.Microsecond

// standardDomainZone returns the zone index a standard domain shards
// into: powertrain fronts the first zone, infotainment (the exposed
// domain) the last, chassis the middle.
func standardDomainZone(name string, zones int) int {
	switch name {
	case DomainChassis:
		return (zones - 1) / 2
	case DomainInfotainment:
		return zones - 1
	default:
		return 0
	}
}

// KernelFor returns the kernel that owns a domain's events: the owning
// zone's member kernel on a per-zone-kernel build, the vehicle kernel
// otherwise. Scenario code scheduling domain traffic must use it.
func (v *Vehicle) KernelFor(domain string) *sim.Kernel {
	if v.Zonal != nil {
		if z, ok := v.Zonal.ZoneOf(domain); ok {
			return z.Kernel()
		}
	}
	return v.Kernel
}

// Run drives the vehicle until its event queues drain: the kernel group
// on a parallel build, the single kernel otherwise.
func (v *Vehicle) Run() error {
	if v.Group != nil {
		return v.Group.Run()
	}
	return v.Kernel.Run()
}

// RunUntil drives the vehicle to virtual time t (inclusive).
func (v *Vehicle) RunUntil(t sim.Time) error {
	if v.Group != nil {
		return v.Group.RunUntil(t)
	}
	return v.Kernel.RunUntil(t)
}

// SetParallelism sets the worker count of a parallel build's kernel
// group (1 = serial reference execution). No-op on single-kernel builds.
// Any value produces byte-identical simulation results.
func (v *Vehicle) SetParallelism(n int) {
	if v.Group != nil {
		v.Group.SetWorkers(n)
	}
}

// stagedAudit is one audit event waiting in a member's staging buffer
// for the barrier merge.
type stagedAudit struct {
	at  sim.Time
	src string
	msg string
}

// mergeAuditStages drains the per-member staging buffers into the sealed
// audit log in (time, member) order. It runs at every group barrier, on
// the coordinating goroutine, so Append (and the SHE sealing inside it)
// is single-threaded; entries within one member's buffer are already in
// nondecreasing time order because its kernel staged them in dispatch
// order. The merge order depends only on staged content, never on the
// worker count — audit chains are byte-identical at any parallelism.
func (v *Vehicle) mergeAuditStages() {
	idx := v.stageIdx
	for {
		best := -1
		for m := range v.auditStage {
			i := idx[m]
			if i >= len(v.auditStage[m]) {
				continue
			}
			if best == -1 || v.auditStage[m][i].at < v.auditStage[best][idx[best]].at {
				best = m
			}
		}
		if best == -1 {
			break
		}
		e := v.auditStage[best][idx[best]]
		idx[best]++
		v.Audit.Append(e.at, e.src, e.msg)
	}
	for m := range v.auditStage {
		v.auditStage[m] = v.auditStage[m][:0]
		idx[m] = 0
	}
}
