// Package ieee1609 implements an IEEE 1609.2-flavoured security envelope
// for V2X messages: ECDSA P-256 certificates with PSID (application)
// permissions and validity periods, certificate chains rooted in a trust
// anchor, signed messages, certificate revocation lists, and pseudonym
// certificate pools for sender privacy.
//
// This is the paper's Secure Interfaces layer. The structures are
// simplified relative to the ASN.1/OER encodings of the standard (explicit
// certificates only, byte-level encodings of our own design) but the
// security architecture — chain of trust, permission checks, revocation,
// short-lived pseudonyms for anonymity — matches, which is what the
// security/privacy conundrum experiments need.
package ieee1609

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"autosec/internal/sim"
)

// PSID identifies an application class (Provider Service Identifier).
type PSID uint32

// Well-known PSIDs used by the scenarios.
const (
	PSIDBasicSafety   PSID = 0x20 // BSM broadcast
	PSIDMisbehavior   PSID = 0x26 // misbehaviour reporting
	PSIDInfrastructry PSID = 0x83 // RSU infrastructure messages
	PSIDCRL           PSID = 0x100
)

// HashedID8 is the truncated SHA-256 certificate identifier of 1609.2.
type HashedID8 [8]byte

func (h HashedID8) String() string { return fmt.Sprintf("%x", h[:]) }

// Certificate is an explicit 1609.2-style certificate.
type Certificate struct {
	Subject   string
	IssuerID  HashedID8 // zero for self-signed roots
	PSIDs     []PSID
	NotBefore sim.Time
	NotAfter  sim.Time
	// IsCA marks certificate-issuing certificates.
	IsCA bool
	// Pseudonym marks short-lived anonymous certificates: they carry no
	// linkable subject information on the wire.
	Pseudonym bool

	PublicKey *ecdsa.PublicKey
	// Signature over TBS by the issuer.
	SigR, SigS *big.Int

	id       HashedID8
	idCached bool
}

// Errors.
var (
	ErrExpired       = errors.New("ieee1609: certificate outside validity period")
	ErrBadSignature  = errors.New("ieee1609: signature verification failed")
	ErrUnknownIssuer = errors.New("ieee1609: issuer not trusted")
	ErrPSIDDenied    = errors.New("ieee1609: PSID not permitted by certificate")
	ErrNotCA         = errors.New("ieee1609: issuer certificate is not a CA")
	ErrRevoked       = errors.New("ieee1609: certificate revoked")
	ErrPSIDEscalate  = errors.New("ieee1609: certificate claims PSIDs its issuer lacks")
	ErrChainDepth    = errors.New("ieee1609: chain too deep")
)

// tbsBytes is the deterministic To-Be-Signed encoding.
func (c *Certificate) tbsBytes() []byte {
	var b []byte
	b = append(b, []byte(c.Subject)...)
	b = append(b, 0)
	b = append(b, c.IssuerID[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(c.PSIDs)))
	b = append(b, tmp[:4]...)
	for _, p := range c.PSIDs {
		binary.BigEndian.PutUint32(tmp[:4], uint32(p))
		b = append(b, tmp[:4]...)
	}
	binary.BigEndian.PutUint64(tmp[:], uint64(c.NotBefore))
	b = append(b, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(c.NotAfter))
	b = append(b, tmp[:]...)
	flags := byte(0)
	if c.IsCA {
		flags |= 1
	}
	if c.Pseudonym {
		flags |= 2
	}
	b = append(b, flags)
	b = append(b, elliptic.MarshalCompressed(elliptic.P256(), c.PublicKey.X, c.PublicKey.Y)...)
	return b
}

// ID returns the HashedID8 (low 8 bytes of SHA-256 over the TBS encoding
// plus signature, per the spirit of 1609.2).
func (c *Certificate) ID() HashedID8 {
	if c.idCached {
		return c.id
	}
	h := sha256.New()
	h.Write(c.tbsBytes())
	if c.SigR != nil {
		h.Write(c.SigR.Bytes())
		h.Write(c.SigS.Bytes())
	}
	sum := h.Sum(nil)
	copy(c.id[:], sum[len(sum)-8:])
	c.idCached = true
	return c.id
}

// ValidAt reports whether t falls inside the validity period.
func (c *Certificate) ValidAt(t sim.Time) bool {
	return t >= c.NotBefore && t <= c.NotAfter
}

// Permits reports whether the certificate grants the PSID.
func (c *Certificate) Permits(p PSID) bool {
	for _, q := range c.PSIDs {
		if q == p {
			return true
		}
	}
	return false
}

// verifySignedBy checks c's signature under issuer's public key.
func (c *Certificate) verifySignedBy(issuer *Certificate) error {
	if c.SigR == nil || c.SigS == nil {
		return ErrBadSignature
	}
	digest := sha256.Sum256(c.tbsBytes())
	if !ecdsa.Verify(issuer.PublicKey, digest[:], c.SigR, c.SigS) {
		return ErrBadSignature
	}
	return nil
}

// Authority is a certificate authority: a keypair plus its own certificate.
type Authority struct {
	Cert *Certificate
	priv *ecdsa.PrivateKey
}

// NewRootAuthority creates a self-signed root CA valid over [notBefore,
// notAfter] with unrestricted issuing power for the given PSIDs.
func NewRootAuthority(subject string, psids []PSID, notBefore, notAfter sim.Time) (*Authority, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert := &Certificate{
		Subject:   subject,
		PSIDs:     psids,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		IsCA:      true,
		PublicKey: &priv.PublicKey,
	}
	if err := signCert(cert, priv); err != nil {
		return nil, err
	}
	return &Authority{Cert: cert, priv: priv}, nil
}

func signCert(c *Certificate, priv *ecdsa.PrivateKey) error {
	digest := sha256.Sum256(c.tbsBytes())
	r, s, err := ecdsa.Sign(rand.Reader, priv, digest[:])
	if err != nil {
		return err
	}
	c.SigR, c.SigS = r, s
	c.idCached = false
	return nil
}

// IssueCA issues a subordinate CA certificate and returns its Authority.
func (a *Authority) IssueCA(subject string, psids []PSID, notBefore, notAfter sim.Time) (*Authority, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert := &Certificate{
		Subject:   subject,
		IssuerID:  a.Cert.ID(),
		PSIDs:     psids,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		IsCA:      true,
		PublicKey: &priv.PublicKey,
	}
	if err := signCert(cert, a.priv); err != nil {
		return nil, err
	}
	return &Authority{Cert: cert, priv: priv}, nil
}

// Issue issues an end-entity certificate and returns it with its private
// key holder (a Credential).
func (a *Authority) Issue(subject string, psids []PSID, notBefore, notAfter sim.Time, pseudonym bool) (*Credential, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert := &Certificate{
		Subject:   subject,
		IssuerID:  a.Cert.ID(),
		PSIDs:     psids,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Pseudonym: pseudonym,
		PublicKey: &priv.PublicKey,
	}
	if err := signCert(cert, a.priv); err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, priv: priv}, nil
}

// Credential is an end-entity certificate with its private key — what a
// vehicle's on-board unit holds.
type Credential struct {
	Cert *Certificate
	priv *ecdsa.PrivateKey
}

// Store is a verifier's certificate state: trust anchors, learned
// certificates and the current CRL.
type Store struct {
	roots map[HashedID8]*Certificate
	known map[HashedID8]*Certificate
	crl   *CRL
	// MaxChainDepth bounds chain walks (default 4).
	MaxChainDepth int
}

// NewStore creates a store trusting the given root certificates.
func NewStore(roots ...*Certificate) *Store {
	s := &Store{
		roots:         make(map[HashedID8]*Certificate),
		known:         make(map[HashedID8]*Certificate),
		MaxChainDepth: 4,
	}
	for _, r := range roots {
		s.roots[r.ID()] = r
	}
	return s
}

// AddCert caches an intermediate or end-entity certificate for chain
// building (e.g. received alongside a message).
func (s *Store) AddCert(c *Certificate) { s.known[c.ID()] = c }

// SetCRL installs a revocation list after verifying its signature against
// the store's trust anchors.
func (s *Store) SetCRL(crl *CRL, at sim.Time) error {
	if err := s.VerifyChain(crl.Signer, at); err != nil {
		return fmt.Errorf("ieee1609: CRL signer: %w", err)
	}
	if !crl.Signer.Permits(PSIDCRL) {
		return ErrPSIDDenied
	}
	if err := crl.verify(); err != nil {
		return err
	}
	if s.crl != nil && crl.Sequence <= s.crl.Sequence {
		return fmt.Errorf("ieee1609: stale CRL sequence %d", crl.Sequence)
	}
	s.crl = crl
	return nil
}

// Revoked reports whether the certificate appears on the current CRL.
func (s *Store) Revoked(id HashedID8) bool {
	if s.crl == nil {
		return false
	}
	return s.crl.Contains(id)
}

// VerifyChain validates cert at time at: signature chain to a trusted
// root, validity windows, CA flags, PSID non-escalation and revocation.
func (s *Store) VerifyChain(cert *Certificate, at sim.Time) error {
	depth := 0
	c := cert
	for {
		if depth > s.MaxChainDepth {
			return ErrChainDepth
		}
		if !c.ValidAt(at) {
			return fmt.Errorf("%w: %s", ErrExpired, c.Subject)
		}
		if s.Revoked(c.ID()) {
			return fmt.Errorf("%w: %s", ErrRevoked, c.ID())
		}
		if root, ok := s.roots[c.ID()]; ok && root == c {
			return nil // reached a trust anchor
		}
		var zero HashedID8
		if c.IssuerID == zero {
			// Self-signed but not a configured anchor.
			return ErrUnknownIssuer
		}
		issuer, ok := s.roots[c.IssuerID]
		if !ok {
			issuer, ok = s.known[c.IssuerID]
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownIssuer, c.IssuerID)
		}
		if !issuer.IsCA {
			return ErrNotCA
		}
		for _, p := range c.PSIDs {
			if !issuer.Permits(p) {
				return fmt.Errorf("%w: %#x", ErrPSIDEscalate, p)
			}
		}
		if err := c.verifySignedBy(issuer); err != nil {
			return err
		}
		c = issuer
		depth++
	}
}
