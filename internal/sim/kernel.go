// Package sim provides the discrete-event simulation kernel that underlies
// every timed subsystem in autosec: in-vehicle networks, ECU schedulers,
// the V2X field model, OTA campaigns and drive cycles.
//
// The kernel is deliberately minimal: a virtual clock in nanoseconds, an
// event queue with deterministic tie-breaking, and named deterministic
// random streams. Nothing in the library reads the wall clock; two runs
// with the same scenario seed produce identical traces.
//
// The hot path is allocation-free in steady state: the queue is a concrete
// 4-ary min-heap over event nodes (no interface boxing), and dispatched or
// cancelled nodes return to a kernel-owned free list, so a
// schedule→dispatch→recycle cycle touches no allocator once the heap and
// free list are warm. Event handles carry a generation counter, so a
// handle to an event whose node has since been recycled is inert: Cancel
// on it is a no-op and can never affect the node's new occupant.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// eventNode is the kernel-owned storage for one scheduled callback. Nodes
// are pooled: after dispatch (or after a cancelled node is reclaimed from
// the queue) the node's generation is bumped and it returns to the free
// list for the next schedule.
type eventNode struct {
	when   Time
	seq    uint64 // tie-break: FIFO among equal deadlines
	fn     func()
	gen    uint64 // incremented on recycle; invalidates outstanding handles
	cancel bool
}

// Event is a handle to a scheduled callback. The callback runs exactly
// once, at its deadline, unless cancelled first. The zero Event is valid
// and refers to nothing.
//
// Handles are values, not references: once the event has run (or a
// cancelled event's slot has been reclaimed) the handle goes stale, and a
// stale handle is inert — Cancel through it is a no-op and Cancelled
// reports false.
type Event struct {
	node *eventNode
	gen  uint64
	when Time
}

// When reports the virtual time the event was scheduled for.
func (e Event) When() Time { return e.when }

// Cancelled reports whether the event is currently cancelled and still
// queued. Once the kernel reclaims the node (the event ran, or a
// cancelled slot was recycled) the handle is stale and Cancelled reports
// false.
func (e Event) Cancelled() bool {
	return e.node != nil && e.node.gen == e.gen && e.node.cancel
}

// ErrHalted is returned by Run variants when Halt stopped the simulation.
var ErrHalted = errors.New("sim: halted")

// TraceSink receives one callback per dispatched event. It is the
// kernel's observability hook: internal/obs.Tracer implements it, but the
// kernel depends only on this interface so sim stays import-free.
// Implementations must not schedule or cancel events from the callback.
type TraceSink interface {
	// KernelDispatch is called as each event fires, with the event's
	// deadline (the new kernel time) and the post-dispatch pending count.
	KernelDispatch(at Time, pending int)
}

// defaultTraceSink, when non-nil, is attached to every kernel NewKernel
// creates. It exists for tooling (benchreport -trace) that wants to
// observe kernels constructed deep inside experiment code it does not
// control; library code must use SetTraceSink on its own kernel instead,
// and replicated runs must leave this unset (it would funnel every seed's
// events into one sink).
var defaultTraceSink TraceSink

// SetDefaultTraceSink installs (or, with nil, removes) the process-wide
// sink picked up by subsequent NewKernel calls. Not safe for concurrent
// use with NewKernel; intended for single-seed CLI tooling only.
func SetDefaultTraceSink(s TraceSink) { defaultTraceSink = s }

// Kernel is a discrete-event simulator. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     Time
	queue   []*eventNode // 4-ary min-heap ordered by (when, seq)
	free    []*eventNode // recycled nodes ready for the next schedule
	seq     uint64
	pending int // live (non-cancelled) queued events, maintained incrementally
	halted  bool
	stepped uint64
	seed    uint64
	streams map[string]*Stream
	trace   TraceSink // nil when tracing is off (the common case)
}

// NewKernel returns a kernel at time zero whose named random streams are
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{seed: seed, streams: make(map[string]*Stream), trace: defaultTraceSink}
}

// Reset rewinds the kernel to its post-NewKernel state under a new seed
// without discarding the node pool: queued events are recycled into the
// free list, the clock returns to zero, and every named stream is
// re-derived in place (subsystems cache *Stream pointers, so the stream
// objects must survive). After Reset the kernel is indistinguishable —
// event sequencing included — from NewKernel(seed), except that the heap
// and free list stay warm.
func (k *Kernel) Reset(seed uint64) {
	for _, n := range k.queue {
		k.recycle(n)
	}
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.pending = 0
	k.halted = false
	k.stepped = 0
	k.seed = seed
	for name, s := range k.streams {
		s.Reseed(seed, name)
	}
	k.trace = defaultTraceSink
}

// SetTraceSink attaches (or, with nil, detaches) a per-dispatch trace
// sink. The disabled path is a single nil check in step; see
// TestKernelSteadyStateAllocs for the zero-cost guarantee.
func (k *Kernel) SetTraceSink(s TraceSink) { k.trace = s }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Steps reports how many events have been dispatched so far.
func (k *Kernel) Steps() uint64 { return k.stepped }

// Pending reports the number of queued (non-cancelled) events. O(1): the
// count is maintained on schedule, cancel and dispatch.
func (k *Kernel) Pending() int { return k.pending }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug.
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	n := k.alloc()
	n.when = t
	n.seq = k.seq
	n.fn = fn
	n.cancel = false
	k.seq++
	k.push(n)
	k.pending++
	return Event{node: n, gen: n.gen, when: t}
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn to run every period, starting at start, until the
// returned stop function is called. fn observes the kernel time.
func (k *Kernel) Every(start Time, period Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var tick func()
	var ev Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		ev = k.At(k.now+period, tick)
	}
	ev = k.At(start, tick)
	return func() {
		stopped = true
		k.Cancel(ev)
	}
}

// Cancel prevents a scheduled event from running. Safe to call on the
// zero handle, on handles whose event already ran, and on handles that
// went stale after their node was recycled (all no-ops).
func (k *Kernel) Cancel(e Event) {
	n := e.node
	if n == nil || n.gen != e.gen || n.cancel {
		return
	}
	n.cancel = true
	k.pending--
}

// Halt stops the current Run/RunUntil after the current event returns.
func (k *Kernel) Halt() { k.halted = true }

// alloc takes a node from the free list, or mints one when the pool is
// dry (cold start, or queue growth beyond any previous depth).
func (k *Kernel) alloc() *eventNode {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &eventNode{}
}

// recycle invalidates outstanding handles to n and returns it to the pool.
func (k *Kernel) recycle(n *eventNode) {
	n.fn = nil // release the callback's captures
	n.gen++
	k.free = append(k.free, n)
}

// less orders nodes by (when, seq): earliest deadline first, FIFO among
// equal deadlines.
func less(a, b *eventNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push inserts n into the 4-ary heap.
func (k *Kernel) push(n *eventNode) {
	k.queue = append(k.queue, n)
	q := k.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the heap minimum. The queue must be non-empty.
func (k *Kernel) pop() *eventNode {
	q := k.queue
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	k.queue = q
	// Sift the displaced tail node down among up to four children.
	i := 0
	for {
		c := 4*i + 1
		if c >= len(q) {
			break
		}
		end := c + 4
		if end > len(q) {
			end = len(q)
		}
		best := c
		for j := c + 1; j < end; j++ {
			if less(q[j], q[best]) {
				best = j
			}
		}
		if !less(q[best], q[i]) {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return top
}

// step dispatches the next event. Reports false when the queue is empty.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		n := k.pop()
		if n.cancel {
			k.recycle(n)
			continue
		}
		k.now = n.when
		k.stepped++
		k.pending--
		if k.trace != nil {
			k.trace.KernelDispatch(n.when, k.pending)
		}
		fn := n.fn
		k.recycle(n)
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue drains or Halt is called.
// It returns ErrHalted if halted, nil otherwise.
func (k *Kernel) Run() error {
	k.halted = false
	for !k.halted {
		if !k.step() {
			return nil
		}
	}
	return ErrHalted
}

// RunUntil dispatches events with deadline ≤ t, then sets the clock to t.
// It returns ErrHalted if halted early, nil otherwise.
func (k *Kernel) RunUntil(t Time) error {
	k.halted = false
	for !k.halted {
		next := k.peek()
		if next == nil || next.when > t {
			break
		}
		k.step()
	}
	if k.halted {
		return ErrHalted
	}
	if t > k.now {
		k.now = t
	}
	return nil
}

// DispatchBefore dispatches every pending event with deadline strictly
// before limit, in (when, seq) order, leaving the clock at the last
// dispatched deadline — it never jumps the clock forward to limit. This
// is the window primitive KernelGroup's conservative rounds are built
// on: the group computes a safe horizon and each member drains exactly
// the events below it. Reports false when Halt stopped the dispatch
// before the window was drained.
func (k *Kernel) DispatchBefore(limit Time) bool {
	k.halted = false
	for {
		n := k.peek()
		if n == nil || n.when >= limit {
			return true
		}
		k.step()
		if k.halted {
			return false
		}
	}
}

// peek returns the earliest non-cancelled node without dispatching it,
// reclaiming any cancelled nodes it skips over.
func (k *Kernel) peek() *eventNode {
	for len(k.queue) > 0 {
		n := k.queue[0]
		if !n.cancel {
			return n
		}
		k.recycle(k.pop())
	}
	return nil
}

// NextEventTime reports the deadline of the earliest pending event, or
// Never when the queue is empty.
func (k *Kernel) NextEventTime() Time {
	e := k.peek()
	if e == nil {
		return Never
	}
	return e.when
}

// Stream returns the named deterministic random stream, creating it on
// first use. Distinct names yield statistically independent streams, and
// the same (seed, name) pair always yields the same sequence, so adding a
// new consumer never perturbs existing ones.
func (k *Kernel) Stream(name string) *Stream {
	s, ok := k.streams[name]
	if !ok {
		s = NewStream(k.seed, name)
		k.streams[name] = s
	}
	return s
}
