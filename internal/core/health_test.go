package core

import (
	"strings"
	"testing"

	"autosec/internal/reliability"
	"autosec/internal/sim"
)

func TestHealthMonitoringFeedsAuditLog(t *testing.T) {
	v := newVehicle(t, Config{})
	mon := v.EnableHealthMonitoring(5) // 5 operating hours per virtual minute
	if err := mon.Add(&reliability.Component{Name: "fuel-pump", ShapeK: 3, ScaleHours: 500}); err != nil {
		t.Fatal(err)
	}
	stop := mon.Start()
	_ = v.Kernel.RunUntil(4 * sim.Hour) // 1200 operating hours ≈ 2.4 lives
	stop()

	if len(mon.Failures) == 0 {
		t.Fatal("component never failed after 2.4 characteristic lives")
	}
	warned, total := mon.WarnedBeforeFailure()
	if warned != total {
		t.Fatalf("wear-out failure unwarned: %d/%d", warned, total)
	}
	// Both events landed in the audit log, chain intact.
	var sawWarning, sawFailure bool
	for _, e := range v.Audit.Entries() {
		if e.Source != "health" {
			continue
		}
		if strings.HasPrefix(e.Event, "warning") {
			sawWarning = true
		}
		if strings.HasPrefix(e.Event, "failure") {
			sawFailure = true
		}
	}
	if !sawWarning || !sawFailure {
		t.Fatalf("audit log missing health events (warning=%v failure=%v)", sawWarning, sawFailure)
	}
	if err := v.Audit.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Arch.Get(SecureProcessing, "health-monitor"); err != nil {
		t.Fatal(err)
	}
}
