package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace exports the retained events as Chrome trace_event JSON
// (the "JSON Array Format"), loadable in chrome://tracing and Perfetto.
//
// Mapping: pid is always 1 (one simulation), tid is the subsystem —
// each subsystem renders as its own named track (an "M" thread_name
// metadata event per subsystem). Spans become "X" complete events,
// instants become "i" thread-scoped events. Timestamps are sim-time
// microseconds with nanosecond precision kept as fractional digits, so
// the export is a pure function of the event ring: same events, same
// bytes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	events := t.Events()

	// One metadata record per subsystem, in first-appearance order, so
	// track names are stable and tracks sort by first activity.
	seen := map[Label]bool{}
	first := true
	writeRecord := func(s string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(s)
		return err
	}
	for _, e := range events {
		if seen[e.Sub] {
			continue
		}
		seen[e.Sub] = true
		rec := fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			uint32(e.Sub), quoteJSON(t.LabelString(e.Sub)))
		if err := writeRecord(rec); err != nil {
			return err
		}
	}

	for _, e := range events {
		name := t.LabelString(e.Name)
		cat := t.LabelString(e.Sub)
		args := fmt.Sprintf(`{"arg1":%d,"arg2":%d`, e.Arg1, e.Arg2)
		if e.Str != 0 {
			args += `,"str":` + quoteJSON(t.LabelString(e.Str))
		}
		args += "}"
		var rec string
		switch e.Kind {
		case Span:
			rec = fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":%s}`,
				quoteJSON(name), quoteJSON(cat), micros(int64(e.At)), micros(int64(e.Dur)), uint32(e.Sub), args)
		default:
			rec = fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":%s}`,
				quoteJSON(name), quoteJSON(cat), micros(int64(e.At)), uint32(e.Sub), args)
		}
		if err := writeRecord(rec); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTimeline exports the retained events as a plain-text timeline, one
// line per event, ordered as emitted:
//
//	+12.345678ms  gateway  deny:chassis-writes  str=HU arg1=0x300 arg2=0
//	+12.500000ms  can      tx                   str=powertrain arg1=0x100 arg2=125 dur=125µs
func (t *Tracer) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		ts := fmt.Sprintf("+%sms", millis(int64(e.At)))
		line := fmt.Sprintf("%-16s %-9s %-24s arg1=%d arg2=%d", ts,
			t.LabelString(e.Sub), t.LabelString(e.Name), e.Arg1, e.Arg2)
		if e.Str != 0 {
			line += " str=" + t.LabelString(e.Str)
		}
		if e.Kind == Span {
			line += fmt.Sprintf(" dur=%sµs", micros(int64(e.Dur)))
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// micros renders ns as microseconds with exactly three fractional digits
// ("12.345"): integer arithmetic only, so formatting is deterministic and
// float-rounding-free.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// millis renders ns as milliseconds with six fractional digits.
func millis(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%06d", neg, ns/1_000_000, ns%1_000_000)
}

// quoteJSON renders s as a JSON string literal.
func quoteJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}
