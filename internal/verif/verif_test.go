package verif

import (
	"errors"
	"testing"
	"testing/quick"
)

func space(t *testing.T, opts ...int) *Space {
	t.Helper()
	var fs []Feature
	for i, o := range opts {
		fs = append(fs, Feature{Name: string(rune('a' + i)), Options: o})
	}
	s, err := NewSpace(fs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(Feature{Name: "x", Options: 0}); !errors.Is(err, ErrBadFeature) {
		t.Fatalf("err=%v", err)
	}
}

func TestTotalConfigs(t *testing.T) {
	s := space(t, 2, 3, 4)
	if got := s.TotalConfigs(); got != 24 {
		t.Fatalf("total=%v", got)
	}
}

func TestPairCount(t *testing.T) {
	s := space(t, 2, 3)
	if got := s.PairCount(); got != 6 {
		t.Fatalf("pairs=%v", got)
	}
	s = space(t, 2, 3, 4)
	// 2*3 + 2*4 + 3*4 = 26.
	if got := s.PairCount(); got != 26 {
		t.Fatalf("pairs=%v", got)
	}
}

func TestGreedyPairwiseCoversAllPairs(t *testing.T) {
	s := space(t, 3, 3, 3, 3)
	rows := s.GreedyPairwise(1)
	if !s.CoversAllPairs(rows) {
		t.Fatal("array does not cover all pairs")
	}
	// Exhaustive would be 81; the array must beat it comfortably and can
	// never beat the 9-row lower bound.
	if len(rows) >= 81 || len(rows) < 9 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestGreedyPairwiseMassivelySmallerThanExhaustive(t *testing.T) {
	s := space(t, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2) // 2^10 = 1024 configs
	rows := s.GreedyPairwise(1)
	if !s.CoversAllPairs(rows) {
		t.Fatal("incomplete coverage")
	}
	if len(rows) > 30 {
		t.Fatalf("pairwise took %d rows for 10 binary features", len(rows))
	}
}

func TestGreedyPairwiseDegenerate(t *testing.T) {
	var s Space
	if rows := s.GreedyPairwise(1); rows != nil {
		t.Fatalf("empty space rows=%v", rows)
	}
	one := space(t, 4)
	rows := one.GreedyPairwise(1)
	if len(rows) != 4 {
		t.Fatalf("single-feature rows=%d", len(rows))
	}
	if !one.CoversAllPairs(rows) {
		t.Fatal("single feature coverage")
	}
}

// Property: coverage holds for arbitrary small spaces and seeds.
func TestGreedyPairwiseProperty(t *testing.T) {
	f := func(o1, o2, o3 uint8, seed uint64) bool {
		fs := []Feature{
			{Name: "a", Options: int(o1%4) + 1},
			{Name: "b", Options: int(o2%4) + 1},
			{Name: "c", Options: int(o3%4) + 1},
		}
		s := &Space{Features: fs}
		rows := s.GreedyPairwise(seed)
		return s.CoversAllPairs(rows) && float64(len(rows)) <= s.TotalConfigs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversAllPairsDetectsGaps(t *testing.T) {
	s := space(t, 2, 2)
	incomplete := []Config{{0, 0}, {1, 1}}
	if s.CoversAllPairs(incomplete) {
		t.Fatal("gap not detected")
	}
	if s.CoversAllPairs([]Config{{0}}) {
		t.Fatal("malformed row accepted")
	}
}

func TestAssessReservedOverhead(t *testing.T) {
	s, err := NewSpace(
		Feature{Name: "mac-bits", Options: 3},
		Feature{Name: "gateway-mode", Options: 3},
		Feature{Name: "ids-set", Options: 2},
		Feature{Name: "future-crypto", Options: 3, Reserved: true},
		Feature{Name: "future-radio", Options: 2, Reserved: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Assess(1)
	if r.Features != 5 || r.TotalConfigs != 108 {
		t.Fatalf("report=%+v", r)
	}
	if r.PairwiseRows < r.LowerBound {
		t.Fatalf("rows %d below lower bound %d", r.PairwiseRows, r.LowerBound)
	}
	if r.ReservedOverhead < 0 {
		t.Fatalf("reserved overhead %.3f negative", r.ReservedOverhead)
	}
	if r.String() == "" {
		t.Fatal("empty report")
	}
}

func TestGrowthCurveMonotone(t *testing.T) {
	fs := []Feature{
		{Name: "a", Options: 3}, {Name: "b", Options: 3},
		{Name: "c", Options: 3}, {Name: "d", Options: 3},
		{Name: "e", Options: 3},
	}
	curve := GrowthCurve(fs, 1)
	if len(curve) != 5 {
		t.Fatalf("curve length %d", len(curve))
	}
	// Exhaustive cost grows geometrically; pairwise cost grows far slower.
	for i := 1; i < len(curve); i++ {
		if curve[i].TotalConfigs <= curve[i-1].TotalConfigs {
			t.Fatal("exhaustive not growing")
		}
	}
	last := curve[len(curve)-1]
	if float64(last.PairwiseRows) >= last.TotalConfigs {
		t.Fatalf("pairwise %d not below exhaustive %v", last.PairwiseRows, last.TotalConfigs)
	}
}

func TestWithoutReserved(t *testing.T) {
	s, _ := NewSpace(
		Feature{Name: "a", Options: 2},
		Feature{Name: "r", Options: 2, Reserved: true},
	)
	base := s.WithoutReserved()
	if len(base.Features) != 1 || base.Features[0].Name != "a" {
		t.Fatalf("base=%+v", base.Features)
	}
}

func TestSortedByOptions(t *testing.T) {
	fs := []Feature{{Name: "a", Options: 2}, {Name: "b", Options: 5}, {Name: "c", Options: 3}}
	sorted := SortedByOptions(fs)
	if sorted[0].Name != "b" || sorted[2].Name != "a" {
		t.Fatalf("sorted=%v", sorted)
	}
	if fs[0].Name != "a" {
		t.Fatal("input mutated")
	}
}

func TestInfeasible(t *testing.T) {
	r := CostReport{TotalConfigs: 1e12}
	if !r.Infeasible(1000, 365) {
		t.Fatal("1e12 configs feasible at 1000/day?")
	}
	small := CostReport{TotalConfigs: 100}
	if small.Infeasible(1000, 1) {
		t.Fatal("100 configs infeasible at 1000/day?")
	}
}
