package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// driveScenario is a compact per-vehicle run exercising the subsystems a
// fleet scenario touches — rules, cross-domain traffic, a quarantine —
// and returns a fingerprint that any cross-worker nondeterminism or
// pool-state leak would perturb.
func driveScenario(idx int, v *core.Vehicle) (string, error) {
	k := v.Kernel
	rules := []*gateway.Rule{{
		Name: "open", From: core.DomainInfotainment, To: []string{core.DomainPowertrain},
		IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow,
	}}
	if v.Zonal != nil {
		v.Zonal.SetRules(rules)
	} else {
		v.Gateway.SetRules(rules)
	}
	c := can.NewController("src")
	v.Buses[core.DomainInfotainment].Attach(c)
	st := k.Stream("drive-test")
	k.Every(st.Duration(100*sim.Microsecond, sim.Millisecond), 500*sim.Microsecond, func() {
		_ = c.Send(can.Frame{ID: can.ID(0x100 + idx%8), Data: []byte{byte(idx)}}, nil)
	})
	if idx%7 == 3 {
		k.At(2*sim.Millisecond, func() {
			if v.Zonal != nil {
				_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
			} else {
				_ = v.Gateway.Quarantine(core.DomainInfotainment)
			}
		})
	}
	if err := k.RunUntil(4 * sim.Millisecond); err != nil {
		return "", err
	}
	backbone := int64(0)
	if v.Zonal != nil {
		backbone = v.Zonal.BackboneFrames.Value
	}
	return fmt.Sprintf("idx=%d steps=%d audit=%d backbone=%d",
		idx, k.Steps(), v.Audit.Len(), backbone), nil
}

// TestDriveParInvariance is the fleet-scale determinism gate: the same
// population driven at one worker and at eight workers must produce
// byte-identical per-vehicle results. CI's race job runs this under
// -race, so cross-shard data races surface here too.
func TestDriveParInvariance(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"central", core.Config{VIN: "PAR-C", Seed: 11}},
		{"zonal", core.Config{VIN: "PAR-Z", Seed: 11, Zonal: &core.ZonalConfig{
			Zones:        3,
			LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
		}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 96
			serial, err := Drive(context.Background(),
				Driver{Cfg: tc.cfg, N: n, Workers: 1}, driveScenario)
			if err != nil {
				t.Fatalf("par=1: %v", err)
			}
			par, err := Drive(context.Background(),
				Driver{Cfg: tc.cfg, N: n, Workers: 8}, driveScenario)
			if err != nil {
				t.Fatalf("par=8: %v", err)
			}
			a := strings.Join(serial, "\n")
			b := strings.Join(par, "\n")
			if a != b {
				t.Fatalf("par=1 and par=8 diverged:\n--- par=1\n%s\n--- par=8\n%s", a, b)
			}
			// The scenario must actually vary per vehicle, or the
			// invariance assertion is vacuous.
			if serial[0] == serial[1] {
				t.Fatalf("vehicles 0 and 1 identical — per-index seeds not reaching the scenario: %q", serial[0])
			}
		})
	}
}

// TestDriveErrorLowestIndex pins the error contract: with a single
// worker the drive aborts at the first failing vehicle and reports it;
// with several workers the error is still one of the failures (shards
// that see the abort flag may stop before reaching their own).
func TestDriveErrorLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	failFrom5 := func(idx int, v *core.Vehicle) (int, error) {
		if idx >= 5 {
			return 0, boom
		}
		return idx, nil
	}
	_, err := Drive(context.Background(),
		Driver{Cfg: core.Config{VIN: "ERR"}, N: 40, Workers: 1}, failFrom5)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	if want := "fleet: vehicle 5:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("want error for %q, got %v", want, err)
	}
	_, err = Drive(context.Background(),
		Driver{Cfg: core.Config{VIN: "ERR"}, N: 40, Workers: 4}, failFrom5)
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "fleet: vehicle ") {
		t.Fatalf("want a per-vehicle wrapped boom, got %v", err)
	}
}

func TestDriveContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Drive(ctx, Driver{Cfg: core.Config{VIN: "CTX"}, N: 8},
		func(idx int, v *core.Vehicle) (int, error) { return idx, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDriveRejectsNonPositivePopulation(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := Drive(context.Background(), Driver{Cfg: core.Config{VIN: "N"}, N: n},
			func(idx int, v *core.Vehicle) (int, error) { return idx, nil }); err == nil {
			t.Fatalf("N=%d must be rejected", n)
		}
	}
}

// TestVehicleSeedDecorrelated: per-index seeds must be distinct and must
// not collapse onto the base seed — the mapping is what keeps vehicle
// populations statistically independent regardless of sharding.
func TestVehicleSeedDecorrelated(t *testing.T) {
	const base = 42
	seen := map[uint64]int{base: -1}
	for idx := 0; idx < 10_000; idx++ {
		s := VehicleSeed(base, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: idx %d and %d both map to %#x", prev, idx, s)
		}
		seen[s] = idx
	}
	if VehicleSeed(1, 0) == VehicleSeed(2, 0) {
		t.Fatal("base seed not reaching the derived seeds")
	}
}

// TestFleetSteadyStateAllocs is the pooled-lifecycle alloc gate wired
// into CI's bench-smoke job: once a pooled vehicle reaches steady state,
// the simulation step loop (periodic send, gateway forward, kernel
// dispatch) must allocate nothing. Allocation creep here multiplies by
// fleet size × steps, so it is pinned at exactly zero like the kernel,
// gateway and zonal gates.
func TestFleetSteadyStateAllocs(t *testing.T) {
	pool := core.NewVehiclePool(core.Config{VIN: "ALLOC", Seed: 9})
	v, err := pool.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	// Allowed cross-domain flow avoiding the IDS tap (powertrain) and the
	// audit log (denials only), so steady state has no append-only sinks.
	v.Gateway.SetRules([]*gateway.Rule{{
		Name: "st", From: core.DomainChassis, To: []string{core.DomainInfotainment},
		IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow,
	}})
	c := can.NewController("tick")
	v.Buses[core.DomainChassis].Attach(c)
	data := []byte{0x01, 0x02}
	k := v.Kernel
	// The period must exceed the frame time (~120µs at 500kbps, twice —
	// source bus then forwarded hop) or the TX queue grows forever and the
	// ring reallocates; a sustainable rate is part of steady state.
	k.Every(0, sim.Millisecond, func() {
		_ = c.Send(can.Frame{ID: 0x123, Data: data}, nil)
	})

	// Warm-up grows every backing array (event free list, bus queues,
	// payload recycling) past anything the measured windows reach.
	until := sim.Time(20 * sim.Millisecond)
	if err := k.RunUntil(until); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		until += sim.Time(2 * sim.Millisecond)
		_ = k.RunUntil(until)
	}); allocs != 0 {
		t.Fatalf("steady-state allocs per run window = %v, want 0", allocs)
	}
	pool.Release(v)
}
