package doip

import (
	"bytes"
	"testing"

	"autosec/internal/ethernet"
	"autosec/internal/sim"
)

// rig: a switch with the DoIP entity on the diagnostics VLAN and a tester
// port; optionally an attacker on another VLAN.
type rig struct {
	k      *sim.Kernel
	sw     *ethernet.Switch
	entity *Entity
	tester *Tester
}

const (
	vlanDiag = 100
	vlanIVI  = 200
)

func newRig(t *testing.T, auth func(uint16, []byte) bool) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	sw := ethernet.NewSwitch(k, "sw0", 5*sim.Microsecond)
	entityHost := ethernet.NewHost("doip-edge", ethernet.LocalMAC(1))
	testerHost := ethernet.NewHost("tester", ethernet.LocalMAC(2))
	sw.Connect(entityHost, vlanDiag)
	sw.Connect(testerHost, vlanDiag)

	e := NewEntity(entityHost, "WAUTOSEC000000042", 0x0010)
	e.Auth = auth
	e.RegisterECU(0x0021, func(req []byte) []byte {
		// A trivial UDS echo ECU: TesterPresent -> positive response.
		if len(req) == 2 && req[0] == 0x3E {
			return []byte{0x7E, req[1]}
		}
		return []byte{0x7F, req[0], 0x11}
	})
	return &rig{k: k, sw: sw, entity: e, tester: NewTester(testerHost, 0x0E00)}
}

func (r *rig) discover(t *testing.T) {
	t.Helper()
	var vin string
	r.tester.OnIdent(func(v string, logical uint16) { vin = v })
	if err := r.tester.Discover(); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if vin != "WAUTOSEC000000042" {
		t.Fatalf("discovered VIN %q", vin)
	}
}

func TestDiscoveryAndDiagRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	r.discover(t)

	var actCode byte = 0xFF
	r.tester.OnActivation(func(code byte) { actCode = code })
	if err := r.tester.Activate(nil); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if actCode != ActSuccess {
		t.Fatalf("activation code %#x", actCode)
	}

	var resp []byte
	r.tester.OnDiagResponse(func(b []byte) { resp = b })
	if err := r.tester.Diag(0x0021, []byte{0x3E, 0x00}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if !bytes.Equal(resp, []byte{0x7E, 0x00}) {
		t.Fatalf("diag response %x", resp)
	}
	if r.entity.DiagForwarded.Value != 1 {
		t.Fatalf("forwarded=%d", r.entity.DiagForwarded.Value)
	}
}

func TestDiagWithoutActivationNacked(t *testing.T) {
	r := newRig(t, nil)
	r.discover(t)
	var nack byte
	r.tester.OnNack(func(code byte) { nack = code })
	if err := r.tester.Diag(0x0021, []byte{0x3E, 0x00}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if nack != NackRoutingInactive {
		t.Fatalf("nack=%#x (%s)", nack, NackName(nack))
	}
	if r.entity.DiagNacked.Value != 1 {
		t.Fatalf("nacked=%d", r.entity.DiagNacked.Value)
	}
}

func TestUnknownTargetNacked(t *testing.T) {
	r := newRig(t, nil)
	r.discover(t)
	_ = r.tester.Activate(nil)
	_ = r.k.Run()
	var nack byte
	r.tester.OnNack(func(code byte) { nack = code })
	_ = r.tester.Diag(0x0999, []byte{0x3E, 0x00})
	_ = r.k.Run()
	if nack != NackUnknownTarget {
		t.Fatalf("nack=%#x", nack)
	}
}

func TestAuthenticatedActivation(t *testing.T) {
	secret := []byte("doip-activation-secret")
	r := newRig(t, func(source uint16, key []byte) bool {
		return bytes.Equal(key, secret)
	})
	r.discover(t)

	var codes []byte
	r.tester.OnActivation(func(code byte) { codes = append(codes, code) })
	// Wrong key denied.
	_ = r.tester.Activate([]byte("guess"))
	_ = r.k.Run()
	// Correct key accepted.
	_ = r.tester.Activate(secret)
	_ = r.k.Run()
	if len(codes) != 2 || codes[0] != ActDeniedAuthRequired || codes[1] != ActSuccess {
		t.Fatalf("codes=%v", codes)
	}
	if r.entity.ActDenied.Value != 1 || r.entity.Activations.Value != 1 {
		t.Fatalf("denied=%d activated=%d", r.entity.ActDenied.Value, r.entity.Activations.Value)
	}
	// And diagnostics now work.
	var resp []byte
	r.tester.OnDiagResponse(func(b []byte) { resp = b })
	_ = r.tester.Diag(0x0021, []byte{0x3E, 0x00})
	_ = r.k.Run()
	if len(resp) == 0 {
		t.Fatal("no diag response after authenticated activation")
	}
}

// The VLAN claim: an attacker on the infotainment VLAN cannot even
// discover the DoIP entity, let alone talk to it.
func TestVLANSeparationBlocksOffVLANAttacker(t *testing.T) {
	r := newRig(t, nil)
	attackerHost := ethernet.NewHost("attacker", ethernet.LocalMAC(66))
	r.sw.Connect(attackerHost, vlanIVI)
	attacker := NewTester(attackerHost, 0x0E66)
	heard := false
	attacker.OnIdent(func(string, uint16) { heard = true })
	if err := attacker.Discover(); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if heard {
		t.Fatal("attacker crossed the VLAN boundary")
	}
	if r.entity.IdentRequests.Value != 0 {
		t.Fatal("identification request leaked across VLANs")
	}
	// Blind diag attempts fail for lack of discovery.
	if err := attacker.Diag(0x0021, []byte{0x3E, 0x00}); err != ErrNoEntity {
		t.Fatalf("err=%v", err)
	}
}

func TestMalformedMessagesIgnored(t *testing.T) {
	r := newRig(t, nil)
	raw := ethernet.NewHost("raw", ethernet.LocalMAC(9))
	r.sw.Connect(raw, vlanDiag)
	// Garbage payloads of every kind: short, bad version, truncated length.
	for _, p := range [][]byte{
		{},
		{0x01},
		{0x03, 0xFC, 0, 1, 0, 0, 0, 0},        // wrong version
		{0x02, 0xFD, 0x00, 0x01, 0, 0, 0, 99}, // length beyond frame
		append(encodeHeader(TypeDiagMessage, 2), 0x0E), // diag too short
		append(encodeHeader(TypeRoutingActivation, 1), 0x00),
	} {
		_ = raw.Send(ethernet.Frame{Dst: ethernet.Broadcast, EtherType: EtherTypeDoIP, Payload: p})
	}
	_ = r.k.Run()
	if r.entity.Activations.Value != 0 || r.entity.DiagForwarded.Value != 0 {
		t.Fatal("garbage produced actions")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := encodeHeader(TypeDiagMessage, 5)
	pt, payload, err := parseHeader(append(h, 1, 2, 3, 4, 5))
	if err != nil || pt != TypeDiagMessage || len(payload) != 5 {
		t.Fatalf("pt=%#x payload=%v err=%v", pt, payload, err)
	}
	if _, _, err := parseHeader([]byte{1, 2, 3}); err != ErrMalformed {
		t.Fatalf("err=%v", err)
	}
	bad := encodeHeader(1, 0)
	bad[1] = 0x00
	if _, _, err := parseHeader(bad); err != ErrVersion {
		t.Fatalf("err=%v", err)
	}
}

func TestNackName(t *testing.T) {
	if NackName(NackRoutingInactive) != "routing activation missing" {
		t.Fatal("name")
	}
	if NackName(0x77) == "" {
		t.Fatal("unknown name empty")
	}
}
