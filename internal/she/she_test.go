package she

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testUID(n byte) UID {
	var u UID
	for i := range u {
		u[i] = n
	}
	return u
}

func key16(b byte) [BlockSize]byte {
	var k [BlockSize]byte
	for i := range k {
		k[i] = b
	}
	return k
}

func TestKeyIDString(t *testing.T) {
	cases := map[KeyID]string{
		SecretKey:    "SECRET_KEY",
		MasterECUKey: "MASTER_ECU_KEY",
		BootMACKey:   "BOOT_MAC_KEY",
		BootMAC:      "BOOT_MAC",
		Key1:         "KEY_1",
		Key10:        "KEY_10",
		RAMKey:       "RAM_KEY",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("%d.String()=%q, want %q", int(id), got, want)
		}
	}
}

func TestFlagsPackUnpackRoundTrip(t *testing.T) {
	f := func(b byte) bool {
		fl := unpackFlags(b & 0x1F)
		return fl.pack() == b&0x1F
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionAndMAC(t *testing.T) {
	e := NewEngine(testUID(1))
	if err := e.ProvisionKey(Key1, key16(0xAA), Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	mac, err := e.GenerateMAC(Key1, []byte("frame payload"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.VerifyMAC(Key1, []byte("frame payload"), mac, 128)
	if err != nil || !ok {
		t.Fatalf("verify: ok=%v err=%v", ok, err)
	}
	ok, _ = e.VerifyMAC(Key1, []byte("tampered payload"), mac, 128)
	if ok {
		t.Fatal("MAC verified for a different message")
	}
}

func TestKeyUsageEnforced(t *testing.T) {
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key1, key16(0xAA), Flags{KeyUsage: true})  // MAC key
	_ = e.ProvisionKey(Key2, key16(0xBB), Flags{KeyUsage: false}) // cipher key
	if _, err := e.EncryptECB(Key1, make([]byte, 16)); !errors.Is(err, ErrKeyUsage) {
		t.Fatalf("MAC key used for encryption: %v", err)
	}
	if _, err := e.GenerateMAC(Key2, []byte("x")); !errors.Is(err, ErrKeyUsage) {
		t.Fatalf("cipher key used for MAC: %v", err)
	}
	if _, err := e.EncryptECB(Key2, make([]byte, 16)); err != nil {
		t.Fatalf("cipher key rejected for encryption: %v", err)
	}
}

func TestEmptySlotAndInvalidSlot(t *testing.T) {
	e := NewEngine(testUID(1))
	if _, err := e.GenerateMAC(Key5, []byte("x")); !errors.Is(err, ErrKeyEmpty) {
		t.Fatalf("err=%v", err)
	}
	if _, err := e.GenerateMAC(BootMAC, []byte("x")); !errors.Is(err, ErrKeyInvalid) {
		t.Fatalf("BOOT_MAC usable as key: %v", err)
	}
	if _, err := e.GenerateMAC(KeyID(99), []byte("x")); !errors.Is(err, ErrKeyInvalid) {
		t.Fatalf("err=%v", err)
	}
	if err := e.ProvisionKey(SecretKey, key16(1), Flags{}); !errors.Is(err, ErrKeyInvalid) {
		t.Fatalf("SECRET_KEY provisionable: %v", err)
	}
}

func TestDebuggerProtection(t *testing.T) {
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key1, key16(0xAA), Flags{KeyUsage: true, DebuggerProtection: true})
	_ = e.ProvisionKey(Key2, key16(0xBB), Flags{KeyUsage: true})
	e.DebuggerAttached = true
	if _, err := e.GenerateMAC(Key1, []byte("x")); !errors.Is(err, ErrDebuggerActive) {
		t.Fatalf("debugger-protected key usable: %v", err)
	}
	if _, err := e.GenerateMAC(Key2, []byte("x")); err != nil {
		t.Fatalf("unprotected key blocked: %v", err)
	}
	e.DebuggerAttached = false
	if _, err := e.GenerateMAC(Key1, []byte("x")); err != nil {
		t.Fatalf("key blocked after debugger detached: %v", err)
	}
}

func TestRAMKey(t *testing.T) {
	e := NewEngine(testUID(1))
	e.LoadPlainKey(key16(0x77))
	mac, err := e.GenerateMAC(RAMKey, []byte("session"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := CMAC(bytes.Repeat([]byte{0x77}, 16), []byte("session"))
	if !bytes.Equal(mac, want) {
		t.Fatal("RAM key MAC mismatch")
	}
	// RAM key is volatile: lost on reset.
	e.ResetSession()
	if _, err := e.GenerateMAC(RAMKey, []byte("x")); !errors.Is(err, ErrKeyEmpty) {
		t.Fatalf("RAM key survived reset: %v", err)
	}
}

func TestTRNG(t *testing.T) {
	e := NewEngine(testUID(1))
	a, err := e.TRNG(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TRNG(16)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("TRNG repeated itself")
	}
}

func TestKeyStateNeverExposesKey(t *testing.T) {
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key1, key16(0xAA), Flags{KeyUsage: true, BootProtection: true})
	valid, flags, counter := e.KeyState(Key1)
	if !valid || !flags.BootProtection || counter != 0 {
		t.Fatalf("state: %v %+v %d", valid, flags, counter)
	}
	if v, _, _ := e.KeyState(KeyID(-1)); v {
		t.Fatal("out-of-range slot reported valid")
	}
}

func TestLeakTapObservesKeyUse(t *testing.T) {
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key2, key16(0xBB), Flags{})
	var ops []string
	e.Leak = func(op string, key, block []byte) {
		ops = append(ops, op)
		if len(key) != 16 || len(block) != 16 {
			t.Errorf("leak tap sizes: key=%d block=%d", len(key), len(block))
		}
	}
	_, _ = e.EncryptECB(Key2, make([]byte, 16))
	_, _ = e.EncryptCBC(Key2, make([]byte, 16), make([]byte, 16))
	if len(ops) != 2 || ops[0] != "enc" || ops[1] != "enc" {
		t.Fatalf("ops=%v", ops)
	}
}

func TestEncryptDecryptCBCViaEngine(t *testing.T) {
	e := NewEngine(testUID(1))
	_ = e.ProvisionKey(Key3, key16(0x5A), Flags{})
	iv := make([]byte, 16)
	plain := bytes.Repeat([]byte{9}, 48)
	ct, err := e.EncryptCBC(Key3, iv, plain)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.DecryptCBC(Key3, iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("engine CBC round trip failed")
	}
}
