package obs

import (
	"fmt"
	"math"
	"sort"
)

// Metric is one row of a registry snapshot. Key is "subsystem/name"
// (histograms flatten into "subsystem/name/count", ".../mean", ".../p50",
// ".../p99", ".../max" sub-keys), Kind is "counter", "gauge", "probe" or
// "histogram", and Value is the current reading.
type Metric struct {
	Key   string
	Kind  string
	Value float64
}

// Counter is a monotonically increasing count. A nil *Counter is a valid
// disabled counter: Inc/Add on it are no-ops.
type Counter struct {
	v int64
}

// Inc adds 1. No-op on nil.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time level. A nil *Gauge is a valid disabled gauge.
type Gauge struct {
	v float64
}

// Set replaces the level. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add moves the level by d. No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value reports the current level (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates observations into fixed buckets chosen at
// registration time. Buckets are upper bounds (inclusive), sorted
// ascending; observations above the last bound land in a +Inf overflow
// bucket. Count, sum and max are tracked exactly; quantiles are estimated
// from the bucket counts. A nil *Histogram is a valid disabled histogram.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
	max    float64
}

// Observe records one sample. No-op on nil; zero-alloc.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	// The first sample seeds max unconditionally: comparing against the
	// zero-initialized field would report max=0 for all-negative samples.
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count reports the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean reports the exact sample mean (0 if empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max reports the exact maximum sample (0 if empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// returning the upper bound of the bucket holding the q-th sample. The
// overflow bucket reports the exact max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// DefaultLatencyBuckets covers 1µs..1s in roughly 1-2-5 steps; values are
// microseconds, matching the frame-time and verdict-gap histograms.
var DefaultLatencyBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000,
}

// Registry is a get-or-create store of named instruments keyed
// "subsystem/name". A nil *Registry is the disabled state: every
// constructor on it returns nil, which is itself a valid disabled
// instrument, so instrumentation code never branches on enablement.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	probes     map[string]func() float64

	// frozen holds materialized probe readings: Materialize evaluates
	// every registered probe into this map, and Merge accumulates source
	// probe readings here. A frozen key overrides its live probe in
	// Snapshot, so a materialized registry keeps reporting the values it
	// held at materialization time even after the probed subsystems are
	// reset — the property the pooled fleet driver depends on.
	frozen map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		probes:     map[string]func() float64{},
	}
}

// Counter returns the counter named key, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(key string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge named key, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Gauge(key string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram named key, creating it with the given
// bucket upper bounds on first use (nil bounds means
// DefaultLatencyBuckets). Returns nil on a nil registry.
func (r *Registry) Histogram(key string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[key]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		sorted := append([]float64(nil), bounds...)
		sort.Float64s(sorted)
		h = &Histogram{bounds: sorted, counts: make([]uint64, len(sorted)+1)}
		r.histograms[key] = h
	}
	return h
}

// Probe registers a pull-style metric: fn is called at snapshot time.
// Probes let the registry read counters a subsystem already maintains
// (bus FramesOK, kernel Steps, ...) without double-counting on the hot
// path. No-op on a nil registry.
func (r *Registry) Probe(key string, fn func() float64) {
	if r == nil {
		return
	}
	r.probes[key] = fn
}

// Materialize evaluates every registered probe now and stores the
// readings, so later Snapshot and Merge calls report this moment's values
// instead of re-reading live subsystem state. Call it before the probed
// subsystems are reset or reused (the pooled fleet driver materializes
// each vehicle's registry before releasing the vehicle back to its pool).
// Materializing again re-reads the probes. No-op on a nil registry.
func (r *Registry) Materialize() {
	if r == nil {
		return
	}
	if r.frozen == nil {
		r.frozen = make(map[string]float64, len(r.probes))
	}
	for k, fn := range r.probes {
		r.frozen[k] = fn()
	}
}

// Snapshot reads every instrument and returns the metrics sorted by key,
// so two snapshots of identical state are identical slices. Histograms
// flatten into count/mean/p50/p99/max sub-keys.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.probes)+len(r.frozen)+5*len(r.histograms))
	for k, c := range r.counters {
		out = append(out, Metric{Key: k, Kind: "counter", Value: float64(c.v)})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Key: k, Kind: "gauge", Value: g.v})
	}
	for k, fn := range r.probes {
		if _, ok := r.frozen[k]; ok {
			continue // materialized reading wins
		}
		out = append(out, Metric{Key: k, Kind: "probe", Value: fn()})
	}
	for k, v := range r.frozen {
		out = append(out, Metric{Key: k, Kind: "probe", Value: v})
	}
	for k, h := range r.histograms {
		out = append(out,
			Metric{Key: k + "/count", Kind: "histogram", Value: float64(h.count)},
			Metric{Key: k + "/mean", Kind: "histogram", Value: h.Mean()},
			Metric{Key: k + "/p50", Kind: "histogram", Value: h.Quantile(0.50)},
			Metric{Key: k + "/p99", Kind: "histogram", Value: h.Quantile(0.99)},
			Metric{Key: k + "/max", Kind: "histogram", Value: h.max},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FormatValue renders a metric value the way the experiments tables
// expect: integral values print as integers, everything else with up to
// six significant digits — both forms parse back as float64, which is
// what lets runner.Aggregate fold replicated snapshots into mean ± CI.
func FormatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}
