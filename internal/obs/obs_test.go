package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"autosec/internal/sim"
)

func TestNilTracerAndInstrumentsAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Instant(1, 0, 0, 0, 0, 0)
	tr.Span(1, 2, 0, 0, 0, 0, 0)
	tr.KernelDispatch(3, 4)
	if tr.Label("x") != 0 || tr.LabelString(5) != "" {
		t.Fatal("nil tracer label ops must return zero values")
	}
	if tr.Total() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	tr.Reset()

	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must stay empty")
	}

	var r *Registry
	if r.Counter("a/b") != nil || r.Gauge("a/b") != nil || r.Histogram("a/b", nil) != nil {
		t.Fatal("nil registry constructors must return nil instruments")
	}
	r.Probe("a/b", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestTracerRingWrapKeepsMostRecent(t *testing.T) {
	tr := NewTracer(4) // capacity 4
	sub, name := tr.Label("s"), tr.Label("e")
	for i := 0; i < 10; i++ {
		tr.Instant(sim.Time(i), sub, name, 0, int64(i), 0)
	}
	if tr.Total() != 10 || tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d, want 10/4/6", tr.Total(), tr.Len(), tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.Arg1 != want {
			t.Fatalf("event %d: Arg1=%d, want %d (most-recent window in order)", i, e.Arg1, want)
		}
	}
}

func TestLabelInterningIsStable(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Label("alpha")
	b := tr.Label("beta")
	if a2 := tr.Label("alpha"); a2 != a {
		t.Fatalf("re-interning changed the handle: %d vs %d", a2, a)
	}
	if tr.LabelString(a) != "alpha" || tr.LabelString(b) != "beta" {
		t.Fatal("LabelString must round-trip")
	}
	if tr.LabelString(0) != "" {
		t.Fatal("label 0 must be the empty string")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("can/frames")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter=%d, want 3", c.Value())
	}
	if r.Counter("can/frames") != c {
		t.Fatal("Counter must be get-or-create")
	}

	g := r.Gauge("can/load")
	g.Set(0.5)
	g.Add(0.25)
	if g.Value() != 0.75 {
		t.Fatalf("gauge=%v, want 0.75", g.Value())
	}

	h := r.Histogram("can/frame_us", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count=%d, want 5", h.Count())
	}
	if h.Max() != 5000 {
		t.Fatalf("hist max=%v, want 5000", h.Max())
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("p50=%v, want 100 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.99); got != 5000 {
		t.Fatalf("p99=%v, want 5000 (overflow bucket reports max)", got)
	}

	r.Probe("kernel/steps", func() float64 { return 17 })

	snap := r.Snapshot()
	keys := make([]string, len(snap))
	for i, m := range snap {
		keys[i] = m.Key
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("snapshot keys not strictly sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
	byKey := map[string]Metric{}
	for _, m := range snap {
		byKey[m.Key] = m
	}
	if m := byKey["can/frames"]; m.Kind != "counter" || m.Value != 3 {
		t.Fatalf("can/frames = %+v", m)
	}
	if m := byKey["kernel/steps"]; m.Kind != "probe" || m.Value != 17 {
		t.Fatalf("kernel/steps = %+v", m)
	}
	if m := byKey["can/frame_us/count"]; m.Kind != "histogram" || m.Value != 5 {
		t.Fatalf("can/frame_us/count = %+v", m)
	}
	if _, ok := byKey["can/frame_us/p99"]; !ok {
		t.Fatal("histogram must flatten into p99 sub-key")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-2, "-2"},
		{1234567, "1234567"},
		{0.75, "0.75"},
		{1.0 / 3.0, "0.333333"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestChromeTraceIsValidJSONAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(64)
		can, gw := tr.Label("can"), tr.Label("gateway")
		tx, deny := tr.Label("tx"), tr.Label(`deny:"quoted"`)
		bus := tr.Label("powertrain")
		tr.KernelDispatch(1000, 3)
		tr.Span(1000, 125_000, can, tx, bus, 0x100, 125)
		tr.Instant(2000, gw, deny, bus, 0x300, 0)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical tracers must export byte-identical JSON")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", a.String())
	}
	var records []map[string]any
	if err := json.Unmarshal(a.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, r := range records {
		phases = append(phases, r["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Fatalf("expected M, X and i records, got phases %v", phases)
	}
	// The span's µs formatting must preserve ns precision.
	if !strings.Contains(a.String(), `"ts":1.000`) || !strings.Contains(a.String(), `"dur":125.000`) {
		t.Fatalf("timestamp formatting wrong:\n%s", a.String())
	}
}

func TestTimelineOutput(t *testing.T) {
	tr := NewTracer(16)
	can := tr.Label("can")
	tx := tr.Label("tx")
	bus := tr.Label("chassis")
	tr.Span(1_500_000, 250_000, can, tx, bus, 0x2A0, 130)
	tr.Instant(2_000_000, can, tx, 0, 1, 2)
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+1.500000ms") {
		t.Fatalf("missing span timestamp:\n%s", out)
	}
	if !strings.Contains(out, "str=chassis") || !strings.Contains(out, "dur=250.000µs") {
		t.Fatalf("missing span payload:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", lines, out)
	}
}

// TestTracerSteadyStateAllocs pins the enabled observability hot path at
// zero allocations per event after warm-up: ring emits (instant, span,
// kernel dispatch) and registry instruments (counter, gauge, histogram)
// must all run without touching the allocator once labels are interned
// and instruments created.
func TestTracerSteadyStateAllocs(t *testing.T) {
	tr := NewTracer(1024)
	sub := tr.Label("can")
	name := tr.Label("tx")
	str := tr.Label("powertrain")

	r := NewRegistry()
	c := r.Counter("can/frames")
	g := r.Gauge("can/load")
	h := r.Histogram("can/frame_us", nil)

	// Warm up: fill the ring past capacity so wrap-around is exercised.
	for i := 0; i < 2048; i++ {
		tr.Instant(sim.Time(i), sub, name, str, int64(i), 0)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		tr.Instant(1, sub, name, str, 0x100, 64)
		tr.Span(1, 125_000, sub, name, str, 0x100, 125)
		tr.KernelDispatch(2, 7)
		c.Inc()
		g.Set(0.42)
		h.Observe(125.0)
	})
	if allocs != 0 {
		t.Fatalf("enabled obs hot path allocates %v allocs/op, want 0", allocs)
	}

	// Re-interning an existing label is also allocation-free.
	allocs = testing.AllocsPerRun(1000, func() {
		_ = tr.Label("powertrain")
	})
	if allocs != 0 {
		t.Fatalf("re-interning allocates %v allocs/op, want 0", allocs)
	}
}
