// Package tradeoff implements the paper's Section 5 "dynamic trade-offs
// between security, smartness, communication": an operating-mode
// controller that, per drive-cycle phase, chooses how much sensor
// analytics to run, how strongly to authenticate IVN traffic, and how
// much telematics bandwidth to spend — against a fixed ECU compute
// budget.
//
// Two controllers are compared in experiment E5: a static controller
// (one mode for the whole drive, the non-extensible baseline) and an
// adaptive controller that re-decides per phase. The adaptive controller
// is the concrete payoff of "generic interfaces ... and clear definition
// of various communication, smartness, and security modes".
package tradeoff

import (
	"fmt"

	"autosec/internal/sim"
	"autosec/internal/workload"
)

// Mode is one operating point.
type Mode struct {
	Name string
	// AnalyticsHz is the sensor-fusion/vision processing rate.
	AnalyticsHz float64
	// MACBits is the truncated-CMAC width applied to IVN traffic
	// (0 disables authentication).
	MACBits int
	// CloudKbps is the telematics uplink spend.
	CloudKbps float64
}

// Cost model constants (per unit of work, as CPU fractions).
const (
	// cpuPerAnalyticsHz is the compute fraction consumed per Hz of
	// analytics.
	cpuPerAnalyticsHz = 0.01
	// cpuPerMACBit is the compute fraction consumed per MAC bit at the
	// reference frame rate (software crypto; a SHE accelerator divides
	// this by ~10).
	cpuPerMACBit = 0.002
)

// CPULoad is the mode's compute demand as a fraction of one core.
func (m Mode) CPULoad(accelFactor float64) float64 {
	if accelFactor < 1 {
		accelFactor = 1
	}
	return m.AnalyticsHz*cpuPerAnalyticsHz + float64(m.MACBits)*cpuPerMACBit/accelFactor
}

// Controller decides the operating mode for a drive-cycle phase.
type Controller interface {
	Decide(p workload.Phase) Mode
}

// Static always returns one mode — the fixed, optimization-first design
// the paper contrasts with extensible ones.
type Static struct{ M Mode }

// Decide implements Controller.
func (s Static) Decide(workload.Phase) Mode { return s.M }

// Adaptive scales analytics with pedestrian density, authentication with
// threat level, and sheds cloud bandwidth when analytics needs the CPU.
type Adaptive struct {
	// MaxAnalyticsHz caps the analytics rate (default 50).
	MaxAnalyticsHz float64
	// BaseCloudKbps is the bandwidth spend at zero analytics pressure.
	BaseCloudKbps float64
}

// Decide implements Controller.
func (a Adaptive) Decide(p workload.Phase) Mode {
	maxHz := a.MaxAnalyticsHz
	if maxHz == 0 {
		maxHz = 50
	}
	base := a.BaseCloudKbps
	if base == 0 {
		base = 256
	}
	hz := 5 + p.PedestrianDensity*(maxHz-5)
	mac := 0
	switch {
	case p.ThreatLevel >= 0.5:
		mac = 64
	case p.ThreatLevel >= 0.2:
		mac = 32
	}
	// Shed bandwidth as analytics load rises (the paper's "adjust its
	// communication bandwidth to the cloud in real time").
	cloud := base * (1 - 0.8*p.PedestrianDensity)
	return Mode{
		Name:        fmt.Sprintf("adaptive(d=%.2f,t=%.2f)", p.PedestrianDensity, p.ThreatLevel),
		AnalyticsHz: hz,
		MACBits:     mac,
		CloudKbps:   cloud,
	}
}

// RequiredAnalyticsHz is the analytics rate the environment demands for
// safe perception.
func RequiredAnalyticsHz(p workload.Phase) float64 {
	return 5 + p.PedestrianDensity*45
}

// Report summarizes a drive-cycle evaluation.
type Report struct {
	Controller string
	// OverloadFrac is the fraction of samples where CPU demand exceeded
	// the budget (deadline-miss proxy).
	OverloadFrac float64
	// CoverageShortfall is the mean unmet analytics demand in Hz.
	CoverageShortfall float64
	// ExposedFrac is the fraction of samples driven unauthenticated
	// (MACBits == 0) while the threat level was ≥ 0.5.
	ExposedFrac float64
	// MeanCloudKbps is the average bandwidth spend.
	MeanCloudKbps float64
	// ModeSwitches counts distinct mode changes (the adaptivity cost).
	ModeSwitches int
}

func (r Report) String() string {
	return fmt.Sprintf("%s: overload=%.3f shortfall=%.2fHz exposed=%.3f cloud=%.0fkbps switches=%d",
		r.Controller, r.OverloadFrac, r.CoverageShortfall, r.ExposedFrac, r.MeanCloudKbps, r.ModeSwitches)
}

// Evaluate samples the cycle every tick over dur, asks the controller for
// a mode, and scores it against the CPU budget. accelFactor models crypto
// acceleration (1 = software, ~10 = SHE).
func Evaluate(name string, cycle workload.Cycle, dur sim.Duration, tick sim.Duration, ctrl Controller, cpuBudget, accelFactor float64) Report {
	if tick <= 0 {
		tick = sim.Second
	}
	var r Report
	r.Controller = name
	var samples int
	var shortfall, cloud float64
	var lastMode Mode
	first := true
	for at := sim.Time(0); at < dur; at += tick {
		p := cycle.At(at)
		m := ctrl.Decide(p)
		samples++
		if m.CPULoad(accelFactor) > cpuBudget {
			r.OverloadFrac++
		}
		if need := RequiredAnalyticsHz(p); m.AnalyticsHz < need {
			shortfall += need - m.AnalyticsHz
		}
		if p.ThreatLevel >= 0.5 && m.MACBits == 0 {
			r.ExposedFrac++
		}
		cloud += m.CloudKbps
		if first || m != lastMode {
			if !first {
				r.ModeSwitches++
			}
			lastMode = m
			first = false
		}
	}
	if samples > 0 {
		r.OverloadFrac /= float64(samples)
		r.CoverageShortfall = shortfall / float64(samples)
		r.ExposedFrac /= float64(samples)
		r.MeanCloudKbps = cloud / float64(samples)
	}
	return r
}
