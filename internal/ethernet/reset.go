package ethernet

import "autosec/internal/sim"

// Pooled-vehicle lifecycle support. MarkBaseline snapshots the switch's
// post-construction topology — ports, their VLAN/policer/link config, the
// hosts behind them, observers — and ResetToBaseline rewinds to it:
// scenario ports are detached, the MAC learning table is flushed, policer
// buckets and every counter reset. Port truncation matters beyond
// hygiene: the netif adapter derives host MACs from the port count at
// Open time, so a reset switch must hand out the same addresses a fresh
// one would.

// portBaseline is the sealed post-construction config of one Port.
type portBaseline struct {
	pvid    uint16
	allowed []uint16 // sorted insertion-free snapshot of the Allowed set
	police  *Policer
	rate    float64
	burst   float64
	linkBps int64
	// host wiring
	handlers int
}

// swBaseline is the sealed post-construction state of a Switch.
type swBaseline struct {
	sealed    bool
	observers int
	latency   sim.Duration
	ports     []portBaseline
}

// MarkBaseline records the switch's current topology as the reset target.
func (s *Switch) MarkBaseline() {
	b := swBaseline{
		sealed:    true,
		observers: len(s.observers),
		latency:   s.Latency,
		ports:     make([]portBaseline, len(s.ports)),
	}
	for i, p := range s.ports {
		pb := portBaseline{
			pvid:    p.PVID,
			police:  p.Police,
			linkBps: p.LinkBps,
		}
		for vlan := range p.Allowed {
			pb.allowed = append(pb.allowed, vlan)
		}
		if p.Police != nil {
			pb.rate = p.Police.RateBps
			pb.burst = p.Police.BurstBytes
		}
		if p.host != nil {
			pb.handlers = len(p.host.handlers)
		}
		b.ports[i] = pb
	}
	s.base = b
}

// ResetToBaseline rewinds the switch to its MarkBaseline snapshot. The
// kernel must have been Reset first (any in-flight serialization events
// are gone with the queue).
func (s *Switch) ResetToBaseline() {
	if !s.base.sealed {
		panic("ethernet: ResetToBaseline before MarkBaseline")
	}
	for i := len(s.base.ports); i < len(s.ports); i++ {
		if h := s.ports[i].host; h != nil {
			h.port = nil
		}
		s.ports[i] = nil
	}
	s.ports = s.ports[:len(s.base.ports)]
	for i, p := range s.ports {
		pb := &s.base.ports[i]
		p.PVID = pb.pvid
		if len(p.Allowed) > 0 || len(pb.allowed) > 0 {
			for vlan := range p.Allowed {
				delete(p.Allowed, vlan)
			}
			for _, vlan := range pb.allowed {
				if p.Allowed == nil {
					p.Allowed = make(map[uint16]bool)
				}
				p.Allowed[vlan] = true
			}
		}
		p.Police = pb.police
		if p.Police != nil {
			p.Police.RateBps = pb.rate
			p.Police.BurstBytes = pb.burst
			p.Police.tokens = 0
			p.Police.last = 0
			p.Police.inited = false
		}
		p.LinkBps = pb.linkBps
		p.Dropped.Value = 0
		if h := p.host; h != nil {
			for j := pb.handlers; j < len(h.handlers); j++ {
				h.handlers[j] = nil
			}
			h.handlers = h.handlers[:pb.handlers]
			h.FramesSent.Value = 0
			h.FramesReceived.Value = 0
		}
	}
	for k := range s.table {
		delete(s.table, k)
	}
	s.Latency = s.base.latency
	s.FramesForwarded.Value = 0
	s.FramesFlooded.Value = 0
	s.VLANViolations.Value = 0
	s.Policed.Value = 0
	for i := s.base.observers; i < len(s.observers); i++ {
		s.observers[i] = nil
	}
	s.observers = s.observers[:s.base.observers]
}
