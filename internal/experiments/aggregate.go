package experiments

import (
	"fmt"
	"math"
	"strconv"
)

// Aggregate merges per-seed runs of the same experiment suite into one
// table per experiment. perSeed[i][j] is experiment j under seed i; every
// seed must have produced the same experiments with the same shape.
//
// Columns whose cells are identical across all seeds (experiment inputs:
// attack rates, configuration labels) pass through unchanged. Columns
// where any cell is numeric and varies across seeds expand into three
// columns: the original name carrying "mean ± 95% CI" cells, "<name> sd"
// with the sample standard deviation, and "<name> range" with the
// per-seed min..max. Non-numeric cells that vary (e.g. a yes/no verdict
// that flips under some seeds) are folded into a deterministic
// "value xCount" tally in seed order.
//
// The fold visits seeds in slice order, so the output is independent of
// the parallelism that produced perSeed. The fleet driver reuses the same
// fold with one "seed" per vehicle, merged in vehicle-index order.
func Aggregate(perSeed [][]*Table) ([]*Table, error) {
	if len(perSeed) == 0 {
		return nil, fmt.Errorf("experiments: no replicates to aggregate")
	}
	nExp := len(perSeed[0])
	for i, tables := range perSeed {
		if len(tables) != nExp {
			return nil, fmt.Errorf("experiments: replicate %d produced %d tables, want %d", i, len(tables), nExp)
		}
	}
	out := make([]*Table, nExp)
	for j := 0; j < nExp; j++ {
		column := make([]*Table, len(perSeed))
		for i := range perSeed {
			column[i] = perSeed[i][j]
		}
		agg, err := aggregateOne(column)
		if err != nil {
			return nil, fmt.Errorf("experiments: experiment %s: %w", perSeed[0][j].ID, err)
		}
		out[j] = agg
	}
	return out, nil
}

// aggregateOne merges the same experiment across seeds.
func aggregateOne(runs []*Table) (*Table, error) {
	first := runs[0]
	for i, t := range runs[1:] {
		if t.ID != first.ID || len(t.Columns) != len(first.Columns) || len(t.Rows) != len(first.Rows) {
			return nil, fmt.Errorf("replicate %d shape mismatch (id %s vs %s, %d vs %d cols, %d vs %d rows)",
				i+1, t.ID, first.ID, len(t.Columns), len(first.Columns), len(t.Rows), len(first.Rows))
		}
	}
	n := len(runs)
	agg := &Table{
		ID:    first.ID,
		Title: fmt.Sprintf("%s (n=%d seeds, mean ± 95%% CI)", first.Title, n),
		Claim: first.Claim,
	}

	type colKind int
	const (
		kindConstant colKind = iota // identical across seeds: pass through
		kindNumeric                 // varies, all cells parse as numbers
		kindMixed                   // varies, at least one non-numeric cell
	)
	kinds := make([]colKind, len(first.Columns))
	for c := range first.Columns {
		kind := kindConstant
		for r := range first.Rows {
			varies, numeric := cellProfile(runs, r, c)
			if !varies {
				continue
			}
			if numeric && kind != kindMixed {
				kind = kindNumeric
			}
			if !numeric {
				kind = kindMixed
			}
		}
		kinds[c] = kind
	}

	for c, name := range first.Columns {
		switch kinds[c] {
		case kindNumeric:
			agg.Columns = append(agg.Columns, name, name+" sd", name+" range")
		default:
			agg.Columns = append(agg.Columns, name)
		}
	}

	for r := range first.Rows {
		var row []any
		for c := range first.Columns {
			switch kinds[c] {
			case kindConstant:
				row = append(row, first.Rows[r][c])
			case kindNumeric:
				// Rows that happen to be seed-invariant (or carry a
				// non-numeric sentinel like ">8192") pass through with
				// empty sd/range cells rather than a degenerate 0 ± 0.
				if varies, _ := cellProfile(runs, r, c); !varies {
					row = append(row, first.Rows[r][c], "", "")
					continue
				}
				mean, sd, half, lo, hi := summarize(runs, r, c)
				row = append(row,
					CI{Mean: mean, Half: half},
					sd,
					MinMax{Min: lo, Max: hi})
			case kindMixed:
				row = append(row, tally(runs, r, c))
			}
		}
		agg.AddRow(row...)
	}
	return agg, nil
}

// cellProfile reports whether cell (r,c) varies across seeds and, if so,
// whether every seed's value parses as a number.
func cellProfile(runs []*Table, r, c int) (varies, numeric bool) {
	first := runs[0].Rows[r][c]
	numeric = true
	for _, t := range runs {
		cell := t.Rows[r][c]
		if cell != first {
			varies = true
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			numeric = false
		}
	}
	return varies, numeric
}

// summarize computes the moments of a numeric cell across seeds: mean,
// sample standard deviation, 95% CI half-width (Student t), min and max.
func summarize(runs []*Table, r, c int) (mean, sd, half, lo, hi float64) {
	n := float64(len(runs))
	lo, hi = math.Inf(1), math.Inf(-1)
	var sum float64
	vals := make([]float64, len(runs))
	for i, t := range runs {
		v, _ := strconv.ParseFloat(t.Rows[r][c], 64)
		vals[i] = v
		sum += v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	mean = sum / n
	if len(runs) > 1 {
		var ss float64
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		sd = math.Sqrt(ss / (n - 1))
		half = tCrit95(len(runs)-1) * sd / math.Sqrt(n)
	}
	return mean, sd, half, lo, hi
}

// tally folds varying non-numeric cells into "value xCount" pairs in
// first-appearance (seed) order, e.g. "yes x6 no x2".
func tally(runs []*Table, r, c int) string {
	var order []string
	counts := map[string]int{}
	for _, t := range runs {
		cell := t.Rows[r][c]
		if counts[cell] == 0 {
			order = append(order, cell)
		}
		counts[cell]++
	}
	if len(order) == 1 {
		return order[0] // seed-invariant row inside a varying column
	}
	out := ""
	for i, v := range order {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s x%d", v, counts[v])
	}
	return out
}

// tTable holds two-sided 95% Student-t critical values for 1-30 degrees
// of freedom; beyond that the normal approximation is within 2%.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom.
func tCrit95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	return 1.960
}
