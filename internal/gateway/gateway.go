// Package gateway implements the paper's Secure Gateway layer: a central
// domain gateway that routes frames between in-vehicle network domains
// (infotainment, powertrain, chassis, telematics, ...), applies an ordered
// rule set with allow/deny/rate-limit actions, and can quarantine a
// compromised domain so an attack does not propagate to the others.
//
// Domains bind to any netif.Medium — CAN buses, LIN clusters, FlexRay
// channels, Ethernet VLANs — and the gateway translates frames at domain
// boundaries: a CAN frame forwarded into an Ethernet domain is tunnelled
// DoIP-style (netif.TunnelEtherType), a tunnel frame arriving from the
// Ethernet backbone is decapsulated and routed by its inner identity.
// Rules match on (medium, identifier range); a rule with the zero medium
// selector matches every medium, so the historical CAN-only configurations
// keep their exact semantics.
//
// The forward path keeps the repo's hot-path discipline: verdict strings
// are precomputed per rule, translation reuses per-domain scratch buffers,
// and with zero Latency the gateway performs no steady-state allocation
// beyond the payload clone every medium makes on Send.
package gateway

import (
	"errors"
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Action is a routing rule's verdict.
type Action int

const (
	// Deny drops the frame.
	Deny Action = iota
	// Allow forwards the frame to the rule's destination domains.
	Allow
)

func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Rule is one entry of the gateway's ordered rule set. The first matching
// rule decides; with no match the gateway's default policy applies.
//
// A Rule holds configuration only: the token-bucket limiter state lives in
// the gateway that installed the rule, so the same Rule value can be
// installed into several gateways (or re-installed after SetRules) without
// silently sharing limiter state.
type Rule struct {
	// Name labels the rule in logs and stats.
	Name string
	// From is the source domain, or "*" for any.
	From string
	// Medium selects which media the rule applies to; the zero value
	// matches every medium (the CAN-only legacy behaviour).
	Medium netif.Selector
	// IDLo..IDHi is the matched identifier range (inclusive): CAN IDs, LIN
	// frame IDs, FlexRay slots or Ethernet EtherTypes, per the medium.
	IDLo, IDHi uint32
	// To lists destination domains for Allow rules; empty means "all other
	// domains".
	To []string
	// Action is the verdict.
	Action Action
	// RatePerSec, when positive, bounds matched forwarding; excess frames
	// are dropped even if the rule allows them.
	RatePerSec float64
	// BurstFrames is the token-bucket depth (default: RatePerSec).
	BurstFrames float64

	Matched   sim.Counter
	RateDrops sim.Counter
}

// matches reports whether the rule applies to the frame from the domain.
func (r *Rule) matches(from string, f *netif.Frame) bool {
	if r.From != "*" && r.From != from {
		return false
	}
	if !r.Medium.Matches(f.Medium) {
		return false
	}
	return f.ID >= r.IDLo && f.ID <= r.IDHi
}

// ruleState is the gateway-owned mutable companion of one installed rule:
// the token-bucket limiter and the precomputed verdict strings (built once
// at install time so the per-frame notify path concatenates nothing).
type ruleState struct {
	allowV, denyV, rateV string

	tokens float64
	last   sim.Time
	inited bool
}

// admit applies the rule's rate limit at virtual time now.
func (st *ruleState) admit(now sim.Time, r *Rule) bool {
	if r.RatePerSec <= 0 {
		return true
	}
	burst := r.BurstFrames
	if burst <= 0 {
		burst = r.RatePerSec
	}
	if !st.inited {
		st.inited = true
		st.tokens = burst
		st.last = now
	}
	st.tokens += (now - st.last).Seconds() * r.RatePerSec
	if st.tokens > burst {
		st.tokens = burst
	}
	st.last = now
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

// domain is one attached IVN, bound to the gateway through a netif port.
// xlate/buf/in are per-domain scratch state so the zero-latency forward
// path translates without allocating.
type domain struct {
	name        string
	kind        netif.Kind
	port        netif.Port
	quarantined bool

	xlate netif.Frame // egress translation scratch
	buf   []byte      // egress encapsulation/padding scratch
	in    netif.Frame // ingress decapsulation scratch
}

// Gateway joins IVN domains with an ordered, updatable rule set. Rule-set
// updates at runtime are the extensibility hook: scenario E8 sweeps rule
// granularity, and the policy engine installs new rules in-field.
type Gateway struct {
	Name   string
	kernel *sim.Kernel

	domains map[string]*domain
	// order lists domain names in attach order: forward fans out over this
	// slice, not the map, so routing order (and everything downstream of
	// it — kernel dispatch order, bus arbitration, traces) is
	// deterministic.
	order []string
	rules []*Rule
	// states runs parallel to rules: states[i] is the limiter state and
	// verdict-string cache for rules[i].
	states []*ruleState
	// DefaultAction applies when no rule matches (Deny is the secure
	// default; a permissive gateway is the "no gateway" baseline).
	DefaultAction Action
	// Latency is the gateway's store-and-forward processing delay per
	// frame (rule evaluation, routing). 0 means instantaneous.
	Latency sim.Duration

	Forwarded   sim.Counter
	Blocked     sim.Counter
	RateLimited sim.Counter
	QuarDrops   sim.Counter
	// XlateDrops counts frames that matched an Allow rule but could not be
	// carried on a destination medium (payload too large, wrong tunnel).
	XlateDrops sim.Counter

	observers []func(at sim.Time, from string, f *netif.Frame, verdict string)

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base gwBaseline

	// verdictCache interns per-rule-name verdict strings across rule-set
	// installs. Pooled vehicles re-install the same scenario rule names
	// every acquire/run/release cycle, so after the first cycle SetRules
	// allocates no strings. Content-addressed by rule name, it survives
	// ResetToBaseline; names come from finite policy sets, so it stays
	// bounded.
	verdictCache map[string]verdictStrings

	// Observability (nil when off). Verdict and domain labels intern on
	// first sight and hit the tracer's label map afterwards, so the
	// per-frame emit is allocation-free once the verdict set is warm.
	obsTr  *obs.Tracer
	obsSub obs.Label // "gateway"
}

// New creates a gateway with a deny-by-default policy.
func New(k *sim.Kernel, name string) *Gateway {
	return &Gateway{Name: name, kernel: k, domains: make(map[string]*domain)}
}

// Errors.
var (
	ErrDupDomain     = errors.New("gateway: domain already attached")
	ErrUnknownDomain = errors.New("gateway: unknown domain")
)

// AttachDomain connects the gateway to a medium as the given domain name.
// The gateway joins the medium with its own port (on CAN: a controller
// named "gw-<gateway>-<domain>", preserving the historical node naming).
func (g *Gateway) AttachDomain(name string, m netif.Medium) error {
	if _, dup := g.domains[name]; dup {
		return fmt.Errorf("%w: %s", ErrDupDomain, name)
	}
	port, err := m.Open("gw-" + g.Name + "-" + name)
	if err != nil {
		return err
	}
	d := &domain{name: name, kind: m.Kind(), port: port}
	g.domains[name] = d
	g.order = append(g.order, name)
	port.OnReceive(func(at sim.Time, f *netif.Frame) {
		g.route(at, d, f)
	})
	return nil
}

// DomainKind reports the medium kind a domain is bound to.
func (g *Gateway) DomainKind(name string) (netif.Kind, bool) {
	d, ok := g.domains[name]
	if !ok {
		return 0, false
	}
	return d.kind, true
}

// verdictStrings is the per-rule-name verdict set, interned on the
// gateway so repeated rule installs reuse the same strings.
type verdictStrings struct {
	allowV, denyV, rateV string
}

// newState builds the gateway-owned state for one installed rule. Only
// the limiter state is fresh; the verdict strings intern per rule name.
func (g *Gateway) newState(r *Rule) *ruleState {
	vs, ok := g.verdictCache[r.Name]
	if !ok {
		vs = verdictStrings{
			allowV: "allow:" + r.Name,
			denyV:  "deny:" + r.Name,
			rateV:  "rate:" + r.Name,
		}
		if g.verdictCache == nil {
			g.verdictCache = make(map[string]verdictStrings)
		}
		g.verdictCache[r.Name] = vs
	}
	return &ruleState{allowV: vs.allowV, denyV: vs.denyV, rateV: vs.rateV}
}

// AddRule appends a rule to the ordered rule set.
func (g *Gateway) AddRule(r *Rule) {
	g.rules = append(g.rules, r)
	g.states = append(g.states, g.newState(r))
}

// SetRules replaces the entire rule set — the in-field update primitive.
// Limiter state is reset: new policy, fresh buckets.
func (g *Gateway) SetRules(rs []*Rule) {
	g.rules = rs
	g.states = make([]*ruleState, len(rs))
	for i, r := range rs {
		g.states[i] = g.newState(r)
	}
}

// Rules returns the active rule set (callers must not mutate entries
// concurrently with simulation).
func (g *Gateway) Rules() []*Rule { return g.rules }

// Quarantine isolates a domain: nothing routes in or out of it until
// Release. This is the containment action the paper assigns to the
// gateway when one IVN is compromised.
func (g *Gateway) Quarantine(name string) error {
	d, ok := g.domains[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, name)
	}
	d.quarantined = true
	return nil
}

// Release lifts a quarantine.
func (g *Gateway) Release(name string) error {
	d, ok := g.domains[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, name)
	}
	d.quarantined = false
	return nil
}

// Quarantined reports a domain's isolation state.
func (g *Gateway) Quarantined(name string) bool {
	d, ok := g.domains[name]
	return ok && d.quarantined
}

// Observe registers a verdict observer (feeds the IDS and audit logs).
// The *netif.Frame is only valid for the duration of the callback.
func (g *Gateway) Observe(fn func(at sim.Time, from string, f *netif.Frame, verdict string)) {
	g.observers = append(g.observers, fn)
}

func (g *Gateway) notify(at sim.Time, from string, f *netif.Frame, verdict string) {
	if g.obsTr != nil {
		g.obsTr.Instant(at, g.obsSub, g.obsTr.Label(verdict), g.obsTr.Label(from), int64(f.ID), 0)
	}
	for _, fn := range g.observers {
		fn(at, from, f, verdict)
	}
}

// Instrument attaches the gateway to the observability layer (either
// argument may be nil).
//
// Trace events (subsystem "gateway"): one instant per verdict, named with
// the verdict string ("allow:<rule>", "deny:<rule>", "rate:<rule>",
// "allow:default", "deny:default", "quarantined"), with Str = source
// domain and Arg1 = frame ID.
//
// Metrics: gateway/forwarded, gateway/blocked, gateway/rate_limited and
// gateway/quarantine_drops probe the existing counters; gateway/xlate_drops
// counts cross-medium translation failures.
func (g *Gateway) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	g.InstrumentAs(tr, reg, "gateway")
}

// InstrumentAs is Instrument under an explicit subsystem/metric prefix, so
// several gateways (zonal topologies: one per zone) can register against
// one registry without key collisions.
func (g *Gateway) InstrumentAs(tr *obs.Tracer, reg *obs.Registry, sub string) {
	if tr != nil {
		g.obsTr = tr
		g.obsSub = tr.Label(sub)
	}
	if reg != nil {
		reg.Probe(sub+"/forwarded", func() float64 { return float64(g.Forwarded.Value) })
		reg.Probe(sub+"/blocked", func() float64 { return float64(g.Blocked.Value) })
		reg.Probe(sub+"/rate_limited", func() float64 { return float64(g.RateLimited.Value) })
		reg.Probe(sub+"/quarantine_drops", func() float64 { return float64(g.QuarDrops.Value) })
		reg.Probe(sub+"/xlate_drops", func() float64 { return float64(g.XlateDrops.Value) })
	}
}

// route applies the rule set to a frame received from a domain.
func (g *Gateway) route(at sim.Time, from *domain, f *netif.Frame) {
	// Ingress translation: a tunnel frame routes by its inner identity, so
	// a CAN frame tunnelled over the Ethernet backbone is matched by the
	// same rules as its native form — the decapsulation half of the
	// DoIP-style bridging the egress path performs.
	if netif.IsTunnel(f) {
		if err := netif.Decapsulate(&from.in, f); err == nil {
			f = &from.in
		}
	}
	if from.quarantined {
		g.QuarDrops.Inc()
		g.notify(at, from.name, f, "quarantined")
		return
	}
	for i, r := range g.rules {
		if !r.matches(from.name, f) {
			continue
		}
		st := g.states[i]
		r.Matched.Inc()
		if r.Action == Deny {
			g.Blocked.Inc()
			g.notify(at, from.name, f, st.denyV)
			return
		}
		if !st.admit(at, r) {
			r.RateDrops.Inc()
			g.RateLimited.Inc()
			g.notify(at, from.name, f, st.rateV)
			return
		}
		g.forward(at, from, f, r.To)
		g.notify(at, from.name, f, st.allowV)
		return
	}
	if g.DefaultAction == Allow {
		g.forward(at, from, f, nil)
		g.notify(at, from.name, f, "allow:default")
		return
	}
	g.Blocked.Inc()
	g.notify(at, from.name, f, "deny:default")
}

// forward relays the frame to the destination domains (all others when
// dsts is empty), excluding the source and quarantined domains.
func (g *Gateway) forward(at sim.Time, from *domain, f *netif.Frame, dsts []string) {
	g.Forwarded.Inc()
	if len(dsts) == 0 {
		for _, name := range g.order {
			g.send(from, g.domains[name], f)
		}
		return
	}
	for _, name := range dsts {
		if d, ok := g.domains[name]; ok {
			g.send(from, d, f)
		}
	}
}

// send translates the frame for one destination domain and transmits it.
// The zero-latency path translates into the domain's scratch state and
// allocates nothing; the store-and-forward path clones per destination
// (the frame view does not survive the delay).
func (g *Gateway) send(from, d *domain, f *netif.Frame) {
	if d == from || d.quarantined {
		return
	}
	if g.Latency > 0 {
		frame := f.Clone()
		g.kernel.After(g.Latency, func() {
			var out netif.Frame
			var scratch []byte
			if err := netif.Translate(&out, &frame, d.kind, &scratch); err != nil {
				g.XlateDrops.Inc()
				return
			}
			// Best effort: bus-off or queue-full drops are the destination
			// port's problem and show up in its medium's counters.
			_ = d.port.Send(&out)
		})
		return
	}
	if err := netif.Translate(&d.xlate, f, d.kind, &d.buf); err != nil {
		g.XlateDrops.Inc()
		return
	}
	_ = d.port.Send(&d.xlate)
}
