// Command otactl drives OTA update campaigns against a simulated fleet
// and reports the outcome, including what an update-channel attacker
// achieves mid-campaign and what a stolen-key attacker achieves under
// each key-provisioning policy.
//
// Usage:
//
//	otactl campaign [-fleet N] [-models M] [-canary N] [-growth K]
//	                [-abort F] [-attack A] [-attack-from W]
//	                [-rotate-at W] [-rotate-on-blast] [-fleetpar P] [-seed S]
//	                                      staged rollout waves, optionally under attack
//	otactl attack [-fleet N] [-models M] [-policy shared|per-model|per-device]
//	                                      extract one key, try the whole fleet
//
// The campaign subcommand runs the internal/campaign engine: canary →
// ring → full waves over a pooled fleet, verify-once-per-campaign
// signature memoization, version skew from vehicles that missed the
// previous campaign, and the E22 attack matrix (freeze, rollback,
// imagekey, twokey) with abort thresholds and key rotation as the
// responses. The report is deterministic for a given flag set at any
// -fleetpar value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"autosec/internal/campaign"
	"autosec/internal/fleet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "campaign":
		cmdCampaign(os.Args[2:])
	case "attack":
		cmdAttack(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  otactl campaign [-fleet N] [-models M] [-canary N] [-growth K] [-abort F]
                  [-attack A] [-attack-from W] [-rotate-at W] [-rotate-on-blast]
                  [-fleetpar P] [-seed S]
                  staged rollout waves under an optional mid-campaign attack
                  A in {none, freeze, rollback, imagekey, twokey}
  otactl attack [-fleet N] [-models M] [-policy P]              assess stolen-key fleet compromise
                 P in {shared, per-model, per-device}
`)
	os.Exit(2)
}

func cmdCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	n := fs.Int("fleet", 400, "fleet size")
	models := fs.Int("models", 4, "model lines")
	canary := fs.Int("canary", 16, "canary (first wave) size")
	growth := fs.Int("growth", 4, "ring growth factor between waves")
	abort := fs.Float64("abort", 0.5, "abort threshold on a wave's compromised fraction (0 disables)")
	attackName := fs.String("attack", "none", "mid-campaign attack: none|freeze|rollback|imagekey|twokey")
	attackFrom := fs.Int("attack-from", 1, "first wave index the attack is active for")
	rotateAt := fs.Int("rotate-at", -1, "rotate the trust epoch before this wave index (-1: never)")
	rotateOnBlast := fs.Bool("rotate-on-blast", false, "rotate keys instead of aborting when a wave trips the abort threshold")
	fleetpar := fs.Int("fleetpar", 1, "fleet driver worker count (any value prints identical reports)")
	seed := fs.Uint64("seed", 1, "scenario seed")
	_ = fs.Parse(args)

	var kind campaign.AttackKind
	switch *attackName {
	case "none":
		kind = campaign.AttackNone
	case "freeze":
		kind = campaign.AttackFreeze
	case "rollback":
		kind = campaign.AttackRollback
	case "imagekey":
		kind = campaign.AttackImageKey
	case "twokey":
		kind = campaign.AttackTwoKey
	default:
		usage()
	}

	eng, err := campaign.New(campaign.Config{
		Fleet:   *n,
		Models:  *models,
		Workers: *fleetpar,
		Seed:    *seed,
		Strategy: campaign.Strategy{
			Name:           "otactl",
			Canary:         *canary,
			Growth:         *growth,
			AbortThreshold: *abort,
		},
		Attack:        campaign.AttackPlan{Kind: kind, FromWave: *attackFrom},
		RotateAtWave:  *rotateAt,
		RotateOnBlast: *rotateOnBlast,
	})
	if err != nil {
		fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
}

func cmdAttack(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	n := fs.Int("fleet", 1000, "fleet size")
	models := fs.Int("models", 10, "model lines")
	polName := fs.String("policy", "shared", "key provisioning: shared|per-model|per-device")
	_ = fs.Parse(args)

	var pol fleet.Policy
	switch *polName {
	case "shared":
		pol = fleet.SharedKey
	case "per-model":
		pol = fleet.PerModel
	case "per-device":
		pol = fleet.PerDevice
	default:
		usage()
	}

	var master [16]byte
	copy(master[:], "otactl-prod-master")
	f := fleet.New(*n, *models, pol, master)
	fmt.Printf("provisioned fleet of %d vehicles across %d models under %s keys\n", *n, *models, pol)
	fmt.Printf("attacker physically extracts the master key of %s (side-channel, see E2)\n", f.Vehicles[0].VIN)
	res := f.AssessCompromise(0)
	fmt.Printf("malicious SHE key loads accepted by %d/%d vehicles (%.1f%% of the fleet)\n",
		res.Compromised, res.FleetSize, 100*res.Fraction())
	switch pol {
	case fleet.SharedKey:
		fmt.Println("=> the paper's warning realized: one ECU compromise owns the whole class")
	case fleet.PerModel:
		fmt.Println("=> blast radius contained to the victim's model line")
	case fleet.PerDevice:
		fmt.Println("=> blast radius contained to the attacked vehicle only")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "otactl: %v\n", err)
	os.Exit(1)
}
