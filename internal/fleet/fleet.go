// Package fleet models bulk production and key provisioning — the paper's
// observation that "many electronic components are produced en masse with
// the same configuration of keys", so that "one compromised ECU can lead
// [to] potentially severe security compromise of a whole class".
//
// A fleet is a set of vehicles, each with a SHE engine, provisioned under
// one of three policies: a single shared master key, one key per model
// line, or a unique key per device (derived from a production master and
// the device UID, as real key-management systems do). Experiment E3
// extracts one vehicle's key by side channel and counts how much of the
// fleet an attacker can then push malicious key loads to.
package fleet

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/she"
)

// Policy selects the key provisioning strategy.
type Policy int

// Provisioning policies.
const (
	// SharedKey gives every vehicle the same MASTER_ECU_KEY — the cheap
	// default the paper warns about.
	SharedKey Policy = iota
	// PerModel shares a key within a model line only.
	PerModel
	// PerDevice derives a unique key per vehicle from the production
	// master and the device UID.
	PerDevice
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case SharedKey:
		return "shared-key"
	case PerModel:
		return "per-model"
	case PerDevice:
		return "per-device"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Vehicle is one fleet member.
type Vehicle struct {
	VIN    string
	Model  int
	Engine *she.Engine
	// masterKey is what the OEM key server knows for this vehicle; kept
	// here so tests and experiments can model the attacker extracting it
	// from the *device* via side channel.
	masterKey [16]byte
}

// MasterKey exposes the provisioned key — the quantity the side-channel
// attack recovers. Scenario code calls this only on the one physically
// attacked vehicle.
func (v *Vehicle) MasterKey() [16]byte { return v.masterKey }

// Fleet is the vehicle population.
type Fleet struct {
	Policy   Policy
	Vehicles []*Vehicle
}

// deriveKey implements the per-policy key schedule from a production
// master secret.
func deriveKey(master [16]byte, policy Policy, model int, uid she.UID) [16]byte {
	switch policy {
	case SharedKey:
		return master
	case PerModel:
		var c [16]byte
		binary.BigEndian.PutUint64(c[:8], uint64(model))
		return she.KDF(master, c)
	default: // PerDevice
		var c [16]byte
		copy(c[:15], uid[:])
		c[15] = byte(model)
		return she.KDF(master, c)
	}
}

// New provisions a fleet of n vehicles across the given number of model
// lines under the policy, from the production master secret.
func New(n, models int, policy Policy, master [16]byte) *Fleet {
	if models < 1 {
		models = 1
	}
	f := &Fleet{Policy: policy}
	for i := 0; i < n; i++ {
		var uid she.UID
		binary.BigEndian.PutUint64(uid[:8], uint64(i+1))
		model := i % models
		key := deriveKey(master, policy, model, uid)
		e := she.NewEngine(uid)
		e.ProvisionMasterKey(key)
		f.Vehicles = append(f.Vehicles, &Vehicle{
			VIN:       fmt.Sprintf("VIN-%06d", i+1),
			Model:     model,
			Engine:    e,
			masterKey: key,
		})
	}
	return f
}

// CompromiseResult summarizes an extraction campaign.
type CompromiseResult struct {
	Policy        Policy
	FleetSize     int
	Compromised   int
	AttackedVIN   string
	AttackedModel int
}

// Fraction reports the compromised share of the fleet.
func (r CompromiseResult) Fraction() float64 {
	if r.FleetSize == 0 {
		return 0
	}
	return float64(r.Compromised) / float64(r.FleetSize)
}

// RotateKeys is the recovery action after a compromise: the OEM key
// server re-provisions every vehicle's MASTER_ECU_KEY from a new
// production master, using the SHE memory-update protocol authorized by
// each vehicle's *current* key (self-rotation). Vehicles whose current
// key the server no longer knows — e.g. already hijacked by the attacker
// — fail the update and are returned for out-of-band recovery.
func (f *Fleet) RotateKeys(newMaster [16]byte) (rotated int, failed []string) {
	for _, v := range f.Vehicles {
		newKey := deriveKey(newMaster, f.Policy, v.Model, v.Engine.UID())
		_, _, counter := v.Engine.KeyState(she.MasterECUKey)
		req, err := she.BuildUpdate(v.Engine.UID(), she.MasterECUKey, she.MasterECUKey,
			v.masterKey, newKey, counter+1, she.Flags{})
		if err != nil {
			failed = append(failed, v.VIN)
			continue
		}
		if _, err := v.Engine.LoadKey(req); err != nil {
			failed = append(failed, v.VIN)
			continue
		}
		v.masterKey = newKey
		rotated++
	}
	return rotated, failed
}

// AssessCompromise models the E3 chain: the attacker has physically
// extracted the master key of Vehicles[victim] and now attempts an
// authenticated malicious key load (SHE M1–M3 with a fresh counter)
// against every vehicle in the fleet. A vehicle counts as compromised if
// the load is accepted.
func (f *Fleet) AssessCompromise(victim int) CompromiseResult {
	stolen := f.Vehicles[victim].MasterKey()
	res := CompromiseResult{
		Policy:        f.Policy,
		FleetSize:     len(f.Vehicles),
		AttackedVIN:   f.Vehicles[victim].VIN,
		AttackedModel: f.Vehicles[victim].Model,
	}
	var evil [16]byte
	for i := range evil {
		evil[i] = 0xE0 | byte(i)
	}
	for _, v := range f.Vehicles {
		_, _, counter := v.Engine.KeyState(she.Key1)
		req, err := she.BuildUpdate(v.Engine.UID(), she.Key1, she.MasterECUKey, stolen, evil, counter+1, she.Flags{KeyUsage: true})
		if err != nil {
			continue
		}
		if _, err := v.Engine.LoadKey(req); err == nil {
			res.Compromised++
		}
	}
	return res
}
