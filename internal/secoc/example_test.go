package secoc_test

import (
	"fmt"

	"autosec/internal/secoc"
)

// Example shows one secured-PDU round trip and the replay rejection that
// the freshness counter provides.
func Example() {
	var key [16]byte
	copy(key[:], "example-ivn-key!")
	cfg := secoc.Config{DataID: 0x123, FreshnessBits: 8, MACBits: 32}
	sender, _ := secoc.NewSender(cfg, secoc.KeyMAC(key))
	receiver, _ := secoc.NewReceiver(cfg, secoc.KeyMAC(key))

	pdu, _ := sender.Protect([]byte{0x10, 0x20})
	payload, err := receiver.Verify(pdu)
	fmt.Printf("payload=%x err=%v\n", payload, err)

	_, err = receiver.Verify(pdu) // replayed
	fmt.Println("replay rejected:", err != nil)
	// Output:
	// payload=1020 err=<nil>
	// replay rejected: true
}
