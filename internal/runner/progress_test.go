package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestMapProgressReportsEveryReplicate pins the Progress contract: one
// serialized call per replicate, done strictly increasing 1..total, and
// identical seed-ordered results to plain Map.
func TestMapProgressReportsEveryReplicate(t *testing.T) {
	seeds := Seeds(100, 17)
	var calls []int
	var total int
	results, err := MapProgress(context.Background(), seeds, 4,
		func(done, n int) { calls = append(calls, done); total = n },
		func(_ context.Context, seed uint64) (uint64, error) { return seed * 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	if total != len(seeds) {
		t.Fatalf("progress total = %d, want %d", total, len(seeds))
	}
	if len(calls) != len(seeds) {
		t.Fatalf("progress fired %d times, want %d", len(calls), len(seeds))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not strictly increasing from 1", calls)
		}
	}
	for i, r := range results {
		if r.Seed != seeds[i] || r.Value != seeds[i]*3 || r.Err != nil {
			t.Fatalf("result %d = %+v, want seed-ordered value", i, r)
		}
	}
}

// TestMapProgressReachesTotalOnCancellation: replicates never handed to a
// worker still count toward done == total, so progress displays complete.
func TestMapProgressReachesTotalOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	seeds := Seeds(1, 50)
	var mu sync.Mutex
	last := 0
	_, err := MapProgress(ctx, seeds, 2,
		func(done, n int) { mu.Lock(); last = done; mu.Unlock() },
		func(c context.Context, seed uint64) (int, error) {
			if seed == 3 {
				cancel()
			}
			return int(seed), nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if last != len(seeds) {
		t.Fatalf("final progress done = %d, want %d", last, len(seeds))
	}
}

// TestMapNilProgressUnchanged: Map delegates with a nil Progress and
// keeps its original behavior.
func TestMapNilProgressUnchanged(t *testing.T) {
	results, err := Map(context.Background(), Seeds(7, 5), 0,
		func(_ context.Context, seed uint64) (uint64, error) { return seed, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != 7+uint64(i) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}
