package flexray

import (
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// This file adapts the FlexRay cluster to the netif transport fabric. Slot
// numbers become the routable identifier and the cycle counter rides in
// Aux, so rules and detectors can match on (FlexRay, slot).

// FrameToNetif fills out with the fabric view of f. The payload aliases
// f.Payload (zero-copy).
func FrameToNetif(f *Frame, out *netif.Frame) {
	var flags uint16
	if f.NullFrame {
		flags |= netif.FlagNull
	}
	if f.Dynamic {
		flags |= netif.FlagDynamic
	}
	*out = netif.Frame{
		Medium:   netif.FlexRay,
		ID:       uint32(f.Slot),
		Flags:    flags,
		Aux:      uint32(f.Cycle),
		Priority: uint32(f.Slot),
		Sender:   f.Sender,
		Payload:  f.Payload,
	}
}

// FrameFromNetif converts a fabric frame back to a native FlexRay frame.
// The payload is aliased, not copied.
func FrameFromNetif(nf *netif.Frame) (Frame, error) {
	if nf.Medium != netif.FlexRay {
		return Frame{}, fmt.Errorf("flexray: cannot convert %s frame", nf.Medium)
	}
	if nf.ID == 0 || nf.ID > 0x7FF {
		return Frame{}, fmt.Errorf("%w: %d", ErrSlotRange, nf.ID)
	}
	if len(nf.Payload) > 254 || len(nf.Payload)%2 != 0 {
		return Frame{}, fmt.Errorf("%w: %d", ErrPayloadRange, len(nf.Payload))
	}
	return Frame{
		Slot:      SlotID(nf.ID),
		Cycle:     int(nf.Aux),
		Payload:   nf.Payload,
		Sender:    nf.Sender,
		NullFrame: nf.Flags&netif.FlagNull != 0,
		Dynamic:   nf.Flags&netif.FlagDynamic != 0,
	}, nil
}

// netifMedium adapts a Cluster to netif.Medium.
type netifMedium struct {
	cluster    *Cluster
	tapScratch netif.Frame
}

// Netif returns the fabric view of the cluster: ports transmit in the
// dynamic segment (the slot number is the priority) and hear every frame.
func Netif(c *Cluster) netif.Medium { return &netifMedium{cluster: c} }

func (m *netifMedium) Kind() netif.Kind { return netif.FlexRay }
func (m *netifMedium) Name() string     { return m.cluster.Name }

func (m *netifMedium) Open(name string) (netif.Port, error) {
	return &netifPort{cluster: m.cluster, name: name}, nil
}

func (m *netifMedium) Tap(fn netif.TapFunc) {
	m.cluster.OnReceive(func(at sim.Time, f Frame) {
		FrameToNetif(&f, &m.tapScratch)
		// Collided slots deliver nothing, so every observed frame is intact.
		fn(at, &m.tapScratch, false)
	})
}

// netifPort is one fabric attachment on the cluster. FlexRay receivers see
// every frame on the channel; the port filters its own transmissions by
// sender name so gateways do not re-route what they just forwarded.
type netifPort struct {
	cluster     *Cluster
	name        string
	recvScratch netif.Frame
}

func (p *netifPort) Name() string     { return p.name }
func (p *netifPort) Kind() netif.Kind { return netif.FlexRay }

func (p *netifPort) Send(f *netif.Frame) error {
	nf, err := FrameFromNetif(f)
	if err != nil {
		return err
	}
	return p.cluster.SendDynamic(nf.Slot, p.name, nf.Payload)
}

func (p *netifPort) OnReceive(fn netif.RecvFunc) {
	p.cluster.OnReceive(func(at sim.Time, f Frame) {
		if f.Sender == p.name {
			return
		}
		FrameToNetif(&f, &p.recvScratch)
		fn(at, &p.recvScratch)
	})
}
