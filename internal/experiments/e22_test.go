package experiments

import "testing"

// TestE22WorkerCountInvariance: the campaign sweep — wave tallies,
// terminal outcomes, abort/rotation responses and the verification-cache
// counters — must be byte-identical whether each wave runs on one fleet
// worker or eight. (CI additionally byte-diffs the benchreport-generated
// table across -fleetpar values, and the race job runs the campaign
// package's own equivalence test under -race.)
func TestE22WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("drives 24 full campaigns; skipped in -short mode")
	}
	a := E22CampaignWith(3, 1).String()
	b := E22CampaignWith(3, 8).String()
	if a != b {
		t.Fatalf("E22 table differs between 1 and 8 workers:\n--- par=1\n%s\n--- par=8\n%s", a, b)
	}
}

// TestE22SeedInvariantStructure pins the cross-seed stability the
// replication machinery relies on: every cell of E22 is a function of
// index predicates and published-artifact counts, never of seed-derived
// randomness, so two different seeds must produce identical tables and
// multi-seed replication aggregates with zero variance.
func TestE22SeedInvariantStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("drives 24 full campaigns; skipped in -short mode")
	}
	a := E22Campaign(1).String()
	b := E22Campaign(99).String()
	if a != b {
		t.Fatalf("E22 cells drifted with the seed — a string cell must have picked up seed-derived state:\n--- seed=1\n%s\n--- seed=99\n%s", a, b)
	}
}
