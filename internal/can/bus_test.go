package can

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

func newTestBus(t *testing.T, nodes ...string) (*sim.Kernel, *Bus, []*Controller) {
	t.Helper()
	k := sim.NewKernel(1)
	b := NewBus(k, "test", 500_000)
	var cs []*Controller
	for _, n := range nodes {
		c := NewController(n)
		b.Attach(c)
		cs = append(cs, c)
	}
	return k, b, cs
}

func TestBusDeliversToAllOtherNodes(t *testing.T) {
	k, _, cs := newTestBus(t, "a", "b", "c")
	// The delivered *Frame is only valid for the duration of the callback
	// (its payload buffer is recycled after delivery), so retain a clone.
	var gotB, gotC *Frame
	cs[1].OnReceive(func(_ sim.Time, f *Frame, _ *Controller) { c := f.Clone(); gotB = &c })
	cs[2].OnReceive(func(_ sim.Time, f *Frame, _ *Controller) { c := f.Clone(); gotC = &c })
	var echoedToSender bool
	cs[0].OnReceive(func(_ sim.Time, _ *Frame, _ *Controller) { echoedToSender = true })

	want := Frame{ID: 0x123, Data: []byte{7}}
	if err := cs[0].Send(want, nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if gotB == nil || !gotB.Equal(&want) {
		t.Fatalf("node b got %v", gotB)
	}
	if gotC == nil || !gotC.Equal(&want) {
		t.Fatalf("node c got %v", gotC)
	}
	if echoedToSender {
		t.Fatal("frame echoed back to its sender")
	}
}

func TestBusArbitrationLowestIDWins(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b", "c")
	trace := Recorder(b)
	// Enqueue in reverse priority order at the same instant.
	_ = cs[0].Send(Frame{ID: 0x300}, nil)
	_ = cs[1].Send(Frame{ID: 0x100}, nil)
	_ = cs[2].Send(Frame{ID: 0x200}, nil)
	_ = k.Run()
	if trace.Len() != 3 {
		t.Fatalf("trace has %d frames", trace.Len())
	}
	wantOrder := []ID{0x100, 0x200, 0x300}
	for i, id := range wantOrder {
		if trace.Records[i].Frame.ID != id {
			t.Fatalf("frame %d has ID %#x, want %#x", i, trace.Records[i].Frame.ID, id)
		}
	}
}

func TestBusFrameTiming(t *testing.T) {
	k, _, cs := newTestBus(t, "a", "b")
	f := Frame{ID: 0x123, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}
	wireBits, err := WireLength(&f)
	if err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	cs[1].OnReceive(func(now sim.Time, _ *Frame, _ *Controller) { at = now })
	_ = cs[0].Send(f, nil)
	_ = k.Run()
	// 500 kbit/s → 2000 ns per bit.
	want := sim.Time(wireBits) * 2000
	if at != want {
		t.Fatalf("delivery at %v, want %v (%d bits)", at, want, wireBits)
	}
}

func TestBusLoadAccounting(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b")
	stop := PeriodicSender(k, cs[0], Frame{ID: 0x100, Data: make([]byte, 8)}, 10*sim.Millisecond, 0)
	defer stop()
	_ = k.RunUntil(sim.Second)
	load := b.Load()
	// ~130 bits * 2us = 260us every 10ms → ~2.6% load.
	if load < 0.01 || load > 0.05 {
		t.Fatalf("load=%.4f, want ~0.026", load)
	}
	if b.FramesOK.Value < 95 || b.FramesOK.Value > 105 {
		t.Fatalf("frames=%d, want ~100", b.FramesOK.Value)
	}
}

func TestBusAcceptanceFilter(t *testing.T) {
	k, _, cs := newTestBus(t, "a", "b")
	cs[1].SetFilter(MaskFilter(0x100, 0x700))
	var got []ID
	cs[1].OnReceive(func(_ sim.Time, f *Frame, _ *Controller) { got = append(got, f.ID) })
	for _, id := range []ID{0x100, 0x1FF, 0x200, 0x555} {
		_ = cs[0].Send(Frame{ID: id}, nil)
	}
	_ = k.Run()
	if len(got) != 2 || got[0] != 0x100 || got[1] != 0x1FF {
		t.Fatalf("filtered receive got %v", got)
	}
	// All four frames still crossed the wire.
	if cs[0].FramesSent.Value != 4 {
		t.Fatalf("sent=%d", cs[0].FramesSent.Value)
	}
}

func TestBusErrorCountersAndBusOff(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b")
	b.BitErrorRate = 1 // every frame is corrupted
	var delivered int
	cs[1].OnReceive(func(_ sim.Time, _ *Frame, _ *Controller) { delivered++ })
	_ = cs[0].Send(Frame{ID: 0x100}, nil)
	_ = k.RunUntil(sim.Second)

	if delivered != 0 {
		t.Fatalf("corrupted frames were delivered: %d", delivered)
	}
	if cs[0].State() != BusOff {
		t.Fatalf("sender state=%v, want bus-off (TEC=%d)", cs[0].State(), tec(cs[0]))
	}
	if cs[0].BusOffEvents.Value != 1 {
		t.Fatalf("bus-off events=%d", cs[0].BusOffEvents.Value)
	}
	// 255/8 = ~32 failed attempts to reach bus-off.
	if b.FramesErrored.Value < 30 || b.FramesErrored.Value > 35 {
		t.Fatalf("errored frames=%d", b.FramesErrored.Value)
	}
	// Receiver accumulated REC but stays operational below 128... with 32
	// errors REC=32.
	_, rec := cs[1].Counters()
	if rec < 30 || rec > 35 {
		t.Fatalf("receiver REC=%d", rec)
	}
	if cs[1].State() != ErrorActive {
		t.Fatalf("receiver state=%v", cs[1].State())
	}
}

func tec(c *Controller) int { t, _ := c.Counters(); return t }

func TestBusOffSendFailsAndResetRecovers(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b")
	b.BitErrorRate = 1
	_ = cs[0].Send(Frame{ID: 0x100}, nil)
	_ = k.RunUntil(sim.Second)
	if cs[0].State() != BusOff {
		t.Fatal("precondition: not bus-off")
	}
	if err := cs[0].Send(Frame{ID: 0x101}, nil); !errors.Is(err, ErrBusOff) {
		t.Fatalf("Send while bus-off: err=%v", err)
	}
	b.BitErrorRate = 0
	cs[0].Reset()
	if cs[0].State() != ErrorActive {
		t.Fatal("Reset did not restore error-active")
	}
	var got int
	cs[1].OnReceive(func(_ sim.Time, _ *Frame, _ *Controller) { got++ })
	if err := cs[0].Send(Frame{ID: 0x102}, nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if got != 1 {
		t.Fatalf("post-reset delivery count=%d", got)
	}
}

func TestBusErrorPassiveTransition(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b")
	b.BitErrorRate = 1
	_ = cs[0].Send(Frame{ID: 0x100}, nil)
	// Run until TEC exceeds 127 but not 255: 16 retransmissions * 8 = 128.
	for i := 0; i < 16; i++ {
		_ = k.RunUntil(k.Now() + 300*sim.Microsecond)
	}
	if cs[0].State() != ErrorPassive && cs[0].State() != BusOff {
		t.Fatalf("state=%v after sustained errors (TEC=%d)", cs[0].State(), tec(cs[0]))
	}
}

func TestQueueFull(t *testing.T) {
	_, _, cs := newTestBus(t, "a", "b")
	cs[0].MaxQueue = 2
	if err := cs[0].Send(Frame{ID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	// First frame may already be "on the wire"; queue the rest without
	// running the kernel so they pile up.
	_ = cs[0].Send(Frame{ID: 2}, nil)
	var errFull error
	for i := 0; i < 5; i++ {
		if err := cs[0].Send(Frame{ID: 3}, nil); err != nil {
			errFull = err
			break
		}
	}
	if !errors.Is(errFull, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", errFull)
	}
	if cs[0].FramesDropped.Value == 0 {
		t.Fatal("dropped counter not incremented")
	}
}

func TestSendValidates(t *testing.T) {
	_, _, cs := newTestBus(t, "a", "b")
	if err := cs[0].Send(Frame{ID: 0x800}, nil); !errors.Is(err, ErrIDRange) {
		t.Fatalf("err=%v", err)
	}
	detached := NewController("x")
	if err := detached.Send(Frame{ID: 1}, nil); err == nil {
		t.Fatal("detached controller Send succeeded")
	}
}

func TestDoneCallback(t *testing.T) {
	k, _, cs := newTestBus(t, "a", "b")
	var doneAt sim.Time = -1
	_ = cs[0].Send(Frame{ID: 0x10}, func(at sim.Time) { doneAt = at })
	_ = k.Run()
	if doneAt <= 0 {
		t.Fatalf("done callback at %v", doneAt)
	}
}

func TestHigherPriorityPreemptsQueueNotWire(t *testing.T) {
	// A frame already on the wire finishes even if a lower-ID frame
	// arrives mid-transmission; the new frame wins the next round.
	k, b, cs := newTestBus(t, "a", "b")
	trace := Recorder(b)
	_ = cs[0].Send(Frame{ID: 0x400, Data: make([]byte, 8)}, nil)
	k.After(10*sim.Microsecond, func() {
		_ = cs[1].Send(Frame{ID: 0x001}, nil)
	})
	// Node a also queues a second low-priority frame at t=0.
	_ = cs[0].Send(Frame{ID: 0x500}, nil)
	_ = k.Run()
	wantOrder := []ID{0x400, 0x001, 0x500}
	if trace.Len() != 3 {
		t.Fatalf("trace len=%d", trace.Len())
	}
	for i, id := range wantOrder {
		if trace.Records[i].Frame.ID != id {
			t.Fatalf("order[%d]=%#x, want %#x", i, trace.Records[i].Frame.ID, id)
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	k, b, cs := newTestBus(t, "a", "b")
	trace := Recorder(b)
	stop := PeriodicSender(k, cs[0], Frame{ID: 0x111}, 10*sim.Millisecond, 0)
	_ = k.RunUntil(100 * sim.Millisecond)
	stop()
	ids := trace.IDs()
	if len(ids) != 1 || ids[0] != 0x111 {
		t.Fatalf("IDs=%v", ids)
	}
	ivs := trace.Intervals(0x111)
	if len(ivs) < 8 {
		t.Fatalf("only %d intervals", len(ivs))
	}
	for _, iv := range ivs {
		if iv != 10*sim.Millisecond {
			t.Fatalf("interval %v, want 10ms", iv)
		}
	}
	mid := trace.Between(20*sim.Millisecond, 50*sim.Millisecond)
	if len(mid) != 3 {
		t.Fatalf("Between returned %d records", len(mid))
	}
	if trace.String() == "" {
		t.Fatal("empty trace dump")
	}
}

func TestFDFrameOnBusUsesDataBitrate(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus(k, "fd", 500_000)
	b.SetDataBitrate(2_000_000)
	a, c := NewController("a"), NewController("b")
	b.Attach(a)
	b.Attach(c)
	var atBRS sim.Time
	c.OnReceive(func(now sim.Time, _ *Frame, _ *Controller) { atBRS = now })
	payload := make([]byte, 64)
	_ = a.Send(Frame{ID: 0x50, FD: true, BRS: true, Data: payload}, nil)
	_ = k.Run()

	k2 := sim.NewKernel(1)
	b2 := NewBus(k2, "fd2", 500_000)
	b2.SetDataBitrate(500_000) // no speedup
	a2, c2 := NewController("a"), NewController("b")
	b2.Attach(a2)
	b2.Attach(c2)
	var atSlow sim.Time
	c2.OnReceive(func(now sim.Time, _ *Frame, _ *Controller) { atSlow = now })
	_ = a2.Send(Frame{ID: 0x50, FD: true, BRS: true, Data: payload}, nil)
	_ = k2.Run()

	if atBRS >= atSlow {
		t.Fatalf("BRS at 4x rate not faster: %v vs %v", atBRS, atSlow)
	}
}
