// Package sensors models the ADAS sensing substrate of the paper's
// Section 2 — GPS, wheel-speed, tire-pressure (TPMS) and LIDAR sensors —
// together with the spoofing attacks of Section 4.1 (GPS spoofing [9,18],
// LIDAR spoofing [7], TPMS injection [11]) and a sensor-fusion module
// that applies cross-sensor plausibility checks to detect them.
//
// Every sensor reads a shared ground truth and adds its own noise; a
// spoofer, when armed, replaces the sensor's view of the world. The
// fusion module never sees ground truth — only sensor outputs — which is
// what makes its detections honest.
package sensors

import (
	"fmt"
	"math"

	"autosec/internal/sim"
)

// Position is a point on the plane, metres.
type Position struct{ X, Y float64 }

// Dist is the Euclidean distance.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// VehicleState is the ground truth at an instant.
type VehicleState struct {
	Pos          Position
	SpeedMS      float64
	ObstacleDist float64 // distance to the nearest ahead obstacle; +Inf if none
}

// TruthFunc supplies ground truth at a virtual time.
type TruthFunc func(at sim.Time) VehicleState

// GPS is a position/speed sensor with Gaussian noise and an optional
// spoofing override.
type GPS struct {
	NoiseM     float64
	NoiseSpeed float64
	// Spoof, when non-nil and returning true, replaces the reading — the
	// portable civilian GPS spoofer of [9].
	Spoof func(at sim.Time) (Position, float64, bool)

	rng *sim.Stream
}

// NewGPS creates a GPS with the given noise, drawing from the stream.
func NewGPS(noiseM, noiseSpeed float64, rng *sim.Stream) *GPS {
	return &GPS{NoiseM: noiseM, NoiseSpeed: noiseSpeed, rng: rng}
}

// Read returns the sensed position and speed.
func (g *GPS) Read(at sim.Time, truth VehicleState) (Position, float64) {
	if g.Spoof != nil {
		if p, s, ok := g.Spoof(at); ok {
			return p, s
		}
	}
	return Position{
		X: truth.Pos.X + g.rng.NormSigma(0, g.NoiseM),
		Y: truth.Pos.Y + g.rng.NormSigma(0, g.NoiseM),
	}, truth.SpeedMS + g.rng.NormSigma(0, g.NoiseSpeed)
}

// WheelSpeed is the odometry sensor: hard to spoof remotely, so it is the
// fusion module's anchor.
type WheelSpeed struct {
	Noise float64
	rng   *sim.Stream
}

// NewWheelSpeed creates the sensor.
func NewWheelSpeed(noise float64, rng *sim.Stream) *WheelSpeed {
	return &WheelSpeed{Noise: noise, rng: rng}
}

// Read returns the sensed speed.
func (w *WheelSpeed) Read(at sim.Time, truth VehicleState) float64 {
	return truth.SpeedMS + w.rng.NormSigma(0, w.Noise)
}

// TPMSReading is one tire-pressure broadcast. Real TPMS sensors transmit
// an unauthenticated ID + pressure, which is why injection works [11].
type TPMSReading struct {
	SensorID uint32
	KPa      float64
}

// Lidar senses the distance to the nearest obstacle ahead; the spoofer of
// [7] can inject phantom points or blind the sensor.
type Lidar struct {
	Noise float64
	// Spoof, when non-nil and returning true, replaces the reading.
	Spoof func(at sim.Time) (float64, bool)
	rng   *sim.Stream
}

// NewLidar creates the sensor.
func NewLidar(noise float64, rng *sim.Stream) *Lidar {
	return &Lidar{Noise: noise, rng: rng}
}

// Read returns the sensed obstacle distance.
func (l *Lidar) Read(at sim.Time, truth VehicleState) float64 {
	if l.Spoof != nil {
		if d, ok := l.Spoof(at); ok {
			return d
		}
	}
	if math.IsInf(truth.ObstacleDist, 1) {
		return truth.ObstacleDist
	}
	return truth.ObstacleDist + l.rng.NormSigma(0, l.Noise)
}

// AnomalyKind classifies fusion findings.
type AnomalyKind string

// Anomaly kinds raised by the fusion module.
const (
	AnomalyGPSSpeedMismatch AnomalyKind = "gps-speed-mismatch"
	AnomalyGPSJump          AnomalyKind = "gps-position-jump"
	AnomalyTPMSUnknownID    AnomalyKind = "tpms-unknown-sensor"
	AnomalyTPMSRange        AnomalyKind = "tpms-pressure-range"
	AnomalyLidarGhost       AnomalyKind = "lidar-ghost-obstacle"
)

// Anomaly is one fusion finding.
type Anomaly struct {
	At     sim.Time
	Kind   AnomalyKind
	Detail string
}

// Fusion cross-checks sensor streams. It holds only sensor-derived state.
type Fusion struct {
	// SpeedTolerance is the accepted |GPS speed - wheel speed| in m/s.
	SpeedTolerance float64
	// MaxAccel bounds feasible position change: a GPS fix implying more
	// than this acceleration from the last fix is a jump.
	MaxAccel float64
	// GPSNoiseFloorM is the expected per-fix position uncertainty; the
	// jump check allows 2×floor of displacement error between fixes, so
	// short-interval noise does not read as teleportation.
	GPSNoiseFloorM float64
	// TPMSMin/Max bound plausible tire pressure in kPa.
	TPMSMin, TPMSMax float64
	// LidarClosingMax bounds the feasible closing speed of an obstacle in
	// m/s; a phantom appearing closer than physics allows is a ghost.
	LidarClosingMax float64

	registeredTPMS map[uint32]bool

	lastGPSAt   sim.Time
	lastGPSPos  Position
	haveGPS     bool
	lastWheel   float64
	haveWheel   bool
	lastLidarAt sim.Time
	lastLidar   float64
	haveLidar   bool

	Anomalies []Anomaly
}

// NewFusion creates a fusion module with production-plausible thresholds.
func NewFusion() *Fusion {
	return &Fusion{
		SpeedTolerance:  5,
		MaxAccel:        12, // m/s^2, beyond any road car
		GPSNoiseFloorM:  10,
		TPMSMin:         100,
		TPMSMax:         450,
		LidarClosingMax: 90, // m/s
		registeredTPMS:  make(map[uint32]bool),
	}
}

// ResetState rewinds the fusion module to its post-NewFusion state for
// pooled reuse: default thresholds, no paired TPMS sensors, no sensor
// history, no anomalies.
func (f *Fusion) ResetState() {
	f.SpeedTolerance = 5
	f.MaxAccel = 12
	f.GPSNoiseFloorM = 10
	f.TPMSMin = 100
	f.TPMSMax = 450
	f.LidarClosingMax = 90
	for id := range f.registeredTPMS {
		delete(f.registeredTPMS, id)
	}
	f.lastGPSAt = 0
	f.lastGPSPos = Position{}
	f.haveGPS = false
	f.lastWheel = 0
	f.haveWheel = false
	f.lastLidarAt = 0
	f.lastLidar = 0
	f.haveLidar = false
	for i := range f.Anomalies {
		f.Anomalies[i] = Anomaly{}
	}
	f.Anomalies = f.Anomalies[:0]
}

// RegisterTPMS pairs a wheel sensor ID with the vehicle.
func (f *Fusion) RegisterTPMS(id uint32) { f.registeredTPMS[id] = true }

func (f *Fusion) flag(at sim.Time, kind AnomalyKind, format string, args ...any) {
	f.Anomalies = append(f.Anomalies, Anomaly{At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// IngestWheel records the odometry anchor.
func (f *Fusion) IngestWheel(at sim.Time, speed float64) {
	f.lastWheel = speed
	f.haveWheel = true
}

// IngestGPS checks a GPS fix against odometry and kinematics.
func (f *Fusion) IngestGPS(at sim.Time, pos Position, speed float64) {
	if f.haveWheel && math.Abs(speed-f.lastWheel) > f.SpeedTolerance {
		f.flag(at, AnomalyGPSSpeedMismatch, "gps %.1f m/s vs wheel %.1f m/s", speed, f.lastWheel)
	}
	if f.haveGPS {
		dt := (at - f.lastGPSAt).Seconds()
		if dt > 0 {
			implied := pos.Dist(f.lastGPSPos) / dt
			// Max feasible displacement speed from the last fix: the
			// anchored wheel speed plus accel*dt headroom.
			base := f.lastWheel
			if !f.haveWheel {
				base = speed
			}
			if implied > base+f.MaxAccel*dt+f.SpeedTolerance+2*f.GPSNoiseFloorM/dt {
				f.flag(at, AnomalyGPSJump, "implied %.1f m/s over %.2fs", implied, dt)
			}
		}
	}
	f.lastGPSAt = at
	f.lastGPSPos = pos
	f.haveGPS = true
}

// IngestTPMS checks a tire-pressure broadcast.
func (f *Fusion) IngestTPMS(at sim.Time, r TPMSReading) {
	if !f.registeredTPMS[r.SensorID] {
		f.flag(at, AnomalyTPMSUnknownID, "sensor %#x not paired", r.SensorID)
		return
	}
	if r.KPa < f.TPMSMin || r.KPa > f.TPMSMax {
		f.flag(at, AnomalyTPMSRange, "pressure %.0f kPa", r.KPa)
	}
}

// IngestLidar checks obstacle-distance continuity.
func (f *Fusion) IngestLidar(at sim.Time, dist float64) {
	defer func() {
		f.lastLidarAt = at
		f.lastLidar = dist
		f.haveLidar = true
	}()
	if !f.haveLidar || math.IsInf(dist, 1) {
		return
	}
	dt := (at - f.lastLidarAt).Seconds()
	if dt <= 0 {
		return
	}
	prev := f.lastLidar
	if math.IsInf(prev, 1) {
		// An obstacle materialising from nothing closer than the horizon
		// the closing bound allows is a ghost.
		if dist < f.LidarClosingMax*dt*10 {
			f.flag(at, AnomalyLidarGhost, "obstacle appeared at %.1fm", dist)
		}
		return
	}
	closing := (prev - dist) / dt
	if closing > f.LidarClosingMax {
		f.flag(at, AnomalyLidarGhost, "closing at %.0f m/s", closing)
	}
}

// CountByKind tallies anomalies per kind.
func (f *Fusion) CountByKind() map[AnomalyKind]int {
	out := make(map[AnomalyKind]int)
	for _, a := range f.Anomalies {
		out[a.Kind]++
	}
	return out
}
