package ecu

import (
	"math"
	"testing"

	"autosec/internal/sim"
)

func TestSingleTaskMeetsDeadlines(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	task := &Task{Name: "control", Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond}
	stop, err := c.AddTask(task)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(sim.Second)
	stop()
	if task.Releases.Value < 99 || task.Misses.Value != 0 {
		t.Fatalf("releases=%d misses=%d", task.Releases.Value, task.Misses.Value)
	}
	// Response time equals WCET with no contention.
	if r := task.Response.Mean(); math.Abs(r-2) > 0.01 {
		t.Fatalf("mean response %.3f ms", r)
	}
	// Utilization ~20%.
	if u := c.Utilization(); u < 0.18 || u > 0.22 {
		t.Fatalf("utilization %.3f", u)
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	hi := &Task{Name: "hi", Period: 10 * sim.Millisecond, WCET: 3 * sim.Millisecond, Priority: 0}
	lo := &Task{Name: "lo", Period: 50 * sim.Millisecond, WCET: 20 * sim.Millisecond, Priority: 1}
	s1, _ := c.AddTask(hi)
	s2, _ := c.AddTask(lo)
	_ = k.RunUntil(sim.Second)
	s1()
	s2()
	// hi always meets its deadline despite lo's long jobs.
	if hi.Misses.Value != 0 {
		t.Fatalf("hi misses=%d", hi.Misses.Value)
	}
	// lo is preempted: its response exceeds its WCET.
	if lo.Response.Mean() <= 20 {
		t.Fatalf("lo mean response %.3f ms — no preemption visible", lo.Response.Mean())
	}
	// Total utilization = 0.3 + 0.4 = 0.7, schedulable; lo completes all.
	if lo.Misses.Value != 0 {
		t.Fatalf("lo misses=%d", lo.Misses.Value)
	}
}

func TestOverloadMissesDeadlines(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	a := &Task{Name: "a", Period: 10 * sim.Millisecond, WCET: 7 * sim.Millisecond, Priority: 0}
	b := &Task{Name: "b", Period: 10 * sim.Millisecond, WCET: 7 * sim.Millisecond, Priority: 1}
	s1, _ := c.AddTask(a)
	s2, _ := c.AddTask(b)
	_ = k.RunUntil(sim.Second)
	s1()
	s2()
	if a.Misses.Value != 0 {
		t.Fatalf("highest-priority task missed %d deadlines", a.Misses.Value)
	}
	if b.Misses.Value == 0 {
		t.Fatal("overloaded task never missed")
	}
	if c.Utilization() < 0.95 {
		t.Fatalf("overloaded CPU utilization %.3f", c.Utilization())
	}
}

func TestAperiodicJobs(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	var doneAt sim.Time
	var missed bool
	_ = c.Submit("crypto", 5*sim.Millisecond, 20*sim.Millisecond, 0, func(at sim.Time, m bool) {
		doneAt, missed = at, m
	})
	_ = k.Run()
	if doneAt != 5*sim.Millisecond || missed {
		t.Fatalf("done at %v missed=%v", doneAt, missed)
	}
}

func TestAperiodicDeadlineMiss(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	var missed bool
	_ = c.Submit("slow", 30*sim.Millisecond, 10*sim.Millisecond, 0, func(_ sim.Time, m bool) { missed = m })
	_ = k.Run()
	if !missed {
		t.Fatal("late job not flagged")
	}
	if c.JobsMissed.Value != 1 {
		t.Fatalf("missed counter=%d", c.JobsMissed.Value)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	var order []string
	done := func(n string) func(sim.Time, bool) {
		return func(sim.Time, bool) { order = append(order, n) }
	}
	_ = c.Submit("first", sim.Millisecond, 0, 5, done("first"))
	_ = c.Submit("second", sim.Millisecond, 0, 5, done("second"))
	_ = c.Submit("urgent", sim.Millisecond, 0, 1, done("urgent"))
	_ = k.Run()
	// "first" was already running when "urgent" arrived in the same
	// instant... all submitted at t=0: urgent runs after first is picked?
	// Scheduling decisions happen immediately on submit: first starts,
	// urgent preempts it, then first resumes, then second.
	if len(order) != 3 || order[0] != "urgent" || order[1] != "first" || order[2] != "second" {
		t.Fatalf("order=%v", order)
	}
}

func TestValidation(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	if _, err := c.AddTask(&Task{Name: "bad", Period: 0, WCET: sim.Millisecond}); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := c.Submit("bad", 0, 0, 0, nil); err == nil {
		t.Fatal("zero WCET accepted")
	}
}

func TestRateMonotonic(t *testing.T) {
	a := &Task{Name: "a", Period: 100 * sim.Millisecond}
	b := &Task{Name: "b", Period: 10 * sim.Millisecond}
	c := &Task{Name: "c", Period: 50 * sim.Millisecond}
	RateMonotonic([]*Task{a, b, c})
	if b.Priority != 0 || c.Priority != 1 || a.Priority != 2 {
		t.Fatalf("priorities: a=%d b=%d c=%d", a.Priority, b.Priority, c.Priority)
	}
}

func TestUtilizationBound(t *testing.T) {
	if got := UtilizationBound(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("U(1)=%v", got)
	}
	if got := UtilizationBound(2); math.Abs(got-0.8284) > 0.001 {
		t.Fatalf("U(2)=%v", got)
	}
	if UtilizationBound(0) != 0 {
		t.Fatal("U(0)")
	}
	// Monotone decreasing toward ln 2.
	if UtilizationBound(100) < math.Ln2-0.01 || UtilizationBound(100) > UtilizationBound(2) {
		t.Fatal("bound shape wrong")
	}
}

func TestTaskSetUtilization(t *testing.T) {
	ts := []*Task{
		{Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond},
		{Period: 100 * sim.Millisecond, WCET: 30 * sim.Millisecond},
	}
	if u := TaskSetUtilization(ts); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("U=%v", u)
	}
}

func TestPendingAndIdle(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, "mcu")
	if c.Pending() != 0 || c.Utilization() != 0 {
		t.Fatal("fresh CPU not idle")
	}
	_ = c.Submit("a", sim.Millisecond, 0, 0, nil)
	_ = c.Submit("b", sim.Millisecond, 0, 0, nil)
	if c.Pending() != 2 {
		t.Fatalf("pending=%d", c.Pending())
	}
	_ = k.Run()
	if c.Pending() != 0 {
		t.Fatal("jobs left pending")
	}
}
