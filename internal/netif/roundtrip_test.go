package netif_test

import (
	"bytes"
	"math/rand"
	"testing"

	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/flexray"
	"autosec/internal/lin"
	"autosec/internal/netif"
)

// The fabric contract every adapter must honour: a netif.Frame the
// medium's FrameFromNetif accepts converts to the native frame type and
// back without losing any routable information — medium, identifier,
// flags, addresses and payload bytes. The generators below sample each
// medium's valid frame space with a fixed seed, so the property check is
// deterministic.

func equalFrames(t *testing.T, medium string, in, out *netif.Frame) {
	t.Helper()
	if out.Medium != in.Medium || out.ID != in.ID || out.Flags != in.Flags ||
		out.Aux != in.Aux || out.Src != in.Src || out.Dst != in.Dst ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("%s adapter lost information:\n in  %+v\n out %+v", medium, in, out)
	}
}

func TestAdapterRoundTripCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		var f netif.Frame
		f.Medium = netif.CAN
		switch rng.Intn(3) {
		case 0: // classic standard
			f.ID = rng.Uint32() & 0x7FF
			f.Payload = randBytes(rng, rng.Intn(9))
		case 1: // classic extended
			f.ID = rng.Uint32() & 0x1FFFFFFF
			f.Flags = netif.FlagExtended
			f.Payload = randBytes(rng, rng.Intn(9))
		default: // CAN FD (payloads must hit an exact DLC size)
			f.ID = rng.Uint32() & 0x7FF
			f.Flags = netif.FlagFD
			if rng.Intn(2) == 0 {
				f.Flags |= netif.FlagBRS
			}
			fdSizes := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}
			f.Payload = randBytes(rng, fdSizes[rng.Intn(len(fdSizes))])
		}
		f.Priority = f.ID
		native, err := can.FrameFromNetif(&f)
		if err != nil {
			t.Fatalf("generator produced invalid CAN frame %+v: %v", f, err)
		}
		var back netif.Frame
		can.FrameToNetif(&native, f.Sender, &back)
		equalFrames(t, "can", &f, &back)
	}
}

func TestAdapterRoundTripLIN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		f := netif.Frame{
			Medium:  netif.LIN,
			ID:      rng.Uint32() & 0x3F,
			Sender:  "node",
			Payload: randBytes(rng, 1+rng.Intn(8)),
		}
		f.Priority = f.ID
		native, err := lin.FrameFromNetif(&f)
		if err != nil {
			t.Fatalf("generator produced invalid LIN frame %+v: %v", f, err)
		}
		var back netif.Frame
		lin.FrameToNetif(&native, &back)
		if back.Sender != f.Sender {
			t.Fatalf("lin adapter lost sender: %q", back.Sender)
		}
		equalFrames(t, "lin", &f, &back)
	}
}

func TestAdapterRoundTripFlexRay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		f := netif.Frame{
			Medium:  netif.FlexRay,
			ID:      1 + rng.Uint32()%0x7FF,
			Aux:     uint32(rng.Intn(64)),
			Sender:  "node",
			Payload: randBytes(rng, 2*rng.Intn(128)),
		}
		if rng.Intn(8) == 0 {
			f.Flags = netif.FlagNull
		}
		f.Priority = f.ID
		native, err := flexray.FrameFromNetif(&f)
		if err != nil {
			t.Fatalf("generator produced invalid FlexRay frame %+v: %v", f, err)
		}
		var back netif.Frame
		flexray.FrameToNetif(&native, &back)
		equalFrames(t, "flexray", &f, &back)
	}
}

func TestAdapterRoundTripEthernet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		var src, dst netif.HWAddr
		rng.Read(src[:])
		rng.Read(dst[:])
		if dst.IsZero() {
			dst[5] = 1
		}
		f := netif.Frame{
			Medium:  netif.Ethernet,
			ID:      rng.Uint32() & 0xFFFF,
			Aux:     rng.Uint32() % 4095,
			Src:     src,
			Dst:     dst,
			Payload: randBytes(rng, rng.Intn(1501)),
		}
		native, err := ethernet.FrameFromNetif(&f)
		if err != nil {
			t.Fatalf("generator produced invalid Ethernet frame %+v: %v", f, err)
		}
		var back netif.Frame
		ethernet.FrameToNetif(&native, f.Sender, &back)
		equalFrames(t, "ethernet", &f, &back)
	}
}

// Tunnel translation composes with the adapters: any CAN/LIN/FlexRay
// frame carried to an Ethernet domain and back is restored losslessly.
func TestTunnelRoundTripAllMedia(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		var f netif.Frame
		switch rng.Intn(3) {
		case 0:
			f = netif.Frame{Medium: netif.CAN, ID: rng.Uint32() & 0x7FF, Payload: randBytes(rng, rng.Intn(9))}
		case 1:
			f = netif.Frame{Medium: netif.LIN, ID: rng.Uint32() & 0x3F, Payload: randBytes(rng, 1+rng.Intn(8))}
		default:
			f = netif.Frame{Medium: netif.FlexRay, ID: 1 + rng.Uint32()%0x7FF, Aux: uint32(rng.Intn(64)), Payload: randBytes(rng, 2*rng.Intn(128))}
		}
		f.Priority = f.ID
		var wire, back netif.Frame
		var buf []byte
		netif.Encapsulate(&wire, &f, &buf)
		if !netif.IsTunnel(&wire) {
			t.Fatalf("encapsulated frame not recognised as tunnel: %+v", wire)
		}
		if err := netif.Decapsulate(&back, &wire); err != nil {
			t.Fatalf("decapsulate failed: %v", err)
		}
		// Src/Dst/Sender are link-local to the carrying segment.
		back.Src, back.Dst, back.Sender = f.Src, f.Dst, f.Sender
		equalFrames(t, "tunnel", &f, &back)
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}
