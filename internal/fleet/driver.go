package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"autosec/internal/core"
)

// Driver shards a vehicle population across workers, each worker running
// its shard on a private core.VehiclePool so construction cost amortizes
// over the shard. Results merge in vehicle-index order, so the output is
// byte-identical at any worker count — the fleet-scale analogue of the
// runner's par-invariance, backed by the pooled Reset's equivalence
// guarantee (a reset vehicle behaves exactly like a fresh one).
type Driver struct {
	// Cfg is the per-vehicle build configuration. The VIN is shared by
	// every pool vehicle; per-vehicle identity comes from the seed, which
	// Drive derives per index from Cfg.Seed (see VehicleSeed).
	Cfg core.Config
	// N is the fleet population size.
	N int
	// Workers bounds the shard parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// VehicleSeed derives vehicle idx's kernel seed from the fleet base seed:
// a splitmix64-style finalizer over (base, idx), so neighbouring indices
// get decorrelated streams and the mapping is independent of sharding.
func VehicleSeed(base uint64, idx int) uint64 {
	z := base + 0x9E3779B97F4A7C15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Drive runs fn once per vehicle index over d's population and returns
// the per-vehicle results in index order. Each worker owns a contiguous
// index shard and a private pool: the first acquisition constructs a
// vehicle, every later one resets it, so steady-state sharding does no
// construction work. fn must treat the vehicle as scenario scratch — any
// rules, observers or traffic it adds are rewound by the next Reset.
//
// An error aborts the drive; the lowest-indexed error observed wins the
// report (a shard seeing the abort flag may stop before reaching its own
// failure, so under multiple workers the index is best-effort). ctx
// cancellation surfaces as that context's error.
func Drive[T any](ctx context.Context, d Driver, fn func(idx int, v *core.Vehicle) (T, error)) ([]T, error) {
	if d.N <= 0 {
		return nil, fmt.Errorf("fleet: population must be positive, got %d", d.N)
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.N {
		workers = d.N
	}

	results := make([]T, d.N)
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
	)
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < errIdx {
			firstErr, errIdx = err, idx
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous shards: vehicle idx lands in shard idx*workers/N,
		// sizes differ by at most one.
		lo := w * d.N / workers
		hi := (w + 1) * d.N / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pool := core.NewVehiclePool(d.Cfg)
			for idx := lo; idx < hi; idx++ {
				if err := ctx.Err(); err != nil {
					fail(idx, err)
					return
				}
				if failed() {
					return
				}
				v, err := pool.Acquire(VehicleSeed(d.Cfg.Seed, idx))
				if err != nil {
					fail(idx, fmt.Errorf("fleet: vehicle %d: %w", idx, err))
					return
				}
				out, err := fn(idx, v)
				pool.Release(v)
				if err != nil {
					fail(idx, fmt.Errorf("fleet: vehicle %d: %w", idx, err))
					return
				}
				results[idx] = out
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
