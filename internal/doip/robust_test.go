package doip

import (
	"testing"
	"testing/quick"

	"autosec/internal/ethernet"
)

// Robustness: arbitrary Ethernet payloads into the DoIP entity must never
// panic, activate routing, or forward diagnostics.
func TestEntitySurvivesArbitraryPayloads(t *testing.T) {
	r := newRig(t, nil)
	raw := ethernet.NewHost("fuzzer", ethernet.LocalMAC(99))
	r.sw.Connect(raw, vlanDiag)
	f := func(payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		_ = raw.Send(ethernet.Frame{Dst: ethernet.Broadcast, EtherType: EtherTypeDoIP, Payload: payload})
		_ = r.k.Run()
		return r.entity.DiagForwarded.Value == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Well-formed-but-random headers likewise never forward diagnostics
	// (routing was never activated).
	g := func(pt uint16, body []byte) bool {
		if len(body) > 1000 {
			body = body[:1000]
		}
		msg := append(encodeHeader(pt, len(body)), body...)
		_ = raw.Send(ethernet.Frame{Dst: ethernet.Broadcast, EtherType: EtherTypeDoIP, Payload: msg})
		_ = r.k.Run()
		return r.entity.DiagForwarded.Value == 0
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
