package secoc

import (
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Instrument attaches the receiver to the observability layer. SecOC has
// no clock of its own — verification is a pure function of the PDU — so
// the caller supplies one (typically Kernel.Now) to timestamp events;
// name distinguishes channels ("powertrain", "vdm", ...). Either of
// tr/reg may be nil.
//
// Trace events (subsystem "secoc"): one instant per Verify, named
// "verify-ok" or "verify-fail", with Str = channel name and Arg1 = the
// receiver's last accepted freshness counter after the call.
//
// Metrics: secoc/<name>/accepted and secoc/<name>/rejected probe the
// receiver's counters.
func (r *Receiver) Instrument(name string, tr *obs.Tracer, reg *obs.Registry, clock func() sim.Time) {
	if tr != nil {
		r.obsTr = tr
		r.obsSub = tr.Label("secoc")
		r.obsOK = tr.Label("verify-ok")
		r.obsFail = tr.Label("verify-fail")
		r.obsName = tr.Label(name)
		r.obsClock = clock
	}
	if reg != nil {
		prefix := "secoc/" + name + "/"
		reg.Probe(prefix+"accepted", func() float64 { return float64(r.Accepted) })
		reg.Probe(prefix+"rejected", func() float64 { return float64(r.Rejected) })
	}
}

// emitVerify records the outcome of one Verify call.
func (r *Receiver) emitVerify(ok bool) {
	if r.obsTr == nil {
		return
	}
	var at sim.Time
	if r.obsClock != nil {
		at = r.obsClock()
	}
	name := r.obsFail
	if ok {
		name = r.obsOK
	}
	r.obsTr.Instant(at, r.obsSub, name, r.obsName, int64(r.last), 0)
}
