// Package she models the Secure Hardware Extension (SHE) specification
// used by the paper's Secure Processing layer: AES-128 key slots with
// write/boot/debugger protection flags, the M1–M5 memory-update protocol
// for in-field key provisioning, CMAC generation/verification, and secure
// boot.
//
// SHE is implemented as a protocol-and-state-machine model rather than
// silicon: every security property exercised by the experiments (write
// protection, update counters, boot protection, key derivation) is a
// property of the protocol, which is reproduced faithfully from the SHE
// 1.1 functional specification.
package she

import (
	"crypto/aes"
	"crypto/subtle"
	"errors"
)

// BlockSize is the AES block size in bytes; all SHE keys are 128-bit.
const BlockSize = 16

// cmacSubkeys derives the RFC 4493 subkeys K1, K2 from the AES key.
func cmacSubkeys(key []byte) (k1, k2 [BlockSize]byte, err error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return k1, k2, err
	}
	var l [BlockSize]byte
	c.Encrypt(l[:], l[:])
	k1 = dbl(l)
	k2 = dbl(k1)
	return k1, k2, nil
}

// dbl doubles a value in GF(2^128) with the CMAC reduction constant 0x87.
func dbl(in [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	carry := byte(0)
	for i := BlockSize - 1; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry == 1 {
		out[BlockSize-1] ^= 0x87
	}
	return out
}

// CMAC computes AES-CMAC (RFC 4493) of msg under a 128-bit key.
func CMAC(key, msg []byte) ([]byte, error) {
	if len(key) != BlockSize {
		return nil, errors.New("she: CMAC requires a 128-bit key")
	}
	k1, k2, err := cmacSubkeys(key)
	if err != nil {
		return nil, err
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}

	n := (len(msg) + BlockSize - 1) / BlockSize
	complete := n > 0 && len(msg)%BlockSize == 0
	if n == 0 {
		n = 1
	}

	var last [BlockSize]byte
	if complete {
		copy(last[:], msg[(n-1)*BlockSize:])
		for i := range last {
			last[i] ^= k1[i]
		}
	} else {
		rem := msg[(n-1)*BlockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := range last {
			last[i] ^= k2[i]
		}
	}

	var x [BlockSize]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < BlockSize; j++ {
			x[j] ^= msg[i*BlockSize+j]
		}
		c.Encrypt(x[:], x[:])
	}
	for j := 0; j < BlockSize; j++ {
		x[j] ^= last[j]
	}
	c.Encrypt(x[:], x[:])
	out := make([]byte, BlockSize)
	copy(out, x[:])
	return out, nil
}

// VerifyCMAC checks a (possibly truncated) CMAC in constant time.
// macBits must be a multiple of 8 between 8 and 128; SHE permits
// truncated verification down to the configured minimum.
func VerifyCMAC(key, msg, mac []byte, macBits int) (bool, error) {
	if macBits < 8 || macBits > 128 || macBits%8 != 0 {
		return false, errors.New("she: MAC length must be 8..128 bits, byte aligned")
	}
	want, err := CMAC(key, msg)
	if err != nil {
		return false, err
	}
	n := macBits / 8
	if len(mac) < n {
		return false, nil
	}
	return subtle.ConstantTimeCompare(want[:n], mac[:n]) == 1, nil
}

// encryptECB encrypts whole blocks in ECB mode (used by the M4 proof).
func encryptECB(key, in []byte) ([]byte, error) {
	if len(in)%BlockSize != 0 {
		return nil, errors.New("she: ECB input not block aligned")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(in))
	for i := 0; i < len(in); i += BlockSize {
		c.Encrypt(out[i:i+BlockSize], in[i:i+BlockSize])
	}
	return out, nil
}

// decryptECB inverts encryptECB.
func decryptECB(key, in []byte) ([]byte, error) {
	if len(in)%BlockSize != 0 {
		return nil, errors.New("she: ECB input not block aligned")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(in))
	for i := 0; i < len(in); i += BlockSize {
		c.Decrypt(out[i:i+BlockSize], in[i:i+BlockSize])
	}
	return out, nil
}

// encryptCBC encrypts whole blocks in CBC mode with a zero IV (the SHE
// memory-update protocol always uses IV=0; general CBC with caller IVs is
// exposed through the Engine commands).
func encryptCBC(key, iv, in []byte) ([]byte, error) {
	if len(in)%BlockSize != 0 {
		return nil, errors.New("she: CBC input not block aligned")
	}
	if len(iv) != BlockSize {
		return nil, errors.New("she: CBC IV must be one block")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(in))
	prev := append([]byte(nil), iv...)
	for i := 0; i < len(in); i += BlockSize {
		for j := 0; j < BlockSize; j++ {
			out[i+j] = in[i+j] ^ prev[j]
		}
		c.Encrypt(out[i:i+BlockSize], out[i:i+BlockSize])
		prev = out[i : i+BlockSize]
	}
	return out, nil
}

// decryptCBC inverts encryptCBC.
func decryptCBC(key, iv, in []byte) ([]byte, error) {
	if len(in)%BlockSize != 0 {
		return nil, errors.New("she: CBC input not block aligned")
	}
	if len(iv) != BlockSize {
		return nil, errors.New("she: CBC IV must be one block")
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(in))
	prev := append([]byte(nil), iv...)
	for i := 0; i < len(in); i += BlockSize {
		c.Decrypt(out[i:i+BlockSize], in[i:i+BlockSize])
		for j := 0; j < BlockSize; j++ {
			out[i+j] ^= prev[j]
		}
		prev = in[i : i+BlockSize]
	}
	return out, nil
}

// mpCompress is the Miyaguchi-Preneel compression function over AES-128:
// out = AES(chain, block) XOR block XOR chain.
func mpCompress(chain, block [BlockSize]byte) [BlockSize]byte {
	c, err := aes.NewCipher(chain[:])
	if err != nil {
		panic("she: aes.NewCipher with 16-byte key cannot fail: " + err.Error())
	}
	var out [BlockSize]byte
	c.Encrypt(out[:], block[:])
	for i := range out {
		out[i] ^= block[i] ^ chain[i]
	}
	return out
}

// KDF is the SHE key-derivation function: Miyaguchi-Preneel over the
// concatenation key || constant, starting from a zero chaining value.
func KDF(key [BlockSize]byte, constant [BlockSize]byte) [BlockSize]byte {
	var chain [BlockSize]byte
	chain = mpCompress(chain, key)
	chain = mpCompress(chain, constant)
	return chain
}

// SHE derivation constants (SHE spec v1.1 §9.2). The embedded bytes spell
// "SHE" (0x53 0x48 0x45) with the algorithm/version framing around them.
var (
	KeyUpdateEncC = [BlockSize]byte{0x01, 0x01, 0x53, 0x48, 0x45, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xB0}
	KeyUpdateMacC = [BlockSize]byte{0x01, 0x02, 0x53, 0x48, 0x45, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xB0}
	DebugKeyC     = [BlockSize]byte{0x01, 0x03, 0x53, 0x48, 0x45, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xB0}
	PrngKeyC      = [BlockSize]byte{0x01, 0x04, 0x53, 0x48, 0x45, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xB0}
	PrngSeedKeyC  = [BlockSize]byte{0x01, 0x05, 0x53, 0x48, 0x45, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xB0}
)
