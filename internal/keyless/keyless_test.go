package keyless

import (
	"errors"
	"math"
	"testing"

	"autosec/internal/sim"
)

func sharedKey() [16]byte {
	return [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
}

func TestDirectUnlockInRange(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{1, 0}
	rtt, err := car.TryUnlock(fob)
	if err != nil {
		t.Fatal(err)
	}
	if car.Unlocks.Value != 1 {
		t.Fatalf("unlocks=%d", car.Unlocks.Value)
	}
	// RTT = 2*1m*3.336ns + 2ms ≈ 2ms.
	if rtt < 2*sim.Millisecond || rtt > 2*sim.Millisecond+sim.Microsecond {
		t.Fatalf("rtt=%v", rtt)
	}
}

func TestDirectUnlockOutOfRange(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{10, 0} // beyond 2m LF range
	if _, err := car.TryUnlock(fob); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err=%v", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	car := NewCar(sharedKey())
	other := sharedKey()
	other[0] ^= 1
	fob := NewFob(other)
	fob.Pos = Position{1, 0}
	if _, err := car.TryUnlock(fob); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err=%v", err)
	}
	if car.Rejections.Value != 1 {
		t.Fatalf("rejections=%d", car.Rejections.Value)
	}
}

func TestDisabledFobSilent(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{1, 0}
	fob.Disabled = true
	if _, err := car.TryUnlock(fob); !errors.Is(err, ErrNoResponse) {
		t.Fatalf("err=%v", err)
	}
}

func TestRelayAttackSucceedsWithoutBounding(t *testing.T) {
	// The headline result of [8]: fob 60m away (in the house), relay
	// antennas at the car and the front door, no distance bounding —
	// the car unlocks.
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{60, 0}
	relay := &Relay{
		PosA:    Position{1, 0},    // by the car
		PosB:    Position{59.5, 0}, // by the door
		Latency: 10 * sim.Microsecond,
	}
	if _, err := car.TryRelayUnlock(relay, fob); err != nil {
		t.Fatalf("relay attack failed without bounding: %v", err)
	}
	if car.Unlocks.Value != 1 {
		t.Fatal("no unlock recorded")
	}
}

func TestRelayAttackDefeatedByDistanceBounding(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	car.DistanceBounding = true
	// A tight RTT budget: fob processing + small flight + guard.
	car.RTTBudget = 2*sim.Millisecond + 100*sim.Nanosecond
	fob := NewFob(key)
	fob.Pos = Position{60, 0}
	relay := &Relay{PosA: Position{1, 0}, PosB: Position{59.5, 0}, Latency: 10 * sim.Microsecond}
	if _, err := car.TryRelayUnlock(relay, fob); !errors.Is(err, ErrRTTExceeded) {
		t.Fatalf("relay attack beat bounding: %v", err)
	}
	if car.Unlocks.Value != 0 {
		t.Fatal("car unlocked")
	}

	// The legitimate fob still works under the same budget.
	fob.Pos = Position{1, 0}
	if _, err := car.TryUnlock(fob); err != nil {
		t.Fatalf("legitimate unlock failed under bounding: %v", err)
	}
}

func TestBoundingDefaultBudgetAllowsLegitimate(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	car.DistanceBounding = true // RTTBudget 0 -> default
	fob := NewFob(key)
	fob.Pos = Position{1.9, 0}
	if _, err := car.TryUnlock(fob); err != nil {
		t.Fatalf("legit unlock under default budget: %v", err)
	}
	if car.BoundingTrips.Value != 1 {
		t.Fatalf("bounding trips=%d", car.BoundingTrips.Value)
	}
}

func TestZeroLatencyRelayStillAddsFlightTime(t *testing.T) {
	// Even a perfect (zero-latency) relay cannot hide the extra path: the
	// fob is 1km away, adding ~6.7us of flight, detectable with a tight
	// bound.
	key := sharedKey()
	car := NewCar(key)
	car.DistanceBounding = true
	car.RTTBudget = 2*sim.Millisecond + 500*sim.Nanosecond
	fob := NewFob(key)
	fob.Pos = Position{1000, 0}
	relay := &Relay{PosA: Position{0.5, 0}, PosB: Position{999.5, 0}, Latency: 0}
	if _, err := car.TryRelayUnlock(relay, fob); !errors.Is(err, ErrRTTExceeded) {
		t.Fatalf("speed-of-light relay evaded bounding: %v", err)
	}
}

func TestRelayNeedsBothAntennasInPlace(t *testing.T) {
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{60, 0}
	// Antenna A too far from the car.
	r := &Relay{PosA: Position{10, 0}, PosB: Position{59.5, 0}}
	if _, err := car.TryRelayUnlock(r, fob); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err=%v", err)
	}
	// Antenna B too far from the fob.
	r = &Relay{PosA: Position{1, 0}, PosB: Position{50, 0}}
	if _, err := car.TryRelayUnlock(r, fob); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err=%v", err)
	}
}

func TestResponseReplayRejected(t *testing.T) {
	// Each challenge is unique, so a recorded response never verifies
	// against a later challenge; and re-submitting the same response for
	// its own challenge is caught by single-use tracking. We simulate the
	// latter via two unlocks and checking distinct challenges were used.
	key := sharedKey()
	car := NewCar(key)
	fob := NewFob(key)
	fob.Pos = Position{1, 0}
	if _, err := car.TryUnlock(fob); err != nil {
		t.Fatal(err)
	}
	if _, err := car.TryUnlock(fob); err != nil {
		t.Fatalf("second unlock with fresh challenge: %v", err)
	}
	if car.Unlocks.Value != 2 {
		t.Fatalf("unlocks=%d", car.Unlocks.Value)
	}
}

func TestImmobilizer(t *testing.T) {
	key := sharedKey()
	im := NewImmobilizer(key, 128)
	if !im.StartEngine(key) {
		t.Fatal("correct transponder rejected")
	}
	bad := key
	bad[5] ^= 1
	if im.StartEngine(bad) {
		t.Fatal("wrong transponder accepted")
	}
	if im.Starts.Value != 1 || im.Rejects.Value != 1 {
		t.Fatalf("counters %d/%d", im.Starts.Value, im.Rejects.Value)
	}
}

func TestWeakImmobilizerKeyMasking(t *testing.T) {
	key := sharedKey()
	im := NewImmobilizer(key, 40)
	// A transponder that matches only in the first 40 bits still starts
	// the engine — the legacy weakness.
	partial := [16]byte{}
	copy(partial[:5], key[:5])
	if !im.StartEngine(partial) {
		t.Fatal("40-bit-equal transponder rejected")
	}
	// Crack cost: 2^39 for 40-bit vs 2^127 for full keys.
	if got := im.CrackCost(); got != math.Pow(2, 39) {
		t.Fatalf("crack cost %.3g", got)
	}
	strong := NewImmobilizer(key, 128)
	if strong.CrackCost() <= im.CrackCost() {
		t.Fatal("full-width key not harder to crack")
	}
}

func TestMaskKeyPartialByte(t *testing.T) {
	key := [16]byte{0xFF, 0xFF}
	m := maskKey(key, 12)
	if m[0] != 0xFF || m[1] != 0xF0 {
		t.Fatalf("mask 12 bits: %x", m[:2])
	}
	if maskKey(key, 128) != key {
		t.Fatal("full mask altered key")
	}
}

func TestPositionDist(t *testing.T) {
	if d := (Position{0, 0}).Dist(Position{3, 4}); d != 5 {
		t.Fatalf("dist=%v", d)
	}
}
