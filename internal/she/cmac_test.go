package she

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 4493 §4 test vectors.
func TestCMACRFC4493Vectors(t *testing.T) {
	key := "2b7e151628aed2a6abf7158809cf4f3c"
	msg := "6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710"
	cases := []struct {
		msgLen int
		want   string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	k := mustHex(t, key)
	m := mustHex(t, msg)
	for _, c := range cases {
		got, err := CMAC(k, m[:c.msgLen])
		if err != nil {
			t.Fatal(err)
		}
		if want := mustHex(t, c.want); !bytes.Equal(got, want) {
			t.Errorf("CMAC len=%d: got %x, want %x", c.msgLen, got, want)
		}
	}
}

func TestCMACSubkeysRFC4493(t *testing.T) {
	k := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	k1, k2, err := cmacSubkeys(k)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "fbeed618357133667c85e08f7236a8de"); !bytes.Equal(k1[:], want) {
		t.Errorf("K1=%x", k1)
	}
	if want := mustHex(t, "f7ddac306ae266ccf90bc11ee46d513b"); !bytes.Equal(k2[:], want) {
		t.Errorf("K2=%x", k2)
	}
}

func TestCMACKeyLength(t *testing.T) {
	if _, err := CMAC(make([]byte, 24), nil); err == nil {
		t.Fatal("CMAC accepted a 192-bit key")
	}
}

// Property: any bit flip in the message changes the MAC.
func TestCMACBitFlipProperty(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	f := func(msg []byte, idx, bit uint8) bool {
		if len(msg) == 0 {
			return true
		}
		m1, err := CMAC(key, msg)
		if err != nil {
			return false
		}
		mut := append([]byte(nil), msg...)
		mut[int(idx)%len(mut)] ^= 1 << (bit % 8)
		m2, err := CMAC(key, mut)
		if err != nil {
			return false
		}
		return !bytes.Equal(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages of length n and n+1 (zero-extended) have different
// MACs — padding is unambiguous.
func TestCMACPaddingUnambiguous(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	for n := 0; n < 48; n++ {
		msg := make([]byte, n)
		ext := make([]byte, n+1)
		a, _ := CMAC(key, msg)
		b, _ := CMAC(key, ext)
		if bytes.Equal(a, b) {
			t.Fatalf("length extension collision at n=%d", n)
		}
	}
}

func TestVerifyCMACTruncated(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	msg := []byte("authenticated CAN payload")
	mac, err := CMAC(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{32, 64, 128} {
		ok, err := VerifyCMAC(key, msg, mac[:bits/8], bits)
		if err != nil || !ok {
			t.Fatalf("truncated verify %d bits: ok=%v err=%v", bits, ok, err)
		}
	}
	// Wrong MAC fails.
	bad := append([]byte(nil), mac...)
	bad[0] ^= 1
	ok, _ := VerifyCMAC(key, msg, bad, 32)
	if ok {
		t.Fatal("corrupted truncated MAC verified")
	}
	// Bad parameters.
	if _, err := VerifyCMAC(key, msg, mac, 7); err == nil {
		t.Fatal("7-bit MAC accepted")
	}
	if _, err := VerifyCMAC(key, msg, mac, 136); err == nil {
		t.Fatal("136-bit MAC accepted")
	}
	// Short MAC buffer is a mismatch, not an error.
	ok, err = VerifyCMAC(key, msg, mac[:2], 32)
	if err != nil || ok {
		t.Fatalf("short mac: ok=%v err=%v", ok, err)
	}
}

func TestCBCRoundTrip(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	iv := mustHex(t, "101112131415161718191a1b1c1d1e1f")
	plain := make([]byte, 64)
	for i := range plain {
		plain[i] = byte(i)
	}
	ct, err := encryptCBC(key, iv, plain)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decryptCBC(key, iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("CBC round trip failed")
	}
	if bytes.Equal(ct[:16], ct[16:32]) {
		t.Fatal("CBC produced identical blocks for distinct plaintext")
	}
}

func TestECBRoundTripAndAlignment(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	plain := make([]byte, 32)
	ct, err := encryptECB(key, plain)
	if err != nil {
		t.Fatal(err)
	}
	// ECB leaks equality of blocks — by design.
	if !bytes.Equal(ct[:16], ct[16:]) {
		t.Fatal("ECB of equal blocks differs")
	}
	back, err := decryptECB(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("ECB round trip failed")
	}
	if _, err := encryptECB(key, make([]byte, 15)); err == nil {
		t.Fatal("unaligned ECB accepted")
	}
	if _, err := decryptECB(key, make([]byte, 15)); err == nil {
		t.Fatal("unaligned ECB decrypt accepted")
	}
}

func TestKDFDistinctConstants(t *testing.T) {
	var key [BlockSize]byte
	copy(key[:], mustHex(t, "000102030405060708090a0b0c0d0e0f"))
	enc := KDF(key, KeyUpdateEncC)
	mac := KDF(key, KeyUpdateMacC)
	if enc == mac {
		t.Fatal("KDF constants collide")
	}
	if enc == key {
		t.Fatal("KDF returned its input")
	}
	// Deterministic.
	if enc != KDF(key, KeyUpdateEncC) {
		t.Fatal("KDF not deterministic")
	}
}

// SHE spec §9.2 example: K1/K2 derived from the example MASTER_ECU_KEY.
func TestKDFSHESpecVector(t *testing.T) {
	var master [BlockSize]byte
	copy(master[:], mustHex(t, "000102030405060708090a0b0c0d0e0f"))
	k1 := KDF(master, KeyUpdateEncC)
	k2 := KDF(master, KeyUpdateMacC)
	// Values from the SHE 1.1 memory-update example.
	if want := mustHex(t, "118a46447a770d87828a69c222e2d17e"); !bytes.Equal(k1[:], want) {
		t.Errorf("K1=%x, want %x", k1, want)
	}
	if want := mustHex(t, "2ebb2a3da62dbd64b18ba6493e9fbe22"); !bytes.Equal(k2[:], want) {
		t.Errorf("K2=%x, want %x", k2, want)
	}
}
