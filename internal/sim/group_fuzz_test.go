package sim

import (
	"fmt"
	"strings"
	"testing"
)

// runGroupOrderingScript interprets fuzz bytes as a cross-kernel message
// script: byte 0 picks the member count, byte 1 the lookahead, and each
// following (src, dst, delay) triple seeds one message chain — an event
// on src that sends to dst at now+L+delay, whose delivery forwards the
// chain onward with a depth drawn from the delay byte. Every delivery
// asserts the safe-horizon invariant (arrival >= send time + lookahead)
// into the log, so a violation diverges the fingerprint and fails the
// comparison. The script only constructs invariant-respecting sends;
// Send panicking on anything else is pinned separately by
// TestGroupSendLookaheadViolationPanics.
func runGroupOrderingScript(data []byte, workers int) string {
	if len(data) < 5 {
		return ""
	}
	members := 2 + int(data[0])%6
	lookahead := Duration(1 + int(data[1]))
	g := NewKernelGroup(uint64(len(data)), lookahead)
	logs := make([]*[]string, members)
	for i := 0; i < members; i++ {
		logs[i] = &[]string{}
		g.Kernel(i)
	}

	var chain func(member, depth int, jitter Duration)
	chain = func(member, depth int, jitter Duration) {
		k := g.Kernel(member)
		at := k.Now()
		*logs[member] = append(*logs[member], fmt.Sprintf("m%d d%d @%d", member, depth, at))
		if depth <= 0 {
			return
		}
		to := (member + 1 + int(jitter)%members) % members
		sent := at
		g.Send(member, to, at+lookahead+jitter, func() {
			rk := g.Kernel(to)
			if rk.Now() < sent+lookahead {
				*logs[to] = append(*logs[to], fmt.Sprintf("VIOLATION @%d < %d", rk.Now(), sent+lookahead))
				return
			}
			if rk.Now() != sent+lookahead+jitter {
				*logs[to] = append(*logs[to], fmt.Sprintf("LATE @%d want %d", rk.Now(), sent+lookahead+jitter))
				return
			}
			chain(to, depth-1, jitter/2)
		})
	}

	for i := 2; i+2 < len(data); i += 3 {
		src := int(data[i]) % members
		delay := Duration(data[i+2])
		depth := 1 + int(data[i+2])%4
		at := Time(int(data[i+1])) * 3
		idx := i
		g.Kernel(src).At(at, func() { chain(src, depth, delay+Duration(idx%5)) })
	}

	g.SetWorkers(workers)
	// Run must terminate: windowed rounds always dispatch the horizon
	// event, so a hang here is a deadlock bug the fuzzer would surface
	// as a timeout.
	if err := g.Run(); err != nil {
		return "halted: " + err.Error()
	}
	var b strings.Builder
	for i, lg := range logs {
		fmt.Fprintf(&b, "== m%d now=%d steps=%d\n", i, g.Kernel(i).Now(), g.Kernel(i).Steps())
		for _, line := range *lg {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// FuzzKernelGroupOrdering fuzzes the inter-kernel message ordering:
// arbitrary (source, destination, delay) scripts must never violate the
// safe-horizon invariant, never deadlock (Run terminates), and must
// produce byte-identical execution serially and in parallel.
func FuzzKernelGroupOrdering(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3})
	f.Add([]byte{3, 17, 0, 1, 200, 1, 2, 7, 2, 0, 255, 5, 3, 64})
	f.Add([]byte{255, 1, 9, 9, 9, 0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Add([]byte{2, 100, 0, 50, 10, 1, 50, 10, 0, 25, 128, 1, 25, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		serial := runGroupOrderingScript(data, 1)
		if strings.Contains(serial, "VIOLATION") || strings.Contains(serial, "LATE") {
			t.Fatalf("safe-horizon invariant violated:\n%s", serial)
		}
		parallel := runGroupOrderingScript(data, 3)
		if serial != parallel {
			t.Fatalf("serial and parallel runs diverged:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
		}
	})
}
