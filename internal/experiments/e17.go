package experiments

import (
	"encoding/binary"
	"fmt"
	"sort"

	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/workload"
	"autosec/internal/zonal"
)

// E17Zonal compares the classic central-gateway E/E architecture against
// zonal topologies (§7): the same three CAN domains — powertrain, chassis
// and infotainment — and the same logical firewall policy, deployed either
// behind one central gateway or sharded across N zone controllers joined
// by an Ethernet backbone. A compromised infotainment ECU floods
// engine-torque frames until the IDS quarantine reflex fires. The sweep
// measures what zoning buys (attack containment scoped to one zone while
// the other zones' flows keep running) and what it costs (backbone load
// and tunnelling latency on every cross-zone hop).
func E17Zonal(seed uint64) *Table {
	return E17ZonalWith(seed, []int{2, 4, 8})
}

// E17ZonalWith runs the central topology plus one zonal topology per entry
// in zoneCounts. benchreport's -zones flag feeds custom sweeps through
// here; the golden table uses the default {2, 4, 8}.
func E17ZonalWith(seed uint64, zoneCounts []int) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Central gateway vs zonal E/E topologies under attack (§7)",
		Claim:   "zonal architectures contain a compromised domain behind its zone controller at the cost of backbone load and cross-zone latency",
		Columns: []string{"topology", "attack through", "legit through", "backbone frames", "backbone deliveries", "p95 e2e latency (us)", "quarantined", "others ok"},
	}
	type topo struct {
		name  string
		zones int // 0 = central gateway
	}
	topos := []topo{{"central gateway", 0}}
	for _, n := range zoneCounts {
		topos = append(topos, topo{fmt.Sprintf("%d zones", n), n})
	}
	for _, tp := range topos {
		k := sim.NewKernel(seed)
		pt := can.NewBus(k, "powertrain-bus", 500_000)
		ch := can.NewBus(k, "chassis-bus", 500_000)
		info := can.NewBus(k, "infotainment-bus", 500_000)
		ptM, chM, infoM := can.Netif(pt), can.Netif(ch), can.Netif(info)

		// The logical policy is identical in every topology; the zonal
		// fabric shards it into per-zone tables. Rules carry per-run match
		// counters, so each run builds fresh ones.
		rules := []*gateway.Rule{
			{Name: "legacy-open", From: "infotainment", To: []string{"powertrain"}, IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow},
			{Name: "telemetry", From: "powertrain", To: []string{"infotainment"}, IDLo: 0x260, IDHi: 0x3EF, Action: gateway.Allow},
			{Name: "chassis-status", From: "chassis", To: []string{"powertrain"}, IDLo: 0x400, IDHi: 0x40F, Action: gateway.Allow},
		}

		var quarantineInfotainment func()
		var quarantined func() bool
		var backboneFrames, backboneDeliveries func() int64
		if tp.zones == 0 {
			g := gateway.New(k, "central")
			_ = g.AttachDomain("powertrain", ptM)
			_ = g.AttachDomain("chassis", chM)
			_ = g.AttachDomain("infotainment", infoM)
			g.SetRules(rules)
			quarantineInfotainment = func() { _ = g.Quarantine("infotainment") }
			quarantined = func() bool { return g.Quarantined("infotainment") }
			backboneFrames = func() int64 { return 0 }
			backboneDeliveries = func() int64 { return 0 }
		} else {
			// Same placement policy as core's zonal build: powertrain in
			// the first zone, chassis in the middle, infotainment in the
			// last, so the attacker's zone never shares a controller with
			// the flows it threatens.
			sw := ethernet.NewSwitch(k, "backbone", 2*sim.Microsecond)
			f := zonal.New(k, ethernet.Netif(sw, 1))
			zs := make([]*zonal.Zone, tp.zones)
			for i := range zs {
				zs[i], _ = f.AddZone(fmt.Sprintf("z%d", i))
			}
			_ = zs[0].AttachDomain("powertrain", ptM)
			_ = zs[(tp.zones-1)/2].AttachDomain("chassis", chM)
			_ = zs[tp.zones-1].AttachDomain("infotainment", infoM)
			f.SetRules(rules)
			quarantineInfotainment = func() { _ = f.QuarantineZoneOf("infotainment") }
			quarantined = func() bool {
				z, _ := f.ZoneOf("infotainment")
				return f.ZoneQuarantined(z.Name)
			}
			backboneFrames = func() int64 { return f.BackboneFrames.Value }
			backboneDeliveries = func() int64 { return f.BackboneDeliveries.Value }
		}

		// Background load: the powertrain matrix on its own bus, the body
		// matrix on the infotainment bus (all of it crosses to powertrain
		// through legacy-open, as in a carried-over legacy policy).
		_, stopPT := workload.StartSenders(k, pt, workload.PowertrainMatrix(), 0.01)
		_, stopBody := workload.StartSenders(k, info, workload.BodyMatrix(), 0.01)
		defer stopPT()
		defer stopBody()

		// IDS watches the powertrain attachment point, where local
		// traffic, the forwarded body matrix and both cross-domain flows
		// all converge; its baseline is trained on exactly that mix.
		eng := ids.NewEngine(ids.NewFrequencyDetector(), ids.NewSpecDetector())
		combined := append(workload.PowertrainMatrix(), workload.BodyMatrix()...)
		clean := workload.SyntheticTrace(combined, 10*sim.Second, seed, 0.01)
		appendPeriodic(clean, 0x155, 100*sim.Millisecond, 4, 10*sim.Second)
		appendPeriodic(clean, 0x405, 100*sim.Millisecond, 2, 10*sim.Second)
		eng.Train(clean.Netif())
		eng.Attach(ptM)
		var quarAt sim.Time
		eng.OnAlert(func(ids.Alert) {
			if !quarantined() {
				quarAt = k.Now()
				quarantineInfotainment()
			}
		})

		// Legit cross-zone flows: a nav ping from infotainment carrying a
		// sequence number (for end-to-end latency), and a chassis status
		// heartbeat (the "others ok" probe after quarantine).
		nav := can.NewController("nav")
		info.Attach(nav)
		sendAt := make(map[uint32]sim.Time)
		var navSeq uint32
		k.Every(0, 100*sim.Millisecond, func() {
			p := make([]byte, 4)
			binary.BigEndian.PutUint32(p, navSeq)
			sendAt[navSeq] = k.Now()
			navSeq++
			_ = nav.Send(can.Frame{ID: 0x155, Data: p}, nil)
		})
		status := can.NewController("chassis-ecu")
		ch.Attach(status)
		k.Every(0, 100*sim.Millisecond, func() {
			_ = status.Send(can.Frame{ID: 0x405, Data: []byte{0x05, 0x01}}, nil)
		})

		// Compromised infotainment ECU: engine-torque flood at 1 kHz from
		// t=2s.
		mal := can.NewController("headunit")
		info.Attach(mal)
		k.Every(2*sim.Second, sim.Millisecond, func() {
			_ = mal.Send(can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, nil)
		})

		// The powertrain-side monitor counts what crossed.
		attackThrough, legitThrough, chassisAfterQuar := 0, 0, 0
		var lats []sim.Duration
		mon := can.NewController("monitor")
		pt.Attach(mon)
		mon.OnReceive(func(at sim.Time, f *can.Frame, sender *can.Controller) {
			switch {
			case f.ID == 0x0C0 && sender.Name != "engine":
				attackThrough++
			case f.ID == 0x155:
				legitThrough++
				if len(f.Data) >= 4 {
					if sent, ok := sendAt[binary.BigEndian.Uint32(f.Data)]; ok {
						lats = append(lats, at-sent)
					}
				}
			case f.ID == 0x405 && sender.Name != "engine":
				if quarantined() && at > quarAt {
					chassisAfterQuar++
				}
			}
		})

		k.RunUntil(10 * sim.Second)

		t.AddRow(tp.name, attackThrough, legitThrough, backboneFrames(), backboneDeliveries(),
			p95(lats).Micros(), yesNo(quarantined()), yesNo(chassisAfterQuar > 0))
	}
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// p95 returns the 95th-percentile latency of the sample set, 0 if empty.
func p95(lats []sim.Duration) sim.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]sim.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s) * 95 / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
