// Keyless relay: the §4.3 physical-access attack. An attacker relays the
// PKES exchange between a car in the driveway and the fob inside the
// house, at several relay qualities; the distance-bounding countermeasure
// converts proximity from an assumption into a measurement.
//
//	go run ./examples/keyless-relay
package main

import (
	"fmt"

	"autosec/internal/keyless"
	"autosec/internal/sim"
)

func main() {
	var key [16]byte
	copy(key[:], "family-car-key-7")

	fob := keyless.NewFob(key)
	fob.Pos = keyless.Position{X: 25} // on the hallway table

	fmt.Println("fob is 25m from the car (inside the house)")
	fmt.Println()
	fmt.Printf("%-34s %-10s %-12s %s\n", "attempt", "bounding", "rtt", "unlocked")

	attempt := func(label string, bounding bool, relay *keyless.Relay) {
		car := keyless.NewCar(key)
		car.DistanceBounding = bounding
		car.RTTBudget = 2*sim.Millisecond + 100*sim.Nanosecond
		var rtt sim.Duration
		var err error
		if relay == nil {
			rtt, err = car.TryUnlock(fob)
		} else {
			rtt, err = car.TryRelayUnlock(relay, fob)
		}
		outcome := "YES"
		if err != nil {
			outcome = fmt.Sprintf("no (%v)", err)
		}
		fmt.Printf("%-34s %-10v %-12v %s\n", label, bounding, rtt, outcome)
	}

	// The owner walks out with the fob first, as a baseline.
	owner := keyless.NewFob(key)
	owner.Pos = keyless.Position{X: 1}
	baselineCar := keyless.NewCar(key)
	baselineCar.DistanceBounding = true
	baselineCar.RTTBudget = 2*sim.Millisecond + 100*sim.Nanosecond
	rtt, err := baselineCar.TryUnlock(owner)
	fmt.Printf("%-34s %-10v %-12v %v\n", "owner at the door handle", true, rtt, err == nil)

	// No fob nearby, no relay: nothing happens.
	attempt("thief alone (no relay)", false, nil)

	// Hobbyist relay: cheap SDR, 100us of processing per hop.
	hobbyist := &keyless.Relay{
		PosA: keyless.Position{X: 1}, PosB: keyless.Position{X: 24.5},
		Latency: 100 * sim.Microsecond,
	}
	attempt("hobbyist relay, no bounding", false, hobbyist)
	attempt("hobbyist relay, bounding", true, hobbyist)

	// Professional relay: near-zero added latency — still pays the extra
	// flight time, which bounding measures.
	pro := &keyless.Relay{
		PosA: keyless.Position{X: 1}, PosB: keyless.Position{X: 24.5},
		Latency: 0,
	}
	attempt("speed-of-light relay, bounding", true, pro)

	fmt.Println("\nfob in a shielded pouch (user-side countermeasure):")
	fob.Disabled = true
	attempt("hobbyist relay vs shielded fob", false, hobbyist)
}
