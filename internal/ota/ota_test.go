package ota

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

// fixture wires a director, an image repo and a one-ECU client.
type fixture struct {
	director *Repository
	image    *Repository
	client   *Client
	payload  []byte
	target   Target
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d, err := NewRepository("director")
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewRepository("image")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("VIN-0001", d.PublicKey(), im.PublicKey())
	c.AddECU("brake-mcu-r2", 1)
	payload := []byte("brake firmware v2 image bytes ........")
	return &fixture{
		director: d,
		image:    im,
		client:   c,
		payload:  payload,
		target:   MakeTarget("brake-fw", 2, "brake-mcu-r2", payload),
	}
}

func (f *fixture) bundle(expires sim.Time) *Bundle {
	return &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{f.target}, expires),
		Image:    f.image.Sign("", []Target{f.target}, expires),
		Payloads: map[string][]byte{"brake-fw": f.payload},
	}
}

func TestApplyHappyPath(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Apply(f.bundle(sim.Hour), sim.Minute); err != nil {
		t.Fatal(err)
	}
	ecu, _ := f.client.ECU("brake-mcu-r2")
	if ecu.InstalledVersion != 2 || ecu.InstalledName != "brake-fw" {
		t.Fatalf("ecu state: %+v", ecu)
	}
	if f.client.Installed.Value != 1 || f.client.Rejected.Value != 0 {
		t.Fatalf("counters: %d/%d", f.client.Installed.Value, f.client.Rejected.Value)
	}
}

func TestApplyRejectsForgedDirector(t *testing.T) {
	f := newFixture(t)
	rogue, _ := NewRepository("director")
	b := f.bundle(sim.Hour)
	b.Director = rogue.Sign("VIN-0001", []Target{f.target}, sim.Hour)
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
	if ecu, _ := f.client.ECU("brake-mcu-r2"); ecu.InstalledVersion != 1 {
		t.Fatal("ECU mutated by rejected bundle")
	}
}

func TestApplyRejectsMetadataReplay(t *testing.T) {
	f := newFixture(t)
	b1 := f.bundle(sim.Hour)
	if err := f.client.Apply(b1, sim.Minute); err != nil {
		t.Fatal(err)
	}
	// Replaying the very same (old metadata version) bundle fails.
	if err := f.client.Apply(b1, 2*sim.Minute); !errors.Is(err, ErrRollback) {
		t.Fatalf("replay: err=%v", err)
	}
}

func TestApplyRejectsTargetVersionRollback(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Apply(f.bundle(sim.Hour), sim.Minute); err != nil {
		t.Fatal(err)
	}
	// Fresh metadata (new counters) but an older image version.
	old := MakeTarget("brake-fw", 1, "brake-mcu-r2", []byte("old image"))
	b := &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{old}, sim.Hour),
		Image:    f.image.Sign("", []Target{old}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": []byte("old image")},
	}
	if err := f.client.Apply(b, 2*sim.Minute); !errors.Is(err, ErrRollback) {
		t.Fatalf("downgrade: err=%v", err)
	}
}

func TestApplyRejectsExpiredMetadata(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Apply(f.bundle(sim.Minute), sim.Hour); !errors.Is(err, ErrExpiredMeta) {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyRejectsWrongVehicle(t *testing.T) {
	f := newFixture(t)
	b := f.bundle(sim.Hour)
	b.Director = f.director.Sign("VIN-9999", []Target{f.target}, sim.Hour)
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrWrongVehicle) {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyRejectsMixAndMatch(t *testing.T) {
	// A stolen *director* key alone cannot push an image the image repo
	// never attested — the core Uptane property.
	f := newFixture(t)
	stolen := f.director.StealKey()
	evilPayload := []byte("malicious firmware")
	evil := MakeTarget("brake-fw", 3, "brake-mcu-r2", evilPayload)
	b := &Bundle{
		Director: ForgeMetadata(stolen, "director", "VIN-0001", 10, []Target{evil}, sim.Hour),
		Image:    f.image.Sign("", []Target{f.target}, sim.Hour), // legit image metadata
		Payloads: map[string][]byte{"brake-fw": evilPayload},
	}
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrMixAndMatch) {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyBothKeysStolenSucceeds(t *testing.T) {
	// With BOTH repository keys an attacker wins — the model's honest
	// boundary, and the reason key extraction (E2/E3) matters so much.
	f := newFixture(t)
	evilPayload := []byte("malicious firmware")
	evil := MakeTarget("brake-fw", 3, "brake-mcu-r2", evilPayload)
	b := &Bundle{
		Director: ForgeMetadata(f.director.StealKey(), "director", "VIN-0001", 10, []Target{evil}, sim.Hour),
		Image:    ForgeMetadata(f.image.StealKey(), "image", "", 10, []Target{evil}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": evilPayload},
	}
	if err := f.client.Apply(b, sim.Minute); err != nil {
		t.Fatalf("two-key compromise should succeed in the model: %v", err)
	}
}

func TestApplyRejectsWrongHW(t *testing.T) {
	f := newFixture(t)
	wrong := MakeTarget("brake-fw", 2, "steering-mcu-r1", f.payload)
	b := &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{wrong}, sim.Hour),
		Image:    f.image.Sign("", []Target{wrong}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": f.payload},
	}
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrWrongHW) {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyRejectsTamperedPayload(t *testing.T) {
	f := newFixture(t)
	b := f.bundle(sim.Hour)
	b.Payloads["brake-fw"] = append([]byte(nil), f.payload...)
	b.Payloads["brake-fw"][3] ^= 0xFF
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("err=%v", err)
	}
}

func TestApplyRejectsMissingPayload(t *testing.T) {
	f := newFixture(t)
	b := f.bundle(sim.Hour)
	delete(b.Payloads, "brake-fw")
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err=%v", err)
	}
	if err := f.client.Apply(&Bundle{}, sim.Minute); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("empty bundle: err=%v", err)
	}
}

func TestApplyAllOrNothing(t *testing.T) {
	// Two targets, one broken: neither installs.
	f := newFixture(t)
	f.client.AddECU("ivi-soc-r1", 1)
	good := f.target
	badPayload := []byte("ivi image")
	bad := MakeTarget("ivi-fw", 2, "ivi-soc-r1", badPayload)
	b := &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{good, bad}, sim.Hour),
		Image:    f.image.Sign("", []Target{good, bad}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": f.payload, "ivi-fw": []byte("WRONG")},
	}
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("err=%v", err)
	}
	brake, _ := f.client.ECU("brake-mcu-r2")
	ivi, _ := f.client.ECU("ivi-soc-r1")
	if brake.InstalledVersion != 1 || ivi.InstalledVersion != 1 {
		t.Fatal("partial install happened")
	}
}

func TestApplySequentialCampaigns(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Apply(f.bundle(sim.Hour), sim.Minute); err != nil {
		t.Fatal(err)
	}
	p3 := []byte("brake firmware v3")
	t3 := MakeTarget("brake-fw", 3, "brake-mcu-r2", p3)
	b := &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{t3}, sim.Hour),
		Image:    f.image.Sign("", []Target{t3}, sim.Hour),
		Payloads: map[string][]byte{"brake-fw": p3},
	}
	if err := f.client.Apply(b, 2*sim.Minute); err != nil {
		t.Fatal(err)
	}
	ecu, _ := f.client.ECU("brake-mcu-r2")
	if ecu.InstalledVersion != 3 {
		t.Fatalf("version=%d", ecu.InstalledVersion)
	}
}

func TestApplyUnknownECU(t *testing.T) {
	f := newFixture(t)
	tgt := MakeTarget("x", 2, "nonexistent-hw", f.payload)
	b := &Bundle{
		Director: f.director.Sign("VIN-0001", []Target{tgt}, sim.Hour),
		Image:    f.image.Sign("", []Target{tgt}, sim.Hour),
		Payloads: map[string][]byte{"x": f.payload},
	}
	// Unknown hardware surfaces as ErrWrongHW.
	if err := f.client.Apply(b, sim.Minute); !errors.Is(err, ErrWrongHW) {
		t.Fatalf("err=%v", err)
	}
}
