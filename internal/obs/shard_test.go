package obs

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// shardTestRegistry builds a registry with every instrument class and
// fills it with values derived from rng — arbitrary float64s, not just
// exactly-representable ones, because the shard fold's bit-identity
// claims hold for all inputs (fold-from-+0.0, see Accumulate).
func shardTestRegistry(rng *rand.Rand) *Registry {
	r := NewRegistry()
	r.Counter("a/events").Add(int64(rng.Intn(100)))
	r.Counter("b/drops").Add(int64(rng.Intn(10)))
	r.Gauge("a/level").Set(rng.NormFloat64())
	r.Gauge("z/depth").Set(rng.NormFloat64() * 1e-3)
	h := r.Histogram("a/lat_us", []float64{1, 10, 100})
	for i, n := 0, rng.Intn(8); i < n; i++ {
		h.Observe(rng.NormFloat64() * 50)
	}
	p1, p2 := rng.NormFloat64(), rng.Float64()*1e6
	r.Probe("a/probe", func() float64 { return p1 })
	r.Probe("q/probe", func() float64 { return p2 })
	return r
}

func promBytes(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardRoundTrip pins Export+MergeInto against Materialize+Merge:
// flattening a registry through a shard and folding it into a fresh
// registry must reproduce the registry-to-registry merge bit for bit.
func TestShardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		src := shardTestRegistry(rng)
		layout := NewShardLayout(src)
		shard := layout.Export(src)

		viaShard := NewRegistry()
		if err := layout.MergeInto(viaShard, shard); err != nil {
			t.Fatal(err)
		}
		src.Materialize()
		viaMerge := NewRegistry()
		if err := viaMerge.Merge(src); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaShard.Snapshot(), viaMerge.Snapshot()) {
			t.Fatalf("trial %d: shard round trip diverged from Merge:\n%v\n%v",
				trial, viaShard.Snapshot(), viaMerge.Snapshot())
		}
		if !bytes.Equal(promBytes(t, viaShard), promBytes(t, viaMerge)) {
			t.Fatalf("trial %d: shard round trip exposition diverged from Merge", trial)
		}
	}
}

// TestAccumulateEqualsSequentialMerge pins the barrier fast path: summing
// shards into one accumulator and merging once must be bit-identical to
// merging each shard into a fresh registry in the same order.
func TestAccumulateEqualsSequentialMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(9)
		var layout *ShardLayout
		shards := make([]Shard, n)
		for i := range shards {
			src := shardTestRegistry(rng)
			l := NewShardLayout(src)
			if layout == nil {
				layout = l
			} else if !layout.EqualShape(l) {
				t.Fatal("test registries must be shape-equal")
			}
			shards[i] = l.Export(src)
		}

		sequential := NewRegistry()
		for _, s := range shards {
			if err := layout.MergeInto(sequential, s); err != nil {
				t.Fatal(err)
			}
		}

		var acc Shard
		for _, s := range shards {
			if err := layout.Accumulate(&acc, s); err != nil {
				t.Fatal(err)
			}
		}
		accumulated := NewRegistry()
		if err := layout.MergeInto(accumulated, acc); err != nil {
			t.Fatal(err)
		}

		sa, sb := sequential.Snapshot(), accumulated.Snapshot()
		if len(sa) != len(sb) {
			t.Fatalf("trial %d: snapshot sizes differ: %d vs %d", trial, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i].Key != sb[i].Key || sa[i].Kind != sb[i].Kind {
				t.Fatalf("trial %d: snapshot keys differ at %d: %+v vs %+v", trial, i, sa[i], sb[i])
			}
			if math.Float64bits(sa[i].Value) != math.Float64bits(sb[i].Value) {
				t.Fatalf("trial %d: %q differs bitwise: %v vs %v", trial, sa[i].Key, sa[i].Value, sb[i].Value)
			}
		}
		// The exposition includes the exact histogram _sum, which the
		// flattened snapshot only covers through the mean.
		if !bytes.Equal(promBytes(t, sequential), promBytes(t, accumulated)) {
			t.Fatalf("trial %d: accumulated exposition diverged from sequential merge", trial)
		}
	}
}

// TestRewindKeepsProbesAndZeroes pins the Rewind contract the fleet
// driver's reattach fast path depends on: instruments zero in place,
// materialized readings drop, probe registrations survive.
func TestRewindKeepsProbesAndZeroes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(4)
	r.Histogram("h", []float64{10}).Observe(-3)
	live := 7.0
	r.Probe("p", func() float64 { return live })
	r.Materialize()

	r.Rewind()
	live = 11

	got := map[string]float64{}
	for _, m := range r.Snapshot() {
		got[m.Key] = m.Value
	}
	for k, v := range map[string]float64{"c": 0, "g": 0, "p": 11, "h/count": 0, "h/max": 0} {
		if got[k] != v {
			t.Fatalf("after Rewind, %q = %v, want %v", k, got[k], v)
		}
	}
}

// TestEqualShape covers the structural comparison the fleet barrier uses
// to pre-sum shards exported under distinct per-worker layouts.
func TestEqualShape(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := NewShardLayout(shardTestRegistry(rng))
	b := NewShardLayout(shardTestRegistry(rng))
	if !a.EqualShape(b) || !b.EqualShape(a) {
		t.Fatal("identically-shaped registries must compare shape-equal")
	}

	extra := shardTestRegistry(rng)
	extra.Counter("zz/extra").Inc()
	if a.EqualShape(NewShardLayout(extra)) {
		t.Fatal("extra counter key must break shape equality")
	}

	rebound := shardTestRegistry(rng)
	rebound.Histogram("other/lat", []float64{5, 50})
	if a.EqualShape(NewShardLayout(rebound)) {
		t.Fatal("different histogram key set must break shape equality")
	}
}
