package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec: the Ethernet II header with an optional 802.1Q tag, as a
// diagnostic or capture tool would see it. The simulator's switch moves
// Frame values directly; the codec exists for frame injection from byte
// captures and for fuzzing the parser against adversarial input.

// vlanTPID is the 802.1Q tag protocol identifier.
const vlanTPID = 0x8100

// ErrTruncated reports a byte slice too short to hold the declared header.
var ErrTruncated = errors.New("ethernet: truncated frame")

// Marshal renders the frame in wire order: destination, source, an
// optional 802.1Q tag when VLAN is nonzero, EtherType, payload. FCS,
// preamble and padding are transmission artifacts and are not encoded.
func (f *Frame) Marshal() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.EtherType == vlanTPID {
		// A payload EtherType equal to the TPID would re-parse as a
		// (possibly nested) tag; the codec has no QinQ representation.
		return nil, errors.New("ethernet: EtherType 0x8100 is reserved for the VLAN tag")
	}
	n := 14 + len(f.Payload)
	if f.VLAN != 0 {
		n += 4
	}
	out := make([]byte, 0, n)
	out = append(out, f.Dst[:]...)
	out = append(out, f.Src[:]...)
	if f.VLAN != 0 {
		out = binary.BigEndian.AppendUint16(out, vlanTPID)
		out = binary.BigEndian.AppendUint16(out, f.VLAN) // PCP/DEI zero
	}
	out = binary.BigEndian.AppendUint16(out, f.EtherType)
	return append(out, f.Payload...), nil
}

// Unmarshal parses a wire-order frame produced by Marshal (or captured
// off a real link). The payload aliases b. A tagged frame whose TCI
// carries priority bits keeps only the VLAN id — the simulator's Frame
// has no PCP field.
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < 14 {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	var f Frame
	copy(f.Dst[:], b[:6])
	copy(f.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	rest := b[14:]
	if et == vlanTPID {
		if len(rest) < 4 {
			return Frame{}, fmt.Errorf("%w: tag cut short", ErrTruncated)
		}
		f.VLAN = binary.BigEndian.Uint16(rest[:2]) & 0x0FFF
		et = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[4:]
		if et == vlanTPID {
			return Frame{}, errors.New("ethernet: nested VLAN tag (QinQ) not supported")
		}
	}
	f.EtherType = et
	f.Payload = rest
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
