package core

import (
	"fmt"
	"testing"

	"autosec/internal/netif"
)

// TestPoolReuseNoLeak runs many sequential acquire/run/release cycles on
// one pool, replaying the same scenario under the same seed every cycle.
// Any state leaking across a Reset — a counter not rewound, a quarantine
// flag left set, an audit entry surviving, a stream not reseeded —
// accumulates and diverges some later cycle's fingerprint from the first.
func TestPoolReuseNoLeak(t *testing.T) {
	cycles := 50
	if testing.Short() {
		cycles = 10
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"central", Config{VIN: "LEAK-C", MACBits: 32, PolicyKey: []byte("leak-key")}},
		{"zonal", Config{VIN: "LEAK-Z", Zonal: &ZonalConfig{
			Zones:        3,
			LocalDomains: []DomainSpec{{Name: "body", Kind: netif.CAN}},
		}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pool := NewVehiclePool(tc.cfg)
			const seed, scen = 0x5EED, 0x5CE0
			var first string
			for i := 0; i < cycles; i++ {
				v, err := pool.Acquire(seed)
				if err != nil {
					t.Fatalf("cycle %d: acquire: %v", i, err)
				}
				fp := eqScenario(t, v, scen)
				pool.Release(v)
				if i == 0 {
					first = fp
					continue
				}
				if fp != first {
					t.Fatalf("cycle %d diverged from cycle 0 — state leaked across Reset:\n%s",
						i, eqFirstDiff(first, fp))
				}
			}
			if pool.Misses != 1 || pool.Hits != cycles-1 {
				t.Fatalf("pool counters: misses=%d hits=%d, want 1/%d", pool.Misses, pool.Hits, cycles-1)
			}
		})
	}
}

// TestPoolDistinctSeedsDiverge guards the other direction: the reseeding
// performed by Reset must actually matter, or fleet runs would simulate
// the same vehicle N times.
func TestPoolDistinctSeedsDiverge(t *testing.T) {
	pool := NewVehiclePool(Config{VIN: "SEEDS"})
	fps := make(map[string]uint64)
	for _, seed := range []uint64{1, 2, 3} {
		v, err := pool.Acquire(seed)
		if err != nil {
			t.Fatal(err)
		}
		fp := eqScenario(t, v, 0x5CE0)
		pool.Release(v)
		if prev, dup := fps[fp]; dup {
			t.Fatalf("seeds %d and %d produced identical runs — Reset is not reseeding", prev, seed)
		}
		fps[fp] = seed
	}
}

// TestPoolReleaseNil documents that releasing nil is a no-op, so callers
// can release unconditionally on error paths.
func TestPoolReleaseNil(t *testing.T) {
	pool := NewVehiclePool(Config{VIN: "NIL"})
	pool.Release(nil)
	if _, err := pool.Acquire(1); err != nil {
		t.Fatalf("acquire after nil release: %v", err)
	}
	if pool.Misses != 1 {
		t.Fatalf("nil release must not enter the free list (misses=%d)", pool.Misses)
	}
}

// TestResetBeforeSeal pins the guard against resetting a Vehicle that was
// never sealed by NewVehicle (e.g. a zero-value struct).
func TestResetBeforeSeal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on an unsealed vehicle must panic")
		}
	}()
	var v Vehicle
	v.Reset(1)
}

func ExampleVehiclePool() {
	pool := NewVehiclePool(Config{VIN: "EXAMPLE"})
	for i := 0; i < 3; i++ {
		v, err := pool.Acquire(uint64(i + 1))
		if err != nil {
			panic(err)
		}
		_ = v.Kernel.RunUntil(1000)
		pool.Release(v)
	}
	fmt.Printf("misses=%d hits=%d\n", pool.Misses, pool.Hits)
	// Output: misses=1 hits=2
}
