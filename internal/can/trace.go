package can

import (
	"fmt"
	"sort"
	"strings"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Record is one observed frame with its completion time and sender name.
type Record struct {
	At        sim.Time
	Frame     Frame
	Sender    string
	Corrupted bool
}

// Trace is an in-order log of bus traffic, as captured by a sniffer tap.
// It is the interchange format between the bus simulation, the intrusion
// detection package and the canalyze tool.
type Trace struct {
	Records []Record
}

// Recorder attaches a trace-recording sniffer to the bus and returns the
// trace it fills.
func Recorder(b *Bus) *Trace {
	t := &Trace{}
	b.Sniff(func(at sim.Time, f *Frame, sender *Controller, corrupted bool) {
		name := ""
		if sender != nil {
			name = sender.Name
		}
		t.Records = append(t.Records, Record{At: at, Frame: f.Clone(), Sender: name, Corrupted: corrupted})
	})
	return t
}

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// IDs returns the distinct identifiers seen, sorted ascending.
func (t *Trace) IDs() []ID {
	set := make(map[ID]bool)
	for _, r := range t.Records {
		set[r.Frame.ID] = true
	}
	ids := make([]ID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ByID returns the records carrying the given identifier, in time order.
func (t *Trace) ByID(id ID) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.Frame.ID == id {
			out = append(out, r)
		}
	}
	return out
}

// Between returns records with lo <= At < hi.
func (t *Trace) Between(lo, hi sim.Time) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.At >= lo && r.At < hi {
			out = append(out, r)
		}
	}
	return out
}

// Intervals returns the successive inter-arrival times of the given
// identifier — the primary feature used by frequency-based intrusion
// detection.
func (t *Trace) Intervals(id ID) []sim.Duration {
	recs := t.ByID(id)
	if len(recs) < 2 {
		return nil
	}
	out := make([]sim.Duration, 0, len(recs)-1)
	for i := 1; i < len(recs); i++ {
		out = append(out, recs[i].At-recs[i-1].At)
	}
	return out
}

// String renders the trace in the candump-style text format — the same
// bytes WriteTrace produces, so there is exactly one trace rendering
// (and one timestamp format) in the package.
func (t *Trace) String() string {
	var b strings.Builder
	_ = WriteTrace(&b, t) // strings.Builder never errors
	return b.String()
}

// EmitObs replays the trace into an obs tracer, one instant per record,
// making a captured (or parsed) CAN trace an ordinary obs event source:
// subsystem "can", name "frame" (or "frame-error" for corrupted records),
// Str = sender, Arg1 = frame ID, Arg2 = payload length. Combined with
// Recorder this unifies the frame trace with the cross-layer tracer —
// the candump text format (WriteTrace) and the Chrome/timeline exports
// all render the same records. No-op on a nil tracer.
func (t *Trace) EmitObs(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	sub := tr.Label("can")
	frame := tr.Label("frame")
	frameErr := tr.Label("frame-error")
	for _, r := range t.Records {
		name := frame
		if r.Corrupted {
			name = frameErr
		}
		tr.Instant(r.At, sub, name, tr.Label(r.Sender), int64(r.Frame.ID), int64(len(r.Frame.Data)))
	}
}

// PeriodicSender schedules frame transmissions with a fixed period and
// optional uniform jitter, modelling a cyclic application message. It
// returns a stop function.
func PeriodicSender(k *sim.Kernel, c *Controller, f Frame, period sim.Duration, jitterFrac float64) (stop func()) {
	if period <= 0 {
		panic("can: periodic sender requires positive period")
	}
	js := k.Stream("can.periodic." + c.Name + "." + fmt.Sprint(uint32(f.ID)))
	stopped := false
	var schedule func()
	schedule = func() {
		if stopped {
			return
		}
		_ = c.Send(f, nil) // queue-full / bus-off drops are recorded by the controller
		next := period
		if jitterFrac > 0 {
			next = js.Jitter(period, jitterFrac)
		}
		k.After(next, schedule)
	}
	k.After(js.Duration(0, period), schedule) // desynchronize start phases
	return func() { stopped = true }
}
