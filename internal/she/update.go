package she

import (
	"bytes"
	"crypto/subtle"
	"fmt"
)

// This file implements the SHE memory-update protocol (spec §9.1): the
// authenticated, confidential in-field key provisioning mechanism that the
// paper's OTA and fleet experiments build on. A key update is carried by
// three messages M1..M3 produced by the party that knows the authorizing
// key; the device answers with the confirmation pair M4, M5.

// CounterMax is the largest 28-bit update counter value.
const CounterMax = 1<<28 - 1

// UpdateRequest is the M1|M2|M3 triple.
type UpdateRequest struct {
	M1 [16]byte // UID (120 bits) | target ID (4 bits) | auth ID (4 bits)
	M2 [32]byte // ENC_CBC(K1, counter|flags|0...|newKey)
	M3 [16]byte // CMAC(K2, M1|M2)
}

// UpdateConfirmation is the M4|M5 pair returned by a successful load.
type UpdateConfirmation struct {
	M4 [32]byte // UID|ID|AuthID | ENC_ECB(K3, counter|1|0...)
	M5 [16]byte // CMAC(K4, M4)
}

// BuildUpdate constructs M1..M3 for installing newKey into slot target,
// authorized by authKey held in slot authID on the device with the given
// uid. counter must exceed the slot's stored counter (28 bits).
//
// This is the *tool-side* half of the protocol: an OEM key server (or an
// attacker who has extracted authKey — experiment E3) runs it.
func BuildUpdate(uid UID, target, authID KeyID, authKey, newKey [BlockSize]byte, counter uint32, flags Flags) (*UpdateRequest, error) {
	if counter > CounterMax {
		return nil, fmt.Errorf("she: counter %d exceeds 28 bits", counter)
	}
	if target <= SecretKey || target >= numKeys || target == RAMKey {
		return nil, ErrKeyInvalid
	}
	k1 := KDF(authKey, KeyUpdateEncC)
	k2 := KDF(authKey, KeyUpdateMacC)

	var req UpdateRequest
	copy(req.M1[:15], uid[:])
	req.M1[15] = byte(target)<<4 | byte(authID)&0x0F

	// B1|B2: counter(28) | flags(5) | zeros(95) | key(128).
	var plain [32]byte
	packCounterFlags(plain[:16], counter, flags.pack())
	copy(plain[16:], newKey[:])
	ct, err := encryptCBC(k1[:], make([]byte, BlockSize), plain[:])
	if err != nil {
		return nil, err
	}
	copy(req.M2[:], ct)

	mac, err := CMAC(k2[:], append(append([]byte{}, req.M1[:]...), req.M2[:]...))
	if err != nil {
		return nil, err
	}
	copy(req.M3[:], mac)
	return &req, nil
}

// packCounterFlags writes counter (28 bits) then flags (5 bits) MSB-first
// into the first 33 bits of dst, leaving the remaining bits zero.
func packCounterFlags(dst []byte, counter uint32, flags byte) {
	v := uint64(counter)<<36 | uint64(flags)<<31 // 64-bit prefix of the block
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// unpackCounterFlags inverts packCounterFlags and verifies the zero
// padding of the first block.
func unpackCounterFlags(src []byte) (counter uint32, flags byte, ok bool) {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(src[i])
	}
	counter = uint32(v >> 36)
	flags = byte(v >> 31 & 0x1F)
	// Bits below the flag field and bytes 8..15 must be zero.
	if v&0x7FFFFFFF != 0 {
		return 0, 0, false
	}
	for _, b := range src[8:16] {
		if b != 0 {
			return 0, 0, false
		}
	}
	return counter, flags, true
}

// LoadKey executes CMD_LOAD_KEY: verifies and installs an update request,
// returning the M4|M5 confirmation on success.
func (e *Engine) LoadKey(req *UpdateRequest) (*UpdateConfirmation, error) {
	target := KeyID(req.M1[15] >> 4)
	authID := KeyID(req.M1[15] & 0x0F)
	if target <= SecretKey || target >= numKeys || target == RAMKey {
		return nil, ErrKeyInvalid
	}
	auth := &e.slots[authID]
	if !auth.valid {
		return nil, fmt.Errorf("%w: auth slot %v", ErrKeyEmpty, authID)
	}
	tslot := &e.slots[target]
	if tslot.flags.WriteProtection && tslot.valid {
		return nil, fmt.Errorf("%w: %v", ErrKeyWriteProtected, target)
	}

	k1 := KDF(auth.key, KeyUpdateEncC)
	k2 := KDF(auth.key, KeyUpdateMacC)

	mac, err := CMAC(k2[:], append(append([]byte{}, req.M1[:]...), req.M2[:]...))
	if err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(mac, req.M3[:]) != 1 {
		return nil, ErrUpdateAuth
	}

	// UID check: the request's UID must match this device, unless it is the
	// wildcard UID and the target slot permits wildcard updates.
	var reqUID UID
	copy(reqUID[:], req.M1[:15])
	if reqUID != e.uid {
		wildcardOK := reqUID == WildcardUID && (!tslot.valid || tslot.flags.Wildcard)
		if !wildcardOK {
			return nil, ErrUIDMismatch
		}
	}

	plain, err := decryptCBC(k1[:], make([]byte, BlockSize), req.M2[:])
	if err != nil {
		return nil, err
	}
	counter, flagBits, ok := unpackCounterFlags(plain[:16])
	if !ok {
		return nil, ErrUpdateAuth
	}
	if tslot.valid && counter <= tslot.counter {
		return nil, fmt.Errorf("%w: %d <= %d", ErrCounterReplay, counter, tslot.counter)
	}

	var newKey [BlockSize]byte
	copy(newKey[:], plain[16:])
	tslot.key = newKey
	tslot.counter = counter
	tslot.flags = unpackFlags(flagBits)
	tslot.valid = true

	return e.confirm(req.M1, newKey, counter)
}

// confirm builds M4|M5 from the installed key.
func (e *Engine) confirm(m1 [16]byte, newKey [BlockSize]byte, counter uint32) (*UpdateConfirmation, error) {
	k3 := KDF(newKey, KeyUpdateEncC)
	k4 := KDF(newKey, KeyUpdateMacC)

	var proofPlain [16]byte
	// counter(28) | 1 | 0... — the set bit marks a successful write.
	v := uint64(counter)<<36 | 1<<35
	for i := 0; i < 8; i++ {
		proofPlain[i] = byte(v >> (56 - 8*i))
	}
	proof, err := encryptECB(k3[:], proofPlain[:])
	if err != nil {
		return nil, err
	}
	var conf UpdateConfirmation
	copy(conf.M4[:16], m1[:])
	copy(conf.M4[16:], proof)
	mac, err := CMAC(k4[:], conf.M4[:])
	if err != nil {
		return nil, err
	}
	copy(conf.M5[:], mac)
	return &conf, nil
}

// VerifyConfirmation lets the tool side check M4|M5 against the key and
// counter it sent — proof that the device really installed the key.
func VerifyConfirmation(conf *UpdateConfirmation, uid UID, target, authID KeyID, newKey [BlockSize]byte, counter uint32) error {
	k3 := KDF(newKey, KeyUpdateEncC)
	k4 := KDF(newKey, KeyUpdateMacC)

	var m1 [16]byte
	copy(m1[:15], uid[:])
	m1[15] = byte(target)<<4 | byte(authID)&0x0F
	if !bytes.Equal(conf.M4[:16], m1[:]) {
		return fmt.Errorf("she: confirmation M1 mismatch")
	}
	mac, err := CMAC(k4[:], conf.M4[:])
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(mac, conf.M5[:]) != 1 {
		return fmt.Errorf("she: confirmation M5 mismatch")
	}
	proof, err := decryptECB(k3[:], conf.M4[16:])
	if err != nil {
		return err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(proof[i])
	}
	if uint32(v>>36) != counter || v>>35&1 != 1 {
		return fmt.Errorf("she: confirmation counter/status mismatch")
	}
	return nil
}
