package workload

import (
	"math"

	"autosec/internal/sensors"
	"autosec/internal/sim"
)

// TruthFromCycle converts a drive cycle into the sensor ground truth the
// fusion module consumes: the vehicle integrates the phase speeds along a
// straight road, and obstacle distance reflects traffic density (dense
// phases put slower traffic ahead; empty highway is clear to the sensing
// horizon).
func TruthFromCycle(c Cycle) sensors.TruthFunc {
	// Precompute cumulative distance at each phase boundary so position
	// is continuous across speed changes.
	type boundary struct {
		at   sim.Time
		dist float64
	}
	var bounds []boundary
	var dist float64
	var prev sim.Time
	for _, p := range c.Phases {
		bounds = append(bounds, boundary{at: prev, dist: dist})
		dist += p.SpeedMS * (p.Until - prev).Seconds()
		prev = p.Until
	}
	total := dist
	length := c.Length()

	return func(at sim.Time) sensors.VehicleState {
		if length == 0 {
			return sensors.VehicleState{ObstacleDist: math.Inf(1)}
		}
		laps := int64(at / length)
		t := at % length
		p := c.At(t)
		// Find the phase boundary at or before t.
		var base boundary
		for i, b := range bounds {
			if b.at <= t {
				base = bounds[i]
			}
		}
		x := float64(laps)*total + base.dist + p.SpeedMS*(t-base.at).Seconds()
		obstacle := math.Inf(1)
		if p.PedestrianDensity > 0.3 {
			// Dense traffic: a lead vehicle at ~2s headway. It enters the
			// scene from the 200m sensing horizon at the start of the
			// phase and closes at a plausible 25 m/s, so sensors never see
			// it materialize out of nothing.
			headway := math.Max(5, 2*p.SpeedMS)
			intoPhase := (t - base.at).Seconds()
			obstacle = math.Max(headway, 200-25*intoPhase)
		}
		return sensors.VehicleState{
			Pos:          sensors.Position{X: x},
			SpeedMS:      p.SpeedMS,
			ObstacleDist: obstacle,
		}
	}
}
