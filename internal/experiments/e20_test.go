package experiments

import "testing"

// TestE20WorkerCountInvariance is the experiment-level half of the
// observability par-invariance claim: the full E20 table — merged
// metrics, trace selection, incident counts — must be byte-identical
// whether the fleet runs on one worker or eight. (CI additionally diffs
// the benchreport-generated table and the Prometheus exposition across
// -fleetpar values.)
func TestE20WorkerCountInvariance(t *testing.T) {
	sizes := []int{300}
	a := E20ObservabilityWith(3, sizes, 1).String()
	b := E20ObservabilityWith(3, sizes, 8).String()
	if a != b {
		t.Fatalf("E20 table differs between 1 and 8 workers:\n--- par=1\n%s\n--- par=8\n%s", a, b)
	}
}

// TestE20ModesShareDeterministicMetrics pins two structural properties:
// enabling tracing must not perturb the merged metrics, and the off mode
// must produce no observability artifacts at all.
func TestE20ModesShareDeterministicMetrics(t *testing.T) {
	tbl := E20ObservabilityWith(5, []int{250}, 0)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(tbl.Rows))
	}
	off, metrics, traced := tbl.Rows[0], tbl.Rows[1], tbl.Rows[2]
	// Columns: fleet, mode, keys, frames ok, deliveries, appends, incident
	// vehicles, traces kept, incident traces.
	for c := 2; c <= 5; c++ {
		if off[c] != "0" {
			t.Fatalf("off mode column %q = %s, want 0", tbl.Columns[c], off[c])
		}
		if metrics[c] != traced[c] {
			t.Fatalf("column %q differs between metrics (%s) and metrics+traces (%s) — tracing perturbed the registry",
				tbl.Columns[c], metrics[c], traced[c])
		}
	}
	if off[7] != "0" || metrics[7] != "0" {
		t.Fatal("traces kept must be 0 outside the traced mode")
	}
	if traced[7] == "0" {
		t.Fatal("traced mode kept no traces")
	}
	// Incident vehicles are counted from audit state, identically in all
	// three modes — observability must never change simulation behavior.
	if off[6] != metrics[6] || metrics[6] != traced[6] {
		t.Fatalf("incident vehicles differ across modes: %s / %s / %s", off[6], metrics[6], traced[6])
	}
}
