// Quickstart: build the standard three-domain vehicle, drive it for five
// virtual seconds, exercise authenticated CAN, and print the security
// architecture inventory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

func main() {
	v, err := core.NewVehicle(core.Config{VIN: "QUICKSTART-01", Seed: 42, MACBits: 32})
	if err != nil {
		log.Fatal(err)
	}

	// Provision the IVN authentication key into the SHE and train the IDS
	// on a clean reference corpus.
	var key [16]byte
	copy(key[:], "demo-ivn-mac-key")
	if err := v.ProvisionMACKey(key); err != nil {
		log.Fatal(err)
	}
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, 42, 0.01).Netif())

	// Two application nodes on the chassis domain exchanging an
	// authenticated message.
	tx := can.NewController("steering-angle-sensor")
	rx := can.NewController("lane-keep-assist")
	v.Buses[core.DomainChassis].Attach(tx)
	v.Buses[core.DomainChassis].Attach(rx)
	rx.OnReceive(func(at sim.Time, f *can.Frame, _ *can.Controller) {
		payload, err := v.VerifyAuthenticated(f)
		if err != nil {
			fmt.Printf("[%v] REJECTED frame %s: %v\n", at, f, err)
			return
		}
		fmt.Printf("[%v] authenticated steering angle: %d\n", at, payload[0])
	})

	// Drive: periodic matrices on powertrain and infotainment, plus our
	// authenticated message at 1 Hz.
	v.StartTraffic()
	v.Kernel.Every(sim.Second, sim.Second, func() {
		angle := byte(v.Kernel.Now() / sim.Second * 3)
		if err := v.AuthenticatedSend(tx, 0x1C5, []byte{angle, 0, 0}); err != nil {
			log.Fatal(err)
		}
	})
	// An unauthenticated forgery attempt partway through.
	v.Kernel.At(2500*sim.Millisecond, func() {
		forger := can.NewController("forger")
		v.Buses[core.DomainChassis].Attach(forger)
		_ = forger.Send(can.Frame{ID: 0x1C5, Data: []byte{99, 0, 0, 1, 2, 3, 4}}, nil)
	})

	if err := v.Kernel.RunUntil(5 * sim.Second); err != nil {
		log.Fatal(err)
	}
	v.StopTraffic()

	fmt.Println("\n--- after 5s of virtual driving ---")
	// Sort the map keys so the report is byte-identical run to run.
	busNames := make([]string, 0, len(v.Buses))
	for name := range v.Buses {
		busNames = append(busNames, name)
	}
	sort.Strings(busNames)
	for _, name := range busNames {
		bus := v.Buses[name]
		fmt.Printf("%-13s load=%5.2f%% frames=%d\n", name, 100*bus.Load(), bus.FramesOK.Value)
	}
	fmt.Printf("auth failures caught: %d\n", v.AuthFailures.Value)
	fmt.Printf("IDS: %s\n", v.IDS.Summary())
	fmt.Println("\n4+1 architecture inventory:")
	inv := v.Arch.Inventory()
	layers := make([]string, 0, len(inv))
	for layer := range inv {
		layers = append(layers, layer)
	}
	sort.Strings(layers)
	for _, layer := range layers {
		fmt.Printf("  %-18s %v\n", layer, inv[layer])
	}
}
