package experiments

import "testing"

func TestE15VerifyScalingShape(t *testing.T) {
	tb := E15VerifyScaling(1)
	if len(tb.Rows) != 12 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Row layout: 3 pipelines per density; densest block is rows 9..11.
	fifoDense, prioDense := 9, 10
	// Both software pipelines saturate at 100 vehicles...
	if cellF(t, tb, fifoDense, 4) == 0 || cellF(t, tb, prioDense, 4) == 0 {
		t.Fatalf("software pipelines never dropped at 100 vehicles\n%s", tb)
	}
	// ...but FIFO loses near (safety-relevant) messages while the
	// prioritized pipeline protects them completely.
	if cellF(t, tb, fifoDense, 5) == 0 {
		t.Fatalf("FIFO lost no near messages\n%s", tb)
	}
	if cellF(t, tb, prioDense, 5) != 0 {
		t.Fatalf("priority pipeline lost near messages\n%s", tb)
	}
	// Near p99: priority ≪ FIFO under saturation.
	if cellF(t, tb, prioDense, 6)*5 > cellF(t, tb, fifoDense, 6) {
		t.Fatalf("priority near p99 not much better\n%s", tb)
	}
	// The accelerated pipeline never drops.
	for _, row := range []int{2, 5, 8, 11} {
		if cellF(t, tb, row, 4) != 0 {
			t.Fatalf("accelerated pipeline dropped (row %d)\n%s", row, tb)
		}
	}
	// At low density nothing drops anywhere.
	for row := 0; row < 3; row++ {
		if cellF(t, tb, row, 4) != 0 {
			t.Fatalf("drops at 10 vehicles\n%s", tb)
		}
	}
}
