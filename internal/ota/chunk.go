package ota

import (
	"errors"
	"fmt"
)

// Chunked delivery: large images cross the vehicle's telematics link in
// pieces, and on CAN-based legs in very small pieces. Each chunk is
// individually hashed in a chunk manifest so a receiver can verify
// incrementally and request selective retransmission, rather than
// discovering corruption only after assembling hundreds of megabytes.

// ChunkManifest lists per-chunk hashes for one payload.
type ChunkManifest struct {
	Name      string
	ChunkSize int
	Total     int // total payload length
	Hashes    [][32]byte
}

// Chunk is one transfer unit.
type Chunk struct {
	Name  string
	Index int
	Data  []byte
}

// Split cuts a payload into chunks and builds its manifest.
func Split(name string, payload []byte, chunkSize int) (ChunkManifest, []Chunk, error) {
	if chunkSize <= 0 {
		return ChunkManifest{}, nil, errors.New("ota: chunk size must be positive")
	}
	m := ChunkManifest{Name: name, ChunkSize: chunkSize, Total: len(payload)}
	var chunks []Chunk
	for i := 0; i < len(payload); i += chunkSize {
		end := i + chunkSize
		if end > len(payload) {
			end = len(payload)
		}
		data := append([]byte(nil), payload[i:end]...)
		m.Hashes = append(m.Hashes, HashPayload(data))
		chunks = append(chunks, Chunk{Name: name, Index: i / chunkSize, Data: data})
	}
	return m, chunks, nil
}

// Assembler verifies chunks against a manifest and reassembles the
// payload. Chunks may arrive in any order; duplicates are idempotent.
type Assembler struct {
	manifest ChunkManifest
	have     [][]byte
	count    int

	BadChunks int // chunks rejected for hash/index errors
}

// NewAssembler starts assembly for a manifest.
func NewAssembler(m ChunkManifest) *Assembler {
	return &Assembler{manifest: m, have: make([][]byte, len(m.Hashes))}
}

// Add verifies and stores one chunk. It reports whether the chunk was
// accepted.
func (a *Assembler) Add(c Chunk) bool {
	if c.Name != a.manifest.Name || c.Index < 0 || c.Index >= len(a.manifest.Hashes) {
		a.BadChunks++
		return false
	}
	if HashPayload(c.Data) != a.manifest.Hashes[c.Index] {
		a.BadChunks++
		return false
	}
	if a.have[c.Index] == nil {
		a.count++
	}
	a.have[c.Index] = c.Data
	return true
}

// Missing lists the chunk indices still needed.
func (a *Assembler) Missing() []int {
	var out []int
	for i, h := range a.have {
		if h == nil {
			out = append(out, i)
		}
	}
	return out
}

// Complete reports whether all chunks arrived.
func (a *Assembler) Complete() bool { return a.count == len(a.have) }

// Assemble returns the reassembled payload, or ErrIncomplete.
func (a *Assembler) Assemble() ([]byte, error) {
	if !a.Complete() {
		return nil, fmt.Errorf("%w: %d chunks missing", ErrIncomplete, len(a.have)-a.count)
	}
	out := make([]byte, 0, a.manifest.Total)
	for _, d := range a.have {
		out = append(out, d...)
	}
	if len(out) != a.manifest.Total {
		return nil, fmt.Errorf("%w: assembled %d bytes, manifest says %d", ErrHashMismatch, len(out), a.manifest.Total)
	}
	return out, nil
}
