// Package ota implements an over-the-air software update framework in the
// style the paper calls for ("facilities for in-field OTA updates to
// software, firmware, or even hardware configurations" whose update flow
// "itself must be upgradable"). The design is Uptane-flavoured: two
// independent repositories — a *director* that targets updates at a
// specific vehicle and an *image* repository that attests what images
// exist — must agree before an ECU installs anything. Signed metadata
// carries monotonic version counters (anti-rollback), expiry times,
// per-image hashes and hardware-compatibility identifiers.
//
// The threat experiment E10 drives this package through its attack
// matrix: forged metadata, replayed old versions, wrong-hardware images,
// a stolen single-repository key, tampered payloads and truncated
// bundles must all be rejected; only a fully consistent fresh bundle
// installs.
package ota

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Target describes one installable image.
type Target struct {
	Name    string
	Version uint64
	// HWID names the ECU hardware the image is compatible with.
	HWID   string
	Length int
	Hash   [32]byte
}

// Metadata is a signed targets statement from one repository.
type Metadata struct {
	Repo    string // "director" or "image"
	Version uint64 // metadata version counter (anti-rollback)
	Expires sim.Time
	// VehicleID scopes director metadata to one vehicle ("" for the image
	// repository, whose statements are fleet-wide).
	VehicleID string
	Targets   []Target

	Sig []byte
}

// canonical renders the signed portion deterministically.
func (m *Metadata) canonical() []byte {
	var b bytes.Buffer
	b.WriteString(m.Repo)
	b.WriteByte(0)
	binary.Write(&b, binary.BigEndian, m.Version)
	binary.Write(&b, binary.BigEndian, uint64(m.Expires))
	b.WriteString(m.VehicleID)
	b.WriteByte(0)
	ts := append([]Target(nil), m.Targets...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	for _, t := range ts {
		b.WriteString(t.Name)
		b.WriteByte(0)
		binary.Write(&b, binary.BigEndian, t.Version)
		b.WriteString(t.HWID)
		b.WriteByte(0)
		binary.Write(&b, binary.BigEndian, uint64(t.Length))
		b.Write(t.Hash[:])
	}
	return b.Bytes()
}

// Repository is a metadata signer (director or image repo).
type Repository struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey

	nextVersion uint64
}

// NewRepository creates a repository with a fresh signing key.
func NewRepository(name string) (*Repository, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Repository{Name: name, priv: priv, pub: pub, nextVersion: 1}, nil
}

// PublicKey returns the repository's verification key.
func (r *Repository) PublicKey() ed25519.PublicKey { return r.pub }

// StealKey returns the private key, modelling the side-channel key
// extraction of experiment E3/E10. It exists so attacks are explicit in
// scenario code; a production system would obviously not export this.
func (r *Repository) StealKey() ed25519.PrivateKey { return r.priv }

// Sign publishes signed metadata with the next version counter.
func (r *Repository) Sign(vehicleID string, targets []Target, expires sim.Time) *Metadata {
	m := &Metadata{
		Repo:      r.Name,
		Version:   r.nextVersion,
		Expires:   expires,
		VehicleID: vehicleID,
		Targets:   append([]Target(nil), targets...),
	}
	r.nextVersion++
	m.Sig = ed25519.Sign(r.priv, m.canonical())
	return m
}

// ForgeMetadata signs arbitrary metadata with a (presumably stolen) key —
// the attacker-side primitive.
func ForgeMetadata(key ed25519.PrivateKey, repo, vehicleID string, version uint64, targets []Target, expires sim.Time) *Metadata {
	m := &Metadata{Repo: repo, Version: version, Expires: expires, VehicleID: vehicleID, Targets: targets}
	m.Sig = ed25519.Sign(key, m.canonical())
	return m
}

// HashPayload computes a target payload hash.
func HashPayload(p []byte) [32]byte { return sha256.Sum256(p) }

// MakeTarget builds a Target from an image payload.
func MakeTarget(name string, version uint64, hwid string, payload []byte) Target {
	return Target{Name: name, Version: version, HWID: hwid, Length: len(payload), Hash: HashPayload(payload)}
}

// Bundle is what a vehicle receives in one update campaign: both
// repositories' metadata plus the image payloads.
type Bundle struct {
	Director *Metadata
	Image    *Metadata
	Payloads map[string][]byte
}

// Verification errors — one per row of the E10 attack matrix.
var (
	ErrBadSignature = errors.New("ota: metadata signature invalid")
	ErrRollback     = errors.New("ota: metadata or target version rollback")
	ErrExpiredMeta  = errors.New("ota: metadata expired")
	ErrWrongVehicle = errors.New("ota: director metadata for a different vehicle")
	ErrMixAndMatch  = errors.New("ota: director and image repositories disagree")
	ErrWrongHW      = errors.New("ota: image hardware ID does not match ECU")
	ErrHashMismatch = errors.New("ota: payload hash mismatch")
	ErrIncomplete   = errors.New("ota: bundle is missing payloads")
	ErrUnknownECU   = errors.New("ota: no ECU with that hardware ID")
)

// ECUState is the client-side record for one ECU.
type ECUState struct {
	HWID             string
	InstalledName    string
	InstalledVersion uint64
}

// Client is the vehicle-side update verifier (the "primary" in Uptane
// terms).
type Client struct {
	VehicleID string

	directorKey ed25519.PublicKey
	imageKey    ed25519.PublicKey

	lastDirectorVersion uint64
	lastImageVersion    uint64

	ecus map[string]*ECUState // by HWID

	Installed sim.Counter
	Rejected  sim.Counter

	// Observability (nil when off); see Instrument in obs.go.
	obsTr      *obs.Tracer
	obsSub     obs.Label
	obsVerify  obs.Label
	obsInstall obs.Label
	obsReject  obs.Label
}

// NewClient creates a client trusting the two repository keys.
func NewClient(vehicleID string, directorKey, imageKey ed25519.PublicKey) *Client {
	return &Client{
		VehicleID:   vehicleID,
		directorKey: directorKey,
		imageKey:    imageKey,
		ecus:        make(map[string]*ECUState),
	}
}

// AddECU registers an ECU by hardware ID with its factory firmware version.
func (c *Client) AddECU(hwid string, installedVersion uint64) {
	c.ecus[hwid] = &ECUState{HWID: hwid, InstalledVersion: installedVersion}
}

// ECU returns the state for a hardware ID.
func (c *Client) ECU(hwid string) (*ECUState, bool) {
	e, ok := c.ecus[hwid]
	return e, ok
}

// verifyMeta checks one repository's signature, freshness and counters.
func (c *Client) verifyMeta(m *Metadata, key ed25519.PublicKey, lastVersion uint64, now sim.Time) error {
	if !ed25519.Verify(key, m.canonical(), m.Sig) {
		return fmt.Errorf("%w: repo %s", ErrBadSignature, m.Repo)
	}
	if m.Expires != 0 && now > m.Expires {
		return fmt.Errorf("%w: repo %s at %v", ErrExpiredMeta, m.Repo, now)
	}
	if m.Version <= lastVersion {
		return fmt.Errorf("%w: repo %s version %d <= %d", ErrRollback, m.Repo, m.Version, lastVersion)
	}
	return nil
}

// Apply verifies a bundle at virtual time now and, if everything checks
// out, installs the targets into the matching ECUs. It is all-or-nothing:
// any failure leaves every ECU untouched.
func (c *Client) Apply(b *Bundle, now sim.Time) error {
	if c.obsTr != nil {
		c.obsTr.Instant(now, c.obsSub, c.obsVerify, 0, 0, 0)
	}
	if err := c.apply(b, now); err != nil {
		c.Rejected.Inc()
		if c.obsTr != nil {
			c.obsTr.Instant(now, c.obsSub, c.obsReject, c.obsTr.Label(errClass(err)), 0, 0)
		}
		return err
	}
	c.Installed.Inc()
	if c.obsTr != nil {
		targets := 0
		if b.Director != nil {
			targets = len(b.Director.Targets)
		}
		c.obsTr.Instant(now, c.obsSub, c.obsInstall, c.obsTr.Label(c.VehicleID), int64(targets), 0)
	}
	return nil
}

func (c *Client) apply(b *Bundle, now sim.Time) error {
	if b.Director == nil || b.Image == nil {
		return ErrIncomplete
	}
	if err := c.verifyMeta(b.Director, c.directorKey, c.lastDirectorVersion, now); err != nil {
		return err
	}
	if err := c.verifyMeta(b.Image, c.imageKey, c.lastImageVersion, now); err != nil {
		return err
	}
	if b.Director.VehicleID != c.VehicleID {
		return fmt.Errorf("%w: %q", ErrWrongVehicle, b.Director.VehicleID)
	}

	// Every director target must be attested, byte for byte, by the image
	// repository: this is the two-party control that makes a single stolen
	// key insufficient.
	imageByName := make(map[string]Target, len(b.Image.Targets))
	for _, t := range b.Image.Targets {
		imageByName[t.Name] = t
	}
	type pendingInstall struct {
		ecu *ECUState
		t   Target
	}
	var plan []pendingInstall
	for _, t := range b.Director.Targets {
		it, ok := imageByName[t.Name]
		if !ok || it != t {
			return fmt.Errorf("%w: target %q", ErrMixAndMatch, t.Name)
		}
		ecu, ok := c.ecus[t.HWID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrWrongHW, t.HWID)
		}
		if t.Version <= ecu.InstalledVersion {
			return fmt.Errorf("%w: target %q version %d <= installed %d",
				ErrRollback, t.Name, t.Version, ecu.InstalledVersion)
		}
		payload, ok := b.Payloads[t.Name]
		if !ok {
			return fmt.Errorf("%w: payload %q", ErrIncomplete, t.Name)
		}
		if len(payload) != t.Length || HashPayload(payload) != t.Hash {
			return fmt.Errorf("%w: target %q", ErrHashMismatch, t.Name)
		}
		plan = append(plan, pendingInstall{ecu: ecu, t: t})
	}

	// Commit.
	for _, p := range plan {
		p.ecu.InstalledName = p.t.Name
		p.ecu.InstalledVersion = p.t.Version
	}
	c.lastDirectorVersion = b.Director.Version
	c.lastImageVersion = b.Image.Version
	return nil
}
