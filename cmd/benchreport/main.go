// Command benchreport regenerates the full experiment suite E1–E22 (plus
// ablations A1–A2) from DESIGN.md and prints each result table, paper
// claim included. -fleet trims or extends E18's fleet-size sweep the way
// -zones does E17's zone counts; -kernelpar N runs E19's per-zone-kernel
// sweep and E21's medium-IDS vehicles with N workers per vehicle (any N
// prints the same bytes as the default serial reference — that
// equivalence is the point of E19, and CI diffs both).
//
// With -seeds N it becomes a replication study: the suite runs once per
// seed (seed, seed+1, …) sharded across a -par-sized worker pool, and the
// printed tables carry mean ± 95% CI, standard deviation and per-seed
// range columns for every cell that varies across seeds. The merge is
// deterministic: any -par value produces byte-identical output.
//
// With -json FILE (single-seed mode) it additionally emits a
// machine-readable report: wall-clock nanoseconds and a SHA-256 hash of
// the rendered table for every experiment, plus a runtime/metrics
// snapshot (live heap bytes, cumulative allocation, GC cycles) taken
// after the run, so perf PRs can pin speed, byte-identity and the memory
// trajectory of the suite in one artifact (see BENCH_PR2.json at the
// repo root for the committed trajectory).
//
// Observability: -trace FILE installs a process-default trace sink
// (sim.SetDefaultTraceSink) before any experiment builds its kernel, so
// every kernel's dispatch events land in one Chrome trace_event JSON —
// single-seed mode only, where experiments run sequentially and the
// interleaving is deterministic. -metrics prints the runtime/metrics
// snapshot as a table after the run.
//
// -cpuprofile / -memprofile write pprof profiles of the run, so future
// perf work can grab flame graphs without editing code:
//
//	go run ./cmd/benchreport -only E1 -cpuprofile cpu.pprof
//	go tool pprof -top cpu.pprof
//
// Fleet observability (E20): -obsfleet trims or extends the fleet-size
// sweep, -fleetpar pins the fleet driver's worker count (the table is
// byte-identical for every value — CI diffs 1 against 8), and -progress
// streams per-drive completion and vehicles/sec to stderr, strictly
// outside the deterministic stdout. -fleetpar also drives E22's campaign
// waves at that worker count, under the same byte-identity contract.
//
// -compare BASELINE.json is the perf regression gate: it re-runs every
// experiment pinned in a committed BENCH_PRn.json, requires byte-identical
// table hashes, fails macro experiments (>= 1s baseline) that slowed by
// more than 15%, re-measures the fleet drive/merge microbenchmark probes
// (allocation increases are a hard failure), and enforces the < 10%
// metrics-plane overhead gate on the fleet drive.
//
// Usage:
//
//	benchreport [-seed N] [-seeds N] [-par N] [-only E3,E8] [-json FILE]
//	            [-obsfleet SIZES] [-fleetpar N] [-progress] [-compare FILE]
//	            [-trace FILE] [-metrics] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"autosec/internal/experiments"
	fleetpkg "autosec/internal/fleet"
	"autosec/internal/obs"
	"autosec/internal/runner"
	"autosec/internal/sim"
)

// jsonReport is the schema written by -json. Runtime is the
// runtime/metrics snapshot taken after the suite finishes
// (heap_bytes, total_alloc_bytes, gc_cycles).
type jsonReport struct {
	Seed        uint64            `json:"seed"`
	GoVersion   string            `json:"go_version"`
	Experiments []jsonExperiment  `json:"experiments"`
	TotalNS     int64             `json:"total_ns"`
	Runtime     map[string]uint64 `json:"runtime"`
}

// jsonExperiment pins one experiment's regeneration cost and output hash.
type jsonExperiment struct {
	ID   string `json:"id"`
	NS   int64  `json:"ns"`
	Hash string `json:"table_sha256"`
}

func main() {
	seed := flag.Uint64("seed", 1, "base scenario seed (same seed, same tables)")
	nseeds := flag.Int("seeds", 1, "number of replicate seeds (seed, seed+1, ...); >1 prints aggregated tables")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "replication worker pool size")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E8); empty runs all")
	zones := flag.String("zones", "", "comma-separated zone counts for E17's sweep (e.g. 2,4,8,16); empty uses the golden default")
	fleet := flag.String("fleet", "", "comma-separated fleet sizes for E18's sweep (e.g. 500,5000); empty uses the golden default (1000,10000,100000)")
	kernelpar := flag.Int("kernelpar", 1, "worker count for E19's per-zone-kernel group (1 = serial reference; any value prints identical tables)")
	obsfleet := flag.String("obsfleet", "", "comma-separated fleet sizes for E20's observability sweep (e.g. 500,5000); empty uses the golden default (1000,10000)")
	fleetpar := flag.Int("fleetpar", 0, "fleet driver worker count for E20 and E22's campaign waves (0 = default; any value prints identical tables — CI diffs 1 vs 8)")
	progress := flag.Bool("progress", false, "stream fleet drive progress and throughput to stderr (wall-clock telemetry; never in the tables)")
	compareFile := flag.String("compare", "", "regression-gate the working tree against this committed BENCH_PRn.json baseline and exit")
	jsonOut := flag.String("json", "", "write per-experiment ns + table hashes as JSON to this file ('-' for stdout); single-seed mode only")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of every kernel's dispatch activity to this file; single-seed mode only")
	showMetrics := flag.Bool("metrics", false, "print a runtime/metrics snapshot (heap, allocs, GC) after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()
	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}
	if *jsonOut != "" && *nseeds > 1 {
		fmt.Fprintln(os.Stderr, "benchreport: -json requires single-seed mode (drop -seeds)")
		os.Exit(1)
	}
	if *traceFile != "" && *nseeds > 1 {
		fmt.Fprintln(os.Stderr, "benchreport: -trace requires single-seed mode (replicates interleave nondeterministically)")
		os.Exit(1)
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		// The experiments build their kernels internally, so the only
		// tracing hook is the process default every NewKernel picks up.
		tracer = obs.NewTracer(0)
		sim.SetDefaultTraceSink(tracer)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize live-heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			}
		}()
	}

	e17 := experiments.E17Zonal
	if *zones != "" {
		counts, err := parseZones(*zones)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		e17 = func(s uint64) *experiments.Table { return experiments.E17ZonalWith(s, counts) }
	}
	e18 := experiments.E18Fleet
	if *fleet != "" {
		sizes, err := parseFleet(*fleet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		e18 = func(s uint64) *experiments.Table {
			return experiments.E18FleetWith(s, sizes, []int{1, 2, 4})
		}
	}

	if *kernelpar < 1 {
		fmt.Fprintln(os.Stderr, "benchreport: -kernelpar must be >= 1")
		os.Exit(1)
	}
	e19 := experiments.E19KernelPar
	if *kernelpar != 1 {
		e19 = func(s uint64) *experiments.Table {
			return experiments.E19KernelParWith(s, []int{2, 4, 8, 16}, *kernelpar)
		}
	}
	// E21 drives its per-zone-kernel vehicles with the same worker
	// override as E19; every value prints identical bytes and CI diffs it.
	e21 := experiments.E21MediumIDS
	if *kernelpar != 1 {
		e21 = func(s uint64) *experiments.Table {
			return experiments.E21MediumIDSWith(s, *kernelpar)
		}
	}

	if *fleetpar < 0 {
		fmt.Fprintln(os.Stderr, "benchreport: -fleetpar must be >= 0")
		os.Exit(1)
	}
	// E22 drives its campaign waves with the -fleetpar worker count; the
	// default 0 keeps the serial golden reference. Any value prints
	// identical bytes — CI byte-diffs 1 against 8.
	e22 := experiments.E22Campaign
	if *fleetpar > 1 {
		e22 = func(s uint64) *experiments.Table {
			return experiments.E22CampaignWith(s, *fleetpar)
		}
	}
	e20 := experiments.E20Observability
	if *obsfleet != "" || *fleetpar != 0 || *progress {
		sizes := []int{1_000, 10_000}
		if *obsfleet != "" {
			var err error
			if sizes, err = parseFleet(*obsfleet); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: -obsfleet: %v\n", err)
				os.Exit(1)
			}
		}
		var observe func(int, string) fleetpkg.DriveObserver
		if *progress {
			observe = func(n int, mode string) fleetpkg.DriveObserver {
				fmt.Fprintf(os.Stderr, "E20 [%s]: driving %d vehicles\n", mode, n)
				return fleetpkg.NewProgressWriter(os.Stderr, n)
			}
		}
		e20 = func(s uint64) *experiments.Table {
			return experiments.E20ObservabilityObserved(s, sizes, *fleetpar, observe)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []idRunner{
		{"E1", experiments.E1BusDoS},
		{"E2", experiments.E2SideChannel},
		{"E3", experiments.E3FleetCompromise},
		{"E4", experiments.E4Pseudonym},
		{"E5", experiments.E5Tradeoff},
		{"E6", experiments.E6Verification},
		{"E7", experiments.E7AuthenticatedCAN},
		{"E8", experiments.E8Gateway},
		{"E9", experiments.E9Relay},
		{"E10", experiments.E10OTA},
		{"E11", experiments.E11IDS},
		{"E12", experiments.E12Lifetime},
		{"E13", experiments.E13DiagnosticAccess},
		{"E14", experiments.E14BusOff},
		{"E15", experiments.E15VerifyScaling},
		{"E16", experiments.E16CrossMediumGateway},
		{"E17", e17},
		{"E18", e18},
		{"E19", e19},
		{"E20", e20},
		{"E21", e21},
		{"E22", e22},
		{"A1", experiments.A1MACTruncation},
		{"A2", experiments.A2BoundingThreshold},
	}

	if *compareFile != "" {
		if *nseeds > 1 {
			fmt.Fprintln(os.Stderr, "benchreport: -compare requires single-seed mode (drop -seeds)")
			os.Exit(1)
		}
		os.Exit(runCompare(*compareFile, *seed, runners))
	}

	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiments matched -only=%q\n", *only)
		os.Exit(1)
	}

	if *nseeds <= 1 {
		report := jsonReport{Seed: *seed, GoVersion: runtime.Version()}
		quiet := *jsonOut == "-" // keep stdout parseable
		for _, r := range selected {
			start := time.Now()
			table := r.run(*seed)
			elapsed := time.Since(start)
			rendered := table.String()
			report.TotalNS += elapsed.Nanoseconds()
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID:   r.id,
				NS:   elapsed.Nanoseconds(),
				Hash: fmt.Sprintf("%x", sha256.Sum256([]byte(rendered))),
			})
			if !quiet {
				fmt.Println(rendered)
				fmt.Printf("  (regenerated in %v)\n\n", elapsed.Round(time.Millisecond))
			}
		}
		report.Runtime = obs.RuntimeMetrics()
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, &report); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				os.Exit(1)
			}
		}
		if tracer != nil {
			if err := writeTrace(*traceFile, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				os.Exit(1)
			}
			if !quiet {
				fmt.Printf("trace: %d events (%d dropped) -> %s\n", tracer.Len(), tracer.Dropped(), *traceFile)
			}
		}
		if *showMetrics && !quiet {
			// with -json - the runtime block is already in the JSON and
			// stdout must stay parseable
			printRuntimeMetrics(report.Runtime)
		}
		return
	}

	// Replication mode: run the selected suite once per seed on the pool,
	// then print the deterministic merge.
	suite := func(s uint64) []*experiments.Table {
		tables := make([]*experiments.Table, len(selected))
		for i, r := range selected {
			tables[i] = r.run(s)
		}
		return tables
	}
	seeds := runner.Seeds(*seed, *nseeds)
	start := time.Now()
	tables, err := runner.ReplicateAggregate(context.Background(), suite, seeds, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("  (%d experiments x %d seeds on %d workers in %v)\n",
		len(selected), *nseeds, *par, elapsed)
	if *showMetrics {
		printRuntimeMetrics(obs.RuntimeMetrics())
	}
}

// parseZones parses -zones ("2,4,8") into E17ZonalWith's sweep list.
func parseZones(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("-zones: %q is not a zone count >= 2", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// parseFleet parses -fleet ("500,5000") into E18FleetWith's sweep list.
func parseFleet(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-fleet: %q is not a fleet size >= 1", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// printRuntimeMetrics renders the runtime snapshot through the same
// table machinery as every other metric surface.
func printRuntimeMetrics(rt map[string]uint64) {
	keys := make([]string, 0, len(rt))
	for k := range rt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]obs.Metric, 0, len(keys))
	for _, k := range keys {
		snap = append(snap, obs.Metric{Key: "runtime/" + k, Kind: "probe", Value: float64(rt[k])})
	}
	fmt.Println()
	fmt.Print(experiments.MetricsTable(snap))
}

// writeTrace dumps the collected dispatch events as Chrome trace JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON marshals the report with stable indentation to path or stdout.
func writeJSON(path string, report *jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
