// Fleet observability plane: DriveObs is Drive with three attachments —
// merged metrics (per-vehicle obs.Registry shards folded into one fleet
// registry in vehicle-index order at the drive barrier, so the snapshot
// is byte-identical at any worker count), a deterministic flight
// recorder (per-vehicle traces kept for a seed-hash sample of the fleet
// plus every vehicle with a security incident, under a hard memory
// bound), and runtime telemetry (per-worker progress and wall-clock
// throughput, strictly excluded from the deterministic artifacts).
//
// The determinism split is deliberate: everything reachable from
// ObsResult.Registry and ObsResult.Traces is a pure function of
// (Config, N, ObsOptions sampling knobs) — fold order is fixed, sampling
// hashes only the vehicle seed, trace selection is a deterministic
// priority rule — while everything wall-clock lives in DriveStats and
// the DriveObserver callbacks and never feeds back into the artifacts.
package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"autosec/internal/core"
	"autosec/internal/obs"
)

// ObsOptions selects which parts of the observability plane a DriveObs
// call attaches. The zero value disables everything and makes DriveObs
// behave exactly like Drive.
type ObsOptions struct {
	// Metrics instruments every vehicle with a fresh registry and folds
	// all of them, in vehicle-index order, into ObsResult.Registry.
	Metrics bool

	// TraceRate enables the flight recorder: each vehicle is traced, and
	// the trace is kept if a splitmix64 hash of the vehicle's seed falls
	// under this rate (0 disables tracing entirely, >= 1 keeps every
	// vehicle up to MaxTraces). Vehicles with security incidents
	// (core.Vehicle.SecurityIncidents) keep their traces regardless of
	// the sample — the forensic cases are exactly the ones a fixed-rate
	// sample would usually miss.
	TraceRate float64

	// TraceCapacity is the per-vehicle trace ring size in events
	// (<= 0 means DefaultTraceCapacity). The ring keeps the most recent
	// window, so a small capacity still captures the end of the scenario.
	TraceCapacity int

	// MaxTraces bounds how many traces the whole drive retains
	// (<= 0 means DefaultMaxTraces). When the sample exceeds the bound,
	// incident vehicles win over sampled ones and lower indices win
	// within each class — a rule chosen so the kept set is identical at
	// any worker count.
	MaxTraces int

	// Observer receives runtime telemetry during the drive. May be nil.
	// Callbacks are invoked concurrently from worker goroutines.
	Observer DriveObserver
}

// DefaultTraceCapacity is the flight-recorder ring size when
// ObsOptions.TraceCapacity is unset: 4096 events ≈ 200KB per tracer,
// small enough that MaxTraces retained rings stay in the tens of MB.
const DefaultTraceCapacity = 4096

// DefaultMaxTraces bounds the retained traces when ObsOptions.MaxTraces
// is unset.
const DefaultMaxTraces = 32

// VehicleTrace is one kept flight-recorder capture.
type VehicleTrace struct {
	// Index is the vehicle's fleet index; Seed its kernel seed.
	Index int
	Seed  uint64
	// Interesting marks a vehicle kept because it recorded security
	// incidents (it may also have been in the sample).
	Interesting bool
	// Tracer holds the captured events; export with WriteChromeTrace.
	Tracer *obs.Tracer
}

// DriveStats is the runtime telemetry of one drive. None of it is
// deterministic across hosts or worker counts (wall clock, pool
// behaviour and worker split all vary) — keep it out of golden artifacts.
type DriveStats struct {
	Vehicles int
	Workers  int
	// PoolHits/PoolMisses aggregate the per-worker vehicle pools:
	// misses are constructions, hits are recycled resets.
	PoolHits   int
	PoolMisses int
	// TracesKept counts retained flight-recorder captures;
	// TracesInteresting how many of those were incident vehicles.
	TracesKept        int
	TracesInteresting int
	// Wall is the barrier-to-barrier wall-clock time of the drive and
	// VehiclesPerSec the resulting throughput.
	Wall           time.Duration
	VehiclesPerSec float64
}

// DriveObserver receives runtime telemetry while a drive runs. All
// methods must tolerate concurrent calls from worker goroutines; a nil
// observer is valid and free.
type DriveObserver interface {
	// VehicleDone fires after each vehicle completes: worker is the
	// worker index, done/total the progress within that worker's shard.
	VehicleDone(worker, done, total int)
	// DriveDone fires once after the barrier with the run's stats.
	DriveDone(stats DriveStats)
}

// ObsResult carries the observability artifacts of one DriveObs call.
type ObsResult struct {
	// Registry is the fleet-merged metrics registry (nil unless
	// ObsOptions.Metrics): per-vehicle registries materialized before
	// pool release and folded in vehicle-index order, so its snapshot is
	// byte-identical at any worker count.
	Registry *obs.Registry
	// Traces holds the kept flight-recorder captures in index order.
	Traces []VehicleTrace
	// Stats is the runtime telemetry (always populated, never
	// deterministic).
	Stats DriveStats
}

// TraceSampled reports whether vehicle idx of a fleet with base seed
// base is in the flight-recorder sample at the given rate. The decision
// hashes VehicleSeed through one more splitmix64 finalizer round — so it
// is decorrelated from every in-simulation use of the seed — and
// depends only on (base, idx, rate): shard layout and worker count
// cannot move a vehicle in or out of the sample.
func TraceSampled(base uint64, idx int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	z := VehicleSeed(base, idx) ^ 0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	// Top 53 bits as a uniform float in [0,1): exact, no rounding bias.
	return float64(z>>11)/(1<<53) < rate
}

// keepTrace inserts t into kept (which is in index order) under the
// capacity bound: incident vehicles evict the highest-indexed sampled
// entry; sampled vehicles are dropped once full. Because shards are
// contiguous and the global trim applies the same priority rule, capping
// each worker at the same bound never discards a trace the global
// selection would have kept.
func keepTrace(kept []VehicleTrace, t VehicleTrace, max int) []VehicleTrace {
	if len(kept) < max {
		return append(kept, t)
	}
	if !t.Interesting {
		return kept
	}
	for i := len(kept) - 1; i >= 0; i-- {
		if !kept[i].Interesting {
			copy(kept[i:], kept[i+1:])
			kept[len(kept)-1] = t
			return kept
		}
	}
	return kept // all interesting: lower indices win
}

// selectTraces applies the global retention rule to the concatenated
// per-worker kept lists (already in index order): incident vehicles
// first, lower indices first within each class, capped at max, reordered
// back to index order.
func selectTraces(all []VehicleTrace, max int) []VehicleTrace {
	if len(all) <= max {
		return all
	}
	sel := make([]VehicleTrace, 0, max)
	for _, t := range all {
		if t.Interesting {
			sel = append(sel, t)
			if len(sel) == max {
				break
			}
		}
	}
	if len(sel) < max {
		for _, t := range all {
			if !t.Interesting {
				sel = append(sel, t)
				if len(sel) == max {
					break
				}
			}
		}
	}
	// Both passes appended in index order per class; restore global
	// index order with a stable insertion merge (sel is small).
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].Index < sel[j-1].Index; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	return sel
}

// DriveObs runs fn once per vehicle like Drive and additionally operates
// the observability plane selected by o. The returned ObsResult is
// non-nil even when o is zero (Stats is always populated).
//
// Tracing requires a shared-kernel build: per-zone-kernel vehicles take
// per-member tracers that cannot share one flight-recorder ring, so
// TraceRate > 0 with Cfg.Zonal.PerZoneKernels is an error. Metrics work
// on every build.
func DriveObs[T any](ctx context.Context, d Driver, o ObsOptions, fn func(idx int, v *core.Vehicle) (T, error)) ([]T, *ObsResult, error) {
	if d.N <= 0 {
		return nil, nil, fmt.Errorf("fleet: population must be positive, got %d", d.N)
	}
	return driveRangeObs(ctx, d, o, 0, d.N, func(idx int, v *core.Vehicle, _ *obs.Registry) (T, error) {
		return fn(idx, v)
	})
}

// driveRangeObs is the sharded drive loop over the index range [lo, hi)
// of d's population — the common core of DriveObs (full population) and
// DriveWaveObs (one campaign wave). Vehicle identity is a function of
// the absolute index: seeds, trace sampling and metric fold order all
// key on idx, never on the range, so driving [0,N) in one call or as a
// sequence of wave ranges visits byte-identical vehicles. fn receives
// the vehicle's live metrics registry (nil unless o.Metrics) so range
// callers can register scenario-level instruments that merge at the
// barrier alongside the vehicle's own.
func driveRangeObs[T any](ctx context.Context, d Driver, o ObsOptions, lo, hi int, fn func(idx int, v *core.Vehicle, reg *obs.Registry) (T, error)) ([]T, *ObsResult, error) {
	n := hi - lo
	tracing := o.TraceRate > 0
	if tracing && d.Cfg.Zonal != nil && d.Cfg.Zonal.PerZoneKernels {
		return nil, nil, fmt.Errorf("fleet: flight recorder requires a shared-kernel build (Zonal.PerZoneKernels is set)")
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	traceCap := o.TraceCapacity
	if traceCap <= 0 {
		traceCap = DefaultTraceCapacity
	}
	maxTraces := o.MaxTraces
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}

	results := make([]T, n)
	// Per-vehicle metric shards, filled at each vehicle's index and
	// folded after the barrier — the single merge point that makes the
	// fleet snapshot independent of the worker count. Shards are flat
	// value captures (obs.ShardLayout), not live registries: each worker
	// rewinds one scratch registry between vehicles instead of building
	// ~100 allocations of instrument graph per vehicle.
	type vehicleShard struct {
		layout *obs.ShardLayout
		data   obs.Shard
	}
	var shards []vehicleShard
	if o.Metrics {
		shards = make([]vehicleShard, n)
	}
	kept := make([][]VehicleTrace, workers)

	var abort driveAbort
	var statsMu sync.Mutex
	stats := DriveStats{Vehicles: n, Workers: workers}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous shards over the driven range; sizes differ by at
		// most one.
		wlo := lo + w*n/workers
		whi := lo + (w+1)*n/workers
		wg.Add(1)
		go func(w, wlo, whi int) {
			defer wg.Done()
			pool := core.NewVehiclePool(d.Cfg)
			// scratch is the recycled tracer for captures that end up
			// discarded; a kept capture surrenders its tracer and the
			// next vehicle allocates a fresh one. scratchReg is the
			// worker's rewindable metrics registry, layout its slot
			// assignment (rebuilt if a vehicle changes the key set).
			var scratch *obs.Tracer
			var scratchReg *obs.Registry
			var layout *obs.ShardLayout
			var arena *obs.ShardArena
			for idx := wlo; idx < whi; idx++ {
				if err := ctx.Err(); err != nil {
					abort.fail(idx, err)
					break
				}
				if abort.aborted.Load() {
					break
				}
				seed := VehicleSeed(d.Cfg.Seed, idx)
				v, err := pool.Acquire(seed)
				if err != nil {
					abort.fail(idx, fmt.Errorf("fleet: vehicle %d: %w", idx, err))
					break
				}
				var reg *obs.Registry
				var tr *obs.Tracer
				if o.Metrics {
					if scratchReg == nil {
						scratchReg = obs.NewRegistry()
					} else {
						scratchReg.Rewind()
					}
					reg = scratchReg
				}
				if tracing {
					if scratch == nil {
						scratch = obs.NewTracer(traceCap)
					} else {
						scratch.ResetAll()
					}
					tr = scratch
				}
				if reg != nil || tr != nil {
					v.Instrument(tr, reg)
				}
				out, err := fn(idx, v, reg)
				if err == nil && tracing {
					interesting := v.SecurityIncidents() > 0
					if interesting || TraceSampled(d.Cfg.Seed, idx, o.TraceRate) {
						kept[w] = keepTrace(kept[w], VehicleTrace{
							Index: idx, Seed: seed, Interesting: interesting, Tracer: tr,
						}, maxTraces)
						if len(kept[w]) > 0 && kept[w][len(kept[w])-1].Tracer == tr {
							scratch = nil // tracer surrendered to the kept list
						}
					}
				}
				if err == nil && reg != nil {
					// Export flattens the readings — evaluating every
					// probe — before the vehicle returns to the pool:
					// the next Reset rewinds the very state the probe
					// closures read.
					if layout == nil || !layout.Matches(reg) {
						layout = obs.NewShardLayout(reg)
						arena = layout.NewArena(whi - idx)
					}
					shards[idx-lo] = vehicleShard{layout: layout, data: arena.Export(reg)}
				}
				pool.Release(v)
				if err != nil {
					abort.fail(idx, fmt.Errorf("fleet: vehicle %d: %w", idx, err))
					break
				}
				results[idx-lo] = out
				if o.Observer != nil {
					o.Observer.VehicleDone(w, idx-wlo+1, whi-wlo)
				}
			}
			statsMu.Lock()
			stats.PoolHits += pool.Hits
			stats.PoolMisses += pool.Misses
			statsMu.Unlock()
		}(w, wlo, whi)
	}
	wg.Wait()
	if err := abort.err(); err != nil {
		return nil, nil, err
	}

	res := &ObsResult{}
	if o.Metrics {
		// Fold shards in vehicle-index order. Runs of equal-shape shards
		// (the homogeneous-population common case, where each worker's
		// layout differs only by pointer) pre-sum into one accumulator —
		// flat array arithmetic, bit-identical to per-shard MergeInto
		// folding (see ShardLayout.Accumulate) — so the per-vehicle
		// barrier cost is adds, not map walks. A genuine shape change
		// (deterministic per index, never per worker) flushes the run.
		res.Registry = obs.NewRegistry()
		var accLayout *obs.ShardLayout
		var acc obs.Shard
		flush := func() error {
			if accLayout == nil {
				return nil
			}
			err := accLayout.MergeInto(res.Registry, acc)
			accLayout, acc = nil, obs.Shard{}
			return err
		}
		for i := range shards {
			l := shards[i].layout
			if l == nil {
				continue
			}
			if accLayout != nil && l != accLayout && !accLayout.EqualShape(l) {
				if err := flush(); err != nil {
					return nil, nil, fmt.Errorf("fleet: merging metrics before vehicle %d: %w", lo+i, err)
				}
			}
			if accLayout == nil {
				accLayout = l
			}
			if err := accLayout.Accumulate(&acc, shards[i].data); err != nil {
				return nil, nil, fmt.Errorf("fleet: merging vehicle %d metrics: %w", lo+i, err)
			}
		}
		if err := flush(); err != nil {
			return nil, nil, fmt.Errorf("fleet: merging fleet metrics: %w", err)
		}
	}
	if tracing {
		var all []VehicleTrace
		for _, ks := range kept {
			all = append(all, ks...) // worker order == index order
		}
		res.Traces = selectTraces(all, maxTraces)
		for _, t := range res.Traces {
			if t.Interesting {
				stats.TracesInteresting++
			}
		}
		stats.TracesKept = len(res.Traces)
	}
	stats.Wall = time.Since(start)
	if s := stats.Wall.Seconds(); s > 0 {
		stats.VehiclesPerSec = float64(n) / s
	}
	res.Stats = stats
	if o.Observer != nil {
		o.Observer.DriveDone(stats)
	}
	return results, res, nil
}

// WriteChromeTraces exports every kept trace as a Chrome trace_event
// JSON file named vehicle-<index>.trace.json under dir (created if
// missing), returning the written paths in index order.
func (r *ObsResult) WriteChromeTraces(dir string) ([]string, error) {
	if r == nil || len(r.Traces) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(r.Traces))
	for _, t := range r.Traces {
		path := filepath.Join(dir, fmt.Sprintf("vehicle-%06d.trace.json", t.Index))
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if err := t.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return paths, err
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
