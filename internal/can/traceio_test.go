package can

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestTraceWriteParseRoundTrip(t *testing.T) {
	orig := &Trace{Records: []Record{
		{At: 10 * sim.Millisecond, Sender: "engine", Frame: Frame{ID: 0x0C0, Data: []byte{0xDE, 0xAD}}},
		{At: 20 * sim.Millisecond, Sender: "atk", Frame: Frame{ID: 0x1ABCDE01, Extended: true}},
		{At: 30 * sim.Millisecond, Sender: "x", Frame: Frame{ID: 0x7FF, Remote: true}},
		{At: 40 * sim.Millisecond, Sender: "fd", Frame: Frame{ID: 0x100, FD: true, BRS: true, Data: make([]byte, 12)}},
		{At: 50 * sim.Millisecond, Sender: "bad", Frame: Frame{ID: 0x1}, Corrupted: true},
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len=%d", got.Len())
	}
	for i := range orig.Records {
		o, g := orig.Records[i], got.Records[i]
		if !g.Frame.Equal(&o.Frame) || g.Sender != o.Sender || g.Corrupted != o.Corrupted {
			t.Fatalf("record %d: %+v != %+v", i, g, o)
		}
		// Time preserved to within a nanosecond of rounding.
		if d := g.At - o.At; d < -1 || d > 1 {
			t.Fatalf("record %d time %v vs %v", i, g.At, o.At)
		}
	}
}

func TestParseTraceSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n0.001 a 100 0102\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Records[0].Frame.ID != 0x100 {
		t.Fatalf("parsed %+v", tr.Records)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"0.001 a 100",                            // too few fields
		"zebra a 100 01",                         // bad time
		"0.001 a ZZZ 01",                         // bad id
		"0.001 a 100 0G",                         // bad payload hex
		"0.001 a 100 01 WHAT",                    // bad flag
		"0.001 a FFFFFFFF 01",                    // id out of range (validate)
		"0.001 a 100 " + strings.Repeat("00", 9), // 9-byte classic payload
	}
	for _, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", in)
		}
	}
}

// Property: write/parse round-trips synthetic standard frames.
func TestTraceIORoundTripProperty(t *testing.T) {
	f := func(rawID uint16, data []byte, ms uint16) bool {
		if len(data) > 8 {
			data = data[:8]
		}
		orig := &Trace{Records: []Record{{
			At:     sim.Time(ms) * sim.Millisecond,
			Sender: "s",
			Frame:  Frame{ID: ID(rawID) & MaxStandardID, Data: data},
		}}}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, orig); err != nil {
			return false
		}
		got, err := ParseTrace(&buf)
		if err != nil || got.Len() != 1 {
			return false
		}
		return got.Records[0].Frame.Equal(&orig.Records[0].Frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
