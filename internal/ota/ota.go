// Package ota implements an over-the-air software update framework in the
// style the paper calls for ("facilities for in-field OTA updates to
// software, firmware, or even hardware configurations" whose update flow
// "itself must be upgradable"). The design is Uptane-flavoured: two
// independent repositories — a *director* that targets updates at a
// specific vehicle and an *image* repository that attests what images
// exist — must agree before an ECU installs anything. Signed metadata
// carries monotonic version counters (anti-rollback), expiry times,
// per-image hashes and hardware-compatibility identifiers.
//
// The threat experiment E10 drives this package through its attack
// matrix: forged metadata, replayed old versions, wrong-hardware images,
// a stolen single-repository key, tampered payloads and truncated
// bundles must all be rejected; only a fully consistent fresh bundle
// installs.
package ota

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Target describes one installable image.
type Target struct {
	Name    string
	Version uint64
	// HWID names the ECU hardware the image is compatible with.
	HWID   string
	Length int
	Hash   [32]byte
}

// Metadata is a signed targets statement from one repository.
type Metadata struct {
	Repo    string // "director" or "image"
	Version uint64 // metadata version counter (anti-rollback)
	Expires sim.Time
	// VehicleID scopes director metadata to one vehicle ("" for the image
	// repository, whose statements are fleet-wide).
	VehicleID string
	Targets   []Target

	Sig []byte
}

// canonicalScratch holds the reusable working state of canonicalInto so
// the verify hot path renders canonical bytes without allocating: buf is
// the output buffer, order the target-sort index slice. The zero value is
// ready to use; both slices grow on first use and are reused after.
type canonicalScratch struct {
	buf   []byte
	order []int
}

// canonical renders the signed portion deterministically (allocating
// convenience wrapper around canonicalInto; signing-side code paths use
// it, verifiers reuse a scratch).
func (m *Metadata) canonical() []byte {
	var s canonicalScratch
	return m.canonicalInto(&s)
}

// canonicalInto renders the signed portion into s.buf and returns it.
// Every variable-length field (Repo, VehicleID, target Name and HWID) is
// length-prefixed and the target list is count-prefixed, so two distinct
// metadata values can never share canonical bytes — the earlier
// NUL-terminated encoding let a VehicleID embedding a NUL byte absorb the
// first target's name. Targets render in name order regardless of slice
// order; the returned slice aliases s.buf and is valid until the next
// call with the same scratch.
func (m *Metadata) canonicalInto(s *canonicalScratch) []byte {
	b := s.buf[:0]
	b = appendLenPrefixed(b, m.Repo)
	b = binary.BigEndian.AppendUint64(b, m.Version)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Expires))
	b = appendLenPrefixed(b, m.VehicleID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Targets)))
	// Name-order indices via a reused insertion sort: target lists are
	// short (one per model in campaign bundles), and sort.Slice on a
	// fresh copy would allocate on every verify.
	order := s.order[:0]
	for i := range m.Targets {
		j := len(order)
		order = append(order, i)
		for j > 0 && m.Targets[order[j]].Name < m.Targets[order[j-1]].Name {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	for _, i := range order {
		t := &m.Targets[i]
		b = appendLenPrefixed(b, t.Name)
		b = binary.BigEndian.AppendUint64(b, t.Version)
		b = appendLenPrefixed(b, t.HWID)
		b = binary.BigEndian.AppendUint64(b, uint64(t.Length))
		b = append(b, t.Hash[:]...)
	}
	s.buf, s.order = b, order
	return b
}

// appendLenPrefixed appends a 4-byte big-endian length then the bytes.
func appendLenPrefixed(b []byte, v string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Repository is a metadata signer (director or image repo).
type Repository struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey

	nextVersion uint64
}

// NewRepository creates a repository with a fresh signing key.
func NewRepository(name string) (*Repository, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Repository{Name: name, priv: priv, pub: pub, nextVersion: 1}, nil
}

// PublicKey returns the repository's verification key.
func (r *Repository) PublicKey() ed25519.PublicKey { return r.pub }

// StealKey returns the private key, modelling the side-channel key
// extraction of experiment E3/E10. It exists so attacks are explicit in
// scenario code; a production system would obviously not export this.
func (r *Repository) StealKey() ed25519.PrivateKey { return r.priv }

// Sign publishes signed metadata with the next version counter.
func (r *Repository) Sign(vehicleID string, targets []Target, expires sim.Time) *Metadata {
	m := &Metadata{
		Repo:      r.Name,
		Version:   r.nextVersion,
		Expires:   expires,
		VehicleID: vehicleID,
		Targets:   append([]Target(nil), targets...),
	}
	r.nextVersion++
	m.Sig = ed25519.Sign(r.priv, m.canonical())
	return m
}

// ForgeMetadata signs arbitrary metadata with a (presumably stolen) key —
// the attacker-side primitive.
func ForgeMetadata(key ed25519.PrivateKey, repo, vehicleID string, version uint64, targets []Target, expires sim.Time) *Metadata {
	m := &Metadata{Repo: repo, Version: version, Expires: expires, VehicleID: vehicleID, Targets: targets}
	m.Sig = ed25519.Sign(key, m.canonical())
	return m
}

// HashPayload computes a target payload hash.
func HashPayload(p []byte) [32]byte { return sha256.Sum256(p) }

// MakeTarget builds a Target from an image payload.
func MakeTarget(name string, version uint64, hwid string, payload []byte) Target {
	return Target{Name: name, Version: version, HWID: hwid, Length: len(payload), Hash: HashPayload(payload)}
}

// Bundle is what a vehicle receives in one update campaign: both
// repositories' metadata plus the image payloads.
type Bundle struct {
	Director *Metadata
	Image    *Metadata
	Payloads map[string][]byte
}

// Verification errors — one per row of the E10 attack matrix, plus the
// campaign-mode freshness sentinel.
var (
	ErrBadSignature = errors.New("ota: metadata signature invalid")
	ErrRollback     = errors.New("ota: metadata or target version rollback")
	ErrExpiredMeta  = errors.New("ota: metadata expired")
	ErrWrongVehicle = errors.New("ota: director metadata for a different vehicle")
	ErrMixAndMatch  = errors.New("ota: director and image repositories disagree")
	ErrWrongHW      = errors.New("ota: image hardware ID does not match ECU")
	ErrHashMismatch = errors.New("ota: payload hash mismatch")
	ErrIncomplete   = errors.New("ota: bundle is missing payloads")
	ErrUnknownECU   = errors.New("ota: no ECU with that hardware ID")
	// ErrNoUpdate is returned by ApplyCached when the bundle's metadata
	// is exactly the client's current metadata (both version counters
	// equal) and still verifies: the vehicle is up to date, nothing was
	// installed and nothing was rejected. A freeze attacker replaying a
	// vehicle's own stale-but-signed metadata hides behind this answer
	// until the metadata expires — at which point the reply becomes
	// ErrExpiredMeta, which is the freeze detection signal.
	ErrNoUpdate = errors.New("ota: metadata current, no update available")
)

// pendingInstall is one planned target commit; Apply and ApplyCached
// stage the whole plan before touching any ECU (all-or-nothing).
type pendingInstall struct {
	ecu *ECUState
	t   Target
}

// ECUState is the client-side record for one ECU.
type ECUState struct {
	HWID             string
	InstalledName    string
	InstalledVersion uint64
}

// Client is the vehicle-side update verifier (the "primary" in Uptane
// terms).
type Client struct {
	VehicleID string

	// Group optionally names a campaign addressing group (for example a
	// model line); director metadata whose VehicleID equals the group is
	// accepted alongside metadata addressed to the vehicle itself. Group
	// addressing is what lets a fleet campaign sign one director
	// statement per model instead of one per vehicle, which in turn is
	// what makes verify-once-per-campaign memoization effective.
	Group string

	directorKey ed25519.PublicKey
	imageKey    ed25519.PublicKey
	// Key fingerprints for the verification cache: metadata verified
	// under one trust epoch must never satisfy a lookup under another.
	directorKeyID uint64
	imageKeyID    uint64

	lastDirectorVersion uint64
	lastImageVersion    uint64

	ecus map[string]*ECUState // by HWID

	Installed sim.Counter
	Rejected  sim.Counter
	// UpToDate counts ApplyCached calls that returned ErrNoUpdate.
	UpToDate sim.Counter

	// scratch backs the allocation-free canonical rendering and install
	// planning on the cached verify path.
	scratch canonicalScratch
	plan    []pendingInstall

	// Observability (nil when off); see Instrument in obs.go.
	obsTr      *obs.Tracer
	obsSub     obs.Label
	obsVerify  obs.Label
	obsInstall obs.Label
	obsReject  obs.Label
}

// NewClient creates a client trusting the two repository keys.
func NewClient(vehicleID string, directorKey, imageKey ed25519.PublicKey) *Client {
	return &Client{
		VehicleID:     vehicleID,
		directorKey:   directorKey,
		imageKey:      imageKey,
		directorKeyID: KeyID(directorKey),
		imageKeyID:    KeyID(imageKey),
		ecus:          make(map[string]*ECUState),
	}
}

// SetKeys rotates the client onto a new trust epoch: both repository
// keys are replaced and the metadata version counters restart, exactly
// like a root-metadata rotation in Uptane — the new repositories begin
// counting from 1 again. Installed target versions are untouched, so
// anti-rollback of the images themselves survives the rotation.
func (c *Client) SetKeys(directorKey, imageKey ed25519.PublicKey) {
	c.directorKey = directorKey
	c.imageKey = imageKey
	c.directorKeyID = KeyID(directorKey)
	c.imageKeyID = KeyID(imageKey)
	c.lastDirectorVersion = 0
	c.lastImageVersion = 0
}

// KeyID fingerprints a verification key for cache keying (first eight
// bytes of its SHA-256).
func KeyID(pub ed25519.PublicKey) uint64 {
	sum := sha256.Sum256(pub)
	return binary.BigEndian.Uint64(sum[:8])
}

// AddECU registers an ECU by hardware ID with its factory firmware version.
func (c *Client) AddECU(hwid string, installedVersion uint64) {
	c.ecus[hwid] = &ECUState{HWID: hwid, InstalledVersion: installedVersion}
}

// ECU returns the state for a hardware ID.
func (c *Client) ECU(hwid string) (*ECUState, bool) {
	e, ok := c.ecus[hwid]
	return e, ok
}

// verifyMeta checks one repository's signature, freshness and counters.
func (c *Client) verifyMeta(m *Metadata, key ed25519.PublicKey, lastVersion uint64, now sim.Time) error {
	if !ed25519.Verify(key, m.canonical(), m.Sig) {
		return fmt.Errorf("%w: repo %s", ErrBadSignature, m.Repo)
	}
	if err := checkFresh(m, now); err != nil {
		return err
	}
	if m.Version <= lastVersion {
		return fmt.Errorf("%w: repo %s version %d <= %d", ErrRollback, m.Repo, m.Version, lastVersion)
	}
	return nil
}

// checkFresh enforces metadata expiry. "Expires at T" means invalid at
// T: the comparison is now >= Expires, so metadata presented at exactly
// its expiry instant is already rejected (an off-by-one here handed a
// freeze attacker one extra replay window at the boundary).
func checkFresh(m *Metadata, now sim.Time) error {
	if m.Expires != 0 && now >= m.Expires {
		return fmt.Errorf("%w: repo %s at %v (expired %v)", ErrExpiredMeta, m.Repo, now, m.Expires)
	}
	return nil
}

// Apply verifies a bundle at virtual time now and, if everything checks
// out, installs the targets into the matching ECUs. It is all-or-nothing:
// any failure leaves every ECU untouched.
func (c *Client) Apply(b *Bundle, now sim.Time) error {
	if c.obsTr != nil {
		c.obsTr.Instant(now, c.obsSub, c.obsVerify, 0, 0, 0)
	}
	if err := c.apply(b, now); err != nil {
		c.Rejected.Inc()
		if c.obsTr != nil {
			c.obsTr.Instant(now, c.obsSub, c.obsReject, c.obsTr.Label(errClass(err)), 0, 0)
		}
		return err
	}
	c.Installed.Inc()
	if c.obsTr != nil {
		targets := 0
		if b.Director != nil {
			targets = len(b.Director.Targets)
		}
		c.obsTr.Instant(now, c.obsSub, c.obsInstall, c.obsTr.Label(c.VehicleID), int64(targets), 0)
	}
	return nil
}

func (c *Client) apply(b *Bundle, now sim.Time) error {
	if b.Director == nil || b.Image == nil {
		return ErrIncomplete
	}
	if err := c.verifyMeta(b.Director, c.directorKey, c.lastDirectorVersion, now); err != nil {
		return err
	}
	if err := c.verifyMeta(b.Image, c.imageKey, c.lastImageVersion, now); err != nil {
		return err
	}
	if b.Director.VehicleID != c.VehicleID {
		return fmt.Errorf("%w: %q", ErrWrongVehicle, b.Director.VehicleID)
	}

	// Every director target must be attested, byte for byte, by the image
	// repository: this is the two-party control that makes a single stolen
	// key insufficient.
	imageByName := make(map[string]Target, len(b.Image.Targets))
	for _, t := range b.Image.Targets {
		imageByName[t.Name] = t
	}
	var plan []pendingInstall
	for _, t := range b.Director.Targets {
		it, ok := imageByName[t.Name]
		if !ok || it != t {
			return fmt.Errorf("%w: target %q", ErrMixAndMatch, t.Name)
		}
		ecu, ok := c.ecus[t.HWID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrWrongHW, t.HWID)
		}
		if t.Version <= ecu.InstalledVersion {
			return fmt.Errorf("%w: target %q version %d <= installed %d",
				ErrRollback, t.Name, t.Version, ecu.InstalledVersion)
		}
		payload, ok := b.Payloads[t.Name]
		if !ok {
			return fmt.Errorf("%w: payload %q", ErrIncomplete, t.Name)
		}
		if len(payload) != t.Length || HashPayload(payload) != t.Hash {
			return fmt.Errorf("%w: target %q", ErrHashMismatch, t.Name)
		}
		plan = append(plan, pendingInstall{ecu: ecu, t: t})
	}

	// Commit.
	for _, p := range plan {
		p.ecu.InstalledName = p.t.Name
		p.ecu.InstalledVersion = p.t.Version
	}
	c.lastDirectorVersion = b.Director.Version
	c.lastImageVersion = b.Image.Version
	return nil
}
