package she

import (
	"crypto/rand"
	"errors"
	"fmt"
)

// KeyID names a SHE key slot.
type KeyID int

// The SHE key slot layout (spec §8.1).
const (
	SecretKey    KeyID = iota // ROM secret, device unique, never readable
	MasterECUKey              // authorizes updates of all slots
	BootMACKey                // verifies the boot image
	BootMAC                   // expected CMAC of the boot image
	Key1
	Key2
	Key3
	Key4
	Key5
	Key6
	Key7
	Key8
	Key9
	Key10
	RAMKey // volatile, loadable in plaintext
	numKeys
)

// String names the slot.
func (id KeyID) String() string {
	switch {
	case id == SecretKey:
		return "SECRET_KEY"
	case id == MasterECUKey:
		return "MASTER_ECU_KEY"
	case id == BootMACKey:
		return "BOOT_MAC_KEY"
	case id == BootMAC:
		return "BOOT_MAC"
	case id >= Key1 && id <= Key10:
		return fmt.Sprintf("KEY_%d", int(id-Key1)+1)
	case id == RAMKey:
		return "RAM_KEY"
	default:
		return fmt.Sprintf("KeyID(%d)", int(id))
	}
}

// Flags are the per-slot protection attributes (spec §8.2).
type Flags struct {
	// WriteProtection permanently locks the slot against further updates.
	WriteProtection bool
	// BootProtection disables the key if secure boot failed.
	BootProtection bool
	// DebuggerProtection disables the key while a debugger is attached.
	DebuggerProtection bool
	// KeyUsage selects CMAC use (true) vs encryption use (false).
	KeyUsage bool
	// Wildcard permits updates authorized with the wildcard UID.
	Wildcard bool
}

// pack serializes flags into the 5-bit field of the update protocol.
func (f Flags) pack() byte {
	var b byte
	if f.WriteProtection {
		b |= 1 << 4
	}
	if f.BootProtection {
		b |= 1 << 3
	}
	if f.DebuggerProtection {
		b |= 1 << 2
	}
	if f.KeyUsage {
		b |= 1 << 1
	}
	if f.Wildcard {
		b |= 1
	}
	return b
}

func unpackFlags(b byte) Flags {
	return Flags{
		WriteProtection:    b>>4&1 == 1,
		BootProtection:     b>>3&1 == 1,
		DebuggerProtection: b>>2&1 == 1,
		KeyUsage:           b>>1&1 == 1,
		Wildcard:           b&1 == 1,
	}
}

// slot is one key slot's state.
type slot struct {
	key     [BlockSize]byte
	counter uint32 // 28-bit update counter
	flags   Flags
	valid   bool
}

// UID is the 120-bit device-unique identifier, stored left-aligned in 15
// bytes.
type UID [15]byte

// WildcardUID (all zero) authorizes updates of wildcard-enabled slots on
// any device.
var WildcardUID UID

// Errors returned by Engine commands.
var (
	ErrKeyEmpty          = errors.New("she: key slot is empty")
	ErrKeyInvalid        = errors.New("she: key slot out of range for command")
	ErrKeyWriteProtected = errors.New("she: key slot is write-protected")
	ErrKeyUsage          = errors.New("she: key usage flag forbids this operation")
	ErrBootProtected     = errors.New("she: key disabled after secure boot failure")
	ErrDebuggerActive    = errors.New("she: key disabled while debugger attached")
	ErrCounterReplay     = errors.New("she: update counter not greater than stored counter")
	ErrUpdateAuth        = errors.New("she: M3 verification failed")
	ErrUIDMismatch       = errors.New("she: UID mismatch and wildcard not permitted")
	ErrBusy              = errors.New("she: engine busy")
	ErrSequence          = errors.New("she: command sequence violation")
)

// Engine is one SHE instance, as embedded in an MCU.
type Engine struct {
	uid   UID
	slots [numKeys]slot

	// DebuggerAttached models the external debugger sense line.
	DebuggerAttached bool

	bootVerified bool
	bootDone     bool

	// Leak is an optional side-channel tap: when non-nil it observes every
	// AES key-use with the key bytes and the processed block, feeding the
	// power-trace model in internal/sidechannel.
	Leak func(op string, key, block []byte)

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base *engineBaseline
}

// engineBaseline is the sealed post-provisioning state of an Engine. The
// slot array snapshot includes SECRET_KEY: a pooled engine keeps its own
// device-unique secret across resets, which is observable nowhere (that
// is the point of SHE).
type engineBaseline struct {
	slots        [numKeys]slot
	debugger     bool
	bootVerified bool
	bootDone     bool
	leak         func(op string, key, block []byte)
}

// MarkBaseline records the engine's current key material and boot state
// as the reset target.
func (e *Engine) MarkBaseline() {
	e.base = &engineBaseline{
		slots:        e.slots,
		debugger:     e.DebuggerAttached,
		bootVerified: e.bootVerified,
		bootDone:     e.bootDone,
		leak:         e.Leak,
	}
}

// ResetToBaseline restores every key slot, the debugger sense line and
// the boot state to the MarkBaseline snapshot.
func (e *Engine) ResetToBaseline() {
	if e.base == nil {
		panic("she: ResetToBaseline before MarkBaseline")
	}
	e.slots = e.base.slots
	e.DebuggerAttached = e.base.debugger
	e.bootVerified = e.base.bootVerified
	e.bootDone = e.base.bootDone
	e.Leak = e.base.leak
}

// NewEngine creates an engine with the given UID and a freshly generated
// device-unique SECRET_KEY.
func NewEngine(uid UID) *Engine {
	e := &Engine{uid: uid}
	var secret [BlockSize]byte
	if _, err := rand.Read(secret[:]); err != nil {
		panic("she: crypto/rand failed: " + err.Error())
	}
	e.slots[SecretKey] = slot{key: secret, valid: true, flags: Flags{WriteProtection: true}}
	return e
}

// UID reports the device-unique identifier.
func (e *Engine) UID() UID { return e.uid }

// ProvisionMasterKey installs the MASTER_ECU_KEY directly, modelling the
// factory provisioning step that happens before the device is fielded.
// In-field updates must use LoadKey (M1–M3).
func (e *Engine) ProvisionMasterKey(key [BlockSize]byte) {
	e.slots[MasterECUKey] = slot{key: key, valid: true, counter: 0}
}

// ProvisionKey installs an arbitrary slot at the factory.
func (e *Engine) ProvisionKey(id KeyID, key [BlockSize]byte, flags Flags) error {
	if id <= SecretKey || id >= numKeys {
		return ErrKeyInvalid
	}
	e.slots[id] = slot{key: key, valid: true, flags: flags}
	return nil
}

// KeyState reports whether a slot holds a key, and its flags and counter.
// The key material itself is never readable — that is the point of SHE.
func (e *Engine) KeyState(id KeyID) (valid bool, flags Flags, counter uint32) {
	if id < 0 || id >= numKeys {
		return false, Flags{}, 0
	}
	s := e.slots[id]
	return s.valid, s.flags, s.counter
}

// useKey fetches slot key material for a cryptographic operation, applying
// the protection flags.
func (e *Engine) useKey(id KeyID, wantMAC bool) ([BlockSize]byte, error) {
	var zero [BlockSize]byte
	if id < 0 || id >= numKeys || id == BootMAC {
		return zero, ErrKeyInvalid
	}
	s := &e.slots[id]
	if !s.valid {
		return zero, fmt.Errorf("%w: %v", ErrKeyEmpty, id)
	}
	if s.flags.BootProtection && e.bootDone && !e.bootVerified {
		return zero, fmt.Errorf("%w: %v", ErrBootProtected, id)
	}
	if s.flags.DebuggerProtection && e.DebuggerAttached {
		return zero, fmt.Errorf("%w: %v", ErrDebuggerActive, id)
	}
	// Usage enforcement applies to the general-purpose slots only.
	if id >= Key1 && id <= Key10 && s.flags.KeyUsage != wantMAC {
		return zero, fmt.Errorf("%w: %v", ErrKeyUsage, id)
	}
	return s.key, nil
}

// GenerateMAC computes CMAC(key, msg) using a slot (CMD_GENERATE_MAC).
func (e *Engine) GenerateMAC(id KeyID, msg []byte) ([]byte, error) {
	k, err := e.useKey(id, true)
	if err != nil {
		return nil, err
	}
	if e.Leak != nil {
		e.Leak("cmac", k[:], firstBlock(msg))
	}
	return CMAC(k[:], msg)
}

// VerifyMAC verifies a possibly truncated CMAC (CMD_VERIFY_MAC).
func (e *Engine) VerifyMAC(id KeyID, msg, mac []byte, macBits int) (bool, error) {
	k, err := e.useKey(id, true)
	if err != nil {
		return false, err
	}
	return VerifyCMAC(k[:], msg, mac, macBits)
}

// EncryptECB encrypts block-aligned data (CMD_ENC_ECB).
func (e *Engine) EncryptECB(id KeyID, plain []byte) ([]byte, error) {
	k, err := e.useKey(id, false)
	if err != nil {
		return nil, err
	}
	if e.Leak != nil {
		e.Leak("enc", k[:], firstBlock(plain))
	}
	return encryptECB(k[:], plain)
}

// DecryptECB decrypts block-aligned data (CMD_DEC_ECB).
func (e *Engine) DecryptECB(id KeyID, ct []byte) ([]byte, error) {
	k, err := e.useKey(id, false)
	if err != nil {
		return nil, err
	}
	return decryptECB(k[:], ct)
}

// EncryptCBC encrypts block-aligned data with the given IV (CMD_ENC_CBC).
func (e *Engine) EncryptCBC(id KeyID, iv, plain []byte) ([]byte, error) {
	k, err := e.useKey(id, false)
	if err != nil {
		return nil, err
	}
	if e.Leak != nil {
		e.Leak("enc", k[:], firstBlock(plain))
	}
	return encryptCBC(k[:], iv, plain)
}

// DecryptCBC decrypts block-aligned data with the given IV (CMD_DEC_CBC).
func (e *Engine) DecryptCBC(id KeyID, iv, ct []byte) ([]byte, error) {
	k, err := e.useKey(id, false)
	if err != nil {
		return nil, err
	}
	return decryptCBC(k[:], iv, ct)
}

// LoadPlainKey loads the volatile RAM_KEY in plaintext (CMD_LOAD_PLAIN_KEY).
func (e *Engine) LoadPlainKey(key [BlockSize]byte) {
	e.slots[RAMKey] = slot{key: key, valid: true, flags: Flags{KeyUsage: true}}
	// RAM key may be used for both MAC and cipher work; usage enforcement
	// only applies to Key1..Key10 (see useKey).
}

// TRNG returns cryptographically random bytes (CMD_TRNG).
func (e *Engine) TRNG(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, err
	}
	return b, nil
}

func firstBlock(msg []byte) []byte {
	if len(msg) >= BlockSize {
		return msg[:BlockSize]
	}
	b := make([]byte, BlockSize)
	copy(b, msg)
	return b
}
