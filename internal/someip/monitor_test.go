package someip

import (
	"testing"

	"autosec/internal/ethernet"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

func TestPeekHeaderRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", make([]byte, 13)},
		{"length below header", []byte{0, 0, 0, 0, 0, 0, 0, 11, 0, 0, 0, 0, 0, 0}},
		{"length beyond buffer", []byte{0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		if _, ok := PeekHeader(c.b); ok {
			t.Errorf("%s: PeekHeader accepted %x", c.name, c.b)
		}
	}
}

func TestPeekHeaderFields(t *testing.T) {
	m := Message{ServiceID: 0x1234, MethodID: 0x8001, ClientID: 0x42, SessionID: 7,
		Type: TypeNotification, ReturnCode: ReturnOK, Payload: []byte{1, 2, 3}}
	h, ok := PeekHeader(m.encode())
	if !ok {
		t.Fatal("PeekHeader rejected a valid encoding")
	}
	if h.Service != 0x1234 || h.Method != 0x8001 || h.Client != 0x42 ||
		h.Session != 7 || h.Type != TypeNotification || h.PayloadLen != 3 {
		t.Fatalf("header=%+v", h)
	}
}

func TestMonitorClassifiesWireTraffic(t *testing.T) {
	r := newRig(t)
	mon := NewMonitor(ethernet.Netif(r.sw, 10))
	r.discover(t) // find + offer: two discovery messages

	if err := r.client.Subscribe(svcBrakeStatus, egBrakeEvents); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	var resp *Message
	if err := r.client.Call(svcBrakeStatus, methodGetStatus, nil, func(m *Message) { resp = m }); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()
	if resp == nil {
		t.Fatal("no RPC response")
	}
	r.server.Notify(egBrakeEvents, []byte{0x01})
	r.server.Notify(egBrakeEvents, []byte{0x02})
	_ = r.k.Run()

	if mon.Requests.Value != 1 || mon.Responses.Value != 1 {
		t.Fatalf("rpc counters: req=%d resp=%d", mon.Requests.Value, mon.Responses.Value)
	}
	if mon.Subscribes.Value != 1 {
		t.Fatalf("subscribes=%d", mon.Subscribes.Value)
	}
	if mon.Notifications.Value != 2 {
		t.Fatalf("notifications=%d", mon.Notifications.Value)
	}
	// find, offer, subscribe ack.
	if mon.Discovery.Value != 3 {
		t.Fatalf("discovery=%d", mon.Discovery.Value)
	}
	if mon.Malformed.Value != 0 {
		t.Fatalf("malformed=%d", mon.Malformed.Value)
	}
}

func TestMonitorCountsMalformedAndIgnoresOtherEtherTypes(t *testing.T) {
	r := newRig(t)
	mon := NewMonitor(ethernet.Netif(r.sw, 10))

	// Garbage under the SOME/IP EtherType counts as malformed.
	atk := ethernet.NewHost("attacker", ethernet.LocalMAC(9))
	r.sw.Connect(atk, 10)
	if err := atk.Send(ethernet.Frame{Dst: ethernet.Broadcast,
		EtherType: EtherTypeSOMEIP, Payload: []byte{0xDE, 0xAD}}); err != nil {
		t.Fatal(err)
	}
	// A non-SOME/IP frame passes through uncounted even though its
	// payload happens to decode.
	valid := (&Message{ServiceID: 1, MethodID: 2, Type: TypeRequest}).encode()
	if err := atk.Send(ethernet.Frame{Dst: ethernet.Broadcast,
		EtherType: 0x88B6, Payload: valid}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.Run()

	if mon.Malformed.Value != 1 {
		t.Fatalf("malformed=%d", mon.Malformed.Value)
	}
	if total := mon.Requests.Value + mon.Responses.Value + mon.Notifications.Value +
		mon.Subscribes.Value + mon.Discovery.Value; total != 0 {
		t.Fatalf("classified counters moved: %d", total)
	}
}

func TestMonitorOnMessage(t *testing.T) {
	r := newRig(t)
	mon := NewMonitor(ethernet.Netif(r.sw, 10))
	type seen struct {
		at  sim.Time
		src netif.HWAddr
		h   Header
	}
	var got []seen
	mon.OnMessage(func(at sim.Time, f *netif.Frame, h Header) {
		got = append(got, seen{at: at, src: f.Src, h: h})
	})
	r.discover(t)
	var resp *Message
	_ = r.client.Call(svcBrakeStatus, methodGetStatus, []byte{0xAA}, func(m *Message) { resp = m })
	_ = r.k.Run()
	if resp == nil {
		t.Fatal("no RPC response")
	}

	// find, offer, request, response — in wire order.
	if len(got) != 4 {
		t.Fatalf("messages=%d", len(got))
	}
	req := got[2]
	if req.h.Type != TypeRequest || req.h.Service != svcBrakeStatus ||
		req.h.Method != methodGetStatus || req.h.PayloadLen != 1 {
		t.Fatalf("request header=%+v", req.h)
	}
	if req.src != netif.HWAddr(ethernet.LocalMAC(2)) {
		t.Fatalf("request src=%v", req.src)
	}
	if rsp := got[3]; rsp.h.Type != TypeResponse || rsp.at < req.at {
		t.Fatalf("response=%+v after request=%+v", rsp, req)
	}
}
