package v2x

import (
	"testing"

	"autosec/internal/sim"
)

// trackerField builds a field with one vehicle driving past a line of
// tracker antennas, rotating pseudonyms at the given period.
func trackerField(t *testing.T, rotation sim.Duration, linkWindow sim.Duration, linkRadius float64) (*sim.Kernel, *Entity, *Tracker) {
	t.Helper()
	k := sim.NewKernel(3)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	v := pki.vehicle(t, f, "target", Position{0, 0}, 100, rotation)
	v.SetVelocity(20, 0) // 20 m/s along x

	tr := &Tracker{RangeM: 300, LinkWindow: linkWindow, LinkRadius: linkRadius}
	// Antennas every 400m along the road, covering 0..2km.
	for x := 0.0; x <= 2000; x += 400 {
		tr.Antennas = append(tr.Antennas, Position{x, 0})
	}
	tr.Attach(f)
	return k, v, tr
}

func TestTrackerCapturesObservations(t *testing.T) {
	k, v, tr := trackerField(t, sim.Hour, 0, 0)
	stop := v.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(10 * sim.Second)
	stop()
	if tr.Observations() == 0 {
		t.Fatal("no observations")
	}
}

func TestSinglePseudonymFullyTracked(t *testing.T) {
	// Without rotation the whole drive is one trivially-linked track.
	k, v, tr := trackerField(t, sim.Hour, 0, 0)
	stop := v.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(60 * sim.Second)
	stop()
	success := tr.TrackingSuccess(60 * sim.Second)
	if success < 0.95 {
		t.Fatalf("tracking success %.3f, want ~1 with no rotation", success)
	}
	tracks := tr.Reconstruct()
	if len(tracks) != 1 {
		t.Fatalf("%d tracks, want 1", len(tracks))
	}
	if len(tracks[0].Pseudonyms) != 1 {
		t.Fatalf("pseudonyms=%d", len(tracks[0].Pseudonyms))
	}
}

func TestRotationWithoutLinkingBreaksTracks(t *testing.T) {
	// Rotating every 5s with a naive tracker (no continuity linking)
	// fragments the trajectory.
	k, v, tr := trackerField(t, 5*sim.Second, 0, 0)
	stop := v.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(60 * sim.Second)
	stop()
	success := tr.TrackingSuccess(60 * sim.Second)
	if success > 0.2 {
		t.Fatalf("tracking success %.3f despite rotation", success)
	}
	if n := len(tr.Reconstruct()); n < 10 {
		t.Fatalf("tracks=%d, want fragmentation", n)
	}
}

func TestContinuityLinkingDefeatsRotation(t *testing.T) {
	// The same rotation policy falls to a tracker that chains sightings
	// within 1 second and 50 metres — the known weakness of naive
	// pseudonym schemes with dense coverage.
	k, v, tr := trackerField(t, 5*sim.Second, sim.Second, 50)
	stop := v.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(60 * sim.Second)
	stop()
	success := tr.TrackingSuccess(60 * sim.Second)
	if success < 0.9 {
		t.Fatalf("continuity tracker success %.3f, want ~1 under dense coverage", success)
	}
	tracks := tr.Reconstruct()
	longest := Track{}
	for _, x := range tracks {
		if x.Duration() > longest.Duration() {
			longest = x
		}
	}
	if len(longest.Pseudonyms) < 5 {
		t.Fatalf("longest track chained only %d pseudonyms", len(longest.Pseudonyms))
	}
}

func TestSparseCoverageLimitsLinking(t *testing.T) {
	// With one antenna at the start of the road, the vehicle leaves
	// coverage and the tracker's success drops.
	k := sim.NewKernel(3)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	v := pki.vehicle(t, f, "target", Position{0, 0}, 100, 5*sim.Second)
	v.SetVelocity(20, 0)
	tr := &Tracker{Antennas: []Position{{0, 0}}, RangeM: 300, LinkWindow: sim.Second, LinkRadius: 50}
	tr.Attach(f)
	stop := v.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(60 * sim.Second)
	stop()
	success := tr.TrackingSuccess(60 * sim.Second)
	// Coverage is only the first ~15s of a 60s drive.
	if success > 0.5 {
		t.Fatalf("sparse tracker success %.3f", success)
	}
}

func TestTrackingSuccessDegenerate(t *testing.T) {
	tr := &Tracker{}
	if tr.TrackingSuccess(0) != 0 {
		t.Fatal("zero-duration success not 0")
	}
	if tr.LongestTrack() != 0 {
		t.Fatal("empty tracker has a track")
	}
}

func TestTrackDuration(t *testing.T) {
	tr := Track{First: sim.Second, Last: 3 * sim.Second}
	if tr.Duration() != 2*sim.Second {
		t.Fatalf("duration=%v", tr.Duration())
	}
}

func TestTrackerDistinguishesParallelVehicles(t *testing.T) {
	// Two vehicles far apart must not be merged into one track.
	k := sim.NewKernel(3)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 5000, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	a := pki.vehicle(t, f, "a", Position{0, 0}, 100, 5*sim.Second)
	a.SetVelocity(20, 0)
	b := pki.vehicle(t, f, "b", Position{0, 5000}, 100, 5*sim.Second)
	b.SetVelocity(20, 0)
	tr := &Tracker{Antennas: []Position{{500, 0}, {500, 5000}}, RangeM: 5000, LinkWindow: sim.Second, LinkRadius: 50}
	tr.Attach(f)
	sa := a.StartBeacon(100 * sim.Millisecond)
	sb := b.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(30 * sim.Second)
	sa()
	sb()
	tracks := tr.Reconstruct()
	// Each vehicle yields exactly one chained track: 2 total.
	if len(tracks) != 2 {
		t.Fatalf("tracks=%d, want 2", len(tracks))
	}
}
