package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric followed by its
// samples, families sorted by name so identical registries produce
// byte-identical output. Metric names are the registry keys prefixed
// with "autosec_" and sanitized ("gateway/zone-cabin/forwarded" becomes
// autosec_gateway_zone_cabin_forwarded). Counters export as counters;
// gauges and probes (live or materialized) as gauges; histograms as real
// Prometheus histograms — cumulative `_bucket{le="..."}` series from the
// registered bounds plus `_sum`/`_count` — with the exact tracked
// maximum as an extra `_max` gauge, since the paper's forensic use cases
// (worst-case frame latency, alert gaps) care about the tail sample
// itself, not a bucket estimate.
//
// The writer is an export path: it allocates freely and must not be
// called from simulation hot paths. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		name string
		kind string // "counter", "gauge" or "histogram"
		emit func(io.Writer, string) error
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.probes)+len(r.frozen)+len(r.histograms))

	for k, c := range r.counters {
		v := c.v
		fams = append(fams, family{promName(k), "counter", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, v)
			return err
		}})
	}
	gauge := func(k string, v float64) family {
		return family{promName(k), "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(v))
			return err
		}}
	}
	for k, g := range r.gauges {
		fams = append(fams, gauge(k, g.v))
	}
	for k, fn := range r.probes {
		if _, ok := r.frozen[k]; ok {
			continue // materialized reading wins, same rule as Snapshot
		}
		fams = append(fams, gauge(k, fn()))
	}
	for k, v := range r.frozen {
		fams = append(fams, gauge(k, v))
	}
	for k, h := range r.histograms {
		h := h
		fams = append(fams, family{promName(k), "histogram", func(w io.Writer, n string) error {
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(h.sum)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count %d\n", n, h.count)
			return err
		}})
		fams = append(fams, family{promName(k) + "_max", "gauge", func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(h.max))
			return err
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if err := f.emit(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry key to a valid Prometheus metric name:
// "autosec_" prefix, every character outside [a-zA-Z0-9_] replaced
// with '_'.
func promName(key string) string {
	var b strings.Builder
	b.Grow(len("autosec_") + len(key))
	b.WriteString("autosec_")
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 with the shortest representation that
// round-trips, matching what Prometheus client libraries emit.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
