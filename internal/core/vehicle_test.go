package core

import (
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/policy"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

func newVehicle(t *testing.T, cfg Config) *Vehicle {
	t.Helper()
	if cfg.VIN == "" {
		cfg.VIN = "TEST-VIN-001"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	v, err := NewVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewVehicleComposition(t *testing.T) {
	v := newVehicle(t, Config{})
	if len(v.Buses) != 3 {
		t.Fatalf("buses=%d", len(v.Buses))
	}
	inv := v.Arch.Inventory()
	if len(inv["secure-gateway"]) == 0 || len(inv["secure-processing"]) != 2 || len(inv["access-security"]) == 0 {
		t.Fatalf("inventory=%v", inv)
	}
	if !v.Arch.SecurityCurrent() {
		t.Fatal("fresh vehicle not security-current")
	}
}

func TestNewVehicleNeedsVIN(t *testing.T) {
	if _, err := NewVehicle(Config{}); err == nil {
		t.Fatal("empty VIN accepted")
	}
}

func TestTrafficRunsOnDomains(t *testing.T) {
	v := newVehicle(t, Config{})
	ptTrace := can.Recorder(v.Buses[DomainPowertrain])
	v.StartTraffic()
	_ = v.Kernel.RunUntil(2 * sim.Second)
	v.StopTraffic()
	if ptTrace.Len() < 300 {
		t.Fatalf("powertrain frames=%d", ptTrace.Len())
	}
}

// The E8 chain: a compromised infotainment ECU floods the powertrain; the
// gateway's deny-by-default stops it; with a permissive gateway it gets
// through; the IDS sees it and can trigger quarantine.
func TestCompromisedDomainContainment(t *testing.T) {
	v := newVehicle(t, Config{})
	attacker := can.NewController("compromised-headunit")
	v.Buses[DomainInfotainment].Attach(attacker)

	ptSeen := 0
	ptECU := can.NewController("engine-monitor")
	v.Buses[DomainPowertrain].Attach(ptECU)
	ptECU.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		if f.ID == 0x0C0 {
			ptSeen++
		}
	})

	// Deny-by-default: injection never crosses.
	stop := can.PeriodicSender(v.Kernel, attacker, can.Frame{ID: 0x0C0, Data: []byte{0xFF, 0xFF}}, 10*sim.Millisecond, 0)
	_ = v.Kernel.RunUntil(sim.Second)
	stop()
	if ptSeen != 0 {
		t.Fatalf("deny-by-default leaked %d frames", ptSeen)
	}
	if v.Gateway.Blocked.Value == 0 {
		t.Fatal("gateway blocked nothing")
	}
}

func TestAutoQuarantineOnIDSAlert(t *testing.T) {
	v := newVehicle(t, Config{})
	// Permissive gateway (the weak baseline) so injected traffic reaches
	// the powertrain and the IDS.
	v.Gateway.DefaultAction = 1 // gateway.Allow
	// Train the IDS on clean synthetic traffic.
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, 1, 0.01).Netif())
	v.ArmAutoQuarantine(DomainInfotainment)

	v.StartTraffic()
	attacker := can.NewController("compromised-headunit")
	v.Buses[DomainInfotainment].Attach(attacker)
	stop := can.PeriodicSender(v.Kernel, attacker, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)
	_ = v.Kernel.RunUntil(3 * sim.Second)
	stop()
	v.StopTraffic()

	if len(v.IDS.Alerts) == 0 {
		t.Fatal("IDS raised no alerts under flood")
	}
	if !v.Gateway.Quarantined(DomainInfotainment) {
		t.Fatal("quarantine reflex did not fire")
	}
}

func TestAuthenticatedCANRoundTrip(t *testing.T) {
	v := newVehicle(t, Config{MACBits: 32})
	var key [16]byte
	copy(key[:], "ivn-auth-key-001")
	if err := v.ProvisionMACKey(key); err != nil {
		t.Fatal(err)
	}
	tx := can.NewController("tx")
	rx := can.NewController("rx")
	v.Buses[DomainChassis].Attach(tx)
	v.Buses[DomainChassis].Attach(rx)

	var got []byte
	var authErr error
	rx.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		got, authErr = v.VerifyAuthenticated(f)
	})
	if err := v.AuthenticatedSend(tx, 0x123, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	_ = v.Kernel.Run()
	if authErr != nil {
		t.Fatal(authErr)
	}
	if len(got) != 4 || got[0] != 1 {
		t.Fatalf("payload=%v", got)
	}
}

func TestAuthenticatedCANRejectsForgery(t *testing.T) {
	v := newVehicle(t, Config{MACBits: 32})
	var key [16]byte
	copy(key[:], "ivn-auth-key-001")
	_ = v.ProvisionMACKey(key)
	tx := can.NewController("attacker")
	rx := can.NewController("rx")
	v.Buses[DomainChassis].Attach(tx)
	v.Buses[DomainChassis].Attach(rx)

	var authErr error
	rx.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		_, authErr = v.VerifyAuthenticated(f)
	})
	// Attacker without the key sends a frame with a guessed MAC.
	_ = tx.Send(can.Frame{ID: 0x123, Data: []byte{1, 2, 3, 4, 0xDE, 0xAD, 0xBE, 0xEF}}, nil)
	_ = v.Kernel.Run()
	if authErr == nil {
		t.Fatal("forged MAC accepted")
	}
	if v.AuthFailures.Value != 1 {
		t.Fatalf("auth failures=%d", v.AuthFailures.Value)
	}
	// Short frame also rejected.
	if _, err := v.VerifyAuthenticated(&can.Frame{ID: 1, Data: []byte{1}}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestAuthenticatedSendSizeLimit(t *testing.T) {
	v := newVehicle(t, Config{MACBits: 64})
	tx := can.NewController("tx")
	v.Buses[DomainChassis].Attach(tx)
	if err := v.AuthenticatedSend(tx, 1, make([]byte, 1)); err == nil {
		// 1 + 8 > 8: must fail before touching the SHE.
		t.Fatal("oversize authenticated frame accepted")
	}
}

func TestPolicyPlaneReconfiguresVehicle(t *testing.T) {
	auth, err := policy.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	v := newVehicle(t, Config{PolicyKey: auth.PublicKey(), MACBits: 0})

	p := &policy.Policy{
		Name:    "field-update-2026-07",
		Version: 1,
		Directives: []policy.Directive{
			{Kind: "crypto.mac-bits", Params: map[string]string{"bits": "32"}},
			{Kind: "gateway.rule", Params: map[string]string{
				"name": "nav-to-pt", "from": DomainInfotainment,
				"idlo": "0x100", "idhi": "0x1FF", "action": "allow", "to": DomainPowertrain, "rate": "100",
			}},
			{Kind: "ids.detector", Params: map[string]string{"name": "entropy"}},
		},
	}
	auth.Sign(p)
	if err := v.Policy.Install(p); err != nil {
		t.Fatal(err)
	}
	if v.MACBits != 32 {
		t.Fatalf("MACBits=%d", v.MACBits)
	}
	if len(v.Gateway.Rules()) != 1 || v.Gateway.Rules()[0].Name != "nav-to-pt" {
		t.Fatalf("rules=%v", v.Gateway.Rules())
	}
	found := false
	for _, d := range v.IDS.Detectors() {
		if d == "entropy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("detectors=%v", v.IDS.Detectors())
	}
}

func TestPolicyPlaneRejectsBadDirectives(t *testing.T) {
	auth, _ := policy.NewAuthority()
	v := newVehicle(t, Config{PolicyKey: auth.PublicKey()})
	cases := []policy.Directive{
		{Kind: "crypto.mac-bits", Params: map[string]string{"bits": "7"}},
		{Kind: "crypto.mac-bits", Params: map[string]string{"bits": "zebra"}},
		{Kind: "gateway.rule", Params: map[string]string{"idlo": "zebra"}},
		{Kind: "gateway.rule", Params: map[string]string{"action": "maybe"}},
		{Kind: "ids.detector", Params: map[string]string{"name": "oracle"}},
	}
	for i, d := range cases {
		p := &policy.Policy{Name: "bad", Version: uint64(i + 1), Directives: []policy.Directive{d}}
		auth.Sign(p)
		if err := v.Policy.Install(p); err == nil {
			t.Fatalf("directive %d accepted: %+v", i, d)
		}
	}
}

func TestPolicyDetectorReplaceInPlace(t *testing.T) {
	auth, _ := policy.NewAuthority()
	v := newVehicle(t, Config{PolicyKey: auth.PublicKey()})
	before := len(v.IDS.Detectors())
	// Installing "frequency" again replaces rather than duplicates.
	p := &policy.Policy{Name: "d", Version: 1, Directives: []policy.Directive{
		{Kind: "ids.detector", Params: map[string]string{"name": "frequency"}},
	}}
	auth.Sign(p)
	if err := v.Policy.Install(p); err != nil {
		t.Fatal(err)
	}
	if len(v.IDS.Detectors()) != before {
		t.Fatalf("detector count %d -> %d", before, len(v.IDS.Detectors()))
	}
}

// The E12 lifecycle in miniature: a capability ages out, the vehicle goes
// non-current, an in-field upgrade restores currency.
func TestFieldLifeUpgradeRestoresCurrency(t *testing.T) {
	v := newVehicle(t, Config{})
	if err := v.Arch.Deprecate(SecureProcessing, "she"); err != nil {
		t.Fatal(err)
	}
	if v.Arch.SecurityCurrent() {
		t.Fatal("deprecation invisible")
	}
	if err := v.Arch.Install(SecureProcessing, Implementation{Name: "she", Version: 2, Component: v.SHE}); err != nil {
		t.Fatal(err)
	}
	if !v.Arch.SecurityCurrent() {
		t.Fatal("upgrade did not restore currency")
	}
	if len(v.Arch.UpgradeLog) == 0 || !strings.Contains(v.Arch.UpgradeLog[len(v.Arch.UpgradeLog)-1], "she@v2") {
		t.Fatalf("log=%v", v.Arch.UpgradeLog)
	}
}

func TestGatewayRuleParsingDefaults(t *testing.T) {
	r, err := parseGatewayRule(policy.Directive{Kind: "gateway.rule", Params: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.From != "*" || r.Action != 0 || r.IDHi != uint32(can.MaxExtendedID) {
		t.Fatalf("defaults: %+v", r)
	}
}
